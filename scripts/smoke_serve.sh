#!/usr/bin/env sh
# smoke_serve.sh — end-to-end serving smoke test (make smoke-serve, CI).
#
# Builds minicostd, boots it with a tiny bootstrap agent, waits for
# /healthz, pushes one observation batch, fetches a plan, and asserts
# /metrics exposes the serving, training, and simulation metric families
# in Prometheus text format. Exits non-zero on any failure.
set -eu

ADDR="127.0.0.1:${SMOKE_PORT:-18471}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/minicostd"
LOG="$(mktemp)"

cleanup() {
    status=$?
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    [ -n "${PID:-}" ] && wait "$PID" 2>/dev/null || true
    if [ "$status" -ne 0 ]; then
        echo "smoke-serve: FAILED; daemon log:" >&2
        cat "$LOG" >&2 || true
    fi
    rm -rf "$(dirname "$BIN")" "$LOG"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "smoke-serve: building minicostd"
go build -o "$BIN" ./cmd/minicostd

echo "smoke-serve: booting with a tiny bootstrap agent on $ADDR"
"$BIN" -addr "$ADDR" -bootstrap-steps 2000 -filters 8 -hidden 16 2>"$LOG" &
PID=$!

# The tiny bootstrap still trains a real agent; allow up to 120 s.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 120 ]; then
        echo "smoke-serve: daemon did not come up" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "smoke-serve: daemon exited during bootstrap" >&2
        exit 1
    fi
    sleep 1
done

echo "smoke-serve: /healthz ok; exercising observe -> plan"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"files":[{"id":"a","size_gb":0.5,"reads":100,"writes":2},{"id":"b","size_gb":1.0,"reads":0.01,"writes":0}]}' \
    "$BASE/v1/observe" >/dev/null
curl -fsS "$BASE/v1/plan" >/dev/null

METRICS="$(curl -fsS "$BASE/metrics")"
for family in \
    'minicost_http_requests_total{endpoint="plan",status="ok"} 1' \
    'minicost_serve_plans_total 1' \
    'minicost_serve_tracked_files 2' \
    'minicost_train_steps_total' \
    'minicost_sim_accrued_cost_dollars' \
    'minicost_sim_tier_changes_total'; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$family"; then
        echo "smoke-serve: /metrics missing '$family'" >&2
        printf '%s\n' "$METRICS" | head -40 >&2
        exit 1
    fi
done

# Load generator against the live daemon: ingests a small population over
# a few simulated days with interleaved plans, and fails (non-zero exit)
# unless observe traffic actually landed.
echo "smoke-serve: loadgen traffic (500 files x 3 days)"
go run ./cmd/loadgen -addr "$BASE" -files 500 -days 3 -batch 200 -plan-every 2 -min-observes 1 >/dev/null

# Graceful shutdown: SIGTERM must drain and exit cleanly.
kill -TERM "$PID"
wait "$PID"
PID=""
echo "smoke-serve: OK"
