#!/usr/bin/env sh
# smoke_online.sh — end-to-end continuous-learning smoke test
# (make smoke-online, CI).
#
# Boots minicostd with -online, drives drifting loadgen traffic through
# /v1/observe, and asserts the full loop closed: at least one fine-tune
# epoch ran, the drift score is exported on /metrics, and a candidate
# policy was hot-swapped into serving (the gate is disabled so the swap is
# deterministic; gate rejection is pinned by the Go tests). The learner
# checkpoint written by the swap then boots a second daemon via
# -load-checkpoint, which must serve an observe -> plan round trip.
set -eu

ADDR="127.0.0.1:${SMOKE_ONLINE_PORT:-18473}"
BASE="http://$ADDR"
ADDR2="127.0.0.1:${SMOKE_ONLINE_PORT2:-18474}"
BASE2="http://$ADDR2"
BIN="$(mktemp -d)/minicostd"
LOG="$(mktemp)"
LOG2="$(mktemp)"
CKPTDIR="$(mktemp -d)"

cleanup() {
    status=$?
    for p in "${PID:-}" "${PID2:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
        [ -n "$p" ] && wait "$p" 2>/dev/null || true
    done
    if [ "$status" -ne 0 ]; then
        echo "smoke-online: FAILED; daemon logs:" >&2
        cat "$LOG" "$LOG2" >&2 || true
    fi
    rm -rf "$(dirname "$BIN")" "$LOG" "$LOG2" "$CKPTDIR"
    exit "$status"
}
trap cleanup EXIT INT TERM

wait_up() {
    base=$1
    pid=$2
    i=0
    until curl -fsS "$base/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 120 ]; then
            echo "smoke-online: daemon did not come up on $base" >&2
            exit 1
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "smoke-online: daemon exited during startup" >&2
            exit 1
        fi
        sleep 1
    done
}

# metric_value prints the value of an unlabeled metric family, or 0.
metric_value() {
    printf '%s\n' "$METRICS" | awk -v n="$1" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }'
}

echo "smoke-online: building minicostd"
go build -o "$BIN" ./cmd/minicostd

echo "smoke-online: booting with -online on $ADDR"
"$BIN" -addr "$ADDR" -bootstrap-steps 2000 -filters 8 -hidden 16 \
    -online -finetune-every 4 -finetune-steps 512 -drift-threshold 0.25 \
    -swap-gate=false -checkpoint-dir "$CKPTDIR" 2>"$LOG" &
PID=$!
wait_up "$BASE" "$PID"

# 18 days: the learner needs MinTrainDays (= the agent's 14-day history
# window) of buffered history before an epoch can train, and the back half
# of the run drifts to trip the PSI detector.
echo "smoke-online: drifting loadgen traffic (200 files x 18 days)"
go run ./cmd/loadgen -addr "$BASE" -files 200 -days 18 -batch 200 \
    -plan-every 3 -drift -drift-at 0.5 -min-observes 1 >/dev/null

echo "smoke-online: waiting for a fine-tune epoch and a hot swap"
i=0
while :; do
    METRICS="$(curl -fsS "$BASE/metrics")"
    epochs=$(metric_value minicost_online_finetune_epochs_total)
    swaps=$(metric_value minicost_online_swaps_total)
    if awk -v e="$epochs" -v s="$swaps" 'BEGIN { exit !(e >= 1 && s >= 1) }'; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -ge 60 ]; then
        echo "smoke-online: no epoch/swap after 60s (epochs=$epochs swaps=$swaps)" >&2
        exit 1
    fi
    sleep 1
done
echo "smoke-online: epochs=$epochs swaps=$swaps"

for family in \
    minicost_online_drift_score \
    minicost_online_buffer_files \
    minicost_online_observations_total \
    minicost_online_epoch_seconds_count; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$family"; then
        echo "smoke-online: /metrics missing '$family'" >&2
        printf '%s\n' "$METRICS" | grep '^minicost_online' >&2 || true
        exit 1
    fi
done
if awk -v b="$(metric_value minicost_online_buffer_files)" 'BEGIN { exit !(b < 1) }'; then
    echo "smoke-online: replay buffer is empty" >&2
    exit 1
fi

if ! curl -fsS "$BASE/healthz" | grep -q '^learner:'; then
    echo "smoke-online: /healthz missing the learner status line" >&2
    exit 1
fi
if ! curl -fsS "$BASE/v1/learner" | grep -q '"epochs"'; then
    echo "smoke-online: /v1/learner did not report status" >&2
    exit 1
fi

CKPT="$(ls "$CKPTDIR"/learner-*.ckpt 2>/dev/null | tail -1)"
if [ -z "$CKPT" ]; then
    echo "smoke-online: no learner checkpoint written after the swap" >&2
    exit 1
fi

kill -TERM "$PID"
wait "$PID"
PID=""

echo "smoke-online: rebooting from $CKPT"
"$BIN" -addr "$ADDR2" -load-checkpoint "$CKPT" -online \
    -finetune-every 0 -drift-threshold 0 2>"$LOG2" &
PID2=$!
wait_up "$BASE2" "$PID2"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"files":[{"id":"a","size_gb":0.5,"reads":100,"writes":2}]}' \
    "$BASE2/v1/observe" >/dev/null
curl -fsS "$BASE2/v1/plan" >/dev/null
kill -TERM "$PID2"
wait "$PID2"
PID2=""
echo "smoke-online: OK"
