package minicost_test

import (
	"net/http/httptest"
	"testing"

	"minicost"
)

func TestDeploymentThroughFacade(t *testing.T) {
	catalog := minicost.NewCatalog()
	if err := catalog.Add("us", minicost.AzurePricing()); err != nil {
		t.Fatal(err)
	}
	eu := minicost.AzurePricing()
	eu.Name = "eu"
	eu.Tiers[minicost.Hot].StoragePerGBMonth *= 1.5
	if err := catalog.Add("eu", eu); err != nil {
		t.Fatal(err)
	}
	d, err := minicost.NewDeployment(catalog, "us")
	if err != nil {
		t.Fatal(err)
	}
	tr := smallTrace(t)
	spread, err := minicost.AssignDatacenters(tr, []string{"us", "eu"})
	if err != nil {
		t.Fatal(err)
	}
	bills, total, err := d.Evaluate(minicost.GreedyBaseline(), spread, minicost.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 2 || total.Total() <= 0 {
		t.Fatalf("bills %d total %v", len(bills), total.Total())
	}
}

func TestAgentServerThroughFacade(t *testing.T) {
	tr := smallTrace(t)
	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = 0 // untrained snapshot is fine for API plumbing
	sys, err := minicost.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := minicost.NewAgentServer(sys, minicost.Hot); err == nil {
		t.Fatal("server from untrained system accepted")
	}
	if _, err := sys.Train(tr); err != nil {
		t.Fatal(err)
	}
	srv, err := minicost.NewAgentServer(sys, minicost.Hot)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := minicost.NewAgentClient(ts.URL)
	if _, err := client.Observe(&minicost.AgentObserveRequest{
		Files: []minicost.AgentFileObservation{{ID: "a", SizeGB: 0.1, Reads: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	plan, err := client.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Files) != 1 || plan.Files[0].ID != "a" {
		t.Fatalf("plan %+v", plan)
	}
}
