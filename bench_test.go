// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark regenerates the figure's data series (at the
// Quick profile — use cmd/experiments -profile full for paper-scale runs)
// and reports the headline numbers as custom benchmark metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the entire evaluation. The RL agent is trained once and shared
// by the figure benchmarks that need it.
package minicost_test

import (
	"bytes"
	"sync"
	"testing"

	"minicost/internal/experiments"
	"minicost/internal/trace"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
	benchLabErr  error
)

// lab returns the shared trained lab (Quick profile).
func benchLabGet(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		cfg := experiments.Quick()
		benchLab, benchLabErr = experiments.NewLab(cfg)
		if benchLabErr != nil {
			return
		}
		_, benchLabErr = benchLab.TrainAgent()
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

// BenchmarkFig2TraceSigmaHistogram regenerates Fig. 2: the volatility
// histogram of the trace. Metrics: share of the stationary bucket.
func BenchmarkFig2TraceSigmaHistogram(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = l.Fig2()
	}
	b.ReportMetric(r.Shares[0], "stationary-share")
	b.ReportMetric(r.Shares[trace.NumBuckets-1], "volatile-share")
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig3PotentialSavings regenerates Fig. 3: potential $ savings per
// σ bucket. Metric: ratio of per-file saving, most-volatile vs stationary
// bucket (the paper's headline: volatile files save more per file).
func BenchmarkFig3PotentialSavings(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = l.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.PerFilePerDay[0] > 0 {
		b.ReportMetric(r.PerFilePerDay[4]/r.PerFilePerDay[0], "volatile-vs-stationary-saving")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig4ARIMAError regenerates Fig. 4: ARIMA prediction-error
// percentiles per σ bucket. Metric: error spread of the most volatile
// bucket relative to the stationary one.
func BenchmarkFig4ARIMAError(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = l.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	if s0 := r.Spread(0); s0 > 0 {
		b.ReportMetric(r.Spread(4)/s0, "volatile-vs-stationary-spread")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig7TotalCost regenerates Fig. 7: total cost vs days for the
// five methods. Metrics: each method's cost at the longest horizon,
// normalized by Optimal (the paper's lower bound).
func BenchmarkFig7TotalCost(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = l.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Days) - 1
	opt := r.Costs["optimal"][last]
	for _, m := range experiments.MethodNames {
		if m == "optimal" || opt == 0 {
			continue
		}
		b.ReportMetric(r.Costs[m][last]/opt, m+"/optimal")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig8CostBySigma regenerates Fig. 8: daily cost per σ bucket for
// the five methods.
func BenchmarkFig8CostBySigma(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = l.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	// The paper's observation: static policies degrade with volatility.
	hot := r.Costs["hot"]
	if r.Files[4] > 0 && r.Files[0] > 0 && hot[0] > 0 {
		perFile0 := hot[0] / float64(r.Files[0])
		perFile4 := hot[4] / float64(r.Files[4])
		if perFile0 > 0 {
			b.ReportMetric(perFile4/perFile0, "hot-volatile-vs-stationary")
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig9LearningRateSweep regenerates Fig. 9: steps to convergence
// versus learning rate (reduced grid at bench scale). Metric: the best
// learning rate found (paper: ~0.0028).
func BenchmarkFig9LearningRateSweep(b *testing.B) {
	cfg := experiments.QuickLearningConfig()
	var r *experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig9(cfg, []float64{0.0004, 0.0028, 0.0055})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BestLR(), "best-lr")
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig10EpsilonSweep regenerates Fig. 10: optimal-action rate vs
// steps per greedy rate. Metric: final rate at ε = 0.1 (the paper's best).
func BenchmarkFig10EpsilonSweep(b *testing.B) {
	cfg := experiments.QuickLearningConfig()
	cfg.MaxSteps = 40000
	var r *experiments.Fig10Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig10(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FinalRate(0.1), "final-rate-eps0.1")
	b.ReportMetric(r.FinalRate(0.001), "final-rate-eps0.001")
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig11WidthSweep regenerates Fig. 11: optimal-action rate vs
// network width. Metrics: mean rate at the smallest and largest width.
func BenchmarkFig11WidthSweep(b *testing.B) {
	cfg := experiments.QuickLearningConfig()
	cfg.MaxSteps = 40000
	cfg.ChunkSteps = 40000
	var r *experiments.Fig11Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig11(cfg, []int{4, 32, 64}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Mean[0], "rate-width4")
	b.ReportMetric(r.Mean[len(r.Mean)-1], "rate-width64")
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig12Overhead regenerates Fig. 12: per-day computing overhead.
// Metrics: per-day decision time extrapolated to the paper's 4 M files, in
// minutes, for greedy and minicost.
func BenchmarkFig12Overhead(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = l.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ScaledMinutes["minicost"], "minicost-min/day@4M")
	b.ReportMetric(r.ScaledMinutes["greedy"], "greedy-min/day@4M")
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}

// BenchmarkFig13Aggregation regenerates Fig. 13: the aggregation
// enhancement. Metric: cost of MiniCost w/E relative to plain MiniCost at
// the longest horizon (< 1 means the enhancement saved money).
func BenchmarkFig13Aggregation(b *testing.B) {
	l := benchLabGet(b)
	var r *experiments.Fig13Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = l.Fig13(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Days) - 1
	if plain := r.Costs["minicost"][last]; plain > 0 {
		b.ReportMetric(r.Costs["minicost-w/E"][last]/plain, "withE/plain")
	}
	b.ReportMetric(float64(r.AggregatedGroups), "groups")
	var buf bytes.Buffer
	r.Render(&buf)
	b.Logf("\n%s", buf.String())
}
