// Package minicost is the public API of the MiniCost library — a
// reproduction of "A Reinforcement Learning Based System for Minimizing
// Cloud Storage Service Cost" (Wang et al., ICPP 2020).
//
// MiniCost assigns a web application's data files to cloud storage tiers
// (hot / cool / archive) over time so as to minimize the total payment to
// the cloud service provider. It formulates the problem as an MDP and
// solves it with an A3C reinforcement-learning agent; a concurrent-request
// aggregation enhancement further trims the bill.
//
// Typical use:
//
//	tr, _ := minicost.GenerateTrace(minicost.DefaultTraceConfig())
//	sys, _ := minicost.New(minicost.DefaultConfig())
//	sys.Train(tr)                 // fit the agent on historical data
//	report, _ := sys.Run(tr)      // serve and meter a workload
//	fmt.Println(report.Total)
//
// The heavy lifting lives in internal packages; this package re-exports the
// stable surface. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-reproduction results.
package minicost

import (
	"io"

	"minicost/internal/agentserver"
	"minicost/internal/aggregate"
	"minicost/internal/core"
	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/multidc"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// Tier identifies a storage tier.
type Tier = pricing.Tier

// The supported tiers.
const (
	Hot     = pricing.Hot
	Cool    = pricing.Cool
	Archive = pricing.Archive
)

// PricingPolicy is a CSP's per-tier price schedule.
type PricingPolicy = pricing.Policy

// AzurePricing returns the default Azure-Block-Blob-like schedule used in
// the paper's experiments.
func AzurePricing() *PricingPolicy { return pricing.Azure() }

// ParsePricing decodes and validates a JSON price schedule.
func ParsePricing(data []byte) (*PricingPolicy, error) { return pricing.ParsePolicy(data) }

// Trace is a workload: per-file daily read/write frequencies, sizes and
// concurrent-request groups.
type Trace = trace.Trace

// TraceFileMeta is a file's static metadata inside a Trace.
type TraceFileMeta = trace.FileMeta

// TraceGroup is a set of files receiving concurrent requests.
type TraceGroup = trace.Group

// TraceConfig parameterizes the synthetic Wikipedia-like generator.
type TraceConfig = trace.GenConfig

// DefaultTraceConfig returns the workload profile calibrated to the paper's
// measurements (Fig. 2 volatility shares, 100 MB Poisson sizes, weekly
// cycle).
func DefaultTraceConfig() TraceConfig { return trace.DefaultGenConfig() }

// GenerateTrace produces a deterministic synthetic workload.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ReadTraceCSV loads a workload written with Trace.WriteCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// Breakdown is a bill split into the paper's four cost components
// (storage, read, write, tier transition).
type Breakdown = costmodel.Breakdown

// Config configures a System.
type Config = core.Config

// DefaultConfig returns the paper's system configuration (§6.1): the A3C
// agent with a 128-filter conv front-end and 128-neuron hidden layer,
// Azure pricing, files starting hot.
func DefaultConfig() Config { return core.DefaultConfig() }

// AggregationConfig controls the §5.2 concurrent-request aggregation
// enhancement; set Config.Aggregation to enable it.
type AggregationConfig = aggregate.Config

// DefaultAggregationConfig returns the paper's enhancement settings.
func DefaultAggregationConfig() AggregationConfig { return aggregate.DefaultConfig() }

// System is a MiniCost instance: train it on a historical trace, then run
// it over a live workload.
type System = core.System

// New builds a system from a configuration.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// RunReport is the outcome of System.Run: the metered bill, per-day ledger,
// decision-time accounting and tier-change counts.
type RunReport = core.RunReport

// TrainStats summarizes a training run.
type TrainStats = rl.TrainStats

// RewardConfig is Eq. 4's parameterisation (α, Δ and stabilisers).
type RewardConfig = mdp.RewardConfig

// DefaultReward returns the reward settings used in the experiments.
func DefaultReward() RewardConfig { return mdp.DefaultReward() }

// Assigner is a tier-assignment strategy: given a workload it produces a
// per-file per-day tier plan. The paper's baselines are exposed below.
type Assigner = policy.Assigner

// Baselines.

// HotBaseline keeps every file hot.
func HotBaseline() Assigner { return policy.Static{Tier: pricing.Hot} }

// ColdBaseline keeps every file in the cool ("cold") tier.
func ColdBaseline() Assigner { return policy.Static{Tier: pricing.Cool} }

// ArchiveBaseline keeps every file archived.
func ArchiveBaseline() Assigner { return policy.Static{Tier: pricing.Archive} }

// GreedyBaseline is the paper's per-day myopic comparison algorithm.
func GreedyBaseline() Assigner { return policy.Greedy{} }

// OptimalBaseline is the offline exact optimum (the paper's
// "brutal-force" lower bound, computed by an equivalent dynamic program).
func OptimalBaseline() Assigner { return policy.Optimal{} }

// PredictiveBaseline re-tiers weekly from ARIMA forecasts (an extension the
// paper's §3 motivates).
func PredictiveBaseline() Assigner { return policy.DefaultPredictive() }

// EvaluateAssigner prices an assigner's plan on a trace under a pricing
// policy (files start hot). It returns the total bill.
func EvaluateAssigner(a Assigner, tr *Trace, p *PricingPolicy) (Breakdown, error) {
	bd, _, err := policy.Evaluate(a, tr, costmodel.New(p), pricing.Hot)
	return bd, err
}

// Multi-datacenter deployments (§4.1: the file set spans datacenters, each
// with its own pricing policy).

// Catalog maps datacenter IDs to pricing policies.
type Catalog = pricing.Catalog

// NewCatalog returns an empty datacenter catalog.
func NewCatalog() *Catalog { return pricing.NewCatalog() }

// Deployment evaluates policies across a multi-datacenter workload.
type Deployment = multidc.Deployment

// DatacenterBill is one datacenter's share of a deployment evaluation.
type DatacenterBill = multidc.Bill

// NewDeployment builds a deployment over a catalog; files without a
// datacenter label use defaultDC.
func NewDeployment(c *Catalog, defaultDC string) (*Deployment, error) {
	return multidc.New(c, defaultDC)
}

// AssignDatacenters spreads a trace's files round-robin across datacenters,
// returning a labeled copy.
func AssignDatacenters(tr *Trace, dcs []string) (*Trace, error) {
	return multidc.AssignDatacenters(tr, dcs)
}

// Agent serving (the paper's §4.2 agent server).

// AgentServer exposes a trained agent over HTTP (observe/plan endpoints).
type AgentServer = agentserver.Server

// NewAgentServer wraps a system's trained agent as an HTTP service; mount
// AgentServer.Handler on any mux.
func NewAgentServer(sys *System, initial Tier) (*AgentServer, error) {
	agent := sys.Agent()
	if agent == nil {
		return nil, core.ErrUntrained
	}
	return agentserver.New(agent, initial)
}

// AgentClient is the typed client for AgentServer's HTTP API.
type AgentClient = agentserver.Client

// NewAgentClient returns a client for the given base URL.
func NewAgentClient(baseURL string) *AgentClient { return agentserver.NewClient(baseURL) }

// AgentFileObservation is one file's daily measurement sent to the service.
type AgentFileObservation = agentserver.FileObservation

// AgentObserveRequest is one day's observation batch.
type AgentObserveRequest = agentserver.ObserveRequest

// AgentPlanResponse is the assignment plan returned by the service.
type AgentPlanResponse = agentserver.PlanResponse
