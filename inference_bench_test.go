// Inference-engine benchmarks: the single-sample reference path versus the
// batched GEMM engine behind policy.RL, at the paper's network configuration
// (128 filters / 128 hidden, 14-day history — §6.1) and at the Quick test
// configuration. Both paths replay the same generated trace, so
//
//	go test -bench=Inference -benchtime=2x
//
// measures the speedup of the day-major batched stepper directly. The
// per-decision cost is reported as a custom ns/decision metric (decisions =
// files × days). cmd/bench wraps the same measurement and emits
// BENCH_inference.json.
package minicost_test

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// inferenceConfig pairs a network shape with the trace it is benchmarked on.
type inferenceConfig struct {
	name  string
	net   rl.NetConfig
	files int
	days  int
}

func inferenceConfigs() []inferenceConfig {
	return []inferenceConfig{
		{
			// The paper's serving configuration.
			name:  "paper128",
			net:   rl.NetConfig{HistLen: 14, Filters: 128, Kernel: 4, Stride: 1, Hidden: 128},
			files: 512,
			days:  14,
		},
		{
			// The Quick lab profile's network.
			name:  "quick16",
			net:   rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32},
			files: 512,
			days:  14,
		},
	}
}

func inferenceFixture(tb testing.TB, cfg inferenceConfig) (*rl.Agent, *trace.Trace, *costmodel.Model) {
	tb.Helper()
	agent := rl.NewAgent(cfg.net, cfg.net.BuildActor(rng.New(7)))
	gen := trace.DefaultGenConfig()
	gen.NumFiles = cfg.files
	gen.Days = cfg.days
	gen.Seed = 7
	tr, err := trace.Generate(gen)
	if err != nil {
		tb.Fatal(err)
	}
	return agent, tr, costmodel.New(pricing.Azure())
}

func benchmarkInference(b *testing.B, p policy.RL, cfg inferenceConfig) {
	agent, tr, m := inferenceFixture(b, cfg)
	p.Agent = agent
	decisions := float64(tr.NumFiles() * tr.Days)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Assign(tr, m, pricing.Hot); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/decisions, "ns/decision")
}

// BenchmarkInferenceSingle measures the legacy path: one cloned network per
// goroutine task and one single-sample forward pass per (file, day).
func BenchmarkInferenceSingle(b *testing.B) {
	for _, cfg := range inferenceConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			benchmarkInference(b, policy.RL{SingleSample: true}, cfg)
		})
	}
}

// BenchmarkInferenceBatched measures the batched engine: day-major stepping,
// one GEMM per layer per day per chunk, pooled replicas.
func BenchmarkInferenceBatched(b *testing.B) {
	for _, cfg := range inferenceConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			benchmarkInference(b, policy.RL{}, cfg)
		})
	}
}
