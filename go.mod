module minicost

go 1.22
