package minicost_test

import (
	"bytes"
	"math"
	"testing"

	"minicost"
)

func smallTrace(t testing.TB) *minicost.Trace {
	t.Helper()
	cfg := minicost.DefaultTraceConfig()
	cfg.NumFiles = 80
	cfg.Days = 21
	tr, err := minicost.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPublicSurfaceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr := smallTrace(t)
	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = 5000
	cfg.A3C.Net.Filters = 8
	cfg.A3C.Net.Hidden = 16
	cfg.A3C.Workers = 2
	sys, err := minicost.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Train(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps < cfg.TrainSteps {
		t.Fatalf("trained %d steps", stats.Steps)
	}
	report, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total.Total() <= 0 {
		t.Fatal("no bill")
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	tr := smallTrace(t)
	p := minicost.AzurePricing()
	costs := map[string]float64{}
	for name, a := range map[string]minicost.Assigner{
		"hot":        minicost.HotBaseline(),
		"cold":       minicost.ColdBaseline(),
		"archive":    minicost.ArchiveBaseline(),
		"greedy":     minicost.GreedyBaseline(),
		"optimal":    minicost.OptimalBaseline(),
		"predictive": minicost.PredictiveBaseline(),
	} {
		bd, err := minicost.EvaluateAssigner(a, tr, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		costs[name] = bd.Total()
	}
	for name, c := range costs {
		if name == "optimal" {
			continue
		}
		if costs["optimal"] > c+1e-9 {
			t.Fatalf("optimal %v beaten by %s %v", costs["optimal"], name, c)
		}
	}
}

func TestTraceCSVThroughFacade(t *testing.T) {
	tr := smallTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := minicost.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFiles() != tr.NumFiles() || back.Days != tr.Days {
		t.Fatal("round trip shape mismatch")
	}
}

func TestPricingJSONThroughFacade(t *testing.T) {
	p := minicost.AzurePricing()
	data, err := p.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := minicost.ParsePricing(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name {
		t.Fatal("round trip name mismatch")
	}
}

func TestRewardDefaults(t *testing.T) {
	rc := minicost.DefaultReward()
	if !(rc.Reward(0.001) > rc.Reward(0.01)) {
		t.Fatal("reward not decreasing in cost")
	}
	if math.IsInf(rc.Reward(0), 0) {
		t.Fatal("reward unbounded at zero cost")
	}
}

func TestTierConstants(t *testing.T) {
	if minicost.Hot.String() != "hot" || minicost.Cool.String() != "cool" || minicost.Archive.String() != "archive" {
		t.Fatal("tier naming broken")
	}
}
