GO ?= go

.PHONY: build test check bench-inference

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: formatting, vet, and the race detector across the
# short test suite (which includes the pooled-replica and batched-inference
# concurrency tests).
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) test -race -short ./...

# bench-inference regenerates BENCH_inference.json (single-sample vs batched
# engine at the paper and Quick configs).
bench-inference:
	$(GO) run ./cmd/bench
