GO ?= go

.PHONY: build test lint fuzz check check-parallel smoke-serve smoke-online bench-inference bench-training bench-envs bench-evaluation bench-serving bench-scaling

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs minicost-vet, the repo's own analyzer suite (determinism,
# hotpath, shardcontract, obsnames, floatcmp). Zero findings is the gate;
# legitimate exceptions carry //minicost: directives at the offending line.
lint:
	$(GO) run ./cmd/minicost-vet ./...

# fuzz runs short native-fuzzing lanes over the two untrusted parsers: the
# trace CSV loader and the /v1/observe JSON body. One package per
# invocation (go test allows a single -fuzz pattern at a time).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadCSV -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzObserveBody -fuzztime $(FUZZTIME) ./internal/agentserver

# check is the CI gate: formatting, vet, minicost-vet, and the race
# detector across the short test suite (which includes the pooled-replica
# and batched-inference concurrency tests).
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race -short ./...

# check-parallel runs the kernel-level packages with the race detector and a
# fixed multi-core GOMAXPROCS so the parallel GEMM/backward fan-outs, the
# Parallelism training knob, and the par helpers actually execute their
# multi-goroutine branches (on a single-core runner they would silently
# degrade to the serial paths).
check-parallel:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/par ./internal/mat ./internal/nn ./internal/rl

# smoke-serve boots minicostd with a tiny bootstrap agent, exercises
# observe -> plan, and asserts /healthz answers and /metrics exposes the
# serving, training, and simulation metric families.
smoke-serve:
	sh scripts/smoke_serve.sh

# smoke-online boots minicostd with the continuous-learning loop enabled,
# drives drifting loadgen traffic through it, and asserts at least one
# fine-tune epoch ran, the drift score is exported on /metrics, and a
# candidate policy was hot-swapped into serving — then reboots from the
# learner checkpoint via -load-checkpoint.
smoke-online:
	sh scripts/smoke_online.sh

# bench-inference regenerates BENCH_inference.json (single-sample vs batched
# engine at the paper and Quick configs).
bench-inference:
	$(GO) run ./cmd/bench

# bench-training regenerates BENCH_training.json (single-sample vs batched
# A3C training engine at the paper and Quick configs, one worker, plus the
# envs-per-worker ladder of the vectorized lockstep engine).
bench-training:
	$(GO) run ./cmd/bench -mode training -o BENCH_training.json

# bench-envs reruns the training bench with the envs-per-worker ladder only
# (flag last-wins, so BENCH_ENVS_FLAGS can override the ladder, e.g.
# BENCH_ENVS_FLAGS="-envs 1,8 -train-steps 2000 -rounds 1" for a CI smoke).
bench-envs:
	$(GO) run ./cmd/bench -mode training -o BENCH_training.json -scale-workers "" $(BENCH_ENVS_FLAGS)

# bench-evaluation regenerates BENCH_evaluation.json (per-window vs swept
# Fig. 7 horizon evaluation on one core at the Quick and Full configs).
bench-evaluation:
	$(GO) run ./cmd/bench -mode evaluation -o BENCH_evaluation.json

# bench-serving regenerates BENCH_serving.json (sharded serving tier:
# observe ingestion throughput plus full vs incremental plan latency at
# 100k and 1M tracked files, with a shard sweep at the small population).
bench-serving:
	$(GO) run ./cmd/bench -mode serving -o BENCH_serving.json

# bench-scaling regenerates all three BENCH_*.json files including the
# worker-scaling ladder (workers 1/2/4/8 with GOMAXPROCS pinned per row and
# a scaling_efficiency field on every ladder row).
bench-scaling:
	$(GO) run ./cmd/bench -mode all
