package nn

import (
	"fmt"
	"testing"

	"minicost/internal/mat"
	"minicost/internal/rng"
)

// agentNet builds the agent-shaped stack (conv front-end behind a Split,
// hidden Dense, output Dense) at the given widths.
func agentNet(r *rng.RNG, head, filters, hidden, out, static int) *Network {
	front := NewNetwork(NewConv1D(r, head, filters, 4, 1), NewReLU())
	concat := front.OutDim(head) + static
	return NewNetwork(
		NewSplit(head, front),
		NewDense(r, concat, hidden),
		NewReLU(),
		NewDense(r, hidden, out),
	)
}

// parallelNetShapes cover odd batch sizes and widths not divisible by the
// pack lanes, the GEMM panels, or any tested worker count — plus the paper
// configuration.
var parallelNetShapes = []struct{ head, filters, hidden, batch int }{
	{28, 128, 128, 256}, // paper128 at a serving-size batch
	{28, 33, 65, 97},    // ragged everywhere
	{14, 5, 17, 65},     // tiny widths, odd batch
	{14, 16, 32, 17},    // just past the pack threshold
	{14, 16, 32, 7},     // short-rollout path (under packMinRows)
}

// TestForwardBackwardBatchParallelBitwise pins the whole batched engine at
// every worker count against workers=1: forward activations, parameter
// gradients, and the returned input gradients must all be bitwise
// identical — the parallel decomposition only shards independent elements.
func TestForwardBackwardBatchParallelBitwise(t *testing.T) {
	for _, sh := range parallelNetShapes {
		r := rng.New(11)
		n := agentNet(r, sh.head, sh.filters, sh.hidden, 3, 6)
		grads := n.FlattenGrads()
		x := randomBatch(r, sh.batch, sh.head+6)
		dy := randomBatch(r, sh.batch, 3)
		// Sprinkle exact zeros through the output gradient so Conv1D's
		// zero-skip stays on the tested path.
		for i := 0; i < len(dy.Data); i += 3 {
			dy.Data[i] = 0
		}

		n.ZeroGrad()
		wantY := append([]float64(nil), n.ForwardBatch(x, 1).Data...)
		wantDX := append([]float64(nil), n.BackwardBatch(dy, 1).Data...)
		wantG := append([]float64(nil), grads...)

		for _, workers := range []int{2, 3, 8} {
			n.ZeroGrad()
			y := n.ForwardBatch(x, workers)
			for i := range wantY {
				if y.Data[i] != wantY[i] {
					t.Fatalf("shape %+v workers %d: forward elem %d = %v, want %v",
						sh, workers, i, y.Data[i], wantY[i])
				}
			}
			dx := n.BackwardBatch(dy, workers)
			for i := range wantDX {
				if dx.Data[i] != wantDX[i] {
					t.Fatalf("shape %+v workers %d: input grad elem %d = %v, want %v",
						sh, workers, i, dx.Data[i], wantDX[i])
				}
			}
			for i := range wantG {
				if grads[i] != wantG[i] {
					t.Fatalf("shape %+v workers %d: param grad elem %d = %v, want %v",
						sh, workers, i, grads[i], wantG[i])
				}
			}
		}
	}
}

// TestBackwardBatchParallelSteadyStateAllocFree gates the workers=1 training
// steady state end to end: with warm scratch, one forward+backward round
// performs no allocations.
func TestBackwardBatchParallelSteadyStateAllocFree(t *testing.T) {
	r := rng.New(12)
	n := agentNet(r, 14, 16, 32, 3, 6)
	n.FlattenGrads()
	x := randomBatch(r, 64, 20)
	dy := randomBatch(r, 64, 3)
	n.ForwardBatch(x, 1)
	n.BackwardBatch(dy, 1)
	allocs := testing.AllocsPerRun(10, func() {
		n.ForwardBatch(x, 1)
		n.BackwardBatch(dy, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state forward+backward allocates %.0f/op at workers=1, want 0", allocs)
	}
}

// TestSoftmaxInto pins the no-alloc softmax against the allocating one.
func TestSoftmaxInto(t *testing.T) {
	logits := []float64{0.3, -2.5, 11.0, 0.0, 3.25}
	want := Softmax(logits)
	out := make([]float64, len(logits))
	allocs := testing.AllocsPerRun(10, func() { SoftmaxInto(out, logits) })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("SoftmaxInto[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if allocs != 0 {
		t.Fatalf("SoftmaxInto allocates %.0f/op, want 0", allocs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SoftmaxInto with mismatched lengths did not panic")
		}
	}()
	SoftmaxInto(out[:2], logits)
}

var sinkMat *mat.Matrix

// BenchmarkForwardBackwardBatchWorkers measures the paper-width batched
// round at several intra-call worker counts (meaningful on multi-core
// GOMAXPROCS only; at one core the fan-out is pure overhead).
func BenchmarkForwardBackwardBatchWorkers(b *testing.B) {
	r := rng.New(13)
	n := agentNet(r, 28, 128, 128, 3, 6)
	n.FlattenGrads()
	x := randomBatch(r, 256, 34)
	dy := randomBatch(r, 256, 3)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			n.ForwardBatch(x, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkMat = n.ForwardBatch(x, workers)
				sinkMat = n.BackwardBatch(dy, workers)
			}
		})
	}
}
