package nn

import (
	"testing"

	"minicost/internal/mat"
	"minicost/internal/rng"
)

// refGrads runs the single-sample reference over the batch in row order —
// Forward then Backward per row — and returns the resulting flat gradient
// vector plus the per-row input gradients.
func refGrads(net *Network, x, dy *mat.Matrix) ([]float64, *mat.Matrix) {
	dx := mat.New(dy.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		net.Forward(x.Row(r))
		copy(dx.Row(r), net.Backward(dy.Row(r)))
	}
	return net.GradVector(), dx
}

// assertBackwardBatchMatchesSingle checks that ForwardBatch + BackwardBatch
// accumulates bitwise-identical parameter gradients and input gradients to
// the per-sample reference, including on top of pre-existing gradients.
func assertBackwardBatchMatchesSingle(t *testing.T, name string, build func() (*Network, *Network), x, dy *mat.Matrix, workers int) {
	t.Helper()
	batched, single := build()
	// Seed both gradient accumulators with a shared nonzero state so the
	// accumulate-in-place contract is exercised, not just the zero case.
	seed := rng.New(99)
	for pi, p := range single.Params() {
		bp := batched.Params()[pi]
		for i := range p.Grad {
			g := seed.NormalMS(0, 0.1)
			p.Grad[i] = g
			bp.Grad[i] = g
		}
	}
	wantGrad, wantDx := refGrads(single, x, dy)

	batched.ForwardBatch(x, workers)
	gotDx := batched.BackwardBatch(dy, workers)
	gotGrad := batched.GradVector()

	for i := range wantGrad {
		if gotGrad[i] != wantGrad[i] {
			t.Fatalf("%s: grad elem %d = %v, single-sample = %v (not bitwise equal)",
				name, i, gotGrad[i], wantGrad[i])
		}
	}
	for i := range wantDx.Data {
		if gotDx.Data[i] != wantDx.Data[i] {
			t.Fatalf("%s: input-grad elem %d = %v, single-sample = %v (not bitwise equal)",
				name, i, gotDx.Data[i], wantDx.Data[i])
		}
	}
}

// sparseGrad zeroes a fraction of dy's entries so Conv1D's zero-gradient
// skip path is exercised the way training exercises it (zero rewards ⇒ zero
// critic gradients for whole timesteps).
func sparseGrad(r *rng.RNG, rows, cols int) *mat.Matrix {
	dy := randomBatch(r, rows, cols)
	for i := range dy.Data {
		if r.Float64() < 0.3 {
			dy.Data[i] = 0
		}
	}
	return dy
}

func TestDenseBackwardBatchBitwise(t *testing.T) {
	r := rng.New(21)
	for _, sh := range []struct{ in, out, batch int }{{3, 2, 1}, {33, 17, 5}, {159, 128, 64}} {
		for _, workers := range []int{1, 0} {
			x := randomBatch(r, sh.batch, sh.in)
			dy := randomBatch(r, sh.batch, sh.out)
			assertBackwardBatchMatchesSingle(t, "Dense", func() (*Network, *Network) {
				seed := rng.New(31)
				return NewNetwork(NewDense(seed, sh.in, sh.out)), NewNetwork(NewDense(rng.New(31), sh.in, sh.out))
			}, x, dy, workers)
		}
	}
}

func TestConv1DBackwardBatchBitwise(t *testing.T) {
	r := rng.New(22)
	for _, sh := range []struct{ inLen, filters, kernel, stride, batch int }{
		{8, 3, 4, 1, 1}, {28, 128, 4, 1, 33}, {14, 16, 4, 2, 7},
	} {
		c := NewConv1D(rng.New(32), sh.inLen, sh.filters, sh.kernel, sh.stride)
		outDim := c.OutDim(sh.inLen)
		x := randomBatch(r, sh.batch, sh.inLen)
		dy := sparseGrad(r, sh.batch, outDim)
		assertBackwardBatchMatchesSingle(t, "Conv1D", func() (*Network, *Network) {
			return NewNetwork(NewConv1D(rng.New(32), sh.inLen, sh.filters, sh.kernel, sh.stride)),
				NewNetwork(NewConv1D(rng.New(32), sh.inLen, sh.filters, sh.kernel, sh.stride))
		}, x, dy, 1)
	}
}

func TestReLUAndSplitBackwardBatchBitwise(t *testing.T) {
	r := rng.New(23)
	assertBackwardBatchMatchesSingle(t, "ReLU", func() (*Network, *Network) {
		return NewNetwork(NewReLU()), NewNetwork(NewReLU())
	}, randomBatch(r, 9, 21), randomBatch(r, 9, 21), 1)

	build := func() (*Network, *Network) {
		mk := func() *Network {
			seed := rng.New(33)
			return NewNetwork(NewSplit(14, NewNetwork(NewConv1D(seed, 14, 8, 4, 1), NewReLU())))
		}
		return mk(), mk()
	}
	x := randomBatch(r, 11, 20)
	outDim := func() int { n, _ := build(); return n.OutDim(20) }()
	assertBackwardBatchMatchesSingle(t, "Split", build, x, sparseGrad(r, 11, outDim), 1)
}

// TestNetworkBackwardBatchBitwise runs the full MiniCost-shaped stack
// (Split(Conv1D→ReLU) → Dense → ReLU → Dense) through the batched gradient
// pass and pins bitwise equality to the per-sample reference.
func TestNetworkBackwardBatchBitwise(t *testing.T) {
	r := rng.New(24)
	head := 28
	mk := func() *Network {
		seed := rng.New(34)
		front := NewNetwork(NewConv1D(seed, head, 32, 4, 1), NewReLU())
		concat := front.OutDim(head) + 6
		return NewNetwork(
			NewSplit(head, front),
			NewDense(seed, concat, 64),
			NewReLU(),
			NewDense(seed, 64, 3),
		)
	}
	outDim := mk().OutDim(head + 6)
	for _, workers := range []int{1, 0} {
		x := randomBatch(r, 57, head+6)
		dy := sparseGrad(r, 57, outDim)
		assertBackwardBatchMatchesSingle(t, "Network", func() (*Network, *Network) { return mk(), mk() }, x, dy, workers)
	}
}

// TestBackwardBatchAccumulatesAcrossBatches checks that two consecutive
// ForwardBatch/BackwardBatch rounds accumulate gradients identically to the
// per-sample reference over both batches in sequence — the exact shape of an
// A3C update that backprops actor and critic losses without ZeroGrad between
// rollout rows.
func TestBackwardBatchAccumulatesAcrossBatches(t *testing.T) {
	r := rng.New(25)
	mk := func() *Network {
		seed := rng.New(35)
		return NewNetwork(NewDense(seed, 12, 8), NewReLU(), NewDense(seed, 8, 4))
	}
	batched, single := mk(), mk()
	x1, dy1 := randomBatch(r, 7, 12), randomBatch(r, 7, 4)
	x2, dy2 := randomBatch(r, 5, 12), sparseGrad(r, 5, 4)

	refGrads(single, x1, dy1)
	wantGrad, _ := refGrads(single, x2, dy2)

	batched.ForwardBatch(x1, 1)
	batched.BackwardBatch(dy1, 1)
	batched.ForwardBatch(x2, 1)
	batched.BackwardBatch(dy2, 1)
	gotGrad := batched.GradVector()

	for i := range wantGrad {
		if gotGrad[i] != wantGrad[i] {
			t.Fatalf("grad elem %d = %v, want %v after two batches", i, gotGrad[i], wantGrad[i])
		}
	}
}

// TestBackwardBatchSteadyStateAllocFree pins the buffer-reuse contract: after
// warm-up, repeated same-shape ForwardBatch+BackwardBatch rounds allocate
// nothing.
func TestBackwardBatchSteadyStateAllocFree(t *testing.T) {
	r := rng.New(26)
	seed := rng.New(36)
	front := NewNetwork(NewConv1D(seed, 14, 16, 4, 1), NewReLU())
	concat := front.OutDim(14) + 5
	net := NewNetwork(NewSplit(14, front), NewDense(seed, concat, 32), NewReLU(), NewDense(seed, 32, 3))
	x := randomBatch(r, 21, 19)
	dy := randomBatch(r, 21, 3)
	net.ForwardBatch(x, 1)
	net.BackwardBatch(dy, 1)
	allocs := testing.AllocsPerRun(10, func() {
		net.ForwardBatch(x, 1)
		net.BackwardBatch(dy, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batched train pass allocates %v times per round, want 0", allocs)
	}
}
