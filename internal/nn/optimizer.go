package nn

import (
	"fmt"
	"math"

	"minicost/internal/mat"
)

// Optimizer applies a gradient step to a flat parameter vector. MiniCost's
// parameter server stores the global network as one flat vector (see
// internal/rl), so optimizers work at that level rather than per layer.
type Optimizer interface {
	// Step updates params in place from grads (both flat, same length).
	Step(params, grads []float64)
	// StepTo writes the updated parameters into dst instead of mutating
	// params (dst may alias params, in which case it equals Step). The
	// arithmetic is identical to Step bitwise; rl's double-buffered
	// parameter store applies each update into the next published buffer so
	// lock-free readers never observe a half-applied vector.
	StepTo(dst, params, grads []float64)
	// LearningRate reports the current base learning rate.
	LearningRate() float64
	// SetLearningRate changes the base learning rate (Fig. 9 sweeps it).
	SetLearningRate(lr float64)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []float64
}

// NewSGD returns plain SGD (momentum 0).
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []float64) { s.StepTo(params, params, grads) }

// StepTo implements Optimizer.
func (s *SGD) StepTo(dst, params, grads []float64) {
	checkLens(params, grads)
	checkLens(params, dst)
	if s.Momentum == 0 {
		for i, g := range grads {
			dst[i] = params[i] - s.LR*g
		}
		return
	}
	if s.velocity == nil {
		s.velocity = make([]float64, len(params))
	}
	for i, g := range grads {
		s.velocity[i] = s.Momentum*s.velocity[i] - s.LR*g
		dst[i] = params[i] + s.velocity[i]
	}
}

// LearningRate implements Optimizer.
func (s *SGD) LearningRate() float64 { return s.LR }

// SetLearningRate implements Optimizer.
func (s *SGD) SetLearningRate(lr float64) { s.LR = lr }

// RMSProp is the optimizer the A3C paper trains with.
type RMSProp struct {
	LR      float64
	Decay   float64 // squared-gradient EMA decay, typically 0.99
	Epsilon float64
	msq     []float64
}

// NewRMSProp returns RMSProp with the A3C defaults.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.99, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (r *RMSProp) Step(params, grads []float64) { r.StepTo(params, params, grads) }

// StepTo implements Optimizer. The elementwise update runs through
// mat.RMSPropStep, whose vectorized kernel keeps each element's scalar
// operation sequence (packed IEEE mul/add/sqrt/divide are correctly rounded),
// so results stay bitwise identical to the plain loop — this optimizer is
// where most non-GEMM update time goes on a 400k-parameter network.
func (r *RMSProp) StepTo(dst, params, grads []float64) {
	checkLens(params, grads)
	checkLens(params, dst)
	if r.msq == nil {
		r.msq = make([]float64, len(params))
	}
	mat.RMSPropStep(dst, params, grads, r.msq, r.LR, r.Decay, r.Epsilon)
}

// LearningRate implements Optimizer.
func (r *RMSProp) LearningRate() float64 { return r.LR }

// SetLearningRate implements Optimizer.
func (r *RMSProp) SetLearningRate(lr float64) { r.LR = lr }

// Adam is Kingma & Ba's optimizer; the most forgiving default for the
// small-sample policy-gradient updates MiniCost performs.
type Adam struct {
	LR, Beta1, Beta2, Epsilon float64
	m, v                      []float64
	t                         int
}

// NewAdam returns Adam with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []float64) { a.StepTo(params, params, grads) }

// StepTo implements Optimizer.
func (a *Adam) StepTo(dst, params, grads []float64) {
	checkLens(params, grads)
	checkLens(params, dst)
	if a.m == nil {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		dst[i] = params[i] - a.LR*(a.m[i]/c1)/(math.Sqrt(a.v[i]/c2)+a.Epsilon)
	}
}

// LearningRate implements Optimizer.
func (a *Adam) LearningRate() float64 { return a.LR }

// SetLearningRate implements Optimizer.
func (a *Adam) SetLearningRate(lr float64) { a.LR = lr }

func checkLens(params, grads []float64) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: optimizer params %d vs grads %d", len(params), len(grads)))
	}
}
