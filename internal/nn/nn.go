// Package nn is the from-scratch neural-network substrate behind MiniCost's
// A3C agent (§6.1 of the paper: a Conv1D front-end of 128 filters, size 4,
// stride 1, feeding a 128-neuron hidden layer; here parameterizable so
// Fig. 11's width sweep can run).
//
// The design is deliberately minimal: single-sample forward/backward (A3C
// applies n-step updates sample by sample), float64 everywhere, layers
// exposing flat parameter/gradient vectors so the RL package can host a
// locked global parameter server and copy weights into per-worker replicas.
package nn

import (
	"fmt"
	"math"

	"minicost/internal/mat"
	"minicost/internal/rng"
)

// Param is one layer's parameter block with its gradient accumulator.
type Param struct {
	Value []float64
	Grad  []float64
}

// Layer is a differentiable module. Forward must cache whatever Backward
// needs; Backward consumes the gradient w.r.t. its output, accumulates
// parameter gradients, and returns the gradient w.r.t. its input.
//
// Buffer ownership: the slices Forward and Backward return — and the
// matrices ForwardBatch and BackwardBatch return — are owned by the layer
// and overwritten by its next call of the same method; copy them if they
// must outlive that. This keeps the single-sample training loop, steady-
// state batched inference and the batched training path allocation-free,
// which the A3C workers and the serving path depend on.
//
// ForwardBatch (batch.go) must produce outputs bitwise identical to
// row-by-row Forward calls. It retains the input batch (a pointer, not a
// copy) so BackwardBatch (backward.go) can differentiate it; BackwardBatch
// must follow the ForwardBatch whose activations it consumes and must
// accumulate parameter gradients bitwise identically to calling Forward and
// Backward once per row, in row order.
type Layer interface {
	Forward(x []float64) []float64
	ForwardBatch(x *mat.Matrix, workers int) *mat.Matrix
	Backward(dy []float64) []float64
	BackwardBatch(dy *mat.Matrix, workers int) *mat.Matrix
	Params() []*Param
	OutDim(inDim int) int
	clone() Layer
}

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	In, Out int
	w, b    Param
	x       []float64 // cached input
	y, dx   []float64 // reused output/input-gradient buffers

	by    *mat.Matrix       // reused batched output
	bxt   *mat.Matrix       // reused lane-transposed scratch for short batches
	wView *mat.Matrix       // lazily built view of w.Value as an Out×In matrix
	wpack *mat.PackedTransB // reused kernel-layout copy of the weights

	bx       *mat.Matrix       // input batch retained by ForwardBatch for BackwardBatch
	dyT, bdx *mat.Matrix       // reused gradient-pass scratch/output buffers
	gView    *mat.Matrix       // lazily built view of w.Grad as an Out×In matrix
	wtpack   *mat.PackedTransB // reused transposed-weight pack for the dX GEMM
	xpack    *mat.PackedTransB // reused input-batch pack for the dW GEMM
}

// NewDense constructs a Dense layer with Xavier/Glorot uniform init.
func NewDense(r *rng.RNG, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense %dx%d", in, out))
	}
	d := &Dense{In: in, Out: out}
	d.w = Param{Value: make([]float64, out*in), Grad: make([]float64, out*in)}
	d.b = Param{Value: make([]float64, out), Grad: make([]float64, out)}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.w.Value {
		d.w.Value[i] = (2*r.Float64() - 1) * limit
	}
	return d
}

// Forward computes W·x + b.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense input %d, want %d", len(x), d.In))
	}
	d.x = x
	if d.y == nil {
		d.y = make([]float64, d.Out)
	}
	y := d.y
	for o := 0; o < d.Out; o++ {
		row := d.w.Value[o*d.In : (o+1)*d.In]
		s := d.b.Value[o]
		for i, v := range x {
			s += row[i] * v
		}
		y[o] = s
	}
	return y
}

// Backward accumulates dW = dy·xᵀ, db = dy and returns Wᵀ·dy.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic("nn: Dense Backward dim mismatch")
	}
	if d.dx == nil {
		d.dx = make([]float64, d.In)
	}
	dx := d.dx
	for i := range dx {
		dx[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		d.b.Grad[o] += g
		row := d.w.Value[o*d.In : (o+1)*d.In]
		grow := d.w.Grad[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params returns the weight and bias blocks.
func (d *Dense) Params() []*Param { return []*Param{&d.w, &d.b} }

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.Out }

func (d *Dense) clone() Layer {
	c := &Dense{In: d.In, Out: d.Out}
	c.w = cloneParam(d.w)
	c.b = cloneParam(d.b)
	return c
}

// Conv1D is a one-dimensional convolution over a single input channel with
// Filters output channels, kernel size Kernel and stride Stride. The output
// is flattened channel-major: out[f*outLen+t].
type Conv1D struct {
	InLen, Filters, Kernel, Stride int
	w, b                           Param // w[f*Kernel+k], b[f]
	x                              []float64
	y, dx                          []float64 // reused buffers

	col, gemm, by *mat.Matrix       // reused im2col / GEMM / batched-output buffers
	wView         *mat.Matrix       // lazily built view of w.Value as Filters×Kernel
	wpack         *mat.PackedTransB // reused kernel-layout copy of the filter bank

	brows int         // batch rows seen by the last ForwardBatch (for BackwardBatch)
	bdx   *mat.Matrix // reused batched input-gradient buffer
}

// NewConv1D constructs the layer; the paper's setting is Filters=128,
// Kernel=4, Stride=1.
func NewConv1D(r *rng.RNG, inLen, filters, kernel, stride int) *Conv1D {
	if inLen <= 0 || filters <= 0 || kernel <= 0 || stride <= 0 || kernel > inLen {
		panic(fmt.Sprintf("nn: invalid Conv1D inLen=%d filters=%d kernel=%d stride=%d", inLen, filters, kernel, stride))
	}
	c := &Conv1D{InLen: inLen, Filters: filters, Kernel: kernel, Stride: stride}
	c.w = Param{Value: make([]float64, filters*kernel), Grad: make([]float64, filters*kernel)}
	c.b = Param{Value: make([]float64, filters), Grad: make([]float64, filters)}
	limit := math.Sqrt(6.0 / float64(kernel+filters))
	for i := range c.w.Value {
		c.w.Value[i] = (2*r.Float64() - 1) * limit
	}
	return c
}

// outLen returns the number of output positions per filter.
func (c *Conv1D) outLen() int { return (c.InLen-c.Kernel)/c.Stride + 1 }

// Forward computes the cross-correlation of x with every filter.
func (c *Conv1D) Forward(x []float64) []float64 {
	if len(x) != c.InLen {
		panic(fmt.Sprintf("nn: Conv1D input %d, want %d", len(x), c.InLen))
	}
	c.x = x
	ol := c.outLen()
	if c.y == nil {
		c.y = make([]float64, c.Filters*ol)
	}
	y := c.y
	for f := 0; f < c.Filters; f++ {
		w := c.w.Value[f*c.Kernel : (f+1)*c.Kernel]
		bias := c.b.Value[f]
		for t := 0; t < ol; t++ {
			s := bias
			base := t * c.Stride
			for k := 0; k < c.Kernel; k++ {
				s += w[k] * x[base+k]
			}
			y[f*ol+t] = s
		}
	}
	return y
}

// Backward accumulates filter gradients and returns the input gradient.
func (c *Conv1D) Backward(dy []float64) []float64 {
	ol := c.outLen()
	if len(dy) != c.Filters*ol {
		panic("nn: Conv1D Backward dim mismatch")
	}
	if c.dx == nil {
		c.dx = make([]float64, c.InLen)
	}
	dx := c.dx
	for i := range dx {
		dx[i] = 0
	}
	for f := 0; f < c.Filters; f++ {
		w := c.w.Value[f*c.Kernel : (f+1)*c.Kernel]
		gw := c.w.Grad[f*c.Kernel : (f+1)*c.Kernel]
		for t := 0; t < ol; t++ {
			g := dy[f*ol+t]
			if g == 0 {
				continue
			}
			c.b.Grad[f] += g
			base := t * c.Stride
			for k := 0; k < c.Kernel; k++ {
				gw[k] += g * c.x[base+k]
				dx[base+k] += g * w[k]
			}
		}
	}
	return dx
}

// Params returns the filter and bias blocks.
func (c *Conv1D) Params() []*Param { return []*Param{&c.w, &c.b} }

// OutDim implements Layer.
func (c *Conv1D) OutDim(int) int { return c.Filters * c.outLen() }

func (c *Conv1D) clone() Layer {
	cc := &Conv1D{InLen: c.InLen, Filters: c.Filters, Kernel: c.Kernel, Stride: c.Stride}
	cc.w = cloneParam(c.w)
	cc.b = cloneParam(c.b)
	return cc
}

// ReLU is max(0, x).
type ReLU struct {
	mask  []bool
	y, dx []float64   // reused buffers
	by    *mat.Matrix // reused batched output
	bx    *mat.Matrix // input batch retained by ForwardBatch for BackwardBatch
	bdx   *mat.Matrix // reused batched input-gradient buffer
}

// NewReLU returns a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	if len(r.y) != len(x) {
		r.y = make([]float64, len(x))
		r.mask = make([]bool, len(x))
	}
	y := r.y
	for i, v := range x {
		if v > 0 {
			y[i] = v
			r.mask[i] = true
		} else {
			y[i] = 0
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy []float64) []float64 {
	if len(r.dx) != len(dy) {
		r.dx = make([]float64, len(dy))
	}
	dx := r.dx
	for i, g := range dy {
		if r.mask[i] {
			dx[i] = g
		} else {
			dx[i] = 0
		}
	}
	return dx
}

// Params implements Layer (none).
func (r *ReLU) Params() []*Param { return nil }

// OutDim implements Layer.
func (r *ReLU) OutDim(in int) int { return in }

func (r *ReLU) clone() Layer { return &ReLU{} }

// Split applies Inner to the first Head inputs and passes the remaining
// inputs through unchanged, concatenating the results. MiniCost uses it to
// run the conv front-end over the request-frequency history while static
// features (size, tier one-hot, write stats) bypass it — the paper's
// "results from these layers are then aggregated with other inputs".
type Split struct {
	Head      int
	Inner     *Network
	y, dx     []float64   // reused buffers
	bhead, by *mat.Matrix // reused batched head/output buffers

	bdyHead, bdx *mat.Matrix // reused batched gradient buffers
}

// NewSplit wraps inner over the first head inputs.
func NewSplit(head int, inner *Network) *Split {
	if head <= 0 {
		panic("nn: Split head must be positive")
	}
	return &Split{Head: head, Inner: inner}
}

// Forward implements Layer.
func (s *Split) Forward(x []float64) []float64 {
	if len(x) < s.Head {
		panic("nn: Split input shorter than head")
	}
	y := s.Inner.Forward(x[:s.Head])
	if len(s.y) != len(y)+len(x)-s.Head {
		s.y = make([]float64, len(y)+len(x)-s.Head)
	}
	copy(s.y, y)
	copy(s.y[len(y):], x[s.Head:])
	return s.y
}

// Backward implements Layer.
func (s *Split) Backward(dy []float64) []float64 {
	innerOut := s.Inner.OutDim(s.Head)
	dHead := s.Inner.Backward(dy[:innerOut])
	if len(s.dx) != s.Head+len(dy)-innerOut {
		s.dx = make([]float64, s.Head+len(dy)-innerOut)
	}
	copy(s.dx, dHead)
	copy(s.dx[s.Head:], dy[innerOut:])
	return s.dx
}

// Params implements Layer.
func (s *Split) Params() []*Param { return s.Inner.Params() }

// OutDim implements Layer.
func (s *Split) OutDim(in int) int { return s.Inner.OutDim(s.Head) + in - s.Head }

func (s *Split) clone() Layer { return &Split{Head: s.Head, Inner: s.Inner.Clone()} }

func cloneParam(p Param) Param {
	return Param{
		Value: append([]float64(nil), p.Value...),
		Grad:  append([]float64(nil), p.Grad...),
	}
}
