package nn

import (
	"fmt"
	"math"
)

// Network is a sequential stack of layers with flat parameter access.
type Network struct {
	layers []Layer
}

// NewNetwork stacks the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{layers: layers} }

// Forward runs the stack on one sample.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward back-propagates dy through the stack (after a Forward), returning
// the input gradient and accumulating parameter gradients.
func (n *Network) Backward(dy []float64) []float64 {
	for i := len(n.layers) - 1; i >= 0; i-- {
		dy = n.layers[i].Backward(dy)
	}
	return dy
}

// Params returns every parameter block in the stack.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// OutDim returns the output dimension for an input of dimension in.
func (n *Network) OutDim(in int) int {
	for _, l := range n.layers {
		in = l.OutDim(in)
	}
	return in
}

// ZeroGrad clears every gradient accumulator.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value)
	}
	return total
}

// ParamVector copies all parameters into one flat vector.
func (n *Network) ParamVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Value...)
	}
	return out
}

// SetParamVector loads parameters from a flat vector (layout must match
// ParamVector's).
func (n *Network) SetParamVector(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: SetParamVector len %d, want %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Value, v[off:off+len(p.Value)])
		off += len(p.Value)
	}
}

// GradVector copies all accumulated gradients into one flat vector.
func (n *Network) GradVector() []float64 {
	return n.GradVectorInto(nil)
}

// GradVectorInto copies gradients into dst (reallocating if it is too
// small) and returns it; pass a reused buffer to avoid per-update
// allocation in training loops.
func (n *Network) GradVectorInto(dst []float64) []float64 {
	total := n.NumParams()
	if cap(dst) < total {
		dst = make([]float64, total)
	}
	dst = dst[:total]
	off := 0
	for _, p := range n.Params() {
		copy(dst[off:], p.Grad)
		off += len(p.Grad)
	}
	return dst
}

// Clone deep-copies the network (parameters and gradients; activation caches
// are not carried over).
func (n *Network) Clone() *Network {
	out := &Network{layers: make([]Layer, len(n.layers))}
	for i, l := range n.layers {
		out.layers[i] = l.clone()
	}
	return out
}

// Softmax returns the softmax of logits, computed stably.
func Softmax(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// ClipGrads scales the flat gradient vector down to the given L2 norm if it
// exceeds it, in place; a non-positive maxNorm is a no-op.
func ClipGrads(grads []float64, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	ss := 0.0
	for _, g := range grads {
		ss += g * g
	}
	norm := math.Sqrt(ss)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for i := range grads {
		grads[i] *= scale
	}
}
