package nn

import (
	"fmt"
	"math"

	"minicost/internal/mat"
)

// Network is a sequential stack of layers with flat parameter access.
type Network struct {
	layers []Layer
	// flatGrads, when non-nil, is the single contiguous vector backing every
	// layer's gradient accumulator (see FlattenGrads).
	flatGrads []float64
}

// NewNetwork stacks the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{layers: layers} }

// Forward runs the stack on one sample.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward back-propagates dy through the stack (after a Forward), returning
// the input gradient and accumulating parameter gradients.
func (n *Network) Backward(dy []float64) []float64 {
	for i := len(n.layers) - 1; i >= 0; i-- {
		dy = n.layers[i].Backward(dy)
	}
	return dy
}

// Params returns every parameter block in the stack.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// OutDim returns the output dimension for an input of dimension in.
func (n *Network) OutDim(in int) int {
	for _, l := range n.layers {
		in = l.OutDim(in)
	}
	return in
}

// ZeroGrad clears every gradient accumulator.
func (n *Network) ZeroGrad() {
	if n.flatGrads != nil {
		for i := range n.flatGrads {
			n.flatGrads[i] = 0
		}
		return
	}
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value)
	}
	return total
}

// ParamVector copies all parameters into one flat vector.
func (n *Network) ParamVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Value...)
	}
	return out
}

// SetParamVector loads parameters from a flat vector (layout must match
// ParamVector's).
func (n *Network) SetParamVector(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: SetParamVector len %d, want %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Value, v[off:off+len(p.Value)])
		off += len(p.Value)
	}
}

// BindParamVector points every parameter block at a subslice of v (layout
// must match ParamVector's) instead of copying — an O(layers) pull. The
// caller keeps ownership of v and must keep it immutable and alive while the
// network can still read parameters; the network itself never writes
// parameter values (only gradients), so sharing one vector across readers is
// safe. rl's batched workers bind straight to the pinned published snapshot,
// replacing a full-vector copy per update.
func (n *Network) BindParamVector(v []float64) {
	if len(v) != n.NumParams() {
		panic(fmt.Sprintf("nn: BindParamVector len %d, want %d", len(v), n.NumParams()))
	}
	off := 0
	for _, p := range n.Params() {
		size := len(p.Value)
		p.Value = v[off : off+size : off+size]
		off += size
	}
}

// FlattenGrads rebacks every gradient accumulator with one contiguous vector
// in ParamVector layout and returns it: after a backward pass the returned
// slice IS the flat gradient vector, so training loops can clip and apply
// without a GradVectorInto copy. Accumulated values are carried over on the
// first call; the vector is owned by the network and stays valid across
// backward passes and ZeroGrad.
func (n *Network) FlattenGrads() []float64 {
	if n.flatGrads == nil {
		flat := make([]float64, n.NumParams())
		off := 0
		for _, p := range n.Params() {
			size := len(p.Grad)
			copy(flat[off:], p.Grad)
			p.Grad = flat[off : off+size : off+size]
			off += size
		}
		n.flatGrads = flat
	}
	return n.flatGrads
}

// GradVector copies all accumulated gradients into one flat vector.
func (n *Network) GradVector() []float64 {
	return n.GradVectorInto(nil)
}

// GradVectorInto copies gradients into dst (reallocating if it is too
// small) and returns it; pass a reused buffer to avoid per-update
// allocation in training loops.
func (n *Network) GradVectorInto(dst []float64) []float64 {
	total := n.NumParams()
	if cap(dst) < total {
		dst = make([]float64, total)
	}
	dst = dst[:total]
	off := 0
	for _, p := range n.Params() {
		copy(dst[off:], p.Grad)
		off += len(p.Grad)
	}
	return dst
}

// Clone deep-copies the network (parameters and gradients; activation caches
// are not carried over).
func (n *Network) Clone() *Network {
	out := &Network{layers: make([]Layer, len(n.layers))}
	for i, l := range n.layers {
		out.layers[i] = l.clone()
	}
	return out
}

// Softmax returns the softmax of logits, computed stably.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	SoftmaxInto(out, logits)
	return out
}

// SoftmaxInto writes the softmax of logits into out (same length, may not
// alias) without allocating — the training and sampling hot paths reuse one
// buffer per worker. The arithmetic is identical to Softmax.
//
//minicost:hotpath
func SoftmaxInto(out, logits []float64) {
	if len(out) != len(logits) {
		panic(fmt.Sprintf("nn: SoftmaxInto out len %d, want %d", len(out), len(logits)))
	}
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// ClipGrads scales the flat gradient vector down to the given L2 norm if it
// exceeds it, in place; a non-positive maxNorm is a no-op. The squared norm
// is accumulated in mat.SumSquares's eight fixed-order chains, so the norm
// (and hence any training trajectory crossing a clip) is a deterministic
// function of the gradient alone — every engine and platform sees the same
// bits.
func ClipGrads(grads []float64, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	norm := math.Sqrt(mat.SumSquares(grads))
	if norm <= maxNorm {
		return
	}
	mat.ScaleVec(grads, maxNorm/norm)
}
