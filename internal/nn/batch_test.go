package nn

import (
	"testing"

	"minicost/internal/mat"
	"minicost/internal/rng"
)

func randomBatch(r *rng.RNG, rows, cols int) *mat.Matrix {
	x := mat.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = r.NormalMS(0, 1)
	}
	return x
}

// assertBatchMatchesSingle checks that ForwardBatch on x is bitwise
// identical to Forward row by row.
func assertBatchMatchesSingle(t *testing.T, name string, l Layer, x *mat.Matrix, workers int) {
	t.Helper()
	y := l.ForwardBatch(x, workers)
	for r := 0; r < x.Rows; r++ {
		// Forward overwrites the batch layers' single-sample buffers, not the
		// batched ones, so interleaving is safe; copy anyway for clarity.
		want := append([]float64(nil), l.Forward(x.Row(r))...)
		got := y.Row(r)
		if len(got) != len(want) {
			t.Fatalf("%s: batch row %d len %d, single %d", name, r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: batch row %d elem %d = %v, single-sample = %v (not bitwise equal)",
					name, r, i, got[i], want[i])
			}
		}
	}
}

func TestDenseForwardBatchBitwise(t *testing.T) {
	r := rng.New(1)
	for _, sh := range []struct{ in, out, batch int }{{3, 2, 1}, {33, 17, 5}, {159, 128, 64}} {
		d := NewDense(r, sh.in, sh.out)
		for _, workers := range []int{1, 0} {
			assertBatchMatchesSingle(t, "Dense", d, randomBatch(r, sh.batch, sh.in), workers)
		}
	}
}

func TestConv1DForwardBatchBitwise(t *testing.T) {
	r := rng.New(2)
	for _, sh := range []struct{ inLen, filters, kernel, stride, batch int }{
		{8, 3, 4, 1, 1}, {28, 128, 4, 1, 33}, {14, 16, 4, 2, 7},
	} {
		c := NewConv1D(r, sh.inLen, sh.filters, sh.kernel, sh.stride)
		assertBatchMatchesSingle(t, "Conv1D", c, randomBatch(r, sh.batch, sh.inLen), 1)
	}
}

func TestReLUAndSplitForwardBatchBitwise(t *testing.T) {
	r := rng.New(3)
	assertBatchMatchesSingle(t, "ReLU", NewReLU(), randomBatch(r, 9, 21), 1)

	inner := NewNetwork(NewConv1D(r, 14, 8, 4, 1), NewReLU())
	s := NewSplit(14, inner)
	assertBatchMatchesSingle(t, "Split", s, randomBatch(r, 11, 20), 1)
}

func TestNetworkForwardBatchBitwise(t *testing.T) {
	r := rng.New(4)
	head := 28
	front := NewNetwork(NewConv1D(r, head, 32, 4, 1), NewReLU())
	concat := front.OutDim(head) + 6
	n := NewNetwork(
		NewSplit(head, front),
		NewDense(r, concat, 64),
		NewReLU(),
		NewDense(r, 64, 3),
	)
	x := randomBatch(r, 57, head+6)
	y := n.ForwardBatch(x, 1)
	for row := 0; row < x.Rows; row++ {
		want := append([]float64(nil), n.Forward(x.Row(row))...)
		for i := range want {
			if y.Row(row)[i] != want[i] {
				t.Fatalf("Network: row %d elem %d batch %v != single %v", row, i, y.Row(row)[i], want[i])
			}
		}
	}
	// Ragged re-use: a smaller batch after a larger one must still match.
	x2 := randomBatch(r, 3, head+6)
	y2 := n.ForwardBatch(x2, 1)
	for row := 0; row < x2.Rows; row++ {
		want := append([]float64(nil), n.Forward(x2.Row(row))...)
		for i := range want {
			if y2.Row(row)[i] != want[i] {
				t.Fatalf("Network (shrunk batch): row %d elem %d mismatch", row, i)
			}
		}
	}
}

func TestNetworkForwardBatchSteadyStateAllocFree(t *testing.T) {
	r := rng.New(5)
	head := 14
	front := NewNetwork(NewConv1D(r, head, 16, 4, 1), NewReLU())
	n := NewNetwork(
		NewSplit(head, front),
		NewDense(r, front.OutDim(head)+6, 32),
		NewReLU(),
		NewDense(r, 32, 3),
	)
	x := randomBatch(r, 64, head+6)
	n.ForwardBatch(x, 1) // warm the scratch buffers
	allocs := testing.AllocsPerRun(10, func() { n.ForwardBatch(x, 1) })
	if allocs != 0 {
		t.Fatalf("steady-state ForwardBatch allocates %.0f times per call, want 0", allocs)
	}
}
