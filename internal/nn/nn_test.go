package nn

import (
	"math"
	"testing"

	"minicost/internal/rng"
)

// numericGrad estimates d(loss)/d(theta) by central differences, where loss
// is 0.5*||net(x) - target||^2.
func loss(n *Network, x, target []float64) float64 {
	y := n.Forward(x)
	s := 0.0
	for i := range y {
		d := y[i] - target[i]
		s += 0.5 * d * d
	}
	return s
}

// analyticGrads runs forward/backward and returns the flat param grads and
// the input grads.
func analyticGrads(n *Network, x, target []float64) (pg, xg []float64) {
	n.ZeroGrad()
	y := n.Forward(x)
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = y[i] - target[i]
	}
	xg = n.Backward(dy)
	return n.GradVector(), xg
}

func checkGradients(t *testing.T, n *Network, inDim int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	x := make([]float64, inDim)
	for i := range x {
		x[i] = r.NormalMS(0, 1)
	}
	target := make([]float64, n.OutDim(inDim))
	for i := range target {
		target[i] = r.NormalMS(0, 1)
	}

	pg, xg := analyticGrads(n, x, target)

	// Parameter gradients.
	params := n.ParamVector()
	const h = 1e-6
	for _, idx := range sampleIndices(r, len(params), 30) {
		orig := params[idx]
		params[idx] = orig + h
		n.SetParamVector(params)
		lp := loss(n, x, target)
		params[idx] = orig - h
		n.SetParamVector(params)
		lm := loss(n, x, target)
		params[idx] = orig
		n.SetParamVector(params)
		num := (lp - lm) / (2 * h)
		if math.Abs(num-pg[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("param grad %d: analytic %v vs numeric %v", idx, pg[idx], num)
		}
	}

	// Input gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := loss(n, x, target)
		x[i] = orig - h
		lm := loss(n, x, target)
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-xg[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %v vs numeric %v", i, xg[i], num)
		}
	}
}

func sampleIndices(r *rng.RNG, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return r.Perm(n)[:k]
}

func TestDenseGradients(t *testing.T) {
	r := rng.New(10)
	n := NewNetwork(NewDense(r, 6, 4))
	checkGradients(t, n, 6, 1)
}

func TestDeepDenseReLUGradients(t *testing.T) {
	r := rng.New(11)
	n := NewNetwork(NewDense(r, 5, 16), NewReLU(), NewDense(r, 16, 8), NewReLU(), NewDense(r, 8, 3))
	checkGradients(t, n, 5, 2)
}

func TestConv1DGradients(t *testing.T) {
	r := rng.New(12)
	n := NewNetwork(NewConv1D(r, 10, 3, 4, 1))
	checkGradients(t, n, 10, 3)
}

func TestConv1DStride2Gradients(t *testing.T) {
	r := rng.New(13)
	n := NewNetwork(NewConv1D(r, 12, 2, 3, 2), NewReLU(), NewDense(r, 2*5, 3))
	checkGradients(t, n, 12, 4)
}

func TestSplitGradients(t *testing.T) {
	// The paper's architecture shape: conv over the first 8 inputs (the
	// frequency history), 4 static features pass through, then dense.
	r := rng.New(14)
	inner := NewNetwork(NewConv1D(r, 8, 3, 4, 1), NewReLU())
	concatDim := inner.OutDim(8) + 4
	n := NewNetwork(NewSplit(8, inner), NewDense(r, concatDim, 10), NewReLU(), NewDense(r, 10, 3))
	checkGradients(t, n, 12, 5)
}

func TestConv1DOutputShape(t *testing.T) {
	r := rng.New(15)
	c := NewConv1D(r, 14, 128, 4, 1)
	if got := c.OutDim(14); got != 128*11 {
		t.Fatalf("OutDim = %d, want %d", got, 128*11)
	}
	y := c.Forward(make([]float64, 14))
	if len(y) != 128*11 {
		t.Fatalf("forward len %d", len(y))
	}
}

func TestConv1DKnownValues(t *testing.T) {
	r := rng.New(16)
	c := NewConv1D(r, 4, 1, 2, 1)
	copy(c.w.Value, []float64{1, -1})
	c.b.Value[0] = 0.5
	y := c.Forward([]float64{3, 1, 4, 1})
	want := []float64{3 - 1 + 0.5, 1 - 4 + 0.5, 4 - 1 + 0.5}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	r := rng.New(17)
	n := NewNetwork(NewDense(r, 4, 6), NewReLU(), NewDense(r, 6, 2))
	v := n.ParamVector()
	if len(v) != n.NumParams() || n.NumParams() != 4*6+6+6*2+2 {
		t.Fatalf("NumParams %d", n.NumParams())
	}
	for i := range v {
		v[i] = float64(i)
	}
	n.SetParamVector(v)
	got := n.ParamVector()
	for i := range v {
		if got[i] != v[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rng.New(18)
	n := NewNetwork(NewDense(r, 3, 3), NewReLU(), NewDense(r, 3, 2))
	c := n.Clone()
	x := []float64{1, 2, 3}
	// Forward's return is owned by the network; copy before the next call.
	y1 := append([]float64(nil), n.Forward(x)...)
	y2 := c.Forward(x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-15 {
			t.Fatal("clone diverges on forward")
		}
	}
	// Mutating the clone must not affect the original.
	v := c.ParamVector()
	for i := range v {
		v[i] += 1
	}
	c.SetParamVector(v)
	y3 := n.Forward(x)
	for i := range y1 {
		if y3[i] != y1[i] {
			t.Fatal("clone shares storage with original")
		}
	}
}

func TestZeroGrad(t *testing.T) {
	r := rng.New(19)
	n := NewNetwork(NewDense(r, 3, 2))
	analyticGrads(n, []float64{1, 2, 3}, []float64{0, 0})
	nonzero := false
	for _, g := range n.GradVector() {
		if g != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expected nonzero grads")
	}
	n.ZeroGrad()
	for _, g := range n.GradVector() {
		if g != 0 {
			t.Fatal("ZeroGrad left residue")
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	// Two backward passes without ZeroGrad must sum gradients.
	r := rng.New(20)
	n := NewNetwork(NewDense(r, 2, 2))
	x := []float64{1, 2}
	tgt := []float64{0, 0}
	g1, _ := analyticGrads(n, x, tgt)
	// analyticGrads zeroes first; now do a second backward on top.
	y := n.Forward(x)
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = y[i] - tgt[i]
	}
	n.Backward(dy)
	g2 := n.GradVector()
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-12 {
			t.Fatal("gradients do not accumulate")
		}
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := 0.0
	for i := 0; i < len(p)-1; i++ {
		if p[i] >= p[i+1] {
			t.Fatal("softmax not monotone in logits")
		}
	}
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatal("softmax out of range")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	// Stability under large logits.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Fatal("softmax unstable")
	}
	// Shift invariance.
	a := Softmax([]float64{0.3, -0.2, 1.4})
	b := Softmax([]float64{10.3, 9.8, 11.4})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("softmax not shift invariant")
		}
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("entropy %v, want ln2", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("deterministic entropy %v", got)
	}
	uniform := Entropy([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	skewed := Entropy([]float64{0.8, 0.1, 0.1})
	if uniform <= skewed {
		t.Fatal("uniform should maximize entropy")
	}
}

func TestClipGrads(t *testing.T) {
	g := []float64{3, 4} // norm 5
	ClipGrads(g, 10)
	if g[0] != 3 || g[1] != 4 {
		t.Fatal("clip below threshold changed grads")
	}
	ClipGrads(g, 1)
	if math.Abs(math.Hypot(g[0], g[1])-1) > 1e-12 {
		t.Fatalf("clipped norm %v", math.Hypot(g[0], g[1]))
	}
	ClipGrads(g, 0) // no-op
	if math.Abs(math.Hypot(g[0], g[1])-1) > 1e-12 {
		t.Fatal("maxNorm=0 should be a no-op")
	}
}

func TestOptimizersReduceLoss(t *testing.T) {
	// Each optimizer must fit a small regression problem.
	for name, mk := range map[string]func() Optimizer{
		"sgd":          func() Optimizer { return NewSGD(0.05) },
		"sgd-momentum": func() Optimizer { o := NewSGD(0.02); o.Momentum = 0.9; return o },
		"rmsprop":      func() Optimizer { return NewRMSProp(0.005) },
		"adam":         func() Optimizer { return NewAdam(0.01) },
	} {
		t.Run(name, func(t *testing.T) {
			r := rng.New(21)
			n := NewNetwork(NewDense(r, 2, 8), NewReLU(), NewDense(r, 8, 1))
			opt := mk()
			data := make([][2]float64, 64)
			for i := range data {
				data[i] = [2]float64{r.NormalMS(0, 1), r.NormalMS(0, 1)}
			}
			target := func(x [2]float64) float64 { return 2*x[0] - 3*x[1] + 1 }
			evalLoss := func() float64 {
				s := 0.0
				for _, d := range data {
					s += loss(n, d[:], []float64{target(d)})
				}
				return s / float64(len(data))
			}
			before := evalLoss()
			params := n.ParamVector()
			for epoch := 0; epoch < 300; epoch++ {
				n.ZeroGrad()
				for _, d := range data {
					y := n.Forward(d[:])
					n.Backward([]float64{y[0] - target(d)})
				}
				g := n.GradVector()
				for i := range g {
					g[i] /= float64(len(data))
				}
				opt.Step(params, g)
				n.SetParamVector(params)
			}
			after := evalLoss()
			if after > before*0.05 {
				t.Fatalf("%s: loss %v -> %v (insufficient progress)", name, before, after)
			}
		})
	}
}

// TestStepToMatchesStepBitwise pins the double-buffering contract: a chain
// of StepTo calls ping-ponging between two buffers (the parameter server's
// apply pattern) must land bitwise identical to in-place Step with the same
// gradient sequence, for every optimizer.
func TestStepToMatchesStepBitwise(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd":          func() Optimizer { return NewSGD(0.05) },
		"sgd-momentum": func() Optimizer { o := NewSGD(0.02); o.Momentum = 0.9; return o },
		"rmsprop":      func() Optimizer { return NewRMSProp(0.005) },
		"adam":         func() Optimizer { return NewAdam(0.01) },
	} {
		t.Run(name, func(t *testing.T) {
			r := rng.New(31)
			const dim = 203 // not a multiple of the unroll width
			inPlace := make([]float64, dim)
			bufA := make([]float64, dim)
			bufB := make([]float64, dim)
			for i := range inPlace {
				inPlace[i] = r.NormalMS(0, 1)
			}
			copy(bufA, inPlace)
			optRef, optTo := mk(), mk()
			cur, next := bufA, bufB
			g := make([]float64, dim)
			for step := 0; step < 25; step++ {
				for i := range g {
					g[i] = r.NormalMS(0, 0.1)
				}
				optRef.Step(inPlace, g)
				optTo.StepTo(next, cur, g)
				cur, next = next, cur
			}
			for i := range inPlace {
				if cur[i] != inPlace[i] {
					t.Fatalf("elem %d: StepTo chain %v, Step %v (not bitwise equal)", i, cur[i], inPlace[i])
				}
			}
		})
	}
}

func TestOptimizerLearningRateAccessors(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1), NewRMSProp(0.1), NewAdam(0.1)} {
		if o.LearningRate() != 0.1 {
			t.Fatal("LearningRate wrong")
		}
		o.SetLearningRate(0.5)
		if o.LearningRate() != 0.5 {
			t.Fatal("SetLearningRate ignored")
		}
	}
}

func TestDensePanicsOnBadInput(t *testing.T) {
	r := rng.New(22)
	d := NewDense(r, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size accepted")
		}
	}()
	d.Forward([]float64{1, 2})
}

func BenchmarkForwardPaperNet(b *testing.B) {
	// The paper's architecture: Conv1D(128,4,1) over 14-day history plus 6
	// static features, hidden 128, 3 outputs.
	r := rng.New(1)
	hist := 14
	inner := NewNetwork(NewConv1D(r, hist, 128, 4, 1), NewReLU())
	concat := inner.OutDim(hist) + 6
	n := NewNetwork(NewSplit(hist, inner), NewDense(r, concat, 128), NewReLU(), NewDense(r, 128, 3))
	x := make([]float64, hist+6)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}

func BenchmarkForwardBackwardPaperNet(b *testing.B) {
	r := rng.New(1)
	hist := 14
	inner := NewNetwork(NewConv1D(r, hist, 128, 4, 1), NewReLU())
	concat := inner.OutDim(hist) + 6
	n := NewNetwork(NewSplit(hist, inner), NewDense(r, concat, 128), NewReLU(), NewDense(r, 128, 3))
	x := make([]float64, hist+6)
	dy := []float64{1, -1, 0.5}
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
		n.Backward(dy)
	}
}
