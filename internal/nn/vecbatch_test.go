package nn

import (
	"testing"

	"minicost/internal/mat"
	"minicost/internal/rng"
)

// These tests pin the two batched-pass properties the vectorized rollout
// engine (rl/vectrain.go) leans on: a ForwardBatch over a row view into a
// larger arena (mat.SliceRows) is indistinguishable from one over an owned
// matrix, and alternating between the engine's two batch shapes — the E-row
// action-selection block and the E·NSteps-row update arena — stays
// allocation-free once the layer scratch has seen both.

func vecTestNet(r *rng.RNG, head int) *Network {
	front := NewNetwork(NewConv1D(r, head, 16, 4, 1), NewReLU())
	return NewNetwork(
		NewSplit(head, front),
		NewDense(r, front.OutDim(head)+6, 32),
		NewReLU(),
		NewDense(r, 32, 3),
	)
}

// TestForwardBatchOnArenaViewBitwise runs every lockstep block of a step-major
// arena through ForwardBatch as a SliceRows view and checks the outputs are
// bitwise identical both to a copied standalone batch and to the per-row
// single-sample Forward.
func TestForwardBatchOnArenaViewBitwise(t *testing.T) {
	r := rng.New(9)
	const head, envs, steps = 14, 4, 7
	n := vecTestNet(r, head)
	dim := head + 6
	arena := randomBatch(r, envs*steps, dim)
	view := &mat.Matrix{}
	for s := 0; s < steps; s++ {
		arena.SliceRows(view, s*envs, (s+1)*envs)
		copied := mat.New(envs, dim)
		copy(copied.Data, view.Data)

		got := append([]float64(nil), n.ForwardBatch(view, 1).Data...)
		want := n.ForwardBatch(copied, 1)
		for i := range want.Data {
			if got[i] != want.Data[i] {
				t.Fatalf("step %d: view elem %d = %v, copied batch %v", s, i, got[i], want.Data[i])
			}
		}
		for row := 0; row < envs; row++ {
			single := n.Forward(arena.Row(s*envs + row))
			for i, v := range single {
				if got[row*want.Cols+i] != v {
					t.Fatalf("step %d row %d elem %d: view %v, single %v", s, row, i, got[row*want.Cols+i], v)
				}
			}
		}
	}
}

// TestForwardBatchAlternatingShapesAllocFree drives the exact shape cadence
// of one vectorized rollout — NSteps small action-selection batches, then
// one E·NSteps update batch (forward + backward) — and requires the steady
// state to allocate nothing: layer scratch must grow to the largest shape
// and then serve both without reallocation.
func TestForwardBatchAlternatingShapesAllocFree(t *testing.T) {
	r := rng.New(10)
	const head, envs, steps = 14, 4, 7
	n := vecTestNet(r, head)
	n.FlattenGrads()
	dim := head + 6
	arena := randomBatch(r, envs*steps, dim)
	dy := mat.New(envs*steps, 3)
	for i := range dy.Data {
		dy.Data[i] = r.NormalMS(0, 0.1)
	}
	view := &mat.Matrix{}
	rollout := func() {
		for s := 0; s < steps; s++ {
			arena.SliceRows(view, s*envs, (s+1)*envs)
			n.ForwardBatch(view, 1)
		}
		n.ZeroGrad()
		n.ForwardBatch(arena, 1)
		n.BackwardBatch(dy, 1)
	}
	rollout() // warm the scratch for both shapes
	rollout()
	if allocs := testing.AllocsPerRun(10, rollout); allocs != 0 {
		t.Fatalf("alternating-shape rollout allocates %.0f/op, want 0", allocs)
	}
}
