package nn

import (
	"fmt"

	"minicost/internal/mat"
	"minicost/internal/par"
)

// Batched forward: ForwardBatch runs a whole batch of samples (one per
// matrix row) through a layer with one GEMM per parameterized layer, instead
// of len(batch) single-sample passes. It serves two callers: the serving-side
// inference engine (policy.RL, the agent server) and the batched training
// path (rl's A3C workers), which follows it with BackwardBatch (backward.go).
// The single-sample Forward/Backward remains the reference implementation the
// equivalence tests compare against.
//
// To support the gradient pass, each layer retains what BackwardBatch needs:
// Dense and ReLU keep a pointer to the input batch, Conv1D keeps its im2col
// buffer (the gradient pass reads the same windows the forward GEMM did).
// The retained input is a pointer into the previous layer's output buffer, so
// BackwardBatch must run before that layer's next ForwardBatch.
//
// Exactness: every kernel accumulates each output element in the same
// floating-point order as the single-sample Forward (bias seed, then the
// shared dimension in index order — see mat's GEMM contract), so batched
// outputs are bitwise identical to per-sample outputs. Downstream argmax
// tier decisions therefore match exactly, not just approximately.
//
// Buffer ownership mirrors Forward: the returned matrix is owned by the
// layer and overwritten by its next ForwardBatch call. Scratch buffers grow
// to the largest batch seen and are reused, so steady-state batched
// inference performs no allocations.
//
// workers bounds the intra-GEMM parallel fan-out: pass 1 (serial) when the
// caller already parallelizes across batches — e.g. the chunked stepper in
// policy.RL — and <= 0 for the default when a single large batch should use
// every core, e.g. the agent server planning all tracked files at once.

// packMinRows is the batch size below which Dense skips repacking its
// weights into the SIMD kernel layout. Packing copies the full O(Out·In)
// weight block on every call (weights change between training updates, so
// packs cannot be cached) and only amortizes once enough batch rows reuse
// the packed tiles; short training rollouts (NSteps rows) run on the
// unpacked kernels instead, which stream the weights once and are bitwise
// identical by the same accumulation-order contract.
const packMinRows = 16

// parMinFloats is the per-call element traffic below which the batched
// layers' data-movement loops (im2col gather, layout restore, elementwise
// activation, bias reduction) stay serial even when workers > 1: under ~16k
// floats the goroutine fan-out costs more than the copy it shards.
const parMinFloats = 1 << 14

// parRows reports whether n independent work items (sample rows, filters,
// output neurons) carrying floatsPerItem floats each are worth sharding over
// workers. Call sites branch on it and build the par.ForChunked closure only
// on the parallel side, so the serial (workers=1) hot path stays literally
// allocation-free — a func literal handed to ForChunked escapes to the heap
// even when the branch is never taken. Sharded items must write disjoint
// outputs, and each item's own accumulation order is untouched, so results
// are bitwise identical at any worker count.
func parRows(n, floatsPerItem, workers int) bool {
	return workers != 1 && n*floatsPerItem >= parMinFloats
}

// ForwardBatch implements the batched pass for Dense: Y = X·Wᵀ + b, one
// fused GEMM over the whole batch. For batches of at least packMinRows the
// weights are repacked into the SIMD kernel's tile layout (a small,
// allocation-free fraction of the GEMM cost at serving batch sizes), so
// weight mutations between calls are always picked up; smaller batches use
// the unpacked kernel directly.
func (d *Dense) ForwardBatch(x *mat.Matrix, workers int) *mat.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense batch input %d, want %d", x.Cols, d.In))
	}
	d.bx = x
	if d.wView == nil {
		d.wView = &mat.Matrix{Rows: d.Out, Cols: d.In}
	}
	d.wView.Data = d.w.Value
	if x.Rows < packMinRows {
		d.by, d.bxt = mat.MulTransBBiasXTTo(d.by, d.bxt, x, d.wView, d.b.Value, workers)
		return d.by
	}
	d.by, d.wpack = mat.GemmParallel(d.by, x, d.wView, d.b.Value, d.wpack, workers)
	return d.by
}

// ForwardBatch implements the batched pass for Conv1D via im2col + GEMM:
// every (sample, output position) pair becomes one row of the column
// matrix, a single GEMM against the filter bank computes all responses, and
// a strided copy restores the layer's channel-major output layout.
func (c *Conv1D) ForwardBatch(x *mat.Matrix, workers int) *mat.Matrix {
	if x.Cols != c.InLen {
		panic(fmt.Sprintf("nn: Conv1D batch input %d, want %d", x.Cols, c.InLen))
	}
	ol := c.outLen()
	c.brows = x.Rows
	c.col = mat.EnsureShape(c.col, x.Rows*ol, c.Kernel)
	if parRows(x.Rows, ol*c.Kernel, workers) {
		par.ForChunked(x.Rows, workers, func(lo, hi int) { c.im2colRows(x, ol, lo, hi) })
	} else {
		c.im2colRows(x, ol, 0, x.Rows)
	}
	if c.wView == nil {
		c.wView = &mat.Matrix{Rows: c.Filters, Cols: c.Kernel}
	}
	c.wView.Data = c.w.Value
	c.wpack = mat.PackTransBParTo(c.wpack, c.wView, workers)
	c.gemm = mat.MulPackTransBBiasTo(c.gemm, c.col, c.wpack, c.b.Value, workers)
	c.by = mat.EnsureShape(c.by, x.Rows, c.Filters*ol)
	if parRows(x.Rows, ol*c.Filters, workers) {
		par.ForChunked(x.Rows, workers, func(lo, hi int) { c.restoreRows(ol, lo, hi) })
	} else {
		c.restoreRows(ol, 0, x.Rows)
	}
	return c.by
}

// im2colRows gathers the input windows for sample rows [lo, hi) into the
// im2col buffer; rows write disjoint buffer spans.
//
//minicost:hotpath
func (c *Conv1D) im2colRows(x *mat.Matrix, ol, lo, hi int) {
	for r := lo; r < hi; r++ {
		xrow := x.Row(r)
		base := r * ol * c.Kernel
		for t := 0; t < ol; t++ {
			copy(c.col.Data[base+t*c.Kernel:base+(t+1)*c.Kernel], xrow[t*c.Stride:t*c.Stride+c.Kernel])
		}
	}
}

// restoreRows copies the GEMM output back into the layer's channel-major
// layout for sample rows [lo, hi); rows write disjoint output rows.
//
//minicost:hotpath
func (c *Conv1D) restoreRows(ol, lo, hi int) {
	for r := lo; r < hi; r++ {
		yrow := c.by.Row(r)
		for t := 0; t < ol; t++ {
			grow := c.gemm.Row(r*ol + t)
			for f, v := range grow {
				yrow[f*ol+t] = v
			}
		}
	}
}

// ForwardBatch implements the batched pass for ReLU (elementwise; the
// retained input batch doubles as the mask for BackwardBatch).
func (r *ReLU) ForwardBatch(x *mat.Matrix, workers int) *mat.Matrix {
	r.bx = x
	r.by = mat.EnsureShape(r.by, x.Rows, x.Cols)
	if parRows(len(x.Data), 1, workers) {
		par.ForChunked(len(x.Data), workers, func(lo, hi int) { r.forwardSpan(x, lo, hi) })
	} else {
		r.forwardSpan(x, 0, len(x.Data))
	}
	return r.by
}

// forwardSpan applies the rectifier to elements [lo, hi).
//
//minicost:hotpath
func (r *ReLU) forwardSpan(x *mat.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		if v := x.Data[i]; v > 0 {
			r.by.Data[i] = v
		} else {
			r.by.Data[i] = 0
		}
	}
}

// ForwardBatch implements the batched pass for Split: the head columns are
// packed contiguously for the inner network, and its output is concatenated
// with the untouched tail columns.
func (s *Split) ForwardBatch(x *mat.Matrix, workers int) *mat.Matrix {
	if x.Cols < s.Head {
		panic("nn: Split batch input shorter than head")
	}
	s.bhead = mat.EnsureShape(s.bhead, x.Rows, s.Head)
	for r := 0; r < x.Rows; r++ {
		copy(s.bhead.Row(r), x.Row(r)[:s.Head])
	}
	inner := s.Inner.ForwardBatch(s.bhead, workers)
	tail := x.Cols - s.Head
	s.by = mat.EnsureShape(s.by, x.Rows, inner.Cols+tail)
	for r := 0; r < x.Rows; r++ {
		yrow := s.by.Row(r)
		copy(yrow, inner.Row(r))
		copy(yrow[inner.Cols:], x.Row(r)[s.Head:])
	}
	return s.by
}

// ForwardBatch runs the stack on a batch of samples (one per row). The
// result is owned by the network's last layer and overwritten by the next
// call; see the file comment for the workers convention.
func (n *Network) ForwardBatch(x *mat.Matrix, workers int) *mat.Matrix {
	for _, l := range n.layers {
		x = l.ForwardBatch(x, workers)
	}
	return x
}
