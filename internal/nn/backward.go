package nn

import (
	"fmt"

	"minicost/internal/mat"
	"minicost/internal/par"
)

// Batched backward: BackwardBatch back-propagates a whole batch of output
// gradients (one per matrix row) through a layer in one pass, accumulating
// parameter gradients and returning the batch of input gradients. It is the
// training-side counterpart of ForwardBatch and must follow the ForwardBatch
// whose retained activations it consumes.
//
// Exactness: the single-sample reference processes the batch row by row, so
// every parameter-gradient element receives its per-row terms in ascending
// row order, each added to the element's running value one at a time. The
// batched kernels keep exactly that order — Dense's weight gradient runs
// dW += dYᵀ·X through mat.MulTransAAccTo or mat.MulPackAccTo (both
// row-sequential, seeded from the existing gradient), Conv1D replays the
// im2col windows with the reference's
// zero-gradient skip, and the input-gradient products seed at zero and walk
// the output dimension in index order, matching the per-sample loops term
// for term. Batched training is therefore bitwise identical to the
// per-sample loop, which the rl equivalence tests pin down.
//
// Buffer ownership matches ForwardBatch: returned matrices are owned by the
// layer and overwritten by its next BackwardBatch call; scratch grows to the
// largest batch seen, so steady-state batched training performs no
// allocations. workers bounds the intra-GEMM fan-out exactly as in
// ForwardBatch — A3C workers pass 1 because they already run in parallel.

// BackwardBatch implements the batched gradient pass for Dense. Three
// products, each in the reference accumulation order:
//
//	db[o] += Σ_r dy[r][o]          (r ascending, seeded from the live grad)
//	dW[o][i] += Σ_r dy[r][o]·x[r][i]  (r ascending, seeded from the live grad)
//	dx[r][i] = Σ_o dy[r][o]·w[o][i]   (o ascending, seeded at zero)
//
// Short batches (under packMinRows — training rollouts) run transpose- and
// pack-free: dW goes through mat.MulTransAAccTo directly on the row-major
// batches and dx through mat.MulKOuterTo, each streaming the full-size
// operand exactly once. Larger batches (vectorized rollouts' E·NSteps
// arenas) amortize packing instead: both dW and dx run on the packed SIMD
// kernel — dx against a transposed-weight pack (PackTransposeTo), dW
// against a pack of the retained input batch with the transposed gradient
// as the streaming operand (mat.MulPackAccTo), which keeps the per-k tile
// loads contiguous and drops the full-width input-batch transpose. All
// kernels share the accumulation-order contract, so both paths are bitwise
// identical to the reference.
func (d *Dense) BackwardBatch(dy *mat.Matrix, workers int) *mat.Matrix {
	if d.bx == nil {
		panic("nn: Dense BackwardBatch before ForwardBatch")
	}
	if dy.Cols != d.Out || dy.Rows != d.bx.Rows {
		panic(fmt.Sprintf("nn: Dense BackwardBatch %dx%d, want %dx%d", dy.Rows, dy.Cols, d.bx.Rows, d.Out))
	}
	if d.gView == nil {
		d.gView = &mat.Matrix{Rows: d.Out, Cols: d.In}
	}
	d.gView.Data = d.w.Grad
	if d.wView == nil {
		d.wView = &mat.Matrix{Rows: d.Out, Cols: d.In}
	}
	d.wView.Data = d.w.Value
	if dy.Rows < packMinRows {
		for o := 0; o < d.Out; o++ {
			s := d.b.Grad[o]
			for r := 0; r < dy.Rows; r++ {
				s += dy.Data[r*d.Out+o]
			}
			d.b.Grad[o] = s
		}
		mat.MulTransAAccTo(d.gView, dy, d.bx, workers)
		d.bdx = mat.MulKOuterTo(d.bdx, dy, d.wView, workers)
		return d.bdx
	}
	d.dyT = mat.TransposeParTo(d.dyT, dy, workers)
	if parRows(d.Out, dy.Rows, workers) {
		par.ForChunked(d.Out, workers, d.biasGradRows)
	} else {
		d.biasGradRows(0, d.Out)
	}
	d.xpack = mat.PackTransposeParTo(d.xpack, d.bx, workers)
	mat.MulPackAccTo(d.gView, d.dyT, d.xpack, workers)
	d.wtpack = mat.PackTransposeParTo(d.wtpack, d.wView, workers)
	d.bdx = mat.MulPackTransBBiasTo(d.bdx, dy, d.wtpack, nil, workers)
	return d.bdx
}

// biasGradRows accumulates bias gradients for output neurons [lo, hi) from
// the transposed gradient batch; neurons touch disjoint accumulators.
//
//minicost:hotpath
func (d *Dense) biasGradRows(lo, hi int) {
	for o := lo; o < hi; o++ {
		s := d.b.Grad[o]
		for _, g := range d.dyT.Row(o) {
			s += g
		}
		d.b.Grad[o] = s
	}
}

// BackwardBatch implements the batched gradient pass for Conv1D, reusing the
// im2col buffer ForwardBatch retained: row r·ol+t of c.col is exactly the
// input window sample r's output position t read, so the gradient pass never
// re-gathers windows from the input.
//
// Two passes, both preserving the reference's `g == 0` skip (rewards are
// often zero early in a trace, so whole timesteps of critic gradient vanish
// and the skip is both a real win and part of the bitwise contract):
//
//   - parameter gradients: filter-major, then (row, position) ascending —
//     for a fixed filter the reference's per-sample f-loop contributes terms
//     in precisely that order, and distinct filters touch disjoint gradient
//     elements, so the element-wise accumulation order is unchanged;
//   - input gradients: row-major with the reference's f-outer/t-inner walk,
//     each output row scattered back through its filter taps.
func (c *Conv1D) BackwardBatch(dy *mat.Matrix, workers int) *mat.Matrix {
	ol := c.outLen()
	if dy.Cols != c.Filters*ol || dy.Rows != c.brows {
		panic(fmt.Sprintf("nn: Conv1D BackwardBatch %dx%d, want %dx%d", dy.Rows, dy.Cols, c.brows, c.Filters*ol))
	}
	// Distinct filters own disjoint gradient elements, so the filter loop is
	// the parallel axis; within one filter the (row, position) walk keeps the
	// reference accumulation order.
	if parRows(c.Filters, dy.Rows*ol, workers) {
		par.ForChunked(c.Filters, workers, func(flo, fhi int) { c.filterGradSpan(dy, ol, flo, fhi) })
	} else {
		c.filterGradSpan(dy, ol, 0, c.Filters)
	}
	c.bdx = mat.EnsureShape(c.bdx, dy.Rows, c.InLen)
	// Sample rows own disjoint input-gradient rows; each shard zeroes and
	// then accumulates its own rows with the reference's f-outer/t-inner
	// walk.
	if parRows(dy.Rows, c.Filters*ol*c.Kernel, workers) {
		par.ForChunked(dy.Rows, workers, func(rlo, rhi int) { c.inputGradRows(dy, ol, rlo, rhi) })
	} else {
		c.inputGradRows(dy, ol, 0, dy.Rows)
	}
	return c.bdx
}

// filterGradSpan accumulates weight and bias gradients for filters
// [flo, fhi); distinct filters touch disjoint gradient elements.
//
//minicost:hotpath
func (c *Conv1D) filterGradSpan(dy *mat.Matrix, ol, flo, fhi int) {
	for f := flo; f < fhi; f++ {
		gw := c.w.Grad[f*c.Kernel : (f+1)*c.Kernel]
		bg := c.b.Grad[f]
		for r := 0; r < dy.Rows; r++ {
			drow := dy.Row(r)
			for t := 0; t < ol; t++ {
				g := drow[f*ol+t]
				if g == 0 {
					continue
				}
				bg += g
				win := c.col.Row(r*ol + t)
				for k := 0; k < c.Kernel; k++ {
					gw[k] += g * win[k]
				}
			}
		}
		c.b.Grad[f] = bg
	}
}

// inputGradRows zeroes and accumulates the input-gradient rows [rlo, rhi)
// with the reference's f-outer/t-inner walk; rows are disjoint.
//
//minicost:hotpath
func (c *Conv1D) inputGradRows(dy *mat.Matrix, ol, rlo, rhi int) {
	for i := rlo * c.InLen; i < rhi*c.InLen; i++ {
		c.bdx.Data[i] = 0
	}
	for r := rlo; r < rhi; r++ {
		drow := dy.Row(r)
		dxrow := c.bdx.Row(r)
		for f := 0; f < c.Filters; f++ {
			w := c.w.Value[f*c.Kernel : (f+1)*c.Kernel]
			for t := 0; t < ol; t++ {
				g := drow[f*ol+t]
				if g == 0 {
					continue
				}
				base := t * c.Stride
				for k := 0; k < c.Kernel; k++ {
					dxrow[base+k] += g * w[k]
				}
			}
		}
	}
}

// BackwardBatch implements the batched gradient pass for ReLU: the retained
// input batch is the mask (dy passes where the input was positive).
func (r *ReLU) BackwardBatch(dy *mat.Matrix, workers int) *mat.Matrix {
	if r.bx == nil {
		panic("nn: ReLU BackwardBatch before ForwardBatch")
	}
	if dy.Rows != r.bx.Rows || dy.Cols != r.bx.Cols {
		panic(fmt.Sprintf("nn: ReLU BackwardBatch %dx%d, want %dx%d", dy.Rows, dy.Cols, r.bx.Rows, r.bx.Cols))
	}
	r.bdx = mat.EnsureShape(r.bdx, dy.Rows, dy.Cols)
	if parRows(len(dy.Data), 1, workers) {
		par.ForChunked(len(dy.Data), workers, func(lo, hi int) { r.backwardSpan(dy, lo, hi) })
	} else {
		r.backwardSpan(dy, 0, len(dy.Data))
	}
	return r.bdx
}

// backwardSpan masks the output gradient through the retained input for
// elements [lo, hi).
//
//minicost:hotpath
func (r *ReLU) backwardSpan(dy *mat.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		if r.bx.Data[i] > 0 {
			r.bdx.Data[i] = dy.Data[i]
		} else {
			r.bdx.Data[i] = 0
		}
	}
}

// BackwardBatch implements the batched gradient pass for Split: the leading
// inner-output columns of dy are packed contiguously and sent through the
// inner network, the tail columns pass through unchanged, mirroring
// ForwardBatch's concatenation.
func (s *Split) BackwardBatch(dy *mat.Matrix, workers int) *mat.Matrix {
	innerOut := s.Inner.OutDim(s.Head)
	if dy.Cols < innerOut {
		panic("nn: Split BackwardBatch gradient shorter than inner output")
	}
	tail := dy.Cols - innerOut
	s.bdyHead = mat.EnsureShape(s.bdyHead, dy.Rows, innerOut)
	for r := 0; r < dy.Rows; r++ {
		copy(s.bdyHead.Row(r), dy.Row(r)[:innerOut])
	}
	dHead := s.Inner.BackwardBatch(s.bdyHead, workers)
	s.bdx = mat.EnsureShape(s.bdx, dy.Rows, s.Head+tail)
	for r := 0; r < dy.Rows; r++ {
		xrow := s.bdx.Row(r)
		copy(xrow, dHead.Row(r))
		copy(xrow[s.Head:], dy.Row(r)[innerOut:])
	}
	return s.bdx
}

// BackwardBatch back-propagates a batch of output gradients through the
// stack (after a ForwardBatch), accumulating parameter gradients and
// returning the batched input gradient. The result is owned by the first
// layer and overwritten by the next call.
func (n *Network) BackwardBatch(dy *mat.Matrix, workers int) *mat.Matrix {
	for i := len(n.layers) - 1; i >= 0; i-- {
		dy = n.layers[i].BackwardBatch(dy, workers)
	}
	return dy
}
