package core

import (
	"math"
	"testing"

	"minicost/internal/aggregate"
	"minicost/internal/costmodel"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.A3C.Net = rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}
	cfg.A3C.Workers = 2
	cfg.A3C.Seed = 11
	cfg.TrainSteps = 250000
	return cfg
}

func genTrace(t testing.TB, files, days int, seed uint64) *trace.Trace {
	t.Helper()
	gc := trace.DefaultGenConfig()
	gc.NumFiles = files
	gc.Days = days
	gc.Seed = seed
	tr, err := trace.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig()); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.A3C.LearningRate = -1
	if _, err := New(bad); err == nil {
		t.Error("invalid A3C config accepted")
	}
	bad = testConfig()
	bad.InitialTier = pricing.Tier(9)
	if _, err := New(bad); err == nil {
		t.Error("invalid tier accepted")
	}
	bad = testConfig()
	bad.TrainSteps = -1
	if _, err := New(bad); err == nil {
		t.Error("negative train steps accepted")
	}
	bad = testConfig()
	bad.Aggregation = &aggregate.Config{}
	if _, err := New(bad); err == nil {
		t.Error("invalid aggregation config accepted")
	}
	bad = testConfig()
	badPricing := pricing.Azure()
	badPricing.TransitionPerGB = -1
	bad.Pricing = badPricing
	if _, err := New(bad); err == nil {
		t.Error("invalid pricing accepted")
	}
}

func TestRunRequiresTraining(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(genTrace(t, 5, 10, 1)); err != ErrUntrained {
		t.Fatalf("err = %v, want ErrUntrained", err)
	}
	if _, err := s.Assigner(); err != ErrUntrained {
		t.Fatalf("Assigner err = %v, want ErrUntrained", err)
	}
}

func TestTrainAndRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := genTrace(t, 200, 21, 1)
	test := genTrace(t, 150, 21, 2)
	stats, err := s.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps < cfg.TrainSteps {
		t.Fatalf("trained %d of %d steps", stats.Steps, cfg.TrainSteps)
	}
	report, err := s.Run(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Daily) != test.Days || len(report.DecisionTime) != test.Days {
		t.Fatal("report day count wrong")
	}
	if report.Total.Total() <= 0 {
		t.Fatal("zero bill")
	}
	// Run's store-metered bill must equal pricing the same assignment via
	// the cost model (two independent accounting paths).
	assigner, err := s.Assigner()
	if err != nil {
		t.Fatal(err)
	}
	cost, _, err := policy.Evaluate(assigner, test, s.Model(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost.Total()-report.Total.Total()) > 1e-6 {
		t.Fatalf("store bill %v != assigner bill %v", report.Total.Total(), cost.Total())
	}
	// The trained system must beat the all-hot baseline on the test set.
	hot, _, err := policy.Evaluate(policy.Static{Tier: pricing.Hot}, test, s.Model(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total.Total() >= hot.Total() {
		t.Fatalf("MiniCost %v not better than all-hot %v", report.Total.Total(), hot.Total())
	}
	t.Logf("minicost=%.4f hot=%.4f changes=%d", report.Total.Total(), hot.Total(), report.TierChanges)
}

func TestRunWithAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := testConfig()
	cfg.TrainSteps = 8000
	aggCfg := aggregate.DefaultConfig()
	cfg.Aggregation = &aggCfg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gc := trace.DefaultGenConfig()
	gc.NumFiles = 80
	gc.Days = 28
	gc.HeadFraction = 0.15
	gc.GroupFraction = 0.5
	gc.Seed = 3
	tr, err := trace.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(tr); err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The same system without aggregation must cost at least as much
	// (the aggregator only acts on positive-Ω groups).
	cfg2 := cfg
	cfg2.Aggregation = nil
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetAgent(s.Agent())
	plain, err := s2.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if report.AggregatedGroups > 0 && report.Total.Total() > plain.Total.Total()*1.001 {
		t.Fatalf("aggregation raised cost: %v -> %v (%d groups)",
			plain.Total.Total(), report.Total.Total(), report.AggregatedGroups)
	}
	t.Logf("plain=%.4f withAgg=%.4f groups=%d", plain.Total.Total(), report.Total.Total(), report.AggregatedGroups)
}

func TestSetAgentSkipsTraining(t *testing.T) {
	cfg := testConfig()
	cfg.TrainSteps = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(genTrace(t, 5, 10, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Agent() == nil {
		t.Fatal("TrainSteps=0 should still install a snapshot agent")
	}
	report, err := s.Run(genTrace(t, 5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalDecisionTime() <= 0 {
		t.Fatal("decision time not measured")
	}
}

func TestRunReportLedgerConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.TrainSteps = 0
	s, _ := New(cfg)
	tr := genTrace(t, 10, 14, 6)
	if _, err := s.Train(tr); err != nil {
		t.Fatal(err)
	}
	report, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	sum := costmodel.SumBreakdowns(report.Daily)
	if math.Abs(sum.Total()-report.Total.Total()) > 1e-9 {
		t.Fatal("daily ledger does not sum to total")
	}
}
