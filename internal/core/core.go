// Package core assembles MiniCost, the paper's system (Fig. 5): an RL agent
// deployed on the web application's side that monitors per-file request
// frequencies, trains an A3C policy on historical data, and every day
// generates a data-storage-type assignment plan executed against the cloud
// store; the concurrent-request aggregation enhancement (§5.2) runs on its
// weekly cadence alongside.
package core

import (
	"errors"
	"fmt"
	"time"

	"minicost/internal/aggregate"
	"minicost/internal/cloudsim"
	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/par"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// Config configures a MiniCost system.
type Config struct {
	// Pricing is the CSP's price schedule; nil selects pricing.Azure().
	Pricing *pricing.Policy
	// A3C is the training configuration (§6.1 defaults via
	// rl.DefaultA3CConfig).
	A3C rl.A3CConfig
	// Reward is Eq. 4's parameterisation.
	Reward mdp.RewardConfig
	// TrainSteps is the number of environment steps for Train.
	TrainSteps int64
	// InitialTier is where files start (web applications default to hot).
	InitialTier pricing.Tier
	// Aggregation enables the §5.2 enhancement when non-nil.
	Aggregation *aggregate.Config
	// AggregationPeriod is the cadence (days) of Algorithm 2; 0 means 7.
	AggregationPeriod int
	// Workers bounds serving-time parallelism.
	Workers int
}

// DefaultConfig returns the paper's configuration without the enhancement.
func DefaultConfig() Config {
	return Config{
		Pricing:     pricing.Azure(),
		A3C:         rl.DefaultA3CConfig(),
		Reward:      mdp.DefaultReward(),
		TrainSteps:  200000,
		InitialTier: pricing.Hot,
	}
}

// System is a MiniCost instance.
type System struct {
	cfg   Config
	model *costmodel.Model
	a3c   *rl.A3C
	agent *rl.Agent
}

// New validates the configuration and builds the (untrained) system.
func New(cfg Config) (*System, error) {
	if cfg.Pricing == nil {
		cfg.Pricing = pricing.Azure()
	}
	if err := cfg.Pricing.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.A3C.Validate(); err != nil {
		return nil, err
	}
	if !cfg.InitialTier.Valid() {
		return nil, fmt.Errorf("core: invalid initial tier")
	}
	if cfg.TrainSteps < 0 {
		return nil, fmt.Errorf("core: TrainSteps %d", cfg.TrainSteps)
	}
	if cfg.Aggregation != nil {
		if err := cfg.Aggregation.Validate(); err != nil {
			return nil, err
		}
	}
	a3c, err := rl.NewA3C(cfg.A3C)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:   cfg,
		model: costmodel.New(cfg.Pricing),
		a3c:   a3c,
	}, nil
}

// Model exposes the system's cost model.
func (s *System) Model() *costmodel.Model { return s.model }

// Train fits the agent on a historical trace (the paper trains on a random
// 80 % of the collected trace). It can be called repeatedly; training
// continues from the current parameters.
func (s *System) Train(hist *trace.Trace) (rl.TrainStats, error) {
	if err := hist.Validate(); err != nil {
		return rl.TrainStats{}, err
	}
	if s.cfg.TrainSteps == 0 {
		s.agent = s.a3c.Snapshot()
		return rl.TrainStats{}, nil
	}
	// Train in chunks with validation-based snapshot selection: the served
	// policy is the best snapshot of the run, not whatever the last
	// gradient step happened to leave (see rl.TrainWithSelection).
	agent, stats, err := rl.TrainWithSelection(s.a3c, s.model, hist, s.cfg.Reward, s.cfg.TrainSteps, 5, s.cfg.InitialTier)
	if err != nil {
		return rl.TrainStats{}, err
	}
	s.agent = agent
	return stats, nil
}

// SetAgent installs a pre-trained agent (used by experiments sharing one
// training run across many evaluations).
func (s *System) SetAgent(agent *rl.Agent) { s.agent = agent }

// Agent returns the serving agent (nil before Train/SetAgent).
func (s *System) Agent() *rl.Agent { return s.agent }

// Trainer exposes the underlying A3C trainer (for convergence experiments).
func (s *System) Trainer() *rl.A3C { return s.a3c }

// RunReport is the outcome of serving a trace.
type RunReport struct {
	// Total is the bill for the whole run; Daily the per-day ledger.
	Total costmodel.Breakdown
	Daily []costmodel.Breakdown
	// DecisionTime is the wall-clock time the assignment algorithm spent
	// per served day (Fig. 12's computing overhead).
	DecisionTime []time.Duration
	// TierChanges counts executed tier transitions.
	TierChanges int
	// AggregatedGroups is the number of groups with an active replica at
	// the end of the run.
	AggregatedGroups int
}

// TotalDecisionTime sums the per-day decision times.
func (r *RunReport) TotalDecisionTime() time.Duration {
	var total time.Duration
	for _, d := range r.DecisionTime {
		total += d
	}
	return total
}

// ErrUntrained is returned by Run before the agent exists.
var ErrUntrained = errors.New("core: system has no trained agent; call Train first")

// Run serves a test trace day by day against a simulated store:
// every day the trained agent assigns each file's tier from the trailing
// frequency history (Algorithm 1's serving loop); when aggregation is
// enabled, Algorithm 2 re-evaluates groups on its period, creating and
// evicting replica objects. The returned report carries the ground-truth
// bill from the store's meter.
func (s *System) Run(tr *trace.Trace) (*RunReport, error) {
	if s.agent == nil {
		return nil, ErrUntrained
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	store, ids := cloudsim.FromTrace(s.model, tr, s.cfg.InitialTier)

	histLen := s.cfg.A3C.Net.HistLen
	reward := s.cfg.Reward
	envs := make([]*mdp.Env, tr.NumFiles())
	states := make([]mdp.State, tr.NumFiles())
	for i := range envs {
		env, err := mdp.NewEnv(s.model, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], s.cfg.InitialTier, histLen, reward)
		if err != nil {
			return nil, err
		}
		envs[i] = env
		states[i] = env.Reset()
	}

	var agg *aggregate.Aggregator
	aggPeriod := s.cfg.AggregationPeriod
	if aggPeriod <= 0 {
		aggPeriod = 7
	}
	if s.cfg.Aggregation != nil {
		var err error
		agg, err = aggregate.New(s.model, *s.cfg.Aggregation)
		if err != nil {
			return nil, err
		}
	}
	// replicaOf maps group index -> replica object id.
	replicaOf := make(map[int]cloudsim.ObjectID)

	report := &RunReport{}
	reads := make([]float64, tr.NumFiles())
	writes := make([]float64, tr.NumFiles())
	// One agent replica per evaluation worker: Decide caches activations,
	// so replicas cannot be shared across goroutines.
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	agentPool := make(chan *rl.Agent, workers)
	for w := 0; w < workers; w++ {
		agentPool <- s.agent.Clone()
	}

	for day := 0; day < tr.Days; day++ {
		// 1. Decide today's tiers (timed: this is Fig. 12's overhead).
		// Decisions are independent across files, so they shard across
		// workers — the serving-side counterpart of the paper's cluster
		// parallelism.
		start := time.Now()
		decisions := make([]pricing.Tier, tr.NumFiles())
		par.ForChunked(tr.NumFiles(), workers, func(lo, hi int) {
			agent := <-agentPool
			for i := lo; i < hi; i++ {
				decisions[i] = agent.Decide(&states[i])
			}
			agentPool <- agent
		})
		report.DecisionTime = append(report.DecisionTime, time.Since(start))

		// 2. Execute the plan on the store.
		for i, tier := range decisions {
			prev, err := store.Tier(ids[i])
			if err != nil {
				return nil, err
			}
			if prev != tier {
				report.TierChanges++
			}
			if err := store.SetTier(ids[i], tier); err != nil {
				return nil, err
			}
			// Keep the MDP views in sync so tomorrow's states are right.
			next, _, _, _, err := envs[i].Step(tier)
			if err != nil {
				return nil, err
			}
			states[i] = next
		}

		// 3. Aggregation maintenance on its weekly cadence (needs at least
		// one observed day).
		if agg != nil && day > 0 && day%aggPeriod == 0 {
			create, del, err := agg.Update(tr, day)
			if err != nil {
				return nil, err
			}
			for _, gi := range del {
				if id, ok := replicaOf[gi]; ok {
					if err := store.RemoveObject(id); err != nil {
						return nil, err
					}
					delete(replicaOf, gi)
				}
			}
			for _, gi := range create {
				members := make([]cloudsim.ObjectID, len(tr.Groups[gi].Members))
				for j, m := range tr.Groups[gi].Members {
					members[j] = ids[m]
				}
				id, err := store.AddReplica(members, s.cfg.Aggregation.ReplicaTier)
				if err != nil {
					return nil, err
				}
				replicaOf[gi] = id
			}
		}

		// 4. Serve today's requests: concurrent reads of aggregated groups
		// hit the replica instead of every member.
		reads = reads[:tr.NumFiles()]
		writes = writes[:tr.NumFiles()]
		for i := range reads {
			reads[i] = tr.Reads[i][day]
			writes[i] = tr.Writes[i][day]
		}
		allReads := reads
		allWrites := writes
		if store.NumObjects() > tr.NumFiles() {
			allReads = make([]float64, store.NumObjects())
			allWrites = make([]float64, store.NumObjects())
			copy(allReads, reads)
			copy(allWrites, writes)
		}
		for gi, id := range replicaOf {
			rdc := tr.Groups[gi].Concurrent[day]
			allReads[id] += rdc
			for _, m := range tr.Groups[gi].Members {
				allReads[m] -= rdc
				if allReads[m] < 0 {
					allReads[m] = 0
				}
			}
		}
		bd, err := store.ServeDay(allReads, allWrites)
		if err != nil {
			return nil, err
		}
		report.Daily = append(report.Daily, bd)
	}
	report.Total = store.TotalBill()
	report.AggregatedGroups = len(replicaOf)
	return report, nil
}

// Assigner returns this system's trained agent wrapped as a policy.Assigner
// (for side-by-side comparison with the baselines).
func (s *System) Assigner() (policy.Assigner, error) {
	if s.agent == nil {
		return nil, ErrUntrained
	}
	return policy.RL{Agent: s.agent, HistLen: s.cfg.A3C.Net.HistLen, Workers: s.cfg.Workers}, nil
}
