package policy

import (
	"math"

	"minicost/internal/costmodel"
	"minicost/internal/forecast"
	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Predictive is the ARIMA-driven extension the paper's §3 motivates but
// never evaluates as a policy: every Period days it forecasts each file's
// next Period daily frequencies with ARIMA and commits to the tier that
// minimizes the *predicted* period cost (including the transition in).
//
// It is an online policy: day-d decisions only use days < d.
type Predictive struct {
	// Period is the re-planning cadence in days (the paper's one-week
	// decision period).
	Period int
	// P, D, Q are the ARIMA orders; zero values select ARIMA(7,0,1) — AR
	// terms covering the weekly cycle plus one MA term.
	P, D, Q int
	// MinHistory is the shortest history ARIMA is fitted on; before that
	// many days the file stays where it is.
	MinHistory int
	Workers    int
}

// DefaultPredictive returns the configuration used in the experiments.
func DefaultPredictive() Predictive {
	return Predictive{Period: 7, P: 7, D: 0, Q: 1, MinHistory: 21}
}

// Name implements Assigner.
func (Predictive) Name() string { return "arima-predictive" }

// Assign implements Assigner.
func (p Predictive) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	period := p.Period
	if period <= 0 {
		period = 7
	}
	pp, dd, qq := p.P, p.D, p.Q
	if pp == 0 && qq == 0 {
		pp, dd, qq = 7, 0, 1
	}
	minHist := p.MinHistory
	if minHist <= 0 {
		minHist = 21
	}
	asg := costmodel.NewAssignment(tr.NumFiles(), tr.Days)
	par.For(tr.NumFiles(), p.Workers, func(i int) {
		plan := asg[i]
		cur := initial
		size := tr.Files[i].SizeGB
		for start := 0; start < tr.Days; start += period {
			end := start + period
			if end > tr.Days {
				end = tr.Days
			}
			choice := cur
			if start >= minHist {
				choice = p.bestTier(m, size, tr.Reads[i][:start], tr.Writes[i][:start], cur, end-start, pp, dd, qq)
			}
			for d := start; d < end; d++ {
				plan[d] = choice
			}
			cur = choice
		}
	})
	return asg, nil
}

// bestTier forecasts the next horizon days and scores each tier on the
// predicted frequencies.
func (p Predictive) bestTier(m *costmodel.Model, size float64, readHist, writeHist []float64, cur pricing.Tier, horizon, pp, dd, qq int) pricing.Tier {
	fr := forecastOrMean(readHist, horizon, pp, dd, qq)
	fw := forecastOrMean(writeHist, horizon, pp, dd, qq)
	best := cur
	bestCost := periodCost(m, size, cur, cur, fr, fw)
	for _, t := range pricing.AllTiers() {
		if t == cur {
			continue
		}
		if c := periodCost(m, size, cur, t, fr, fw); c < bestCost {
			best, bestCost = t, c
		}
	}
	return best
}

// forecastOrMean predicts horizon values with ARIMA, falling back to the
// trailing mean when the series is too short or degenerate for the fit.
func forecastOrMean(hist []float64, horizon, p, d, q int) []float64 {
	if mod, err := forecast.Fit(hist, p, d, q); err == nil {
		fc := mod.Forecast(horizon)
		ok := true
		for i, v := range fc {
			if v < 0 {
				fc[i] = 0
			}
			if math.IsNaN(v) {
				ok = false
				break
			}
		}
		if ok {
			return fc
		}
	}
	mean := trace.Mean(hist)
	out := make([]float64, horizon)
	for i := range out {
		out[i] = mean
	}
	return out
}

// periodCost prices holding `tier` for the whole horizon given predicted
// frequencies, including the transition from cur.
func periodCost(m *costmodel.Model, size float64, cur, tier pricing.Tier, reads, writes []float64) float64 {
	c := m.TransitionCost(cur, tier, size)
	for i := range reads {
		c += m.Day(tier, tier, size, reads[i], writes[i]).Total()
	}
	return c
}
