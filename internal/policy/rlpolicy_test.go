package policy

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

func rlTestFixture(t *testing.T, files, days int, seed uint64) (*rl.Agent, *trace.Trace, *costmodel.Model) {
	t.Helper()
	cfg := rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}
	agent := rl.NewAgent(cfg, cfg.BuildActor(rng.New(seed)))
	gen := trace.DefaultGenConfig()
	gen.NumFiles = files
	gen.Days = days
	gen.Seed = seed
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	return agent, tr, costmodel.New(pricing.Azure())
}

// assignmentsEqual reports whether two assignments agree tier-for-tier.
func assignmentsEqual(a, b costmodel.Assignment) (int, int, bool) {
	if len(a) != len(b) {
		return -1, -1, false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, -1, false
		}
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return i, d, false
			}
		}
	}
	return 0, 0, true
}

// TestRLBatchedMatchesSingleSample is the rewrite's safety net: for a fixed
// seed, the batched day-major engine must produce the exact assignment the
// legacy single-sample loop produced, across worker counts, batch sizes and
// initial tiers.
func TestRLBatchedMatchesSingleSample(t *testing.T) {
	for _, seed := range []uint64{1, 2, 99} {
		agent, tr, m := rlTestFixture(t, 57, 13, seed)
		for _, initial := range []pricing.Tier{pricing.Hot, pricing.Archive} {
			want, err := RL{Agent: agent, SingleSample: true, Workers: 1}.Assign(tr, m, initial)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []RL{
				{Agent: agent},
				{Agent: agent, Workers: 1},
				{Agent: agent, Workers: 7, BatchRows: 9},
				{Agent: agent, Workers: 2, BatchRows: 1},
			} {
				got, err := cfg.Assign(tr, m, initial)
				if err != nil {
					t.Fatal(err)
				}
				if f, d, ok := assignmentsEqual(want, got); !ok {
					t.Fatalf("seed %d workers=%d batch=%d initial=%v: batched differs from single-sample at file %d day %d",
						seed, cfg.Workers, cfg.BatchRows, initial, f, d)
				}
			}
		}
	}
}

// TestRLAssignReplicaCountBoundedByWorkers asserts the headline allocation
// property of the rewrite: network replicas scale with Workers, never with
// the file count.
func TestRLAssignReplicaCountBoundedByWorkers(t *testing.T) {
	agent, tr, m := rlTestFixture(t, 300, 8, 3)
	const workers = 2
	pool := rl.NewReplicaPool(agent)
	if _, err := (RL{Agent: agent, Workers: workers, Pool: pool, BatchRows: 16}).Assign(tr, m, pricing.Hot); err != nil {
		t.Fatal(err)
	}
	if c := pool.Created(); c > workers {
		t.Fatalf("Assign over %d files built %d replicas, want <= %d (bounded by Workers)",
			tr.NumFiles(), c, workers)
	}
	// Repeated runs on a warm pool stay within the same bound: replica
	// construction is a one-time cost, not a per-Assign cost.
	if _, err := (RL{Agent: agent, Workers: workers, Pool: pool, BatchRows: 16}).Assign(tr, m, pricing.Hot); err != nil {
		t.Fatal(err)
	}
	if c := pool.Created(); c > workers {
		t.Fatalf("two Assign runs built %d replicas total, want <= %d", c, workers)
	}
}
