// Package policy implements the data-storage-type assignment strategies the
// paper evaluates (§6.1): the Hot and Cold single-tier baselines, the
// per-day Greedy algorithm, the offline Optimal ("brutal-force") solution —
// computed exactly by a per-file dynamic program, with a literal brute-force
// enumerator kept for validation — plus an ARIMA-predictive greedy extension
// and the adapter that turns a trained RL agent into an assigner.
package policy

import (
	"fmt"

	"minicost/internal/costmodel"
	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Assigner produces a full per-file, per-day tier assignment for a trace.
// Online assigners may only use day d information when deciding day d (the
// paper's Greedy additionally sees day d's own frequencies, matching its
// "offline greedy for each day" definition); offline assigners see the whole
// horizon.
type Assigner interface {
	Name() string
	Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error)
}

// Evaluate runs an assigner and prices its assignment, returning per-file
// breakdowns and the assignment itself.
func Evaluate(a Assigner, tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Breakdown, costmodel.Assignment, error) {
	asg, err := a.Assign(tr, m, initial)
	if err != nil {
		return costmodel.Breakdown{}, nil, fmt.Errorf("policy %s: %w", a.Name(), err)
	}
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = initial
	}
	bds, err := m.TraceCost(tr, asg, init, 0)
	if err != nil {
		return costmodel.Breakdown{}, nil, fmt.Errorf("policy %s: %w", a.Name(), err)
	}
	return costmodel.SumBreakdowns(bds), asg, nil
}

// Static keeps every file in one tier for the whole horizon (the paper's
// Hot and Cold baselines).
type Static struct{ Tier pricing.Tier }

// Name implements Assigner.
func (s Static) Name() string { return s.Tier.String() }

// Assign implements Assigner.
func (s Static) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	if !s.Tier.Valid() {
		return nil, fmt.Errorf("policy: invalid static tier %d", int(s.Tier))
	}
	return costmodel.UniformAssignment(s.Tier, tr.NumFiles(), tr.Days), nil
}

// Greedy is the paper's comparison algorithm: each day it assigns each file
// to the tier minimizing that single day's cost, including the cost of
// changing the storage type, with no look-ahead ("simply select the storage
// type with the minimum money cost only for the next day", §3.2).
//
// By default it is an online policy, like MiniCost itself: the day-d
// decision is priced with day d−1's observed frequencies. Oracle switches to
// the paper's literal offline per-day variant, which sees day d's own
// frequencies before deciding — still myopic, but clairvoyant within the
// day.
type Greedy struct {
	// Oracle grants same-day knowledge (the paper's "offline greedy for
	// each day").
	Oracle bool
	// Workers bounds parallelism across files; <= 0 means GOMAXPROCS.
	Workers int
}

// Name implements Assigner.
func (g Greedy) Name() string {
	if g.Oracle {
		return "greedy-oracle"
	}
	return "greedy"
}

// Assign implements Assigner.
func (g Greedy) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	asg := costmodel.NewAssignment(tr.NumFiles(), tr.Days)
	par.For(tr.NumFiles(), g.Workers, func(i int) {
		c := m.FileCoeffs(tr.Files[i].SizeGB)
		greedyPlan(asg[i], &c, tr.Reads[i], tr.Writes[i], initial, g.Oracle)
	})
	return asg, nil
}

// greedyPlan fills dst with the myopic per-day decisions, a flat loop over
// the file's affine day-cost coefficients (candidate costs are grouped like
// Breakdown.Total(), so decisions match the per-component Day path exactly).
//
//minicost:hotpath
func greedyPlan(dst costmodel.Plan, c *costmodel.FileCoeffs, reads, writes []float64, initial pricing.Tier, oracle bool) {
	cur := initial
	for d := range reads {
		// The frequencies the decision is based on: today's own (oracle) or
		// yesterday's observation (online; day 0 sees day 0, standing in
		// for the pre-horizon history the operator always has).
		obs := d
		if !oracle && d > 0 {
			obs = d - 1
		}
		r, w := reads[obs], writes[obs]
		best := cur
		bestCost := c.DayTotal(cur, cur, r, w)
		for t := pricing.Tier(0); t < pricing.NumTiers; t++ {
			if t == cur {
				continue
			}
			if cost := c.DayTotal(cur, t, r, w); cost < bestCost {
				best, bestCost = t, cost
			}
		}
		dst[d] = best
		cur = best
	}
}

// Optimal computes the exact offline minimum-cost assignment. Per-file costs
// are separable (Eqs. 6–9 sum over files), so the paper's exhaustive search
// over all assignment plans decomposes per file, where a dynamic program
// over (day × tier) finds the same optimum in O(D·Γ²) instead of O(Γ^D) —
// see TestBruteForceMatchesDP for the equivalence proof on small horizons.
type Optimal struct {
	Workers int
}

// Name implements Assigner.
func (Optimal) Name() string { return "optimal" }

// Assign implements Assigner.
func (o Optimal) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	asg := costmodel.NewAssignment(tr.NumFiles(), tr.Days)
	par.For(tr.NumFiles(), o.Workers, func(i int) {
		NewOptimalDP(m, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial).PlanPrefixInto(asg[i])
	})
	return asg, nil
}

// OptimalPlan returns one file's exact minimum-cost plan and its cost.
func OptimalPlan(m *costmodel.Model, sizeGB float64, reads, writes []float64, initial pricing.Tier) (costmodel.Plan, float64) {
	days := len(reads)
	if days == 0 {
		return costmodel.Plan{}, 0
	}
	o := NewOptimalDP(m, sizeGB, reads, writes, initial)
	plan := make(costmodel.Plan, days)
	o.PlanPrefixInto(plan)
	return plan, o.PrefixCost(days)
}

// OptimalDP is one file's forward dynamic program retained over the full
// horizon: dp[d][t] is the minimum cost of days 0..d with the file in tier t
// during day d, from[d][t] the predecessor tier. The recurrence only looks
// backward, so the first d rows are bitwise the tables a run over just
// Window(0, d) would build — one full-horizon pass therefore answers every
// prefix: PrefixCost(d) is the window's exact optimum and PlanPrefixInto
// backtracks the window's plan, which is what the horizon-sweep evaluation
// engine exploits instead of re-running the DP per window.
type OptimalDP struct {
	days int
	dp   [][pricing.NumTiers]float64
	from [][pricing.NumTiers]int8
}

// NewOptimalDP runs the forward pass over the whole series, a fused loop
// over the file's affine day-cost coefficients.
func NewOptimalDP(m *costmodel.Model, sizeGB float64, reads, writes []float64, initial pricing.Tier) *OptimalDP {
	days := len(reads)
	const nt = pricing.NumTiers
	o := &OptimalDP{
		days: days,
		dp:   make([][nt]float64, days),
		from: make([][nt]int8, days),
	}
	if days == 0 {
		return o
	}
	c := m.FileCoeffs(sizeGB)
	for t := 0; t < nt; t++ {
		tier := pricing.Tier(t)
		o.dp[0][t] = c.Transition(initial, tier) + c.DayTotal(tier, tier, reads[0], writes[0])
		o.from[0][t] = int8(initial)
	}
	for d := 1; d < days; d++ {
		r, w := reads[d], writes[d]
		for t := 0; t < nt; t++ {
			tier := pricing.Tier(t)
			serve := c.DayTotal(tier, tier, r, w)
			best := -1
			bestCost := 0.0
			for p := 0; p < nt; p++ {
				cost := o.dp[d-1][p] + c.Transition(pricing.Tier(p), tier)
				if best < 0 || cost < bestCost {
					best, bestCost = p, cost
				}
			}
			o.dp[d][t] = bestCost + serve
			o.from[d][t] = int8(best)
		}
	}
	return o
}

// Days returns the horizon the DP covers.
func (o *OptimalDP) Days() int { return o.days }

// PrefixCost returns min_t dp[days-1][t]: the exact minimum cost of the
// first days days, bitwise the value a per-window OptimalPlan returns.
// days must be in [1, Days()].
func (o *OptimalDP) PrefixCost(days int) float64 {
	return o.dp[days-1][o.bestLast(days)]
}

// PlanPrefixInto backtracks the optimal plan of the first len(dst) days into
// dst — bitwise the plan a per-window OptimalPlan over those days returns
// (ties break toward the lowest tier index, matching the reference).
func (o *OptimalDP) PlanPrefixInto(dst costmodel.Plan) {
	days := len(dst)
	if days == 0 {
		return
	}
	cur := o.bestLast(days)
	for d := days - 1; d >= 0; d-- {
		dst[d] = pricing.Tier(cur)
		cur = int(o.from[d][cur])
	}
}

// bestLast returns the cheapest final tier of the first days days.
func (o *OptimalDP) bestLast(days int) int {
	last := 0
	for t := 1; t < pricing.NumTiers; t++ {
		if o.dp[days-1][t] < o.dp[days-1][last] {
			last = t
		}
	}
	return last
}

// BruteForce enumerates every Γ^D plan per file — the paper's literal
// "offline-brutal-force" method. Exponential; only usable for tiny horizons
// (it refuses beyond MaxDays) and kept as the oracle the DP is tested
// against.
type BruteForce struct{}

// MaxDays bounds BruteForce's horizon (3^10 ≈ 59k plans per file).
const MaxDays = 10

// Name implements Assigner.
func (BruteForce) Name() string { return "brute-force" }

// Assign implements Assigner.
func (b BruteForce) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	if tr.Days > MaxDays {
		return nil, fmt.Errorf("policy: brute force limited to %d days, got %d", MaxDays, tr.Days)
	}
	asg := make(costmodel.Assignment, tr.NumFiles())
	for i := 0; i < tr.NumFiles(); i++ {
		plan, _, err := BruteForcePlan(m, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial)
		if err != nil {
			return nil, err
		}
		asg[i] = plan
	}
	return asg, nil
}

// BruteForcePlan exhaustively searches one file's plan space.
func BruteForcePlan(m *costmodel.Model, sizeGB float64, reads, writes []float64, initial pricing.Tier) (costmodel.Plan, float64, error) {
	days := len(reads)
	if days > MaxDays {
		return nil, 0, fmt.Errorf("policy: brute force limited to %d days, got %d", MaxDays, days)
	}
	total := 1
	for d := 0; d < days; d++ {
		total *= pricing.NumTiers
	}
	var bestPlan costmodel.Plan
	bestCost := 0.0
	plan := make(costmodel.Plan, days)
	for code := 0; code < total; code++ {
		c := code
		for d := 0; d < days; d++ {
			plan[d] = pricing.Tier(c % pricing.NumTiers)
			c /= pricing.NumTiers
		}
		bd, err := m.PlanCost(initial, plan, sizeGB, reads, writes)
		if err != nil {
			return nil, 0, err
		}
		if bestPlan == nil || bd.Total() < bestCost {
			bestPlan = append(costmodel.Plan(nil), plan...)
			bestCost = bd.Total()
		}
	}
	return bestPlan, bestCost, nil
}

// MatchRate returns the fraction of (file, day) decisions on which two
// assignments agree — the paper's "optimal action rate" when b is the
// Optimal assignment (§6.3).
func MatchRate(a, b costmodel.Assignment) float64 {
	total, match := 0, 0
	for i := range a {
		if i >= len(b) {
			break
		}
		for d := range a[i] {
			if d >= len(b[i]) {
				break
			}
			total++
			if a[i][d] == b[i][d] {
				match++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}
