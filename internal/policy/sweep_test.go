package policy

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

// TestOnlinePlansArePrefixStable: every online assigner is causal — its plan
// over Window(0, d) is bitwise the prefix of its full-horizon plan. This is
// the property that lets the horizon-sweep evaluation engine assign each
// method once and read every prefix total off a cumulative cost matrix.
func TestOnlinePlansArePrefixStable(t *testing.T) {
	m := costmodel.New(pricing.Azure())
	net := rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}
	agent := rl.NewAgent(net, net.BuildActor(rng.New(11)))
	assigners := []Assigner{
		Static{Tier: pricing.Hot},
		Static{Tier: pricing.Cool},
		Greedy{},
		Greedy{Oracle: true},
		RL{Agent: agent, HistLen: net.HistLen},
	}
	for seed := uint64(1); seed <= 10; seed++ {
		tr := randomTinyTrace(seed)
		for _, a := range assigners {
			full, err := a.Assign(tr, m, pricing.Hot)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, a.Name(), err)
			}
			for d := 1; d <= tr.Days; d++ {
				window, err := tr.Window(0, d)
				if err != nil {
					t.Fatal(err)
				}
				part, err := a.Assign(window, m, pricing.Hot)
				if err != nil {
					t.Fatalf("seed %d %s window %d: %v", seed, a.Name(), d, err)
				}
				for i := range part {
					for day := 0; day < d; day++ {
						if part[i][day] != full[i][day] {
							t.Fatalf("seed %d %s: file %d day %d: window-%d plan %v != full-plan prefix %v",
								seed, a.Name(), i, day, d, part[i][day], full[i][day])
						}
					}
				}
			}
		}
	}
}

// TestOptimalDPPrefixStable: the forward DP only looks backward, so one
// full-horizon OptimalDP answers every window exactly — PrefixCost(d) is
// bitwise the per-window optimum and the backtracked prefix plan is bitwise
// the per-window plan (same tie-breaks).
func TestOptimalDPPrefixStable(t *testing.T) {
	m := costmodel.New(pricing.Azure())
	for seed := uint64(1); seed <= 20; seed++ {
		tr := randomTinyTrace(seed)
		initial := pricing.Tier(seed % pricing.NumTiers)
		for i := range tr.Files {
			dp := NewOptimalDP(m, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial)
			if dp.Days() != tr.Days {
				t.Fatalf("Days %d != %d", dp.Days(), tr.Days)
			}
			for d := 1; d <= tr.Days; d++ {
				wantPlan, wantCost := OptimalPlan(m, tr.Files[i].SizeGB, tr.Reads[i][:d], tr.Writes[i][:d], initial)
				if got := dp.PrefixCost(d); got != wantCost {
					t.Fatalf("seed %d file %d horizon %d: PrefixCost %v != per-window optimum %v",
						seed, i, d, got, wantCost)
				}
				gotPlan := make(costmodel.Plan, d)
				dp.PlanPrefixInto(gotPlan)
				for day := range gotPlan {
					if gotPlan[day] != wantPlan[day] {
						t.Fatalf("seed %d file %d horizon %d day %d: backtracked %v != per-window %v",
							seed, i, d, day, gotPlan[day], wantPlan[day])
					}
				}
			}
		}
	}
}
