package policy

import (
	"testing"
	"testing/quick"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// randomTinyTrace builds a small random trace directly (bypassing the
// generator) so the property tests explore corners the calibrated generator
// never produces: single-day horizons, huge files, zero traffic.
func randomTinyTrace(seed uint64) *trace.Trace {
	r := rng.New(seed)
	files := 1 + r.Intn(6)
	days := 2 + r.Intn(6)
	tr := &trace.Trace{Days: days}
	for i := 0; i < files; i++ {
		tr.Files = append(tr.Files, trace.FileMeta{ID: i, SizeGB: 0.001 + r.Float64()*r.Float64()*50})
		reads := make([]float64, days)
		writes := make([]float64, days)
		for d := range reads {
			switch r.Intn(4) {
			case 0: // idle
			case 1:
				reads[d] = r.Float64()
			case 2:
				reads[d] = r.Float64() * 100
			default:
				reads[d] = r.Float64() * 100000
			}
			writes[d] = reads[d] * r.Float64() * 0.1
		}
		tr.Reads = append(tr.Reads, reads)
		tr.Writes = append(tr.Writes, writes)
	}
	return tr
}

// TestOptimalLowerBoundProperty: on random corner-case traces, Optimal's
// cost never exceeds any other policy's, under random initial tiers.
func TestOptimalLowerBoundProperty(t *testing.T) {
	m := costmodel.New(pricing.Azure())
	contenders := []Assigner{
		Static{Tier: pricing.Hot},
		Static{Tier: pricing.Cool},
		Static{Tier: pricing.Archive},
		Greedy{},
		Greedy{Oracle: true},
	}
	f := func(seed uint64, initRaw uint8) bool {
		tr := randomTinyTrace(seed)
		if err := tr.Validate(); err != nil {
			t.Logf("seed %d: invalid fixture: %v", seed, err)
			return false
		}
		initial := pricing.Tier(initRaw % pricing.NumTiers)
		opt, _, err := Evaluate(Optimal{}, tr, m, initial)
		if err != nil {
			return false
		}
		for _, c := range contenders {
			got, _, err := Evaluate(c, tr, m, initial)
			if err != nil {
				return false
			}
			if opt.Total() > got.Total()+1e-9 {
				t.Logf("seed %d: optimal %v beaten by %s %v", seed, opt.Total(), c.Name(), got.Total())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalMatchesBruteForceOnRandomTraces extends the DP==brute-force
// equivalence to random multi-file fixtures with random initial tiers.
func TestOptimalMatchesBruteForceOnRandomTraces(t *testing.T) {
	m := costmodel.New(pricing.Azure())
	f := func(seed uint64, initRaw uint8) bool {
		tr := randomTinyTrace(seed)
		if tr.Days > MaxDays {
			return true
		}
		initial := pricing.Tier(initRaw % pricing.NumTiers)
		opt, _, err := Evaluate(Optimal{}, tr, m, initial)
		if err != nil {
			return false
		}
		bf, _, err := Evaluate(BruteForce{}, tr, m, initial)
		if err != nil {
			return false
		}
		diff := opt.Total() - bf.Total()
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+bf.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyNeverStrandedProperty: greedy plans always bill finitely and
// keep valid tiers, even on degenerate traffic.
func TestGreedyNeverStrandedProperty(t *testing.T) {
	m := costmodel.New(pricing.Azure())
	f := func(seed uint64) bool {
		tr := randomTinyTrace(seed)
		asg, err := (Greedy{}).Assign(tr, m, pricing.Hot)
		if err != nil {
			return false
		}
		for i := range asg {
			if len(asg[i]) != tr.Days {
				return false
			}
			for _, tier := range asg[i] {
				if !tier.Valid() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
