package policy

import (
	"fmt"
	"runtime"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// RL adapts a trained MiniCost agent into an Assigner: for each file it
// replays the trace day by day, feeding the agent the trailing history
// window and applying its greedy decision — exactly the serving loop of
// Algorithm 1 ("everyday, the trained agent runs one time for all data
// files").
//
// The default path is the batched inference engine: files are split into
// contiguous chunks (so each chunk's environments stay thread-local to one
// goroutine), each chunk steps day-major through rl.Agent.DecideTrace —
// one GEMM per network layer per day instead of one forward pass per file —
// and pooled replicas bound network copies by the worker count instead of
// the file count. Decisions are bitwise identical to the single-sample
// reference path (see nn/batch.go), which SingleSample exposes for
// equivalence tests and benchmarks.
type RL struct {
	Agent   *rl.Agent
	HistLen int
	Workers int
	// Pool optionally supplies the replica pool (e.g. shared across repeated
	// evaluations of training snapshots); Assign builds a private one when
	// nil.
	Pool *rl.ReplicaPool
	// BatchRows caps how many files one batched step packs into a feature
	// matrix (bounding per-worker activation memory); <= 0 selects
	// rl.DefaultBatchRows.
	BatchRows int
	// SingleSample forces the legacy per-file single-sample loop — the
	// reference implementation batched inference is verified against.
	SingleSample bool
}

// Name implements Assigner.
func (RL) Name() string { return "minicost" }

// Assign implements Assigner.
func (p RL) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	if p.Agent == nil {
		return nil, fmt.Errorf("policy: RL assigner without an agent")
	}
	histLen := p.HistLen
	if histLen <= 0 {
		histLen = p.Agent.Net.HistLen
	}
	if p.SingleSample {
		return p.assignSingleSample(tr, m, initial, histLen)
	}
	n := tr.NumFiles()
	batch := p.BatchRows
	if batch <= 0 {
		batch = rl.DefaultBatchRows
		// Shrink the default so every worker gets a chunk — with few files a
		// fixed 256-row batch would leave most workers idle. An explicit
		// BatchRows is always respected.
		workers := p.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if per := (n + workers - 1) / workers; per < batch {
			batch = per
			if batch < 1 {
				batch = 1
			}
		}
	}
	pool := p.Pool
	if pool == nil {
		pool = rl.NewReplicaPool(p.Agent)
	}
	asg := costmodel.NewAssignment(n, tr.Days)
	reward := mdp.DefaultReward()
	chunkErrs := make([]error, (n+batch-1)/batch)
	par.ForBatched(n, batch, p.Workers, func(lo, hi int) {
		rep := pool.Get()
		defer pool.Put(rep)
		if err := rep.DecideTrace(m, tr, lo, hi, initial, histLen, reward, asg, 1); err != nil {
			chunkErrs[lo/batch] = err
		}
	})
	for _, err := range chunkErrs {
		if err != nil {
			return nil, err
		}
	}
	return asg, nil
}

// assignSingleSample is the pre-batching serving loop: one cloned network
// per goroutine task and one single-sample forward pass per (file, day).
// It is kept as the reference the equivalence property test and the
// inference benchmarks compare the batched engine against.
func (p RL) assignSingleSample(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier, histLen int) (costmodel.Assignment, error) {
	asg := costmodel.NewAssignment(tr.NumFiles(), tr.Days)
	reward := mdp.DefaultReward()
	errs := make([]error, tr.NumFiles())
	par.For(tr.NumFiles(), p.Workers, func(i int) {
		// Each goroutine needs its own network (activation caches).
		agent := p.Agent.Clone()
		env, err := mdp.NewEnv(m, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial, histLen, reward)
		if err != nil {
			errs[i] = err
			return
		}
		plan := asg[i]
		state := env.Reset()
		for d := 0; d < tr.Days; d++ {
			tier := agent.Decide(&state)
			next, _, _, _, err := env.Step(tier)
			if err != nil {
				errs[i] = err
				return
			}
			plan[d] = tier
			state = next
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return asg, nil
}
