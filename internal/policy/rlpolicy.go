package policy

import (
	"fmt"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// RL adapts a trained MiniCost agent into an Assigner: for each file it
// replays the trace day by day, feeding the agent the trailing history
// window and applying its greedy decision — exactly the serving loop of
// Algorithm 1 ("everyday, the trained agent runs one time for all data
// files").
type RL struct {
	Agent   *rl.Agent
	HistLen int
	Workers int
}

// Name implements Assigner.
func (RL) Name() string { return "minicost" }

// Assign implements Assigner.
func (p RL) Assign(tr *trace.Trace, m *costmodel.Model, initial pricing.Tier) (costmodel.Assignment, error) {
	if p.Agent == nil {
		return nil, fmt.Errorf("policy: RL assigner without an agent")
	}
	histLen := p.HistLen
	if histLen <= 0 {
		histLen = p.Agent.Net.HistLen
	}
	asg := make(costmodel.Assignment, tr.NumFiles())
	reward := mdp.DefaultReward()
	errs := make([]error, tr.NumFiles())
	par.For(tr.NumFiles(), p.Workers, func(i int) {
		// Each goroutine needs its own network (activation caches).
		agent := p.Agent.Clone()
		env, err := mdp.NewEnv(m, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial, histLen, reward)
		if err != nil {
			errs[i] = err
			return
		}
		plan := make(costmodel.Plan, tr.Days)
		state := env.Reset()
		for d := 0; d < tr.Days; d++ {
			tier := agent.Decide(&state)
			next, _, _, _, err := env.Step(tier)
			if err != nil {
				errs[i] = err
				return
			}
			plan[d] = tier
			state = next
		}
		asg[i] = plan
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return asg, nil
}
