package policy

import (
	"math"
	"testing"
	"testing/quick"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

func model() *costmodel.Model { return costmodel.New(pricing.Azure()) }

func genTrace(t testing.TB, files, days int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = files
	cfg.Days = days
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStaticAssign(t *testing.T) {
	tr := genTrace(t, 20, 10)
	m := model()
	for _, tier := range pricing.AllTiers() {
		asg, err := Static{Tier: tier}.Assign(tr, m, pricing.Hot)
		if err != nil {
			t.Fatal(err)
		}
		for i := range asg {
			for d := range asg[i] {
				if asg[i][d] != tier {
					t.Fatalf("static %v assigned %v", tier, asg[i][d])
				}
			}
		}
	}
	if _, err := (Static{Tier: pricing.Tier(9)}).Assign(tr, m, pricing.Hot); err == nil {
		t.Fatal("invalid static tier accepted")
	}
}

func TestBruteForceMatchesDP(t *testing.T) {
	// The central equivalence: the O(D·Γ²) dynamic program computes exactly
	// the optimum the paper's exhaustive search defines.
	m := model()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		days := 3 + r.Intn(4) // 3..6 days: 3^6=729 plans
		reads := make([]float64, days)
		writes := make([]float64, days)
		for d := range reads {
			reads[d] = r.Float64() * 2000
			writes[d] = r.Float64() * 20
		}
		size := 0.01 + r.Float64()
		initial := pricing.Tier(r.Intn(3))
		dpPlan, dpCost := OptimalPlan(m, size, reads, writes, initial)
		_, bfCost, err := BruteForcePlan(m, size, reads, writes, initial)
		if err != nil {
			return false
		}
		if math.Abs(dpCost-bfCost) > 1e-9 {
			t.Logf("seed %d: dp %v brute %v", seed, dpCost, bfCost)
			return false
		}
		// The DP's own plan must price to its claimed cost.
		bd, err := m.PlanCost(initial, dpPlan, size, reads, writes)
		if err != nil || math.Abs(bd.Total()-dpCost) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalLowerBoundsEveryPolicy(t *testing.T) {
	// Optimal must never cost more than Hot, Cold, Archive, or Greedy on
	// any trace — the paper's "lower bound for all online methods".
	tr := genTrace(t, 60, 21)
	m := model()
	optCost, _, err := Evaluate(Optimal{}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Assigner{
		Static{Tier: pricing.Hot},
		Static{Tier: pricing.Cool},
		Static{Tier: pricing.Archive},
		Greedy{},
		DefaultPredictive(),
	} {
		c, _, err := Evaluate(a, tr, m, pricing.Hot)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if optCost.Total() > c.Total()+1e-9 {
			t.Fatalf("optimal %v beats %s %v — bound violated", optCost.Total(), a.Name(), c.Total())
		}
	}
}

func TestGreedyBeatsWorstStatic(t *testing.T) {
	tr := genTrace(t, 80, 21)
	m := model()
	greedy, _, err := Evaluate(Greedy{}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	hot, _, _ := Evaluate(Static{Tier: pricing.Hot}, tr, m, pricing.Hot)
	cold, _, _ := Evaluate(Static{Tier: pricing.Cool}, tr, m, pricing.Hot)
	worst := math.Max(hot.Total(), cold.Total())
	if greedy.Total() >= worst {
		t.Fatalf("greedy %v not better than worst static %v", greedy.Total(), worst)
	}
}

func TestGreedyChasesVolatileFiles(t *testing.T) {
	// Online greedy's failure mode (§3.2): on an alternating busy/idle file
	// it reacts to yesterday's frequency, so it is in the wrong tier every
	// day and pays transition churn on top. Optimal holds steady and must
	// beat it clearly.
	m := model()
	days := 14
	reads := make([]float64, days)
	writes := make([]float64, days)
	for d := range reads {
		if d%2 == 0 {
			reads[d] = 4000 // hot clearly wins the day
		} else {
			reads[d] = 0 // archive wins the day
		}
	}
	g := make(costmodel.Plan, days)
	c := m.FileCoeffs(0.1)
	greedyPlan(g, &c, reads, writes, pricing.Hot, false)
	changes := g.Changes(pricing.Hot)
	if changes < 4 {
		t.Fatalf("expected flip-flopping greedy, got %d changes (%v)", changes, g)
	}
	_, optCost := OptimalPlan(m, 0.1, reads, writes, pricing.Hot)
	bd, err := m.PlanCost(pricing.Hot, g, 0.1, reads, writes)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= optCost*1.2 {
		t.Fatalf("greedy %v should cost clearly more than optimal %v here", bd.Total(), optCost)
	}
}

func TestGreedyOracleBeatsOnlineGreedy(t *testing.T) {
	// Same-day knowledge can only help a per-day policy.
	tr := genTrace(t, 80, 21)
	m := model()
	online, _, err := Evaluate(Greedy{}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _, err := Evaluate(Greedy{Oracle: true}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Total() > online.Total()*1.02 {
		t.Fatalf("oracle greedy %v worse than online %v", oracle.Total(), online.Total())
	}
}

func TestGreedyMovesIdleFilesOutOfHot(t *testing.T) {
	// With the default pricing the hot->archive storage differential
	// exceeds the transition fee within a day, so greedy must park a
	// permanently idle file in archive.
	m := model()
	days := 10
	reads := make([]float64, days)
	writes := make([]float64, days)
	g := make(costmodel.Plan, days)
	c := m.FileCoeffs(0.1)
	greedyPlan(g, &c, reads, writes, pricing.Hot, false)
	if g[days-1] != pricing.Archive {
		t.Fatalf("idle file ends in %v, want archive (%v)", g[days-1], g)
	}
}

func TestOptimalPlanEmptySeries(t *testing.T) {
	plan, cost := OptimalPlan(model(), 0.1, nil, nil, pricing.Hot)
	if len(plan) != 0 || cost != 0 {
		t.Fatal("empty series should give empty plan")
	}
}

func TestBruteForceRefusesLongHorizons(t *testing.T) {
	tr := genTrace(t, 2, MaxDays+1)
	if _, err := (BruteForce{}).Assign(tr, model(), pricing.Hot); err == nil {
		t.Fatal("long-horizon brute force accepted")
	}
	long := make([]float64, MaxDays+1)
	if _, _, err := BruteForcePlan(model(), 0.1, long, long, pricing.Hot); err == nil {
		t.Fatal("long-horizon brute force plan accepted")
	}
}

func TestBruteForceAssignerMatchesOptimalAssigner(t *testing.T) {
	tr := genTrace(t, 10, 5)
	m := model()
	bf, _, err := Evaluate(BruteForce{}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Evaluate(Optimal{}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf.Total()-opt.Total()) > 1e-9 {
		t.Fatalf("brute %v vs dp %v", bf.Total(), opt.Total())
	}
}

func TestPredictiveBeatsStaticOnSeasonalWorkload(t *testing.T) {
	// Strongly weekly-cyclical files: ARIMA sees the cycle, so predictive
	// re-tiering should at least not lose to the best static choice.
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 40
	cfg.Days = 56
	cfg.WeeklyAmplitude = 0.5
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := model()
	pred, _, err := Evaluate(DefaultPredictive(), tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	hot, _, _ := Evaluate(Static{Tier: pricing.Hot}, tr, m, pricing.Hot)
	cold, _, _ := Evaluate(Static{Tier: pricing.Cool}, tr, m, pricing.Hot)
	worst := math.Max(hot.Total(), cold.Total())
	if pred.Total() > worst {
		t.Fatalf("predictive %v worse than worst static %v", pred.Total(), worst)
	}
}

func TestRLAssignerShapes(t *testing.T) {
	tr := genTrace(t, 10, 12)
	m := model()
	netCfg := rl.NetConfig{HistLen: 7, Filters: 4, Kernel: 3, Stride: 1, Hidden: 8}
	agent := rl.NewAgent(netCfg, netCfg.BuildActor(rng.New(1)))
	asg, err := RL{Agent: agent}.Assign(tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != tr.NumFiles() {
		t.Fatal("wrong file count")
	}
	for i := range asg {
		if len(asg[i]) != tr.Days {
			t.Fatal("wrong plan length")
		}
		for _, tier := range asg[i] {
			if !tier.Valid() {
				t.Fatal("invalid tier in RL plan")
			}
		}
	}
	if _, err := (RL{}).Assign(tr, m, pricing.Hot); err == nil {
		t.Fatal("nil agent accepted")
	}
}

func TestRLAssignerDeterministicAcrossWorkers(t *testing.T) {
	tr := genTrace(t, 12, 10)
	m := model()
	netCfg := rl.NetConfig{HistLen: 7, Filters: 4, Kernel: 3, Stride: 1, Hidden: 8}
	agent := rl.NewAgent(netCfg, netCfg.BuildActor(rng.New(2)))
	a1, err := RL{Agent: agent, Workers: 1}.Assign(tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := RL{Agent: agent, Workers: 8}.Assign(tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if MatchRate(a1, a8) != 1 {
		t.Fatal("worker count changed RL decisions")
	}
}

func TestMatchRate(t *testing.T) {
	a := costmodel.Assignment{
		{pricing.Hot, pricing.Hot, pricing.Cool},
		{pricing.Archive, pricing.Archive, pricing.Archive},
	}
	b := costmodel.Assignment{
		{pricing.Hot, pricing.Cool, pricing.Cool},
		{pricing.Archive, pricing.Archive, pricing.Hot},
	}
	if got := MatchRate(a, b); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("MatchRate = %v, want 4/6", got)
	}
	if MatchRate(a, a) != 1 {
		t.Fatal("self match != 1")
	}
	if MatchRate(costmodel.Assignment{}, costmodel.Assignment{}) != 0 {
		t.Fatal("empty match should be 0")
	}
}

func TestCostOrderingOnDefaultWorkload(t *testing.T) {
	// The qualitative Fig. 7 ordering for the non-RL methods:
	// Optimal <= Greedy <= min(Hot, Cold) on the default workload.
	tr := genTrace(t, 150, 35)
	m := model()
	cost := func(a Assigner) float64 {
		c, _, err := Evaluate(a, tr, m, pricing.Hot)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		return c.Total()
	}
	opt := cost(Optimal{})
	greedy := cost(Greedy{})
	hot := cost(Static{Tier: pricing.Hot})
	cold := cost(Static{Tier: pricing.Cool})
	if !(opt <= greedy+1e-9) {
		t.Fatalf("optimal %v > greedy %v", opt, greedy)
	}
	if !(greedy <= math.Min(hot, cold)+1e-9) {
		t.Fatalf("greedy %v > best static %v", greedy, math.Min(hot, cold))
	}
	t.Logf("optimal=%.2f greedy=%.2f hot=%.2f cold=%.2f", opt, greedy, hot, cold)
}

func BenchmarkOptimalPlan35Days(b *testing.B) {
	m := model()
	r := rng.New(1)
	reads := make([]float64, 35)
	writes := make([]float64, 35)
	for d := range reads {
		reads[d] = r.Float64() * 1000
		writes[d] = r.Float64() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalPlan(m, 0.1, reads, writes, pricing.Hot)
	}
}

func BenchmarkGreedyAssign1k(b *testing.B) {
	tr := genTrace(b, 1000, 35)
	m := model()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Greedy{}).Assign(tr, m, pricing.Hot); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalAssign1k(b *testing.B) {
	tr := genTrace(b, 1000, 35)
	m := model()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Optimal{}).Assign(tr, m, pricing.Hot); err != nil {
			b.Fatal(err)
		}
	}
}
