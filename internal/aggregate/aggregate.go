// Package aggregate implements the paper's enhancement (§5.2): aggregating
// concurrently-requested data files into replica objects so one request to
// the replica replaces one request to each member.
//
// For a group of n files with r_dc concurrent requests, aggregation saves
// (n−1)·r_dc read operations per day but stores an extra copy of every
// member (Eqs. 13–14; the per-GB retrieval terms cancel exactly). The
// aggregation coefficient
//
//	Ω = (n−1)·r_dc / Σ D_i − u_p / u_rf        (Eq. 16)
//
// is positive exactly when aggregation pays (Eq. 15). All rates here are
// per-day: r_dc is the mean daily concurrent-request count over the
// evaluation window and u_p the replica tier's per-GB-day storage price.
package aggregate

import (
	"errors"
	"fmt"
	"sort"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Config controls the aggregation procedure.
type Config struct {
	// Psi (Ψ) caps how many groups are aggregated, best-Ω first (§5.2:
	// "select the top manually set Ψ groups").
	Psi int
	// WindowDays is the history window over which the mean concurrent
	// request rate is measured (the paper uses one week).
	WindowDays int
	// EvictAfter is the number of consecutive evaluations with Ω < 0 after
	// which an aggregated replica is deleted (the paper: "two consecutive
	// weeks").
	EvictAfter int
	// ReplicaTier is the tier replicas are created in.
	ReplicaTier pricing.Tier
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{Psi: 64, WindowDays: 7, EvictAfter: 2, ReplicaTier: pricing.Hot}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Psi < 0 {
		return fmt.Errorf("aggregate: Psi %d", c.Psi)
	}
	if c.WindowDays <= 0 {
		return fmt.Errorf("aggregate: WindowDays %d", c.WindowDays)
	}
	if c.EvictAfter <= 0 {
		return fmt.Errorf("aggregate: EvictAfter %d", c.EvictAfter)
	}
	if !c.ReplicaTier.Valid() {
		return fmt.Errorf("aggregate: invalid replica tier")
	}
	return nil
}

// Omega computes Eq. 16 for a group: n members totalling sumSizeGB, with a
// mean daily concurrent-request rate rdc, a replica stored at upPerGBDay
// ($/GB/day) and reads priced at urfPerOp ($/operation).
func Omega(n int, rdc, sumSizeGB, upPerGBDay, urfPerOp float64) float64 {
	if n < 2 || sumSizeGB <= 0 || urfPerOp <= 0 {
		return -1
	}
	return float64(n-1)*rdc/sumSizeGB - upPerGBDay/urfPerOp
}

// RdcThreshold returns Eq. 15's minimum concurrent-request rate for
// aggregation of the group to pay off.
func RdcThreshold(n int, sumSizeGB, upPerGBDay, urfPerOp float64) float64 {
	if n < 2 {
		return 0
	}
	return upPerGBDay * sumSizeGB / (float64(n-1) * urfPerOp)
}

// GroupScore is one group's evaluation.
type GroupScore struct {
	Group int // index into the trace's Groups
	Omega float64
	// MeanRdc is the window-mean daily concurrent request rate.
	MeanRdc   float64
	SumSizeGB float64
}

// ScoreGroups evaluates Ω for every group over the trailing window ending
// just before day `day` (exclusive). A window extending past the available
// history is truncated.
func ScoreGroups(tr *trace.Trace, m *costmodel.Model, cfg Config, day int) ([]GroupScore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if day <= 0 || day > tr.Days {
		return nil, fmt.Errorf("aggregate: day %d outside (0,%d]", day, tr.Days)
	}
	lo := day - cfg.WindowDays
	if lo < 0 {
		lo = 0
	}
	up := m.Policy.StoragePerGBDay(cfg.ReplicaTier)
	urf := m.Policy.ReadOpPrice(cfg.ReplicaTier)
	out := make([]GroupScore, 0, len(tr.Groups))
	for gi, g := range tr.Groups {
		sum := 0.0
		for d := lo; d < day; d++ {
			sum += g.Concurrent[d]
		}
		rdc := sum / float64(day-lo)
		size := 0.0
		for _, mber := range g.Members {
			size += tr.Files[mber].SizeGB
		}
		out = append(out, GroupScore{
			Group:     gi,
			Omega:     Omega(len(g.Members), rdc, size, up, urf),
			MeanRdc:   rdc,
			SumSizeGB: size,
		})
	}
	return out, nil
}

// SelectTop implements Algorithm 2's selection: groups with Ω > 0 sorted
// descending, capped at Ψ.
func SelectTop(scores []GroupScore, psi int) []GroupScore {
	pos := make([]GroupScore, 0, len(scores))
	for _, s := range scores {
		if s.Omega > 0 {
			pos = append(pos, s)
		}
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i].Omega > pos[j].Omega })
	if psi > 0 && len(pos) > psi {
		pos = pos[:psi]
	}
	return pos
}

// Aggregator runs the periodic procedure of Algorithm 2, tracking which
// groups currently have replicas and evicting persistent losers.
type Aggregator struct {
	cfg   Config
	model *costmodel.Model
	// active maps group index -> consecutive negative-Ω evaluations.
	active map[int]int
}

// New returns an aggregator.
func New(m *costmodel.Model, cfg Config) (*Aggregator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Aggregator{cfg: cfg, model: m, active: make(map[int]int)}, nil
}

// Active returns the currently aggregated group indices (sorted).
func (a *Aggregator) Active() []int {
	out := make([]int, 0, len(a.active))
	//minicost:allow-maprange keys are sorted before returning
	for gi := range a.active {
		out = append(out, gi)
	}
	sort.Ints(out)
	return out
}

// IsActive reports whether the group currently has a replica.
func (a *Aggregator) IsActive(group int) bool {
	_, ok := a.active[group]
	return ok
}

// Update re-evaluates all groups at the given day and returns which groups
// to aggregate (Create) and which replicas to drop (Delete). The paper's
// rules: create the top-Ψ positive-Ω groups; delete a replica once Ω has
// been negative for EvictAfter consecutive evaluations.
func (a *Aggregator) Update(tr *trace.Trace, day int) (create, del []int, err error) {
	scores, err := ScoreGroups(tr, a.model, a.cfg, day)
	if err != nil {
		return nil, nil, err
	}
	top := SelectTop(scores, a.cfg.Psi)
	selected := make(map[int]bool, len(top))
	for _, s := range top {
		selected[s.Group] = true
	}
	// New aggregations.
	for _, s := range top {
		if !a.IsActive(s.Group) {
			a.active[s.Group] = 0
			create = append(create, s.Group)
		}
	}
	// Existing replicas: reset or grow the negative streak.
	byGroup := make(map[int]GroupScore, len(scores))
	for _, s := range scores {
		byGroup[s.Group] = s
	}
	//minicost:allow-maprange per-group updates commute; create/del are sorted before returning
	for gi := range a.active {
		s, ok := byGroup[gi]
		switch {
		case ok && s.Omega >= 0:
			a.active[gi] = 0
		default:
			a.active[gi]++
			if a.active[gi] >= a.cfg.EvictAfter {
				delete(a.active, gi)
				del = append(del, gi)
			}
		}
	}
	sort.Ints(create)
	sort.Ints(del)
	return create, del, nil
}

// ErrNoGroups reports a trace without concurrency information.
var ErrNoGroups = errors.New("aggregate: trace has no concurrency groups")

// ApplyToTrace rewrites a trace as if the given groups were aggregated for
// the whole horizon: each member's reads drop by the group's concurrent
// rate (those requests now hit the replica), and one new pseudo-file per
// group is appended carrying the replica's size and the concurrent reads.
// The result prices aggregation with any Assigner; it shares no storage
// with the input.
func ApplyToTrace(tr *trace.Trace, groups []int) (*trace.Trace, error) {
	if len(tr.Groups) == 0 {
		return nil, ErrNoGroups
	}
	out := &trace.Trace{Days: tr.Days}
	out.Files = append([]trace.FileMeta(nil), tr.Files...)
	out.Reads = make([][]float64, len(tr.Reads), len(tr.Reads)+len(groups))
	out.Writes = make([][]float64, len(tr.Writes), len(tr.Writes)+len(groups))
	for i := range tr.Reads {
		out.Reads[i] = append([]float64(nil), tr.Reads[i]...)
		out.Writes[i] = append([]float64(nil), tr.Writes[i]...)
	}
	for _, gi := range groups {
		if gi < 0 || gi >= len(tr.Groups) {
			return nil, fmt.Errorf("aggregate: group %d out of range", gi)
		}
		g := tr.Groups[gi]
		size := 0.0
		for _, m := range g.Members {
			size += tr.Files[m].SizeGB
		}
		reads := make([]float64, tr.Days)
		for d := 0; d < tr.Days; d++ {
			rdc := g.Concurrent[d]
			reads[d] = rdc
			for _, m := range g.Members {
				out.Reads[m][d] -= rdc
				if out.Reads[m][d] < 0 {
					out.Reads[m][d] = 0
				}
			}
		}
		out.Files = append(out.Files, trace.FileMeta{
			ID:     len(out.Files),
			SizeGB: size,
		})
		out.Reads = append(out.Reads, reads)
		out.Writes = append(out.Writes, make([]float64, tr.Days))
	}
	// Groups are intentionally dropped: the derived trace represents the
	// post-aggregation request stream.
	return out, nil
}
