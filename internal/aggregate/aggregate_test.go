package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"minicost/internal/costmodel"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

func model() *costmodel.Model { return costmodel.New(pricing.Azure()) }

func TestOmegaSignMatchesEq15(t *testing.T) {
	// Ω > 0 exactly when rdc exceeds the Eq. 15 threshold.
	m := model()
	up := m.Policy.StoragePerGBDay(pricing.Hot)
	urf := m.Policy.ReadOpPrice(pricing.Hot)
	f := func(nRaw uint8, rdcRaw, sizeRaw uint16) bool {
		n := int(nRaw%4) + 2
		rdc := float64(rdcRaw) / 10
		size := float64(sizeRaw)/100 + 0.01
		threshold := RdcThreshold(n, size, up, urf)
		om := Omega(n, rdc, size, up, urf)
		if rdc > threshold*1.0000001 {
			return om > 0
		}
		if rdc < threshold*0.9999999 {
			return om <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOmegaDegenerate(t *testing.T) {
	if Omega(1, 10, 1, 0.01, 0.001) >= 0 {
		t.Fatal("single-member group should never aggregate")
	}
	if Omega(3, 10, 0, 0.01, 0.001) >= 0 {
		t.Fatal("zero size should be rejected")
	}
}

func TestAggregationSavingMatchesCostModel(t *testing.T) {
	// First principles: price a 2-file group with and without aggregation
	// using the cost model directly; aggregation must win exactly when
	// Ω > 0. Files and replica all stay in the same tier so Eq. 13/14 apply
	// verbatim.
	m := model()
	tier := pricing.Hot
	days := 14
	for _, rdc := range []float64{0.01, 0.2, 1, 10, 120, 500} {
		size := 0.1
		reads := make([]float64, days)
		for d := range reads {
			reads[d] = rdc + 5 // each member gets rdc concurrent + 5 own reads
		}
		zero := make([]float64, days)
		plain := 0.0
		for i := 0; i < 2; i++ {
			bd, err := m.PlanCost(tier, costmodel.Uniform(tier, days), size, reads, zero)
			if err != nil {
				t.Fatal(err)
			}
			plain += bd.Total()
		}
		// Aggregated: members keep 5 own reads, replica (0.2 GB) serves rdc.
		memberReads := make([]float64, days)
		replicaReads := make([]float64, days)
		for d := range memberReads {
			memberReads[d] = 5
			replicaReads[d] = rdc
		}
		agg := 0.0
		for i := 0; i < 2; i++ {
			bd, err := m.PlanCost(tier, costmodel.Uniform(tier, days), size, memberReads, zero)
			if err != nil {
				t.Fatal(err)
			}
			agg += bd.Total()
		}
		bd, err := m.PlanCost(tier, costmodel.Uniform(tier, days), 2*size, replicaReads, zero)
		if err != nil {
			t.Fatal(err)
		}
		agg += bd.Total()

		om := Omega(2, rdc, 2*size, m.Policy.StoragePerGBDay(tier), m.Policy.ReadOpPrice(tier))
		if om > 0 && agg >= plain {
			t.Fatalf("rdc=%v: Ω=%v > 0 but aggregation not cheaper (%v vs %v)", rdc, om, agg, plain)
		}
		if om < 0 && agg <= plain {
			t.Fatalf("rdc=%v: Ω=%v < 0 but aggregation cheaper (%v vs %v)", rdc, om, agg, plain)
		}
	}
}

func genTrace(t testing.TB, files, days int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = files
	cfg.Days = days
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestScoreGroups(t *testing.T) {
	tr := genTrace(t, 100, 21)
	m := model()
	scores, err := ScoreGroups(tr, m, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(tr.Groups) {
		t.Fatalf("scored %d of %d groups", len(scores), len(tr.Groups))
	}
	for _, s := range scores {
		if s.SumSizeGB <= 0 || s.MeanRdc < 0 {
			t.Fatalf("bad score %+v", s)
		}
	}
	if _, err := ScoreGroups(tr, m, DefaultConfig(), 0); err == nil {
		t.Fatal("day 0 accepted")
	}
	if _, err := ScoreGroups(tr, m, DefaultConfig(), tr.Days+1); err == nil {
		t.Fatal("day beyond horizon accepted")
	}
	bad := DefaultConfig()
	bad.WindowDays = 0
	if _, err := ScoreGroups(tr, m, bad, 7); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSelectTop(t *testing.T) {
	scores := []GroupScore{
		{Group: 0, Omega: 5},
		{Group: 1, Omega: -1},
		{Group: 2, Omega: 10},
		{Group: 3, Omega: 0.5},
		{Group: 4, Omega: 0},
	}
	top := SelectTop(scores, 2)
	if len(top) != 2 || top[0].Group != 2 || top[1].Group != 0 {
		t.Fatalf("top = %+v", top)
	}
	all := SelectTop(scores, 0)
	if len(all) != 3 {
		t.Fatalf("psi=0 should keep all positives, got %d", len(all))
	}
}

func TestAggregatorLifecycle(t *testing.T) {
	// Hand-built trace: one group whose concurrency starts high and then
	// goes to zero. The aggregator must create a replica early and evict it
	// after EvictAfter negative evaluations.
	days := 28
	mkReads := func(level float64) []float64 {
		out := make([]float64, days)
		for d := range out {
			if d < 14 {
				out[d] = level
			}
		}
		return out
	}
	tr := &trace.Trace{Days: days}
	for i := 0; i < 2; i++ {
		tr.Files = append(tr.Files, trace.FileMeta{ID: i, SizeGB: 0.1})
		tr.Reads = append(tr.Reads, mkReads(500))
		tr.Writes = append(tr.Writes, make([]float64, days))
	}
	tr.Groups = []trace.Group{{Members: []int{0, 1}, Concurrent: mkReads(400)}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m := model()
	cfg := DefaultConfig()
	ag, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	create, del, err := ag.Update(tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(create) != 1 || len(del) != 0 || !ag.IsActive(0) {
		t.Fatalf("week 1: create=%v del=%v", create, del)
	}
	// Week 2 still busy: no change.
	create, del, _ = ag.Update(tr, 14)
	if len(create) != 0 || len(del) != 0 {
		t.Fatalf("week 2: create=%v del=%v", create, del)
	}
	// Weeks 3-4: concurrency zero -> Ω < 0 twice -> evict on the second.
	create, del, _ = ag.Update(tr, 21)
	if len(del) != 0 || !ag.IsActive(0) {
		t.Fatalf("week 3 premature eviction: del=%v", del)
	}
	create, del, _ = ag.Update(tr, 28)
	if len(del) != 1 || ag.IsActive(0) {
		t.Fatalf("week 4: del=%v active=%v", del, ag.Active())
	}
	_ = create
}

func TestApplyToTrace(t *testing.T) {
	tr := genTrace(t, 60, 14)
	if len(tr.Groups) == 0 {
		t.Fatal("need groups")
	}
	derived, err := ApplyToTrace(tr, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if derived.NumFiles() != tr.NumFiles()+1 {
		t.Fatal("replica file not appended")
	}
	g := tr.Groups[0]
	for d := 0; d < tr.Days; d++ {
		// Replica carries the concurrent reads.
		if math.Abs(derived.Reads[tr.NumFiles()][d]-g.Concurrent[d]) > 1e-12 {
			t.Fatal("replica reads wrong")
		}
		for _, mber := range g.Members {
			want := tr.Reads[mber][d] - g.Concurrent[d]
			if want < 0 {
				want = 0
			}
			if math.Abs(derived.Reads[mber][d]-want) > 1e-12 {
				t.Fatal("member reads not reduced")
			}
		}
	}
	// Total requests decreased by (n-1) * total concurrency.
	savedWant := 0.0
	for d := 0; d < tr.Days; d++ {
		savedWant += float64(len(g.Members)-1) * g.Concurrent[d]
	}
	saved := tr.TotalRequests() - derived.TotalRequests()
	if math.Abs(saved-savedWant) > 1e-6 {
		t.Fatalf("request reduction %v, want %v", saved, savedWant)
	}
	// Original untouched.
	if tr.NumFiles() == derived.NumFiles() {
		t.Fatal("input mutated")
	}
	if _, err := ApplyToTrace(tr, []int{999}); err == nil {
		t.Fatal("bad group index accepted")
	}
	if _, err := ApplyToTrace(&trace.Trace{Days: 3}, nil); err == nil {
		t.Fatal("trace without groups accepted")
	}
}

func TestAggregationReducesCostWhenOmegaPositive(t *testing.T) {
	// End-to-end: on a trace with strong concurrency, aggregating the
	// positive-Ω groups must not increase the optimal-policy cost.
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 120
	cfg.Days = 21
	cfg.HeadFraction = 0.2 // plenty of head files -> some groups clear Eq. 15
	cfg.GroupFraction = 0.5
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := model()
	scores, err := ScoreGroups(tr, m, DefaultConfig(), tr.Days)
	if err != nil {
		t.Fatal(err)
	}
	top := SelectTop(scores, 0)
	if len(top) == 0 {
		t.Skip("no positive-Ω groups in this trace")
	}
	groups := make([]int, len(top))
	for i, s := range top {
		groups[i] = s.Group
	}
	derived, err := ApplyToTrace(tr, groups)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := policy.Evaluate(policy.Optimal{}, tr, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	agg, _, err := policy.Evaluate(policy.Optimal{}, derived, m, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Total() > base.Total() {
		t.Fatalf("aggregation raised optimal cost: %v -> %v", base.Total(), agg.Total())
	}
	t.Logf("optimal cost %v -> %v with %d groups aggregated", base.Total(), agg.Total(), len(groups))
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Psi: -1, WindowDays: 7, EvictAfter: 2, ReplicaTier: pricing.Hot},
		{Psi: 1, WindowDays: 0, EvictAfter: 2, ReplicaTier: pricing.Hot},
		{Psi: 1, WindowDays: 7, EvictAfter: 0, ReplicaTier: pricing.Hot},
		{Psi: 1, WindowDays: 7, EvictAfter: 2, ReplicaTier: pricing.Tier(9)},
	} {
		if bad.Validate() == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	if _, err := New(model(), Config{}); err == nil {
		t.Fatal("zero config accepted by New")
	}
}

func BenchmarkScoreGroups(b *testing.B) {
	tr := genTrace(b, 2000, 21)
	m := model()
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScoreGroups(tr, m, cfg, 7); err != nil {
			b.Fatal(err)
		}
	}
}
