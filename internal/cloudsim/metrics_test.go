package cloudsim

import (
	"math"
	"testing"

	"minicost/internal/obs"
	"minicost/internal/pricing"
)

// TestSimMetricsAdvance drives a store with the default registry enabled
// and asserts the sim instruments track ops and accrued cost. Deltas, not
// absolutes — the registry is process-global.
func TestSimMetricsAdvance(t *testing.T) {
	reg := obs.Default()
	was := reg.Enabled()
	reg.SetEnabled(true)
	t.Cleanup(func() { reg.SetEnabled(was) })

	before := reg.Snapshot()
	s := newStore()
	a := s.AddObject(0.1, pricing.Hot)
	s.AddObject(0.2, pricing.Cool)
	if err := s.SetTier(a, pricing.Archive); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTier(a, pricing.Archive); err != nil { // no-op: same tier
		t.Fatal(err)
	}
	bd, err := s.ServeDay([]float64{100, 50}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()

	delta := func(id string) float64 { return after.Counter(id) - before.Counter(id) }
	if got := delta("minicost_sim_tier_changes_total"); got != 1 {
		t.Errorf("tier changes delta = %v, want 1 (no-op SetTier must not count)", got)
	}
	if got := delta("minicost_sim_read_ops_total"); got != 150 {
		t.Errorf("read ops delta = %v, want 150", got)
	}
	if got := delta("minicost_sim_write_ops_total"); got != 3 {
		t.Errorf("write ops delta = %v, want 3", got)
	}
	if got := delta("minicost_sim_days_total"); got != 1 {
		t.Errorf("days delta = %v, want 1", got)
	}
	accrued := after.Gauge("minicost_sim_accrued_cost_dollars") - before.Gauge("minicost_sim_accrued_cost_dollars")
	if math.Abs(accrued-bd.Total()) > 1e-12 {
		t.Errorf("accrued cost delta = %v, want %v", accrued, bd.Total())
	}
}
