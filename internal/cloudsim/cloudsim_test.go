package cloudsim

import (
	"math"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

func newStore() *Store { return NewStore(costmodel.New(pricing.Azure())) }

func TestAddAndServe(t *testing.T) {
	s := newStore()
	a := s.AddObject(0.1, pricing.Hot)
	b := s.AddObject(0.2, pricing.Cool)
	bd, err := s.ServeDay([]float64{100, 50}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	wantStorage := m.StorageDay(pricing.Hot, 0.1) + m.StorageDay(pricing.Cool, 0.2)
	if math.Abs(bd.Storage-wantStorage) > 1e-15 {
		t.Fatalf("storage %v want %v", bd.Storage, wantStorage)
	}
	wantRead := m.ReadCost(pricing.Hot, 0.1, 100) + m.ReadCost(pricing.Cool, 0.2, 50)
	if math.Abs(bd.Read-wantRead) > 1e-15 {
		t.Fatalf("read %v want %v", bd.Read, wantRead)
	}
	if bd.Transition != 0 {
		t.Fatal("no transitions expected")
	}
	if s.Day() != 1 {
		t.Fatal("day not advanced")
	}
	_ = a
	_ = b
}

func TestSetTierBillsOnceIntoNextDay(t *testing.T) {
	s := newStore()
	id := s.AddObject(1.0, pricing.Hot)
	if err := s.SetTier(id, pricing.Cool); err != nil {
		t.Fatal(err)
	}
	// Same-tier set is free.
	if err := s.SetTier(id, pricing.Cool); err != nil {
		t.Fatal(err)
	}
	bd, err := s.ServeDay(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Transition-0.0002) > 1e-15 {
		t.Fatalf("transition %v want 0.0002", bd.Transition)
	}
	// Charge must not repeat.
	bd2, _ := s.ServeDay(nil, nil)
	if bd2.Transition != 0 {
		t.Fatal("transition billed twice")
	}
	tier, err := s.Tier(id)
	if err != nil || tier != pricing.Cool {
		t.Fatalf("tier %v err %v", tier, err)
	}
}

func TestSetTierValidation(t *testing.T) {
	s := newStore()
	id := s.AddObject(1, pricing.Hot)
	if err := s.SetTier(id, pricing.Tier(7)); err == nil {
		t.Fatal("invalid tier accepted")
	}
	if err := s.SetTier(ObjectID(99), pricing.Cool); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestRemoveStopsBillingAndRejectsRequests(t *testing.T) {
	s := newStore()
	id := s.AddObject(1.0, pricing.Hot)
	keep := s.AddObject(1.0, pricing.Hot)
	if err := s.RemoveObject(id); err != nil {
		t.Fatal(err)
	}
	bd, err := s.ServeDay(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	if math.Abs(bd.Storage-m.StorageDay(pricing.Hot, 1.0)) > 1e-15 {
		t.Fatalf("removed object still billed: %v", bd.Storage)
	}
	if _, err := s.ServeDay([]float64{5, 0}, nil); err == nil {
		t.Fatal("requests to removed object accepted")
	}
	if s.Alive(id) || !s.Alive(keep) {
		t.Fatal("Alive wrong")
	}
	if err := s.RemoveObject(id); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, err := s.Get(id); err == nil {
		t.Fatal("Get on removed object accepted")
	}
}

func TestReplica(t *testing.T) {
	s := newStore()
	a := s.AddObject(0.1, pricing.Hot)
	b := s.AddObject(0.3, pricing.Hot)
	r, err := s.AddReplica([]ObjectID{a, b}, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get(r)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Replica || math.Abs(obj.SizeGB-0.4) > 1e-15 || len(obj.Members) != 2 {
		t.Fatalf("replica state %+v", obj)
	}
	// Replica of replica is rejected.
	if _, err := s.AddReplica([]ObjectID{r, a}, pricing.Hot); err == nil {
		t.Fatal("nested replica accepted")
	}
	if _, err := s.AddReplica([]ObjectID{a}, pricing.Hot); err == nil {
		t.Fatal("singleton replica accepted")
	}
	if _, err := s.AddReplica([]ObjectID{a, ObjectID(42)}, pricing.Hot); err == nil {
		t.Fatal("replica with unknown member accepted")
	}
}

func TestNegativeRequestsRejected(t *testing.T) {
	s := newStore()
	s.AddObject(1, pricing.Hot)
	if _, err := s.ServeDay([]float64{-1}, nil); err == nil {
		t.Fatal("negative reads accepted")
	}
}

func TestLedgerAndTotal(t *testing.T) {
	s := newStore()
	s.AddObject(1, pricing.Hot)
	for d := 0; d < 5; d++ {
		if _, err := s.ServeDay([]float64{10}, nil); err != nil {
			t.Fatal(err)
		}
	}
	ledger := s.Ledger()
	if len(ledger) != 5 {
		t.Fatalf("ledger len %d", len(ledger))
	}
	total := s.TotalBill()
	want := costmodel.SumBreakdowns(ledger)
	if total != want {
		t.Fatal("TotalBill != ledger sum")
	}
	// Ledger is a copy: mutating it must not affect the store.
	ledger[0].Storage = 999
	if s.TotalBill() == costmodel.SumBreakdowns(ledger) {
		t.Fatal("Ledger returned internal storage")
	}
}

func TestFromTraceMatchesCostModel(t *testing.T) {
	// Replaying a trace through the store with a constant tier must equal
	// costmodel.TraceCost for the uniform assignment — the two accounting
	// paths must agree exactly.
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 30
	cfg.Days = 10
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	s, ids := FromTrace(m, tr, pricing.Cool)
	reads := make([]float64, len(ids))
	writes := make([]float64, len(ids))
	for d := 0; d < tr.Days; d++ {
		for i := range ids {
			reads[i] = tr.Reads[i][d]
			writes[i] = tr.Writes[i][d]
		}
		if _, err := s.ServeDay(reads, writes); err != nil {
			t.Fatal(err)
		}
	}
	got := s.TotalBill()
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = pricing.Cool
	}
	bds, err := m.TraceCost(tr, costmodel.UniformAssignment(pricing.Cool, tr.NumFiles(), tr.Days), init, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := costmodel.SumBreakdowns(bds)
	if math.Abs(got.Total()-want.Total()) > 1e-9 {
		t.Fatalf("store bill %v != cost model %v", got, want)
	}
}

func TestAddObjectPanicsOnBadInput(t *testing.T) {
	s := newStore()
	assertPanics(t, func() { s.AddObject(0, pricing.Hot) })
	assertPanics(t, func() { s.AddObject(1, pricing.Tier(-1)) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestLatencyModel(t *testing.T) {
	l := DefaultLatency()
	if !(l.ReadMS(pricing.Hot, 0.1) < l.ReadMS(pricing.Cool, 0.1)) {
		t.Fatal("hot should be faster than cool")
	}
	if !(l.ReadMS(pricing.Cool, 0.1) < l.ReadMS(pricing.Archive, 0.1)) {
		t.Fatal("cool should be faster than archive")
	}
	if got := l.ReadMS(pricing.Hot, 1) - l.ReadMS(pricing.Hot, 0); math.Abs(got-l.PerGBMS) > 1e-12 {
		t.Fatal("per-GB latency wrong")
	}
}

func BenchmarkServeDay1kObjects(b *testing.B) {
	s := newStore()
	n := 1000
	reads := make([]float64, n)
	writes := make([]float64, n)
	for i := 0; i < n; i++ {
		s.AddObject(0.1, pricing.Hot)
		reads[i] = 100
		writes[i] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ServeDay(reads, writes); err != nil {
			b.Fatal(err)
		}
	}
}
