// Package cloudsim simulates the CSP side of the MiniCost system: an object
// store holding data files (and, for the aggregation enhancement, replica
// objects) in priced tiers, with a billing meter that accrues the paper's
// four cost components day by day.
//
// The simulator is the "environment" of Fig. 5: policies act on it by
// setting tiers, the trace drives requests through ServeDay, and the meter
// is the ground truth every experiment reports.
package cloudsim

import (
	"errors"
	"fmt"

	"minicost/internal/costmodel"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// simMetrics are the simulator's obs instruments (DESIGN.md §12), shared by
// every Store in the process and registered eagerly so the sim family is
// visible on /metrics from process start. The default registry is off
// outside daemons, so the per-day recording costs one atomic load each.
var simMet = func() (m struct {
	tierChanges *obs.Counter
	readOps     *obs.Counter
	writeOps    *obs.Counter
	days        *obs.Counter
	accrued     *obs.Gauge
}) {
	reg := obs.Default()
	m.tierChanges = reg.Counter("minicost_sim_tier_changes_total",
		"Executed tier transitions across all simulated stores.")
	m.readOps = reg.Counter("minicost_sim_read_ops_total",
		"Read requests served by the simulated stores.")
	m.writeOps = reg.Counter("minicost_sim_write_ops_total",
		"Write requests served by the simulated stores.")
	m.days = reg.Counter("minicost_sim_days_total",
		"Simulated billing days served across all stores.")
	m.accrued = reg.Gauge("minicost_sim_accrued_cost_dollars",
		"Cumulative simulated bill (all four Eq. 5 components) across all stores.")
	return m
}()

// ObjectID identifies an object (file or replica) inside a Store.
type ObjectID int

// Object is the mutable state of one stored object.
type Object struct {
	SizeGB float64
	Tier   pricing.Tier
	// Replica marks aggregation replicas (extra objects the enhancement
	// creates); Members lists the file objects aggregated into it.
	Replica bool
	Members []ObjectID
	alive   bool
}

// Store simulates one datacenter's object store under a price policy.
type Store struct {
	model   *costmodel.Model
	objects []Object
	day     int
	// pendingTransition accrues Eq. 9 charges since the last ServeDay; they
	// are folded into that day's bill, mirroring how a tier change made "for
	// the next time step" is billed with it.
	pendingTransition float64
	ledger            []costmodel.Breakdown
}

// NewStore returns an empty store billing under model.
func NewStore(model *costmodel.Model) *Store {
	return &Store{model: model}
}

// FromTrace builds a store containing one object per trace file, all placed
// in the given initial tier, and returns the store plus the per-file
// ObjectIDs (which equal the file indices).
func FromTrace(model *costmodel.Model, tr *trace.Trace, initial pricing.Tier) (*Store, []ObjectID) {
	s := NewStore(model)
	ids := make([]ObjectID, tr.NumFiles())
	for i, f := range tr.Files {
		ids[i] = s.AddObject(f.SizeGB, initial)
	}
	return s, ids
}

// AddObject stores a new object and returns its id. Adding an object does
// not bill a transition (uploads are billed as write operations by the
// caller, matching Eqs. 7–8 where reallocation traffic is ordinary
// requests).
func (s *Store) AddObject(sizeGB float64, tier pricing.Tier) ObjectID {
	if sizeGB <= 0 {
		panic("cloudsim: non-positive object size")
	}
	if !tier.Valid() {
		panic("cloudsim: invalid tier")
	}
	s.objects = append(s.objects, Object{SizeGB: sizeGB, Tier: tier, alive: true})
	return ObjectID(len(s.objects) - 1)
}

// AddReplica stores an aggregation replica covering the given member files.
// Its size is the sum of member sizes (the aggregated file contains a copy
// of each member, §5.2).
func (s *Store) AddReplica(members []ObjectID, tier pricing.Tier) (ObjectID, error) {
	if len(members) < 2 {
		return 0, errors.New("cloudsim: replica needs at least 2 members")
	}
	size := 0.0
	for _, m := range members {
		o, err := s.object(m)
		if err != nil {
			return 0, err
		}
		if o.Replica {
			return 0, fmt.Errorf("cloudsim: replica member %d is itself a replica", m)
		}
		size += o.SizeGB
	}
	id := s.AddObject(size, tier)
	s.objects[id].Replica = true
	s.objects[id].Members = append([]ObjectID(nil), members...)
	return id, nil
}

// RemoveObject deletes an object; its storage stops accruing from the next
// ServeDay.
func (s *Store) RemoveObject(id ObjectID) error {
	o, err := s.object(id)
	if err != nil {
		return err
	}
	o.alive = false
	return nil
}

func (s *Store) object(id ObjectID) (*Object, error) {
	if id < 0 || int(id) >= len(s.objects) {
		return nil, fmt.Errorf("cloudsim: unknown object %d", id)
	}
	if !s.objects[id].alive {
		return nil, fmt.Errorf("cloudsim: object %d was removed", id)
	}
	return &s.objects[id], nil
}

// Tier returns an object's current tier.
func (s *Store) Tier(id ObjectID) (pricing.Tier, error) {
	o, err := s.object(id)
	if err != nil {
		return 0, err
	}
	return o.Tier, nil
}

// Get returns a copy of the object's state.
func (s *Store) Get(id ObjectID) (Object, error) {
	o, err := s.object(id)
	if err != nil {
		return Object{}, err
	}
	return *o, nil
}

// Alive reports whether id names a live object.
func (s *Store) Alive(id ObjectID) bool {
	return id >= 0 && int(id) < len(s.objects) && s.objects[id].alive
}

// NumObjects returns the total number of slots (live and removed); valid
// ObjectIDs are [0, NumObjects).
func (s *Store) NumObjects() int { return len(s.objects) }

// SetTier changes an object's tier, billing Eq. 9 into the next day's bill.
// Setting the current tier is a no-op.
func (s *Store) SetTier(id ObjectID, tier pricing.Tier) error {
	if !tier.Valid() {
		return fmt.Errorf("cloudsim: invalid tier %d", int(tier))
	}
	o, err := s.object(id)
	if err != nil {
		return err
	}
	if o.Tier == tier {
		return nil
	}
	s.pendingTransition += s.model.TransitionCost(o.Tier, tier, o.SizeGB)
	o.Tier = tier
	simMet.tierChanges.Inc()
	return nil
}

// ServeDay bills one day: storage for every live object, read/write
// operation costs for the given per-object frequencies, plus any tier
// transitions accrued since the previous day. reads and writes are indexed
// by ObjectID and may be shorter than NumObjects (missing entries mean 0);
// entries for removed objects must be 0.
func (s *Store) ServeDay(reads, writes []float64) (costmodel.Breakdown, error) {
	var bd costmodel.Breakdown
	bd.Transition = s.pendingTransition
	s.pendingTransition = 0
	var rSum, wSum float64
	for id := range s.objects {
		o := &s.objects[id]
		r, w := at(reads, id), at(writes, id)
		if !o.alive {
			if r != 0 || w != 0 {
				return costmodel.Breakdown{}, fmt.Errorf("cloudsim: requests for removed object %d", id)
			}
			continue
		}
		if r < 0 || w < 0 {
			return costmodel.Breakdown{}, fmt.Errorf("cloudsim: negative request count for object %d", id)
		}
		rSum += r
		wSum += w
		bd.Storage += s.model.StorageDay(o.Tier, o.SizeGB)
		bd.Read += s.model.ReadCost(o.Tier, o.SizeGB, r)
		bd.Write += s.model.WriteCost(o.Tier, o.SizeGB, w)
	}
	s.ledger = append(s.ledger, bd)
	s.day++
	simMet.days.Inc()
	simMet.readOps.Add(rSum)
	simMet.writeOps.Add(wSum)
	simMet.accrued.Add(bd.Total())
	return bd, nil
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

// Day returns the number of days served so far.
func (s *Store) Day() int { return s.day }

// Ledger returns the per-day bills (a copy).
func (s *Store) Ledger() []costmodel.Breakdown {
	return append([]costmodel.Breakdown(nil), s.ledger...)
}

// TotalBill returns the cumulative bill.
func (s *Store) TotalBill() costmodel.Breakdown {
	return costmodel.SumBreakdowns(s.ledger)
}

// Latency models per-tier access latency for the examples; the paper notes
// aggregated-file response times match non-aggregated ones and that
// MiniCost's per-file decision time (<1 ms) is far below data-transmission
// latency (10 ms – hundreds of ms).
type Latency struct {
	// FirstByteMS is the time to first byte per tier; archive involves
	// rehydration and is modeled in minutes.
	FirstByteMS [pricing.NumTiers]float64
	// PerGBMS is the transfer time per GB.
	PerGBMS float64
}

// DefaultLatency returns plausible object-store latencies.
func DefaultLatency() Latency {
	return Latency{
		FirstByteMS: [pricing.NumTiers]float64{
			pricing.Hot:     10,
			pricing.Cool:    30,
			pricing.Archive: 4 * 60 * 60 * 1000, // hours: archive rehydration
		},
		PerGBMS: 80,
	}
}

// ReadMS returns the modeled read latency of sizeGB from tier.
func (l Latency) ReadMS(tier pricing.Tier, sizeGB float64) float64 {
	return l.FirstByteMS[tier] + l.PerGBMS*sizeGB
}
