package rl

import "fmt"

// FineTune resumes training for `steps` additional environment steps drawn
// from src — the online learner's incremental-epoch entry point. TrainFrom's
// workers run until the global step counter reaches the given total, so
// passing the current count plus the increment turns the same vectorized
// engine (EnvsPerWorker/Parallelism knobs included) into a resumable
// fine-tuner: each call picks up exactly where the last one stopped, with
// the learning-rate anneal continuing along the trainer's TotalSteps
// schedule (fine-tune epochs past the horizon run at the annealed floor,
// which is the conventional regime for online adaptation).
func (a *A3C) FineTune(src EnvSource, steps int64) (TrainStats, error) {
	if steps <= 0 {
		return TrainStats{}, fmt.Errorf("rl: fine-tune steps %d", steps)
	}
	return a.TrainFrom(src, a.Steps()+steps)
}

// ParamVectors returns copies of the published actor and critic parameter
// vectors — the rollback point the online learner captures before a
// fine-tune epoch, without the gob round-trip a checkpoint would cost.
func (a *A3C) ParamVectors() (actor, critic []float64) {
	a.mu.Lock()
	cur := a.snap.Load()
	actor = append([]float64(nil), cur.actor...)
	critic = append([]float64(nil), cur.critic...)
	a.mu.Unlock()
	return actor, critic
}

// SetParamVectors installs the given parameter vectors as the published
// weights (the learner's rollback after a rejected candidate, or a warm
// start from an actor-only serving checkpoint paired with a fresh critic).
// Vectors are copied; the optimizer moments are left as-is, matching
// LoadCheckpoint's resume semantics.
func (a *A3C) SetParamVectors(actor, critic []float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.snap.Load()
	if len(actor) != len(cur.actor) || len(critic) != len(cur.critic) {
		return fmt.Errorf("rl: param vectors %d/%d do not match trainer %d/%d",
			len(actor), len(critic), len(cur.actor), len(cur.critic))
	}
	a.installLocked(actor, critic)
	return nil
}
