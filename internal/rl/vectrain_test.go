package rl

import (
	"bytes"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// vecTrainParams runs a fresh trainer with cfg through TrainFrom over a
// polar-trace TraceSource (the allocation-free episode path the vectorized
// engine is built for) and returns copies of the final parameter vectors
// plus stats.
func vecTrainParams(t *testing.T, cfg A3CConfig, files, days int, steps int64) ([]float64, []float64, TrainStats) {
	t.Helper()
	tr := polarTrace(t, files, days)
	model := costmodel.New(pricing.Azure())
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := a3c.TrainFrom(src, steps)
	if err != nil {
		t.Fatal(err)
	}
	cur := a3c.snap.Load()
	return append([]float64(nil), cur.actor...),
		append([]float64(nil), cur.critic...), stats
}

// TestVecTrainerSeedDeterministic pins the vectorized engine's determinism
// contract: at Workers=1 with EnvsPerWorker=4, two fresh runs with the same
// seed must reach bitwise-identical parameters and identical stats. Kept
// fast and never skipped so the CI race job runs it (see ci.yml).
func TestVecTrainerSeedDeterministic(t *testing.T) {
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.EnvsPerWorker = 4
	const steps = 336 // 12 full 4×7 lockstep rollouts
	a1, c1, s1 := vecTrainParams(t, cfg, 6, 12, steps)
	a2, c2, s2 := vecTrainParams(t, cfg, 6, 12, steps)
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs: %+v vs %+v", s1, s2)
	}
	assertVectorsBitwise(t, "actor", a2, a1)
	assertVectorsBitwise(t, "critic", c2, c1)
}

// TestTrainFromAtE1MatchesSingleSampleBitwise extends the engine-equivalence
// chain to the new entry points: EnvsPerWorker=1 dispatches to the classic
// worker, and a TraceSource's in-place ReinitEnv must be observationally
// identical to building a fresh env per episode, so a TrainFrom run at E=1
// must stay bitwise-identical to the preserved single-sample reference
// driven through the factory path.
func TestTrainFromAtE1MatchesSingleSampleBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.EnvsPerWorker = 1
	const steps = 400

	ref := cfg
	ref.EnvsPerWorker = 0
	ref.SingleSample = true
	wantA, wantC, wantStats := trainParams(t, ref, 8, 14, steps)
	gotA, gotC, gotStats := vecTrainParams(t, cfg, 8, 14, steps)

	if gotStats != wantStats {
		t.Fatalf("stats diverged: E=1 %+v, single-sample %+v", gotStats, wantStats)
	}
	assertVectorsBitwise(t, "actor", gotA, wantA)
	assertVectorsBitwise(t, "critic", gotC, wantC)
}

// TestVecTrainStatsAccounting pins the vectorized engine's bookkeeping on a
// fully deterministic run: Workers=1, E=4, NSteps=7 over 12-day episodes.
// Every lockstep step advances all four members, so 280 total steps is
// exactly 10 rollouts; every member completes an episode every 12 steps, so
// 280/4 = 70 member-steps yield 5 episodes each.
func TestVecTrainStatsAccounting(t *testing.T) {
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.EnvsPerWorker = 4
	_, _, stats := vecTrainParams(t, cfg, 6, 12, 280)
	if stats.Steps != 280 {
		t.Fatalf("Steps = %d, want 280", stats.Steps)
	}
	if stats.Updates != 10 {
		t.Fatalf("Updates = %d, want 10", stats.Updates)
	}
	if want := int64(4 * 5); stats.Episodes != want {
		t.Fatalf("Episodes = %d, want %d", stats.Episodes, want)
	}
}

// TestVecCheckpointRoundTripResumesTraining is the vectorized counterpart of
// the batched checkpoint test: a run saved between updates and resumed in a
// fresh trainer must land exactly where the uninterrupted run does. The
// engine re-derives every per-env RNG stream from (Seed, worker, member) at
// each TrainFrom call, so no RNG cursor needs to live in the checkpoint —
// this test is what pins that property. Phase budgets are multiples of
// E×NSteps = 28 so every Train call cuts exactly at an update boundary; SGD
// with annealing disabled makes the comparison exact (the checkpoint omits
// optimizer moments and the global step counter).
func TestVecCheckpointRoundTripResumesTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.EnvsPerWorker = 4
	cfg.Optimizer = "sgd"
	cfg.FinalLRFraction = 1

	tr := polarTrace(t, 8, 14)
	model := costmodel.New(pricing.Azure())
	src, err := NewTraceSource(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}

	orig, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.TrainFrom(src, 280); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.TrainFrom(src, 560); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.TrainFrom(src, 280); err != nil {
		t.Fatal(err)
	}

	resumedCur, origCur := resumed.snap.Load(), orig.snap.Load()
	assertVectorsBitwise(t, "actor", resumedCur.actor, origCur.actor)
	assertVectorsBitwise(t, "critic", resumedCur.critic, origCur.critic)
}

// TestAccumulateVecSteadyStateAllocFree gates the vectorized update kernel:
// once its reused matrices are warm, a full E×NSteps accumulate pass (two
// ForwardBatch, the scalar gradient loop, two BackwardBatch) allocates
// nothing.
func TestAccumulateVecSteadyStateAllocFree(t *testing.T) {
	cfg := smallA3CConfig()
	cfg.EnvsPerWorker = 4
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	actor := a3c.protoActor.Clone()
	critic := a3c.protoCritic.Clone()
	// Flat-backed accumulators as in the worker; without them ZeroGrad walks
	// (and allocates) the per-layer param list every call.
	actor.FlattenGrads()
	critic.FlattenGrads()
	const nEnvs = 4
	rows := nEnvs * cfg.NSteps
	dim := cfg.Net.featureDim()
	feats := mat.New(rows, dim)
	r := rng.New(11)
	for i := range feats.Data {
		feats.Data[i] = r.Float64()
	}
	rewards := make([]float64, rows)
	actions := make([]int, rows)
	dones := make([]bool, rows)
	boot := make([]float64, nEnvs)
	for i := range rewards {
		rewards[i] = r.Float64() - 0.5
		actions[i] = i % mdp.NumActions
	}
	dones[2*nEnvs+1] = true // exercise a mid-rollout episode boundary
	var vb vecBuf
	run := func() {
		actor.ZeroGrad()
		critic.ZeroGrad()
		a3c.accumulateVec(actor, critic, feats, rewards, actions, dones, boot, &vb)
	}
	run() // warm the reused matrices and kernel scratch
	run()
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Fatalf("steady-state accumulateVec allocates %.0f/op, want 0", allocs)
	}
}
