package rl

import (
	"bytes"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
)

// trainParams runs a fresh trainer with cfg over a polar-trace factory and
// returns copies of the final actor/critic parameter vectors plus stats.
func trainParams(t *testing.T, cfg A3CConfig, files, days int, steps int64) ([]float64, []float64, TrainStats) {
	t.Helper()
	tr := polarTrace(t, files, days)
	model := costmodel.New(pricing.Azure())
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := a3c.Train(factory, steps)
	if err != nil {
		t.Fatal(err)
	}
	cur := a3c.snap.Load()
	return append([]float64(nil), cur.actor...),
		append([]float64(nil), cur.critic...), stats
}

func assertVectorsBitwise(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: elem %d = %v, want %v (not bitwise equal)", name, i, got[i], want[i])
		}
	}
}

// TestBatchedTrainerMatchesSingleSampleBitwise is the training-engine
// equivalence gate: at Workers=1 with a fixed seed, the batched update path
// must leave bitwise-identical actor and critic parameters to the preserved
// per-sample reference after a sustained run (> 50 updates). The wide-net
// sweep across PaperWidths lives in internal/experiments.
func TestBatchedTrainerMatchesSingleSampleBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	cfg.Workers = 1
	const steps = 400 // 57 updates at NSteps 7

	ref := cfg
	ref.SingleSample = true
	wantA, wantC, wantStats := trainParams(t, ref, 8, 14, steps)
	gotA, gotC, gotStats := trainParams(t, cfg, 8, 14, steps)

	if wantStats.Updates < 50 {
		t.Fatalf("only %d updates; test needs a sustained run", wantStats.Updates)
	}
	if gotStats != wantStats {
		t.Fatalf("stats diverged: batched %+v, single-sample %+v", gotStats, wantStats)
	}
	assertVectorsBitwise(t, "actor", gotA, wantA)
	assertVectorsBitwise(t, "critic", gotC, wantC)
}

// TestTrainDeterministicAtOneWorker pins the seed contract: two fresh
// trainers with the same configuration reach bitwise-identical parameters.
func TestTrainDeterministicAtOneWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	cfg.Workers = 1
	a1, c1, s1 := trainParams(t, cfg, 6, 12, 300)
	a2, c2, s2 := trainParams(t, cfg, 6, 12, 300)
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs: %+v vs %+v", s1, s2)
	}
	assertVectorsBitwise(t, "actor", a2, a1)
	assertVectorsBitwise(t, "critic", c2, c1)
}

// TestCheckpointRoundTripResumesBatchedTraining checks SaveCheckpoint /
// LoadCheckpoint through the batched trainer: a run saved mid-training and
// resumed in a fresh process must land exactly where the original run does.
// SGD with annealing disabled makes the comparison exact (the checkpoint
// deliberately omits optimizer moments and the global step counter, the two
// pieces of state RMSProp/annealing would additionally need).
func TestCheckpointRoundTripResumesBatchedTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.Optimizer = "sgd"
	cfg.FinalLRFraction = 1

	tr := polarTrace(t, 8, 14)
	model := costmodel.New(pricing.Azure())
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}

	orig, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Train(factory, 300); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Continue the original for another 300 steps (Train resumes from the
	// global step counter).
	if _, err := orig.Train(factory, 600); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Train(factory, 300); err != nil {
		t.Fatal(err)
	}

	resumedCur, origCur := resumed.snap.Load(), orig.snap.Load()
	assertVectorsBitwise(t, "actor", resumedCur.actor, origCur.actor)
	assertVectorsBitwise(t, "critic", resumedCur.critic, origCur.critic)
}

// TestLoadCheckpointRepublishesSnapshot guards the batched path's pull
// source directly: after a load, a snapshot pull must see the restored
// weights, not the ones published at construction.
func TestLoadCheckpointRepublishesSnapshot(t *testing.T) {
	cfg := smallA3CConfig()
	src, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcCur := src.snap.Load()
	for i := range srcCur.actor {
		srcCur.actor[i] = float64(i%13) * 0.01
	}
	for i := range srcCur.critic {
		srcCur.critic[i] = -float64(i%7) * 0.02
	}
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	actor := dst.protoActor.Clone()
	critic := dst.protoCritic.Clone()
	held := dst.bindSnapshot(actor, critic, nil)
	assertVectorsBitwise(t, "actor", actor.ParamVector(), srcCur.actor)
	assertVectorsBitwise(t, "critic", critic.ParamVector(), srcCur.critic)
	releaseSnapshot(held)
}
