package rl

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/nn"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// A3CConfig configures training. Defaults follow §6.1: learning rate 0.0027
// (Fig. 9 finds ~0.0028 optimal), greedy rate ε = 0.1, and the paper's
// network architecture.
type A3CConfig struct {
	Net NetConfig
	// LearningRate is swept by Fig. 9.
	LearningRate float64
	// Gamma discounts future rewards; the paper optimizes over a 7-day
	// horizon, so the default 0.9 keeps ~half the mass within a week.
	Gamma float64
	// Epsilon is the greedy (exploration) rate swept by Fig. 10.
	Epsilon float64
	// ExploreHold keeps an ε-exploration action for this many consecutive
	// days. Tier economics mix slowly — entering archive pays a transition
	// fee that only amortises over days of occupancy — so one-step random
	// actions always look bad and the policy never discovers cheap tiers.
	// Sticky exploration samples sustained occupancy instead.
	ExploreHold int
	// EntropyBeta weighs the entropy bonus that keeps π from collapsing.
	EntropyBeta float64
	// LogitDecay adds an L2 pull on the actor's output logits. The entropy
	// bonus alone cannot prevent saturation: at π ≈ 1 both the policy and
	// entropy gradients vanish, and RMSProp amplifies whatever residual
	// drift remains, so logits run away to magnitudes the policy can never
	// recover from. The decay term is the one gradient that *grows* with
	// logit magnitude, bounding saturation at |z| ≈ (typical grad)/decay.
	LogitDecay float64
	// NSteps is the rollout length per update (n-step advantage).
	NSteps int
	// Workers is the number of asynchronous actor-learners.
	Workers int
	// EnvsPerWorker is the number of environments each worker drives in
	// lockstep. 0 or 1 selects the classic per-env collection loop, whose
	// results are pinned bitwise against the single-sample reference; E ≥ 2
	// switches the worker to the vectorized rollout engine (vectrain.go):
	// one E-row ForwardBatch selects actions for every environment at once,
	// one batched pass bootstraps all critic values, and the n-step update
	// accumulates over E×NSteps transitions in a single BackwardBatch pair.
	// Episodes that end mid-rollout are reset in place and the return
	// recursion restarts at the boundary, so rollouts always carry the full
	// E×NSteps transitions. Each environment samples episodes and actions
	// from its own RNG substream split from the worker seed, so E > 1 runs
	// remain seed-deterministic at Workers=1.
	EnvsPerWorker int
	// Parallelism bounds the intra-update GEMM fan-out on the batched path:
	// it is the workers argument handed to every ForwardBatch/BackwardBatch
	// inside one update. The default 0 (like 1) runs updates serially —
	// A3C's parallelism conventionally comes from Workers — but a
	// single-worker trainer on a big machine can parallelize inside each
	// update instead. Any value leaves training bitwise unchanged: the
	// parallel kernels shard only independent output elements (see mat).
	Parallelism int
	// GradClip bounds the global-update L2 norm; 0 disables.
	GradClip float64
	// NormalizeRewards divides rewards by a running RMS estimate before
	// computing returns. Eq. 4's reciprocal reward spans many orders of
	// magnitude across files (idle archive days earn thousands of times the
	// reward of busy hot days); without normalisation the early positive
	// advantages collapse the policy onto whatever action is sampled first.
	NormalizeRewards bool
	// AdvClip bounds the per-step advantage magnitude used in the policy
	// gradient (applied after reward normalisation); 0 disables.
	AdvClip float64
	// CriticLRMult scales the critic's learning rate relative to the
	// actor's. The critic must track value targets faster than the policy
	// drifts or early advantages stay one-sided; > 1 is standard.
	CriticLRMult float64
	// Optimizer selects "rmsprop" (A3C's default), "adam" or "sgd".
	Optimizer string
	// FinalLRFraction linearly anneals the learning rate to this fraction
	// of LearningRate over a Train call (1 disables annealing). Late-stage
	// annealing settles the policy oscillation that a constant step size
	// sustains.
	FinalLRFraction float64
	// SingleSample selects the preserved per-sample reference update path
	// (one critic and one actor Forward/Backward per transition, mutex-held
	// parameter pulls) instead of the batched training engine. The batched
	// path is bitwise identical at Workers=1 — the equivalence tests pin it
	// — so this exists as the executable specification and for A/B
	// benchmarks, mirroring policy.RL's SingleSample switch on the
	// inference side.
	SingleSample bool
	Seed         uint64
}

// DefaultA3CConfig returns the paper's training configuration.
func DefaultA3CConfig() A3CConfig {
	return A3CConfig{
		Net:              DefaultNetConfig(),
		LearningRate:     0.0027,
		Gamma:            0.9,
		Epsilon:          0.1,
		ExploreHold:      5,
		EntropyBeta:      0.01,
		LogitDecay:       0.01,
		NSteps:           7,
		Workers:          4,
		GradClip:         5,
		NormalizeRewards: true,
		AdvClip:          3,
		CriticLRMult:     5,
		Optimizer:        "rmsprop",
		FinalLRFraction:  0.1,
	}
}

// Validate checks the configuration.
func (c A3CConfig) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	switch {
	case c.LearningRate <= 0:
		return fmt.Errorf("rl: learning rate %v", c.LearningRate)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("rl: gamma %v outside [0,1)", c.Gamma)
	case c.Epsilon < 0 || c.Epsilon > 1:
		return fmt.Errorf("rl: epsilon %v", c.Epsilon)
	case c.ExploreHold < 0:
		return fmt.Errorf("rl: ExploreHold %d", c.ExploreHold)
	case c.NSteps <= 0:
		return fmt.Errorf("rl: NSteps %d", c.NSteps)
	case c.Workers <= 0:
		return fmt.Errorf("rl: Workers %d", c.Workers)
	case c.EnvsPerWorker < 0:
		return fmt.Errorf("rl: EnvsPerWorker %d", c.EnvsPerWorker)
	case c.SingleSample && c.EnvsPerWorker > 1:
		// The vectorized engine is built on the batched kernels; there is no
		// single-sample variant of a lockstep rollout.
		return fmt.Errorf("rl: SingleSample is incompatible with EnvsPerWorker %d", c.EnvsPerWorker)
	case c.Parallelism < 0:
		return fmt.Errorf("rl: Parallelism %d", c.Parallelism)
	case c.EntropyBeta < 0:
		return fmt.Errorf("rl: EntropyBeta %v", c.EntropyBeta)
	case c.LogitDecay < 0:
		return fmt.Errorf("rl: LogitDecay %v", c.LogitDecay)
	case c.GradClip < 0:
		return fmt.Errorf("rl: GradClip %v", c.GradClip)
	case c.AdvClip < 0:
		return fmt.Errorf("rl: AdvClip %v", c.AdvClip)
	case c.CriticLRMult <= 0:
		return fmt.Errorf("rl: CriticLRMult %v", c.CriticLRMult)
	case c.FinalLRFraction < 0 || c.FinalLRFraction > 1:
		return fmt.Errorf("rl: FinalLRFraction %v", c.FinalLRFraction)
	}
	switch c.Optimizer {
	case "rmsprop", "adam", "sgd":
	default:
		return fmt.Errorf("rl: unknown optimizer %q", c.Optimizer)
	}
	return nil
}

// envsPerWorker resolves the lockstep width (0 means the classic 1).
func (c A3CConfig) envsPerWorker() int {
	if c.EnvsPerWorker <= 0 {
		return 1
	}
	return c.EnvsPerWorker
}

// parallelism resolves the intra-update fan-out (0 means serial).
func (c A3CConfig) parallelism() int {
	if c.Parallelism <= 0 {
		return 1
	}
	return c.Parallelism
}

func (c A3CConfig) newOptimizer() nn.Optimizer {
	switch c.Optimizer {
	case "adam":
		return nn.NewAdam(c.LearningRate)
	case "sgd":
		return nn.NewSGD(c.LearningRate)
	default:
		return nn.NewRMSProp(c.LearningRate)
	}
}

// A3C is the asynchronous advantage actor–critic trainer of Fig. 6: a
// global parameter server (actor + critic vectors and shared optimizer
// state) that asynchronous workers pull parameters from and push
// accumulated gradients to.
//
// The global vectors live in a double-buffered store (batchtrain.go): the
// current buffer is published through an atomic pointer, every optimizer
// apply writes the updated vectors into the next buffer and swaps it in, and
// superseded buffers are recycled once their readers drain. Synchronization
// is therefore two-tier: a.mu serializes the apply (a short critical section
// per update), while pulls on the batched path read the published buffer
// lock-free and never convoy on the writers' lock. The SingleSample
// reference path keeps the original mutex-held in-place apply and pulls.
type A3C struct {
	cfg A3CConfig

	mu        sync.Mutex
	actorOpt  nn.Optimizer
	criticOpt nn.Optimizer

	// snap is the published parameter buffer (the master copy); retired
	// (guarded by mu) holds superseded buffers awaiting reader drain.
	snap    atomic.Pointer[paramSnap]
	retired []*paramSnap

	protoActor  *nn.Network
	protoCritic *nn.Network

	steps atomic.Int64
}

// NewA3C initializes the global networks and optimizers.
func NewA3C(cfg A3CConfig) (*A3C, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	actor := cfg.Net.BuildActor(r.Split(1))
	critic := cfg.Net.BuildCritic(r.Split(2))
	criticOpt := cfg.newOptimizer()
	criticOpt.SetLearningRate(cfg.LearningRate * cfg.CriticLRMult)
	a := &A3C{
		cfg:         cfg,
		actorOpt:    cfg.newOptimizer(),
		criticOpt:   criticOpt,
		protoActor:  actor,
		protoCritic: critic,
	}
	a.snap.Store(&paramSnap{actor: actor.ParamVector(), critic: critic.ParamVector()})
	return a, nil
}

// Config returns the training configuration.
func (a *A3C) Config() A3CConfig { return a.cfg }

// Steps returns the number of environment steps taken so far.
func (a *A3C) Steps() int64 { return a.steps.Load() }

// Snapshot returns a serving Agent with the current global actor weights.
func (a *A3C) Snapshot() *Agent {
	actor := a.protoActor.Clone()
	a.mu.Lock()
	actor.SetParamVector(a.snap.Load().actor)
	a.mu.Unlock()
	return NewAgent(a.cfg.Net, actor)
}

// CriticSnapshot returns a copy of the global critic network (diagnostics
// and the ablation benches use it to inspect learned values).
func (a *A3C) CriticSnapshot() *nn.Network {
	critic := a.protoCritic.Clone()
	a.mu.Lock()
	critic.SetParamVector(a.snap.Load().critic)
	a.mu.Unlock()
	return critic
}

// EnvFactory supplies training episodes; each call must return a fresh (or
// reset) environment owned exclusively by the calling worker. Factories are
// called concurrently and must be safe for that.
type EnvFactory func(r *rng.RNG) *mdp.Env

// EnvSource supplies training episodes to workers. NewEnv returns a fresh
// environment owned exclusively by the caller; ReinitEnv re-targets an
// environment the caller already owns onto a new episode in place, which
// lets sources that support mdp.Env.Reinit (TraceSource) keep episode
// turnover allocation-free. Both methods are called concurrently from every
// worker and must be safe for that; both draw all randomness from r so the
// episode sequence is a pure function of the worker's RNG stream.
type EnvSource interface {
	NewEnv(r *rng.RNG) *mdp.Env
	ReinitEnv(r *rng.RNG, env *mdp.Env)
}

// factorySource adapts an EnvFactory to EnvSource; ReinitEnv falls back to
// building a fresh environment and copying it over the old one.
type factorySource struct{ f EnvFactory }

func (s factorySource) NewEnv(r *rng.RNG) *mdp.Env { return s.f(r) }

func (s factorySource) ReinitEnv(r *rng.RNG, env *mdp.Env) {
	fresh := s.f(r)
	// The old env may be running on recycled observation buffers; the copy
	// must carry that mode (and fresh buffers) over, not silently drop it.
	fresh.EnableStateReuse()
	*env = *fresh
}

// Train runs the asynchronous workers until the global step counter reaches
// totalSteps (Algorithm 1's outer loop). It returns aggregate statistics.
func (a *A3C) Train(factory EnvFactory, totalSteps int64) (TrainStats, error) {
	if factory == nil {
		return TrainStats{}, errors.New("rl: nil env factory")
	}
	return a.TrainFrom(factorySource{f: factory}, totalSteps)
}

// TrainFrom is Train generalized over an EnvSource; sources that implement
// in-place episode re-targeting (TraceSource) keep worker episode turnover
// allocation-free, which the vectorized engine's alloc gates require.
func (a *A3C) TrainFrom(src EnvSource, totalSteps int64) (TrainStats, error) {
	if src == nil {
		return TrainStats{}, errors.New("rl: nil env source")
	}
	if totalSteps <= 0 {
		return TrainStats{}, fmt.Errorf("rl: totalSteps %d", totalSteps)
	}
	trainRate.begin(a)
	defer trainRate.finish(a)
	var wg sync.WaitGroup
	stats := make([]TrainStats, a.cfg.Workers)
	for w := 0; w < a.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if a.cfg.envsPerWorker() > 1 {
				stats[w] = a.vecWorker(w, src, totalSteps)
			} else {
				stats[w] = a.worker(w, src, totalSteps)
			}
		}(w)
	}
	wg.Wait()
	var total TrainStats
	for _, s := range stats {
		total.Steps += s.Steps
		total.Episodes += s.Episodes
		total.RewardSum += s.RewardSum
		total.CostSum += s.CostSum
		total.Updates += s.Updates
	}
	return total, nil
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Steps    int64
	Episodes int64
	Updates  int64
	// RewardSum / CostSum accumulate per-step reward and cost; divide by
	// Steps for means.
	RewardSum float64
	CostSum   float64
}

// MeanReward returns the average per-step reward.
func (s TrainStats) MeanReward() float64 {
	if s.Steps == 0 {
		return 0
	}
	return s.RewardSum / float64(s.Steps)
}

// rollout is one worker-local n-step trajectory segment. Feature rows point
// into one flat arena sized NSteps×featureDim up front, so collecting a
// transition allocates nothing.
type rollout struct {
	features [][]float64
	actions  []int
	rewards  []float64
	arena    []float64
}

// newRollout pre-sizes the segment for nsteps transitions of dim features.
func newRollout(nsteps, dim int) *rollout {
	return &rollout{
		features: make([][]float64, 0, nsteps),
		actions:  make([]int, 0, nsteps),
		rewards:  make([]float64, 0, nsteps),
		arena:    make([]float64, nsteps*dim),
	}
}

// reset empties the segment, keeping the arena.
func (b *rollout) reset() {
	b.features = b.features[:0]
	b.actions = b.actions[:0]
	b.rewards = b.rewards[:0]
}

// nextFeatureRow returns the arena row for the next transition; the caller
// fills it and commits the transition by appending it to features.
func (b *rollout) nextFeatureRow(dim int) []float64 {
	n := len(b.features)
	return b.arena[n*dim : (n+1)*dim : (n+1)*dim]
}

// rewardNorm standardizes rewards with running mean/variance estimates so
// returns stay centered and O(1) regardless of the reward function's scale.
// Centering matters as much as scaling: with raw Eq. 4 rewards every action
// earns a large positive return before the critic converges, so every
// sampled action is reinforced and the policy saturates on noise.
type rewardNorm struct {
	mean, vr float64
	seen     bool
}

func (n *rewardNorm) normalize(r float64) float64 {
	if !n.seen {
		n.mean = r
		n.vr = r*r*0.01 + 1e-6
		n.seen = true
	} else {
		d := r - n.mean
		n.mean += 0.001 * d
		n.vr = 0.999*n.vr + 0.001*d*d
	}
	return (r - n.mean) / math.Sqrt(n.vr+1e-12)
}

// worker is one asynchronous actor-learner (Fig. 6's per-thread loop).
func (a *A3C) worker(id int, src EnvSource, totalSteps int64) TrainStats {
	r := rng.New(a.cfg.Seed).Split(uint64(id) + 0xAC7)
	actor := a.protoActor.Clone()
	critic := a.protoCritic.Clone()
	agent := NewAgent(a.cfg.Net, actor)

	featDim := a.cfg.Net.featureDim()
	env := src.NewEnv(r)
	env.EnableStateReuse()
	state := env.Reset()
	var st TrainStats
	buf := newRollout(a.cfg.NSteps, featDim)
	bootFeats := make([]float64, featDim)
	var norm rewardNorm
	stickyLeft := 0
	var stickyAction pricing.Tier
	// Flat-backed gradient accumulators: after a backward pass these slices
	// already hold the flat gradient vectors, so no per-update copy exists
	// between accumulation and clip/apply.
	aGrad := actor.FlattenGrads()
	cGrad := critic.FlattenGrads()
	dLogits := make([]float64, mdp.NumActions)
	var bb batchBuf
	var held *paramSnap
	defer func() { releaseSnapshot(held) }()

	for a.steps.Load() < totalSteps {
		// Pull the latest global parameters (Algorithm 1 line 1's "memory"
		// synchronisation): a lock-free zero-copy bind of the published
		// snapshot on the batched path, the original mutex-held copy on the
		// reference path.
		if a.cfg.SingleSample {
			a.mu.Lock()
			cur := a.snap.Load()
			actor.SetParamVector(cur.actor)
			critic.SetParamVector(cur.critic)
			a.mu.Unlock()
		} else {
			held = a.bindSnapshot(actor, critic, held)
		}
		actor.ZeroGrad()
		critic.ZeroGrad()

		// Collect up to NSteps transitions (lines 3–5).
		buf.reset()
		done := false
		for len(buf.rewards) < a.cfg.NSteps {
			feats := buf.nextFeatureRow(featDim)
			state.FeaturesInto(feats)
			var action pricing.Tier
			switch {
			case stickyLeft > 0:
				action = stickyAction
				stickyLeft--
			case a.cfg.Epsilon > 0 && r.Float64() < a.cfg.Epsilon:
				action = pricing.Tier(r.Intn(mdp.NumActions))
				stickyAction = action
				if a.cfg.ExploreHold > 1 {
					stickyLeft = a.cfg.ExploreHold - 1
				}
			default:
				action = agent.Sample(&state, 0, r)
			}
			next, reward, cost, fin, err := env.Step(action)
			if err != nil {
				// A finished env slipped through; start a fresh episode.
				src.ReinitEnv(r, env)
				state = env.Reset()
				stickyLeft = 0
				break
			}
			buf.features = append(buf.features, feats)
			buf.actions = append(buf.actions, int(action))
			if a.cfg.NormalizeRewards {
				buf.rewards = append(buf.rewards, norm.normalize(reward))
			} else {
				buf.rewards = append(buf.rewards, reward)
			}
			st.Steps++
			st.RewardSum += reward
			st.CostSum += cost
			a.steps.Add(1)
			state = next
			if fin {
				done = true
				st.Episodes++
				src.ReinitEnv(r, env)
				state = env.Reset()
				stickyLeft = 0
				break
			}
		}
		if len(buf.rewards) == 0 {
			continue
		}
		trainMet.steps.Add(float64(len(buf.rewards)))
		trainMet.batchFill.Observe(float64(len(buf.rewards)) / float64(a.cfg.NSteps))
		if done {
			trainMet.episodes.Inc()
		}

		// n-step return bootstrap (lines 6–8): R = 0 at episode end,
		// V(s_{t+n}) otherwise.
		boot := 0.0
		if !done {
			state.FeaturesInto(bootFeats)
			boot = critic.Forward(bootFeats)[0]
		}
		if a.cfg.SingleSample {
			a.accumulateSingle(actor, critic, buf, boot, dLogits)
		} else {
			a.accumulateBatched(actor, critic, buf, boot, &bb)
		}

		// Push accumulated gradients to the global parameters (Eq. 12); the
		// flat-backed accumulators are the gradient vectors.
		a.pushUpdate(aGrad, cGrad, totalSteps)
		st.Updates++
	}
	return st
}

// pushUpdate clips the worker's accumulated flat gradients and applies them
// to the global parameters (Eq. 12) under the apply lock, annealing the
// learning rate by global progress first. Both the scalar and the vectorized
// workers end every update here.
func (a *A3C) pushUpdate(aGrad, cGrad []float64, totalSteps int64) {
	nn.ClipGrads(aGrad, a.cfg.GradClip)
	nn.ClipGrads(cGrad, a.cfg.GradClip)
	if obs.Default().Enabled() {
		// The O(params) norm is only worth computing when someone is
		// watching; Set self-gates but would not skip the sqrt-sum.
		trainMet.gradNorm.Set(math.Sqrt(mat.SumSquares(aGrad)))
	}
	sw := trainMet.updateLat.Start()
	a.mu.Lock()
	if f := a.cfg.FinalLRFraction; f > 0 && f < 1 {
		// Linear LR annealing over this Train call's step budget.
		progress := float64(a.steps.Load()) / float64(totalSteps)
		if progress > 1 {
			progress = 1
		}
		scale := 1 - (1-f)*progress
		a.actorOpt.SetLearningRate(a.cfg.LearningRate * scale)
		a.criticOpt.SetLearningRate(a.cfg.LearningRate * a.cfg.CriticLRMult * scale)
	}
	if a.cfg.SingleSample {
		// Reference path: apply in place on the current buffer. No
		// lock-free readers exist in this mode (pulls hold a.mu), so
		// mutating the published buffer is safe.
		cur := a.snap.Load()
		a.actorOpt.Step(cur.actor, aGrad)
		a.criticOpt.Step(cur.critic, cGrad)
	} else {
		a.applyLocked(aGrad, cGrad)
	}
	a.mu.Unlock()
	sw.Stop()
	trainMet.updates.Inc()
}

// accumulateSingle replays the rollout through the per-sample reference
// path — one critic and one actor Forward/Backward per transition, newest
// first. It is the executable specification accumulateBatched must match
// bitwise; ret arrives as the bootstrap value (0 at episode end).
func (a *A3C) accumulateSingle(actor, critic *nn.Network, buf *rollout, ret float64, dLogits []float64) {
	for i := len(buf.rewards) - 1; i >= 0; i-- {
		ret = buf.rewards[i] + a.cfg.Gamma*ret

		// Critic: minimize 0.5 (V - R)^2.
		v := critic.Forward(buf.features[i])[0]
		critic.Backward([]float64{v - ret})

		// Actor: ascend A·∇log π(a|s) + β ∇H(π). Advantage Eq. 10 uses
		// the critic's value as the baseline V^π(s).
		adv := ret - v
		if a.cfg.AdvClip > 0 {
			adv = math.Max(-a.cfg.AdvClip, math.Min(a.cfg.AdvClip, adv))
		}
		logits := actor.Forward(buf.features[i])
		p := nn.Softmax(logits)
		h := nn.Entropy(p)
		for k := range dLogits {
			grad := adv * p[k] // d(-log π(a))·A / dz_k , part 1
			if k == buf.actions[i] {
				grad -= adv
			}
			if p[k] > 0 {
				// Entropy bonus: d(-βH)/dz_k = β π_k (log π_k + H).
				grad += a.cfg.EntropyBeta * p[k] * (math.Log(p[k]) + h)
			}
			// Logit L2 decay (see A3CConfig.LogitDecay).
			grad += a.cfg.LogitDecay * logits[k]
			dLogits[k] = grad
		}
		actor.Backward(dLogits)
	}
}
