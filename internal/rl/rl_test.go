package rl

import (
	"math"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

func TestNetConfigValidate(t *testing.T) {
	if err := DefaultNetConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultNetConfig()
	bad.Kernel = 99
	if bad.Validate() == nil {
		t.Error("kernel > history accepted")
	}
	bad = DefaultNetConfig()
	bad.Hidden = 0
	if bad.Validate() == nil {
		t.Error("zero hidden accepted")
	}
}

func TestAgentDecideAndSample(t *testing.T) {
	cfg := NetConfig{HistLen: 7, Filters: 4, Kernel: 3, Stride: 1, Hidden: 8}
	r := rng.New(1)
	agent := NewAgent(cfg, cfg.BuildActor(r))
	s := mdp.State{
		ReadHistory:  make([]float64, 7),
		WriteHistory: make([]float64, 7),
		SizeGB:       0.1,
		Tier:         pricing.Hot,
	}
	tier := agent.Decide(&s)
	if !tier.Valid() {
		t.Fatalf("invalid decision %v", tier)
	}
	p := agent.Probabilities(&s)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum %v", sum)
	}
	// Decide must be argmax of Probabilities.
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	if int(tier) != best {
		t.Fatal("Decide disagrees with Probabilities argmax")
	}
	// ε=1 forces uniform exploration; all actions eventually appear.
	seen := map[pricing.Tier]bool{}
	for i := 0; i < 200; i++ {
		seen[agent.Sample(&s, 1, r)] = true
	}
	if len(seen) != mdp.NumActions {
		t.Fatalf("exploration saw %d actions", len(seen))
	}
	// ε=0 samples from π only; with an untrained net all actions still have
	// positive mass, but every sample must be valid.
	for i := 0; i < 50; i++ {
		if !agent.Sample(&s, 0, r).Valid() {
			t.Fatal("invalid sampled action")
		}
	}
}

func TestAgentCloneIndependent(t *testing.T) {
	cfg := NetConfig{HistLen: 7, Filters: 4, Kernel: 3, Stride: 1, Hidden: 8}
	r := rng.New(2)
	a := NewAgent(cfg, cfg.BuildActor(r))
	b := a.Clone()
	s := mdp.State{ReadHistory: make([]float64, 7), WriteHistory: make([]float64, 7), SizeGB: 0.1}
	s.ReadHistory[3] = 5
	if a.Decide(&s) != b.Decide(&s) {
		t.Fatal("clone decides differently")
	}
}

func TestA3CConfigValidate(t *testing.T) {
	if err := DefaultA3CConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*A3CConfig)) A3CConfig {
		c := DefaultA3CConfig()
		f(&c)
		return c
	}
	for i, c := range []A3CConfig{
		mut(func(c *A3CConfig) { c.LearningRate = 0 }),
		mut(func(c *A3CConfig) { c.Gamma = 1 }),
		mut(func(c *A3CConfig) { c.Epsilon = -0.1 }),
		mut(func(c *A3CConfig) { c.NSteps = 0 }),
		mut(func(c *A3CConfig) { c.Workers = 0 }),
		mut(func(c *A3CConfig) { c.EnvsPerWorker = -1 }),
		mut(func(c *A3CConfig) { c.SingleSample = true; c.EnvsPerWorker = 4 }),
		mut(func(c *A3CConfig) { c.EntropyBeta = -1 }),
		mut(func(c *A3CConfig) { c.ExploreHold = -1 }),
		mut(func(c *A3CConfig) { c.GradClip = -1 }),
		mut(func(c *A3CConfig) { c.AdvClip = -0.5 }),
		mut(func(c *A3CConfig) { c.CriticLRMult = 0 }),
		mut(func(c *A3CConfig) { c.Optimizer = "lion" }),
	} {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := NewA3C(c); err == nil {
			t.Errorf("case %d: NewA3C accepted invalid config", i)
		}
	}
}

func TestQLearningMatchesValueIteration(t *testing.T) {
	// 5-state corridor: move right (action 1) reaches the terminal reward;
	// action 0 moves left (stays at 0). Small negative step rewards make
	// the shortest path optimal.
	n := 5
	f := &mdp.Finite{
		NumStates:  n,
		NumActions: 2,
		Next:       make([][]int, n),
		Reward:     make([][]float64, n),
		Terminal:   make([]bool, n),
	}
	for s := 0; s < n; s++ {
		left := s - 1
		if left < 0 {
			left = 0
		}
		right := s + 1
		if right >= n {
			right = n - 1
		}
		f.Next[s] = []int{left, right}
		f.Reward[s] = []float64{-0.1, -0.1}
	}
	f.Reward[n-2][1] = 10 // reaching the end pays
	f.Terminal[n-1] = true

	_, optimal := f.ValueIteration(0.9, 1e-9)

	q, err := NewQLearner(f, 0.2, 0.9, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	q.Train(rng.New(3), 2000, 50, 0)
	got := q.Policy()
	for s := 0; s < n-1; s++ {
		if got[s] != optimal[s] {
			t.Fatalf("state %d: q-policy %d, optimal %d", s, got[s], optimal[s])
		}
	}
}

func TestQLearnerValidation(t *testing.T) {
	f := &mdp.Finite{NumStates: 1, NumActions: 1, Next: [][]int{{0}}, Reward: [][]float64{{0}}, Terminal: []bool{true}}
	if _, err := NewQLearner(f, 0, 0.9, 0.1); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewQLearner(f, 0.1, 1.0, 0.1); err == nil {
		t.Error("gamma 1 accepted")
	}
}

// polarTrace builds a trace where the optimal policy is obvious: half the
// files are "busy" (hot clearly optimal), half are "idle" (archive clearly
// optimal), with stable frequencies.
func polarTrace(t testing.TB, files, days int) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Days: days}
	for i := 0; i < files; i++ {
		reads := make([]float64, days)
		writes := make([]float64, days)
		rate := 0.0
		if i%2 == 0 {
			rate = 5000
		}
		for d := range reads {
			reads[d] = rate
		}
		tr.Files = append(tr.Files, trace.FileMeta{ID: i, SizeGB: 0.1})
		tr.Reads = append(tr.Reads, reads)
		tr.Writes = append(tr.Writes, writes)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallA3CConfig() A3CConfig {
	cfg := DefaultA3CConfig()
	cfg.Net = NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	cfg.Workers = 2
	cfg.Seed = 7
	return cfg
}

func TestA3CLearnsPolarWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr := polarTrace(t, 20, 21)
	model := costmodel.New(pricing.Azure())
	cfg := smallA3CConfig()
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := a3c.Train(factory, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps < 30000 || stats.Updates == 0 || stats.Episodes == 0 {
		t.Fatalf("stats %+v", stats)
	}
	agent := a3c.Snapshot()
	got, asg, err := EvaluateAgent(agent, model, tr, cfg.Net.HistLen, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != tr.NumFiles() {
		t.Fatal("assignment size")
	}
	// Reference costs.
	evalUniform := func(tier pricing.Tier) float64 {
		init := make([]pricing.Tier, tr.NumFiles())
		for i := range init {
			init[i] = pricing.Hot
		}
		bds, err := model.TraceCost(tr, costmodel.UniformAssignment(tier, tr.NumFiles(), tr.Days), init, 0)
		if err != nil {
			t.Fatal(err)
		}
		return costmodel.SumBreakdowns(bds).Total()
	}
	hot, cool, archive := evalUniform(pricing.Hot), evalUniform(pricing.Cool), evalUniform(pricing.Archive)
	best := math.Min(hot, math.Min(cool, archive))
	if got.Total() >= hot {
		t.Fatalf("agent %v not better than all-hot %v (cool %v, archive %v)", got.Total(), hot, cool, archive)
	}
	// The mixed-optimal beats any uniform tier; the agent should get most of
	// that gap: demand it does at least as well as the best uniform policy.
	if got.Total() > best {
		t.Fatalf("agent %v worse than best uniform %v", got.Total(), best)
	}
	t.Logf("agent=%.4f hot=%.4f cool=%.4f archive=%.4f", got.Total(), hot, cool, archive)
}

func TestA3CSnapshotThreadSafeDuringTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr := polarTrace(t, 4, 10)
	model := costmodel.New(pricing.Azure())
	cfg := smallA3CConfig()
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			agent := a3c.Snapshot()
			s := mdp.State{ReadHistory: make([]float64, 7), WriteHistory: make([]float64, 7), SizeGB: 0.1}
			if !agent.Decide(&s).Valid() {
				t.Error("invalid decision from snapshot")
				return
			}
		}
	}()
	if _, err := a3c.Train(factory, 3000); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestTrainRejectsBadArgs(t *testing.T) {
	a3c, err := NewA3C(smallA3CConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a3c.Train(nil, 10); err == nil {
		t.Error("nil factory accepted")
	}
	factory := func(r *rng.RNG) *mdp.Env {
		e, _ := mdp.NewEnv(costmodel.New(pricing.Azure()), 0.1,
			[]float64{1, 2, 3, 4, 5, 6, 7, 8}, make([]float64, 8), pricing.Hot, 7, mdp.DefaultReward())
		return e
	}
	if _, err := a3c.Train(factory, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestTraceFactoryValidation(t *testing.T) {
	model := costmodel.New(pricing.Azure())
	if _, err := TraceFactory(model, &trace.Trace{Days: 5}, 7, mdp.DefaultReward(), pricing.Hot); err == nil {
		t.Error("empty trace accepted")
	}
	tr := polarTrace(t, 2, 10)
	if _, err := TraceFactory(model, tr, 0, mdp.DefaultReward(), pricing.Hot); err == nil {
		t.Error("zero histLen accepted")
	}
	factory, err := TraceFactory(model, tr, 7, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	env := factory(rng.New(1))
	if env.Days() != 10 {
		t.Fatalf("episode days %d", env.Days())
	}
}

func TestNegCostRewardMode(t *testing.T) {
	rc := mdp.NegCostReward()
	if !(rc.Reward(0.1) < rc.Reward(0.01)) {
		t.Fatal("negcost reward not decreasing in cost")
	}
	if rc.Reward(0) != rc.Delta {
		t.Fatal("negcost at zero cost should be Delta")
	}
}

func BenchmarkA3CTrainStep(b *testing.B) {
	tr := polarTrace(b, 8, 14)
	model := costmodel.New(pricing.Azure())
	cfg := smallA3CConfig()
	cfg.Workers = 1
	a3c, err := NewA3C(cfg)
	if err != nil {
		b.Fatal(err)
	}
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := a3c.Train(factory, int64(b.N)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAgentDecide(b *testing.B) {
	cfg := DefaultNetConfig()
	agent := NewAgent(cfg, cfg.BuildActor(rng.New(1)))
	s := mdp.State{
		ReadHistory:  make([]float64, cfg.HistLen),
		WriteHistory: make([]float64, cfg.HistLen),
		SizeGB:       0.1,
	}
	for i := range s.ReadHistory {
		s.ReadHistory[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Decide(&s)
	}
}
