package rl

import (
	"math"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/nn"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// This file is the vectorized rollout engine (DESIGN.md §16): the worker
// variant selected by A3CConfig.EnvsPerWorker ≥ 2. Where the classic worker
// steps one environment and pays a batch-of-1 forward per action, the
// vectorized worker drives E environments in lockstep through an
// mdp.EnvBank: each lockstep step fills one E-row block of a flat E×NSteps
// feature arena, selects all E actions with a single actor ForwardBatch
// (an E-row GEMM that actually reaches the packed kernels in mat), and
// advances all E environments with one StepAll. The n-step update then runs
// once over the whole arena — one critic and one actor ForwardBatch, a
// scalar return/advantage loop, one BackwardBatch each — so the per-update
// network work is amortized over E×NSteps transitions.
//
// Determinism contract: every environment owns an RNG substream split from
// the worker stream by member index, all lockstep loops run in fixed member
// order (0…E-1), and episodes that end mid-rollout are re-targeted in place
// (EnvSource.ReinitEnv) and reset immediately, with the return recursion
// restarted at the boundary. A run is therefore a pure function of (config,
// seed) at Workers=1 — the seed-determinism test pins it — while E=1 keeps
// the classic worker and its bitwise contract with the single-sample
// reference (worker dispatch in TrainFrom).

// vecBuf holds one vectorized worker's reused update matrices, grown once
// and reused for every rollout thereafter.
type vecBuf struct {
	dV    *mat.Matrix // critic output gradients (V - R per row)
	dL    *mat.Matrix // actor logit gradients
	probs []float64   // reused per-row softmax output
}

// sampleDist draws an index from the distribution p by inverting its CDF at
// u, mirroring Agent.Sample's arithmetic exactly (same accumulation order,
// same final-index fallback against rounding).
//
//minicost:hotpath
func sampleDist(p []float64, u float64) pricing.Tier {
	acc := 0.0
	for i, v := range p {
		acc += v
		if u < acc {
			return pricing.Tier(i)
		}
	}
	return pricing.Tier(len(p) - 1)
}

// vecWorker is one asynchronous actor-learner driving EnvsPerWorker
// environments in lockstep.
func (a *A3C) vecWorker(id int, src EnvSource, totalSteps int64) TrainStats {
	nEnvs := a.cfg.envsPerWorker()
	nSteps := a.cfg.NSteps
	w := a.cfg.parallelism()
	featDim := a.cfg.Net.featureDim()

	// Worker stream as in the classic loop; each bank member then splits its
	// own substream by index, so a member's episode draws and action samples
	// are independent of every other member's and of E itself.
	wr := rng.New(a.cfg.Seed).Split(uint64(id) + 0xAC7)
	envRNG := make([]*rng.RNG, nEnvs)
	for e := range envRNG {
		envRNG[e] = wr.Split(uint64(e) + 0x5EED)
	}

	actor := a.protoActor.Clone()
	critic := a.protoCritic.Clone()

	bank := mdp.NewEnvBank(nEnvs)
	for e := 0; e < nEnvs; e++ {
		bank.Install(e, src.NewEnv(envRNG[e]))
	}
	trainMet.envs.Add(float64(nEnvs))
	defer trainMet.envs.Add(-float64(nEnvs))

	// Rollout storage, step-major: lockstep step t owns rows [t·E, (t+1)·E)
	// of the arena and the flat transition arrays.
	rows := nEnvs * nSteps
	feats := mat.New(rows, featDim)
	stepView := &mat.Matrix{}
	rewards := make([]float64, rows)
	actions := make([]int, rows)
	dones := make([]bool, rows)
	stepActions := make([]pricing.Tier, nEnvs)
	bootFeats := mat.New(nEnvs, featDim)
	boot := make([]float64, nEnvs)
	stickyLeft := make([]int, nEnvs)
	stickyAction := make([]pricing.Tier, nEnvs)
	var norm rewardNorm
	var vb vecBuf
	probs := make([]float64, mdp.NumActions)

	aGrad := actor.FlattenGrads()
	cGrad := critic.FlattenGrads()
	var st TrainStats
	var held *paramSnap
	defer func() { releaseSnapshot(held) }()

	for a.steps.Load() < totalSteps {
		held = a.bindSnapshot(actor, critic, held)
		actor.ZeroGrad()
		critic.ZeroGrad()

		for t := 0; t < nSteps; t++ {
			// Encode all members into this step's arena block and select all
			// actions with one batched forward.
			feats.SliceRows(stepView, t*nEnvs, (t+1)*nEnvs)
			bank.FillFeatures(stepView.Data, featDim)
			sw := trainMet.vecForward.Start()
			logits := actor.ForwardBatch(stepView, w)
			sw.Stop()
			for e := 0; e < nEnvs; e++ {
				r := envRNG[e]
				var action pricing.Tier
				switch {
				case stickyLeft[e] > 0:
					action = stickyAction[e]
					stickyLeft[e]--
				case a.cfg.Epsilon > 0 && r.Float64() < a.cfg.Epsilon:
					action = pricing.Tier(r.Intn(mdp.NumActions))
					stickyAction[e] = action
					if a.cfg.ExploreHold > 1 {
						stickyLeft[e] = a.cfg.ExploreHold - 1
					}
				default:
					lrow := logits.Row(e)
					p := probs[:len(lrow)]
					nn.SoftmaxInto(p, lrow)
					action = sampleDist(p, r.Float64())
				}
				stepActions[e] = action
			}
			bank.StepAll(stepActions)

			base := t * nEnvs
			for e := 0; e < nEnvs; e++ {
				reward := bank.Rewards[e]
				if a.cfg.NormalizeRewards {
					rewards[base+e] = norm.normalize(reward)
				} else {
					rewards[base+e] = reward
				}
				actions[base+e] = int(stepActions[e])
				dones[base+e] = bank.Done[e]
				st.Steps++
				st.RewardSum += reward
				st.CostSum += bank.Costs[e]
				if bank.Done[e] {
					// Episode turnover happens in place mid-rollout: the
					// member is re-targeted and reset now, so the next
					// lockstep step records the new episode's first
					// transition; the return recursion in accumulateVec
					// restarts at this boundary.
					st.Episodes++
					trainMet.episodes.Inc()
					src.ReinitEnv(envRNG[e], bank.Env(e))
					bank.ResetEnv(e)
					stickyLeft[e] = 0
				}
			}
			a.steps.Add(int64(nEnvs))
		}
		trainMet.steps.Add(float64(rows))
		trainMet.batchFill.Observe(1) // lockstep rollouts are always full

		// Bootstrap all members with one batched critic pass. The returned
		// matrix is owned by the network and overwritten by the next
		// ForwardBatch, so the values are copied out first; members whose
		// last transition was terminal bootstrap from 0 (their bank state is
		// already the next episode's reset observation).
		bank.FillFeatures(bootFeats.Data, featDim)
		values := critic.ForwardBatch(bootFeats, w)
		lastBase := (nSteps - 1) * nEnvs
		for e := 0; e < nEnvs; e++ {
			if dones[lastBase+e] {
				boot[e] = 0
			} else {
				boot[e] = values.Row(e)[0]
			}
		}

		a.accumulateVec(actor, critic, feats, rewards, actions, dones, boot, &vb)
		a.pushUpdate(aGrad, cGrad, totalSteps)
		st.Updates++
	}
	return st
}

// accumulateVec runs the n-step update over a full E×NSteps lockstep arena:
// one critic and one actor ForwardBatch over all rows, a scalar loop
// computing per-env returns, advantages and output gradients (walking each
// env's column backward in time, resetting the return at episode
// boundaries), then one BackwardBatch each. The per-row arithmetic is the
// reference gradient term for term — advantage clip, entropy bonus, logit
// decay — identical to accumulateSingle/accumulateBatched.
//
//minicost:hotpath
func (a *A3C) accumulateVec(actor, critic *nn.Network, feats *mat.Matrix, rewards []float64, actions []int, dones []bool, boot []float64, vb *vecBuf) {
	w := a.cfg.parallelism()
	rows := feats.Rows
	nEnvs := len(boot)
	nSteps := rows / nEnvs
	values := critic.ForwardBatch(feats, w)
	logits := actor.ForwardBatch(feats, w)
	vb.dV = mat.EnsureShape(vb.dV, rows, 1)
	vb.dL = mat.EnsureShape(vb.dL, rows, mdp.NumActions)
	if cap(vb.probs) < mdp.NumActions {
		vb.probs = make([]float64, mdp.NumActions)
	}
	for e := 0; e < nEnvs; e++ {
		ret := boot[e]
		for t := nSteps - 1; t >= 0; t-- {
			i := t*nEnvs + e
			if dones[i] {
				// This transition ended its episode; its return must not
				// leak into the next episode's rewards already accumulated
				// from later rows.
				ret = 0
			}
			ret = rewards[i] + a.cfg.Gamma*ret

			// Critic: minimize 0.5 (V - R)^2.
			v := values.Row(i)[0]
			vb.dV.Row(i)[0] = v - ret

			// Actor: ascend A·∇log π(a|s) + β ∇H(π); see accumulateSingle
			// for the gradient derivation comments.
			adv := ret - v
			if a.cfg.AdvClip > 0 {
				adv = math.Max(-a.cfg.AdvClip, math.Min(a.cfg.AdvClip, adv))
			}
			lrow := logits.Row(i)
			p := vb.probs[:len(lrow)]
			nn.SoftmaxInto(p, lrow)
			h := nn.Entropy(p)
			drow := vb.dL.Row(i)
			for k := range drow {
				grad := adv * p[k]
				if k == actions[i] {
					grad -= adv
				}
				if p[k] > 0 {
					grad += a.cfg.EntropyBeta * p[k] * (math.Log(p[k]) + h)
				}
				grad += a.cfg.LogitDecay * lrow[k]
				drow[k] = grad
			}
		}
	}
	critic.BackwardBatch(vb.dV, w)
	actor.BackwardBatch(vb.dL, w)
}
