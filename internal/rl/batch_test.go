package rl

import (
	"sync"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

func testNetConfig() NetConfig {
	return NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}
}

func randomState(r *rng.RNG, histLen int) mdp.State {
	s := mdp.State{
		ReadHistory:  make([]float64, histLen),
		WriteHistory: make([]float64, histLen),
		SizeGB:       0.01 + r.Float64(),
		Tier:         pricing.Tier(r.Intn(pricing.NumTiers)),
	}
	for i := range s.ReadHistory {
		s.ReadHistory[i] = r.Float64() * 1000
		s.WriteHistory[i] = r.Float64() * 100
	}
	return s
}

func TestDecideBatchMatchesDecide(t *testing.T) {
	cfg := testNetConfig()
	r := rng.New(11)
	agent := NewAgent(cfg, cfg.BuildActor(r))
	const batch = 97
	states := make([]mdp.State, batch)
	x := mat.New(batch, mdp.FeatureDim(cfg.HistLen))
	for i := range states {
		states[i] = randomState(r, cfg.HistLen)
		states[i].FeaturesInto(x.Row(i))
	}
	got := make([]pricing.Tier, batch)
	agent.DecideBatch(x, got, 1)
	for i := range states {
		if want := agent.Decide(&states[i]); got[i] != want {
			t.Fatalf("state %d: DecideBatch %v, Decide %v", i, got[i], want)
		}
	}
}

func TestDecideBatchSteadyStateAllocFree(t *testing.T) {
	cfg := testNetConfig()
	r := rng.New(12)
	agent := NewAgent(cfg, cfg.BuildActor(r))
	x := mat.New(64, mdp.FeatureDim(cfg.HistLen))
	for i := 0; i < x.Rows; i++ {
		s := randomState(r, cfg.HistLen)
		s.FeaturesInto(x.Row(i))
	}
	out := make([]pricing.Tier, x.Rows)
	agent.DecideBatch(x, out, 1) // warm scratch
	allocs := testing.AllocsPerRun(10, func() { agent.DecideBatch(x, out, 1) })
	if allocs != 0 {
		t.Fatalf("steady-state DecideBatch allocates %.0f times per call, want 0", allocs)
	}
}

func TestDecideTraceMatchesPerFileLoop(t *testing.T) {
	cfg := testNetConfig()
	r := rng.New(13)
	agent := NewAgent(cfg, cfg.BuildActor(r))
	gen := trace.DefaultGenConfig()
	gen.NumFiles = 23
	gen.Days = 12
	gen.Seed = 5
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(pricing.Azure())
	reward := mdp.DefaultReward()

	asg := make(costmodel.Assignment, tr.NumFiles())
	if err := agent.DecideTrace(model, tr, 0, tr.NumFiles(), pricing.Hot, cfg.HistLen, reward, asg, 1); err != nil {
		t.Fatal(err)
	}
	// Reference: the single-sample per-file loop.
	single := agent.Clone()
	for i := 0; i < tr.NumFiles(); i++ {
		env, err := mdp.NewEnv(model, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], pricing.Hot, cfg.HistLen, reward)
		if err != nil {
			t.Fatal(err)
		}
		state := env.Reset()
		for d := 0; d < tr.Days; d++ {
			tier := single.Decide(&state)
			if asg[i][d] != tier {
				t.Fatalf("file %d day %d: batched %v, single-sample %v", i, d, asg[i][d], tier)
			}
			next, _, _, _, err := env.Step(tier)
			if err != nil {
				t.Fatal(err)
			}
			state = next
		}
	}
}

func TestReplicaPoolReuseAndSwap(t *testing.T) {
	cfg := testNetConfig()
	agent := NewAgent(cfg, cfg.BuildActor(rng.New(14)))
	pool := NewReplicaPool(agent)

	r1 := pool.Get()
	pool.Put(r1)
	r2 := pool.Get()
	if r1 != r2 {
		t.Fatal("pool did not reuse the returned replica")
	}
	if pool.Created() != 1 {
		t.Fatalf("Created = %d, want 1", pool.Created())
	}

	// A swap must invalidate outstanding and pooled replicas.
	next := NewAgent(cfg, cfg.BuildActor(rng.New(15)))
	pool.Swap(next)
	pool.Put(r2) // stale: must be dropped
	r3 := pool.Get()
	if r3 == r2 {
		t.Fatal("pool handed back a stale replica after Swap")
	}
	if pool.Created() != 1 {
		t.Fatalf("Created after swap = %d, want 1", pool.Created())
	}

	// Replica decisions must match the new source, not the old one.
	s := randomState(rng.New(16), cfg.HistLen)
	if got, want := r3.Decide(&s), next.Decide(&s); got != want {
		t.Fatalf("replica decided %v, fresh source %v", got, want)
	}
}

func TestReplicaPoolBoundedByConcurrency(t *testing.T) {
	cfg := testNetConfig()
	agent := NewAgent(cfg, cfg.BuildActor(rng.New(17)))
	pool := NewReplicaPool(agent)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rep := pool.Get()
				pool.Put(rep)
			}
		}()
	}
	wg.Wait()
	if c := pool.Created(); c > workers {
		t.Fatalf("pool created %d replicas for %d concurrent workers", c, workers)
	}
}
