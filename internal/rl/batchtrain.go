package rl

import (
	"math"
	"sync/atomic"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/nn"
)

// This file is the batched training engine: the default A3C update path
// that replaces 2·NSteps single-sample network passes per update with one
// ForwardBatch and one BackwardBatch each for actor and critic, plus the
// lock-free parameter snapshots that let workers pull without convoying on
// the optimizer mutex. The per-sample path it replaces survives behind
// A3CConfig.SingleSample as the executable specification; equivalence tests
// (rl and experiments) hold the two bitwise identical at Workers=1.
//
// Bitwise equivalence rests on two orderings. First, the reference loop
// walks the rollout newest-first (i = n-1 … 0), so the batch matrices are
// built in reverse time order — row j holds timestep n-1-j — and since
// BackwardBatch accumulates parameter gradients in row order, every
// gradient element receives its per-step terms in exactly the reference
// sequence. Second, the return recursion consumes only rewards and the
// bootstrap value, never network outputs, so hoisting it out of the network
// passes into a scalar loop changes no arithmetic.

// paramSnap is one buffer of the double-buffered global parameter store.
// The published buffer (a.snap) is the master copy; on the batched path it
// stays immutable until retired and recycled, so lock-free readers can copy
// from it safely. refs counts in-flight snapshot readers; a retired buffer
// is reused for a later apply only once refs drains to zero.
type paramSnap struct {
	actor, critic []float64
	refs          atomic.Int32
}

// nextSnapLocked returns a parameter buffer ready to receive the next
// update: a retired buffer whose readers have drained, or a fresh
// allocation. Steady state recycles, so the retired list stays O(Workers)
// and applies allocate nothing.
func (a *A3C) nextSnapLocked() *paramSnap {
	for i, c := range a.retired {
		if c.refs.Load() == 0 {
			last := len(a.retired) - 1
			a.retired[i] = a.retired[last]
			a.retired = a.retired[:last]
			return c
		}
	}
	cur := a.snap.Load()
	return &paramSnap{
		actor:  make([]float64, len(cur.actor)),
		critic: make([]float64, len(cur.critic)),
	}
}

// applyLocked is the batched path's optimizer apply: the update is written
// straight into the next buffer of the double-buffered store (reading the
// current one) and swapped in as published. The superseded buffer stays
// immutable for any readers still copying from it, and — unlike a
// copy-then-publish scheme — no O(params) publish pass exists beyond the
// optimizer's own write. Called with a.mu held.
func (a *A3C) applyLocked(aGrad, cGrad []float64) {
	cur := a.snap.Load()
	next := a.nextSnapLocked()
	a.actorOpt.StepTo(next.actor, cur.actor, aGrad)
	a.criticOpt.StepTo(next.critic, cur.critic, cGrad)
	a.snap.Swap(next)
	a.retired = append(a.retired, cur)
	trainMet.swaps.Inc()
}

// installLocked replaces the published parameters with copies of the given
// vectors (checkpoint restore). Called with a.mu held.
func (a *A3C) installLocked(actor, critic []float64) {
	next := a.nextSnapLocked()
	copy(next.actor, actor)
	copy(next.critic, critic)
	old := a.snap.Swap(next)
	a.retired = append(a.retired, old)
	trainMet.swaps.Inc()
}

// bindSnapshot pins the current published buffer and points the worker's
// replica networks directly at it — an O(layers) pull with no parameter
// copy. Protocol: load the pointer, announce the read by incrementing refs,
// then re-check the pointer — if it moved, this buffer may be mid-recycle,
// so release and retry against the newer one. A successful re-check proves
// the apply's writes into this buffer happened before the swap that made it
// current (atomic release/acquire on a.snap), so the data bound is complete
// even when the buffer is a recycled allocation.
//
// The returned snapshot stays pinned (refs held) until the caller passes it
// back as prev on the next bind or releases it with releaseSnapshot: the
// replica reads parameters from the buffer for the whole rollout and update,
// so it must not be recycled until the worker moves off it. If the published
// pointer still equals prev, the buffer is unchanged — a published buffer is
// immutable on this path and cannot be recycled while prev's ref is held —
// and the bind is a no-op.
func (a *A3C) bindSnapshot(actor, critic *nn.Network, prev *paramSnap) *paramSnap {
	for {
		s := a.snap.Load()
		if s == prev {
			return prev
		}
		s.refs.Add(1)
		if a.snap.Load() == s {
			releaseSnapshot(prev)
			actor.BindParamVector(s.actor)
			critic.BindParamVector(s.critic)
			return s
		}
		s.refs.Add(-1)
	}
}

// releaseSnapshot drops a pin taken by bindSnapshot; nil is a no-op.
func releaseSnapshot(s *paramSnap) {
	if s != nil {
		s.refs.Add(-1)
	}
}

// batchBuf holds one worker's reused matrices for the batched update, grown
// to NSteps once and reused for every rollout thereafter.
type batchBuf struct {
	feats *mat.Matrix // rollout features, reverse time order
	dV    *mat.Matrix // critic output gradients (V - R per row)
	dL    *mat.Matrix // actor logit gradients
	probs []float64   // reused per-row softmax output
}

// accumulateBatched runs the n-step update as batched passes: one critic
// ForwardBatch for all rollout values, one actor ForwardBatch for all
// logits, a scalar loop computing returns, advantages and per-step output
// gradients, then one BackwardBatch each — six network passes per update
// become four, each amortizing its GEMMs over the whole rollout.
//
// The scalar loop reproduces the reference arithmetic term for term
// (advantage clip, entropy bonus, logit decay); see the file comment for
// why the row ordering makes the accumulated gradients bitwise identical.
// The GEMM fan-out follows A3CConfig.Parallelism (default serial: A3C's
// parallelism conventionally comes from the worker fan-out, not from inside
// one update); any setting leaves the gradients bitwise unchanged.
func (a *A3C) accumulateBatched(actor, critic *nn.Network, buf *rollout, ret float64, bb *batchBuf) {
	w := a.cfg.parallelism()
	n := len(buf.rewards)
	bb.feats = mat.EnsureShape(bb.feats, n, len(buf.features[0]))
	for j := 0; j < n; j++ {
		copy(bb.feats.Row(j), buf.features[n-1-j])
	}
	values := critic.ForwardBatch(bb.feats, w)
	logits := actor.ForwardBatch(bb.feats, w)
	bb.dV = mat.EnsureShape(bb.dV, n, 1)
	bb.dL = mat.EnsureShape(bb.dL, n, mdp.NumActions)
	if cap(bb.probs) < mdp.NumActions {
		bb.probs = make([]float64, mdp.NumActions)
	}
	for j := 0; j < n; j++ {
		i := n - 1 - j
		ret = buf.rewards[i] + a.cfg.Gamma*ret

		// Critic: minimize 0.5 (V - R)^2.
		v := values.Row(j)[0]
		bb.dV.Row(j)[0] = v - ret

		// Actor: ascend A·∇log π(a|s) + β ∇H(π); see accumulateSingle for
		// the gradient derivation comments.
		adv := ret - v
		if a.cfg.AdvClip > 0 {
			adv = math.Max(-a.cfg.AdvClip, math.Min(a.cfg.AdvClip, adv))
		}
		lrow := logits.Row(j)
		p := bb.probs[:len(lrow)]
		nn.SoftmaxInto(p, lrow)
		h := nn.Entropy(p)
		drow := bb.dL.Row(j)
		for k := range drow {
			grad := adv * p[k]
			if k == buf.actions[i] {
				grad -= adv
			}
			if p[k] > 0 {
				grad += a.cfg.EntropyBeta * p[k] * (math.Log(p[k]) + h)
			}
			grad += a.cfg.LogitDecay * lrow[k]
			drow[k] = grad
		}
	}
	critic.BackwardBatch(bb.dV, w)
	actor.BackwardBatch(bb.dL, w)
}
