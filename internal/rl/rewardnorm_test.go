package rl

import (
	"math"
	"testing"
)

// TestRewardNormFirstSampleSeeding pins the cold-start contract: the first
// reward seeds the running mean at the sample itself (so the first
// normalized value is exactly 0, not a huge spike) and the variance at a
// small fraction of the sample's own scale, which keeps the immediately
// following samples O(1) even for rewards far from unit scale.
func TestRewardNormFirstSampleSeeding(t *testing.T) {
	var n rewardNorm
	const r = 4.0
	if got := n.normalize(r); got != 0 {
		t.Fatalf("first normalized sample = %v, want exactly 0", got)
	}
	if !n.seen {
		t.Fatal("seen not latched after first sample")
	}
	if n.mean != r {
		t.Fatalf("mean seeded at %v, want %v", n.mean, r)
	}
	if want := r*r*0.01 + 1e-6; n.vr != want {
		t.Fatalf("variance seeded at %v, want %v", n.vr, want)
	}
}

// TestRewardNormRunningMeanCentering feeds a long constant stream after a
// contrarian first sample and checks the running mean converges onto the
// stream (rate 0.001 per sample), so the normalized output re-centers near
// zero instead of permanently reporting the early offset.
func TestRewardNormRunningMeanCentering(t *testing.T) {
	var n rewardNorm
	n.normalize(0) // seed far from the stream
	var last float64
	for i := 0; i < 10000; i++ {
		last = n.normalize(10)
	}
	// mean approaches 10 as 10·(1-0.999^k); after 10k samples the residual
	// offset is < 10·e^{-10}.
	if n.mean < 9.9 || n.mean > 10 {
		t.Fatalf("running mean = %v, want ≈10", n.mean)
	}
	if math.Abs(last) > 0.1 {
		t.Fatalf("normalized constant stream = %v after convergence, want ≈0", last)
	}
}

// TestRewardNormScaleInvariance checks the whole point of the normalizer:
// scaling every reward by a constant leaves the normalized stream (nearly)
// unchanged, because both the running mean and the RMS scale estimate are
// linear in the input. Invariance is approximate only through the tiny
// absolute variance floors (1e-6, 1e-12), which are negligible at these
// magnitudes.
func TestRewardNormScaleInvariance(t *testing.T) {
	stream := []float64{2, -1, 3.5, 0.25, -4, 7, 1, 1, -2.5, 6}
	const k = 1000.0
	var a, b rewardNorm
	for i, r := range stream {
		x := a.normalize(r)
		y := b.normalize(k * r)
		if math.Abs(x-y) > 1e-4*(1+math.Abs(x)) {
			t.Fatalf("sample %d: normalize(%v)=%v but normalize(%v·%v)=%v", i, r, x, k, r, y)
		}
	}
}
