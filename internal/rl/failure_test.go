package rl

import (
	"sync/atomic"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// TestA3CSurvivesExhaustedEnvs injects a misbehaving factory: every third
// env arrives already finished, so the first Step errors. The worker must
// recover by requesting a fresh env and still complete the step budget.
func TestA3CSurvivesExhaustedEnvs(t *testing.T) {
	model := costmodel.New(pricing.Azure())
	cfg := smallA3CConfig()
	cfg.Workers = 2
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	writes := make([]float64, len(reads))
	// The factory is called concurrently by the async workers, so the call
	// counter must be atomic.
	var calls atomic.Int64
	factory := func(r *rng.RNG) *mdp.Env {
		env, err := mdp.NewEnv(model, 0.1, reads, writes, pricing.Hot, 7, mdp.DefaultReward())
		if err != nil {
			t.Error(err)
			return nil
		}
		if calls.Add(1)%3 == 0 {
			// Exhaust the episode before handing it over.
			for d := 0; d < len(reads); d++ {
				if _, _, _, _, err := env.Step(pricing.Hot); err != nil {
					t.Error(err)
				}
			}
		}
		return env
	}
	stats, err := a3c.Train(factory, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps < 2000 {
		t.Fatalf("training stalled at %d steps", stats.Steps)
	}
}

// TestDQNSurvivesExhaustedEnvs is the replay-learner counterpart.
func TestDQNSurvivesExhaustedEnvs(t *testing.T) {
	model := costmodel.New(pricing.Azure())
	cfg := smallDQNConfig()
	cfg.WarmupSteps = 64
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	writes := make([]float64, len(reads))
	calls := 0
	factory := func(r *rng.RNG) *mdp.Env {
		env, _ := mdp.NewEnv(model, 0.1, reads, writes, pricing.Hot, 7, mdp.DefaultReward())
		calls++
		if calls%3 == 0 {
			for dd := 0; dd < len(reads); dd++ {
				_, _, _, _, _ = env.Step(pricing.Hot)
			}
		}
		return env
	}
	stats, err := d.Train(factory, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps < 1500 {
		t.Fatalf("training stalled at %d steps", stats.Steps)
	}
}

// TestEvaluateAgentPropagatesEnvErrors verifies the serving path surfaces
// trace corruption instead of mispricing silently.
func TestEvaluateAgentPropagatesEnvErrors(t *testing.T) {
	tr := polarTrace(t, 4, 10)
	tr.Files[2].SizeGB = 0 // invalid size -> mdp.NewEnv must fail
	netCfg := NetConfig{HistLen: 7, Filters: 4, Kernel: 3, Stride: 1, Hidden: 8}
	agent := NewAgent(netCfg, netCfg.BuildActor(rng.New(1)))
	if _, _, err := EvaluateAgent(agent, costmodel.New(pricing.Azure()), tr, 7, pricing.Hot); err == nil {
		t.Fatal("corrupted trace accepted")
	}
}
