package rl

import (
	"fmt"
	"math"

	"minicost/internal/mdp"
	"minicost/internal/rng"
)

// QLearner is a tabular ε-greedy Q-learning reference implementation over a
// finite MDP. It exists to validate the RL plumbing: on a tiny MDP its
// greedy policy must match exact value iteration, giving an independent
// check that rewards, discounting and exploration are wired correctly
// before trusting the neural learner.
type QLearner struct {
	MDP     *mdp.Finite
	Q       [][]float64
	Alpha   float64 // learning rate
	Gamma   float64
	Epsilon float64
}

// NewQLearner returns a zero-initialized learner.
func NewQLearner(m *mdp.Finite, alpha, gamma, epsilon float64) (*QLearner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if alpha <= 0 || alpha > 1 || gamma < 0 || gamma >= 1 || epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("rl: bad Q-learning hyperparameters alpha=%v gamma=%v epsilon=%v", alpha, gamma, epsilon)
	}
	q := make([][]float64, m.NumStates)
	for s := range q {
		q[s] = make([]float64, m.NumActions)
	}
	return &QLearner{MDP: m, Q: q, Alpha: alpha, Gamma: gamma, Epsilon: epsilon}, nil
}

// Train runs episodes of at most maxLen steps from the given start state.
func (q *QLearner) Train(r *rng.RNG, episodes, maxLen, start int) {
	for ep := 0; ep < episodes; ep++ {
		s := start
		for t := 0; t < maxLen && !q.MDP.Terminal[s]; t++ {
			a := q.act(r, s)
			next := q.MDP.Next[s][a]
			reward := q.MDP.Reward[s][a]
			target := reward
			if !q.MDP.Terminal[next] {
				target += q.Gamma * maxOf(q.Q[next])
			}
			q.Q[s][a] += q.Alpha * (target - q.Q[s][a])
			s = next
		}
	}
}

func (q *QLearner) act(r *rng.RNG, s int) int {
	if r.Float64() < q.Epsilon {
		return r.Intn(q.MDP.NumActions)
	}
	return argmax(q.Q[s])
}

// Policy returns the greedy policy under the current Q table.
func (q *QLearner) Policy() []int {
	out := make([]int, q.MDP.NumStates)
	for s := range out {
		out[s] = argmax(q.Q[s])
	}
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

func maxOf(xs []float64) float64 {
	best := math.Inf(-1)
	for _, v := range xs {
		if v > best {
			best = v
		}
	}
	return best
}
