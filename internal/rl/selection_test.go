package rl

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
)

func TestTrainWithSelectionValidation(t *testing.T) {
	a3c, err := NewA3C(smallA3CConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	tr := polarTrace(t, 6, 10)
	if _, _, err := TrainWithSelection(a3c, m, tr, mdp.DefaultReward(), 2, 5, pricing.Hot); err == nil {
		t.Fatal("totalSteps below chunk count accepted")
	}
}

func TestTrainWithSelectionReturnsScoredAgent(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	tr := polarTrace(t, 20, 21)
	agent, stats, err := TrainWithSelection(a3c, m, tr, mdp.DefaultReward(), 30000, 5, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if agent == nil {
		t.Fatal("no agent returned")
	}
	if stats.Steps < 30000 {
		t.Fatalf("aggregated stats cover %d steps", stats.Steps)
	}
	// The selected snapshot must not be worse than untrained all-hot-ish
	// behaviour on the same workload: compare against the all-hot bill.
	got, _, err := EvaluateAgent(agent, m, tr, cfg.Net.HistLen, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = pricing.Hot
	}
	bds, err := m.TraceCost(tr, costmodel.UniformAssignment(pricing.Hot, tr.NumFiles(), tr.Days), init, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := costmodel.SumBreakdowns(bds).Total()
	if got.Total() > hot {
		t.Fatalf("selected agent %v worse than all-hot %v", got.Total(), hot)
	}
	// Chunked selection must leave the trainer resumable.
	if a3c.Steps() < 30000 {
		t.Fatalf("trainer steps %d", a3c.Steps())
	}
}
