package rl

import (
	"math"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// TestTrainingMetricsAdvance runs a short Train with the default registry
// enabled and asserts the training instruments move: steps, updates,
// snapshot swaps, update latency, batch fill, and the derived steps/sec
// gauge. Deltas, not absolutes — the registry is process-global.
func TestTrainingMetricsAdvance(t *testing.T) {
	reg := obs.Default()
	was := reg.Enabled()
	reg.SetEnabled(true)
	t.Cleanup(func() { reg.SetEnabled(was) })

	before := reg.Snapshot()
	a3c, err := NewA3C(smallA3CConfig())
	if err != nil {
		t.Fatal(err)
	}
	factory := func(r *rng.RNG) *mdp.Env {
		e, _ := mdp.NewEnv(costmodel.New(pricing.Azure()), 0.1,
			[]float64{1, 2, 3, 4, 5, 6, 7, 8}, make([]float64, 8), pricing.Hot, 7, mdp.DefaultReward())
		return e
	}
	const steps = 200
	if _, err := a3c.Train(factory, steps); err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()

	delta := func(id string) float64 { return after.Counter(id) - before.Counter(id) }
	if got := delta("minicost_train_steps_total"); got < steps {
		t.Errorf("steps delta = %v, want ≥ %d", got, steps)
	}
	if delta("minicost_train_updates_total") <= 0 {
		t.Error("updates counter did not advance")
	}
	if delta("minicost_train_snapshot_swaps_total") <= 0 {
		t.Error("snapshot swap counter did not advance")
	}
	if delta("minicost_train_episodes_total") <= 0 {
		t.Error("episode counter did not advance")
	}
	lat := after.Histogram("minicost_train_update_seconds")
	if lat.Count <= before.Histogram("minicost_train_update_seconds").Count {
		t.Error("update latency histogram did not advance")
	}
	fill := after.Histogram("minicost_train_batch_fill")
	if fill.Count <= before.Histogram("minicost_train_batch_fill").Count {
		t.Error("batch fill histogram did not advance")
	}
	if rate := after.Gauge("minicost_train_steps_per_second"); math.IsNaN(rate) || rate <= 0 {
		t.Errorf("steps/sec gauge = %v, want finite positive", rate)
	}
	// The grad-norm gauge saw at least one post-clip update.
	if norm := after.Gauge("minicost_train_grad_norm"); math.IsNaN(norm) || norm < 0 {
		t.Errorf("grad norm gauge = %v", norm)
	}
}

// TestVecTrainingMetricsAdvance is the vectorized-engine counterpart: the
// lockstep envs gauge returns to its pre-run level once all workers exit
// (Add/defer-Add pairing), and the batched-forward timer advanced.
func TestVecTrainingMetricsAdvance(t *testing.T) {
	reg := obs.Default()
	was := reg.Enabled()
	reg.SetEnabled(true)
	t.Cleanup(func() { reg.SetEnabled(was) })

	before := reg.Snapshot()
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.EnvsPerWorker = 4
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(r *rng.RNG) *mdp.Env {
		e, _ := mdp.NewEnv(costmodel.New(pricing.Azure()), 0.1,
			[]float64{1, 2, 3, 4, 5, 6, 7, 8}, make([]float64, 8), pricing.Hot, 7, mdp.DefaultReward())
		return e
	}
	const steps = 112 // 4 full 4×7 rollouts
	if _, err := a3c.Train(factory, steps); err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()

	if got := after.Counter("minicost_train_steps_total") - before.Counter("minicost_train_steps_total"); got < steps {
		t.Errorf("steps delta = %v, want ≥ %d", got, steps)
	}
	if got, want := after.Gauge("minicost_train_envs"), before.Gauge("minicost_train_envs"); got != want {
		t.Errorf("envs gauge = %v after the run, want back at %v", got, want)
	}
	fwd := after.Histogram("minicost_train_vec_forward_seconds")
	if fwd.Count <= before.Histogram("minicost_train_vec_forward_seconds").Count {
		t.Error("vectorized forward timer did not advance")
	}
}
