package rl

import (
	"bytes"
	"math"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

func smallDQNConfig() DQNConfig {
	cfg := DefaultDQNConfig()
	cfg.Net = NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	cfg.BufferSize = 5000
	cfg.WarmupSteps = 200
	cfg.Seed = 9
	return cfg
}

func TestDQNConfigValidate(t *testing.T) {
	if err := DefaultDQNConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*DQNConfig)) DQNConfig {
		c := smallDQNConfig()
		f(&c)
		return c
	}
	for i, c := range []DQNConfig{
		mut(func(c *DQNConfig) { c.LearningRate = 0 }),
		mut(func(c *DQNConfig) { c.Gamma = 1 }),
		mut(func(c *DQNConfig) { c.EpsilonFinal = 0.9 }), // above start
		mut(func(c *DQNConfig) { c.BatchSize = 0 }),
		mut(func(c *DQNConfig) { c.BufferSize = 8; c.BatchSize = 32 }),
		mut(func(c *DQNConfig) { c.UpdateEvery = 0 }),
		mut(func(c *DQNConfig) { c.TargetSync = 0 }),
		mut(func(c *DQNConfig) { c.WarmupSteps = 1 }),
	} {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid DQN config accepted", i)
		}
		if _, err := NewDQN(c); err == nil {
			t.Errorf("case %d: NewDQN accepted invalid config", i)
		}
	}
}

func TestDQNTrainRejectsBadArgs(t *testing.T) {
	d, err := NewDQN(smallDQNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Train(nil, 100); err == nil {
		t.Error("nil factory accepted")
	}
	factory := func(r *rng.RNG) *mdp.Env {
		e, _ := mdp.NewEnv(costmodel.New(pricing.Azure()), 0.1,
			make([]float64, 10), make([]float64, 10), pricing.Hot, 7, mdp.DefaultReward())
		return e
	}
	if _, err := d.Train(factory, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestDQNEpsilonAnneals(t *testing.T) {
	d, err := NewDQN(smallDQNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.epsilon(0); math.Abs(got-d.cfg.EpsilonStart) > 1e-12 {
		t.Fatalf("eps(0) = %v", got)
	}
	if got := d.epsilon(1); math.Abs(got-d.cfg.EpsilonFinal) > 1e-12 {
		t.Fatalf("eps(1) = %v", got)
	}
	if got := d.epsilon(2); math.Abs(got-d.cfg.EpsilonFinal) > 1e-12 {
		t.Fatalf("eps clamps at final, got %v", got)
	}
	mid := d.epsilon(0.5)
	if mid <= d.cfg.EpsilonFinal || mid >= d.cfg.EpsilonStart {
		t.Fatalf("eps(0.5) = %v outside schedule", mid)
	}
}

func TestDQNReplayRing(t *testing.T) {
	cfg := smallDQNConfig()
	cfg.BufferSize = 64
	cfg.BatchSize = 8
	cfg.WarmupSteps = 8
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d.push(transition{action: i})
	}
	if d.filled != 64 {
		t.Fatalf("ring filled %d, want 64", d.filled)
	}
	// The ring holds the most recent 64 entries.
	seen := map[int]bool{}
	for _, tr := range d.buffer {
		seen[tr.action] = true
	}
	for i := 136; i < 200; i++ {
		if !seen[i] {
			t.Fatalf("recent transition %d evicted", i)
		}
	}
}

func TestDQNLearnsPolarWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr := polarTrace(t, 20, 21)
	model := costmodel.New(pricing.Azure())
	cfg := smallDQNConfig()
	d, err := NewDQN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Train(factory, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps < 40000 || stats.Updates == 0 {
		t.Fatalf("stats %+v", stats)
	}
	agent := d.Agent()
	got, _, err := EvaluateAgent(agent, model, tr, cfg.Net.HistLen, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	evalUniform := func(tier pricing.Tier) float64 {
		init := make([]pricing.Tier, tr.NumFiles())
		for i := range init {
			init[i] = pricing.Hot
		}
		bds, err := model.TraceCost(tr, costmodel.UniformAssignment(tier, tr.NumFiles(), tr.Days), init, 0)
		if err != nil {
			t.Fatal(err)
		}
		return costmodel.SumBreakdowns(bds).Total()
	}
	hot := evalUniform(pricing.Hot)
	if got.Total() > hot {
		t.Fatalf("DQN %v worse than all-hot %v", got.Total(), hot)
	}
	t.Logf("dqn=%.4f hot=%.4f", got.Total(), hot)
}

func TestAgentCheckpointRoundTrip(t *testing.T) {
	cfg := NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	agent := NewAgent(cfg, cfg.BuildActor(rng.New(3)))
	var buf bytes.Buffer
	if err := agent.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same decisions on a probe state.
	s := mdp.State{
		ReadHistory:  []float64{1, 5, 2, 8, 3, 9, 4},
		WriteHistory: make([]float64, 7),
		SizeGB:       0.1,
		Tier:         pricing.Cool,
	}
	p1, p2 := agent.Probabilities(&s), back.Probabilities(&s)
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-12 {
			t.Fatal("checkpoint round trip changed the policy")
		}
	}
}

func TestLoadAgentRejectsGarbage(t *testing.T) {
	if _, err := LoadAgent(bytes.NewBufferString("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestA3CCheckpointRoundTrip(t *testing.T) {
	cfg := smallA3CConfig()
	a1, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	a2, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s := mdp.State{ReadHistory: make([]float64, 7), WriteHistory: make([]float64, 7), SizeGB: 0.1}
	s.ReadHistory[2] = 7
	p1 := a1.Snapshot().Probabilities(&s)
	p2 := a2.Snapshot().Probabilities(&s)
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-12 {
			t.Fatal("trainer checkpoint round trip changed weights")
		}
	}
	// Architecture mismatch rejected.
	other := cfg
	other.Net.Hidden = 8
	a3, err := NewA3C(other)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := a1.SaveCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := a3.LoadCheckpoint(&buf2); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

func BenchmarkDQNTrainStep(b *testing.B) {
	tr := polarTrace(b, 8, 14)
	model := costmodel.New(pricing.Azure())
	cfg := smallDQNConfig()
	d, err := NewDQN(cfg)
	if err != nil {
		b.Fatal(err)
	}
	factory, err := TraceFactory(model, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := d.Train(factory, int64(b.N)); err != nil {
		b.Fatal(err)
	}
}
