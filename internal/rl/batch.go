package rl

import (
	"fmt"
	"sync"

	"minicost/internal/costmodel"
	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Batched serving: the per-file inference loop (one cloned network and one
// single-sample forward pass per file and day) does not survive contact with
// trace-scale populations, so serving restructures decision-making
// day-major — pack every file's feature vector for day d into one batch
// matrix, run one GEMM per layer per day, and take the per-row argmax. The
// single-sample Decide stays as the training path and as the reference
// implementation the equivalence tests check DecideBatch against (results
// are bitwise identical; see nn/batch.go).

// DefaultBatchRows is the chunk size batched steppers use: large enough
// that GEMM dominates per-row bookkeeping, small enough that one chunk's
// activations (batch × conv-output floats) stay a few MB per worker.
const DefaultBatchRows = 256

// DecideBatch writes the greedy (argmax-logit) tier of every feature row
// into out[0:x.Rows]. Feature rows are built with mdp.State.FeaturesInto.
// workers bounds the intra-GEMM fan-out — pass 1 when the caller already
// runs one DecideBatch per goroutine. Like Decide, it is not safe for
// concurrent use on one Agent; use a ReplicaPool for that.
//
//minicost:hotpath
func (a *Agent) DecideBatch(x *mat.Matrix, out []pricing.Tier, workers int) {
	if len(out) < x.Rows {
		panic(fmt.Sprintf("rl: DecideBatch out len %d < batch %d", len(out), x.Rows))
	}
	logits := a.actor.ForwardBatch(x, workers)
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		best := 0
		for i := 1; i < len(row); i++ {
			if row[i] > row[best] {
				best = i
			}
		}
		out[r] = pricing.Tier(best)
	}
}

// DecideTrace steps the files [lo, hi) of a trace through their episodes
// with day-major batched decisions, writing each file's per-day plan into
// out[lo:hi]. The agent's serving scratch — feature matrix, tier buffer,
// and the per-file environments themselves (recycled via mdp.Env.Reinit
// with recycled observations) — is reused across calls, so a replica that
// serves many chunks reaches a fully allocation-free steady state, which
// the rl allocation tests pin down.
func (a *Agent) DecideTrace(model *costmodel.Model, tr *trace.Trace, lo, hi int, initial pricing.Tier, histLen int, reward mdp.RewardConfig, out costmodel.Assignment, workers int) error {
	b := hi - lo
	if b <= 0 {
		return nil
	}
	a.feats = mat.EnsureShape(a.feats, b, mdp.FeatureDim(histLen))
	if cap(a.tiers) < b {
		a.tiers = make([]pricing.Tier, b)
	}
	if cap(a.envs) < b {
		envs := make([]*mdp.Env, b)
		copy(envs, a.envs)
		a.envs = envs
		a.states = make([]mdp.State, b)
	}
	tiers := a.tiers[:b]
	envs := a.envs[:b]
	states := a.states[:b]
	for i := 0; i < b; i++ {
		if envs[i] == nil {
			envs[i] = &mdp.Env{}
			envs[i].EnableStateReuse()
		}
		if err := envs[i].Reinit(model, tr.Files[lo+i].SizeGB, tr.Reads[lo+i], tr.Writes[lo+i], initial, histLen, reward); err != nil {
			return err
		}
		states[i] = envs[i].Reset()
		// Reuse a caller-provided plan (e.g. an arena-backed assignment slot)
		// when it already has the right length.
		if len(out[lo+i]) != tr.Days {
			out[lo+i] = make(costmodel.Plan, tr.Days)
		}
	}
	for d := 0; d < tr.Days; d++ {
		for i := range envs {
			states[i].FeaturesInto(a.feats.Row(i))
		}
		a.DecideBatch(a.feats, tiers, workers)
		for i, env := range envs {
			next, _, _, _, err := env.Step(tiers[i])
			if err != nil {
				return err
			}
			out[lo+i][d] = tiers[i]
			states[i] = next
		}
	}
	return nil
}

// Replica is a pooled per-goroutine copy of an agent. It embeds *Agent, so
// it is used exactly like one; return it with ReplicaPool.Put when done.
type Replica struct {
	*Agent
	version uint64
}

// ReplicaPool hands out independent replicas of a source agent so that
// concurrent servers stop rebuilding a network per request (or per file):
// the replica count is bounded by the peak number of concurrent holders,
// not by request volume. Swap refreshes the source on snapshot updates;
// replicas from before the swap are discarded on Put instead of being
// reused with stale weights.
//
// The free list is an explicit mutex-guarded slice rather than a sync.Pool:
// a sync.Pool may drop items at any GC (unbounding replica construction,
// which the allocation tests pin down) and cannot invalidate stale replicas
// on Swap — the version check here needs to see every Get/Put anyway.
type ReplicaPool struct {
	mu      sync.Mutex
	src     *Agent
	version uint64
	free    []*Replica
	created int64
}

// NewReplicaPool builds a pool around src. The pool reads src's weights
// only inside Get (under the pool lock); callers must not mutate src
// concurrently with Get — publish new weights through Swap instead.
func NewReplicaPool(src *Agent) *ReplicaPool {
	if src == nil {
		panic("rl: NewReplicaPool with nil agent")
	}
	return &ReplicaPool{src: src}
}

// Get returns a replica of the current source, reusing a pooled one when
// available. The replica is exclusively owned by the caller until Put.
func (p *ReplicaPool) Get() *Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	p.created++
	return &Replica{Agent: p.src.Clone(), version: p.version}
}

// Put returns a replica to the pool. Replicas taken before the last Swap
// are dropped so stale weights never serve another request.
func (p *ReplicaPool) Put(r *Replica) {
	if r == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.version == p.version {
		p.free = append(p.free, r)
	}
}

// Swap replaces the source agent (a new training snapshot) and invalidates
// every replica built from the previous one.
func (p *ReplicaPool) Swap(src *Agent) {
	if src == nil {
		panic("rl: ReplicaPool.Swap with nil agent")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src = src
	p.version++
	p.free = p.free[:0]
	p.created = 0
}

// Created returns how many replicas have been built for the current source
// — the observable the "no clone per file" allocation tests assert on.
func (p *ReplicaPool) Created() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
