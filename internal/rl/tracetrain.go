package rl

import (
	"fmt"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// TraceSource samples per-file episodes from a trace: each episode picks a
// uniformly random file and steps through its whole daily series under the
// given cost model and reward (the paper's training regime: "the agent takes
// the real-time data or historical data as input", per-file decisions). It
// implements EnvSource with an allocation-free ReinitEnv (mdp.Env.Reinit
// re-targets the worker's environment in place), which is what keeps episode
// turnover off the vectorized engine's hot path.
type TraceSource struct {
	model   *costmodel.Model
	tr      *trace.Trace
	histLen int
	reward  mdp.RewardConfig
	initial pricing.Tier
}

// NewTraceSource validates the inputs and builds a TraceSource.
func NewTraceSource(model *costmodel.Model, tr *trace.Trace, histLen int, reward mdp.RewardConfig, initial pricing.Tier) (*TraceSource, error) {
	if tr.NumFiles() == 0 {
		return nil, fmt.Errorf("rl: empty trace")
	}
	if histLen <= 0 {
		return nil, fmt.Errorf("rl: histLen %d", histLen)
	}
	return &TraceSource{model: model, tr: tr, histLen: histLen, reward: reward, initial: initial}, nil
}

// NewEnv draws a random file and returns a fresh environment over it.
func (s *TraceSource) NewEnv(r *rng.RNG) *mdp.Env {
	i := r.Intn(s.tr.NumFiles())
	env, err := mdp.NewEnv(s.model, s.tr.Files[i].SizeGB, s.tr.Reads[i], s.tr.Writes[i], s.initial, s.histLen, s.reward)
	if err != nil {
		// Generate/Validate guarantee per-file series are well formed;
		// reaching here means the trace was corrupted after validation.
		panic(fmt.Sprintf("rl: trace env: %v", err))
	}
	return env
}

// ReinitEnv re-targets env onto a freshly drawn file in place, consuming
// exactly the randomness NewEnv would (one file draw), so swapping the two
// leaves a worker's episode sequence unchanged.
func (s *TraceSource) ReinitEnv(r *rng.RNG, env *mdp.Env) {
	i := r.Intn(s.tr.NumFiles())
	if err := env.Reinit(s.model, s.tr.Files[i].SizeGB, s.tr.Reads[i], s.tr.Writes[i], s.initial, s.histLen, s.reward); err != nil {
		panic(fmt.Sprintf("rl: trace env: %v", err))
	}
}

// TraceFactory returns an EnvFactory over a TraceSource's episode
// distribution; new code should pass NewTraceSource to TrainFrom instead,
// which also unlocks allocation-free episode turnover.
func TraceFactory(model *costmodel.Model, tr *trace.Trace, histLen int, reward mdp.RewardConfig, initial pricing.Tier) (EnvFactory, error) {
	src, err := NewTraceSource(model, tr, histLen, reward, initial)
	if err != nil {
		return nil, err
	}
	return src.NewEnv, nil
}

// EvaluateAgent runs the greedy policy over every file in the trace and
// returns the total bill — the serving-side counterpart of training, used by
// experiments and tests to score a snapshot. It steps files day-major in
// batched chunks (Agent.DecideTrace) with a pooled replica per worker, which
// is what keeps per-checkpoint validation affordable during training.
func EvaluateAgent(agent *Agent, model *costmodel.Model, tr *trace.Trace, histLen int, initial pricing.Tier) (costmodel.Breakdown, costmodel.Assignment, error) {
	n := tr.NumFiles()
	asg := make(costmodel.Assignment, n)
	reward := mdp.DefaultReward()
	pool := NewReplicaPool(agent)
	chunkErrs := make([]error, (n+DefaultBatchRows-1)/DefaultBatchRows)
	par.ForBatched(n, DefaultBatchRows, 0, func(lo, hi int) {
		rep := pool.Get()
		defer pool.Put(rep)
		if err := rep.DecideTrace(model, tr, lo, hi, initial, histLen, reward, asg, 1); err != nil {
			chunkErrs[lo/DefaultBatchRows] = err
		}
	})
	for _, err := range chunkErrs {
		if err != nil {
			return costmodel.Breakdown{}, nil, err
		}
	}
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = initial
	}
	bds, err := model.TraceCost(tr, asg, init, 0)
	if err != nil {
		return costmodel.Breakdown{}, nil, err
	}
	return costmodel.SumBreakdowns(bds), asg, nil
}
