package rl

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// TestBatchedTrainerParallelismBitwise extends the batched/single-sample
// equivalence gate to the intra-update fan-out: a Workers=1 trainer running
// every update's GEMMs across 3 goroutines must still land bitwise on the
// per-sample reference — the parallel kernels shard only independent output
// elements, so Parallelism never perturbs training.
func TestBatchedTrainerParallelismBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := smallA3CConfig()
	cfg.Workers = 1
	cfg.Parallelism = 3
	const steps = 400

	ref := cfg
	ref.Parallelism = 0
	ref.SingleSample = true
	wantA, wantC, wantStats := trainParams(t, ref, 8, 14, steps)
	gotA, gotC, gotStats := trainParams(t, cfg, 8, 14, steps)

	if gotStats != wantStats {
		t.Fatalf("stats diverged: parallel %+v, single-sample %+v", gotStats, wantStats)
	}
	assertVectorsBitwise(t, "actor", gotA, wantA)
	assertVectorsBitwise(t, "critic", gotC, wantC)
}

// TestAccumulateBatchedSteadyStateAllocFree gates the per-update training
// hot path: with warm scratch, one full batched accumulation (feature pack,
// two forwards, scalar gradient loop, two backwards) allocates nothing.
func TestAccumulateBatchedSteadyStateAllocFree(t *testing.T) {
	cfg := smallA3CConfig()
	a3c, err := NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	actor := a3c.protoActor.Clone()
	critic := a3c.protoCritic.Clone()
	actor.FlattenGrads()
	critic.FlattenGrads()

	dim := cfg.Net.featureDim()
	buf := newRollout(cfg.NSteps, dim)
	r := rng.New(3)
	for i := 0; i < cfg.NSteps; i++ {
		row := buf.nextFeatureRow(dim)
		for j := range row {
			row[j] = r.Float64()
		}
		buf.features = append(buf.features, row)
		buf.actions = append(buf.actions, i%mdp.NumActions)
		buf.rewards = append(buf.rewards, r.Float64()-0.5)
	}
	var bb batchBuf
	a3c.accumulateBatched(actor, critic, buf, 0.25, &bb)
	allocs := testing.AllocsPerRun(10, func() {
		a3c.accumulateBatched(actor, critic, buf, 0.25, &bb)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batched accumulation allocates %.0f/op, want 0", allocs)
	}
}

// TestAgentSampleSteadyStateAllocFree gates the worker-side per-step hot
// path: sampling an action from a live state allocates nothing once the
// agent's scratch is warm.
func TestAgentSampleSteadyStateAllocFree(t *testing.T) {
	cfg := smallA3CConfig()
	r := rng.New(5)
	agent := NewAgent(cfg.Net, cfg.Net.BuildActor(r))
	tr := polarTrace(t, 1, 30)
	model := costmodel.New(pricing.Azure())
	env, err := mdp.NewEnv(model, tr.Files[0].SizeGB, tr.Reads[0], tr.Writes[0], pricing.Hot, cfg.Net.HistLen, mdp.DefaultReward())
	if err != nil {
		t.Fatal(err)
	}
	env.EnableStateReuse()
	state := env.Reset()
	agent.Sample(&state, 0, r)
	allocs := testing.AllocsPerRun(10, func() {
		agent.Sample(&state, 0, r)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocates %.0f/op, want 0", allocs)
	}
}

// TestDecideTraceSteadyStateAllocFree gates the serving hot path end to end:
// once an agent has served a chunk (environments built, plans sized, network
// scratch warm), re-serving the same-shaped chunk allocates nothing.
func TestDecideTraceSteadyStateAllocFree(t *testing.T) {
	cfg := smallA3CConfig()
	r := rng.New(9)
	agent := NewAgent(cfg.Net, cfg.Net.BuildActor(r))
	tr := polarTrace(t, 6, 20)
	model := costmodel.New(pricing.Azure())
	out := make(costmodel.Assignment, tr.NumFiles())
	reward := mdp.DefaultReward()

	serve := func() {
		if err := agent.DecideTrace(model, tr, 0, tr.NumFiles(), pricing.Hot, cfg.Net.HistLen, reward, out, 1); err != nil {
			t.Fatal(err)
		}
	}
	serve()
	allocs := testing.AllocsPerRun(5, serve)
	if allocs != 0 {
		t.Fatalf("steady-state DecideTrace allocates %.0f/op, want 0", allocs)
	}
}

// TestDecideTraceReusedEnvsMatchFresh pins the env-recycling path: a second
// DecideTrace call over a different file range (through recycled
// environments with recycled observations) must produce exactly the plans a
// fresh agent computes.
func TestDecideTraceReusedEnvsMatchFresh(t *testing.T) {
	cfg := smallA3CConfig()
	r := rng.New(11)
	actor := cfg.Net.BuildActor(r)
	tr := polarTrace(t, 8, 15)
	model := costmodel.New(pricing.Azure())
	reward := mdp.DefaultReward()

	reused := NewAgent(cfg.Net, actor)
	warm := make(costmodel.Assignment, tr.NumFiles())
	if err := reused.DecideTrace(model, tr, 0, 5, pricing.Hot, cfg.Net.HistLen, reward, warm, 1); err != nil {
		t.Fatal(err)
	}
	got := make(costmodel.Assignment, tr.NumFiles())
	if err := reused.DecideTrace(model, tr, 2, 8, pricing.Cool, cfg.Net.HistLen, reward, got, 1); err != nil {
		t.Fatal(err)
	}

	fresh := NewAgent(cfg.Net, actor.Clone())
	want := make(costmodel.Assignment, tr.NumFiles())
	if err := fresh.DecideTrace(model, tr, 2, 8, pricing.Cool, cfg.Net.HistLen, reward, want, 1); err != nil {
		t.Fatal(err)
	}
	for f := 2; f < 8; f++ {
		for d := 0; d < tr.Days; d++ {
			if got[f][d] != want[f][d] {
				t.Fatalf("file %d day %d: reused-env plan %v, fresh plan %v", f, d, got[f][d], want[f][d])
			}
		}
	}
}
