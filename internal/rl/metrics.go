package rl

import (
	"math"
	"sync"
	"time"

	"minicost/internal/obs"
)

// trainMetrics are the A3C trainer's obs instruments (DESIGN.md §12),
// shared by every trainer instance in the process. They live in the
// default registry, which is off outside daemons, so the per-update
// recording below costs a handful of atomic loads until a binary opts in.
type trainMetrics struct {
	steps     *obs.Counter
	updates   *obs.Counter
	episodes  *obs.Counter
	swaps     *obs.Counter
	updateLat *obs.Timer
	batchFill *obs.Histogram
	gradNorm  *obs.Gauge
	// Vectorized-engine instruments (DESIGN.md §16): envs counts the
	// environments currently driven in lockstep across all workers;
	// vecForward times the batched action-selection forward (one E-row
	// GEMM per lockstep step).
	envs       *obs.Gauge
	vecForward *obs.Timer
}

var trainMet = func() trainMetrics {
	reg := obs.Default()
	m := trainMetrics{
		steps: reg.Counter("minicost_train_steps_total",
			"Environment steps taken by the A3C workers."),
		updates: reg.Counter("minicost_train_updates_total",
			"Gradient pushes applied to the global parameters."),
		episodes: reg.Counter("minicost_train_episodes_total",
			"Training episodes completed."),
		swaps: reg.Counter("minicost_train_snapshot_swaps_total",
			"Published parameter-buffer swaps (optimizer applies and checkpoint restores)."),
		updateLat: reg.Timer("minicost_train_update_seconds",
			"Per-worker update latency: lock wait plus optimizer apply."),
		batchFill: reg.Histogram("minicost_train_batch_fill",
			"Rollout fill fraction per update (collected transitions / NSteps).",
			obs.LinearBuckets(0.1, 0.1, 10)),
		gradNorm: reg.Gauge("minicost_train_grad_norm",
			"Post-clip L2 norm of the actor gradient, most recent update."),
		envs: reg.Gauge("minicost_train_envs",
			"Environments currently driven in lockstep by the vectorized workers."),
		vecForward: reg.Timer("minicost_train_vec_forward_seconds",
			"Batched action-selection forward latency on the vectorized rollout path."),
	}
	reg.GaugeFunc("minicost_train_steps_per_second",
		"Throughput of the current (or last finished) Train call; NaN before the first.",
		trainRate.value)
	return m
}()

// trainRateState derives steps/sec for the most recent Train call: Train
// publishes its start point on entry and freezes the window on return, so
// mid-run scrapes see a live rate and later ones the run's average.
type trainRateState struct {
	mu        sync.Mutex
	a3c       *A3C
	start     time.Time
	end       time.Time // zero while the run is live
	baseSteps int64
}

var trainRate trainRateState

func (t *trainRateState) begin(a *A3C) {
	t.mu.Lock()
	t.a3c, t.start, t.end, t.baseSteps = a, time.Now(), time.Time{}, a.Steps() //minicost:allow-wallclock steps/sec instrumentation, never feeds decisions
	t.mu.Unlock()
}

func (t *trainRateState) finish(a *A3C) {
	t.mu.Lock()
	if t.a3c == a && t.end.IsZero() {
		t.end = time.Now() //minicost:allow-wallclock steps/sec instrumentation, never feeds decisions
	}
	t.mu.Unlock()
}

func (t *trainRateState) value() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.a3c == nil {
		return math.NaN()
	}
	until := t.end
	if until.IsZero() {
		until = time.Now() //minicost:allow-wallclock steps/sec instrumentation, never feeds decisions
	}
	elapsed := until.Sub(t.start).Seconds()
	if elapsed <= 0 {
		return math.NaN()
	}
	return float64(t.a3c.Steps()-t.baseSteps) / elapsed
}
