// Package rl implements MiniCost's reinforcement-learning machinery: the
// actor–critic networks (§6.1's architecture), the A3C training loop of
// Fig. 6 / Algorithm 1 with asynchronous workers, ε-greedy exploration, and
// a tabular Q-learning reference learner used to validate the plumbing
// against exact value iteration.
package rl

import (
	"fmt"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/nn"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// NetConfig describes the agent networks. The paper's setting (§6.1) is 128
// conv filters of size 4 with stride 1 over the frequency history, and a
// 128-neuron hidden layer; Fig. 11 sweeps Filters/Hidden from 4 to 128.
type NetConfig struct {
	HistLen int // days of request history in the state
	Filters int
	Kernel  int
	Stride  int
	Hidden  int
}

// DefaultNetConfig returns the paper's architecture over a 14-day history.
func DefaultNetConfig() NetConfig {
	return NetConfig{HistLen: 14, Filters: 128, Kernel: 4, Stride: 1, Hidden: 128}
}

// Validate checks the architecture is constructible.
func (c NetConfig) Validate() error {
	if c.HistLen <= 0 || c.Filters <= 0 || c.Kernel <= 0 || c.Stride <= 0 || c.Hidden <= 0 {
		return fmt.Errorf("rl: non-positive NetConfig field: %+v", c)
	}
	if c.Kernel > mdp.HistoryFeatureDim(c.HistLen) {
		return fmt.Errorf("rl: kernel %d larger than history block %d", c.Kernel, mdp.HistoryFeatureDim(c.HistLen))
	}
	return nil
}

// featureDim returns the network input dimension.
func (c NetConfig) featureDim() int { return mdp.FeatureDim(c.HistLen) }

// build constructs one head: conv front-end over the (two-channel,
// interleaved) history block, static features concatenated, one hidden
// layer, outDim outputs.
func (c NetConfig) build(r *rng.RNG, outDim int) *nn.Network {
	head := mdp.HistoryFeatureDim(c.HistLen)
	front := nn.NewNetwork(nn.NewConv1D(r, head, c.Filters, c.Kernel, c.Stride), nn.NewReLU())
	concat := front.OutDim(head) + (c.featureDim() - head)
	return nn.NewNetwork(
		nn.NewSplit(head, front),
		nn.NewDense(r, concat, c.Hidden),
		nn.NewReLU(),
		nn.NewDense(r, c.Hidden, outDim),
	)
}

// BuildActor returns a policy network emitting one logit per tier.
func (c NetConfig) BuildActor(r *rng.RNG) *nn.Network { return c.build(r, mdp.NumActions) }

// BuildCritic returns a value network emitting a scalar V(s).
func (c NetConfig) BuildCritic(r *rng.RNG) *nn.Network { return c.build(r, 1) }

// Agent is a trained (or training-snapshot) policy usable for serving: it
// maps a state to a tier. Neither Decide nor DecideBatch is safe for
// concurrent use (the network caches activations and the agent holds batch
// scratch); use a ReplicaPool (or Clone) per goroutine.
type Agent struct {
	Net   NetConfig
	actor *nn.Network

	feats   *mat.Matrix    // reused batch feature matrix (DecideTrace)
	tiers   []pricing.Tier // reused batch decision buffer
	envs    []*mdp.Env     // reused per-file environments (DecideTrace)
	states  []mdp.State    // reused per-file states (DecideTrace)
	featBuf []float64      // reused single-sample feature encoding
	probBuf []float64      // reused policy distribution (Sample)
}

// features encodes s into the agent's reused scratch buffer; the returned
// slice is valid until the next Decide/Sample/Probabilities call.
func (a *Agent) features(s *mdp.State) []float64 {
	n := mdp.FeatureDim(len(s.ReadHistory))
	if cap(a.featBuf) < n {
		a.featBuf = make([]float64, n)
	}
	f := a.featBuf[:n]
	s.FeaturesInto(f)
	return f
}

// NewAgent wraps an actor network.
func NewAgent(cfg NetConfig, actor *nn.Network) *Agent {
	return &Agent{Net: cfg, actor: actor}
}

// Decide returns the greedy (argmax-probability) tier for the state.
func (a *Agent) Decide(s *mdp.State) pricing.Tier {
	logits := a.actor.Forward(a.features(s))
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return pricing.Tier(best)
}

// Probabilities returns the policy distribution π(·|s). The returned slice
// is freshly allocated (callers retain it); the sampling hot path uses the
// scratch-backed probabilities inside Sample instead.
func (a *Agent) Probabilities(s *mdp.State) []float64 {
	return nn.Softmax(a.actor.Forward(a.features(s)))
}

// Sample draws a tier from π(·|s) with ε-greedy exploration mixed in. It is
// allocation-free in steady state — the A3C workers call it every
// environment step.
func (a *Agent) Sample(s *mdp.State, epsilon float64, r *rng.RNG) pricing.Tier {
	if epsilon > 0 && r.Float64() < epsilon {
		return pricing.Tier(r.Intn(mdp.NumActions))
	}
	logits := a.actor.Forward(a.features(s))
	if cap(a.probBuf) < len(logits) {
		a.probBuf = make([]float64, len(logits))
	}
	p := a.probBuf[:len(logits)]
	nn.SoftmaxInto(p, logits)
	u := r.Float64()
	acc := 0.0
	for i, v := range p {
		acc += v
		if u < acc {
			return pricing.Tier(i)
		}
	}
	return pricing.Tier(len(p) - 1)
}

// Clone returns an independent copy safe for use in another goroutine.
func (a *Agent) Clone() *Agent {
	return &Agent{Net: a.Net, actor: a.actor.Clone()}
}

// ParamVector returns a copy of the actor's flat parameter vector
// (diagnostics and the training-equivalence tests compare policies by it).
func (a *Agent) ParamVector() []float64 { return a.actor.ParamVector() }
