package rl

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"minicost/internal/rng"
)

// checkpoint is the on-disk representation of a trained agent. gob keeps it
// dependency-free; the format carries a version so later layouts can stay
// readable.
type checkpoint struct {
	Version int
	Net     NetConfig
	Actor   []float64
	// Critic is optional (serving only needs the actor); nil when absent.
	Critic []float64
}

// checkpointVersion is the current format.
const checkpointVersion = 1

// Save serializes the agent (architecture + actor weights) so a trained
// policy survives process restarts — the paper's workflow deploys the
// trained network on the agent server.
func (a *Agent) Save(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		Net:     a.Net,
		Actor:   a.actor.ParamVector(),
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("rl: write checkpoint: %w", err)
	}
	return nil
}

// LoadAgent reads a checkpoint written by Agent.Save.
func LoadAgent(r io.Reader) (*Agent, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("rl: read checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("rl: unsupported checkpoint version %d", cp.Version)
	}
	if err := cp.Net.Validate(); err != nil {
		return nil, fmt.Errorf("rl: checkpoint: %w", err)
	}
	actor := cp.Net.BuildActor(rng.New(0))
	if len(cp.Actor) != actor.NumParams() {
		return nil, fmt.Errorf("rl: checkpoint has %d actor params, architecture needs %d",
			len(cp.Actor), actor.NumParams())
	}
	for _, v := range cp.Actor {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("rl: checkpoint contains non-finite weights")
		}
	}
	actor.SetParamVector(cp.Actor)
	return NewAgent(cp.Net, actor), nil
}

// SaveCheckpoint serializes the trainer's full state (actor and critic
// weights) so training can resume in a new process. Optimizer moments are
// not persisted; resumed training re-warms them, which costs a few hundred
// updates of progress.
func (a *A3C) SaveCheckpoint(w io.Writer) error {
	a.mu.Lock()
	cur := a.snap.Load()
	cp := checkpoint{
		Version: checkpointVersion,
		Net:     a.cfg.Net,
		Actor:   append([]float64(nil), cur.actor...),
		Critic:  append([]float64(nil), cur.critic...),
	}
	a.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("rl: write trainer checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores trainer weights saved with SaveCheckpoint. The
// architecture in the checkpoint must match the trainer's configuration.
func (a *A3C) LoadCheckpoint(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("rl: read trainer checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("rl: unsupported checkpoint version %d", cp.Version)
	}
	if cp.Net != a.cfg.Net {
		return fmt.Errorf("rl: checkpoint architecture %+v != trainer %+v", cp.Net, a.cfg.Net)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.snap.Load()
	if len(cp.Actor) != len(cur.actor) || len(cp.Critic) != len(cur.critic) {
		return fmt.Errorf("rl: checkpoint parameter counts do not match trainer")
	}
	// Install into a fresh buffer and swap, so batched-path workers pull the
	// restored weights instead of whatever buffer was published before.
	a.installLocked(cp.Actor, cp.Critic)
	return nil
}
