package rl

import (
	"fmt"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// TrainWithSelection trains the A3C in `chunks` segments and, after each,
// scores a policy snapshot on a validation slice of the training trace,
// returning the cheapest snapshot seen.
//
// Why: asynchronous policy-gradient training oscillates — the policy at the
// final step is not reliably the best policy of the run, and a snapshot
// caught mid-swing can mis-tier high-traffic files, which is catastrophic
// under cloud prices (one archived hot file costs more than the rest of the
// fleet combined). Standard model selection on held-in data removes that
// run-to-run luck without touching the test set.
//
// The validation slice is up to valFiles random files over the trailing
// valDays days of tr, chosen deterministically from the A3C seed.
func TrainWithSelection(a *A3C, model *costmodel.Model, tr *trace.Trace, reward mdp.RewardConfig, totalSteps int64, chunks int, initial pricing.Tier) (*Agent, TrainStats, error) {
	const (
		valFiles = 100
		valDays  = 14
	)
	if chunks <= 0 {
		chunks = 5
	}
	if totalSteps < int64(chunks) {
		return nil, TrainStats{}, fmt.Errorf("rl: totalSteps %d below chunk count %d", totalSteps, chunks)
	}
	src, err := NewTraceSource(model, tr, a.cfg.Net.HistLen, reward, initial)
	if err != nil {
		return nil, TrainStats{}, err
	}

	// Validation slice: random file subset, trailing window.
	val := tr
	if tr.NumFiles() > valFiles {
		perm := rng.New(a.cfg.Seed ^ 0x7A11D).Perm(tr.NumFiles())
		val = tr.Subset(perm[:valFiles])
	}
	if val.Days > valDays {
		windowed, err := val.Window(val.Days-valDays, val.Days)
		if err != nil {
			return nil, TrainStats{}, err
		}
		val = windowed
	}

	var best *Agent
	bestCost := 0.0
	var total TrainStats
	for k := 1; k <= chunks; k++ {
		target := totalSteps * int64(k) / int64(chunks)
		if target <= a.Steps() {
			continue
		}
		stats, err := a.TrainFrom(src, target)
		if err != nil {
			return nil, TrainStats{}, err
		}
		total.Steps += stats.Steps
		total.Episodes += stats.Episodes
		total.Updates += stats.Updates
		total.RewardSum += stats.RewardSum
		total.CostSum += stats.CostSum

		snap := a.Snapshot()
		bd, _, err := EvaluateAgent(snap, model, val, a.cfg.Net.HistLen, initial)
		if err != nil {
			return nil, TrainStats{}, err
		}
		if best == nil || bd.Total() < bestCost {
			best = snap
			bestCost = bd.Total()
		}
	}
	return best, total, nil
}
