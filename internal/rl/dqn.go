package rl

import (
	"fmt"

	"minicost/internal/mdp"
	"minicost/internal/nn"
	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// DQNConfig configures the replay-based Q-learner. Algorithm 1 of the paper
// describes exactly this loop — observe, act ε-greedily, store, "randomly
// select a set of actions from the memory of neural network", train — so a
// true DQN (replay buffer + target network) is provided alongside A3C both
// as a fidelity point and as an ablation: the paper's §5.1 narrative uses
// A3C, its pseudocode uses replay.
type DQNConfig struct {
	Net          NetConfig
	LearningRate float64
	Gamma        float64
	// Epsilon anneals linearly from EpsilonStart to EpsilonFinal over the
	// training run.
	EpsilonStart float64
	EpsilonFinal float64
	// ExploreHold keeps an exploration action for several consecutive days
	// (see A3CConfig.ExploreHold for why tier MDPs need it).
	ExploreHold int
	// BufferSize is the replay-memory capacity (transitions); BatchSize the
	// minibatch per update; UpdateEvery the environment steps between
	// updates; TargetSync the updates between target-network refreshes.
	BufferSize  int
	BatchSize   int
	UpdateEvery int
	TargetSync  int
	// WarmupSteps must elapse before learning starts.
	WarmupSteps int
	// NormalizeRewards standardizes rewards with running statistics.
	NormalizeRewards bool
	Seed             uint64
}

// DefaultDQNConfig returns a configuration matched to the A3C defaults.
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Net:              DefaultNetConfig(),
		LearningRate:     0.0027,
		Gamma:            0.9,
		EpsilonStart:     0.5,
		EpsilonFinal:     0.05,
		ExploreHold:      5,
		BufferSize:       50000,
		BatchSize:        32,
		UpdateEvery:      4,
		TargetSync:       500,
		WarmupSteps:      1000,
		NormalizeRewards: true,
	}
}

// Validate checks the configuration.
func (c DQNConfig) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	switch {
	case c.LearningRate <= 0:
		return fmt.Errorf("rl: dqn learning rate %v", c.LearningRate)
	case c.Gamma < 0 || c.Gamma >= 1:
		return fmt.Errorf("rl: dqn gamma %v", c.Gamma)
	case c.EpsilonStart < 0 || c.EpsilonStart > 1 || c.EpsilonFinal < 0 || c.EpsilonFinal > c.EpsilonStart:
		return fmt.Errorf("rl: dqn epsilon schedule [%v,%v]", c.EpsilonStart, c.EpsilonFinal)
	case c.BufferSize < c.BatchSize || c.BatchSize <= 0:
		return fmt.Errorf("rl: dqn buffer %d / batch %d", c.BufferSize, c.BatchSize)
	case c.UpdateEvery <= 0 || c.TargetSync <= 0:
		return fmt.Errorf("rl: dqn cadence UpdateEvery=%d TargetSync=%d", c.UpdateEvery, c.TargetSync)
	case c.WarmupSteps < c.BatchSize:
		return fmt.Errorf("rl: dqn warmup %d below batch size", c.WarmupSteps)
	}
	return nil
}

// transition is one replay-memory entry.
type transition struct {
	state  []float64
	action int
	reward float64
	next   []float64
	done   bool
}

// DQN is a deep Q-learner over the MiniCost MDP.
type DQN struct {
	cfg    DQNConfig
	online *nn.Network
	target *nn.Network
	opt    nn.Optimizer
	buffer []transition
	filled int
	cursor int
	steps  int64
	rng    *rng.RNG
}

// NewDQN builds the learner.
func NewDQN(cfg DQNConfig) (*DQN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	online := cfg.Net.BuildActor(r.Split(1)) // 3 outputs = Q-values per tier
	return &DQN{
		cfg:    cfg,
		online: online,
		target: online.Clone(),
		opt:    nn.NewRMSProp(cfg.LearningRate),
		buffer: make([]transition, cfg.BufferSize),
		rng:    r.Split(2),
	}, nil
}

// Steps returns the environment steps taken.
func (d *DQN) Steps() int64 { return d.steps }

// Agent wraps the online Q-network as a greedy serving policy (argmax over
// Q-values; Agent.Decide already takes the argmax of the network outputs).
func (d *DQN) Agent() *Agent {
	return NewAgent(d.cfg.Net, d.online.Clone())
}

// push stores a transition in the ring buffer.
func (d *DQN) push(t transition) {
	d.buffer[d.cursor] = t
	d.cursor = (d.cursor + 1) % len(d.buffer)
	if d.filled < len(d.buffer) {
		d.filled++
	}
}

// epsilon returns the annealed exploration rate at progress in [0,1].
func (d *DQN) epsilon(progress float64) float64 {
	if progress > 1 {
		progress = 1
	}
	return d.cfg.EpsilonStart + (d.cfg.EpsilonFinal-d.cfg.EpsilonStart)*progress
}

// Train runs single-threaded DQN training for totalSteps environment steps.
func (d *DQN) Train(factory EnvFactory, totalSteps int64) (TrainStats, error) {
	if factory == nil {
		return TrainStats{}, fmt.Errorf("rl: nil env factory")
	}
	if totalSteps <= 0 {
		return TrainStats{}, fmt.Errorf("rl: totalSteps %d", totalSteps)
	}
	env := factory(d.rng)
	state := env.Reset()
	feats := state.Features()
	var st TrainStats
	var norm rewardNorm
	stickyLeft := 0
	var stickyAction pricing.Tier
	updates := 0

	start := d.steps
	for d.steps-start < totalSteps {
		// ε-greedy with sticky exploration.
		eps := d.epsilon(float64(d.steps-start) / float64(totalSteps))
		var action pricing.Tier
		switch {
		case stickyLeft > 0:
			action = stickyAction
			stickyLeft--
		case d.rng.Float64() < eps:
			action = pricing.Tier(d.rng.Intn(mdp.NumActions))
			stickyAction = action
			if d.cfg.ExploreHold > 1 {
				stickyLeft = d.cfg.ExploreHold - 1
			}
		default:
			action = pricing.Tier(argmax(d.online.Forward(feats)))
		}

		next, reward, cost, done, err := env.Step(action)
		if err != nil {
			env = factory(d.rng)
			state = env.Reset()
			feats = state.Features()
			stickyLeft = 0
			continue
		}
		if d.cfg.NormalizeRewards {
			reward = norm.normalize(reward)
		}
		nextFeats := next.Features()
		d.push(transition{state: feats, action: int(action), reward: reward, next: nextFeats, done: done})
		d.steps++
		st.Steps++
		st.RewardSum += reward
		st.CostSum += cost

		if done {
			st.Episodes++
			env = factory(d.rng)
			state = env.Reset()
			feats = state.Features()
			stickyLeft = 0
		} else {
			state = next
			feats = nextFeats
		}

		if d.filled >= d.cfg.WarmupSteps && d.steps%int64(d.cfg.UpdateEvery) == 0 {
			d.update()
			st.Updates++
			updates++
			if updates%d.cfg.TargetSync == 0 {
				d.target.SetParamVector(d.online.ParamVector())
			}
		}
	}
	return st, nil
}

// update performs one minibatch gradient step: the TD target is
// r + γ·max_a' Q_target(s', a') (0 bootstrap at episode end), loss is the
// squared error on the taken action only.
func (d *DQN) update() {
	d.online.ZeroGrad()
	grad := make([]float64, mdp.NumActions)
	for b := 0; b < d.cfg.BatchSize; b++ {
		t := d.buffer[d.rng.Intn(d.filled)]
		targetQ := t.reward
		if !t.done {
			q := d.target.Forward(t.next)
			targetQ += d.cfg.Gamma * maxOf(q)
		}
		q := d.online.Forward(t.state)
		for k := range grad {
			grad[k] = 0
		}
		grad[t.action] = (q[t.action] - targetQ) / float64(d.cfg.BatchSize)
		d.online.Backward(grad)
	}
	g := d.online.GradVector()
	nn.ClipGrads(g, 5)
	params := d.online.ParamVector()
	d.opt.Step(params, g)
	d.online.SetParamVector(params)
}
