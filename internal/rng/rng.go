// Package rng provides a small deterministic pseudo-random number generator
// with splittable substreams and the distributions the MiniCost workload
// generator needs (uniform, Gaussian, exponential, Poisson, Zipf,
// log-normal).
//
// A dedicated generator (rather than math/rand) gives two guarantees the
// experiments rely on:
//
//   - substreams: Split(key) derives an independent stream per file id, so a
//     trace is reproducible regardless of generation order or worker count;
//   - stability: the sequence is fixed by this package, not by the Go
//     release.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; "Fast splittable
// pseudorandom number generators", OOPSLA 2014), which passes BigCrush and
// is trivially splittable.
package rng

import "math"

// goldenGamma is the SplitMix64 increment (odd, derived from the golden ratio).
const goldenGamma = 0x9e3779b97f4a7c15

// RNG is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; New is clearer.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += goldenGamma
	return mix64(r.state)
}

// Split derives an independent substream keyed by key. Two Splits of the
// same generator with different keys are statistically independent, and a
// Split does not advance the parent stream.
func (r *RNG) Split(key uint64) *RNG {
	return &RNG{state: mix64(r.state ^ mix64(key*goldenGamma+1))}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias < 2^-40 for n < 2^24; fine for simulation
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Normal returns a standard Gaussian sample (Box–Muller, one value per call).
func (r *RNG) Normal() float64 {
	// Rejection-free Box–Muller; discard the second value for simplicity.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalMS returns a Gaussian sample with the given mean and stddev.
func (r *RNG) NormalMS(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// Exponential returns an exponential sample with the given rate (mean 1/rate).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalMS(mu, sigma))
}

// Poisson returns a Poisson sample with the given mean. For small means it
// uses Knuth's product method; for large means a Gaussian approximation with
// continuity correction, which is accurate to well under a percent for
// mean >= 30 and keeps generation O(1).
func (r *RNG) Poisson(mean float64) int64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		x := math.Round(r.NormalMS(mean, math.Sqrt(mean)))
		if x < 0 {
			return 0
		}
		return int64(x)
	}
}

// Zipf draws ranks in [1, n] with probability proportional to rank^-s using
// inverse-CDF sampling over a precomputed table. Build one with NewZipf.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
	rng *RNG
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s > 0.
func NewZipf(r *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Rank returns a sample in [1, n].
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Weight returns the normalized probability mass of the given rank in [1, n].
func (z *Zipf) Weight(rank int) float64 {
	if rank < 1 || rank > len(z.cdf) {
		return 0
	}
	if rank == 1 {
		return z.cdf[0]
	}
	return z.cdf[rank-1] - z.cdf[rank-2]
}
