package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
}

func TestSplitIndependentOfParentAdvance(t *testing.T) {
	a := New(7)
	sub1 := a.Split(42)
	v1 := sub1.Uint64()
	// Splitting must not depend on how far the parent advanced after split,
	// and the same (parent state, key) must give the same substream.
	b := New(7)
	sub2 := b.Split(42)
	if got := sub2.Uint64(); got != v1 {
		t.Fatalf("split streams differ: %d vs %d", got, v1)
	}
	// Different keys give different streams.
	if b.Split(43).Uint64() == v1 {
		t.Fatal("different split keys produced identical first value")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(99), New(99)
	_ = a.Split(1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(2)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("digit %d count %d far from uniform 10000", d, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(4)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(0.5)
	}
	if mean := sum / float64(n); math.Abs(mean-2) > 0.05 {
		t.Fatalf("exp mean %v, want ~2", mean)
	}
}

func TestPoissonMeanSmallAndLarge(t *testing.T) {
	r := New(5)
	for _, lambda := range []float64{0.5, 3, 12, 50, 400} {
		n := 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / float64(n)
		tol := 4 * math.Sqrt(lambda/float64(n)) // ~4 sigma of the sample mean
		if math.Abs(mean-lambda) > tol+0.02 {
			t.Fatalf("poisson(%v) sample mean %v beyond tolerance %v", lambda, mean, tol)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	f := func(seed uint64, mRaw uint16) bool {
		r := New(seed)
		mean := float64(mRaw) / 100.0
		return r.Poisson(mean) >= 0 && r.Poisson(-mean) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfMonotoneAndNormalized(t *testing.T) {
	r := New(6)
	z := NewZipf(r, 1.1, 1000)
	totalW := 0.0
	prev := math.Inf(1)
	for rank := 1; rank <= 1000; rank++ {
		w := z.Weight(rank)
		if w <= 0 {
			t.Fatalf("rank %d has non-positive weight %v", rank, w)
		}
		if w > prev+1e-12 {
			t.Fatalf("weight increased from rank %d: %v > %v", rank, w, prev)
		}
		prev = w
		totalW += w
	}
	if math.Abs(totalW-1) > 1e-9 {
		t.Fatalf("zipf weights sum to %v, want 1", totalW)
	}
}

func TestZipfSamplesMatchWeights(t *testing.T) {
	r := New(7)
	z := NewZipf(r, 1.0, 50)
	n := 200000
	counts := make([]int, 51)
	for i := 0; i < n; i++ {
		rank := z.Rank()
		if rank < 1 || rank > 50 {
			t.Fatalf("rank %d out of range", rank)
		}
		counts[rank]++
	}
	for rank := 1; rank <= 50; rank++ {
		want := z.Weight(rank) * float64(n)
		got := float64(counts[rank])
		if want > 500 && math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Fatalf("rank %d: got %v samples, want ~%v", rank, got, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(5)
	}
	_ = sink
}

func BenchmarkZipfRank(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1.05, 100000)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Rank()
	}
	_ = sink
}
