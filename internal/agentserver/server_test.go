package agentserver

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

func testAgent() *rl.Agent {
	cfg := rl.NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	return rl.NewAgent(cfg, cfg.BuildActor(rng.New(4)))
}

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func obsv(id string, reads float64) FileObservation {
	return FileObservation{ID: id, SizeGB: 0.1, Reads: reads, Writes: reads * 0.01}
}

func TestObserveAndPlan(t *testing.T) {
	_, c := newTestServer(t)
	// Feed a week of observations for two files.
	for d := 0; d < 7; d++ {
		resp, err := c.Observe(&ObserveRequest{Files: []FileObservation{
			obsv("busy", 5000),
			obsv("idle", 0.001),
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != 2 || resp.Tracked != 2 {
			t.Fatalf("observe resp %+v", resp)
		}
	}
	plan, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Files) != 2 {
		t.Fatalf("plan covers %d files", len(plan.Files))
	}
	// Sorted by id; every tier valid.
	if plan.Files[0].ID != "busy" || plan.Files[1].ID != "idle" {
		t.Fatalf("plan order %+v", plan.Files)
	}
	for _, f := range plan.Files {
		if _, err := pricing.ParseTier(f.Tier); err != nil {
			t.Fatalf("invalid tier %q", f.Tier)
		}
	}
	if plan.Day != 7 {
		t.Fatalf("plan day %d", plan.Day)
	}
	// Second plan: tiers were committed, so unchanged decisions must report
	// Changed=false.
	plan2, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range plan2.Files {
		if f.Tier == plan.Files[i].Tier && f.Changed {
			t.Fatalf("unchanged decision flagged as change: %+v", f)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrackedFiles != 2 || stats.Observations != 14 || stats.PlansServed != 2 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestPlanBeforeObserveFails(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Plan(); err == nil {
		t.Fatal("plan without observations accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	_, c := newTestServer(t)
	for name, req := range map[string]*ObserveRequest{
		"empty":         {},
		"no-id":         {Files: []FileObservation{{SizeGB: 0.1}}},
		"zero-size":     {Files: []FileObservation{{ID: "x"}}},
		"negative-read": {Files: []FileObservation{{ID: "x", SizeGB: 0.1, Reads: -1}}},
	} {
		if _, err := c.Observe(req); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestHTTPMethodsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	// Wrong methods rejected.
	resp, err = http.Get(ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST plan = %d", resp.StatusCode)
	}
	// Malformed JSON rejected.
	resp, err = http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
}

func TestConcurrentObserveAndPlan(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{obsv("seed", 1)}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{
						obsv("seed", float64(i)),
						obsv("other", 100),
					}}); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Plan(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardWindowRing pins the ring-buffer window semantics: oldest-first
// order once full, left-padding with the first observed value while
// filling, and all-zeros before any observation.
func TestShardWindowRing(t *testing.T) {
	sh := newShard(7)
	slot := sh.addSlot("f")
	sh.setInitialTier(slot, pricing.Hot)
	rs := make([]float64, 7)
	ws := make([]float64, 7)

	sh.windowInto(slot, rs, ws)
	for i := range rs {
		if rs[i] != 0 || ws[i] != 0 {
			t.Fatalf("empty window rs=%v ws=%v", rs, ws)
		}
	}

	// Two observations: window left-pads with the first value.
	sh.ingestOne(slot, 0.1, 5, 50)
	sh.ingestOne(slot, 0.1, 6, 60)
	sh.windowInto(slot, rs, ws)
	wantR := []float64{5, 5, 5, 5, 5, 5, 6}
	wantW := []float64{50, 50, 50, 50, 50, 50, 60}
	for i := range wantR {
		if rs[i] != wantR[i] || ws[i] != wantW[i] {
			t.Fatalf("partial window rs=%v ws=%v", rs, ws)
		}
	}

	// Ten observations through a 7-slot ring: only the trailing 7 survive,
	// oldest first.
	for v := 3.0; v <= 10; v++ {
		sh.ingestOne(slot, 0.1, v, v*10)
	}
	sh.windowInto(slot, rs, ws)
	for i := 0; i < 7; i++ {
		want := float64(4 + i)
		if rs[i] != want || ws[i] != want*10 {
			t.Fatalf("full window rs=%v ws=%v", rs, ws)
		}
	}
}

// TestShardHashStable pins that shardOf is a pure function of the ID and
// respects the mask.
func TestShardHashStable(t *testing.T) {
	const mask = 15
	for _, id := range []string{"", "a", "file-123", "…unicode…"} {
		a, b := shardOf(id, mask), shardOf(id, mask)
		if a != b {
			t.Fatalf("shardOf(%q) unstable: %d vs %d", id, a, b)
		}
		if a > mask {
			t.Fatalf("shardOf(%q) = %d exceeds mask %d", id, a, mask)
		}
	}
	if got := shardOf("anything", 0); got != 0 {
		t.Fatalf("mask 0 must map to shard 0, got %d", got)
	}
}

// TestNewWithConfigShardRounding pins power-of-two rounding and bounds.
func TestNewWithConfigShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32},
	} {
		s, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Shards(); got != tc.want {
			t.Errorf("Shards:%d rounded to %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := NewWithConfig(testAgent(), pricing.Hot, Config{MaxObserveBytes: -1}); err == nil {
		t.Error("negative body cap accepted")
	}
}

// TestObserveDuplicateLastWins pins the in-batch duplicate contract: the
// later entry's measurement replaces the earlier one's for the day, the
// history window advances once, and the response counts the duplicates.
func TestObserveDuplicateLastWins(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := s.Observe(&ObserveRequest{Files: []FileObservation{
			obsv("dup", 1), obsv("solo", 7), obsv("dup", 2), obsv("dup", 3),
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Tracked != 2 {
			t.Fatalf("shards=%d tracked %d, want 2", shards, resp.Tracked)
		}
		if resp.Duplicates != 2 {
			t.Fatalf("shards=%d duplicates %d, want 2", shards, resp.Duplicates)
		}
		// One observe day recorded for dup, holding the last value.
		sh := s.shards[shardOf("dup", s.shardMask)]
		slot := sh.index["dup"]
		if got := sh.fill[slot]; got != 1 {
			t.Fatalf("shards=%d dup fill %d, want 1 (window advanced once)", shards, got)
		}
		rs := make([]float64, s.histLen)
		ws := make([]float64, s.histLen)
		sh.windowInto(slot, rs, ws)
		if rs[s.histLen-1] != 3 {
			t.Fatalf("shards=%d dup last read %v, want 3 (last wins)", shards, rs[s.histLen-1])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, pricing.Hot); err == nil {
		t.Fatal("nil agent accepted")
	}
	if _, err := New(testAgent(), pricing.Tier(9)); err == nil {
		t.Fatal("invalid tier accepted")
	}
}

func BenchmarkPlan1kFiles(b *testing.B) {
	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	files := make([]FileObservation, 1000)
	for i := range files {
		files[i] = obsv("f"+itoa(i), float64(i))
	}
	for d := 0; d < 7; d++ {
		if _, err := s.Observe(&ObserveRequest{Files: files}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.BuildPlan(true); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
