package agentserver

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

func testAgent() *rl.Agent {
	cfg := rl.NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	return rl.NewAgent(cfg, cfg.BuildActor(rng.New(4)))
}

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func obsv(id string, reads float64) FileObservation {
	return FileObservation{ID: id, SizeGB: 0.1, Reads: reads, Writes: reads * 0.01}
}

func TestObserveAndPlan(t *testing.T) {
	_, c := newTestServer(t)
	// Feed a week of observations for two files.
	for d := 0; d < 7; d++ {
		resp, err := c.Observe(&ObserveRequest{Files: []FileObservation{
			obsv("busy", 5000),
			obsv("idle", 0.001),
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != 2 || resp.Tracked != 2 {
			t.Fatalf("observe resp %+v", resp)
		}
	}
	plan, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Files) != 2 {
		t.Fatalf("plan covers %d files", len(plan.Files))
	}
	// Sorted by id; every tier valid.
	if plan.Files[0].ID != "busy" || plan.Files[1].ID != "idle" {
		t.Fatalf("plan order %+v", plan.Files)
	}
	for _, f := range plan.Files {
		if _, err := pricing.ParseTier(f.Tier); err != nil {
			t.Fatalf("invalid tier %q", f.Tier)
		}
	}
	if plan.Day != 7 {
		t.Fatalf("plan day %d", plan.Day)
	}
	// Second plan: tiers were committed, so unchanged decisions must report
	// Changed=false.
	plan2, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range plan2.Files {
		if f.Tier == plan.Files[i].Tier && f.Changed {
			t.Fatalf("unchanged decision flagged as change: %+v", f)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrackedFiles != 2 || stats.Observations != 14 || stats.PlansServed != 2 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestPlanBeforeObserveFails(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Plan(); err == nil {
		t.Fatal("plan without observations accepted")
	}
}

func TestObserveValidation(t *testing.T) {
	_, c := newTestServer(t)
	for name, req := range map[string]*ObserveRequest{
		"empty":         {},
		"no-id":         {Files: []FileObservation{{SizeGB: 0.1}}},
		"zero-size":     {Files: []FileObservation{{ID: "x"}}},
		"negative-read": {Files: []FileObservation{{ID: "x", SizeGB: 0.1, Reads: -1}}},
	} {
		if _, err := c.Observe(req); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestHTTPMethodsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	// Wrong methods rejected.
	resp, err = http.Get(ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST plan = %d", resp.StatusCode)
	}
	// Malformed JSON rejected.
	resp, err = http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d", resp.StatusCode)
	}
}

func TestConcurrentObserveAndPlan(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{obsv("seed", 1)}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{
						obsv("seed", float64(i)),
						obsv("other", 100),
					}}); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Plan(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestWindowHelpers(t *testing.T) {
	w := []float64{}
	for i := 1; i <= 10; i++ {
		w = appendWindow(w, float64(i), 7)
	}
	if len(w) != 7 || w[0] != 4 || w[6] != 10 {
		t.Fatalf("window %v", w)
	}
	padded := padWindow([]float64{5, 6}, 5)
	want := []float64{5, 5, 5, 5, 6}
	for i := range want {
		if padded[i] != want[i] {
			t.Fatalf("padded %v", padded)
		}
	}
	empty := padWindow(nil, 3)
	for _, v := range empty {
		if v != 0 {
			t.Fatalf("empty pad %v", empty)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, pricing.Hot); err == nil {
		t.Fatal("nil agent accepted")
	}
	if _, err := New(testAgent(), pricing.Tier(9)); err == nil {
		t.Fatal("invalid tier accepted")
	}
}

func BenchmarkPlan1kFiles(b *testing.B) {
	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		b.Fatal(err)
	}
	files := make([]FileObservation, 1000)
	for i := range files {
		files[i] = obsv("f"+itoa(i), float64(i))
	}
	for d := 0; d < 7; d++ {
		if _, err := s.observe(&ObserveRequest{Files: files}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.plan(); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
