package agentserver

import (
	"sync"
	"testing"

	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

// feedWeek ingests a week of observations for n files.
func feedWeek(t *testing.T, s *Server, n int) {
	t.Helper()
	files := make([]FileObservation, n)
	for i := range files {
		files[i] = obsv("f"+itoa(i), float64(i*13%997))
	}
	for d := 0; d < 7; d++ {
		if _, err := s.Observe(&ObserveRequest{Files: files}); err != nil {
			t.Fatal(err)
		}
	}
}

// replicaBound is the most network copies one plan may borrow: one per
// shard-fanout worker, and never more than the shard count.
func replicaBound(s *Server) int64 {
	w := par.DefaultWorkers()
	if w > s.Shards() {
		w = s.Shards()
	}
	return int64(w)
}

// TestPlanReplicasBoundedByConcurrency is the agentserver half of the
// no-clone-per-request fix: repeated plan requests must not grow the pool.
// A plan borrows at most one replica per shard worker while deciding, and
// an incremental plan with nothing dirty borrows none — so replica count
// is pinned by peak concurrency × fan-out width, never by request volume.
func TestPlanReplicasBoundedByConcurrency(t *testing.T) {
	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	feedWeek(t, s, 50)
	if _, err := s.BuildPlan(false); err != nil {
		t.Fatal(err)
	}
	base := s.Stats().Replicas
	if bound := replicaBound(s); base < 1 || base > bound {
		t.Fatalf("first plan built %d replicas, want 1..%d", base, bound)
	}
	// Nine more serial plans with no new observations: the pool stays
	// bounded by fan-out width, never by request volume.
	for i := 0; i < 9; i++ {
		if _, err := s.BuildPlan(false); err != nil {
			t.Fatal(err)
		}
	}
	if got, bound := s.Stats().Replicas, replicaBound(s); got > bound {
		t.Fatalf("10 serial plans built %d replicas, bound %d", got, bound)
	}
	const concurrent = 4
	var wg sync.WaitGroup
	for w := 0; w < concurrent; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.BuildPlan(true); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, bound := s.Stats().Replicas, int64(concurrent)*replicaBound(s); got > bound {
		t.Fatalf("%d concurrent full planners built %d replicas, bound %d", concurrent, got, bound)
	}
}

// TestUpdateAgentRefreshesDecisions verifies a snapshot swap takes effect on
// the next plan and that incompatible windows are rejected.
func TestUpdateAgentRefreshesDecisions(t *testing.T) {
	cfg := rl.NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	a1 := rl.NewAgent(cfg, cfg.BuildActor(rng.New(100)))
	s, err := New(a1, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	feedWeek(t, s, 200)
	p1, err := s.BuildPlan(false)
	if err != nil {
		t.Fatal(err)
	}

	// Different HistLen must be rejected: the observation windows are sized
	// for the original agent.
	bad := rl.NetConfig{HistLen: 14, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	if err := s.UpdateAgent(rl.NewAgent(bad, bad.BuildActor(rng.New(1)))); err == nil {
		t.Fatal("UpdateAgent accepted a mismatched history window")
	}
	if err := s.UpdateAgent(nil); err == nil {
		t.Fatal("UpdateAgent accepted nil")
	}

	// Swap in a differently-initialized agent. The swap must mark every
	// file dirty: cached decisions came from the old weights.
	a2 := rl.NewAgent(cfg, cfg.BuildActor(rng.New(101)))
	if err := s.UpdateAgent(a2); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DirtyFiles; got != 200 {
		t.Fatalf("post-swap dirty files = %d, want 200", got)
	}
	p2, err := s.BuildPlan(false)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Decided != 200 {
		t.Fatalf("post-swap incremental plan decided %d files, want all 200", p2.Decided)
	}
	differs := false
	for i := range p1.Files {
		if p1.Files[i].Tier != p2.Files[i].Tier {
			differs = true
			break
		}
	}
	if !differs && p2.Transition == 0 {
		t.Log("note: swapped agent produced identical decisions (possible but unlikely)")
	}
	if got, bound := s.Stats().Replicas, replicaBound(s); got < 1 || got > bound {
		t.Fatalf("post-swap plan built %d replicas, want 1..%d (pool refreshed)", got, bound)
	}
}
