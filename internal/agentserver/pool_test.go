package agentserver

import (
	"sync"
	"testing"

	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

// feedWeek ingests a week of observations for n files.
func feedWeek(t *testing.T, s *Server, n int) {
	t.Helper()
	files := make([]FileObservation, n)
	for i := range files {
		files[i] = obsv("f"+itoa(i), float64(i*13%997))
	}
	for d := 0; d < 7; d++ {
		if _, err := s.observe(&ObserveRequest{Files: files}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanReplicasBoundedByConcurrency is the agentserver half of the
// no-clone-per-request fix: serial plan requests share one pooled replica,
// and concurrent ones are bounded by their own count.
func TestPlanReplicasBoundedByConcurrency(t *testing.T) {
	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	feedWeek(t, s, 50)
	for i := 0; i < 10; i++ {
		if _, err := s.plan(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.stats().Replicas; got != 1 {
		t.Fatalf("10 serial plans built %d replicas, want 1", got)
	}
	const concurrent = 4
	var wg sync.WaitGroup
	for w := 0; w < concurrent; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.plan(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.stats().Replicas; got > concurrent {
		t.Fatalf("%d concurrent planners built %d replicas", concurrent, got)
	}
}

// TestUpdateAgentRefreshesDecisions verifies a snapshot swap takes effect on
// the next plan and that incompatible windows are rejected.
func TestUpdateAgentRefreshesDecisions(t *testing.T) {
	cfg := rl.NetConfig{HistLen: 7, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	a1 := rl.NewAgent(cfg, cfg.BuildActor(rng.New(100)))
	s, err := New(a1, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	feedWeek(t, s, 200)
	p1, err := s.plan()
	if err != nil {
		t.Fatal(err)
	}

	// Different HistLen must be rejected: the observation windows are sized
	// for the original agent.
	bad := rl.NetConfig{HistLen: 14, Filters: 8, Kernel: 4, Stride: 1, Hidden: 16}
	if err := s.UpdateAgent(rl.NewAgent(bad, bad.BuildActor(rng.New(1)))); err == nil {
		t.Fatal("UpdateAgent accepted a mismatched history window")
	}
	if err := s.UpdateAgent(nil); err == nil {
		t.Fatal("UpdateAgent accepted nil")
	}

	// Swap in a differently-initialized agent; across 200 files with random
	// weights some decision should differ, proving the new snapshot serves.
	a2 := rl.NewAgent(cfg, cfg.BuildActor(rng.New(101)))
	if err := s.UpdateAgent(a2); err != nil {
		t.Fatal(err)
	}
	// Reset tiers drift: plan again twice — the first applies new decisions.
	p2, err := s.plan()
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range p1.Files {
		if p1.Files[i].Tier != p2.Files[i].Tier {
			differs = true
			break
		}
	}
	if !differs && p2.Transition == 0 {
		t.Log("note: swapped agent produced identical decisions (possible but unlikely)")
	}
	if got := s.stats().Replicas; got != 1 {
		t.Fatalf("post-swap plan built %d replicas, want 1 (pool refreshed)", got)
	}
}
