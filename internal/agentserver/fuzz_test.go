package agentserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"minicost/internal/pricing"
)

// FuzzObserveBody drives POST /v1/observe — the service's untrusted JSON
// boundary — with arbitrary bodies. Invariants: the handler never panics,
// always answers with a deliberate status (200, 4xx, or 413), and every
// 200 carries a decodable ObserveResponse with sane counts.
func FuzzObserveBody(f *testing.F) {
	f.Add(`{"files":[{"id":"a","size_gb":0.1,"reads":2,"writes":0.1}]}`)
	f.Add(`{"files":[]}`)
	f.Add(`{"files":[{"id":"","size_gb":1}]}`)
	f.Add(`{"files":[{"id":"a","size_gb":-1}]}`)
	f.Add(`{"files":[{"id":"a","size_gb":1e308,"reads":1e308}]}`)
	f.Add(`{"files":[{"id":"a","size_gb":null}]}`)
	f.Add(`{"files":{"id":"a"}}`)
	f.Add(`{nope`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(``)

	s, err := New(testAgent(), pricing.Hot)
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/observe", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK:
			var resp ObserveResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.String(), err)
			}
			if resp.Accepted < 0 || resp.Tracked < 0 {
				t.Fatalf("200 with nonsense counts: %+v", resp)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusUnsupportedMediaType:
			// Deliberate rejection of bad input.
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}
