package agentserver

import (
	"bytes"
	"math"
	"net/http"
	"strings"
	"testing"

	"minicost/internal/obs"
	"minicost/internal/pricing"
)

// withMetrics enables the default registry for one test and restores the
// default-off state afterwards. Assertions use deltas: the registry is
// process-global and other tests in this binary may have advanced it.
func withMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.Default()
	was := reg.Enabled()
	reg.SetEnabled(true)
	t.Cleanup(func() { reg.SetEnabled(was) })
	return reg
}

// TestRequestMetricsAdvance asserts the serving instruments move across an
// observe→plan round trip — the Snapshot-based counterpart of scraping
// /metrics, exercised under -race by `make check`.
func TestRequestMetricsAdvance(t *testing.T) {
	reg := withMetrics(t)
	_, c := newTestServer(t)
	before := reg.Snapshot()

	for d := 0; d < 3; d++ {
		if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{
			obsv("a", 100), obsv("b", 1),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Plan(); err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()

	delta := func(id string) float64 { return after.Counter(id) - before.Counter(id) }
	if got := delta(`minicost_http_requests_total{endpoint="observe",status="ok"}`); got != 3 {
		t.Errorf("observe ok requests delta = %v, want 3", got)
	}
	if got := delta(`minicost_http_requests_total{endpoint="plan",status="ok"}`); got != 1 {
		t.Errorf("plan ok requests delta = %v, want 1", got)
	}
	if got := delta("minicost_serve_observations_total"); got != 6 {
		t.Errorf("observations delta = %v, want 6", got)
	}
	if got := delta("minicost_serve_plans_total"); got != 1 {
		t.Errorf("plans delta = %v, want 1", got)
	}
	if got := after.Gauge("minicost_serve_tracked_files"); got != 2 {
		t.Errorf("tracked files = %v, want 2", got)
	}
	hPlan := after.Histogram("minicost_serve_plan_seconds")
	if hPlan.Count <= before.Histogram("minicost_serve_plan_seconds").Count {
		t.Error("plan generation histogram did not advance")
	}
	hLat := after.Histogram(`minicost_http_request_seconds{endpoint="plan"}`)
	if hLat.Count == 0 || math.IsNaN(hLat.Quantile(0.5)) {
		t.Errorf("plan latency histogram empty: %+v", hLat)
	}
	// Staleness is finite (and tiny) right after a plan.
	if st := after.Gauge("minicost_serve_plan_staleness_seconds"); math.IsNaN(st) || st < 0 || st > 60 {
		t.Errorf("plan staleness = %v", st)
	}
	// Failed requests land on the error counter, not ok.
	if _, err := c.Observe(&ObserveRequest{}); err == nil {
		t.Fatal("empty observe accepted")
	}
	final := reg.Snapshot()
	if got := final.Counter(`minicost_http_requests_total{endpoint="observe",status="error"}`) -
		before.Counter(`minicost_http_requests_total{endpoint="observe",status="error"}`); got != 1 {
		t.Errorf("observe error requests delta = %v, want 1", got)
	}
}

func TestObserveRejectsNonJSONContentType(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/observe", "text/plain", strings.NewReader(`{"files":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain observe = %d, want 415", resp.StatusCode)
	}
	// JSON with parameters and +json suffixes stay accepted.
	for _, ct := range []string{"application/json; charset=utf-8", "application/ld+json"} {
		resp, err := http.Post(ts.URL+"/v1/observe", ct,
			strings.NewReader(`{"files":[{"id":"x","size_gb":0.1,"reads":1,"writes":0}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s observe = %d, want 200", ct, resp.StatusCode)
		}
	}
}

func TestObserveBodyCap(t *testing.T) {
	ts, _ := newTestServer(t)
	// A syntactically valid but oversized body: the cap must trip with 413
	// before the decoder finishes.
	var buf bytes.Buffer
	buf.WriteString(`{"files":[`)
	row := `{"id":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx","size_gb":0.1,"reads":1,"writes":1}`
	for buf.Len() < MaxObserveBytes+(1<<16) {
		buf.WriteString(row)
		buf.WriteString(",")
	}
	buf.WriteString(row + `]}`)
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized observe = %d, want 413", resp.StatusCode)
	}
}

// BenchmarkObsOverhead is the tentpole's benchmark guard: the same
// observe/plan server paths with the default registry disabled (the state
// every non-daemon binary runs in) versus enabled. The disabled rows are
// the regression gate — they must match pre-instrumentation cost, since
// each metric op is one atomic load.
func BenchmarkObsOverhead(b *testing.B) {
	reg := obs.Default()
	was := reg.Enabled()
	b.Cleanup(func() { reg.SetEnabled(was) })

	files := make([]FileObservation, 256)
	for i := range files {
		files[i] = FileObservation{ID: "f" + itoa(i), SizeGB: 0.1, Reads: float64(i), Writes: 1}
	}
	newServer := func(b *testing.B) *Server {
		s, err := New(testAgent(), pricing.Hot)
		if err != nil {
			b.Fatal(err)
		}
		for d := 0; d < 7; d++ {
			if _, err := s.observe(&ObserveRequest{Files: files}); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run("observe-"+mode.name, func(b *testing.B) {
			reg.SetEnabled(mode.enabled)
			s := newServer(b)
			req := &ObserveRequest{Files: files}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.observe(req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("plan-"+mode.name, func(b *testing.B) {
			reg.SetEnabled(mode.enabled)
			s := newServer(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.plan(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
