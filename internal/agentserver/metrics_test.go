package agentserver

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"minicost/internal/obs"
	"minicost/internal/pricing"
)

// withMetrics enables the default registry for one test and restores the
// default-off state afterwards. Assertions use deltas: the registry is
// process-global and other tests in this binary may have advanced it.
func withMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.Default()
	was := reg.Enabled()
	reg.SetEnabled(true)
	t.Cleanup(func() { reg.SetEnabled(was) })
	return reg
}

// TestRequestMetricsAdvance asserts the serving instruments move across an
// observe→plan round trip — the Snapshot-based counterpart of scraping
// /metrics, exercised under -race by `make check`.
func TestRequestMetricsAdvance(t *testing.T) {
	reg := withMetrics(t)
	_, c := newTestServer(t)
	before := reg.Snapshot()

	for d := 0; d < 3; d++ {
		if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{
			obsv("a", 100), obsv("b", 1),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Plan(); err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()

	delta := func(id string) float64 { return after.Counter(id) - before.Counter(id) }
	if got := delta(`minicost_http_requests_total{endpoint="observe",status="ok"}`); got != 3 {
		t.Errorf("observe ok requests delta = %v, want 3", got)
	}
	if got := delta(`minicost_http_requests_total{endpoint="plan",status="ok"}`); got != 1 {
		t.Errorf("plan ok requests delta = %v, want 1", got)
	}
	if got := delta("minicost_serve_observations_total"); got != 6 {
		t.Errorf("observations delta = %v, want 6", got)
	}
	if got := delta("minicost_serve_plans_total"); got != 1 {
		t.Errorf("plans delta = %v, want 1", got)
	}
	if got := after.Gauge("minicost_serve_tracked_files"); got != 2 {
		t.Errorf("tracked files = %v, want 2", got)
	}
	hPlan := after.Histogram("minicost_serve_plan_seconds")
	if hPlan.Count <= before.Histogram("minicost_serve_plan_seconds").Count {
		t.Error("plan generation histogram did not advance")
	}
	hLat := after.Histogram(`minicost_http_request_seconds{endpoint="plan"}`)
	if hLat.Count == 0 || math.IsNaN(hLat.Quantile(0.5)) {
		t.Errorf("plan latency histogram empty: %+v", hLat)
	}
	// Staleness is finite (and tiny) right after a plan.
	if st := after.Gauge("minicost_serve_plan_staleness_seconds"); math.IsNaN(st) || st < 0 || st > 60 {
		t.Errorf("plan staleness = %v", st)
	}
	// Failed requests land on the error counter, not ok.
	if _, err := c.Observe(&ObserveRequest{}); err == nil {
		t.Fatal("empty observe accepted")
	}
	final := reg.Snapshot()
	if got := final.Counter(`minicost_http_requests_total{endpoint="observe",status="error"}`) -
		before.Counter(`minicost_http_requests_total{endpoint="observe",status="error"}`); got != 1 {
		t.Errorf("observe error requests delta = %v, want 1", got)
	}
}

func TestObserveRejectsNonJSONContentType(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/observe", "text/plain", strings.NewReader(`{"files":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain observe = %d, want 415", resp.StatusCode)
	}
	// JSON with parameters and +json suffixes stay accepted.
	for _, ct := range []string{"application/json; charset=utf-8", "application/ld+json"} {
		resp, err := http.Post(ts.URL+"/v1/observe", ct,
			strings.NewReader(`{"files":[{"id":"x","size_gb":0.1,"reads":1,"writes":0}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s observe = %d, want 200", ct, resp.StatusCode)
		}
	}
}

func TestObserveBodyCap(t *testing.T) {
	ts, _ := newTestServer(t)
	// A syntactically valid but oversized body: the cap must trip with 413
	// before the decoder finishes.
	var buf bytes.Buffer
	buf.WriteString(`{"files":[`)
	row := `{"id":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx","size_gb":0.1,"reads":1,"writes":1}`
	for buf.Len() < MaxObserveBytes+(1<<16) {
		buf.WriteString(row)
		buf.WriteString(",")
	}
	buf.WriteString(row + `]}`)
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized observe = %d, want 413", resp.StatusCode)
	}
}

// TestObserveBodyCapConfigurable pins Config.MaxObserveBytes: a tiny cap
// trips 413 on a batch the default cap would accept.
func TestObserveBodyCapConfigurable(t *testing.T) {
	s, err := NewWithConfig(testAgent(), pricing.Hot, Config{MaxObserveBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body := `{"files":[` +
		`{"id":"aaaaaaaaaaaaaaaa","size_gb":0.1,"reads":1,"writes":1},` +
		`{"id":"bbbbbbbbbbbbbbbb","size_gb":0.1,"reads":1,"writes":1},` +
		`{"id":"cccccccccccccccc","size_gb":0.1,"reads":1,"writes":1}]}`
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("capped observe = %d, want 413", resp.StatusCode)
	}
	// A batch under the cap still lands.
	resp, err = http.Post(ts.URL+"/v1/observe", "application/json",
		strings.NewReader(`{"files":[{"id":"x","size_gb":0.1,"reads":1,"writes":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small observe under custom cap = %d, want 200", resp.StatusCode)
	}
}

// TestShardStatsAndDirtyMetrics covers the per-shard stats fields and the
// duplicate/dirty instruments across an observe→plan→observe cycle.
func TestShardStatsAndDirtyMetrics(t *testing.T) {
	reg := withMetrics(t)
	s, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot()
	files := make([]FileObservation, 64)
	for i := range files {
		files[i] = obsv("f"+itoa(i), float64(i))
	}
	files = append(files, obsv("f0", 999)) // one in-batch duplicate
	resp, err := s.Observe(&ObserveRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", resp.Duplicates)
	}
	after := reg.Snapshot()
	if got := after.Counter("minicost_serve_duplicate_observations_total") -
		before.Counter("minicost_serve_duplicate_observations_total"); got != 1 {
		t.Errorf("duplicate counter delta = %v, want 1", got)
	}
	if got := after.Gauge("minicost_serve_shards"); got != 4 {
		t.Errorf("shards gauge = %v, want 4", got)
	}

	st := s.Stats()
	if st.Shards != 4 {
		t.Fatalf("stats shards = %d, want 4", st.Shards)
	}
	if st.TrackedFiles != 64 || st.DirtyFiles != 64 {
		t.Fatalf("tracked=%d dirty=%d, want 64/64", st.TrackedFiles, st.DirtyFiles)
	}
	if st.MinShardFiles > st.MaxShardFiles || st.MaxShardFiles <= 0 {
		t.Fatalf("shard occupancy min=%d max=%d", st.MinShardFiles, st.MaxShardFiles)
	}
	if st.MaxShardDay != 1 || st.MinShardDay != 1 {
		t.Fatalf("shard days min=%d max=%d, want 1/1", st.MinShardDay, st.MaxShardDay)
	}
	if got := after.Gauge("minicost_serve_dirty_files"); got != 64 {
		t.Errorf("dirty gauge = %v, want 64", got)
	}

	// A plan drains the dirty set and counts its decisions. Files the plan
	// transitioned are re-queued (their tier feature changed), so the
	// post-plan dirty count equals the transition count.
	plan, err := s.BuildPlan(false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Decided != 64 || plan.Full {
		t.Fatalf("plan decided=%d full=%v, want 64/false", plan.Decided, plan.Full)
	}
	if got := s.Stats().DirtyFiles; got != plan.Transition {
		t.Fatalf("dirty after plan = %d, want transition count %d", got, plan.Transition)
	}
	drained := reg.Snapshot()
	if got := drained.Counter("minicost_serve_plan_decisions_total") -
		before.Counter("minicost_serve_plan_decisions_total"); got != 64 {
		t.Errorf("decision counter delta = %v, want 64", got)
	}
	if got := drained.Gauge("minicost_serve_dirty_files"); got != float64(plan.Transition) {
		t.Errorf("dirty gauge after plan = %v, want %d", got, plan.Transition)
	}

	// Observing one never-planned file dirties exactly one more.
	if _, err := s.Observe(&ObserveRequest{Files: []FileObservation{obsv("latecomer", 1)}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DirtyFiles; got != plan.Transition+1 {
		t.Fatalf("dirty after single observe = %d, want %d", got, plan.Transition+1)
	}
}

// BenchmarkObsOverhead is the tentpole's benchmark guard: the same
// observe/plan server paths with the default registry disabled (the state
// every non-daemon binary runs in) versus enabled. The disabled rows are
// the regression gate — they must match pre-instrumentation cost, since
// each metric op is one atomic load.
func BenchmarkObsOverhead(b *testing.B) {
	reg := obs.Default()
	was := reg.Enabled()
	b.Cleanup(func() { reg.SetEnabled(was) })

	files := make([]FileObservation, 256)
	for i := range files {
		files[i] = FileObservation{ID: "f" + itoa(i), SizeGB: 0.1, Reads: float64(i), Writes: 1}
	}
	newServer := func(b *testing.B) *Server {
		s, err := New(testAgent(), pricing.Hot)
		if err != nil {
			b.Fatal(err)
		}
		for d := 0; d < 7; d++ {
			if _, err := s.Observe(&ObserveRequest{Files: files}); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run("observe-"+mode.name, func(b *testing.B) {
			reg.SetEnabled(mode.enabled)
			s := newServer(b)
			req := &ObserveRequest{Files: files}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Observe(req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("plan-"+mode.name, func(b *testing.B) {
			reg.SetEnabled(mode.enabled)
			s := newServer(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.BuildPlan(true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
