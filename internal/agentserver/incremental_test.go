package agentserver

import (
	"fmt"
	"sync"
	"testing"

	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// planKey flattens a plan's assignment for bitwise comparison.
func planKey(p *PlanResponse) string {
	out := ""
	for _, f := range p.Files {
		out += f.ID + "=" + f.Tier
		if f.Changed {
			out += "*"
		}
		out += ";"
	}
	return out
}

// TestIncrementalPlanEqualsFull is the tentpole's equivalence guarantee:
// an incremental plan (re-deciding only dirty files, serving the rest from
// cache) is bitwise identical to a full re-decision of the whole
// population, across mixed observe/plan interleavings and shard counts.
// This holds because DecideBatch rows are batch-composition-independent
// (the PR-1 bitwise contract) and committed tiers feed back into the
// features only for files the plan actually changed — which the commit
// re-dirties.
func TestIncrementalPlanEqualsFull(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Two servers, identical weights and identical observation
			// streams: inc plans incrementally, ful re-decides everything.
			inc, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			ful, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(uint64(9000 + shards))
			pop := 0
			observe := func(files []FileObservation) {
				t.Helper()
				for _, s := range []*Server{inc, ful} {
					if _, err := s.Observe(&ObserveRequest{Files: files}); err != nil {
						t.Fatal(err)
					}
				}
			}
			comparePlans := func(step string) {
				t.Helper()
				pi, err := inc.BuildPlan(false)
				if err != nil {
					t.Fatal(err)
				}
				pf, err := ful.BuildPlan(true)
				if err != nil {
					t.Fatal(err)
				}
				if len(pi.Files) != len(pf.Files) {
					t.Fatalf("%s: incremental covers %d files, full %d", step, len(pi.Files), len(pf.Files))
				}
				if ki, kf := planKey(pi), planKey(pf); ki != kf {
					t.Fatalf("%s: incremental plan diverged from full\nincremental: %.200s\nfull:        %.200s", step, ki, kf)
				}
				if pi.Transition != pf.Transition {
					t.Fatalf("%s: transitions %d vs %d", step, pi.Transition, pf.Transition)
				}
				if !pi.Full && pi.Decided > len(pi.Files) {
					t.Fatalf("%s: incremental decided %d of %d files", step, pi.Decided, len(pi.Files))
				}
			}
			newBatch := func(lo, hi int) []FileObservation {
				files := make([]FileObservation, 0, hi-lo)
				for i := lo; i < hi; i++ {
					files = append(files, FileObservation{
						ID:     "f" + itoa(i),
						SizeGB: 0.05 + r.Float64(),
						Reads:  r.Float64() * 2000,
						Writes: r.Float64() * 20,
					})
				}
				return files
			}

			// Mixed interleaving: grow the population, observe subsets,
			// duplicate IDs, plan at every step.
			pop = 120
			for d := 0; d < 3; d++ {
				observe(newBatch(0, pop))
			}
			comparePlans("after warmup")
			comparePlans("repeat with nothing dirty")

			// Touch a subset: only those become dirty on inc.
			observe(newBatch(10, 40))
			comparePlans("after partial observe")

			// New files join mid-stream.
			observe(newBatch(0, pop+37))
			pop += 37
			comparePlans("after growth")

			// Duplicates inside one batch (last wins on both servers).
			batch := newBatch(50, 60)
			batch = append(batch, newBatch(50, 55)...)
			observe(batch)
			comparePlans("after duplicate batch")

			// Several observe days between plans.
			for d := 0; d < 4; d++ {
				observe(newBatch(pop/2, pop))
			}
			comparePlans("after multi-day gap")
		})
	}
}

// TestConcurrentObserveAndPlanSharded hammers a multi-shard server with
// interleaved direct Observe/BuildPlan calls; run under -race by `make
// check`. Plans taken during the run only need to be well-formed; a final
// quiescent plan must equal a full re-decision.
func TestConcurrentObserveAndPlanSharded(t *testing.T) {
	s, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	feedWeek(t, s, 300)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 1))
			for i := 0; i < 15; i++ {
				if w%2 == 0 {
					files := make([]FileObservation, 40)
					for j := range files {
						files[j] = obsv("f"+itoa(int(r.Float64()*300)), r.Float64()*100)
					}
					if _, err := s.Observe(&ObserveRequest{Files: files}); err != nil {
						t.Error(err)
						return
					}
				} else {
					p, err := s.BuildPlan(i%4 == 0)
					if err != nil {
						t.Error(err)
						return
					}
					if len(p.Files) != 300 {
						t.Errorf("mid-run plan covers %d files, want 300", len(p.Files))
						return
					}
					for k := 1; k < len(p.Files); k++ {
						if p.Files[k-1].ID >= p.Files[k].ID {
							t.Errorf("plan not ID-sorted at %d: %q >= %q", k, p.Files[k-1].ID, p.Files[k].ID)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Quiescent: the store survived the hammering intact — every file
	// still tracked exactly once, a full plan re-decides all of them.
	if got := s.Stats().TrackedFiles; got != 300 {
		t.Fatalf("tracked %d files after run, want 300", got)
	}
	pf, err := s.BuildPlan(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Files) != 300 || pf.Decided != 300 {
		t.Fatalf("final full plan files=%d decided=%d, want 300/300", len(pf.Files), pf.Decided)
	}
	for _, f := range pf.Files {
		if _, err := pricing.ParseTier(f.Tier); err != nil {
			t.Fatalf("invalid tier %q in final plan", f.Tier)
		}
	}
}
