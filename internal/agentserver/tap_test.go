package agentserver

import (
	"net/http/httptest"
	"testing"

	"minicost/internal/pricing"
)

// tapRecorder captures every tap callback.
type tapRecorder struct {
	days    []int64
	batches [][]FileObservation
}

func (r *tapRecorder) TapObserve(day int64, files []FileObservation) {
	r.days = append(r.days, day)
	cp := append([]FileObservation(nil), files...)
	r.batches = append(r.batches, cp)
}

// TestObserveFeedsTap pins the ObserveTap contract: the tap fires once per
// accepted observe batch, after ingestion, with the server's monotonically
// increasing day counter and the validated batch — and rejected requests
// never reach it.
func TestObserveFeedsTap(t *testing.T) {
	s, err := NewWithConfig(testAgent(), pricing.Hot, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &tapRecorder{}
	s.SetTap(rec)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	for d := 0; d < 3; d++ {
		if _, err := c.Observe(&ObserveRequest{Files: []FileObservation{
			obsv("a", 100), obsv("b", 5),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid batches are rejected before ingestion and must not be tapped.
	if _, err := c.Observe(&ObserveRequest{}); err == nil {
		t.Fatal("empty batch accepted")
	}

	if len(rec.days) != 3 {
		t.Fatalf("tap fired %d times, want 3", len(rec.days))
	}
	for i, day := range rec.days {
		if day != int64(i+1) {
			t.Fatalf("tap days %v, want 1,2,3", rec.days)
		}
		if len(rec.batches[i]) != 2 || rec.batches[i][0].ID != "a" || rec.batches[i][1].ID != "b" {
			t.Fatalf("tap batch %d = %+v", i, rec.batches[i])
		}
	}
}
