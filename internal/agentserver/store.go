package agentserver

// store.go is the serving state tier behind the HTTP surface (DESIGN.md
// §15): tracked-file state sharded across goroutine-owned partitions, each
// shard holding a contiguous struct-of-arrays feature store and a dirty set
// of files whose observed features changed since the last plan.
//
// Layout per shard: file ID → slot (map), then one flat array per field
// indexed by slot — size, ring-buffered read/write histories
// (slot*histLen .. slot*histLen+histLen), head/fill cursors, current tier,
// cached plan decision, dirty bit. Observation ingest and feature packing
// walk these arrays without per-file pointer chasing or per-request
// marshalling; feature rows are encoded straight from the rings into the
// batch matrix that feeds rl.Agent.DecideBatch.
//
// Locking: one mutex per shard. /v1/observe fans the batch out with
// par.ForShards, so concurrent ingestion of a million-file batch never
// serializes on a global lock; /v1/plan decides each shard's dirty slots on
// its own goroutine and merges per-shard ID-sorted entry lists at the end.

import (
	"sort"
	"sync"
	"sync/atomic"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rl"
)

// DefaultShards is the tracked-state partition count when Config.Shards is
// zero. Sixteen keeps per-shard occupancy near 64k files at the
// million-file target while staying wider than any worker fan-out this
// repo's benchmarks run with.
const DefaultShards = 16

// planChunk is how many decision rows a shard packs and decides at a time
// during a plan: large enough that the GEMM dominates, small enough that
// one chunk's activations stay a few MB and the shard lock (held only while
// packing features) is released between chunks.
const planChunk = 4096

// shard is one goroutine-owned partition of the tracked-file state. All
// slot-indexed fields are struct-of-arrays: growing appends to every array
// in addSlot; steady-state ingest and feature packing are flat array writes
// with no per-file allocation.
type shard struct {
	mu      sync.Mutex
	histLen int

	index map[string]int32 // file ID → slot
	ids   []string         // slot → file ID

	size   []float64 // last observed size, GB
	reads  []float64 // ring buffers, histLen cells per slot
	writes []float64
	head   []int32  // next ring write position per slot
	fill   []int32  // observed days per slot, capped at histLen
	seq    []uint64 // observe-batch sequence of the slot's last entry (duplicate detection)

	tier    []uint8 // committed (current) tier per slot
	planned []uint8 // last plan decision per slot; == tier after commit

	dirtyBit []bool  // slot needs re-deciding on the next plan
	dirty    []int32 // slots with dirtyBit set; cap ≥ len(ids) so hot-path marks never grow it

	changedEpoch []uint64 // plan epoch that last changed the slot's tier
	epoch        uint64   // bumped once per plan over this shard

	order   []int32 // slots in ascending-ID order; valid when orderOK
	orderOK bool

	day   int64        // observe batches that touched this shard
	files atomic.Int64 // len(ids), readable without the lock

	// planMu serializes the snapshot→decide→commit→build sequence per
	// shard: concurrent /v1/plan requests interleave across shards but
	// never share one shard's plan scratch. Always acquired before mu.
	planMu sync.Mutex

	// Plan scratch, owned by the goroutine holding planMu.
	feats    *mat.Matrix
	tiers    []pricing.Tier
	decSlots []int32
	readBuf  []float64
	writeBuf []float64
}

func newShard(histLen int) *shard {
	return &shard{
		histLen:  histLen,
		index:    make(map[string]int32),
		readBuf:  make([]float64, histLen),
		writeBuf: make([]float64, histLen),
	}
}

// shardOf hashes a file ID (FNV-1a 64, folded) onto a shard index; mask is
// shardCount-1 (shard counts are powers of two).
func shardOf(id string, mask uint32) uint32 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return uint32(h^(h>>32)) & mask
}

// addSlot grows every slot-indexed array by one. Caller holds sh.mu. The
// dirty list's capacity is kept ≥ len(ids) here so the hot-path dirty mark
// in ingestOne is a reslice, never an append.
func (sh *shard) addSlot(id string) int32 {
	slot := int32(len(sh.ids))
	sh.ids = append(sh.ids, id)
	sh.size = append(sh.size, 0)
	for i := 0; i < sh.histLen; i++ {
		sh.reads = append(sh.reads, 0)
		sh.writes = append(sh.writes, 0)
	}
	sh.head = append(sh.head, 0)
	sh.fill = append(sh.fill, 0)
	sh.seq = append(sh.seq, 0)
	sh.tier = append(sh.tier, 0)
	sh.planned = append(sh.planned, 0)
	sh.dirtyBit = append(sh.dirtyBit, false)
	sh.changedEpoch = append(sh.changedEpoch, 0)
	sh.order = append(sh.order, slot)
	sh.orderOK = len(sh.ids) == 1 // a single slot is trivially sorted
	if cap(sh.dirty) < len(sh.ids) {
		grown := make([]int32, len(sh.dirty), 2*len(sh.ids))
		copy(grown, sh.dirty)
		sh.dirty = grown
	}
	sh.index[id] = slot
	sh.files.Store(int64(len(sh.ids)))
	return slot
}

// setInitialTier seeds a fresh slot's tier. Caller holds sh.mu.
func (sh *shard) setInitialTier(slot int32, t pricing.Tier) {
	sh.tier[slot] = uint8(t)
	sh.planned[slot] = uint8(t)
}

// ingestBatch applies this shard's entries of one observe batch in batch
// order and advances the shard's day counter. idxs selects the batch
// positions owned by this shard; nil means the whole batch (the
// single-shard fast path). seq is the batch's sequence number: a slot
// already written under the same seq is a duplicate ID within the batch —
// the later entry wins (the earlier ring write is overwritten, the day
// advances once) and the duplicate is counted. Returns the duplicate count.
func (sh *shard) ingestBatch(files []FileObservation, idxs []int32, seq uint64, initial pricing.Tier) int {
	sh.mu.Lock()
	dups := 0
	if idxs == nil {
		for i := range files {
			dups += sh.ingestEntry(&files[i], seq, initial)
		}
	} else {
		for _, bi := range idxs {
			dups += sh.ingestEntry(&files[bi], seq, initial)
		}
	}
	sh.day++
	sh.mu.Unlock()
	return dups
}

// ingestEntry routes one observation to its slot, creating the slot on
// first sight. Returns 1 when the entry duplicated an ID already seen in
// this batch (last-wins overwrite), else 0. Caller holds sh.mu.
func (sh *shard) ingestEntry(f *FileObservation, seq uint64, initial pricing.Tier) int {
	slot, ok := sh.index[f.ID]
	if !ok {
		slot = sh.addSlot(f.ID)
		sh.setInitialTier(slot, initial)
	}
	if sh.seq[slot] == seq {
		sh.overwriteToday(slot, f.SizeGB, f.Reads, f.Writes)
		return 1
	}
	sh.seq[slot] = seq
	sh.ingestOne(slot, f.SizeGB, f.Reads, f.Writes)
	return 0
}

// ingestOne appends one day's measurement to a slot's ring buffers and
// marks the slot dirty — the shard ingest kernel on the /v1/observe hot
// path. The dirty mark is a reslice into pre-grown capacity (addSlot
// maintains cap(dirty) ≥ len(ids)), so the steady state is allocation-free.
//
//minicost:hotpath
func (sh *shard) ingestOne(slot int32, sizeGB, reads, writes float64) {
	base := int(slot) * sh.histLen
	h := int(sh.head[slot])
	sh.reads[base+h] = reads
	sh.writes[base+h] = writes
	h++
	if h == sh.histLen {
		h = 0
	}
	sh.head[slot] = int32(h)
	if int(sh.fill[slot]) < sh.histLen {
		sh.fill[slot]++
	}
	sh.size[slot] = sizeGB
	if !sh.dirtyBit[slot] {
		sh.dirtyBit[slot] = true
		n := len(sh.dirty)
		sh.dirty = sh.dirty[:n+1]
		sh.dirty[n] = slot
	}
}

// overwriteToday replaces the slot's most recent ring entry — the
// last-wins path for duplicate IDs within one observe batch. The slot is
// already dirty from the first write. Caller holds sh.mu.
func (sh *shard) overwriteToday(slot int32, sizeGB, reads, writes float64) {
	base := int(slot) * sh.histLen
	h := int(sh.head[slot]) - 1
	if h < 0 {
		h = sh.histLen - 1
	}
	sh.reads[base+h] = reads
	sh.writes[base+h] = writes
	sh.size[slot] = sizeGB
}

// windowInto linearizes a slot's ring buffers into oldest-first windows of
// length histLen, left-padding a short history by repeating its first
// value — the same cold-start convention mdp.Env uses.
//
//minicost:hotpath
func (sh *shard) windowInto(slot int32, rs, ws []float64) {
	base := int(slot) * sh.histLen
	fill := int(sh.fill[slot])
	h := sh.histLen
	if fill == h {
		start := int(sh.head[slot]) // oldest entry once the ring is full
		for i := 0; i < h; i++ {
			j := start + i
			if j >= h {
				j -= h
			}
			rs[i] = sh.reads[base+j]
			ws[i] = sh.writes[base+j]
		}
		return
	}
	var r0, w0 float64
	if fill > 0 {
		r0 = sh.reads[base]
		w0 = sh.writes[base]
	}
	pad := h - fill
	for i := 0; i < pad; i++ {
		rs[i] = r0
		ws[i] = w0
	}
	for i := 0; i < fill; i++ {
		rs[pad+i] = sh.reads[base+i]
		ws[pad+i] = sh.writes[base+i]
	}
}

// featureInto encodes one slot's feature row straight from the
// struct-of-arrays state — ring windows, size, tier one-hot — with the
// exact mdp.State encoding the training path uses. Caller holds sh.mu.
//
//minicost:hotpath
func (sh *shard) featureInto(slot int32, dst []float64) {
	sh.windowInto(slot, sh.readBuf, sh.writeBuf)
	st := mdp.State{
		ReadHistory:  sh.readBuf,
		WriteHistory: sh.writeBuf,
		SizeGB:       sh.size[slot],
		Tier:         pricing.Tier(sh.tier[slot]),
	}
	st.FeaturesInto(dst)
}

// fillFeatures packs the feature rows of the given slots into feats — the
// shard plan kernel between the dirty-set snapshot and the batched forward
// pass. Caller holds sh.mu.
//
//minicost:hotpath
func (sh *shard) fillFeatures(slots []int32, feats *mat.Matrix) {
	for i, slot := range slots {
		sh.featureInto(slot, feats.Row(i))
	}
}

// snapshotDecisions fixes the set of slots this plan will re-decide — the
// dirty set, or every slot when full — into sh.decSlots and clears the
// dirty set. Slots re-dirtied by observations that land while the decision
// is in flight simply queue for the next plan.
func (sh *shard) snapshotDecisions(full bool) int {
	sh.mu.Lock()
	var m int
	if full {
		m = len(sh.ids)
		if cap(sh.decSlots) < m {
			sh.decSlots = make([]int32, m)
		}
		sh.decSlots = sh.decSlots[:m]
		for i := range sh.decSlots {
			sh.decSlots[i] = int32(i)
		}
	} else {
		m = len(sh.dirty)
		if cap(sh.decSlots) < m {
			sh.decSlots = make([]int32, m)
		}
		sh.decSlots = sh.decSlots[:m]
		copy(sh.decSlots, sh.dirty)
	}
	for _, slot := range sh.dirty {
		sh.dirtyBit[slot] = false
	}
	sh.dirty = sh.dirty[:0]
	sh.mu.Unlock()
	return m
}

// decide runs the batched policy over the snapshotted decision set in
// planChunk-row chunks: features are packed under the shard lock (the rings
// must not move), the forward pass runs with it released, so ingestion is
// never blocked behind inference.
func (sh *shard) decide(agent *rl.Agent, m int) {
	if m == 0 {
		return
	}
	fd := mdp.FeatureDim(sh.histLen)
	if cap(sh.tiers) < m {
		sh.tiers = make([]pricing.Tier, m)
	}
	tiers := sh.tiers[:m]
	for lo := 0; lo < m; lo += planChunk {
		hi := lo + planChunk
		if hi > m {
			hi = m
		}
		sh.feats = mat.EnsureShape(sh.feats, hi-lo, fd)
		sh.mu.Lock()
		sh.fillFeatures(sh.decSlots[lo:hi], sh.feats)
		sh.mu.Unlock()
		agent.DecideBatch(sh.feats, tiers[lo:hi], 1)
	}
}

// commit writes the decided tiers back as the slots' current tiers and
// caches them as the slots' plan entries. It bumps the shard's plan epoch
// (even when nothing was decided) and stamps changed slots with it, so
// entry building can report Changed without an O(slots) clear. A slot whose
// tier changed is re-queued on the dirty set: the tier one-hot is part of
// the feature row, so its cached decision no longer reflects its features —
// exactly what a full re-plan would re-decide. That re-queue is what keeps
// incremental plans bitwise equal to full ones. Returns the epoch and the
// number of tier transitions.
func (sh *shard) commit(m int) (epoch uint64, transitions int) {
	sh.mu.Lock()
	sh.epoch++
	epoch = sh.epoch
	for i := 0; i < m; i++ {
		slot := sh.decSlots[i]
		nt := uint8(sh.tiers[i])
		if nt != sh.tier[slot] {
			transitions++
			sh.changedEpoch[slot] = epoch
			if !sh.dirtyBit[slot] {
				sh.dirtyBit[slot] = true
				sh.dirty = append(sh.dirty, slot)
			}
		}
		sh.tier[slot] = nt
		sh.planned[slot] = nt
	}
	sh.mu.Unlock()
	return epoch, transitions
}

// buildEntries appends the shard's plan entries in ascending-ID order.
// Slots not re-decided this plan serve their cached assignment; Changed is
// true exactly for slots whose tier changed in the plan that produced
// epoch.
func (sh *shard) buildEntries(epoch uint64) []PlanEntry {
	sh.mu.Lock()
	sh.ensureOrder()
	out := make([]PlanEntry, 0, len(sh.ids))
	for _, slot := range sh.order {
		out = append(out, PlanEntry{
			ID:      sh.ids[slot],
			Tier:    pricing.Tier(sh.planned[slot]).String(),
			Changed: sh.changedEpoch[slot] == epoch,
		})
	}
	sh.mu.Unlock()
	return out
}

// ensureOrder re-sorts the slot order after insertions. Observations to
// existing files never invalidate it, so steady-state plans skip the sort.
// Caller holds sh.mu.
func (sh *shard) ensureOrder() {
	if sh.orderOK {
		return
	}
	ids := sh.ids
	order := sh.order
	sort.Slice(order, func(i, j int) bool { return ids[order[i]] < ids[order[j]] })
	sh.orderOK = true
}

// markAllDirty queues every slot for re-decision — required when the
// serving policy changes (UpdateAgent), since cached decisions were made by
// the previous weights.
func (sh *shard) markAllDirty() {
	sh.mu.Lock()
	sh.dirty = sh.dirty[:0]
	for slot := range sh.dirtyBit {
		sh.dirtyBit[slot] = true
		sh.dirty = append(sh.dirty, int32(slot))
	}
	sh.mu.Unlock()
}

// dirtyCount returns the shard's pending-decision count.
func (sh *shard) dirtyCount() int {
	sh.mu.Lock()
	n := len(sh.dirty)
	sh.mu.Unlock()
	return n
}

// mergeEntries merges per-shard ascending-ID entry lists into one global
// ascending-ID list with a P-way cursor scan (P is small).
func mergeEntries(parts [][]PlanEntry) []PlanEntry {
	total := 0
	nonEmpty := 0
	for _, p := range parts {
		total += len(p)
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		for _, p := range parts {
			if len(p) > 0 {
				return p
			}
		}
	}
	out := make([]PlanEntry, 0, total)
	cursors := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for p := range parts {
			if cursors[p] >= len(parts[p]) {
				continue
			}
			if best < 0 || parts[p][cursors[p]].ID < parts[best][cursors[best]].ID {
				best = p
			}
		}
		out = append(out, parts[best][cursors[best]])
		cursors[best]++
	}
	return out
}
