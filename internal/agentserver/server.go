// Package agentserver exposes a trained MiniCost agent as an HTTP service —
// the deployment shape the paper describes in §4.2: "a reinforcement
// learning agent, which is responsible for generating the data storage type
// assignment plan periodically, is deployed on a server belonging to the
// web application. It monitors the request frequencies, changes of data
// storage types and the change of data size."
//
// The service ingests daily per-file observations (POST /v1/observe),
// maintains each file's trailing frequency history, and produces tier
// assignment plans (GET /v1/plan) with the greedy policy of the loaded
// agent. Everything is stdlib net/http + encoding/json.
package agentserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rl"
)

// FileObservation is one file's daily measurement.
type FileObservation struct {
	ID     string  `json:"id"`
	SizeGB float64 `json:"size_gb"`
	Reads  float64 `json:"reads"`
	Writes float64 `json:"writes"`
}

// ObserveRequest is the POST /v1/observe payload: one day's observations.
type ObserveRequest struct {
	Files []FileObservation `json:"files"`
}

// ObserveResponse reports ingestion counts.
type ObserveResponse struct {
	Accepted int `json:"accepted"`
	Tracked  int `json:"tracked"`
}

// PlanEntry is one file's assignment in a plan.
type PlanEntry struct {
	ID   string `json:"id"`
	Tier string `json:"tier"`
	// Changed reports whether this decision differs from the file's current
	// tier (i.e. a transition the operator must execute).
	Changed bool `json:"changed"`
}

// PlanResponse is the GET /v1/plan payload.
type PlanResponse struct {
	Day        int         `json:"day"`
	Files      []PlanEntry `json:"files"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Transition int         `json:"transitions"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	TrackedFiles int     `json:"tracked_files"`
	Observations int64   `json:"observations"`
	PlansServed  int64   `json:"plans_served"`
	LastPlanMS   float64 `json:"last_plan_ms"`
	HistLen      int     `json:"hist_len"`
	// Replicas is how many network replicas the serving pool has built for
	// the current agent snapshot — bounded by peak request concurrency, not
	// by request volume.
	Replicas int64 `json:"replicas"`
}

// fileState is the server-side record of one tracked file.
type fileState struct {
	sizeGB float64
	tier   pricing.Tier
	reads  []float64 // trailing window, most recent last
	writes []float64
}

// Server wraps an agent with observation state. Create with New, mount via
// Handler.
//
// Serving uses a replica pool instead of one network per request: plan()
// borrows a pooled replica, computes every decision with one batched
// forward pass outside the state lock, and returns the replica — so
// concurrent plan requests cost at most one network copy each at peak, and
// repeated requests cost none. UpdateAgent refreshes the pool when a new
// training snapshot lands.
type Server struct {
	mu      sync.Mutex
	pool    *rl.ReplicaPool
	histLen int
	initial pricing.Tier
	files   map[string]*fileState
	day     int

	observations int64
	plansServed  int64
	lastPlanMS   float64
}

// New builds a server around a trained agent. Files start in initial
// (usually hot).
func New(agent *rl.Agent, initial pricing.Tier) (*Server, error) {
	if agent == nil {
		return nil, errors.New("agentserver: nil agent")
	}
	if !initial.Valid() {
		return nil, errors.New("agentserver: invalid initial tier")
	}
	return &Server{
		pool:    rl.NewReplicaPool(agent.Clone()),
		histLen: agent.Net.HistLen,
		initial: initial,
		files:   make(map[string]*fileState),
	}, nil
}

// UpdateAgent swaps in a fresh training snapshot. Pooled replicas of the
// previous snapshot are invalidated; in-flight plans finish on the weights
// they started with. The new agent must keep the history-window length the
// observation state was built for.
func (s *Server) UpdateAgent(agent *rl.Agent) error {
	if agent == nil {
		return errors.New("agentserver: nil agent")
	}
	if agent.Net.HistLen != s.histLen {
		return fmt.Errorf("agentserver: snapshot hist window %d, server tracks %d", agent.Net.HistLen, s.histLen)
	}
	s.pool.Swap(agent.Clone())
	return nil
}

// observe ingests one day's batch.
func (s *Server) observe(req *ObserveRequest) (*ObserveResponse, error) {
	if len(req.Files) == 0 {
		return nil, errors.New("agentserver: empty observation batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range req.Files {
		if f.ID == "" {
			return nil, errors.New("agentserver: observation without id")
		}
		if f.SizeGB <= 0 || f.Reads < 0 || f.Writes < 0 {
			return nil, fmt.Errorf("agentserver: invalid observation for %q", f.ID)
		}
		st, ok := s.files[f.ID]
		if !ok {
			st = &fileState{tier: s.initial}
			s.files[f.ID] = st
		}
		st.sizeGB = f.SizeGB
		st.reads = appendWindow(st.reads, f.Reads, s.histLen)
		st.writes = appendWindow(st.writes, f.Writes, s.histLen)
		s.observations++
	}
	s.day++
	return &ObserveResponse{Accepted: len(req.Files), Tracked: len(s.files)}, nil
}

func appendWindow(w []float64, v float64, histLen int) []float64 {
	w = append(w, v)
	if len(w) > histLen {
		w = w[len(w)-histLen:]
	}
	return w
}

// plan produces the current assignment for every tracked file and commits
// the decisions as the files' current tiers (the operator is assumed to
// execute the plan, as System.Run does).
//
// The state lock is held only to snapshot observations and to commit the
// decided tiers; the batched forward pass over all files — the expensive
// part — runs on a pooled replica with the lock released, so observation
// ingestion and other plan requests are never blocked behind inference.
func (s *Server) plan() (*PlanResponse, error) {
	start := time.Now()
	s.mu.Lock()
	if len(s.files) == 0 {
		s.mu.Unlock()
		return nil, errors.New("agentserver: no observations yet")
	}
	day := s.day
	ids := make([]string, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	states := make([]mdp.State, len(ids))
	for i, id := range ids {
		st := s.files[id]
		states[i] = mdp.State{
			ReadHistory:  padWindow(st.reads, s.histLen),
			WriteHistory: padWindow(st.writes, s.histLen),
			SizeGB:       st.sizeGB,
			Tier:         st.tier,
		}
	}
	s.mu.Unlock()

	feats := mat.New(len(ids), mdp.FeatureDim(s.histLen))
	for i := range states {
		states[i].FeaturesInto(feats.Row(i))
	}
	tiers := make([]pricing.Tier, len(ids))
	rep := s.pool.Get()
	rep.DecideBatch(feats, tiers, 0)
	s.pool.Put(rep)

	resp := &PlanResponse{Day: day, Files: make([]PlanEntry, 0, len(ids))}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		tier := tiers[i]
		changed := tier != states[i].Tier
		if changed {
			resp.Transition++
		}
		// Commit to files still tracked; a file observed away mid-plan just
		// drops its entry's effect.
		if st, ok := s.files[id]; ok {
			st.tier = tier
		}
		resp.Files = append(resp.Files, PlanEntry{ID: id, Tier: tier.String(), Changed: changed})
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.plansServed++
	s.lastPlanMS = resp.ElapsedMS
	return resp, nil
}

// padWindow left-pads a short history by repeating its first value, the
// same cold-start convention mdp.Env uses.
func padWindow(w []float64, histLen int) []float64 {
	if len(w) >= histLen {
		return append([]float64(nil), w[len(w)-histLen:]...)
	}
	out := make([]float64, histLen)
	first := 0.0
	if len(w) > 0 {
		first = w[0]
	}
	for i := 0; i < histLen-len(w); i++ {
		out[i] = first
	}
	copy(out[histLen-len(w):], w)
	return out
}

// stats snapshots counters.
func (s *Server) stats() *StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &StatsResponse{
		TrackedFiles: len(s.files),
		Observations: s.observations,
		PlansServed:  s.plansServed,
		LastPlanMS:   s.lastPlanMS,
		HistLen:      s.histLen,
		Replicas:     s.pool.Created(),
	}
}

// Handler returns the HTTP mux:
//
//	POST /v1/observe  ingest one day's observations
//	GET  /v1/plan     current assignment plan (commits decisions)
//	GET  /v1/stats    counters
//	GET  /v1/healthz  liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observe", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req ObserveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
			return
		}
		resp, err := s.observe(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		resp, err := s.plan()
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.stats())
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
