// Package agentserver exposes a trained MiniCost agent as an HTTP service —
// the deployment shape the paper describes in §4.2: "a reinforcement
// learning agent, which is responsible for generating the data storage type
// assignment plan periodically, is deployed on a server belonging to the
// web application. It monitors the request frequencies, changes of data
// storage types and the change of data size."
//
// The service ingests daily per-file observations (POST /v1/observe),
// maintains each file's trailing frequency history, and produces tier
// assignment plans (GET /v1/plan) with the greedy policy of the loaded
// agent. Everything is stdlib net/http + encoding/json.
package agentserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rl"
)

// MaxObserveBytes caps a /v1/observe request body; larger payloads are
// rejected with 413 before decoding. At ~100 bytes per file observation
// this admits batches of ~80k files per day, far above the serving targets.
const MaxObserveBytes = 8 << 20

// FileObservation is one file's daily measurement.
type FileObservation struct {
	ID     string  `json:"id"`
	SizeGB float64 `json:"size_gb"`
	Reads  float64 `json:"reads"`
	Writes float64 `json:"writes"`
}

// ObserveRequest is the POST /v1/observe payload: one day's observations.
type ObserveRequest struct {
	Files []FileObservation `json:"files"`
}

// ObserveResponse reports ingestion counts.
type ObserveResponse struct {
	Accepted int `json:"accepted"`
	Tracked  int `json:"tracked"`
}

// PlanEntry is one file's assignment in a plan.
type PlanEntry struct {
	ID   string `json:"id"`
	Tier string `json:"tier"`
	// Changed reports whether this decision differs from the file's current
	// tier (i.e. a transition the operator must execute).
	Changed bool `json:"changed"`
}

// PlanResponse is the GET /v1/plan payload.
type PlanResponse struct {
	Day        int         `json:"day"`
	Files      []PlanEntry `json:"files"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Transition int         `json:"transitions"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	TrackedFiles int     `json:"tracked_files"`
	Observations int64   `json:"observations"`
	PlansServed  int64   `json:"plans_served"`
	LastPlanMS   float64 `json:"last_plan_ms"`
	HistLen      int     `json:"hist_len"`
	// Replicas is how many network replicas the serving pool has built for
	// the current agent snapshot — bounded by peak request concurrency, not
	// by request volume.
	Replicas int64 `json:"replicas"`
}

// fileState is the server-side record of one tracked file.
type fileState struct {
	sizeGB float64
	tier   pricing.Tier
	reads  []float64 // trailing window, most recent last
	writes []float64
}

// Server wraps an agent with observation state. Create with New, mount via
// Handler.
//
// Serving uses a replica pool instead of one network per request: plan()
// borrows a pooled replica, computes every decision with one batched
// forward pass outside the state lock, and returns the replica — so
// concurrent plan requests cost at most one network copy each at peak, and
// repeated requests cost none. UpdateAgent refreshes the pool when a new
// training snapshot lands.
type Server struct {
	mu      sync.Mutex
	pool    *rl.ReplicaPool
	histLen int
	initial pricing.Tier
	files   map[string]*fileState
	day     int

	observations int64
	plansServed  int64
	lastPlanMS   float64
	lastPlanAt   time.Time

	met serveMetrics
}

// serveMetrics are the server's obs instruments (DESIGN.md §12). They live
// in the default registry, which is off outside daemons, so recording costs
// one atomic load per op in tests and examples.
type serveMetrics struct {
	observations *obs.Counter
	plans        *obs.Counter
	transitions  *obs.Counter
	tracked      *obs.Gauge
	planGen      *obs.Timer
}

func newServeMetrics() serveMetrics {
	reg := obs.Default()
	return serveMetrics{
		observations: reg.Counter("minicost_serve_observations_total",
			"Per-file daily observations ingested via /v1/observe."),
		plans: reg.Counter("minicost_serve_plans_total",
			"Assignment plans generated via /v1/plan."),
		transitions: reg.Counter("minicost_serve_transitions_total",
			"Tier transitions the generated plans asked the operator to execute."),
		tracked: reg.Gauge("minicost_serve_tracked_files",
			"Files currently tracked by the agent server."),
		planGen: reg.Timer("minicost_serve_plan_seconds",
			"Plan generation time: state snapshot, batched forward pass, commit."),
	}
}

// New builds a server around a trained agent. Files start in initial
// (usually hot).
func New(agent *rl.Agent, initial pricing.Tier) (*Server, error) {
	if agent == nil {
		return nil, errors.New("agentserver: nil agent")
	}
	if !initial.Valid() {
		return nil, errors.New("agentserver: invalid initial tier")
	}
	s := &Server{
		pool:    rl.NewReplicaPool(agent.Clone()),
		histLen: agent.Net.HistLen,
		initial: initial,
		files:   make(map[string]*fileState),
		met:     newServeMetrics(),
	}
	// Plan staleness is derived at scrape time; NaN until the first plan.
	// Registered per server, newest instance wins (one server per daemon).
	obs.Default().GaugeFunc("minicost_serve_plan_staleness_seconds",
		"Seconds since the last plan was generated (NaN before the first).",
		func() float64 {
			s.mu.Lock()
			at := s.lastPlanAt
			s.mu.Unlock()
			if at.IsZero() {
				return math.NaN()
			}
			return time.Since(at).Seconds()
		})
	return s, nil
}

// UpdateAgent swaps in a fresh training snapshot. Pooled replicas of the
// previous snapshot are invalidated; in-flight plans finish on the weights
// they started with. The new agent must keep the history-window length the
// observation state was built for.
func (s *Server) UpdateAgent(agent *rl.Agent) error {
	if agent == nil {
		return errors.New("agentserver: nil agent")
	}
	if agent.Net.HistLen != s.histLen {
		return fmt.Errorf("agentserver: snapshot hist window %d, server tracks %d", agent.Net.HistLen, s.histLen)
	}
	s.pool.Swap(agent.Clone())
	return nil
}

// observe ingests one day's batch.
func (s *Server) observe(req *ObserveRequest) (*ObserveResponse, error) {
	if len(req.Files) == 0 {
		return nil, errors.New("agentserver: empty observation batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range req.Files {
		if f.ID == "" {
			return nil, errors.New("agentserver: observation without id")
		}
		if f.SizeGB <= 0 || f.Reads < 0 || f.Writes < 0 {
			return nil, fmt.Errorf("agentserver: invalid observation for %q", f.ID)
		}
		st, ok := s.files[f.ID]
		if !ok {
			st = &fileState{tier: s.initial}
			s.files[f.ID] = st
		}
		st.sizeGB = f.SizeGB
		st.reads = appendWindow(st.reads, f.Reads, s.histLen)
		st.writes = appendWindow(st.writes, f.Writes, s.histLen)
		s.observations++
	}
	s.day++
	s.met.observations.Add(float64(len(req.Files)))
	s.met.tracked.Set(float64(len(s.files)))
	return &ObserveResponse{Accepted: len(req.Files), Tracked: len(s.files)}, nil
}

func appendWindow(w []float64, v float64, histLen int) []float64 {
	w = append(w, v)
	if len(w) > histLen {
		w = w[len(w)-histLen:]
	}
	return w
}

// plan produces the current assignment for every tracked file and commits
// the decisions as the files' current tiers (the operator is assumed to
// execute the plan, as System.Run does).
//
// The state lock is held only to snapshot observations and to commit the
// decided tiers; the batched forward pass over all files — the expensive
// part — runs on a pooled replica with the lock released, so observation
// ingestion and other plan requests are never blocked behind inference.
func (s *Server) plan() (*PlanResponse, error) {
	sw := s.met.planGen.Start()
	start := time.Now()
	s.mu.Lock()
	if len(s.files) == 0 {
		s.mu.Unlock()
		return nil, errors.New("agentserver: no observations yet")
	}
	day := s.day
	ids := make([]string, 0, len(s.files))
	for id := range s.files {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	states := make([]mdp.State, len(ids))
	for i, id := range ids {
		st := s.files[id]
		states[i] = mdp.State{
			ReadHistory:  padWindow(st.reads, s.histLen),
			WriteHistory: padWindow(st.writes, s.histLen),
			SizeGB:       st.sizeGB,
			Tier:         st.tier,
		}
	}
	s.mu.Unlock()

	feats := mat.New(len(ids), mdp.FeatureDim(s.histLen))
	fillFeatures(states, feats)
	tiers := make([]pricing.Tier, len(ids))
	rep := s.pool.Get()
	rep.DecideBatch(feats, tiers, 0)
	s.pool.Put(rep)

	resp := &PlanResponse{Day: day, Files: make([]PlanEntry, 0, len(ids))}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		tier := tiers[i]
		changed := tier != states[i].Tier
		if changed {
			resp.Transition++
		}
		// Commit to files still tracked; a file observed away mid-plan just
		// drops its entry's effect.
		if st, ok := s.files[id]; ok {
			st.tier = tier
		}
		resp.Files = append(resp.Files, PlanEntry{ID: id, Tier: tier.String(), Changed: changed})
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.plansServed++
	s.lastPlanMS = resp.ElapsedMS
	s.lastPlanAt = time.Now()
	s.met.plans.Inc()
	s.met.transitions.Add(float64(resp.Transition))
	s.met.tracked.Set(float64(len(s.files)))
	sw.Stop()
	return resp, nil
}

// fillFeatures packs each snapshotted state's feature row into the batch
// matrix that feeds rl.Agent.DecideBatch — the serving hot loop between the
// state snapshot and the batched forward pass.
//
//minicost:hotpath
func fillFeatures(states []mdp.State, feats *mat.Matrix) {
	for i := range states {
		states[i].FeaturesInto(feats.Row(i))
	}
}

// padWindow left-pads a short history by repeating its first value, the
// same cold-start convention mdp.Env uses.
func padWindow(w []float64, histLen int) []float64 {
	if len(w) >= histLen {
		return append([]float64(nil), w[len(w)-histLen:]...)
	}
	out := make([]float64, histLen)
	first := 0.0
	if len(w) > 0 {
		first = w[0]
	}
	for i := 0; i < histLen-len(w); i++ {
		out[i] = first
	}
	copy(out[histLen-len(w):], w)
	return out
}

// stats snapshots counters.
func (s *Server) stats() *StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &StatsResponse{
		TrackedFiles: len(s.files),
		Observations: s.observations,
		PlansServed:  s.plansServed,
		LastPlanMS:   s.lastPlanMS,
		HistLen:      s.histLen,
		Replicas:     s.pool.Created(),
	}
}

// Handler returns the HTTP mux:
//
//	POST /v1/observe  ingest one day's observations
//	GET  /v1/plan     current assignment plan (commits decisions)
//	GET  /v1/stats    counters
//	GET  /v1/healthz  liveness
//
// Every endpoint is instrumented: request counts by endpoint and outcome
// (minicost_http_requests_total) and a latency histogram per endpoint
// (minicost_http_request_seconds).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observe", instrument("observe", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		// Reject declared non-JSON payloads up front with 415 rather than a
		// confusing decode error; an absent Content-Type is tolerated.
		if ct := r.Header.Get("Content-Type"); ct != "" && !isJSONContentType(ct) {
			httpError(w, http.StatusUnsupportedMediaType, "Content-Type must be application/json")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxObserveBytes)
		var req ObserveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("observation batch exceeds %d bytes", MaxObserveBytes))
				return
			}
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
			return
		}
		resp, err := s.observe(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/plan", instrument("plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		resp, err := s.plan()
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/stats", instrument("stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.stats())
	}))
	mux.HandleFunc("/v1/healthz", instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// isJSONContentType accepts application/json with optional parameters
// (charset) and +json suffixed types.
func isJSONContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.ToLower(strings.TrimSpace(ct))
	return ct == "application/json" || strings.HasSuffix(ct, "+json")
}

// instrument wraps an endpoint handler with its request counters and
// latency histogram. Metrics are looked up once at mux construction, not
// per request.
func instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reg := obs.Default()
	ok := reg.Counter("minicost_http_requests_total",
		"HTTP requests served, by endpoint and outcome.",
		obs.L("endpoint", endpoint), obs.L("status", "ok"))
	failed := reg.Counter("minicost_http_requests_total",
		"HTTP requests served, by endpoint and outcome.",
		obs.L("endpoint", endpoint), obs.L("status", "error"))
	lat := reg.Timer("minicost_http_request_seconds",
		"HTTP request latency by endpoint.", obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		sw := lat.Start()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r)
		sw.Stop()
		if cw.code >= 400 {
			failed.Inc()
		} else {
			ok.Inc()
		}
	}
}

// codeWriter captures the response status for the outcome counters.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
