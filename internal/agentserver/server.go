// Package agentserver exposes a trained MiniCost agent as an HTTP service —
// the deployment shape the paper describes in §4.2: "a reinforcement
// learning agent, which is responsible for generating the data storage type
// assignment plan periodically, is deployed on a server belonging to the
// web application. It monitors the request frequencies, changes of data
// storage types and the change of data size."
//
// The service ingests daily per-file observations (POST /v1/observe),
// maintains each file's trailing frequency history in a sharded
// struct-of-arrays store (store.go), and produces tier assignment plans
// (GET /v1/plan) with the greedy policy of the loaded agent. Plans are
// incremental by default: only files whose observed features changed since
// the last plan are re-decided; the rest serve their cached assignment
// (GET /v1/plan?full=1 forces a full re-decision — bitwise-identical, just
// slower). Everything is stdlib net/http + encoding/json.
package agentserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"minicost/internal/obs"
	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/rl"
)

// MaxObserveBytes is the default cap on a /v1/observe request body; larger
// payloads are rejected with 413 before decoding. At ~100 bytes per file
// observation this admits batches of ~80k files per day — raise it through
// Config.MaxObserveBytes (minicostd -max-observe-bytes) for million-file
// batches.
const MaxObserveBytes = 8 << 20

// ingestFanoutThreshold is the observe batch size below which ingestion
// runs the shards serially: fanning goroutines out for a handful of files
// costs more than the shard work.
const ingestFanoutThreshold = 2048

// FileObservation is one file's daily measurement.
type FileObservation struct {
	ID     string  `json:"id"`
	SizeGB float64 `json:"size_gb"`
	Reads  float64 `json:"reads"`
	Writes float64 `json:"writes"`
}

// ObserveRequest is the POST /v1/observe payload: one day's observations.
type ObserveRequest struct {
	Files []FileObservation `json:"files"`
}

// ObserveResponse reports ingestion counts.
type ObserveResponse struct {
	Accepted int `json:"accepted"`
	Tracked  int `json:"tracked"`
	// Duplicates counts batch entries whose ID already appeared earlier in
	// the same batch. Semantics are last-wins: the later entry replaces the
	// earlier one's measurement for the day (the history window advances
	// once per file per batch).
	Duplicates int `json:"duplicates"`
}

// PlanEntry is one file's assignment in a plan.
type PlanEntry struct {
	ID   string `json:"id"`
	Tier string `json:"tier"`
	// Changed reports whether this decision differs from the file's current
	// tier (i.e. a transition the operator must execute).
	Changed bool `json:"changed"`
}

// PlanResponse is the GET /v1/plan payload.
type PlanResponse struct {
	Day        int         `json:"day"`
	Files      []PlanEntry `json:"files"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Transition int         `json:"transitions"`
	// Decided is how many files the plan actually re-decided; the rest
	// served their cached assignment. Full reports whether this was a full
	// re-decision (?full=1 or the first plan after a policy swap).
	Decided int  `json:"decided"`
	Full    bool `json:"full"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	TrackedFiles int     `json:"tracked_files"`
	Observations int64   `json:"observations"`
	PlansServed  int64   `json:"plans_served"`
	LastPlanMS   float64 `json:"last_plan_ms"`
	HistLen      int     `json:"hist_len"`
	// Replicas is how many network replicas the serving pool has built for
	// the current agent snapshot — bounded by peak request concurrency, not
	// by request volume.
	Replicas int64 `json:"replicas"`
	// Shard occupancy: partition count, the most and least populated
	// shard, and the pending-decision (dirty) total across shards.
	Shards        int `json:"shards"`
	MaxShardFiles int `json:"max_shard_files"`
	MinShardFiles int `json:"min_shard_files"`
	DirtyFiles    int `json:"dirty_files"`
	// MaxShardDay/MinShardDay are the per-shard observe-batch counters;
	// they diverge when observe batches only touch a subset of shards.
	MaxShardDay int64 `json:"max_shard_day"`
	MinShardDay int64 `json:"min_shard_day"`
}

// ObserveTap receives every validated /v1/observe batch after the serving
// store has ingested it — the hook the online learner's replay buffer hangs
// off (internal/online). The call runs inline on the serve path with the
// batch day counter and the raw (already validated) entries; implementations
// must be safe for concurrent calls and must not retain the slice past the
// call.
//
// Two costs of the inline contract. First, under concurrent observe
// requests day values can reach the tap out of order (the counter is
// incremented before the unsynchronized tap call), so implementations must
// not assume monotone days — the online learner sidesteps this by keying
// its gap statistics on per-file observation ordinals instead. Second, any
// lock a tap takes inside TapObserve serializes the observe hot path across
// requests; the learner's single tap mutex does exactly that, which is
// acceptable because its per-batch work is flat array writes and O(buckets)
// scoring, but a tap doing heavy work inline would become the ingest
// bottleneck.
type ObserveTap interface {
	TapObserve(day int64, files []FileObservation)
}

// Config tunes the serving state tier. The zero value selects the
// defaults.
type Config struct {
	// Shards is the tracked-state partition count, rounded up to a power
	// of two. 0 selects DefaultShards.
	Shards int
	// MaxObserveBytes caps a /v1/observe body. 0 selects MaxObserveBytes.
	MaxObserveBytes int64
	// Workers bounds the observe/plan shard fan-out. 0 selects
	// par.DefaultWorkers at each call.
	Workers int
	// Tap, when non-nil, is invoked with every validated observe batch
	// after ingestion (the online learner's feed). nil disables the tap.
	Tap ObserveTap
}

// Server wraps an agent with sharded observation state. Create with New or
// NewWithConfig, mount via Handler.
//
// Serving uses a replica pool instead of one network per request: BuildPlan
// borrows a pooled replica per shard worker, computes decisions with
// batched forward passes outside the shard locks, and returns the replicas
// — so concurrent plan requests cost at most one network copy per worker at
// peak, and repeated requests cost none. UpdateAgent refreshes the pool
// when a new training snapshot lands and marks every file dirty so the
// next plan re-decides the world under the new weights.
type Server struct {
	pool    *rl.ReplicaPool
	histLen int
	initial pricing.Tier
	workers int

	shards    []*shard
	shardMask uint32

	maxObserveBytes int64
	tap             ObserveTap

	day          atomic.Int64
	batchSeq     atomic.Uint64
	observations atomic.Int64
	plansServed  atomic.Int64
	lastPlanUS   atomic.Int64 // microseconds; 0 until the first plan
	lastPlanAt   atomic.Int64 // unix nanos; 0 until the first plan

	met serveMetrics
}

// serveMetrics are the server's obs instruments (DESIGN.md §12). They live
// in the default registry, which is off outside daemons, so recording costs
// one atomic load per op in tests and examples.
type serveMetrics struct {
	observations *obs.Counter
	duplicates   *obs.Counter
	plans        *obs.Counter
	decisions    *obs.Counter
	transitions  *obs.Counter
	tracked      *obs.Gauge
	shards       *obs.Gauge
	planGen      *obs.Timer
}

func newServeMetrics() serveMetrics {
	reg := obs.Default()
	return serveMetrics{
		observations: reg.Counter("minicost_serve_observations_total",
			"Per-file daily observations ingested via /v1/observe."),
		duplicates: reg.Counter("minicost_serve_duplicate_observations_total",
			"Observe-batch entries that duplicated an earlier ID in the same batch (last entry wins)."),
		plans: reg.Counter("minicost_serve_plans_total",
			"Assignment plans generated via /v1/plan."),
		decisions: reg.Counter("minicost_serve_plan_decisions_total",
			"Files re-decided by generated plans (incremental plans skip clean files)."),
		transitions: reg.Counter("minicost_serve_transitions_total",
			"Tier transitions the generated plans asked the operator to execute."),
		tracked: reg.Gauge("minicost_serve_tracked_files",
			"Files currently tracked by the agent server."),
		shards: reg.Gauge("minicost_serve_shards",
			"Tracked-state partitions in the serving store."),
		planGen: reg.Timer("minicost_serve_plan_seconds",
			"Plan generation time: dirty snapshot, batched forward passes, merge."),
	}
}

// New builds a server around a trained agent with the default
// configuration. Files start in initial (usually hot).
func New(agent *rl.Agent, initial pricing.Tier) (*Server, error) {
	return NewWithConfig(agent, initial, Config{})
}

// NewWithConfig builds a server with an explicit shard count, body cap,
// and fan-out width.
func NewWithConfig(agent *rl.Agent, initial pricing.Tier, cfg Config) (*Server, error) {
	if agent == nil {
		return nil, errors.New("agentserver: nil agent")
	}
	if !initial.Valid() {
		return nil, errors.New("agentserver: invalid initial tier")
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 0 || shards > 1<<16 {
		return nil, fmt.Errorf("agentserver: shard count %d out of range", cfg.Shards)
	}
	shards = ceilPow2(shards)
	maxBytes := cfg.MaxObserveBytes
	if maxBytes == 0 {
		maxBytes = MaxObserveBytes
	}
	if maxBytes < 0 {
		return nil, fmt.Errorf("agentserver: negative observe body cap %d", cfg.MaxObserveBytes)
	}
	s := &Server{
		pool:            rl.NewReplicaPool(agent.Clone()),
		histLen:         agent.Net.HistLen,
		initial:         initial,
		workers:         cfg.Workers,
		shards:          make([]*shard, shards),
		shardMask:       uint32(shards - 1),
		maxObserveBytes: maxBytes,
		tap:             cfg.Tap,
		met:             newServeMetrics(),
	}
	for i := range s.shards {
		s.shards[i] = newShard(s.histLen)
	}
	s.met.shards.Set(float64(shards))
	// Derived gauges are computed at scrape time. Registered per server,
	// newest instance wins (one server per daemon).
	reg := obs.Default()
	reg.GaugeFunc("minicost_serve_plan_staleness_seconds",
		"Seconds since the last plan was generated (NaN before the first).",
		func() float64 {
			at := s.lastPlanAt.Load()
			if at == 0 {
				return math.NaN()
			}
			return time.Since(time.Unix(0, at)).Seconds()
		})
	reg.GaugeFunc("minicost_serve_dirty_files",
		"Files whose features changed since the last plan (pending re-decision).",
		func() float64 {
			n := 0
			for _, sh := range s.shards {
				n += sh.dirtyCount()
			}
			return float64(n)
		})
	return s, nil
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the store's partition count.
func (s *Server) Shards() int { return len(s.shards) }

// SetTap installs the observe tap after construction — minicostd builds the
// server first, then the online learner (which needs the server), then taps
// it. Call before the server starts taking traffic; the field is read
// without synchronization on the observe path.
func (s *Server) SetTap(tap ObserveTap) { s.tap = tap }

// UpdateAgent swaps in a fresh training snapshot. Pooled replicas of the
// previous snapshot are invalidated; in-flight plans finish on the weights
// they started with. Every tracked file is marked dirty — cached plan
// decisions were made by the previous weights — so the next incremental
// plan re-decides the full population. The new agent must keep the
// history-window length the observation state was built for.
func (s *Server) UpdateAgent(agent *rl.Agent) error {
	if agent == nil {
		return errors.New("agentserver: nil agent")
	}
	if agent.Net.HistLen != s.histLen {
		return fmt.Errorf("agentserver: snapshot hist window %d, server tracks %d", agent.Net.HistLen, s.histLen)
	}
	s.pool.Swap(agent.Clone())
	for _, sh := range s.shards {
		sh.markAllDirty()
	}
	return nil
}

// Observe ingests one day's batch. The batch is validated up front and
// rejected without mutation on any bad entry; ingestion then fans out
// across the shards (par.ForShards), each shard applying its own entries
// under its own lock — no global lock on the hot path. Duplicate IDs
// within the batch are last-wins and counted in the response.
func (s *Server) Observe(req *ObserveRequest) (*ObserveResponse, error) {
	n := len(req.Files)
	if n == 0 {
		return nil, errors.New("agentserver: empty observation batch")
	}
	for i := range req.Files {
		f := &req.Files[i]
		if f.ID == "" {
			return nil, errors.New("agentserver: observation without id")
		}
		if !(f.SizeGB > 0) || f.Reads < 0 || f.Writes < 0 {
			return nil, fmt.Errorf("agentserver: invalid observation for %q", f.ID)
		}
	}
	seq := s.batchSeq.Add(1)
	dups := 0
	if len(s.shards) == 1 {
		dups = s.shards[0].ingestBatch(req.Files, nil, seq, s.initial)
	} else {
		offsets, order := s.bucketByShard(req.Files)
		if n < ingestFanoutThreshold {
			for si := range s.shards {
				dups += s.shards[si].ingestBatch(req.Files, order[offsets[si]:offsets[si+1]], seq, s.initial)
			}
		} else {
			perShard := make([]int, len(s.shards))
			par.ForShards(len(s.shards), s.workers, func(si int) {
				perShard[si] = s.shards[si].ingestBatch(req.Files, order[offsets[si]:offsets[si+1]], seq, s.initial)
			})
			for _, d := range perShard {
				dups += d
			}
		}
	}
	day := s.day.Add(1)
	if s.tap != nil {
		// The tap runs inline after ingestion so a buffered batch is never
		// ahead of the serving store; the learner's tap is allocation-free
		// in steady state, keeping the observe hot path's alloc gate intact.
		s.tap.TapObserve(day, req.Files)
	}
	s.observations.Add(int64(n))
	tracked := s.tracked()
	s.met.observations.Add(float64(n))
	s.met.duplicates.Add(float64(dups))
	s.met.tracked.Set(float64(tracked))
	return &ObserveResponse{Accepted: n, Tracked: tracked, Duplicates: dups}, nil
}

// bucketByShard partitions batch positions by owning shard with a stable
// counting sort, so each shard sees its entries in batch order (the
// last-wins duplicate contract depends on that).
func (s *Server) bucketByShard(files []FileObservation) (offsets []int32, order []int32) {
	p := len(s.shards)
	n := len(files)
	home := make([]int32, n)
	counts := make([]int32, p+1)
	for i := range files {
		si := int32(shardOf(files[i].ID, s.shardMask))
		home[i] = si
		counts[si+1]++
	}
	for i := 1; i <= p; i++ {
		counts[i] += counts[i-1]
	}
	pos := make([]int32, p)
	for i := 1; i < p; i++ {
		pos[i] = counts[i]
	}
	order = make([]int32, n)
	for i := range home {
		order[pos[home[i]]] = int32(i)
		pos[home[i]]++
	}
	return counts, order
}

// tracked sums the shard populations without taking any lock.
func (s *Server) tracked() int {
	n := int64(0)
	for _, sh := range s.shards {
		n += sh.files.Load()
	}
	return int(n)
}

// BuildPlan produces the current assignment for every tracked file and
// commits the decisions as the files' current tiers (the operator is
// assumed to execute the plan, as System.Run does).
//
// Incremental contract: with full=false only files marked dirty since the
// last plan are re-decided; every other file serves the cached decision of
// the plan that last saw its features. Because DecideBatch is bitwise
// row-independent, the incremental plan equals the full re-plan bit for bit
// (TestIncrementalPlanEqualsFull pins this at shard counts 1, 4, and 16).
//
// Each shard plans on its own goroutine: dirty snapshot and feature
// packing under the shard lock, batched forward passes with it released,
// commit and ID-ordered entry building under the lock again, then a P-way
// merge produces the globally ID-sorted response.
func (s *Server) BuildPlan(full bool) (*PlanResponse, error) {
	sw := s.met.planGen.Start()
	start := time.Now()
	if s.tracked() == 0 {
		return nil, errors.New("agentserver: no observations yet")
	}
	day := int(s.day.Load())
	p := len(s.shards)
	parts := make([][]PlanEntry, p)
	decided := make([]int, p)
	transitions := make([]int, p)
	par.ForShards(p, s.workers, func(si int) {
		sh := s.shards[si]
		sh.planMu.Lock()
		m := sh.snapshotDecisions(full)
		if m > 0 {
			rep := s.pool.Get()
			sh.decide(rep.Agent, m)
			s.pool.Put(rep)
		}
		epoch, trans := sh.commit(m)
		parts[si] = sh.buildEntries(epoch)
		sh.planMu.Unlock()
		decided[si] = m
		transitions[si] = trans
	})
	resp := &PlanResponse{Day: day, Files: mergeEntries(parts), Full: full}
	for si := 0; si < p; si++ {
		resp.Decided += decided[si]
		resp.Transition += transitions[si]
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.plansServed.Add(1)
	s.lastPlanUS.Store(time.Since(start).Microseconds())
	s.lastPlanAt.Store(time.Now().UnixNano())
	s.met.plans.Inc()
	s.met.decisions.Add(float64(resp.Decided))
	s.met.transitions.Add(float64(resp.Transition))
	s.met.tracked.Set(float64(s.tracked()))
	sw.Stop()
	return resp, nil
}

// Stats snapshots counters and shard occupancy.
func (s *Server) Stats() *StatsResponse {
	resp := &StatsResponse{
		TrackedFiles: s.tracked(),
		Observations: s.observations.Load(),
		PlansServed:  s.plansServed.Load(),
		LastPlanMS:   float64(s.lastPlanUS.Load()) / 1000,
		HistLen:      s.histLen,
		Replicas:     s.pool.Created(),
		Shards:       len(s.shards),
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		files := len(sh.ids)
		dirty := len(sh.dirty)
		shDay := sh.day
		sh.mu.Unlock()
		resp.DirtyFiles += dirty
		if i == 0 || files > resp.MaxShardFiles {
			resp.MaxShardFiles = files
		}
		if i == 0 || files < resp.MinShardFiles {
			resp.MinShardFiles = files
		}
		if i == 0 || shDay > resp.MaxShardDay {
			resp.MaxShardDay = shDay
		}
		if i == 0 || shDay < resp.MinShardDay {
			resp.MinShardDay = shDay
		}
	}
	return resp
}

// Handler returns the HTTP mux:
//
//	POST /v1/observe        ingest one day's observations
//	GET  /v1/plan[?full=1]  current assignment plan (commits decisions);
//	                        full=1 forces re-deciding every file
//	GET  /v1/stats          counters and shard occupancy
//	GET  /v1/healthz        liveness
//
// Every endpoint is instrumented: request counts by endpoint and outcome
// (minicost_http_requests_total) and a latency histogram per endpoint
// (minicost_http_request_seconds).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observe", instrument("observe", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		// Reject declared non-JSON payloads up front with 415 rather than a
		// confusing decode error; an absent Content-Type is tolerated.
		if ct := r.Header.Get("Content-Type"); ct != "" && !isJSONContentType(ct) {
			httpError(w, http.StatusUnsupportedMediaType, "Content-Type must be application/json")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxObserveBytes)
		var req ObserveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("observation batch exceeds %d bytes", s.maxObserveBytes))
				return
			}
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
			return
		}
		resp, err := s.Observe(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/plan", instrument("plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		full := false
		switch v := r.URL.Query().Get("full"); v {
		case "", "0", "false":
		case "1", "true":
			full = true
		default:
			httpError(w, http.StatusBadRequest, "full must be 0 or 1")
			return
		}
		resp, err := s.BuildPlan(full)
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/stats", instrument("stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	}))
	mux.HandleFunc("/v1/healthz", instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// isJSONContentType accepts application/json with optional parameters
// (charset) and +json suffixed types.
func isJSONContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.ToLower(strings.TrimSpace(ct))
	return ct == "application/json" || strings.HasSuffix(ct, "+json")
}

// instrument wraps an endpoint handler with its request counters and
// latency histogram. Metrics are looked up once at mux construction, not
// per request.
func instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reg := obs.Default()
	ok := reg.Counter("minicost_http_requests_total",
		"HTTP requests served, by endpoint and outcome.",
		obs.L("endpoint", endpoint), obs.L("status", "ok"))
	failed := reg.Counter("minicost_http_requests_total",
		"HTTP requests served, by endpoint and outcome.",
		obs.L("endpoint", endpoint), obs.L("status", "error"))
	lat := reg.Timer("minicost_http_request_seconds",
		"HTTP request latency by endpoint.", obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		sw := lat.Start()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r)
		sw.Stop()
		if cw.code >= 400 {
			failed.Inc()
		} else {
			ok.Inc()
		}
	}
}

// codeWriter captures the response status for the outcome counters.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
