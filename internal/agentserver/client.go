package agentserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// Client is a thin typed client for the agent service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL (no trailing slash).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// Observe posts one day's observations.
func (c *Client) Observe(req *ObserveRequest) (*ObserveResponse, error) {
	var resp ObserveResponse
	if err := c.post("/v1/observe", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Plan fetches the current assignment plan.
func (c *Client) Plan() (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.get("/v1/plan", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PlanFull fetches a plan with every file re-decided (?full=1), bypassing
// the server's incremental dirty-set path.
func (c *Client) PlanFull() (*PlanResponse, error) {
	var resp PlanResponse
	if err := c.get("/v1/plan?full=1", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches service counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get("/v1/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) post(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("agentserver client: encode: %w", err)
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("agentserver client: %w", err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("agentserver client: %w", err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return fmt.Errorf("agentserver client: %s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("agentserver client: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("agentserver client: decode: %w", err)
	}
	return nil
}
