package obs

import (
	"testing"
)

// The disabled-registry benchmarks guard the subsystem's core contract:
// instrumentation on a default-off registry costs one atomic load per op,
// so wiring obs through hot paths leaves them unchanged until a daemon
// opts in. BenchmarkObsOverhead in agentserver guards the same contract at
// the endpoint level.

func benchRegistry(enabled bool) *Registry {
	r := NewRegistry()
	r.SetEnabled(enabled)
	return r
}

func BenchmarkDisabledCounterInc(b *testing.B) {
	c := benchRegistry(false).Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	c := benchRegistry(true).Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	h := benchRegistry(false).Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := benchRegistry(true).Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkEnabledHistogramObserveParallel(b *testing.B) {
	h := benchRegistry(true).Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.001)
		}
	})
}

func BenchmarkDisabledTimerStartStop(b *testing.B) {
	tm := benchRegistry(false).Timer("bench_t_seconds", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Start().Stop()
	}
}

// TestDisabledOverheadNearZero pins the contract numerically: a disabled
// counter increment must stay within a few nanoseconds (an atomic load and
// a branch; the generous bound absorbs CI-runner noise) and allocate
// nothing, and a disabled Timer.Start must skip the clock read.
func TestDisabledOverheadNearZero(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped under -short")
	}
	if raceEnabled {
		t.Skip("race detector instruments atomics; timings not representative")
	}
	res := testing.Benchmark(BenchmarkDisabledCounterInc)
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled counter allocates %d/op", res.AllocsPerOp())
	}
	if ns := res.NsPerOp(); ns > 50 {
		t.Fatalf("disabled counter costs %dns/op, want ~zero", ns)
	}
	res = testing.Benchmark(BenchmarkDisabledTimerStartStop)
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled timer allocates %d/op", res.AllocsPerOp())
	}
	if ns := res.NsPerOp(); ns > 50 {
		t.Fatalf("disabled timer costs %dns/op, want ~zero (no clock read)", ns)
	}
}
