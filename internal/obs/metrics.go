package obs

import (
	"math"
	"sync/atomic"
	"time"
	"unsafe"
)

// meta is the part every metric shares: identity plus the registry whose
// enabled flag gates recording.
type meta struct {
	mid   metricID
	mhelp string
	reg   *Registry
}

func (m *meta) id() metricID { return m.mid }
func (m *meta) help() string { return m.mhelp }

// on is the hot-path gate: one atomic load. Disabled registries make every
// metric op an early return.
func (m *meta) on() bool { return m.reg.on.Load() }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Counter is a monotonically increasing value (float64, Prometheus
// semantics: operation counts, accumulated work). Negative increments are a
// programming error and are dropped.
type Counter struct {
	meta
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by v (v < 0 is ignored).
func (c *Counter) Add(v float64) {
	if !c.on() || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) collect(s *Snapshot) { s.Counters[c.mid.String()] = c.Value() }

// Gauge is a value that can go up and down.
type Gauge struct {
	meta
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !g.on() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by v (negative v decrements).
func (g *Gauge) Add(v float64) {
	if !g.on() {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) collect(s *Snapshot) { s.Gauges[g.mid.String()] = g.Value() }

// gaugeFunc is a gauge computed by a callback at collection time.
type gaugeFunc struct {
	meta
	fn atomic.Pointer[func() float64]
}

func (g *gaugeFunc) collect(s *Snapshot) {
	v := math.NaN()
	if fn := g.fn.Load(); fn != nil {
		v = (*fn)()
	}
	s.Gauges[g.mid.String()] = v
}

// DefSecondsBuckets are the default duration buckets: 100 µs to 100 s,
// roughly ×2.5 per step — wide enough for sub-millisecond plan decisions
// and multi-second training epochs alike.
var DefSecondsBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// LinearBuckets returns n bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start·factor, ….
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// histShards is the fixed shard count. Sharding exists to keep concurrent
// writers (A3C workers, HTTP handlers) off one cache line; 16 covers the
// worker counts this repo runs with, and merge cost at scrape stays trivial.
const histShards = 16

// histShard is one writer lane, padded to its own cache lines so writers on
// different shards never false-share.
type histShard struct {
	count   atomic.Uint64
	sumBits atomic.Uint64
	buckets []atomic.Uint64 // len(bounds)+1, last is the +Inf overflow
	_       [64]byte
}

// Histogram is a fixed-bucket histogram with sharded atomic cells: Observe
// takes no lock — it picks a shard keyed off the calling goroutine's stack
// and does three atomic adds. Scrapes merge the shards.
type Histogram struct {
	meta
	bounds []float64
	shards [histShards]histShard
}

func newHistogram(m meta, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{meta: m, bounds: append([]float64(nil), bounds...)}
	for i := range h.shards {
		h.shards[i].buckets = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// shardIndex spreads concurrent writers across shards by hashing the
// caller's stack address: goroutines live on distinct stacks, so distinct
// goroutines land on distinct cache lines with high probability, while one
// goroutine keeps hitting its own warm shard. Purely a performance hint —
// any distribution is correct.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) % histShards
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if !h.on() {
		return
	}
	// Linear scan: bucket lists are short (≤ ~20) and almost always hit in
	// the first few entries for latency-shaped data.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	sh := &h.shards[shardIndex()]
	sh.buckets[i].Add(1)
	sh.count.Add(1)
	addFloat(&sh.sumBits, v)
}

// snapshotMerged merges the shards into one HistSnapshot.
func (h *Histogram) snapshotMerged() HistSnapshot {
	hs := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		hs.Count += sh.count.Load()
		hs.Sum += math.Float64frombits(sh.sumBits.Load())
		for j := range hs.Counts {
			hs.Counts[j] += sh.buckets[j].Load()
		}
	}
	return hs
}

func (h *Histogram) collect(s *Snapshot) { s.Histograms[h.mid.String()] = h.snapshotMerged() }

// HistSnapshot is a merged point-in-time view of a Histogram.
type HistSnapshot struct {
	Count  uint64
	Sum    float64
	Bounds []float64 // upper bounds; Counts has one extra +Inf slot
	Counts []uint64  // per-bucket (non-cumulative) observation counts
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation inside the bucket containing it — the same estimate
// Prometheus's histogram_quantile computes. Returns NaN on an empty
// histogram; values in the +Inf bucket report the highest finite bound.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank {
			if i >= len(h.Bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				if len(h.Bounds) == 0 {
					return math.NaN()
				}
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - (cum - float64(c))) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Timer records durations into a seconds histogram.
type Timer struct {
	h *Histogram
}

// Observe records d.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Start begins a stopwatch. On a disabled registry it skips the clock read
// entirely and Stop is a no-op, keeping the instrumented path free.
func (t *Timer) Start() Stopwatch {
	if !t.h.on() {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: time.Now()}
}

// Stopwatch is a value-type in-flight timing; zero value Stop is a no-op.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Stop records the elapsed time since Start.
func (s Stopwatch) Stop() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.start))
}

// Snapshot is a programmatic point-in-time view of a registry, keyed by the
// rendered sample id (`name` or `name{label="v"}`).
type Snapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Counter returns a counter's value (0 if absent).
func (s *Snapshot) Counter(id string) float64 { return s.Counters[id] }

// Gauge returns a gauge's value (0 if absent).
func (s *Snapshot) Gauge(id string) float64 { return s.Gauges[id] }

// Histogram returns a histogram snapshot (zero value if absent).
func (s *Snapshot) Histogram(id string) HistSnapshot { return s.Histograms[id] }

// CounterFamily sums every counter whose family name matches (labels
// ignored) — handy for asserting "some requests were counted" without
// enumerating label sets.
func (s *Snapshot) CounterFamily(name string) float64 {
	total := 0.0
	for id, v := range s.Counters {
		if familyOf(id) == name {
			total += v
		}
	}
	return total
}

func familyOf(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '{' {
			return id[:i]
		}
	}
	return id
}
