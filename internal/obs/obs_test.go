package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("test_level", "level")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
	// Lookup-or-create returns the same instance.
	if r.Counter("test_ops_total", "ops") != c {
		t.Fatal("counter re-registration returned a new instance")
	}
	if r.Gauge("test_level", "level") != g {
		t.Fatal("gauge re-registration returned a new instance")
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(false)
	c := r.Counter("test_ops_total", "")
	g := r.Gauge("test_level", "")
	h := r.Histogram("test_h", "", LinearBuckets(1, 1, 4))
	tm := r.Timer("test_t_seconds", "")
	c.Inc()
	g.Set(5)
	h.Observe(2)
	sw := tm.Start()
	sw.Stop()
	tm.Observe(time.Second)
	s := r.Snapshot()
	if s.Counter("test_ops_total") != 0 || s.Gauge("test_level") != 0 {
		t.Fatalf("disabled registry recorded: %+v", s)
	}
	if s.Histogram("test_h").Count != 0 || s.Histogram("test_t_seconds").Count != 0 {
		t.Fatal("disabled histogram recorded")
	}
	// Re-enabled: ops record again.
	r.SetEnabled(true)
	c.Inc()
	if r.Snapshot().Counter("test_ops_total") != 1 {
		t.Fatal("re-enabled counter did not record")
	}
}

func TestLabelsAndIDs(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests", L("endpoint", "plan"))
	b := r.Counter("reqs_total", "requests", L("endpoint", "observe"))
	if a == b {
		t.Fatal("distinct label sets shared an instance")
	}
	a.Add(2)
	b.Inc()
	s := r.Snapshot()
	if s.Counter(`reqs_total{endpoint="plan"}`) != 2 {
		t.Fatalf("labeled counter missing: %+v", s.Counters)
	}
	if got := s.CounterFamily("reqs_total"); got != 3 {
		t.Fatalf("family sum = %v, want 3", got)
	}
	// Label values escape; label order normalizes.
	r.Counter("esc_total", "", L("b", `x"y\z`), L("a", "1")).Inc()
	if s := r.Snapshot(); s.Counter(`esc_total{a="1",b="x\"y\\z"}`) != 1 {
		t.Fatalf("escaped id missing: %+v", s.Counters)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4, 8})
	for i := 0; i < 96; i++ {
		h.Observe(float64(i%8) + 0.5) // uniform over {0.5, 1.5, …, 7.5}
	}
	hs := r.Snapshot().Histogram("lat_seconds")
	if hs.Count != 96 {
		t.Fatalf("count = %d", hs.Count)
	}
	if want := 96 * 4.0; math.Abs(hs.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", hs.Sum, want)
	}
	q50 := hs.Quantile(0.5)
	if q50 < 3 || q50 > 5 {
		t.Fatalf("p50 = %v, want ≈4", q50)
	}
	if q := hs.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want 8", q)
	}
	if !math.IsNaN((HistSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	// Overflow values clamp to the top finite bound.
	h2 := r.Histogram("over_seconds", "", []float64{1})
	h2.Observe(100)
	if q := r.Snapshot().Histogram("over_seconds").Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile = %v, want 1", q)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("derived", "", func() float64 { return v })
	if got := r.Snapshot().Gauge("derived"); got != 1.5 {
		t.Fatalf("gauge func = %v", got)
	}
	// Re-registration replaces the callback (newest owner wins).
	r.GaugeFunc("derived", "", func() float64 { return 7 })
	if got := r.Snapshot().Gauge("derived"); got != 7 {
		t.Fatalf("replaced gauge func = %v", got)
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op_seconds", "")
	tm.Observe(250 * time.Millisecond)
	sw := tm.Start()
	sw.Stop()
	hs := r.Snapshot().Histogram("op_seconds")
	if hs.Count != 2 {
		t.Fatalf("timer count = %d", hs.Count)
	}
	if hs.Sum < 0.25 || hs.Sum > 1 {
		t.Fatalf("timer sum = %v", hs.Sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("minicost_reqs_total", "requests served", L("endpoint", "plan")).Add(3)
	r.Counter("minicost_reqs_total", "requests served", L("endpoint", "observe")).Add(1)
	r.Gauge("minicost_files", "tracked files").Set(42)
	h := r.Histogram("minicost_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("minicost_stale_seconds", "staleness", func() float64 { return math.NaN() })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP minicost_reqs_total requests served\n",
		"# TYPE minicost_reqs_total counter\n",
		`minicost_reqs_total{endpoint="observe"} 1` + "\n",
		`minicost_reqs_total{endpoint="plan"} 3` + "\n",
		"# TYPE minicost_files gauge\n",
		"minicost_files 42\n",
		"# TYPE minicost_lat_seconds histogram\n",
		`minicost_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`minicost_lat_seconds_bucket{le="1"} 2` + "\n",
		`minicost_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"minicost_lat_seconds_sum 5.55\n",
		"minicost_lat_seconds_count 3\n",
		"minicost_stale_seconds NaN\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with two children.
	if n := strings.Count(out, "# TYPE minicost_reqs_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestConcurrentWritersAndScrapes is the -race guard: parallel counter,
// gauge, and histogram writers against concurrent Snapshot and text scrapes.
func TestConcurrentWritersAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	r.GaugeFunc("gf", "", func() float64 { return c.Value() })

	const writers = 8
	const perWriter = 2000
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	// Concurrent scrapers: Snapshot and text exposition while writes fly.
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if snap.Histogram("h_seconds").Count > writers*perWriter {
					t.Error("snapshot overcounted")
					return
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				// Late registrations must be safe mid-scrape too.
				if i%500 == 0 {
					r.Counter("late_total", "", L("w", string(rune('a'+w)))).Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	s := r.Snapshot()
	if got := s.Counter("c_total"); got != writers*perWriter {
		t.Fatalf("counter = %v, want %d", got, writers*perWriter)
	}
	if got := s.Gauge("g"); got != writers*perWriter {
		t.Fatalf("gauge = %v, want %d", got, writers*perWriter)
	}
	if got := s.Histogram("h_seconds").Count; got != writers*perWriter {
		t.Fatalf("histogram count = %v, want %d", got, writers*perWriter)
	}
}
