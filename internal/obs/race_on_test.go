//go:build race

package obs

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation inflates atomic-op timings.
const raceEnabled = true
