// Package obs is the repo's zero-dependency metrics and telemetry spine:
// atomic Counter and Gauge, a sharded lock-cheap Histogram with quantile
// summaries, and a Timer, all behind a named Registry with a Prometheus
// text-format exposition handler (Handler) and a programmatic Snapshot API
// so tests assert on metrics without scraping text.
//
// The package-global Default registry starts DISABLED: every metric op on a
// disabled registry is a single atomic bool load and an early return, so
// instrumented hot paths (serving, training, simulation) pay nothing until
// a daemon opts in with Default().SetEnabled(true). cmd/minicostd does; the
// experiment and bench binaries do not. BenchmarkDisabled* in obs and
// BenchmarkObsOverhead in agentserver guard that contract.
//
// Naming scheme (DESIGN.md §12): minicost_<subsystem>_<what>[_<unit>] with
// subsystems http, serve, train, eval, sim. Counters end in _total,
// durations are _seconds, money is _dollars; constant labels pick out a
// family member (e.g. minicost_http_requests_total{endpoint="plan"}).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric at creation.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is what every concrete type contributes to a collection pass.
type metric interface {
	id() metricID
	help() string
	// collect appends the metric's current samples to the snapshot.
	collect(s *Snapshot)
}

// metricID keys a registry entry: family name plus the rendered label set.
type metricID struct {
	name   string
	labels string // pre-rendered `k="v",k2="v2"` (sorted), "" when unlabeled
}

// String renders the exposition sample name: name or name{labels}.
func (id metricID) String() string {
	if id.labels == "" {
		return id.name
	}
	return id.name + "{" + id.labels + "}"
}

// Registry is a named collection of metrics. The zero value is not usable;
// create with NewRegistry or use the process-wide Default.
type Registry struct {
	on atomic.Bool

	mu      sync.Mutex
	metrics map[metricID]metric
	order   []metricID // registration order, families kept contiguous at scrape
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{metrics: make(map[metricID]metric)}
	r.on.Store(true)
	return r
}

var defaultRegistry = func() *Registry {
	r := NewRegistry()
	r.on.Store(false) // default-off: hot paths pay nothing until a daemon opts in
	return r
}()

// Default returns the process-wide registry every built-in instrumentation
// point records into. It starts disabled.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns recording on or off. Disabled metric ops return after one
// atomic load; collection (Snapshot, Handler) works either way.
func (r *Registry) SetEnabled(on bool) { r.on.Store(on) }

// Enabled reports whether metric ops record.
func (r *Registry) Enabled() bool { return r.on.Load() }

// renderLabels validates and renders a label set sorted by key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := ""
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return out
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func escapeLabelValue(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// lookup returns the existing metric for id or registers the one built by
// mk. Re-registering an id as a different concrete kind panics: that is a
// programming error the first scrape would otherwise hide.
func (r *Registry) lookup(name, help string, labels []Label, mk func(id metricID) metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	id := metricID{name: name, labels: renderLabels(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		return m
	}
	m := mk(id)
	r.metrics[id] = m
	r.order = append(r.order, id)
	return m
}

// Counter returns (registering on first use) the named monotonic counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, help, labels, func(id metricID) metric {
		return &Counter{meta: meta{mid: id, mhelp: help, reg: r}}
	})
	c, ok := m.(*Counter)
	if !ok {
		panic("obs: " + name + " already registered as a different kind")
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.lookup(name, help, labels, func(id metricID) metric {
		return &Gauge{meta: meta{mid: id, mhelp: help, reg: r}}
	})
	g, ok := m.(*Gauge)
	if !ok {
		panic("obs: " + name + " already registered as a different kind")
	}
	return g
}

// GaugeFunc registers (or re-points) a gauge whose value is computed by fn
// at collection time — for derived values like staleness or rates. fn must
// be safe to call from any goroutine. Re-registering the same id replaces
// the callback: the newest owner (e.g. the latest trainer) wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.lookup(name, help, labels, func(id metricID) metric {
		return &gaugeFunc{meta: meta{mid: id, mhelp: help, reg: r}}
	})
	gf, ok := m.(*gaugeFunc)
	if !ok {
		panic("obs: " + name + " already registered as a different kind")
	}
	gf.fn.Store(&fn)
}

// Histogram returns (registering on first use) the named histogram with the
// given upper bucket bounds (strictly increasing; +Inf is implicit). A nil
// bounds slice uses DefSecondsBuckets. Bounds are fixed by the first
// registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.lookup(name, help, labels, func(id metricID) metric {
		return newHistogram(meta{mid: id, mhelp: help, reg: r}, bounds)
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic("obs: " + name + " already registered as a different kind")
	}
	return h
}

// Timer returns (registering on first use) a duration histogram in seconds.
func (r *Registry) Timer(name, help string, labels ...Label) *Timer {
	return &Timer{h: r.Histogram(name, help, DefSecondsBuckets, labels...)}
}

// collectLocked snapshots every metric in registration order.
func (r *Registry) snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	r.mu.Lock()
	ids := append([]metricID(nil), r.order...)
	ms := make([]metric, len(ids))
	for i, id := range ids {
		ms[i] = r.metrics[id]
	}
	r.mu.Unlock()
	// Collect outside the registry lock: GaugeFunc callbacks may take
	// arbitrary locks of their own (e.g. the agentserver state mutex), and
	// holding r.mu across them invites ordering deadlocks.
	for _, m := range ms {
		m.collect(s)
	}
	return s
}

// Snapshot returns the current value of every registered metric. It is safe
// to call concurrently with metric writes (values are read atomically per
// cell; a histogram's count/sum/buckets are each atomically read but not
// mutually sequenced, so a concurrent Observe may appear in one and not yet
// the others — quantile math tolerates that).
func (r *Registry) Snapshot() *Snapshot { return r.snapshot() }
