package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// This file renders a registry in the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers once per family, then one
// sample line per value; histograms expand to cumulative `_bucket{le=…}`
// series plus `_sum` and `_count`.

// WritePrometheus writes the registry's current state to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	ids := append([]metricID(nil), r.order...)
	ms := make([]metric, len(ids))
	helps := make([]string, len(ids))
	for i, id := range ids {
		ms[i] = r.metrics[id]
		helps[i] = r.metrics[id].help()
	}
	r.mu.Unlock()

	// Group by family: the format requires all samples of one family to be
	// contiguous under a single TYPE header. Registration order decides
	// family order; labels sort within a family for stable output.
	type member struct {
		m    metric
		help string
	}
	families := map[string][]member{}
	var famOrder []string
	for i, m := range ms {
		name := m.id().name
		if _, ok := families[name]; !ok {
			famOrder = append(famOrder, name)
		}
		families[name] = append(families[name], member{m, helps[i]})
	}

	for _, name := range famOrder {
		members := families[name]
		sort.Slice(members, func(i, j int) bool {
			return members[i].m.id().labels < members[j].m.id().labels
		})
		if h := members[0].help; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typeOf(members[0].m))
		for _, mem := range members {
			writeMetric(bw, mem.m)
		}
	}
	return bw.Flush()
}

func typeOf(m metric) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge, *gaugeFunc:
		return "gauge"
	case *Histogram:
		return "histogram"
	default:
		return "untyped"
	}
}

func writeMetric(w io.Writer, m metric) {
	id := m.id()
	switch v := m.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s %s\n", id, formatValue(v.Value()))
	case *Gauge:
		fmt.Fprintf(w, "%s %s\n", id, formatValue(v.Value()))
	case *gaugeFunc:
		val := math.NaN()
		if fn := v.fn.Load(); fn != nil {
			val = (*fn)()
		}
		fmt.Fprintf(w, "%s %s\n", id, formatValue(val))
	case *Histogram:
		hs := v.snapshotMerged()
		cum := uint64(0)
		for i, c := range hs.Counts {
			cum += c
			le := "+Inf"
			if i < len(hs.Bounds) {
				le = formatValue(hs.Bounds[i])
			}
			fmt.Fprintf(w, "%s %d\n", sampleID(id.name+"_bucket", id.labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(w, "%s %s\n", sampleID(id.name+"_sum", id.labels, ""), formatValue(hs.Sum))
		fmt.Fprintf(w, "%s %d\n", sampleID(id.name+"_count", id.labels, ""), hs.Count)
	}
}

// sampleID renders name{labels,extra} with empty parts elided.
func sampleID(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler returns the Default registry's exposition handler.
func Handler() http.Handler { return Default().Handler() }
