// Package par provides small, dependency-free parallelism helpers used
// throughout the MiniCost codebase: a bounded parallel-for, a chunked
// variant for cache-friendly sharding, parallel map/reduce, and a reusable
// worker pool.
//
// All helpers are deterministic in their results (order of side effects is
// not specified, but every index is visited exactly once) and degrade to a
// plain serial loop when the worker count is 1 or the input is small.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"minicost/internal/obs"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0.
// It is GOMAXPROCS at call time, never less than 1.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// serialThreshold is the input size below which parallel helpers run the
// loop inline; spawning goroutines for a handful of items costs more than
// it saves.
const serialThreshold = 64

// For runs fn(i) for every i in [0, n) using at most workers goroutines.
// workers <= 0 selects DefaultWorkers(). It blocks until all iterations
// complete. Iterations are distributed dynamically (atomic counter), which
// balances uneven per-item work at the cost of one atomic op per item.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 || n < serialThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForShards runs fn(s) for every shard s in [0, n) using at most workers
// goroutines. Unlike For, it never degrades to a serial loop on small n:
// shard counts are small by construction — each shard is a coarse unit of
// work guarding its own state (a lock, a partition of a store) — so the
// fan-out must happen even for n of 4 or 16, exactly the range For's
// serial threshold would swallow. Shards are handed out dynamically
// (atomic counter), so uneven shard occupancy still balances.
//
// workers <= 0 selects DefaultWorkers(). It blocks until every shard
// completes.
func ForShards(n, workers int, fn func(s int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for s := 0; s < n; s++ {
			fn(s)
		}
		return
	}
	rec := obs.Default().Enabled()
	if rec {
		defer fanOut(workers)()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= n {
					return
				}
				if rec {
					timedShard(fn, s)
				} else {
					fn(s)
				}
			}
		}()
	}
	wg.Wait()
}

// ForChunked runs fn(lo, hi) over contiguous half-open chunks [lo, hi) that
// partition [0, n). Each chunk is processed by one goroutine; chunks are
// sized n/workers (±1). Use it when per-item work is tiny and uniform so the
// atomic counter of For would dominate, e.g. vector arithmetic.
func ForChunked(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < serialThreshold {
		fn(0, n)
		return
	}
	rec := obs.Default().Enabled()
	if rec {
		defer fanOut(workers)()
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			if rec {
				timedChunk(fn, lo, hi)
			} else {
				fn(lo, hi)
			}
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// ForBatched runs fn(lo, hi) over contiguous half-open chunks [lo, hi) of at
// most batch items that partition [0, n), using at most workers goroutines.
// Chunks are handed out dynamically (atomic counter over chunk indices), so
// uneven per-chunk work still balances, but — unlike For — every call of fn
// sees a stable contiguous index range. Batched steppers rely on this: they
// pack per-item state for [lo, hi) into one matrix, so the chunk must be a
// contiguous slice of the index space, never an arbitrary subset.
//
// workers <= 0 selects DefaultWorkers(); batch <= 0 panics. It blocks until
// every chunk completes.
func ForBatched(n, batch, workers int, fn func(lo, hi int)) {
	if batch <= 0 {
		panic("par: ForBatched batch must be positive")
	}
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	chunks := (n + batch - 1) / batch
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		for c := 0; c < chunks; c++ {
			lo := c * batch
			hi := lo + batch
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	rec := obs.Default().Enabled()
	if rec {
		defer fanOut(workers)()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * batch
				hi := lo + batch
				if hi > n {
					hi = n
				}
				if rec {
					timedChunk(fn, lo, hi)
				} else {
					fn(lo, hi)
				}
			}
		}()
	}
	wg.Wait()
}

// MapReduce computes a reduction over [0, n): each index i produces
// mapFn(i), chunk-local partials are combined with combine, and the final
// value folds every chunk partial into init (in unspecified chunk order, so
// combine must be associative and commutative for a deterministic result).
func MapReduce[T any](n, workers int, init T, mapFn func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return init
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < serialThreshold {
		acc := init
		for i := 0; i < n; i++ {
			acc = combine(acc, mapFn(i))
		}
		return acc
	}
	partials := make([]T, workers)
	ForChunked(n, workers, func(lo, hi int) {
		// Identify which worker slot this chunk belongs to by its lower
		// bound; chunk layout matches ForChunked's deterministic split.
		w := chunkIndex(n, workers, lo)
		acc := mapFn(lo)
		for i := lo + 1; i < hi; i++ {
			acc = combine(acc, mapFn(i))
		}
		partials[w] = acc
	})
	acc := init
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}

// chunkIndex inverts ForChunked's partitioning: it returns the worker index
// whose chunk starts at lo.
func chunkIndex(n, workers, lo int) int {
	chunk := n / workers
	rem := n % workers
	// Workers [0, rem) own chunk+1 items, the rest own chunk items.
	if chunk == 0 {
		return lo
	}
	big := rem * (chunk + 1)
	if lo < big {
		return lo / (chunk + 1)
	}
	return rem + (lo-big)/chunk
}

// SumFloat64 is a convenience parallel sum of fn(i) over [0, n).
func SumFloat64(n, workers int, fn func(i int) float64) float64 {
	return MapReduce(n, workers, 0, fn, func(a, b float64) float64 { return a + b })
}

// Pool is a fixed-size worker pool for submitting independent tasks.
// Unlike For, it supports heterogeneous tasks submitted over time.
// The zero value is not usable; create with NewPool, release with Close.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	done  sync.WaitGroup
}

// NewPool starts workers goroutines consuming submitted tasks.
// workers <= 0 selects DefaultWorkers().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{tasks: make(chan func(), workers*2)}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.done.Done()
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Submit enqueues a task. It may block if the pool's queue is full.
// Submitting after Close panics.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every task submitted so far has completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and stops the workers.
func (p *Pool) Close() {
	p.wg.Wait()
	close(p.tasks)
	p.done.Wait()
}
