package par

import (
	"sync"
	"testing"
)

// coverBatched runs ForBatched and records, per index, how often it was
// visited and whether its chunk was well-formed.
func coverBatched(t *testing.T, n, batch, workers int) []int {
	t.Helper()
	visits := make([]int, n)
	var mu sync.Mutex
	ForBatched(n, batch, workers, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("ForBatched(n=%d batch=%d): bad chunk [%d,%d)", n, batch, lo, hi)
			return
		}
		if hi-lo > batch {
			t.Errorf("ForBatched(n=%d batch=%d): oversized chunk [%d,%d)", n, batch, lo, hi)
		}
		if lo%batch != 0 {
			t.Errorf("ForBatched(n=%d batch=%d): chunk not aligned at %d", n, batch, lo)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			visits[i]++
		}
		mu.Unlock()
	})
	return visits
}

func TestForBatchedExactCoverage(t *testing.T) {
	cases := []struct{ n, batch, workers int }{
		{1, 1, 1},
		{1, 7, 4},
		{7, 3, 2},   // ragged final chunk
		{64, 64, 8}, // single full chunk
		{65, 64, 8}, // one full chunk + a 1-item tail
		{1000, 17, 0},
		{128, 1, 4}, // chunk per item
		{300, 256, 3},
	}
	for _, c := range cases {
		visits := coverBatched(t, c.n, c.batch, c.workers)
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("ForBatched(n=%d batch=%d workers=%d): index %d visited %d times",
					c.n, c.batch, c.workers, i, v)
			}
		}
	}
}

func TestForBatchedDegenerate(t *testing.T) {
	calls := 0
	ForBatched(0, 8, 4, func(lo, hi int) { calls++ })
	ForBatched(-3, 8, 4, func(lo, hi int) { calls++ })
	if calls != 0 {
		t.Fatalf("ForBatched on empty range called fn %d times", calls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForBatched with batch<=0 did not panic")
		}
	}()
	ForBatched(4, 0, 1, func(lo, hi int) {})
}

func TestForBatchedSerialIsOrdered(t *testing.T) {
	// With workers=1 chunks must arrive in index order (the serial fallback).
	var chunks [][2]int
	ForBatched(10, 4, 1, func(lo, hi int) { chunks = append(chunks, [2]int{lo, hi}) })
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if len(chunks) != len(want) {
		t.Fatalf("got %v want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("got %v want %v", chunks, want)
		}
	}
}
