package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"minicost/internal/obs"
)

// coverBatched runs ForBatched and records, per index, how often it was
// visited and whether its chunk was well-formed.
func coverBatched(t *testing.T, n, batch, workers int) []int {
	t.Helper()
	visits := make([]int, n)
	var mu sync.Mutex
	ForBatched(n, batch, workers, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("ForBatched(n=%d batch=%d): bad chunk [%d,%d)", n, batch, lo, hi)
			return
		}
		if hi-lo > batch {
			t.Errorf("ForBatched(n=%d batch=%d): oversized chunk [%d,%d)", n, batch, lo, hi)
		}
		if lo%batch != 0 {
			t.Errorf("ForBatched(n=%d batch=%d): chunk not aligned at %d", n, batch, lo)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			visits[i]++
		}
		mu.Unlock()
	})
	return visits
}

func TestForBatchedExactCoverage(t *testing.T) {
	cases := []struct{ n, batch, workers int }{
		{1, 1, 1},
		{1, 7, 4},
		{7, 3, 2},   // ragged final chunk
		{64, 64, 8}, // single full chunk
		{65, 64, 8}, // one full chunk + a 1-item tail
		{1000, 17, 0},
		{128, 1, 4}, // chunk per item
		{300, 256, 3},
	}
	for _, c := range cases {
		visits := coverBatched(t, c.n, c.batch, c.workers)
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("ForBatched(n=%d batch=%d workers=%d): index %d visited %d times",
					c.n, c.batch, c.workers, i, v)
			}
		}
	}
}

func TestForBatchedDegenerate(t *testing.T) {
	calls := 0
	ForBatched(0, 8, 4, func(lo, hi int) { calls++ })
	ForBatched(-3, 8, 4, func(lo, hi int) { calls++ })
	if calls != 0 {
		t.Fatalf("ForBatched on empty range called fn %d times", calls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForBatched with batch<=0 did not panic")
		}
	}()
	ForBatched(4, 0, 1, func(lo, hi int) {})
}

func TestForBatchedSerialIsOrdered(t *testing.T) {
	// With workers=1 chunks must arrive in index order (the serial fallback).
	var chunks [][2]int
	ForBatched(10, 4, 1, func(lo, hi int) { chunks = append(chunks, [2]int{lo, hi}) })
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if len(chunks) != len(want) {
		t.Fatalf("got %v want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("got %v want %v", chunks, want)
		}
	}
}

// TestForBatchedClampsWorkersToChunks is the fan-out-bound regression test:
// asking for far more workers than there are chunks must spawn at most one
// goroutine per chunk. Every chunk blocks inside fn until all are in
// flight, a sampler reads the process goroutine count at that moment, and
// the count may exceed the pre-call baseline by only chunks + the sampler.
func TestForBatchedClampsWorkersToChunks(t *testing.T) {
	const chunks = 4
	baseline := runtime.NumGoroutine()
	var arrived atomic.Int32
	release := make(chan struct{})
	sampled := make(chan int, 1)
	go func() {
		for arrived.Load() < chunks {
			runtime.Gosched()
		}
		sampled <- runtime.NumGoroutine()
		close(release)
	}()
	var visited [chunks]atomic.Int32
	ForBatched(chunks, 1, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			visited[i].Add(1)
		}
		arrived.Add(1)
		<-release
	})
	got := <-sampled
	// baseline + chunks workers + the sampler itself, plus one of slack for
	// unrelated runtime goroutines.
	if limit := baseline + chunks + 2; got > limit {
		t.Fatalf("goroutines with %d chunks in flight = %d, want <= %d (workers not clamped to chunks)", chunks, got, limit)
	}
	for i := range visited {
		if v := visited[i].Load(); v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestFanOutMetrics pins the obs instrumentation: with the default registry
// enabled, a parallel ForBatched advances the per-chunk latency histogram
// and returns the active-workers gauge to its starting value; disabled, the
// instruments stay untouched.
func TestFanOutMetrics(t *testing.T) {
	reg := obs.Default()
	was := reg.Enabled()
	t.Cleanup(func() { reg.SetEnabled(was) })

	const n = 1 << 10
	work := func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		_ = s
	}

	reg.SetEnabled(false)
	before := reg.Snapshot()
	ForBatched(n, 64, 4, work)
	ForChunked(n, 4, work)
	mid := reg.Snapshot()
	if got := int64(mid.Histogram("minicost_par_chunk_seconds").Count) - int64(before.Histogram("minicost_par_chunk_seconds").Count); got != 0 {
		t.Fatalf("disabled registry recorded %d chunks", got)
	}

	reg.SetEnabled(true)
	ForBatched(n, 64, 4, work)
	ForChunked(n, 4, work)
	after := reg.Snapshot()
	wantChunks := int64(n/64 + 4) // ForBatched chunks + ForChunked's one per worker
	if got := int64(after.Histogram("minicost_par_chunk_seconds").Count) - int64(mid.Histogram("minicost_par_chunk_seconds").Count); got != wantChunks {
		t.Fatalf("chunk histogram advanced by %d, want %d", got, wantChunks)
	}
	if g := after.Gauge("minicost_par_active_workers"); g != 0 {
		t.Fatalf("active-workers gauge = %v after fan-outs drained, want 0", g)
	}
}
