package par

import (
	"time"

	"minicost/internal/obs"
)

// parMetrics are the fan-out instruments (DESIGN.md §12): a gauge tracking
// how many goroutines are currently executing inside par fan-outs — the
// observable behind worker-scaling investigations ("is the machine actually
// fanned out right now?") — and a per-chunk latency histogram that exposes
// chunk-size imbalance (a wide spread means stragglers dominate the
// barrier). They live in the default registry, which is off outside
// daemons; the serial branches of every helper never touch them, and the
// parallel branches check Enabled() once per call, so hot kernels pay one
// atomic load when disabled.
type parMetrics struct {
	active *obs.Gauge
	chunk  *obs.Histogram
}

var parMet = func() parMetrics {
	reg := obs.Default()
	return parMetrics{
		active: reg.Gauge("minicost_par_active_workers",
			"Goroutines currently executing inside par fan-outs."),
		chunk: reg.Histogram("minicost_par_chunk_seconds",
			"Per-chunk execution latency inside parallel fan-outs.",
			obs.ExpBuckets(1e-6, 4, 12)),
	}
}()

// fanOut records a fan-out of workers goroutines starting; the returned
// function records it draining. Callers hold the record across the whole
// parallel section.
func fanOut(workers int) func() {
	parMet.active.Add(float64(workers))
	return func() { parMet.active.Add(-float64(workers)) }
}

// timedChunk runs fn(lo, hi) and records its wall time.
func timedChunk(fn func(lo, hi int), lo, hi int) {
	t0 := time.Now()
	fn(lo, hi)
	parMet.chunk.Observe(time.Since(t0).Seconds())
}

// timedShard runs fn(s) and records its wall time on the chunk histogram —
// one shard is one chunk of a ForShards fan-out.
func timedShard(fn func(s int), s int) {
	t0 := time.Now()
	fn(s)
	parMet.chunk.Observe(time.Since(t0).Seconds())
}
