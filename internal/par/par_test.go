package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 65, 1000} {
		for _, w := range []int{-1, 1, 2, 3, 16, 2000} {
			seen := make([]atomic.Int32, max(n, 1))
			For(n, w, func(i int) { seen[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d w=%d index %d visited %d times", n, w, i, got)
				}
			}
		}
	}
}

func TestForShardsVisitsEveryShardOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 16, 63, 200} {
		for _, w := range []int{-1, 1, 2, 16, 500} {
			seen := make([]atomic.Int32, max(n, 1))
			ForShards(n, w, func(s int) { seen[s].Add(1) })
			for s := 0; s < n; s++ {
				if got := seen[s].Load(); got != 1 {
					t.Fatalf("n=%d w=%d shard %d visited %d times", n, w, s, got)
				}
			}
		}
	}
}

// TestForShardsFansOutSmallN pins the property ForShards exists for: a
// shard count far below For's serial threshold still runs on multiple
// goroutines when workers allow it.
func TestForShardsFansOutSmallN(t *testing.T) {
	const n = 8
	var (
		start   = make(chan struct{})
		release sync.Once
		arrived atomic.Int32
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ForShards(n, n, func(s int) {
			// Every shard blocks until at least two goroutines are inside the
			// fan-out: impossible on a serial degrade.
			if arrived.Add(1) >= 2 {
				release.Do(func() { close(start) })
			}
			<-start
		})
	}()
	<-done
	if arrived.Load() != n {
		t.Fatalf("ForShards visited %d shards, want %d", arrived.Load(), n)
	}
}

func TestForChunkedPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100, 1023} {
		for _, w := range []int{1, 2, 7, 64, 5000} {
			seen := make([]atomic.Int32, max(n, 1))
			ForChunked(n, w, func(lo, hi int) {
				if lo >= hi && n > 0 {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d w=%d index %d covered %d times", n, w, i, got)
				}
			}
		}
	}
}

func TestChunkIndexInvertsPartition(t *testing.T) {
	for _, n := range []int{64, 100, 1023, 4096} {
		for _, workers := range []int{2, 3, 7, 64} {
			if workers > n {
				continue
			}
			chunk := n / workers
			rem := n % workers
			lo := 0
			for w := 0; w < workers; w++ {
				hi := lo + chunk
				if w < rem {
					hi++
				}
				if got := chunkIndex(n, workers, lo); got != w {
					t.Fatalf("n=%d workers=%d lo=%d: chunkIndex=%d want %d", n, workers, lo, got, w)
				}
				lo = hi
			}
		}
	}
}

func TestMapReduceMatchesSerialSum(t *testing.T) {
	f := func(seed int64, nRaw uint16, wRaw uint8) bool {
		n := int(nRaw % 2000)
		w := int(wRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = rng.Float64()
			want += vals[i]
		}
		got := SumFloat64(n, w, func(i int) float64 { return vals[i] })
		return abs(got-want) < 1e-9*float64(n+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, 4, 42, func(i int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty reduce = %d, want init 42", got)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for i := 0; i < 500; i++ {
		i := i
		p.Submit(func() { total.Add(int64(i)) })
	}
	p.Wait()
	if got := total.Load(); got != 500*499/2 {
		t.Fatalf("pool sum = %d, want %d", got, 500*499/2)
	}
	// Pool must be reusable after Wait.
	p.Submit(func() { total.Add(1) })
	p.Wait()
	if got := total.Load(); got != 500*499/2+1 {
		t.Fatalf("pool reuse sum = %d", got)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be >= 1")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkForSerial(b *testing.B) {
	sink := make([]float64, 1<<14)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		For(len(sink), 1, func(i int) { sink[i] = float64(i) * 1.5 })
	}
}

func BenchmarkForParallel(b *testing.B) {
	sink := make([]float64, 1<<14)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		For(len(sink), 0, func(i int) { sink[i] = float64(i) * 1.5 })
	}
}

func BenchmarkForChunkedParallel(b *testing.B) {
	sink := make([]float64, 1<<14)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ForChunked(len(sink), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sink[i] = float64(i) * 1.5
			}
		})
	}
}
