// Package multidc extends MiniCost to workloads spread across multiple
// datacenters / CSPs, each with its own pricing policy — the paper's §4.1
// setting ("data files are distributed among one or multiple CSPs'
// datacenters, denoted by the set Ds; each datacenter has its own pricing
// policy") and its §4.2.1 remark that the formulation extends to more
// providers.
//
// The design exploits per-file separability: a trace is partitioned by each
// file's datacenter, every partition is evaluated under its own cost model,
// and the bills add. Any policy.Assigner works unchanged per partition.
package multidc

import (
	"errors"
	"fmt"
	"sort"

	"minicost/internal/costmodel"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Deployment maps datacenter IDs to price schedules. Files whose
// FileMeta.Datacenter is empty use Default.
type Deployment struct {
	catalog *pricing.Catalog
	models  map[string]*costmodel.Model
	// Default is the datacenter used for files without one.
	Default string
}

// New builds a deployment. The default datacenter must be registered in the
// catalog.
func New(catalog *pricing.Catalog, defaultDC string) (*Deployment, error) {
	if catalog == nil || catalog.Len() == 0 {
		return nil, errors.New("multidc: empty catalog")
	}
	if _, ok := catalog.Get(defaultDC); !ok {
		return nil, fmt.Errorf("multidc: default datacenter %q not in catalog", defaultDC)
	}
	models := make(map[string]*costmodel.Model, catalog.Len())
	for _, dc := range catalog.Datacenters() {
		p, _ := catalog.Get(dc)
		models[dc] = costmodel.New(p)
	}
	return &Deployment{catalog: catalog, models: models, Default: defaultDC}, nil
}

// Model returns the cost model of a file's datacenter.
func (d *Deployment) Model(meta trace.FileMeta) (*costmodel.Model, error) {
	dc := meta.Datacenter
	if dc == "" {
		dc = d.Default
	}
	m, ok := d.models[dc]
	if !ok {
		return nil, fmt.Errorf("multidc: file %d in unknown datacenter %q", meta.ID, dc)
	}
	return m, nil
}

// Datacenters lists the registered datacenter IDs, sorted.
func (d *Deployment) Datacenters() []string {
	out := d.catalog.Datacenters()
	sort.Strings(out)
	return out
}

// Partition splits a trace by datacenter; the map values are Subset traces
// (groups spanning datacenters are dropped by Subset's containment rule,
// which is also physically right: a replica cannot span datacenters).
func (d *Deployment) Partition(tr *trace.Trace) (map[string]*trace.Trace, error) {
	byDC := make(map[string][]int)
	for i, f := range tr.Files {
		dc := f.Datacenter
		if dc == "" {
			dc = d.Default
		}
		if _, ok := d.models[dc]; !ok {
			return nil, fmt.Errorf("multidc: file %d in unknown datacenter %q", f.ID, dc)
		}
		byDC[dc] = append(byDC[dc], i)
	}
	out := make(map[string]*trace.Trace, len(byDC))
	//minicost:allow-maprange builds a map from a map; per-DC subsets are order-independent
	for dc, idx := range byDC {
		out[dc] = tr.Subset(idx)
	}
	return out, nil
}

// Bill is one datacenter's share of an evaluation.
type Bill struct {
	Datacenter string
	Files      int
	Cost       costmodel.Breakdown
}

// Evaluate runs an assigner independently in every datacenter (each under
// its own prices) and returns the per-datacenter bills plus the total.
func (d *Deployment) Evaluate(a policy.Assigner, tr *trace.Trace, initial pricing.Tier) ([]Bill, costmodel.Breakdown, error) {
	parts, err := d.Partition(tr)
	if err != nil {
		return nil, costmodel.Breakdown{}, err
	}
	dcs := make([]string, 0, len(parts))
	//minicost:allow-maprange keys are sorted before use
	for dc := range parts {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	var bills []Bill
	var total costmodel.Breakdown
	for _, dc := range dcs {
		part := parts[dc]
		bd, _, err := policy.Evaluate(a, part, d.models[dc], initial)
		if err != nil {
			return nil, costmodel.Breakdown{}, fmt.Errorf("multidc: %s: %w", dc, err)
		}
		bills = append(bills, Bill{Datacenter: dc, Files: part.NumFiles(), Cost: bd})
		total = total.Add(bd)
	}
	return bills, total, nil
}

// CheapestPlacement is a placement advisor (an extension the paper's
// related-work section motivates via SPANStore): for each file it reports
// the datacenter whose prices minimize the file's offline-optimal cost.
// Moving data between providers is out of scope — the result quantifies the
// placement headroom, it does not execute moves.
func (d *Deployment) CheapestPlacement(tr *trace.Trace, initial pricing.Tier) ([]string, float64, error) {
	placement := make([]string, tr.NumFiles())
	total := 0.0
	dcs := d.Datacenters()
	for i := 0; i < tr.NumFiles(); i++ {
		best := ""
		bestCost := 0.0
		for _, dc := range dcs {
			_, cost := policy.OptimalPlan(d.models[dc], tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial)
			if best == "" || cost < bestCost {
				best, bestCost = dc, cost
			}
		}
		placement[i] = best
		total += bestCost
	}
	return placement, total, nil
}

// AssignDatacenters deterministically spreads a trace's files across the
// given datacenters (round-robin over file index), returning a copy. Use it
// to turn a single-datacenter synthetic trace into a multi-DC workload.
func AssignDatacenters(tr *trace.Trace, dcs []string) (*trace.Trace, error) {
	if len(dcs) == 0 {
		return nil, errors.New("multidc: no datacenters to assign")
	}
	idx := make([]int, tr.NumFiles())
	for i := range idx {
		idx[i] = i
	}
	out := tr.Subset(idx) // deep-enough copy with re-indexed metadata
	for i := range out.Files {
		out.Files[i].Datacenter = dcs[i%len(dcs)]
	}
	return out, nil
}
