package multidc

import (
	"math"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// twoDCCatalog builds us-west (default Azure prices) and eu-frugal (cheaper
// cool storage, pricier hot).
func twoDCCatalog(t testing.TB) *pricing.Catalog {
	t.Helper()
	c := pricing.NewCatalog()
	if err := c.Add("us-west", pricing.Azure()); err != nil {
		t.Fatal(err)
	}
	eu := pricing.Azure()
	eu.Name = "eu-frugal"
	eu.Tiers[pricing.Hot].StoragePerGBMonth = 0.03
	eu.Tiers[pricing.Cool].StoragePerGBMonth = 0.005
	if err := c.Add("eu-frugal", eu); err != nil {
		t.Fatal(err)
	}
	return c
}

func genTrace(t testing.TB, files, days int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = files
	cfg.Days = days
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "x"); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := New(pricing.NewCatalog(), "x"); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := New(twoDCCatalog(t), "mars"); err == nil {
		t.Error("unknown default accepted")
	}
	if _, err := New(twoDCCatalog(t), "us-west"); err != nil {
		t.Error(err)
	}
}

func TestAssignAndPartition(t *testing.T) {
	d, err := New(twoDCCatalog(t), "us-west")
	if err != nil {
		t.Fatal(err)
	}
	tr := genTrace(t, 40, 10)
	multi, err := AssignDatacenters(tr, []string{"us-west", "eu-frugal"})
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if tr.Files[0].Datacenter != "" {
		t.Fatal("AssignDatacenters mutated input")
	}
	parts, err := d.Partition(multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("partitions %d", len(parts))
	}
	if parts["us-west"].NumFiles()+parts["eu-frugal"].NumFiles() != multi.NumFiles() {
		t.Fatal("partition loses files")
	}
	// Unknown DC rejected.
	bad := multi.Subset([]int{0, 1})
	bad.Files[0].Datacenter = "atlantis"
	if _, err := d.Partition(bad); err == nil {
		t.Fatal("unknown datacenter accepted")
	}
	if _, err := AssignDatacenters(tr, nil); err == nil {
		t.Fatal("empty dc list accepted")
	}
}

func TestEvaluateSumsPartitions(t *testing.T) {
	d, err := New(twoDCCatalog(t), "us-west")
	if err != nil {
		t.Fatal(err)
	}
	tr := genTrace(t, 60, 14)
	multi, err := AssignDatacenters(tr, []string{"us-west", "eu-frugal"})
	if err != nil {
		t.Fatal(err)
	}
	bills, total, err := d.Evaluate(policy.Greedy{}, multi, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 2 {
		t.Fatalf("bills %d", len(bills))
	}
	sum := costmodel.Breakdown{}
	files := 0
	for _, b := range bills {
		sum = sum.Add(b.Cost)
		files += b.Files
	}
	if math.Abs(sum.Total()-total.Total()) > 1e-12 {
		t.Fatal("bill sum mismatch")
	}
	if files != multi.NumFiles() {
		t.Fatal("file count mismatch")
	}
	// Hand-check one partition: evaluating it directly under its own model
	// gives the same bill.
	parts, _ := d.Partition(multi)
	eu, _ := twoDCCatalog(t).Get("eu-frugal")
	direct, _, err := policy.Evaluate(policy.Greedy{}, parts["eu-frugal"], costmodel.New(eu), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bills {
		if b.Datacenter == "eu-frugal" && math.Abs(b.Cost.Total()-direct.Total()) > 1e-12 {
			t.Fatalf("eu bill %v != direct %v", b.Cost.Total(), direct.Total())
		}
	}
}

func TestDefaultDatacenterUsedForUnlabeledFiles(t *testing.T) {
	d, err := New(twoDCCatalog(t), "us-west")
	if err != nil {
		t.Fatal(err)
	}
	tr := genTrace(t, 10, 7) // no datacenter labels
	bills, _, err := d.Evaluate(policy.Static{Tier: pricing.Hot}, tr, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 1 || bills[0].Datacenter != "us-west" {
		t.Fatalf("bills %+v", bills)
	}
}

func TestPricesChangeTheOptimalPlan(t *testing.T) {
	// A file hovering between hot and cool under Azure prices should tier
	// differently under eu-frugal's cheap cool storage.
	cat := twoDCCatalog(t)
	us, _ := cat.Get("us-west")
	eu, _ := cat.Get("eu-frugal")
	days := 30
	reads := make([]float64, days)
	writes := make([]float64, days)
	for i := range reads {
		reads[i] = 0.02
	}
	_, usCost := policy.OptimalPlan(costmodel.New(us), 0.1, reads, writes, pricing.Hot)
	_, euCost := policy.OptimalPlan(costmodel.New(eu), 0.1, reads, writes, pricing.Hot)
	if usCost == euCost {
		t.Fatal("price schedules should change optimal cost")
	}
}

func TestCheapestPlacement(t *testing.T) {
	d, err := New(twoDCCatalog(t), "us-west")
	if err != nil {
		t.Fatal(err)
	}
	tr := genTrace(t, 30, 14)
	placement, total, err := d.CheapestPlacement(tr, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != tr.NumFiles() || total <= 0 {
		t.Fatalf("placement %d total %v", len(placement), total)
	}
	// The advisor's total must lower-bound single-DC optimal for both DCs.
	for _, dc := range d.Datacenters() {
		p, _ := twoDCCatalog(t).Get(dc)
		opt, _, err := policy.Evaluate(policy.Optimal{}, tr, costmodel.New(p), pricing.Hot)
		if err != nil {
			t.Fatal(err)
		}
		if total > opt.Total()+1e-9 {
			t.Fatalf("placement total %v exceeds single-DC optimal %v in %s", total, opt.Total(), dc)
		}
	}
	for _, dc := range placement {
		if dc != "us-west" && dc != "eu-frugal" {
			t.Fatalf("unknown placement %q", dc)
		}
	}
}

func BenchmarkEvaluateTwoDCs(b *testing.B) {
	cat := pricing.NewCatalog()
	_ = cat.Add("a", pricing.Azure())
	eu := pricing.Azure()
	eu.Name = "b"
	_ = cat.Add("b", eu)
	d, err := New(cat, "a")
	if err != nil {
		b.Fatal(err)
	}
	tr := genTrace(b, 500, 21)
	multi, err := AssignDatacenters(tr, []string{"a", "b"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Evaluate(policy.Optimal{}, multi, pricing.Hot); err != nil {
			b.Fatal(err)
		}
	}
}
