package mat

import "minicost/internal/par"

// This file holds the multi-core layer of the GEMM engine: worker-aware
// row-panel sizing shared by every parallel product, and GemmParallel, the
// fused pack-and-multiply entry point the batched layers use when one call
// should saturate the machine.
//
// Parallel decomposition never touches the numerical contract (gemm.go):
// panels shard *independent output elements* (rows of the destination, tiles
// of a packed operand, column stripes of a k-outer product), so every
// element's shared-dimension accumulation stays sequential and bitwise
// identical at any worker count — not just at workers=1. The equivalence
// tests in parallel_test.go pin this across odd shapes.

// gemmMinPanel is the smallest row panel handed to one worker: below this
// the per-chunk dispatch (one atomic increment plus cache handoff of the
// panel) stops amortizing against the panel's flops.
const gemmMinPanel = 16

// gemmPackMinRows mirrors nn's packMinRows: batches with fewer rows than
// this do not amortize repacking the B operand and run on the unpacked
// kernels.
const gemmPackMinRows = 16

// packParMin is the packed-operand size (floats) below which parallel
// packing is not worth the fan-out.
const packParMin = 1 << 15

// resolveWorkers normalizes a caller-facing workers knob: <= 0 selects the
// default (GOMAXPROCS), anything else is taken as-is.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return par.DefaultWorkers()
	}
	return workers
}

// parPanel sizes the row panels that shard rows over workers: small enough
// that every worker sees at least two panels (par.ForBatched hands panels
// out dynamically, so extra panels absorb stragglers), never smaller than
// min (dispatch cost needs a floor), and never larger than gemmRowTile (the
// serial chunk size, so workers=1 visits the same panel sequence as before).
func parPanel(rows, workers, min int) int {
	if workers <= 1 {
		return gemmRowTile
	}
	p := (rows + 2*workers - 1) / (2 * workers)
	if p < min {
		p = min
	}
	if p > gemmRowTile {
		p = gemmRowTile
	}
	return p
}

// GemmParallel computes dst = a·bᵀ + bias (the canonical batched-layer
// product, b row-per-output like nn weight matrices) with both phases
// parallel: b is packed tile-parallel into pack (each worker filling
// disjoint tiles of one buffer), then the packed GEMM shards row panels of a
// over the same workers. dst and pack are reusable scratch (nil allocates);
// the returned values must be used in their place. Batches under
// gemmPackMinRows rows skip packing and run the unpacked tiled kernel.
// Results are bitwise identical to MulTransBBiasTo and the single-sample
// reference at every worker count.
func GemmParallel(dst, a, b *Matrix, bias []float64, pack *PackedTransB, workers int) (*Matrix, *PackedTransB) {
	if a.Rows < gemmPackMinRows {
		return MulTransBBiasTo(dst, a, b, bias, workers), pack
	}
	pack = PackTransBParTo(pack, b, workers)
	return MulPackTransBBiasTo(dst, a, pack, bias, workers), pack
}
