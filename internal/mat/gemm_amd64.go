package mat

// Assembly kernels (gemm_amd64.s) with runtime AVX detection. The AVX
// kernel keeps one output column per vector lane so every element's
// accumulation stays sequential — see the exactness contract in gemm.go.

//go:noescape
func dotPack16AVX(a, bp, acc []float64)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// haveAVX reports whether the CPU supports AVX and the OS preserves YMM
// state across context switches (OSXSAVE + XCR0 bits 1-2).
var haveAVX = func() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 1 {
		return false
	}
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx, _ := cpuidAsm(1, 0)
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	eax, _ := xgetbvAsm()
	return eax&6 == 6
}()

func dotPack16(a, bp, acc []float64) {
	if haveAVX {
		dotPack16AVX(a, bp, acc)
		return
	}
	dotPack16Generic(a, bp, acc)
}
