package mat

import (
	"fmt"

	"minicost/internal/par"
)

// packLanes is the column-tile width of the packed GEMM kernel: one output
// column per SIMD lane across four 4-wide vector accumulators (see
// gemm_amd64.s). The generic fallback uses the same layout.
const packLanes = 16

// PackedTransB is a transposed-B operand (weights: row j holds output
// column j's coefficients) re-laid-out for the packed kernel: columns are
// grouped into tiles of packLanes and interleaved along k, so tile t stores
// Data[t*K*packLanes + i*packLanes + lane] = B[t*packLanes+lane][i]. Lanes
// past Cols are zero-padded, which lets every tile run the same kernel; the
// padded outputs are simply not written back.
//
// Packing exists to make the per-k loads of one tile contiguous. It never
// changes any element's accumulation order, so the exactness contract in
// gemm.go is unaffected.
type PackedTransB struct {
	Cols int // logical output columns (B rows)
	K    int // shared dimension (B cols)
	Data []float64
}

// ensurePacked sizes dst for a tiles×k packed operand with the given
// logical column count, reusing its backing storage when large enough.
func ensurePacked(dst *PackedTransB, tiles, k, cols int) *PackedTransB {
	need := tiles * k * packLanes
	if dst == nil {
		dst = &PackedTransB{}
	}
	if cap(dst.Data) >= need {
		dst.Data = dst.Data[:need]
	} else {
		dst.Data = make([]float64, need)
	}
	dst.Cols, dst.K = cols, k
	return dst
}

// PackTransBTo packs b into dst, reusing dst's backing storage when large
// enough (pass nil to allocate). The returned value must be used in place of
// dst.
func PackTransBTo(dst *PackedTransB, b *Matrix) *PackedTransB {
	return PackTransBParTo(dst, b, 1)
}

// PackTransBParTo is PackTransBTo with the packing tiles sharded over
// workers: every tile is a disjoint segment of dst's backing array, so
// workers write without contention and the layout (hence every downstream
// accumulation) is identical at any worker count. Small operands pack
// serially regardless of workers.
func PackTransBParTo(dst *PackedTransB, b *Matrix, workers int) *PackedTransB {
	tiles := (b.Rows + packLanes - 1) / packLanes
	dst = ensurePacked(dst, tiles, b.Cols, b.Rows)
	if workers == 1 || len(dst.Data) < packParMin {
		for t := 0; t < tiles; t++ {
			packTransBTile(dst, b, t)
		}
		return dst
	}
	par.ForBatched(tiles, 1, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			packTransBTile(dst, b, t)
		}
	})
	return dst
}

// packTransBTile fills tile t of the packed operand from b's rows.
func packTransBTile(dst *PackedTransB, b *Matrix, t int) {
	k := b.Cols
	seg := dst.Data[t*k*packLanes : (t+1)*k*packLanes]
	for lane := 0; lane < packLanes; lane++ {
		j := t*packLanes + lane
		if j >= b.Rows {
			for i := 0; i < k; i++ {
				seg[i*packLanes+lane] = 0
			}
			continue
		}
		brow := b.Data[j*k : (j+1)*k]
		for i, v := range brow {
			seg[i*packLanes+lane] = v
		}
	}
}

// PackTransposeTo packs mᵀ as a transposed-B operand without materializing
// the transpose: the packed operand's output columns are m's *columns* and
// the shared dimension is m's *rows* (Cols = m.Cols, K = m.Rows). Dense's
// batched backward uses it to run dX = dY·W on the packed kernel — W is
// stored row-per-output (Out×In), and the input-gradient product needs the
// In×Out orientation. The inner copy walks m row-major, so packing stays
// cache-friendly; the layout and zero-padding match PackTransBTo exactly.
func PackTransposeTo(dst *PackedTransB, m *Matrix) *PackedTransB {
	return PackTransposeParTo(dst, m, 1)
}

// PackTransposeParTo is PackTransposeTo with the packing tiles sharded over
// workers, under the same disjoint-tile contract as PackTransBParTo.
func PackTransposeParTo(dst *PackedTransB, m *Matrix, workers int) *PackedTransB {
	tiles := (m.Cols + packLanes - 1) / packLanes
	dst = ensurePacked(dst, tiles, m.Rows, m.Cols)
	if workers == 1 || len(dst.Data) < packParMin {
		for t := 0; t < tiles; t++ {
			packTransposeTile(dst, m, t)
		}
		return dst
	}
	par.ForBatched(tiles, 1, workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			packTransposeTile(dst, m, t)
		}
	})
	return dst
}

// packTransposeTile fills tile t of the packed operand from m's columns.
func packTransposeTile(dst *PackedTransB, m *Matrix, t int) {
	k := m.Rows
	seg := dst.Data[t*k*packLanes : (t+1)*k*packLanes]
	j0 := t * packLanes
	w := packLanes
	if j0+w > m.Cols {
		w = m.Cols - j0
	}
	for i := 0; i < k; i++ {
		drow := seg[i*packLanes : (i+1)*packLanes]
		copy(drow[:w], m.Data[i*m.Cols+j0:i*m.Cols+j0+w])
		for lane := w; lane < packLanes; lane++ {
			drow[lane] = 0
		}
	}
}

// MulPackTransBBiasTo is the packed-operand version of MulTransBBiasTo:
// dst[r][c] = bias[c] + Σ_k a[r][k]·B[c][k] with B pre-packed by
// PackTransBTo. It is the hot path of the batched inference engine — on
// amd64 with AVX the inner kernel runs one output column per vector lane —
// and is bitwise identical to MulTransBBiasTo and to the single-sample
// loops (each element's accumulation is still bias-seeded and k-sequential;
// see gemm.go).
func MulPackTransBBiasTo(dst, a *Matrix, pb *PackedTransB, bias []float64, workers int) *Matrix {
	if a.Cols != pb.K {
		panic(fmt.Sprintf("mat: MulPackTransB shape mismatch %dx%d · packed(%dx%d)ᵀ", a.Rows, a.Cols, pb.Cols, pb.K))
	}
	if bias != nil && len(bias) != pb.Cols {
		panic(fmt.Sprintf("mat: MulPackTransB bias len %d, want %d", len(bias), pb.Cols))
	}
	dst = EnsureShape(dst, a.Rows, pb.Cols)
	if workers == 1 || a.Rows*a.Cols*pb.Cols < gemmParallelFlops {
		mulPackBlock(dst, a, pb, bias, 0, a.Rows)
		return dst
	}
	w := resolveWorkers(workers)
	par.ForBatched(a.Rows, parPanel(a.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		mulPackBlock(dst, a, pb, bias, lo, hi)
	})
	return dst
}

// packKBlock is the shared-dimension block length of the packed kernels:
// 192 k-steps of one 16-lane tile are 24 KiB, so the segment a row batch
// revisits stays L1-resident instead of re-streaming the whole 16·K tile
// from L2 once per row. Blocks run in ascending k order with the running
// sums parked in the destination row between blocks, which leaves every
// element's accumulation sequence — and therefore the bitwise contract —
// unchanged: a paused-and-resumed chain performs the identical adds.
const packKBlock = 192

// mulPackBlock fills output rows [lo, hi) from the packed operand. The
// column tile is the outer loop and the shared dimension is blocked inside
// it (see packKBlock) so the segment the A rows revisit stays cache-hot;
// the first block seeds each destination slice with the bias (or zero) and
// later blocks accumulate on top. The ragged last tile uses per-lane scalar
// dots written straight into dst (a scratch array would escape through the
// asm call and break the allocation-free steady state). Every element stays
// k-sequential.
func mulPackBlock(dst, a *Matrix, pb *PackedTransB, bias []float64, lo, hi int) {
	n, k := pb.Cols, pb.K
	full := n / packLanes * packLanes
	for j := 0; j < full; j += packLanes {
		tile := pb.Data[j*k : (j+packLanes)*k]
		for k0 := 0; k0 < k; k0 += packKBlock {
			k1 := k0 + packKBlock
			if k1 > k {
				k1 = k
			}
			seg := tile[k0*packLanes : k1*packLanes]
			for r := lo; r < hi; r++ {
				acc := dst.Data[r*n+j : r*n+j+packLanes]
				if k0 == 0 {
					if bias != nil {
						copy(acc, bias[j:j+packLanes])
					} else {
						for i := range acc {
							acc[i] = 0
						}
					}
				}
				dotPack16(a.Data[r*k+k0:r*k+k1], seg, acc)
			}
		}
	}
	if full < n {
		seg := pb.Data[full*k:]
		for r := lo; r < hi; r++ {
			arow := a.Data[r*k : (r+1)*k]
			drow := dst.Data[r*n : (r+1)*n]
			for lane := 0; full+lane < n; lane++ {
				s := 0.0
				if bias != nil {
					s = bias[full+lane]
				}
				for i, v := range arow {
					s += v * seg[i*packLanes+lane]
				}
				drow[full+lane] = s
			}
		}
	}
}

// dotPack16Generic is the portable kernel: acc[lane] += Σ_i a[i]·bp[i*16+lane],
// each lane sequential in i. It backs dotPack16 on non-amd64 builds and on
// amd64 CPUs without AVX.
func dotPack16Generic(a, bp, acc []float64) {
	var s [packLanes]float64
	copy(s[:], acc)
	for i, v := range a {
		t := bp[i*packLanes : i*packLanes+packLanes]
		for j := range s {
			s[j] += v * t[j]
		}
	}
	copy(acc, s[:])
}
