#include "textflag.h"

// func dotPack16AVX(a, bp, acc []float64)
//
// acc[lane] += Σ_i a[i] · bp[i*16+lane] for lane in 0..15, with each lane's
// accumulation strictly sequential in i — four 4-wide vector accumulators,
// one output column per lane, VMULPD+VADDPD (never FMA, whose single
// rounding would diverge from the scalar reference). len(bp) must be
// 16*len(a) and len(acc) 16; the caller (mulPackBlock) guarantees both.
TEXT ·dotPack16AVX(SB), NOSPLIT, $0-72
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ bp_base+24(FP), DX
	MOVQ acc_base+48(FP), DI
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	TESTQ CX, CX
	JZ   done

loop:
	VBROADCASTSD (SI), Y4
	VMULPD (DX), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(DX), Y4, Y6
	VADDPD Y6, Y1, Y1
	VMULPD 64(DX), Y4, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(DX), Y4, Y8
	VADDPD Y8, Y3, Y3
	ADDQ $8, SI
	ADDQ $128, DX
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
