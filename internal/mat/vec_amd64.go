package mat

// Assembly kernels (vec_amd64.s) with the same runtime AVX detection as the
// GEMM path. Both kernels vectorize across independent elements only, so
// they are bitwise-identical to the generic loops; see vec.go.

//go:noescape
func axpyAVX(dst, x []float64, alpha float64)

//go:noescape
func rmspropAVX(dst, params, grads, msq []float64, lr, decay, rem, eps float64)

//go:noescape
func dotXT8AVX(w, xt, acc []float64)

//go:noescape
func dotXT8x4AVX(w []float64, in int, xt, acc []float64)

//go:noescape
func sumsq8AVX(g []float64, p *[8]float64)

//go:noescape
func scalAVX(dst []float64, s float64)

// laneKernels reports whether the 8-lane short-batch forward kernel is
// worth taking: without SIMD its transposed gather only adds overhead.
var laneKernels = haveAVX

func axpy(dst, x []float64, alpha float64) {
	if haveAVX && len(dst) >= 4 {
		axpyAVX(dst, x, alpha)
		return
	}
	axpyGeneric(dst, x, alpha)
}

func dotXT8(w, xt, acc []float64) {
	if haveAVX {
		dotXT8AVX(w, xt, acc)
		return
	}
	dotXT8Generic(w, xt, acc)
}

func dotXT8x4(w []float64, in int, xt, acc []float64) {
	if haveAVX {
		dotXT8x4AVX(w, in, xt, acc)
		return
	}
	dotXT8x4Generic(w, in, xt, acc)
}

func sumsq8(g []float64, p *[8]float64) {
	if haveAVX {
		sumsq8AVX(g, p)
		return
	}
	sumsq8Generic(g, p)
}

func scal(dst []float64, s float64) {
	if haveAVX && len(dst) >= 4 {
		scalAVX(dst, s)
		return
	}
	scalGeneric(dst, s)
}

func rmspropVec(dst, params, grads, msq []float64, lr, decay, rem, eps float64) {
	n := 0
	if haveAVX {
		// The assembly kernel runs whole 4-lane groups; the ragged tail
		// falls through to the scalar loop.
		n = len(grads) &^ 3
		if n > 0 {
			rmspropAVX(dst[:n], params[:n], grads[:n], msq[:n], lr, decay, rem, eps)
		}
	}
	rmspropGeneric(dst[n:], params[n:], grads[n:], msq[n:], lr, decay, rem, eps)
}
