package mat

import (
	"testing"

	"minicost/internal/rng"
)

// naiveMulTransB is the reference: per-element sequential-k dot, bias seed.
func naiveMulTransB(a, b *Matrix, bias []float64) *Matrix {
	out := New(a.Rows, b.Rows)
	for r := 0; r < a.Rows; r++ {
		for j := 0; j < b.Rows; j++ {
			s := 0.0
			if bias != nil {
				s = bias[j]
			}
			for k := 0; k < a.Cols; k++ {
				s += a.At(r, k) * b.At(j, k)
			}
			out.Set(r, j, s)
		}
	}
	return out
}

func TestMulTransBMatchesNaiveBitwise(t *testing.T) {
	r := rng.New(7)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 33, 9}, {64, 40, 64}, {130, 129, 7}, {257, 64, 128},
	}
	for _, sh := range shapes {
		a := randomMatrix(r, sh.m, sh.k)
		b := randomMatrix(r, sh.n, sh.k)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = 2*r.Float64() - 1
		}
		want := naiveMulTransB(a, b, nil)
		for _, workers := range []int{1, 0, 4} {
			got := MulTransBTo(nil, a, b, workers)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("MulTransB %dx%d·(%dx%d)ᵀ workers=%d: element %d = %v, want %v",
						sh.m, sh.k, sh.n, sh.k, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
		wantB := naiveMulTransB(a, b, bias)
		gotB := MulTransBBiasTo(nil, a, b, bias, 0)
		for i := range wantB.Data {
			if gotB.Data[i] != wantB.Data[i] {
				t.Fatalf("MulTransBBias: element %d = %v, want %v", i, gotB.Data[i], wantB.Data[i])
			}
		}
	}
}

func TestMulToReusesBuffer(t *testing.T) {
	r := rng.New(3)
	a := randomMatrix(r, 20, 30)
	b := randomMatrix(r, 30, 10)
	dst := MulTo(nil, a, b, 1)
	backing := &dst.Data[0]
	// A smaller product must reuse the same backing array.
	a2 := randomMatrix(r, 5, 30)
	dst2 := MulTo(dst, a2, b, 1)
	if &dst2.Data[0] != backing {
		t.Fatal("MulTo did not reuse the output buffer for a smaller product")
	}
	if dst2.Rows != 5 || dst2.Cols != 10 {
		t.Fatalf("MulTo wrong shape %dx%d", dst2.Rows, dst2.Cols)
	}
	want := Mul(a2, b)
	for i := range want.Data {
		if dst2.Data[i] != want.Data[i] {
			t.Fatal("MulTo reuse changed the result")
		}
	}
}

func TestMulTransBToReusesBuffer(t *testing.T) {
	r := rng.New(4)
	a := randomMatrix(r, 16, 12)
	b := randomMatrix(r, 8, 12)
	dst := MulTransBTo(nil, a, b, 1)
	backing := &dst.Data[0]
	dst2 := MulTransBTo(dst, a, b, 1)
	if &dst2.Data[0] != backing {
		t.Fatal("MulTransBTo did not reuse the output buffer")
	}
}

func TestEnsureShape(t *testing.T) {
	m := New(4, 6)
	backing := &m.Data[0]
	got := EnsureShape(m, 3, 8) // 24 == 24, reuse
	if &got.Data[0] != backing || got.Rows != 3 || got.Cols != 8 {
		t.Fatal("EnsureShape failed to reuse equal-capacity backing")
	}
	grown := EnsureShape(m, 10, 10)
	if grown.Rows != 10 || grown.Cols != 10 || len(grown.Data) != 100 {
		t.Fatal("EnsureShape failed to grow")
	}
	fresh := EnsureShape(nil, 2, 2)
	if fresh.Rows != 2 || fresh.Cols != 2 {
		t.Fatal("EnsureShape(nil) failed")
	}
}

func TestMulMatchesMulTransBOfTranspose(t *testing.T) {
	r := rng.New(9)
	a := randomMatrix(r, 33, 21)
	b := randomMatrix(r, 21, 18)
	viaT := MulTransB(a, b.T())
	direct := Mul(a, b)
	for i := range direct.Data {
		d := direct.Data[i] - viaT.Data[i]
		if d < -1e-12 || d > 1e-12 {
			t.Fatalf("Mul and MulTransB disagree at %d: %v vs %v", i, direct.Data[i], viaT.Data[i])
		}
	}
}
