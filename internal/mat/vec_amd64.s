#include "textflag.h"

// func axpyAVX(dst, x []float64, alpha float64)
//
// dst[i] += alpha · x[i]. Lanes are independent elements, so each element
// still sees exactly one VMULPD rounding and one VADDPD rounding — the same
// two roundings as the scalar statement (never FMA). Two 4-wide groups per
// iteration, then a 4-wide step, then a VEX-scalar tail (staying VEX avoids
// SSE/AVX transition stalls before VZEROUPPER).
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	VBROADCASTSD alpha+48(FP), Y0

loop8:
	CMPQ CX, $8
	JL   loop4
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y0, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	VMOVUPD 32(SI), Y2
	VMULPD  Y2, Y0, Y2
	VADDPD  32(DI), Y2, Y2
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  loop8

loop4:
	CMPQ CX, $4
	JL   tail
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y0, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX

tail:
	TESTQ CX, CX
	JZ    done
	VMOVSD (SI), X1
	VMULSD X1, X0, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	RET

// func rmspropAVX(dst, params, grads, msq []float64, lr, decay, rem, eps float64)
//
// One RMSProp update over whole 4-lane groups (the Go wrapper peels the
// ragged tail). Per element, in scalar evaluation order:
//
//	m      = decay·msq + (rem·g)·g
//	dst    = params − (lr·g) / (sqrt(m) + eps)
//
// Every packed operation (mul, add, sub, div, sqrt) is IEEE correctly
// rounded, identical to its scalar form, so lanes match the generic loop
// bitwise. len(grads) must be a multiple of 4; all slices share it.
TEXT ·rmspropAVX(SB), NOSPLIT, $0-128
	MOVQ dst_base+0(FP), DI
	MOVQ params_base+24(FP), DX
	MOVQ grads_base+48(FP), SI
	MOVQ grads_len+56(FP), CX
	MOVQ msq_base+72(FP), BX
	VBROADCASTSD lr+96(FP), Y14
	VBROADCASTSD decay+104(FP), Y12
	VBROADCASTSD rem+112(FP), Y13
	VBROADCASTSD eps+120(FP), Y15
	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD (SI), Y0         // g
	VMULPD  Y0, Y13, Y1      // rem·g
	VMULPD  Y0, Y1, Y1       // (rem·g)·g
	VMOVUPD (BX), Y2
	VMULPD  Y2, Y12, Y2      // decay·msq
	VADDPD  Y1, Y2, Y2       // m
	VMOVUPD Y2, (BX)
	VSQRTPD Y2, Y3           // sqrt(m)
	VADDPD  Y15, Y3, Y3      // sqrt(m)+eps
	VMULPD  Y0, Y14, Y4      // lr·g
	VDIVPD  Y3, Y4, Y4       // (lr·g)/(sqrt(m)+eps)
	VMOVUPD (DX), Y5
	VSUBPD  Y4, Y5, Y5       // params − step
	VMOVUPD Y5, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DX
	ADDQ $32, DI
	SUBQ $4, CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func dotXT8AVX(w, xt, acc []float64)
//
// acc[r] += Σ_i w[i] · xt[i*8+r] for the 8 lanes r. Each lane is an
// independent batch row whose accumulation runs sequentially in i with one
// VMULPD and one VADDPD rounding per term — exactly the scalar chain, never
// FMA. Used for the remainder outputs of the short-batch forward; the
// 4-output variant below is the main kernel.
TEXT ·dotXT8AVX(SB), NOSPLIT, $0-72
	MOVQ w_base+0(FP), SI
	MOVQ w_len+8(FP), CX
	MOVQ xt_base+24(FP), DX
	MOVQ acc_base+48(FP), DI
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	TESTQ CX, CX
	JZ    store1

dot1:
	VBROADCASTSD (SI), Y4
	VMULPD (DX), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(DX), Y4, Y6
	VADDPD Y6, Y1, Y1
	ADDQ $8, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  dot1

store1:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func dotXT8x4AVX(w []float64, in int, xt, acc []float64)
//
// Four consecutive length-in rows of w against the shared 8-lane transposed
// batch: acc[j*8+r] += Σ_i w[j*in+i] · xt[i*8+r]. Interleaving four outputs
// keeps eight independent accumulator chains in flight so the broadcast/
// mul/add latency of any single chain is hidden; each (j, r) element still
// accumulates sequentially in i with scalar roundings.
TEXT ·dotXT8x4AVX(SB), NOSPLIT, $0-80
	MOVQ w_base+0(FP), SI
	MOVQ in+24(FP), CX
	MOVQ xt_base+32(FP), DX
	MOVQ acc_base+56(FP), DI
	MOVQ CX, AX
	SHLQ $3, AX              // w row stride in bytes
	LEAQ (SI)(AX*1), R8
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	VMOVUPD 128(DI), Y4
	VMOVUPD 160(DI), Y5
	VMOVUPD 192(DI), Y6
	VMOVUPD 224(DI), Y7
	TESTQ CX, CX
	JZ    store4

dot4:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VBROADCASTSD (SI), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1
	VBROADCASTSD (R8), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y3, Y3
	VBROADCASTSD (R9), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y5, Y5
	VBROADCASTSD (R10), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y7, Y7
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $64, DX
	DECQ CX
	JNZ  dot4

store4:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)
	VZEROUPPER
	RET

// func sumsq8AVX(g []float64, p *[8]float64)
//
// Accumulates eight independent sum-of-squares chains over whole 8-element
// groups: p[l] += Σ g[i*8+l]². The caller (SumSquares) owns the fixed-order
// reduction of the partials and the ragged tail, so this kernel and
// sumsq8Generic compute the identical eight values. len(g) must be a
// multiple of 8.
TEXT ·sumsq8AVX(SB), NOSPLIT, $0-32
	MOVQ g_base+0(FP), SI
	MOVQ g_len+8(FP), CX
	MOVQ p+24(FP), DI
	SHRQ $3, CX
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	TESTQ CX, CX
	JZ    ssdone

ssloop:
	VMOVUPD (SI), Y2
	VMULPD  Y2, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(SI), Y3
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y1, Y1
	ADDQ $64, SI
	DECQ CX
	JNZ  ssloop

ssdone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func scalAVX(dst []float64, s float64)
//
// dst[i] *= s. Independent elements, one correctly rounded multiply each —
// bitwise-identical to the scalar loop. VEX-scalar tail as in axpyAVX.
TEXT ·scalAVX(SB), NOSPLIT, $0-32
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSD s+24(FP), Y0

scloop8:
	CMPQ CX, $8
	JL   scloop4
	VMOVUPD (DI), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD Y1, (DI)
	VMOVUPD 32(DI), Y2
	VMULPD  Y2, Y0, Y2
	VMOVUPD Y2, 32(DI)
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  scloop8

scloop4:
	CMPQ CX, $4
	JL   sctail
	VMOVUPD (DI), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD Y1, (DI)
	ADDQ $32, DI
	SUBQ $4, CX

sctail:
	TESTQ CX, CX
	JZ    scdone
	VMOVSD (DI), X1
	VMULSD X1, X0, X1
	VMOVSD X1, (DI)
	ADDQ $8, DI
	DECQ CX
	JMP  sctail

scdone:
	VZEROUPPER
	RET
