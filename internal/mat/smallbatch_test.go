package mat

import (
	"testing"

	"minicost/internal/rng"
)

func randMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal()
	}
	return m
}

// TestMulLaneForwardMatchesReferenceBitwise pins the 8-lane short-batch
// forward against MulTransBBiasTo element-for-element across ragged row
// counts (partial lane groups), ragged output counts (the single-output
// remainder kernel), nil bias, and dirty buffer reuse.
func TestMulLaneForwardMatchesReferenceBitwise(t *testing.T) {
	r := rng.New(7)
	var dst, xt *Matrix // reused across cases: stale contents must not leak
	for _, rows := range []int{1, 2, 3, 7, 8, 9, 15, 16} {
		for _, out := range []int{1, 3, 4, 5, 8, 128} {
			for _, in := range []int{1, 5, 64} {
				for _, withBias := range []bool{true, false} {
					a := randMatrix(r, rows, in)
					b := randMatrix(r, out, in)
					var bias []float64
					if withBias {
						bias = make([]float64, out)
						for i := range bias {
							bias[i] = r.Normal()
						}
					}
					want := MulTransBBiasTo(nil, a, b, bias, 1)
					dst, xt = mulLaneForward(dst, xt, a, b, bias)
					if dst.Rows != want.Rows || dst.Cols != want.Cols {
						t.Fatalf("rows=%d out=%d in=%d: shape %dx%d, want %dx%d",
							rows, out, in, dst.Rows, dst.Cols, want.Rows, want.Cols)
					}
					for i := range want.Data {
						if dst.Data[i] != want.Data[i] {
							t.Fatalf("rows=%d out=%d in=%d bias=%v: elem %d = %v, want %v (not bitwise equal)",
								rows, out, in, withBias, i, dst.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestMulTransBBiasXTToDispatch checks the public wrapper returns the same
// bits as the reference whichever implementation the platform selects.
func TestMulTransBBiasXTToDispatch(t *testing.T) {
	r := rng.New(11)
	a := randMatrix(r, 7, 33)
	b := randMatrix(r, 12, 33)
	bias := make([]float64, 12)
	for i := range bias {
		bias[i] = r.Normal()
	}
	want := MulTransBBiasTo(nil, a, b, bias, 1)
	got, _ := MulTransBBiasXTTo(nil, nil, a, b, bias, 1)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("elem %d = %v, want %v (not bitwise equal)", i, got.Data[i], want.Data[i])
		}
	}
}

// TestDotXT8KernelsMatchGenericBitwise compares the dispatched lane kernels
// against their scalar references on dirty accumulators, covering the
// zero-length guard and odd shared-dimension lengths.
func TestDotXT8KernelsMatchGenericBitwise(t *testing.T) {
	r := rng.New(3)
	for _, in := range []int{0, 1, 2, 17, 64, 129} {
		xt := make([]float64, in*laneWidth)
		for i := range xt {
			xt[i] = r.Normal()
		}

		w1 := make([]float64, in)
		for i := range w1 {
			w1[i] = r.Normal()
		}
		accGot := make([]float64, laneWidth)
		accWant := make([]float64, laneWidth)
		for i := range accGot {
			accGot[i] = r.Normal()
			accWant[i] = accGot[i]
		}
		dotXT8(w1, xt, accGot)
		dotXT8Generic(w1, xt, accWant)
		for i := range accWant {
			if accGot[i] != accWant[i] {
				t.Fatalf("dotXT8 in=%d: lane %d = %v, want %v", in, i, accGot[i], accWant[i])
			}
		}

		w4 := make([]float64, 4*in)
		for i := range w4 {
			w4[i] = r.Normal()
		}
		got4 := make([]float64, 4*laneWidth)
		want4 := make([]float64, 4*laneWidth)
		for i := range got4 {
			got4[i] = r.Normal()
			want4[i] = got4[i]
		}
		dotXT8x4(w4, in, xt, got4)
		dotXT8x4Generic(w4, in, xt, want4)
		for i := range want4 {
			if got4[i] != want4[i] {
				t.Fatalf("dotXT8x4 in=%d: elem %d = %v, want %v", in, i, got4[i], want4[i])
			}
		}
	}
}
