package mat

import (
	"fmt"

	"minicost/internal/par"
)

// This file is the GEMM kernel behind the batched inference engine
// (nn.ForwardBatch): blocked, cache-tiled products with reusable output
// buffers and a transposed-B variant matching how nn stores weights
// (row o of the weight matrix holds output o's weights, i.e. B is already
// transposed for Y = X·Wᵀ).
//
// Numerical contract: for every output element the inner (k) accumulation
// runs sequentially over the full shared dimension, in index order, seeded
// with the bias when one is given. That is exactly the operation order of
// the single-sample loops in nn.Dense.Forward / nn.Conv1D.Forward, so the
// batched path is *bitwise* identical to the single-sample path — the
// equivalence tests rely on this. Blocking therefore tiles only the output
// rows and columns (which reorders independent elements, never an
// accumulation) and unrolled/FMA-style k-splitting is deliberately avoided.

// Tile sizes: a colTile of B rows is kept hot in cache while a rowTile of A
// rows streams over it. With float64 data a 8×k B tile stays L2-resident up
// to k ≈ 16k; rowTile bounds the chunk size handed to one worker.
const (
	gemmRowTile = 64
	gemmColTile = 8
)

// gemmParallelFlops is the approximate flop count above which the kernels
// fan out across workers; below it goroutine overhead dominates.
const gemmParallelFlops = 1 << 17

// EnsureShape returns a rows×cols matrix, reusing m's backing storage when
// it has sufficient capacity (contents are then unspecified, not zeroed);
// otherwise it allocates. It is the buffer-reuse primitive the batched
// layers use to keep steady-state inference allocation-free.
func EnsureShape(m *Matrix, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: EnsureShape negative dimension")
	}
	if m != nil && cap(m.Data) >= rows*cols {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:rows*cols]
		return m
	}
	return New(rows, cols)
}

// MulTransB returns a·bᵀ (b given row-major, i.e. b.Rows is the output
// column count and the shared dimension is a.Cols == b.Cols).
func MulTransB(a, b *Matrix) *Matrix { return MulTransBTo(nil, a, b, 0) }

// MulTransBTo computes dst = a·bᵀ into a reusable buffer: dst's backing
// array is reused when large enough, and the returned matrix must be used
// in place of dst. workers bounds the parallel fan-out (1 forces serial,
// <= 0 selects the default); small products always run serially.
func MulTransBTo(dst, a, b *Matrix, workers int) *Matrix {
	return MulTransBBiasTo(dst, a, b, nil, workers)
}

// MulTransBBiasTo computes dst[r][c] = bias[c] + Σ_k a[r][k]·b[c][k] (a nil
// bias means zero), the fused GEMM+bias the Dense and Conv1D batched paths
// use. See the package comment above for the exactness contract.
func MulTransBBiasTo(dst, a, b *Matrix, bias []float64, workers int) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransB shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias != nil && len(bias) != b.Rows {
		panic(fmt.Sprintf("mat: MulTransB bias len %d, want %d", len(bias), b.Rows))
	}
	dst = EnsureShape(dst, a.Rows, b.Rows)
	if workers == 1 || a.Rows*a.Cols*b.Rows < gemmParallelFlops {
		mulTransBBlock(dst, a, b, bias, 0, a.Rows)
		return dst
	}
	w := resolveWorkers(workers)
	par.ForBatched(a.Rows, parPanel(a.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		mulTransBBlock(dst, a, b, bias, lo, hi)
	})
	return dst
}

// mulTransBBlock fills output rows [lo, hi), tiling the B rows so each tile
// stays cache-resident while the A rows stream past. Within a tile, four
// output columns are computed together with four independent accumulators:
// each element's own accumulation is still bias-seeded and k-sequential
// (preserving the exactness contract — independent elements may interleave),
// but the four chains hide FP-add latency and amortize the A loads, which is
// where the batched engine's throughput over the single-sample matvec comes
// from.
//
//minicost:hotpath
func mulTransBBlock(dst, a, b *Matrix, bias []float64, lo, hi int) {
	n, k := b.Rows, a.Cols
	for j0 := 0; j0 < n; j0 += gemmColTile {
		j1 := j0 + gemmColTile
		if j1 > n {
			j1 = n
		}
		for r := lo; r < hi; r++ {
			arow := a.Data[r*k : (r+1)*k]
			drow := dst.Data[r*n : (r+1)*n]
			j := j0
			for ; j+4 <= j1; j += 4 {
				b0 := b.Data[j*k : j*k+k]
				b1 := b.Data[(j+1)*k : (j+1)*k+k]
				b2 := b.Data[(j+2)*k : (j+2)*k+k]
				b3 := b.Data[(j+3)*k : (j+3)*k+k]
				var s0, s1, s2, s3 float64
				if bias != nil {
					s0, s1, s2, s3 = bias[j], bias[j+1], bias[j+2], bias[j+3]
				}
				for i, v := range arow {
					s0 += v * b0[i]
					s1 += v * b1[i]
					s2 += v * b2[i]
					s3 += v * b3[i]
				}
				drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			}
			for ; j < j1; j++ {
				brow := b.Data[j*k : j*k+k]
				s := 0.0
				if bias != nil {
					s = bias[j]
				}
				for i, v := range arow {
					s += v * brow[i]
				}
				drow[j] = s
			}
		}
	}
}

// MulTo computes dst = a·b into a reusable buffer (see MulTransBTo for the
// reuse contract). It keeps Mul's k-outer streaming order, tiled over row
// blocks for the parallel fan-out.
func MulTo(dst, a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = EnsureShape(dst, a.Rows, b.Cols)
	if workers == 1 || a.Rows*a.Cols*b.Cols < gemmParallelFlops {
		mulBlock(dst, a, b, 0, a.Rows)
		return dst
	}
	w := resolveWorkers(workers)
	par.ForBatched(a.Rows, parPanel(a.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		mulBlock(dst, a, b, lo, hi)
	})
	return dst
}

// mulBlock fills output rows [lo, hi) with the k-outer streaming product.
//
//minicost:hotpath
func mulBlock(dst, a, b *Matrix, lo, hi int) {
	for r := lo; r < hi; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		orow := dst.Data[r*dst.Cols : (r+1)*dst.Cols]
		for i := range orow {
			orow[i] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c, bv := range brow {
				orow[c] += av * bv
			}
		}
	}
}
