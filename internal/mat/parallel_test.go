package mat

import (
	"testing"
)

// fillDet fills a matrix with a deterministic, non-uniform pattern so
// reordered accumulations would produce different bits.
func fillDet(m *Matrix, seed float64) {
	for i := range m.Data {
		v := float64(i%17) - 7.3*float64(i%5) + seed
		m.Data[i] = v * 0.1875
	}
}

func detMatrix(rows, cols int, seed float64) *Matrix {
	m := New(rows, cols)
	fillDet(m, seed)
	return m
}

func detVec(n int, seed float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i%13)*0.375 - seed
	}
	return v
}

func equalBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v (not bitwise identical)", name, i, got[i], want[i])
		}
	}
}

// parallelShapes are odd shapes chosen above the parallel-flop threshold
// with dimensions not divisible by the row tile, the panel floor, the pack
// lane width, or any tested worker count — the ragged cases a sharding bug
// would corrupt first.
var parallelShapes = []struct{ rows, k, cols int }{
	{65, 129, 67},  // just past one row tile, ragged pack tail
	{131, 37, 129}, // one column past 8 full pack tiles
	{97, 53, 33},   // cols % packLanes = 1
	{128, 28, 128}, // paper-like: 128 filters/hidden, even everywhere
	{33, 300, 17},  // long shared dimension, few rows
}

var testWorkerCounts = []int{2, 3, 7, 16}

// TestMulTransBBiasToParallelBitwise pins the unpacked tiled GEMM: any
// worker count must match the serial result bit for bit.
func TestMulTransBBiasToParallelBitwise(t *testing.T) {
	for _, s := range parallelShapes {
		a := detMatrix(s.rows, s.k, 1.5)
		b := detMatrix(s.cols, s.k, -2.25)
		bias := detVec(s.cols, 0.5)
		want := MulTransBBiasTo(nil, a, b, bias, 1)
		for _, w := range testWorkerCounts {
			got := MulTransBBiasTo(nil, a, b, bias, w)
			equalBits(t, "MulTransBBiasTo", got.Data, want.Data)
		}
	}
}

// TestGemmParallelBitwise pins the fused pack+multiply entry point against
// the unpacked serial kernel, including scratch reuse across calls.
func TestGemmParallelBitwise(t *testing.T) {
	for _, s := range parallelShapes {
		a := detMatrix(s.rows, s.k, 0.75)
		b := detMatrix(s.cols, s.k, -1.125)
		bias := detVec(s.cols, 2.0)
		want := MulTransBBiasTo(nil, a, b, bias, 1)
		var dst *Matrix
		var pack *PackedTransB
		for _, w := range testWorkerCounts {
			dst, pack = GemmParallel(dst, a, b, bias, pack, w)
			equalBits(t, "GemmParallel", dst.Data, want.Data)
		}
	}
}

// TestPackParallelMatchesSerial pins the tile-sharded packers against their
// serial layouts byte for byte.
func TestPackParallelMatchesSerial(t *testing.T) {
	for _, s := range parallelShapes {
		b := detMatrix(s.cols, s.k, 3.5)
		want := PackTransBTo(nil, b)
		m := detMatrix(s.k, s.cols, -0.625)
		wantT := PackTransposeTo(nil, m)
		for _, w := range testWorkerCounts {
			got := PackTransBParTo(nil, b, w)
			equalBits(t, "PackTransBParTo", got.Data, want.Data)
			if got.Cols != want.Cols || got.K != want.K {
				t.Fatalf("PackTransBParTo dims %dx%d, want %dx%d", got.Cols, got.K, want.Cols, want.K)
			}
			gotT := PackTransposeParTo(nil, m, w)
			equalBits(t, "PackTransposeParTo", gotT.Data, wantT.Data)
		}
	}
}

// TestGradKernelsParallelBitwise pins the backward-pass products: the
// accumulating weight-gradient kernels (pre-seeded destinations) and the
// k-outer input-gradient kernel at every worker count.
func TestGradKernelsParallelBitwise(t *testing.T) {
	for _, s := range parallelShapes {
		// dst += a·bᵀ with a pre-seeded destination.
		a := detMatrix(s.rows, s.k, 0.25)
		b := detMatrix(s.cols, s.k, -1.75)
		want := detMatrix(s.rows, s.cols, 4.5)
		MulTransBAccTo(want, a, b, 1)
		for _, w := range testWorkerCounts {
			got := detMatrix(s.rows, s.cols, 4.5)
			MulTransBAccTo(got, a, b, w)
			equalBits(t, "MulTransBAccTo", got.Data, want.Data)
		}

		// dst += aᵀ·b, the transpose-free short-batch weight gradient.
		at := detMatrix(s.k, s.rows, 1.25)
		bt := detMatrix(s.k, s.cols, -0.5)
		wantA := detMatrix(s.rows, s.cols, -2.5)
		MulTransAAccTo(wantA, at, bt, 1)
		for _, w := range testWorkerCounts {
			got := detMatrix(s.rows, s.cols, -2.5)
			MulTransAAccTo(got, at, bt, w)
			equalBits(t, "MulTransAAccTo", got.Data, wantA.Data)
		}

		// dst = a·b with the shared dimension outermost.
		ka := detMatrix(s.rows, s.k, 0.875)
		kb := detMatrix(s.k, s.cols, -3.25)
		wantK := MulKOuterTo(nil, ka, kb, 1)
		for _, w := range testWorkerCounts {
			got := MulKOuterTo(nil, ka, kb, w)
			equalBits(t, "MulKOuterTo", got.Data, wantK.Data)
		}
	}
}

// TestGemmParallelSerialAllocFree gates the workers=1 steady state: with
// warm scratch, the fused pack+multiply performs no allocations.
func TestGemmParallelSerialAllocFree(t *testing.T) {
	a := detMatrix(64, 31, 1.0)
	b := detMatrix(33, 31, -1.0)
	bias := detVec(33, 0.25)
	dst, pack := GemmParallel(nil, a, b, bias, nil, 1)
	allocs := testing.AllocsPerRun(10, func() {
		dst, pack = GemmParallel(dst, a, b, bias, pack, 1)
	})
	if allocs != 0 {
		t.Fatalf("GemmParallel workers=1 steady state allocates %.0f/op, want 0", allocs)
	}
}

// TestParPanel pins the panel-sizing policy: serial keeps the historical
// tile, parallel panels give every worker at least two and respect the
// floor and ceiling.
func TestParPanel(t *testing.T) {
	if got := parPanel(1000, 1, gemmMinPanel); got != gemmRowTile {
		t.Fatalf("parPanel(serial) = %d, want %d", got, gemmRowTile)
	}
	for _, rows := range []int{17, 64, 100, 256, 1000} {
		for _, w := range []int{2, 4, 8, 32} {
			p := parPanel(rows, w, gemmMinPanel)
			if p < gemmMinPanel || p > gemmRowTile {
				t.Fatalf("parPanel(%d,%d) = %d outside [%d,%d]", rows, w, p, gemmMinPanel, gemmRowTile)
			}
			if chunks := (rows + p - 1) / p; rows >= 2*w*gemmMinPanel && chunks < 2*w {
				t.Fatalf("parPanel(%d,%d) = %d gives %d chunks, want >= %d", rows, w, p, chunks, 2*w)
			}
		}
	}
}
