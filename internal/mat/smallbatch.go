package mat

// This file holds the short-batch forward kernel: Y = X·Wᵀ + bias for
// batches too small to amortize the packed-weight pipeline (training
// rollouts of NSteps rows). A plain row-per-row dot product cannot
// vectorize — each output element's shared-dimension chain must stay
// sequential — but distinct batch rows are independent, so the kernel
// gathers the batch into an 8-lane transposed scratch (lane r of word i
// holds X[r][i]) and lets each vector lane carry one row's chain. Every
// element still accumulates bias-seeded, ascending in i, bitwise identical
// to MulTransBBiasTo and the single-sample reference.

// laneWidth is the row capacity of the lane-transposed scratch: two 4-wide
// vector registers per output.
const laneWidth = 8

// MulTransBBiasXTTo computes dst = a·bᵀ + bias with the same shape and
// bitwise contract as MulTransBBiasTo, routed through the 8-lane kernel
// when the platform has one (otherwise it falls back). xt is the reused
// lane-transposed scratch (pass nil to allocate); the returned matrices
// must be used in place of dst and xt. The kernel runs serially — short
// batches are below any useful parallel fan-out — so workers only applies
// on the fallback path.
func MulTransBBiasXTTo(dst, xt, a, b *Matrix, bias []float64, workers int) (*Matrix, *Matrix) {
	if !laneKernels {
		return MulTransBBiasTo(dst, a, b, bias, workers), xt
	}
	return mulLaneForward(dst, xt, a, b, bias)
}

// mulLaneForward is the lane-kernel body behind MulTransBBiasXTTo, split
// out so tests can pin it against the reference regardless of platform
// dispatch.
func mulLaneForward(dst, xt, a, b *Matrix, bias []float64) (*Matrix, *Matrix) {
	in, out := a.Cols, b.Rows
	if b.Cols != in {
		panic("mat: MulTransBBiasXT shape mismatch")
	}
	if bias != nil && len(bias) != out {
		panic("mat: MulTransBBiasXT bias length mismatch")
	}
	dst = EnsureShape(dst, a.Rows, out)
	xt = EnsureShape(xt, in, laneWidth)
	var acc [4 * laneWidth]float64
	for g := 0; g < a.Rows; g += laneWidth {
		gn := a.Rows - g
		if gn > laneWidth {
			gn = laneWidth
		}
		// Gather rows g..g+gn-1 lane-major; unused lanes are zeroed so the
		// kernel never reads stale values (their results are discarded).
		for i := 0; i < in; i++ {
			lrow := xt.Data[i*laneWidth : (i+1)*laneWidth]
			for r := 0; r < gn; r++ {
				lrow[r] = a.Data[(g+r)*in+i]
			}
			for r := gn; r < laneWidth; r++ {
				lrow[r] = 0
			}
		}
		o := 0
		for ; o+4 <= out; o += 4 {
			seedLanes(acc[:], bias, o, 4)
			dotXT8x4(b.Data[o*in:(o+4)*in], in, xt.Data, acc[:])
			for j := 0; j < 4; j++ {
				for r := 0; r < gn; r++ {
					dst.Data[(g+r)*out+o+j] = acc[j*laneWidth+r]
				}
			}
		}
		for ; o < out; o++ {
			seedLanes(acc[:laneWidth], bias, o, 1)
			dotXT8(b.Data[o*in:(o+1)*in], xt.Data, acc[:laneWidth])
			for r := 0; r < gn; r++ {
				dst.Data[(g+r)*out+o] = acc[r]
			}
		}
	}
	return dst, xt
}

// seedLanes fills count lane groups of acc with the bias of outputs
// o..o+count-1 (zero when bias is nil) — the same seed the reference dot
// product starts from.
func seedLanes(acc, bias []float64, o, count int) {
	for j := 0; j < count; j++ {
		v := 0.0
		if bias != nil {
			v = bias[o+j]
		}
		for r := 0; r < laneWidth; r++ {
			acc[j*laneWidth+r] = v
		}
	}
}
