//go:build !amd64

package mat

// laneKernels: without SIMD the 8-lane forward kernel's transposed gather
// only adds overhead, so the short-batch forward falls back.
const laneKernels = false

func axpy(dst, x []float64, alpha float64) { axpyGeneric(dst, x, alpha) }

func dotXT8(w, xt, acc []float64) { dotXT8Generic(w, xt, acc) }

func dotXT8x4(w []float64, in int, xt, acc []float64) { dotXT8x4Generic(w, in, xt, acc) }

func sumsq8(g []float64, p *[8]float64) { sumsq8Generic(g, p) }

func scal(dst []float64, s float64) { scalGeneric(dst, s) }

func rmspropVec(dst, params, grads, msq []float64, lr, decay, rem, eps float64) {
	rmspropGeneric(dst, params, grads, msq, lr, decay, rem, eps)
}
