// Package mat implements the dense linear algebra MiniCost needs: row-major
// float64 matrices with (optionally parallel) multiplication, Cholesky
// factorization, triangular solves, and ordinary least squares via normal
// equations with Tikhonov fallback.
//
// The package is deliberately small — it exists to serve internal/forecast
// (ARIMA coefficient estimation) and internal/nn (layer math), not to be a
// general BLAS.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d want %d", r, len(row), m.Cols))
		}
		copy(m.Data[r*m.Cols:(r+1)*m.Cols], row)
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// SliceRows points view at rows [lo, hi) of m, sharing m's backing array —
// the vectorized rollout engine uses it to run a batched pass over one
// lockstep block of a larger feature arena without copying rows out. view
// must be a caller-owned scratch matrix; its previous contents are dropped.
// The view's capacity is clipped to the window, so kernels cannot write past
// hi even through append-style reslicing.
func (m *Matrix) SliceRows(view *Matrix, lo, hi int) {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("mat: SliceRows [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	view.Rows, view.Cols = hi-lo, m.Cols
	view.Data = m.Data[lo*m.Cols : hi*m.Cols : hi*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		base := r * m.Cols
		for c := 0; c < m.Cols; c++ {
			out.Data[c*out.Cols+r] = m.Data[base+c]
		}
	}
	return out
}

// Mul returns a*b, parallelizing across rows of a when the product is large.
// It panics on a shape mismatch.
func Mul(a, b *Matrix) *Matrix { return MulTo(nil, a, b, 0) }

// MulVec returns a·x for a column vector x (len == a.Cols).
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		row := a.Data[r*a.Cols : (r+1)*a.Cols]
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: Add shape mismatch")
	}
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// ErrNotPositiveDefinite reports a failed Cholesky factorization.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = a for a symmetric
// positive-definite a. It reads only a's lower triangle.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li := l.Data[i*n:]
			lj := l.Data[j*n:]
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b given a's Cholesky factor L (forward then
// backward substitution).
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: SolveCholesky dimension mismatch")
	}
	// Forward: L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n:]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// Solve solves the symmetric positive-definite system a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}

// LeastSquares solves min_beta ||X·beta - y||² via the normal equations
// XᵀX·beta = Xᵀy. If XᵀX is singular (collinear regressors), it retries with
// an escalating ridge penalty, which is the standard remedy for the
// near-collinear design matrices ARIMA fitting produces on flat series.
func LeastSquares(x *Matrix, y []float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("mat: LeastSquares rows %d != len(y) %d", x.Rows, len(y))
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("mat: underdetermined system %dx%d", x.Rows, x.Cols)
	}
	xt := x.T()
	xtx := Mul(xt, x)
	xty := MulVec(xt, y)
	for _, ridge := range []float64{0, 1e-10, 1e-7, 1e-4, 1e-1} {
		a := xtx
		if ridge > 0 {
			a = xtx.Clone()
			// Scale the ridge by the diagonal magnitude so it is unitless.
			trace := 0.0
			for i := 0; i < a.Rows; i++ {
				trace += a.At(i, i)
			}
			lambda := ridge * (trace/float64(a.Rows) + 1)
			for i := 0; i < a.Rows; i++ {
				a.Set(i, i, a.At(i, i)+lambda)
			}
		}
		if beta, err := Solve(a, xty); err == nil {
			return beta, nil
		}
	}
	return nil, ErrNotPositiveDefinite
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
