package mat

import (
	"testing"

	"minicost/internal/rng"
)

func randMat(r *rng.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormalMS(0, 1)
	}
	return m
}

func TestTransposeToMatchesT(t *testing.T) {
	r := rng.New(11)
	for _, sh := range []struct{ rows, cols int }{{1, 1}, {3, 7}, {16, 16}, {33, 5}} {
		m := randMat(r, sh.rows, sh.cols)
		want := m.T()
		got := TransposeTo(nil, m)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("%dx%d: shape %dx%d", sh.rows, sh.cols, got.Rows, got.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d: elem %d mismatch", sh.rows, sh.cols, i)
			}
		}
		// Reuse with a different shape must still be exact.
		m2 := randMat(r, sh.cols, sh.rows)
		got = TransposeTo(got, m2)
		want = m2.T()
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d reuse: elem %d mismatch", sh.cols, sh.rows, i)
			}
		}
	}
}

// TestMulTransBAccBitwise pins the accumulating product to the per-sample
// reference order: seed dst, then add Σ_k a[r][k]·b[c][k] one k at a time.
func TestMulTransBAccBitwise(t *testing.T) {
	r := rng.New(12)
	for _, sh := range []struct{ m, n, k int }{{1, 1, 1}, {3, 5, 7}, {17, 33, 7}, {64, 40, 9}} {
		a := randMat(r, sh.m, sh.k)
		b := randMat(r, sh.n, sh.k)
		dst := randMat(r, sh.m, sh.n) // pre-seeded accumulator
		want := dst.Clone()
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				s := want.At(i, j)
				for k := 0; k < sh.k; k++ {
					s += a.At(i, k) * b.At(j, k)
				}
				want.Set(i, j, s)
			}
		}
		MulTransBAccTo(dst, a, b, 1)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d·(%dx%d)ᵀ: elem %d = %v, want %v (not bitwise equal)",
					sh.m, sh.k, sh.n, sh.k, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// TestMulTransAAccBitwise pins the transpose-free weight-gradient kernel to
// the per-sample reference order: seed dst, then add Σ_k a[k][i]·b[k][j]
// one sample at a time, ascending. It must also agree exactly with the
// transposing route (TransposeTo + MulTransBAccTo) the large-batch path
// takes, so Dense's two backward paths are interchangeable bitwise.
func TestMulTransAAccBitwise(t *testing.T) {
	r := rng.New(15)
	for _, sh := range []struct{ k, m, n int }{{1, 1, 1}, {7, 5, 33}, {5, 128, 40}, {16, 17, 9}} {
		a := randMat(r, sh.k, sh.m)
		b := randMat(r, sh.k, sh.n)
		dst := randMat(r, sh.m, sh.n) // pre-seeded accumulator
		want := dst.Clone()
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				s := want.At(i, j)
				for k := 0; k < sh.k; k++ {
					s += a.At(k, i) * b.At(k, j)
				}
				want.Set(i, j, s)
			}
		}
		other := dst.Clone()
		MulTransAAccTo(dst, a, b, 1)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("(%dx%d)ᵀ·%dx%d: elem %d = %v, want %v (not bitwise equal)",
					sh.k, sh.m, sh.k, sh.n, i, dst.Data[i], want.Data[i])
			}
		}
		MulTransBAccTo(other, TransposeTo(nil, a), TransposeTo(nil, b), 1)
		for i := range want.Data {
			if other.Data[i] != want.Data[i] {
				t.Fatalf("(%dx%d)ᵀ·%dx%d: transposing route elem %d diverges from reference",
					sh.k, sh.m, sh.k, sh.n, i)
			}
		}
	}
}

// TestMulKOuterBitwise pins the shared-dimension-outer product to the
// per-element reference: each dst element sums its k-terms ascending from a
// zero seed, exactly like the per-sample input-gradient loops.
func TestMulKOuterBitwise(t *testing.T) {
	r := rng.New(16)
	for _, sh := range []struct{ m, k, n int }{{1, 1, 1}, {7, 128, 33}, {5, 17, 600}, {16, 9, 40}} {
		a := randMat(r, sh.m, sh.k)
		b := randMat(r, sh.k, sh.n)
		want := New(sh.m, sh.n)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				s := 0.0
				for k := 0; k < sh.k; k++ {
					s += a.At(i, k) * b.At(k, j)
				}
				want.Set(i, j, s)
			}
		}
		// Dirty reused buffer: MulKOuterTo must fully overwrite it.
		dst := randMat(r, sh.m, sh.n)
		dst = MulKOuterTo(dst, a, b, 1)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d·%dx%d: elem %d = %v, want %v (not bitwise equal)",
					sh.m, sh.k, sh.k, sh.n, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestGradKernelShapePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"transA wrong rows", func() { MulTransAAccTo(New(4, 4), New(2, 3), New(2, 4), 1) }},
		{"transA wrong cols", func() { MulTransAAccTo(New(3, 5), New(2, 3), New(2, 4), 1) }},
		{"transA sample mismatch", func() { MulTransAAccTo(New(3, 4), New(2, 3), New(5, 4), 1) }},
		{"kouter shared mismatch", func() { MulKOuterTo(nil, New(2, 3), New(4, 5), 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

func TestMulTransBAccShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 3)
	for _, tc := range []struct {
		name string
		dst  *Matrix
	}{{"wrong rows", New(3, 4)}, {"wrong cols", New(2, 5)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			MulTransBAccTo(tc.dst, a, b, 1)
		}()
	}
}

// TestPackTransposeMatchesPackOfT verifies PackTransposeTo(m) produces the
// identical packed layout as PackTransBTo(mᵀ), including padding, across
// ragged and exact tile widths.
func TestPackTransposeMatchesPackOfT(t *testing.T) {
	r := rng.New(13)
	for _, sh := range []struct{ rows, cols int }{{4, 3}, {7, 16}, {128, 33}, {5, 40}} {
		m := randMat(r, sh.rows, sh.cols)
		want := PackTransBTo(nil, m.T())
		got := PackTransposeTo(nil, m)
		if got.Cols != want.Cols || got.K != want.K || len(got.Data) != len(want.Data) {
			t.Fatalf("%dx%d: packed shape (%d,%d,%d) want (%d,%d,%d)",
				sh.rows, sh.cols, got.Cols, got.K, len(got.Data), want.Cols, want.K, len(want.Data))
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d: packed elem %d mismatch", sh.rows, sh.cols, i)
			}
		}
	}
}

// TestPackTransposeGEMM runs the packed kernel on a transposed pack and
// checks bitwise agreement with the unpacked reference product a·(mᵀ)ᵀ.
func TestPackTransposeGEMM(t *testing.T) {
	r := rng.New(14)
	for _, sh := range []struct{ batch, rows, cols int }{{1, 4, 3}, {9, 7, 19}, {5, 128, 30}} {
		m := randMat(r, sh.rows, sh.cols) // plays W: rows=shared dim, cols=outputs
		a := randMat(r, sh.batch, sh.rows)
		pb := PackTransposeTo(nil, m)
		got := MulPackTransBBiasTo(nil, a, pb, nil, 1)
		want := MulTransBBiasTo(nil, a, m.T(), nil, 1)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("batch %d %dx%d: elem %d = %v, want %v",
					sh.batch, sh.rows, sh.cols, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMulPackAccBitwise pins the packed weight-gradient kernel to the
// per-element reference: dst[m][j] += Σ_k a[m][k]·X[k][j] with each
// element's k-chain ascending from the element's pre-seeded value, bitwise
// equal to both the scalar reference and the unpacked MulTransAAccTo route
// (the kernel it replaces on large batches).
func TestMulPackAccBitwise(t *testing.T) {
	r := rng.New(21)
	for _, sh := range []struct{ m, k, n int }{{1, 1, 1}, {5, 7, 33}, {128, 448, 40}, {17, 16, 16}, {3, 28, 100}} {
		a := randMat(r, sh.m, sh.k)   // dYᵀ: dst rows × shared
		x := randMat(r, sh.k, sh.n)   // input batch: shared × dst cols
		dst := randMat(r, sh.m, sh.n) // pre-seeded accumulator
		want := dst.Clone()
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				s := want.At(i, j)
				for k := 0; k < sh.k; k++ {
					s += a.At(i, k) * x.At(k, j)
				}
				want.Set(i, j, s)
			}
		}
		other := dst.Clone()
		MulPackAccTo(dst, a, PackTransposeTo(nil, x), 1)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d · %dx%d: elem %d = %v, want %v (not bitwise equal)",
					sh.m, sh.k, sh.k, sh.n, i, dst.Data[i], want.Data[i])
			}
		}
		MulTransAAccTo(other, TransposeTo(nil, a), x, 1)
		for i := range want.Data {
			if other.Data[i] != dst.Data[i] {
				t.Fatalf("%dx%d · %dx%d: packed route elem %d diverges from MulTransAAccTo", sh.m, sh.k, sh.k, sh.n, i)
			}
		}
	}
}

// TestMulPackAccParallelIdentical pins worker-count independence: the
// parallel fan-out splits destination rows, which are independent, so any
// worker count must produce bitwise-identical output.
func TestMulPackAccParallelIdentical(t *testing.T) {
	r := rng.New(22)
	a := randMat(r, 64, 448)
	x := randMat(r, 448, 300)
	px := PackTransposeTo(nil, x)
	ref := randMat(r, 64, 300)
	seed := ref.Clone()
	MulPackAccTo(ref, a, px, 1)
	for _, w := range []int{2, 4, 8} {
		dst := seed.Clone()
		MulPackAccTo(dst, a, px, w)
		for i := range ref.Data {
			if dst.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: elem %d diverges from serial", w, i)
			}
		}
	}
}

func TestMulPackAccShapePanics(t *testing.T) {
	a := New(4, 8)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"shared mismatch", func() { MulPackAccTo(New(4, 5), a, PackTransposeTo(nil, New(9, 5)), 1) }},
		{"dst rows", func() { MulPackAccTo(New(3, 5), a, PackTransposeTo(nil, New(8, 5)), 1) }},
		{"dst cols", func() { MulPackAccTo(New(4, 6), a, PackTransposeTo(nil, New(8, 5)), 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}
