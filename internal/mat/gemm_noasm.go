//go:build !amd64

package mat

func dotPack16(a, bp, acc []float64) { dotPack16Generic(a, bp, acc) }
