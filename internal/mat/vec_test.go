package mat

import (
	"math"
	"testing"

	"minicost/internal/rng"
)

// TestAxpyBitwise pins axpy (whichever implementation the platform selects)
// to the plain scalar statement across ragged lengths, including ones that
// exercise the 8-wide, 4-wide and scalar-tail paths of the AVX kernel.
func TestAxpyBitwise(t *testing.T) {
	r := rng.New(21)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 127, 1024, 3206} {
		dst := make([]float64, n)
		x := make([]float64, n)
		for i := range dst {
			dst[i] = r.NormalMS(0, 1)
			x[i] = r.NormalMS(0, 1)
		}
		alpha := r.NormalMS(0, 1)
		want := append([]float64(nil), dst...)
		for i := range want {
			want[i] += alpha * x[i]
		}
		axpy(dst, x, alpha)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("len %d: elem %d = %v, want %v (not bitwise equal)", n, i, dst[i], want[i])
			}
		}
	}
}

// TestSumSquaresMatchesReferenceBitwise pins the dispatched 8-chain norm
// against a scalar recomputation of the same chain structure across tail
// lengths.
func TestSumSquaresMatchesReferenceBitwise(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{0, 1, 3, 7, 8, 9, 16, 100, 3206} {
		g := make([]float64, n)
		for i := range g {
			g[i] = r.Normal()
		}
		var p [8]float64
		sumsq8Generic(g[:n&^7], &p)
		want := ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]))
		for _, v := range g[n&^7:] {
			want += v * v
		}
		if got := SumSquares(g); got != want {
			t.Fatalf("n=%d: SumSquares = %v, want %v (not bitwise equal)", n, got, want)
		}
	}
}

// TestScaleVecBitwise pins the dispatched scale against the scalar loop,
// including sub-vector and ragged-tail lengths.
func TestScaleVecBitwise(t *testing.T) {
	r := rng.New(6)
	for _, n := range []int{1, 2, 3, 4, 5, 8, 11, 100, 3206} {
		got := make([]float64, n)
		want := make([]float64, n)
		for i := range got {
			got[i] = r.Normal()
			want[i] = got[i]
		}
		s := r.Normal()
		ScaleVec(got, s)
		scalGeneric(want, s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: elem %d = %v, want %v (not bitwise equal)", n, i, got[i], want[i])
			}
		}
	}
}

// TestRMSPropStepBitwise pins RMSPropStep to the scalar update expression:
// sustained steps over ragged lengths so the vector body and the peeled tail
// both accumulate moments, with an aliased-dst pass mirroring the in-place
// optimizer use.
func TestRMSPropStepBitwise(t *testing.T) {
	r := rng.New(22)
	// float64 variables, not untyped constants: the reference below must
	// compute 1-decay with the same float64 subtraction the kernel uses.
	lr, decay, eps := 1e-3, 0.99, 1e-8
	for _, n := range []int{1, 2, 3, 4, 5, 8, 11, 203, 1025} {
		params := make([]float64, n)
		for i := range params {
			params[i] = r.NormalMS(0, 1)
		}
		wantP := append([]float64(nil), params...)
		wantM := make([]float64, n)
		gotM := make([]float64, n)
		grads := make([]float64, n)
		dst := make([]float64, n)
		for step := 0; step < 9; step++ {
			for i := range grads {
				grads[i] = r.NormalMS(0, 1)
			}
			rem := 1 - decay
			for i, g := range grads {
				m := decay*wantM[i] + rem*g*g
				wantM[i] = m
				wantP[i] = wantP[i] - lr*g/(math.Sqrt(m)+eps)
			}
			if step%2 == 0 {
				RMSPropStep(dst, params, grads, gotM, lr, decay, eps)
				copy(params, dst)
			} else {
				RMSPropStep(params, params, grads, gotM, lr, decay, eps)
			}
			for i := range wantP {
				if params[i] != wantP[i] {
					t.Fatalf("len %d step %d: param %d = %v, want %v (not bitwise equal)",
						n, step, i, params[i], wantP[i])
				}
				if gotM[i] != wantM[i] {
					t.Fatalf("len %d step %d: msq %d = %v, want %v (not bitwise equal)",
						n, step, i, gotM[i], wantM[i])
				}
			}
		}
	}
}

func TestRMSPropStepLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	RMSPropStep(make([]float64, 4), make([]float64, 4), make([]float64, 3), make([]float64, 4), 1e-3, 0.99, 1e-8)
}
