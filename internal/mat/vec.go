package mat

import "math"

// This file holds flat-vector kernels shared by the training hot path: an
// accumulating axpy used by the short-batch gradient products in grad.go and
// the RMSProp parameter step applied on every update. Both are elementwise —
// distinct indices never interact — so the AVX implementations (vec_amd64.s)
// vectorize across elements while each element keeps exactly the scalar
// operation sequence and roundings, preserving the bitwise contract the
// training-engine equivalence tests pin.

// axpy accumulates dst[i] += alpha * x[i]. Each element receives exactly one
// product rounding and one addition rounding, identical to the scalar
// statement, so the vectorized implementation is bitwise-equal to
// axpyGeneric. len(x) must be >= len(dst).
func axpyGeneric(dst, x []float64, alpha float64) {
	_ = x[len(dst)-1]
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// dotXT8Generic is the scalar reference for the 8-lane column kernel:
// acc[r] += Σ_i w[i] · xt[i*8+r], every lane's accumulation sequential in i.
func dotXT8Generic(w, xt, acc []float64) {
	for i, wv := range w {
		lrow := xt[i*laneWidth : i*laneWidth+laneWidth]
		for r, xv := range lrow {
			acc[r] += wv * xv
		}
	}
}

// dotXT8x4Generic runs dotXT8Generic for four consecutive length-in rows of
// w into four lane groups of acc.
func dotXT8x4Generic(w []float64, in int, xt, acc []float64) {
	for j := 0; j < 4; j++ {
		dotXT8Generic(w[j*in:(j+1)*in], xt, acc[j*laneWidth:(j+1)*laneWidth])
	}
}

// SumSquares returns Σ g[i]² accumulated in eight independent chains (lane l
// sums g[i*8+l]²), reduced in a fixed order, with a sequential scalar tail.
// The chain split hides the add latency that serializes a single-chain sum;
// the AVX kernel computes the identical eight partials, so both platforms
// return the same bits. Note the result differs from a single sequential
// chain — callers adopting this reassociate their norm.
func SumSquares(g []float64) float64 {
	var p [8]float64
	n := len(g) &^ 7
	if n > 0 {
		sumsq8(g[:n], &p)
	}
	ss := ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]))
	for _, v := range g[n:] {
		ss += v * v
	}
	return ss
}

// sumsq8Generic is the scalar reference for the 8-chain partial sums;
// len(g) must be a multiple of 8.
func sumsq8Generic(g []float64, p *[8]float64) {
	for i := 0; i+8 <= len(g); i += 8 {
		p[0] += g[i] * g[i]
		p[1] += g[i+1] * g[i+1]
		p[2] += g[i+2] * g[i+2]
		p[3] += g[i+3] * g[i+3]
		p[4] += g[i+4] * g[i+4]
		p[5] += g[i+5] * g[i+5]
		p[6] += g[i+6] * g[i+6]
		p[7] += g[i+7] * g[i+7]
	}
}

// ScaleVec multiplies every element of dst by s. Elements are independent
// and each receives exactly one multiply rounding, so the vectorized form is
// bitwise-identical to the scalar loop. (Scale in mat.go is the Matrix
// variant.)
func ScaleVec(dst []float64, s float64) { scal(dst, s) }

func scalGeneric(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}

// RMSPropStep applies one RMSProp update over flat vectors:
//
//	msq[i] = decay*msq[i] + (1-decay)*g*g
//	dst[i] = params[i] - lr*g / (sqrt(msq[i]) + eps)
//
// dst may alias params. All four slices must share a length. Every operation
// is elementwise and IEEE correctly rounded (including packed sqrt and
// divide), so the AVX path produces bitwise-identical results to the scalar
// loop — nn.RMSProp routes both its in-place and double-buffered steps here.
func RMSPropStep(dst, params, grads, msq []float64, lr, decay, eps float64) {
	if len(params) != len(grads) || len(dst) != len(grads) || len(msq) != len(grads) {
		panic("mat: RMSPropStep length mismatch")
	}
	rmspropVec(dst, params, grads, msq, lr, decay, 1-decay, eps)
}

// rmspropGeneric is the scalar reference for RMSPropStep. Four independent
// element chains run per iteration so the long-latency sqrt/divide operations
// overlap; each element's own arithmetic is the plain scalar expression.
func rmspropGeneric(dst, params, grads, msq []float64, lr, decay, rem, eps float64) {
	i := 0
	for ; i+4 <= len(grads); i += 4 {
		g0, g1, g2, g3 := grads[i], grads[i+1], grads[i+2], grads[i+3]
		m0 := decay*msq[i] + rem*g0*g0
		m1 := decay*msq[i+1] + rem*g1*g1
		m2 := decay*msq[i+2] + rem*g2*g2
		m3 := decay*msq[i+3] + rem*g3*g3
		msq[i], msq[i+1], msq[i+2], msq[i+3] = m0, m1, m2, m3
		dst[i] = params[i] - lr*g0/(math.Sqrt(m0)+eps)
		dst[i+1] = params[i+1] - lr*g1/(math.Sqrt(m1)+eps)
		dst[i+2] = params[i+2] - lr*g2/(math.Sqrt(m2)+eps)
		dst[i+3] = params[i+3] - lr*g3/(math.Sqrt(m3)+eps)
	}
	for ; i < len(grads); i++ {
		g := grads[i]
		m := decay*msq[i] + rem*g*g
		msq[i] = m
		dst[i] = params[i] - lr*g/(math.Sqrt(m)+eps)
	}
}
