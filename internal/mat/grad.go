package mat

import (
	"fmt"

	"minicost/internal/par"
)

// This file holds the kernels behind the batched *gradient* pass
// (nn.BackwardBatch): a buffer-reusing transpose, accumulating products for
// weight gradients (one tiled for large batches, one transpose-free for
// short training rollouts), a shared-dimension-outer product for short-batch
// input gradients, and a packer that reads a matrix transposed so the
// large-batch input-gradient GEMM can run on the packed SIMD kernel without
// materializing Wᵀ first.
//
// The numerical contract matches gemm.go: every output element's shared-
// dimension accumulation runs sequentially in index order, seeded — for the
// accumulating variant — with the element's existing value. That is exactly
// the order in which the single-sample nn backward loops add one gradient
// term per sample, so batched gradients are bitwise identical to the
// per-sample reference.

// TransposeTo writes srcᵀ into dst, reusing dst's backing storage when large
// enough (pass nil to allocate); the returned matrix must be used in place
// of dst. It is the scratch-friendly sibling of Matrix.T.
func TransposeTo(dst, src *Matrix) *Matrix {
	return TransposeParTo(dst, src, 1)
}

// TransposeParTo is TransposeTo with source rows sharded over workers; each
// source row writes one strided destination column, so shards touch disjoint
// elements and the result is identical at any worker count. Small matrices
// transpose serially regardless of workers.
func TransposeParTo(dst, src *Matrix, workers int) *Matrix {
	dst = EnsureShape(dst, src.Cols, src.Rows)
	// The closure is built only on the parallel branch: a func literal handed
	// to ForBatched escapes, and the workers=1 path must stay allocation-free.
	if workers == 1 || len(src.Data) < packParMin {
		transposeRows(dst, src, 0, src.Rows)
		return dst
	}
	w := resolveWorkers(workers)
	par.ForBatched(src.Rows, parPanel(src.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		transposeRows(dst, src, lo, hi)
	})
	return dst
}

// transposeRows writes source rows [lo, hi) into their strided destination
// columns; shards touch disjoint elements.
//
//minicost:hotpath
func transposeRows(dst, src *Matrix, lo, hi int) {
	for r := lo; r < hi; r++ {
		row := src.Data[r*src.Cols : (r+1)*src.Cols]
		for c, v := range row {
			dst.Data[c*dst.Cols+r] = v
		}
	}
}

// MulTransBAccTo accumulates dst += a·bᵀ in place; dst must already have
// shape a.Rows×b.Rows (there is no implicit zeroing — weight-gradient
// accumulators arrive pre-seeded). Each element's k-chain is sequential and
// seeded with the element's current value, so adding one rank-per-sample
// term at a time through this kernel reproduces the per-sample accumulation
// bitwise. workers bounds the parallel fan-out as in MulTransBTo.
func MulTransBAccTo(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransBAcc shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTransBAcc dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if workers == 1 || a.Rows*a.Cols*b.Rows < gemmParallelFlops {
		mulTransBAccBlock(dst, a, b, 0, a.Rows)
		return
	}
	w := resolveWorkers(workers)
	par.ForBatched(a.Rows, parPanel(a.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		mulTransBAccBlock(dst, a, b, lo, hi)
	})
}

// MulTransAAccTo accumulates dst += aᵀ·b in place (a is K×M, b is K×N, dst
// is M×N) without materializing the transpose — the weight-gradient product
// dW += dYᵀ·X taken directly on the row-major batch matrices. For each dst
// row the K samples stream past while the row accumulator stays
// cache-resident, so for the short training batches this kernel serves
// (K = NSteps) the only full-size memory traffic is dst itself. Each
// element's K-chain runs in ascending sample order seeded with the
// element's current value — the per-sample accumulation order — and
// distinct dst rows are independent, so the parallel fan-out splits on
// them.
func MulTransAAccTo(dst, a, b *Matrix, workers int) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulTransAAcc shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTransAAcc dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if workers == 1 || a.Rows*a.Cols*b.Cols < gemmParallelFlops {
		mulTransAAccBlock(dst, a, b, 0, dst.Rows)
		return
	}
	w := resolveWorkers(workers)
	par.ForBatched(dst.Rows, parPanel(dst.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		mulTransAAccBlock(dst, a, b, lo, hi)
	})
}

// gradColTile is the column-stripe width for the short-batch gradient
// kernels: 256 float64s keep one stripe of all NSteps sample rows (the
// operand revisited across the long output dimension) resident in L1 instead
// of re-streaming it from L2 on every pass. Striping only partitions
// independent output elements, so accumulation order is untouched.
const gradColTile = 256

// mulTransAAccBlock fills dst rows [lo, hi); the sample loop is inside the
// row loop so every element accumulates its samples in ascending order, and
// the column stripes keep the revisited b stripe cache-resident while dst
// streams through exactly once.
//
//minicost:hotpath
func mulTransAAccBlock(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for c0 := 0; c0 < n; c0 += gradColTile {
		c1 := c0 + gradColTile
		if c1 > n {
			c1 = n
		}
		for m := lo; m < hi; m++ {
			drow := dst.Data[m*n+c0 : m*n+c1]
			for k := 0; k < a.Rows; k++ {
				g := a.Data[k*a.Cols+m]
				axpy(drow, b.Data[k*n+c0:k*n+c1], g)
			}
		}
	}
}

// MulKOuterTo computes dst = a·b with the shared dimension as the outermost
// loop: each b row streams through the cache exactly once while the whole
// dst block stays resident — the right trade for short-batch products where
// dst has only NSteps rows but b is a full weight matrix (Dense's training
// input gradient dX = dY·W). Every element's k-chain is ascending and
// seeded at zero, matching the per-sample input-gradient loops. The
// parallel fan-out splits b's columns, which preserves the k-outer order
// inside each stripe.
func MulKOuterTo(dst, a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulKOuter shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst = EnsureShape(dst, a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	if workers == 1 || a.Rows*a.Cols*b.Cols < gemmParallelFlops {
		mulKOuterBlock(dst, a, b, 0, b.Cols)
		return dst
	}
	// Column stripes stay at least gradColTile wide so the cache tiling
	// inside each stripe is unchanged; more workers just get more stripes.
	w := resolveWorkers(workers)
	stripe := (b.Cols + 2*w - 1) / (2 * w)
	if stripe < gradColTile {
		stripe = gradColTile
	}
	par.ForBatched(b.Cols, stripe, w, func(lo, hi int) {
		mulKOuterBlock(dst, a, b, lo, hi)
	})
	return dst
}

// mulKOuterBlock accumulates dst columns [lo, hi) with the shared dimension
// outermost inside each column stripe: the dst stripe stays cache-resident
// across the whole k sweep while b's stripe streams through once, instead of
// every k pass resweeping the full dst width out of L2.
//
//minicost:hotpath
func mulKOuterBlock(dst, a, b *Matrix, lo, hi int) {
	for c0 := lo; c0 < hi; c0 += gradColTile {
		c1 := c0 + gradColTile
		if c1 > hi {
			c1 = hi
		}
		for k := 0; k < b.Rows; k++ {
			brow := b.Data[k*b.Cols+c0 : k*b.Cols+c1]
			for r := 0; r < a.Rows; r++ {
				v := a.Data[r*a.Cols+k]
				axpy(dst.Data[r*dst.Cols+c0:r*dst.Cols+c1], brow, v)
			}
		}
	}
}

// MulPackAccTo accumulates dst += a·X from a packed right operand:
// dst[m][j] += Σ_k a[m][k]·X[k][j], with X pre-packed by PackTransposeTo
// (pb.Cols = X's columns, pb.K = X's rows = the shared dimension). It is the
// large-batch weight-gradient kernel: with a = dYᵀ and X the retained input
// batch, dst is dW and the shared dimension is the batch row index, so every
// gradient element accumulates its per-sample terms in ascending row order
// seeded from its current value — the per-sample reference order — while the
// inner kernel runs one destination column per SIMD lane exactly like the
// packed forward GEMM. Versus the unpacked tiled product this converts the
// k-loads of one destination tile from full-width row strides into
// contiguous packed segments, and it replaces the batch-matrix transpose a
// caller would otherwise materialize with a cache-friendly pack of the same
// traffic. workers bounds the parallel fan-out over destination rows.
func MulPackAccTo(dst, a *Matrix, pb *PackedTransB, workers int) {
	if a.Cols != pb.K {
		panic(fmt.Sprintf("mat: MulPackAcc shape mismatch %dx%d · packed %dx%d", a.Rows, a.Cols, pb.K, pb.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != pb.Cols {
		panic(fmt.Sprintf("mat: MulPackAcc dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, pb.Cols))
	}
	if workers == 1 || a.Rows*a.Cols*pb.Cols < gemmParallelFlops {
		mulPackAccBlock(dst, a, pb, 0, a.Rows)
		return
	}
	w := resolveWorkers(workers)
	par.ForBatched(a.Rows, parPanel(a.Rows, w, gemmMinPanel), w, func(lo, hi int) {
		mulPackAccBlock(dst, a, pb, lo, hi)
	})
}

// mulPackAccBlock accumulates into dst rows [lo, hi) from the packed
// operand. Column tiles are the outer loop with the shared dimension
// blocked inside them (packKBlock, as in mulPackBlock) so the revisited
// segment stays cache-hot; dotPack16 accumulates into the live destination
// slice, so no seeding pass is needed — the existing values are the seed.
// The ragged last tile uses per-lane scalar dots, each still k-sequential
// from the element's current value.
//
//minicost:hotpath
func mulPackAccBlock(dst, a *Matrix, pb *PackedTransB, lo, hi int) {
	n, k := pb.Cols, pb.K
	full := n / packLanes * packLanes
	for j := 0; j < full; j += packLanes {
		tile := pb.Data[j*k : (j+packLanes)*k]
		for k0 := 0; k0 < k; k0 += packKBlock {
			k1 := k0 + packKBlock
			if k1 > k {
				k1 = k
			}
			seg := tile[k0*packLanes : k1*packLanes]
			for r := lo; r < hi; r++ {
				dotPack16(a.Data[r*k+k0:r*k+k1], seg, dst.Data[r*n+j:r*n+j+packLanes])
			}
		}
	}
	if full < n {
		seg := pb.Data[full*k:]
		for r := lo; r < hi; r++ {
			arow := a.Data[r*k : (r+1)*k]
			drow := dst.Data[r*n : (r+1)*n]
			for lane := 0; full+lane < n; lane++ {
				s := drow[full+lane]
				for i, v := range arow {
					s += v * seg[i*packLanes+lane]
				}
				drow[full+lane] = s
			}
		}
	}
}

// mulTransBAccBlock fills output rows [lo, hi) like mulTransBBlock, except
// each accumulator is seeded from dst instead of a bias vector. Four
// independent output columns run together to hide FP-add latency; every
// element's own k-accumulation stays sequential.
//
//minicost:hotpath
func mulTransBAccBlock(dst, a, b *Matrix, lo, hi int) {
	n, k := b.Rows, a.Cols
	for j0 := 0; j0 < n; j0 += gemmColTile {
		j1 := j0 + gemmColTile
		if j1 > n {
			j1 = n
		}
		for r := lo; r < hi; r++ {
			arow := a.Data[r*k : (r+1)*k]
			drow := dst.Data[r*n : (r+1)*n]
			j := j0
			for ; j+4 <= j1; j += 4 {
				b0 := b.Data[j*k : j*k+k]
				b1 := b.Data[(j+1)*k : (j+1)*k+k]
				b2 := b.Data[(j+2)*k : (j+2)*k+k]
				b3 := b.Data[(j+3)*k : (j+3)*k+k]
				s0, s1, s2, s3 := drow[j], drow[j+1], drow[j+2], drow[j+3]
				for i, v := range arow {
					s0 += v * b0[i]
					s1 += v * b1[i]
					s2 += v * b2[i]
					s3 += v * b3[i]
				}
				drow[j], drow[j+1], drow[j+2], drow[j+3] = s0, s1, s2, s3
			}
			for ; j < j1; j++ {
				brow := b.Data[j*k : j*k+k]
				s := drow[j]
				for i, v := range arow {
					s += v * brow[i]
				}
				drow[j] = s
			}
		}
	}
}
