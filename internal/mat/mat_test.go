package mat

import (
	"math"
	"testing"
	"testing/quick"

	"minicost/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormalMS(0, 1)
	}
	return m
}

// naiveMul is the textbook triple loop used as an oracle for Mul.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, shape := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {17, 31, 13}, {64, 64, 64}, {100, 3, 100}} {
		a := randomMatrix(r, shape[0], shape[1])
		b := randomMatrix(r, shape[1], shape[2])
		got, want := Mul(a, b), naiveMul(a, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("shape %v: Mul mismatch at %d: %v vs %v", shape, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulLargeTriggersParallelPath(t *testing.T) {
	r := rng.New(2)
	a := randomMatrix(r, 80, 90) // 80*90*70 > 1<<16 → parallel path
	b := randomMatrix(r, 90, 70)
	got, want := Mul(a, b), naiveMul(a, b)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-8) {
			t.Fatalf("parallel Mul mismatch at %d", i)
		}
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes did not panic")
		}
	}()
	Mul(New(2, 3), New(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(3)
	a := randomMatrix(r, 7, 11)
	b := a.T().T()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("T∘T is not identity")
		}
	}
	if got := a.T().At(3, 5); got != a.At(5, 3) {
		t.Fatal("transpose element mismatch")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rng.New(4)
	a := randomMatrix(r, 9, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = r.Float64()
	}
	xm := New(6, 1)
	copy(xm.Data, x)
	want := Mul(a, xm)
	got := MulVec(a, x)
	for i := range got {
		if !almostEq(got[i], want.Data[i], 1e-12) {
			t.Fatal("MulVec mismatch")
		}
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{1, 2, 5, 20} {
		// Build SPD a = b·bᵀ + n·I.
		b := randomMatrix(r, n, n)
		a := Mul(b, b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := Mul(l, l.T())
		for i := range a.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("n=%d: L·Lᵀ != A at %d", n, i)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("Cholesky accepted a non-square matrix")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	r := rng.New(6)
	n := 12
	b := randomMatrix(r, n, n)
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = r.NormalMS(0, 2)
	}
	rhs := MulVec(a, want)
	got, err := Solve(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !almostEq(got[i], want[i], 1e-7) {
			t.Fatalf("Solve x[%d]=%v want %v", i, got[i], want[i])
		}
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	r := rng.New(7)
	n, p := 500, 4
	beta := []float64{2.5, -1.0, 0.5, 3.0}
	x := randomMatrix(r, n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = Dot(x.Row(i), beta) + r.NormalMS(0, 0.01)
	}
	got, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range beta {
		if !almostEq(got[i], beta[i], 0.01) {
			t.Fatalf("beta[%d]=%v want %v", i, got[i], beta[i])
		}
	}
}

func TestLeastSquaresCollinearFallsBackToRidge(t *testing.T) {
	// Two identical columns: XᵀX singular; ridge must still return something
	// finite whose fit is good.
	n := 100
	x := New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i)/10 + 1
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		y[i] = 3 * v
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pred := Dot(x.Row(i), beta)
		if !almostEq(pred, y[i], 1e-2*math.Abs(y[i])+1e-2) {
			t.Fatalf("ridge fit poor at %d: pred %v want %v (beta=%v)", i, pred, y[i], beta)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares(New(2, 5), []float64{1, 2}); err == nil {
		t.Fatal("underdetermined system accepted")
	}
}

func TestAddScaleDotAXPY(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := Add(a, b)
	if sum.At(1, 1) != 44 {
		t.Fatal("Add wrong")
	}
	if Scale(a, 2).At(0, 1) != 4 {
		t.Fatal("Scale wrong")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatal("AXPY wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (A·B)·C == A·(B·C) within float tolerance, for random small matrices.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := randomMatrix(r, 4, 3)
		b := randomMatrix(r, 3, 5)
		c := randomMatrix(r, 5, 2)
		l := Mul(Mul(a, b), c)
		rr := Mul(a, Mul(b, c))
		for i := range l.Data {
			if !almostEq(l.Data[i], rr.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func BenchmarkMul64(b *testing.B) {
	r := rng.New(1)
	x := randomMatrix(r, 64, 64)
	y := randomMatrix(r, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMul256Parallel(b *testing.B) {
	r := rng.New(1)
	x := randomMatrix(r, 256, 256)
	y := randomMatrix(r, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	r := rng.New(1)
	m := randomMatrix(r, 64, 64)
	a := Mul(m, m.T())
	for i := 0; i < 64; i++ {
		a.Set(i, i, a.At(i, i)+64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSliceRowsSharesStorage pins the view contract: a row window aliases
// the parent's backing array (writes through the view land in the parent),
// its capacity is clipped at the window end, and re-pointing an existing
// view allocates nothing.
func TestSliceRowsSharesStorage(t *testing.T) {
	r := rng.New(3)
	m := randomMatrix(r, 6, 4)
	var view Matrix
	m.SliceRows(&view, 2, 5)
	if view.Rows != 3 || view.Cols != 4 {
		t.Fatalf("view shape %dx%d, want 3x4", view.Rows, view.Cols)
	}
	for i := 0; i < view.Rows; i++ {
		for j := 0; j < view.Cols; j++ {
			if view.At(i, j) != m.At(i+2, j) {
				t.Fatalf("view(%d,%d) = %v, want %v", i, j, view.At(i, j), m.At(i+2, j))
			}
		}
	}
	view.Set(0, 0, 42)
	if m.At(2, 0) != 42 {
		t.Fatal("write through the view did not reach the parent")
	}
	if cap(view.Data) != len(view.Data) {
		t.Fatalf("view capacity %d not clipped to window length %d", cap(view.Data), len(view.Data))
	}
	allocs := testing.AllocsPerRun(10, func() { m.SliceRows(&view, 0, 3) })
	if allocs != 0 {
		t.Fatalf("SliceRows allocates %.0f/op, want 0", allocs)
	}
}

// TestSliceRowsOutOfRangePanics covers the window validation.
func TestSliceRowsOutOfRangePanics(t *testing.T) {
	m := New(4, 2)
	var view Matrix
	for _, w := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SliceRows(%d,%d) did not panic", w[0], w[1])
				}
			}()
			m.SliceRows(&view, w[0], w[1])
		}()
	}
}
