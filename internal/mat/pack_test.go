package mat

import (
	"testing"

	"minicost/internal/rng"
)

func TestPackTransBLayout(t *testing.T) {
	b := randomMatrix(rng.New(41), 19, 5) // ragged: 19 columns -> 2 tiles
	pb := PackTransBTo(nil, b)
	if pb.Cols != 19 || pb.K != 5 {
		t.Fatalf("packed dims %dx%d", pb.Cols, pb.K)
	}
	if len(pb.Data) != 2*5*packLanes {
		t.Fatalf("packed len %d", len(pb.Data))
	}
	for j := 0; j < b.Rows; j++ {
		tile, lane := j/packLanes, j%packLanes
		for i := 0; i < b.Cols; i++ {
			if got := pb.Data[tile*b.Cols*packLanes+i*packLanes+lane]; got != b.At(j, i) {
				t.Fatalf("pack[%d][%d] = %v, want %v", j, i, got, b.At(j, i))
			}
		}
	}
	// Padded lanes must be zero.
	for lane := 19 % packLanes; lane < packLanes; lane++ {
		for i := 0; i < b.Cols; i++ {
			if v := pb.Data[1*b.Cols*packLanes+i*packLanes+lane]; v != 0 {
				t.Fatalf("pad lane %d not zeroed: %v", lane, v)
			}
		}
	}
}

// TestMulPackMatchesScalarBitwise pins the packed (SIMD on amd64) kernel to
// the scalar reference: identical bits at every shape, including ragged
// tiles, tiny k, and no-bias calls.
func TestMulPackMatchesScalarBitwise(t *testing.T) {
	r := rng.New(42)
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 3}, {7, 34, 16}, {13, 9, 17},
		{64, 128, 32}, {57, 3206, 128}, {2, 4, 128}, {5, 7, 15},
	}
	for _, c := range cases {
		a := randomMatrix(r, c.m, c.k)
		b := randomMatrix(r, c.n, c.k)
		bias := make([]float64, c.n)
		for i := range bias {
			bias[i] = r.NormalMS(0, 1)
		}
		pb := PackTransBTo(nil, b)
		for _, workers := range []int{1, 0, 4} {
			for _, useBias := range []bool{true, false} {
				bs := bias
				if !useBias {
					bs = nil
				}
				want := MulTransBBiasTo(nil, a, b, bs, 1)
				got := MulPackTransBBiasTo(nil, a, pb, bs, workers)
				for i := range want.Data {
					if want.Data[i] != got.Data[i] {
						t.Fatalf("%dx%d·(%dx%d)ᵀ workers=%d bias=%v: packed[%d]=%v scalar=%v",
							c.m, c.k, c.n, c.k, workers, useBias, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

func TestMulPackReusesBuffers(t *testing.T) {
	r := rng.New(43)
	a := randomMatrix(r, 10, 20)
	b := randomMatrix(r, 17, 20)
	pb := PackTransBTo(nil, b)
	packData := &pb.Data[0]
	pb = PackTransBTo(pb, b)
	if &pb.Data[0] != packData {
		t.Fatal("PackTransBTo reallocated a sufficient buffer")
	}
	dst := MulPackTransBBiasTo(nil, a, pb, nil, 1)
	dstData := &dst.Data[0]
	dst = MulPackTransBBiasTo(dst, a, pb, nil, 1)
	if &dst.Data[0] != dstData {
		t.Fatal("MulPackTransBBiasTo reallocated a sufficient buffer")
	}
	allocs := testing.AllocsPerRun(10, func() {
		pb = PackTransBTo(pb, b)
		dst = MulPackTransBBiasTo(dst, a, pb, nil, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pack+mul allocates %.0f times, want 0", allocs)
	}
}
