package lint

import (
	"go/ast"
	"go/types"
)

// newShardContract builds the shardcontract analyzer. The PR-5 parallel
// kernels are bitwise-identical to their serial counterparts at any worker
// count only because every par worker body follows the shard-outputs-only
// contract (DESIGN.md §13): a worker may write exclusively through indexed
// elements of captured output slices (out[i] = v, outs[i][d] = v,
// e.dps[i] = v), never to a captured scalar, struct field, or pointee —
// those writes race or make the result depend on goroutine interleaving.
//
// The analyzer inspects every function-literal worker body passed to
// par.For, par.ForChunked, par.ForBatched, or par.ForShards and flags
// assignments and ++/-- statements whose target's root identifier is
// captured from the enclosing function without the write path crossing an
// index expression.
func newShardContract() *Analyzer {
	a := &Analyzer{
		Name: "shardcontract",
		Doc:  "par worker bodies may write captured state only through indexed output slices",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(pass.Info, call)
				isParFor := false
				for _, fn := range [...]string{"For", "ForChunked", "ForBatched", "ForShards"} {
					if isPkgFunc(obj, "minicost/internal/par", fn) {
						isParFor = true
					}
				}
				if !isParFor || len(call.Args) == 0 {
					return true
				}
				// The worker body is the trailing func-literal argument; a
				// named function or method value cannot capture loop state
				// introduced at this call site, so only literals are checked.
				lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
				if !ok {
					return true
				}
				checkWorkerBody(pass, lit)
				return true
			})
		}
	}
	return a
}

func checkWorkerBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literals (e.g. a deferred cleanup) judged by their own par call, if any
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWorkerWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkWorkerWrite(pass, lit, st.X)
		}
		return true
	})
}

// checkWorkerWrite flags lhs when it writes a captured variable without
// indexing into it.
func checkWorkerWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	root, indexed := rootIdent(lhs)
	if root == nil || root.Name == "_" || indexed {
		return
	}
	v, ok := pass.Info.Uses[root].(*types.Var)
	if !ok {
		return
	}
	if pass.Pkg != nil && v.Parent() == pass.Pkg.Scope() {
		// Package-level state: still a violation — shared across workers.
		pass.Reportf(lhs.Pos(),
			"par worker writes package-level %q directly; shard-outputs-only contract requires indexed writes to an output slice", root.Name)
		return
	}
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return // declared inside the worker body (or a parameter of it)
	}
	pass.Reportf(lhs.Pos(),
		"par worker writes captured %q directly; shard-outputs-only contract requires indexed writes to an output slice", root.Name)
}
