package lint_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"minicost/internal/lint"
)

// wantRe extracts `// want "regex"` expectation comments: each one demands
// exactly one diagnostic on its line whose message matches the regex.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// runAnalyzer type-checks the testdata package in dir (as import path
// pkgPath, so analyzers keyed on package identity can be exercised) and runs
// the single named analyzer over it, returning its findings.
func runAnalyzer(t *testing.T, analyzer, dir, pkgPath string) ([]lint.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	suite := &lint.Suite{}
	for _, a := range lint.NewSuite().Analyzers {
		if a.Name == analyzer {
			suite.Analyzers = append(suite.Analyzers, a)
		}
	}
	if len(suite.Analyzers) != 1 {
		t.Fatalf("analyzer %q not found", analyzer)
	}
	diags := suite.RunPackage(fset, pkgPath, pkg, info, files)
	diags = append(diags, suite.Finish(fset)...)
	return diags, fset, files
}

// checkExpectations matches findings against the `// want` comments:
// every want needs a matching diagnostic on its line, every diagnostic
// needs a want.
func checkExpectations(t *testing.T, diags []lint.Diagnostic, fset *token.FileSet, files []*ast.File) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}
	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var missing []string
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matched %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

func testAnalyzer(t *testing.T, analyzer, pkgPath string) {
	diags, fset, files := runAnalyzer(t, analyzer, filepath.Join("testdata", analyzer), pkgPath)
	checkExpectations(t, diags, fset, files)
}

// Determinism rules key off the deterministic-package list, so the testdata
// package masquerades as internal/mdp.
func TestDeterminism(t *testing.T) { testAnalyzer(t, "determinism", "minicost/internal/mdp") }

// The determinism analyzer must stay silent outside the deterministic set,
// even on a file full of violations.
func TestDeterminismScopedToListedPackages(t *testing.T) {
	diags, _, _ := runAnalyzer(t, "determinism", filepath.Join("testdata", "determinism"), "minicost/internal/lint/testdata/notlisted")
	if len(diags) != 0 {
		t.Fatalf("determinism fired outside the deterministic packages: %v", diags)
	}
}

func TestHotpath(t *testing.T) { testAnalyzer(t, "hotpath", "minicost/internal/lint/testdata/hotpath") }
func TestShardContract(t *testing.T) {
	testAnalyzer(t, "shardcontract", "minicost/internal/lint/testdata/shardcontract")
}
func TestObsNames(t *testing.T) {
	testAnalyzer(t, "obsnames", "minicost/internal/lint/testdata/obsnames")
}
func TestFloatCmp(t *testing.T) {
	testAnalyzer(t, "floatcmp", "minicost/internal/lint/testdata/floatcmp")
}
