package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newHotpath builds the hotpath analyzer. A function whose doc comment
// carries //minicost:hotpath is one of the allocation-free serve/train/eval
// kernels gated at runtime by the PR-5 AllocsPerRun tests; this analyzer
// turns those gates into per-line diagnostics by rejecting every construct
// that can allocate or defeat inlining on such a function's body:
//
//   - capturing closures (the context struct escapes);
//   - append (growth allocates; hot paths pre-size their buffers);
//   - any call into package fmt (formatting allocates and takes interfaces);
//   - defer (defer records allocate pre-devirtualization and delay frees);
//   - concrete-to-interface conversions (boxing allocates for non-pointer
//     payloads), whether by explicit conversion, assignment, or call
//     argument;
//   - map and slice composite literals (always heap- or at least
//     growth-prone; arrays are fine).
//
// Arguments of panic() are exempt: shape-guard panics like
// panic(fmt.Sprintf(...)) are cold by definition — when they run, the
// program is dying and an allocation is irrelevant.
//
// Unannotated functions are untouched: annotate deliberately, then keep the
// annotation honest.
func newHotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "functions marked //minicost:hotpath must avoid allocating constructs",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !HasDirective(fd.Doc, DirectiveHotpath) {
					continue
				}
				checkHotpathBody(pass, fd)
			}
		}
	}
	return a
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	cold := coldRanges(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if cold.covers(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot-path function %s", name)
		case *ast.FuncLit:
			if capt := capturedVar(pass, n); capt != nil {
				pass.Reportf(n.Pos(),
					"closure in hot-path function %s captures %q (context allocation)", name, capt.Name())
			}
			return false // the literal's own body is not part of the annotated hot path
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates in hot-path function %s", name)
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates in hot-path function %s", name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, name, n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // x, y := f() — conversions surface at the call site
				}
				lt := pass.Info.TypeOf(lhs)
				rt := pass.Info.TypeOf(n.Rhs[i])
				if boxesToInterface(lt, rt) {
					pass.Reportf(n.Rhs[i].Pos(),
						"assignment boxes %s into interface %s in hot-path function %s", rt, lt, name)
				}
			}
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, name string, call *ast.CallExpr) {
	// Builtin append: growth allocates; the serve/train/eval kernels pre-size.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				pass.Reportf(call.Pos(), "append may grow and allocate in hot-path function %s", name)
			}
			return
		}
	}
	if obj := calleeObject(pass.Info, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates in hot-path function %s", fn.Name(), name)
			return
		}
	}
	// Explicit conversion to an interface type: I(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxesToInterface(tv.Type, pass.Info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion boxes %s into interface %s in hot-path function %s",
				pass.Info.TypeOf(call.Args[0]), tv.Type, name)
		}
		return
	}
	// Concrete arguments passed to interface parameters box at the call.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxesToInterface(pt, pass.Info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"argument boxes %s into interface %s in hot-path function %s",
				pass.Info.TypeOf(arg), pt, name)
		}
	}
}

// posRanges is a set of [pos, end) source intervals.
type posRanges [][2]token.Pos

func (r posRanges) covers(pos token.Pos) bool {
	for _, iv := range r {
		if pos >= iv[0] && pos < iv[1] {
			return true
		}
	}
	return false
}

// coldRanges collects the source ranges of panic() arguments inside body:
// code that only runs while the program dies is exempt from the hot-path
// allocation rules.
func coldRanges(pass *Pass, body *ast.BlockStmt) posRanges {
	var out posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			for _, arg := range call.Args {
				out = append(out, [2]token.Pos{arg.Pos(), arg.End()})
			}
			return false
		}
		return true
	})
	return out
}

// boxesToInterface reports whether storing a value of type from into a
// location of type to converts a concrete value to an interface.
func boxesToInterface(to, from types.Type) bool {
	if to == nil || from == nil || !isInterface(to) || isInterface(from) {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// capturedVar returns a variable the function literal references but does
// not declare — i.e. a closure capture forcing a context allocation — or nil
// if the literal is capture-free. Package-level variables are accessed
// directly, not captured.
func capturedVar(pass *Pass, lit *ast.FuncLit) *types.Var {
	var capt *types.Var
	ast.Inspect(lit, func(n ast.Node) bool {
		if capt != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if pass.Pkg != nil && v.Parent() == pass.Pkg.Scope() {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			capt = v
		}
		return true
	})
	return capt
}
