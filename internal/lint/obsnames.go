package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// obsRegMethods maps each obs.Registry registration method to the metric
// kind it creates at scrape time. Timer wraps a Histogram, so the two share
// a kind: registering the same family through both is legal.
var obsRegMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gaugefunc",
	"Histogram": "histogram",
	"Timer":     "histogram",
}

// obsRegistration records one registration call site for the cross-package
// duplicate/kind checks.
type obsRegistration struct {
	name   string
	kind   string
	labels string // constant-label fingerprint, "" = unlabeled, "?" = dynamic
	pos    token.Pos
}

// newObsNames builds the obsnames analyzer. Every metric registration on an
// obs.Registry (Counter, Gauge, GaugeFunc, Histogram, Timer) must pass a
// compile-time-constant name matching the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, so the exposition format never panics at the
// first scrape and dashboards can grep the source for every family.
//
// Across the whole run it additionally flags (a) one name registered as two
// different metric kinds (a guaranteed runtime panic in obs.lookup) and
// (b) the same (name, constant label set) registered at more than one call
// site — each family/series should have exactly one owner. Call sites whose
// label values are not compile-time constants (e.g. a per-endpoint label
// built in a helper) are exempt from (b) but still checked for (a).
func newObsNames() *Analyzer {
	a := &Analyzer{
		Name: "obsnames",
		Doc:  "metric names must be constant, grammar-valid, and uniquely registered",
	}
	var regs []obsRegistration
	a.Run = func(pass *Pass) {
		if pass.PkgPath == "minicost/internal/obs" {
			// The registry implementation forwards names between its own
			// constructors (Timer wraps Histogram); those are not
			// registrations of new families.
			return
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind, ok := obsRegMethods[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "minicost/internal/obs" {
					return true
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil {
					return true
				}
				// Only Registry methods register families; same-named
				// read-side methods (Snapshot.Histogram, …) are lookups.
				rt := recv.Type()
				if p, ok := rt.(*types.Pointer); ok {
					rt = p.Elem()
				}
				named, ok := rt.(*types.Named)
				if !ok || named.Obj().Name() != "Registry" {
					return true
				}
				name, isConst := constString(pass.Info, call.Args[0])
				if !isConst {
					pass.Reportf(call.Args[0].Pos(),
						"metric name passed to obs %s registration must be a constant string", sel.Sel.Name)
					return true
				}
				if !validMetricName(name) {
					pass.Reportf(call.Args[0].Pos(),
						"metric name %q does not match the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*", name)
					return true
				}
				regs = append(regs, obsRegistration{
					name:   name,
					kind:   kind,
					labels: labelFingerprint(pass.Info, sel.Sel.Name, call),
					pos:    call.Args[0].Pos(),
				})
				return true
			})
		}
	}
	a.Finish = func(fset *token.FileSet, report func(Diagnostic)) {
		sort.Slice(regs, func(i, j int) bool { return regs[i].pos < regs[j].pos })
		kinds := make(map[string]obsRegistration)
		series := make(map[string]obsRegistration)
		for _, r := range regs {
			if first, ok := kinds[r.name]; ok && first.kind != r.kind {
				report(Diagnostic{
					Pos:      fset.Position(r.pos),
					Analyzer: "obsnames",
					Message: fmt.Sprintf("metric %q registered as %s here but as %s at %s (obs.lookup panics on kind conflicts)",
						r.name, r.kind, first.kind, fset.Position(first.pos)),
				})
				continue // one finding per site; the kind conflict subsumes duplication
			} else if !ok {
				kinds[r.name] = r
			}
			if r.labels == "?" {
				continue // dynamic labels: distinct series per call, not statically comparable
			}
			key := r.name + "{" + r.labels + "}"
			if first, ok := series[key]; ok {
				report(Diagnostic{
					Pos:      fset.Position(r.pos),
					Analyzer: "obsnames",
					Message: fmt.Sprintf("metric %q already registered at %s; each family needs exactly one owner",
						key, fset.Position(first.pos)),
				})
				continue
			}
			series[key] = r
		}
	}
	return a
}

// labelFingerprint renders the constant label arguments of a registration
// call, or "?" when any label value is not a compile-time constant. Label
// arguments start after the fixed ones: (name, help) for Counter / Gauge /
// Timer, (name, help, fn) for GaugeFunc, (name, help, bounds) for Histogram.
func labelFingerprint(info *types.Info, method string, call *ast.CallExpr) string {
	fixed := 2
	if method == "GaugeFunc" || method == "Histogram" {
		fixed = 3
	}
	if len(call.Args) <= fixed {
		return ""
	}
	out := ""
	for _, arg := range call.Args[fixed:] {
		k, v, ok := constLabel(info, arg)
		if !ok {
			return "?"
		}
		if out != "" {
			out += ","
		}
		out += k + "=" + v
	}
	return out
}

// constLabel extracts a label built as obs.L(const, const) or a
// Label{Key: const, Value: const} composite; anything else is dynamic.
func constLabel(info *types.Info, arg ast.Expr) (k, v string, ok bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if isPkgFunc(calleeObject(info, e), "minicost/internal/obs", "L") && len(e.Args) == 2 {
			k, kc := constString(info, e.Args[0])
			v, vc := constString(info, e.Args[1])
			if kc && vc {
				return k, v, true
			}
		}
	case *ast.CompositeLit:
		var ke, ve ast.Expr
		for i, el := range e.Elts {
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				if id, isID := kv.Key.(*ast.Ident); isID {
					switch id.Name {
					case "Key":
						ke = kv.Value
					case "Value":
						ve = kv.Value
					}
				}
			} else if i == 0 {
				ke = el
			} else if i == 1 {
				ve = el
			}
		}
		k, kc := constString(info, ke)
		v, vc := constString(info, ve)
		if kc && vc {
			return k, v, true
		}
	}
	return "", "", false
}

// constString returns the compile-time string value of expr, if it has one.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	if expr == nil {
		return "", false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// validMetricName mirrors obs.validName: the Prometheus metric-name grammar.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
