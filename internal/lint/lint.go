// Package lint houses the minicost-vet analyzer suite: five zero-dependency
// static analyzers (stdlib go/ast + go/types only) that enforce the repo's
// hand-maintained invariants at lint time instead of runtime:
//
//   - determinism: no wall-clock reads, no math/rand, no map-iteration
//     order in the deterministic packages (DESIGN.md §14.1).
//   - hotpath: functions annotated //minicost:hotpath stay allocation-free
//     at the line level (DESIGN.md §14.2).
//   - shardcontract: par.For / par.ForChunked / par.ForBatched worker
//     bodies write only through indexed output slices (DESIGN.md §14.3).
//   - obsnames: metric registrations use constant, grammar-valid, unique
//     names (DESIGN.md §14.4).
//   - floatcmp: no ==/!= between non-constant floating-point operands
//     (DESIGN.md §14.5).
//
// The driver lives in cmd/minicost-vet. Analyzers operate on one
// type-checked package at a time (a Pass); analyzers that need whole-repo
// state (obsnames) accumulate across passes and report from Finish.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive names recognized in comments. A directive suppresses the
// matching analyzer's findings on its own line and on the line immediately
// below it, so both trailing-comment and standalone-comment placements work:
//
//	t0 := time.Now() //minicost:allow-wallclock timing is the measurement
//
//	//minicost:allow-maprange keys are sorted before use
//	for k := range m {
const (
	DirectiveAllowWallclock = "allow-wallclock"
	DirectiveAllowMapRange  = "allow-maprange"
	DirectiveAllowFloatCmp  = "allow-floatcmp"
	// DirectiveHotpath marks a function declaration (in its doc comment) as
	// a hot-path function the hotpath analyzer must keep allocation-free.
	DirectiveHotpath = "hotpath"
)

// directivePrefix introduces every minicost directive comment.
const directivePrefix = "//minicost:"

// DeterministicPackages are the import paths whose decision math must be
// bit-for-bit reproducible across runs and engines; the determinism
// analyzer applies only to these.
var DeterministicPackages = map[string]bool{
	"minicost/internal/mat":         true,
	"minicost/internal/nn":          true,
	"minicost/internal/mdp":         true,
	"minicost/internal/rl":          true,
	"minicost/internal/policy":      true,
	"minicost/internal/costmodel":   true,
	"minicost/internal/trace":       true,
	"minicost/internal/rng":         true,
	"minicost/internal/experiments": true,
	"minicost/internal/aggregate":   true,
	"minicost/internal/multidc":     true,
	"minicost/internal/forecast":    true,
	"minicost/internal/pricing":     true,
	"minicost/internal/online":      true,
}

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Fset    *token.FileSet
	PkgPath string // import path the analyzers key policy off (testdata overrides it)
	Pkg     *types.Package
	Info    *types.Info
	Files   []*ast.File

	directives map[string]map[string]bool // directive name -> set of "file:line" keys it suppresses
	report     func(Diagnostic)
	analyzer   string
}

// Reportf records a finding at pos unless a matching suppression directive
// covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether directive dir covers pos (same line as the
// directive comment or the line directly after it, in the same file).
func (p *Pass) Suppressed(dir string, pos token.Pos) bool {
	lines := p.directives[dir]
	if lines == nil {
		return false
	}
	return lines[lineKey(p.Fset.Position(pos))]
}

// lineKey identifies a (file, line) pair; filenames disambiguate across the
// files of one pass.
func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// Analyzer is one named check over a Pass. Run is called once per package;
// Finish (optional) once after every package, for cross-package analyzers.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// Finish reports whole-run findings (e.g. duplicate metric names across
	// packages). The fset is the shared one every Pass used.
	Finish func(fset *token.FileSet, report func(Diagnostic))
}

// Suite is a fresh, stateful set of the five analyzers. Create one per run:
// cross-package analyzers keep accumulation state inside the closure.
type Suite struct {
	Analyzers []*Analyzer
}

// NewSuite returns the five minicost-vet analyzers with fresh state.
func NewSuite() *Suite {
	return &Suite{Analyzers: []*Analyzer{
		newDeterminism(),
		newHotpath(),
		newShardContract(),
		newObsNames(),
		newFloatCmp(),
	}}
}

// RunPackage runs every analyzer in the suite over one type-checked package
// and returns the findings sorted by position.
func (s *Suite) RunPackage(fset *token.FileSet, pkgPath string, pkg *types.Package, info *types.Info, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	dirs := collectDirectives(fset, files)
	for _, a := range s.Analyzers {
		pass := &Pass{
			Fset:       fset,
			PkgPath:    pkgPath,
			Pkg:        pkg,
			Info:       info,
			Files:      files,
			directives: dirs,
			analyzer:   a.Name,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// Finish runs every analyzer's cross-package hook and returns the findings.
func (s *Suite) Finish(fset *token.FileSet) []Diagnostic {
	var diags []Diagnostic
	for _, a := range s.Analyzers {
		if a.Finish != nil {
			a.Finish(fset, func(d Diagnostic) { diags = append(diags, d) })
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// collectDirectives scans every comment in the package for
// //minicost:<name> directives and records, per directive, the set of
// (file:line) keys it suppresses: the directive's own line plus the next,
// so both trailing and standalone directive comments work.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := directiveName(c.Text)
				if name == "" {
					continue
				}
				set := out[name]
				if set == nil {
					set = make(map[string]bool)
					out[name] = set
				}
				pos := fset.Position(c.Pos())
				set[lineKey(pos)] = true
				set[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return out
}

// HasDirective reports whether the comment group contains the given
// //minicost: directive (used for the hotpath function annotation).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directiveName(c.Text) == name {
			return true
		}
	}
	return false
}

// directiveName extracts the directive name from a comment line, or "".
// Directives are exact-prefix comments: `//minicost:<name>` optionally
// followed by whitespace and free-form justification text.
func directiveName(text string) string {
	if !strings.HasPrefix(text, directivePrefix) {
		return ""
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' }); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// --- shared type helpers ---

// calleeObject resolves the object a call expression invokes, unwrapping
// parens. Returns nil for type conversions, builtins resolved elsewhere,
// and indirect calls through variables.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent walks to the base identifier of an lvalue expression
// (unwrapping index, selector, star and paren expressions). It also reports
// whether the path from the root to the full expression crosses an index
// expression — the shard-contract's "write through an element" test.
func rootIdent(expr ast.Expr) (id *ast.Ident, indexed bool) {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e, indexed
		case *ast.IndexExpr:
			indexed = true
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil, indexed
		}
	}
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isFloat reports whether t's underlying type has a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
