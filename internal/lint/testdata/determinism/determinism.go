// Package dettest seeds determinism violations for the analyzer tests. The
// harness type-checks it under a deterministic import path (internal/mdp),
// and separately under an unlisted path to prove the analyzer stays scoped.
package dettest

import (
	"math/rand" // want "deterministic package imports math/rand; use minicost/internal/rng"
	"time"
)

var _ = rand.Int

func clocks() time.Duration {
	t0 := time.Now()    // want "wall-clock read time.Now in deterministic package"
	d := time.Since(t0) // want "wall-clock read time.Since in deterministic package"
	d += time.Until(t0) // want "wall-clock read time.Until in deterministic package"
	return d
}

// allowedClock is the trailing-directive negative case for allow-wallclock.
func allowedClock() time.Time {
	return time.Now() //minicost:allow-wallclock instrumentation reads the clock deliberately
}

// allowedClockStandalone is the standalone-directive negative case.
func allowedClockStandalone() time.Time {
	//minicost:allow-wallclock instrumentation reads the clock deliberately
	return time.Now()
}

func mapRanges(m map[string]int, s []int) int {
	sum := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		sum += v
	}
	//minicost:allow-maprange the consumer sorts; negative case for the directive
	for k := range m {
		sum += len(k)
	}
	for _, v := range s { // slices iterate in order: no finding
		sum += v
	}
	return sum
}
