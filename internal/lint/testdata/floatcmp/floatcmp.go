// Package floatcmptest seeds float-comparison violations for the analyzer
// tests.
package floatcmptest

const eps = 1e-9

func cmp(a, b float64, xs []float32, n int) bool {
	if a == b { // want "floating-point == comparison between non-constant operands"
		return true
	}
	if a != b { // want "floating-point != comparison between non-constant operands"
		return false
	}
	if a == 0 { // comparing against a constant: sentinel checks are allowed
		return true
	}
	if eps == a { // declared constants count too
		return true
	}
	if xs[0] == xs[1] { // want "floating-point == comparison between non-constant operands"
		return true
	}
	if n == 0 { // integers are exact: no finding
		return false
	}
	//minicost:allow-floatcmp deliberate bitwise check; negative case for the directive
	if a == b {
		return true
	}
	return a == b //minicost:allow-floatcmp trailing-directive negative case
}
