// Package shardtest seeds shard-contract violations for the analyzer tests.
package shardtest

import "minicost/internal/par"

var global int

type acc struct{ total float64 }

func workers(n int) ([]float64, float64) {
	out := make([]float64, n)
	var sum float64
	count := 0
	par.For(n, 4, func(i int) {
		out[i] = float64(i) // indexed write to a captured output slice: allowed
		v := float64(i)     // locals are free
		v *= 2
		sum += v // want "par worker writes captured .sum. directly"
		count++  // want "par worker writes captured .count. directly"
	})
	_ = count
	par.ForChunked(n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 1 // allowed
		}
	})
	par.ForBatched(n, 8, 4, func(lo, hi int) {
		total := 0.0 // chunk-local accumulator: allowed
		for i := lo; i < hi; i++ {
			total += out[i]
		}
		out[lo] = total // allowed
	})
	par.ForShards(4, 2, func(s int) {
		out[s] = float64(s) // indexed write: allowed
		sum += 1            // want "par worker writes captured .sum. directly"
	})
	return out, sum
}

func fieldAndDeepWrites(n int, a *acc, outs [][]float64, p *float64) {
	par.For(n, 2, func(i int) {
		a.total++      // want "par worker writes captured .a. directly"
		*p = 1         // want "par worker writes captured .p. directly"
		outs[i][0] = 1 // indexed path through the captured slice: allowed
		global++       // want "par worker writes package-level .global. directly"
	})
}

// serialWrites is the negative case: the same writes outside a par worker
// body are not the analyzer's business.
func serialWrites(n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(i)
		global++
	}
	return sum
}

func chunk(lo, hi int) {}

// namedWorker passes a declared function, which cannot capture call-site
// loop state: no findings.
func namedWorker(n int) {
	par.ForChunked(n, 2, chunk)
}
