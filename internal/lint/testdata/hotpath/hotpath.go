// Package hotpathtest seeds hot-path violations for the analyzer tests.
package hotpathtest

import "fmt"

func release() {}

func sink(v any) { _ = v }

// hot carries the annotation and one of every violation class.
//
//minicost:hotpath
func hot(xs []float64, n int) float64 {
	defer release() // want "defer in hot-path function hot"
	var sum float64
	add := func() { sum++ } // want "closure in hot-path function hot captures .sum."
	add()
	xs = append(xs, 1) // want "append may grow and allocate in hot-path function hot"
	fmt.Println(sum)   // want "fmt.Println allocates in hot-path function hot"
	m := map[int]int{} // want "map literal allocates in hot-path function hot"
	s := []int{n}      // want "slice literal allocates in hot-path function hot"
	var i any
	i = n        // want "assignment boxes int into interface any in hot-path function hot"
	sink(n)      // want "argument boxes int into interface any in hot-path function hot"
	_ = any(sum) // want "conversion boxes float64 into interface any in hot-path function hot"
	_, _, _ = m, s, i
	return sum + xs[0]
}

// hotClean is annotated but violation-free: flat loops, indexed writes,
// non-capturing helpers, and a cold panic guard are all allowed.
//
//minicost:hotpath
func hotClean(dst, src []float64) float64 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("hotpathtest: dst len %d, want %d", len(dst), len(src)))
	}
	sum := 0.0
	for i, v := range src {
		dst[i] = v * 2
		sum += v
	}
	return sum
}

// bank mirrors the struct-of-arrays env-bank shape the vectorized rollout
// engine steps (mdp.EnvBank): flat result arrays written by index.
type bank struct {
	rewards []float64
	done    []bool
}

// hotBankClean pins the idioms the lockstep kernels rely on staying legal:
// indexed writes into struct-of-arrays fields, a struct (not map/slice)
// composite literal, method values on concrete types, and a cold panic guard
// built with string concatenation.
//
//minicost:hotpath
func hotBankClean(b *bank, rewards []float64, msg string) bank {
	if len(rewards) != len(b.rewards) {
		panic("hotpathtest: bank width mismatch: " + msg)
	}
	for i, v := range rewards {
		b.rewards[i] = v
		b.done[i] = v == 0
	}
	return bank{rewards: b.rewards, done: b.done}
}

// hotBankGrow seeds the violation the struct-of-arrays layout makes
// tempting: appending into a result array instead of writing by index.
//
//minicost:hotpath
func hotBankGrow(b *bank, v float64) {
	b.rewards = append(b.rewards, v) // want "append may grow and allocate in hot-path function hotBankGrow"
}

// cold repeats every violation without the annotation: the analyzer must
// stay silent on unannotated functions.
func cold(xs []float64, n int) float64 {
	defer release()
	var sum float64
	add := func() { sum++ }
	add()
	xs = append(xs, 1)
	fmt.Println(sum)
	m := map[int]int{}
	s := []int{n}
	var i any
	i = n
	sink(n)
	_, _, _ = m, s, i
	return sum + xs[0]
}
