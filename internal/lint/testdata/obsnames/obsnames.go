// Package obstest seeds metric-registration violations for the analyzer
// tests.
package obstest

import "minicost/internal/obs"

const goodName = "obstest_requests_total"

func register(reg *obs.Registry, dynamic string) {
	reg.Counter(goodName, "constant declared name: allowed")
	reg.Counter("obstest-bad-name", "dashes") // want "does not match the Prometheus grammar"
	reg.Counter(dynamic, "variable name")     // want "must be a constant string"
	reg.Gauge("obstest_queue_depth", "fresh gauge: allowed")
	reg.Gauge(goodName, "kind clash") // want "registered as gauge here but as counter"
	reg.Counter(goodName, "dup site") // want "already registered"
	reg.Counter("obstest_by_endpoint_total", "dynamic label value: exempt from dup check", obs.L("endpoint", dynamic))
	reg.Counter("obstest_by_endpoint_total", "first constant series", obs.L("endpoint", "plan"))
	reg.Counter("obstest_by_endpoint_total", "second owner", obs.L("endpoint", "plan")) // want "already registered"
	reg.Counter("obstest_by_endpoint_total", "different constant series: allowed", obs.L("endpoint", "observe"))
	reg.Timer("obstest_latency_seconds", "timers register histograms")
	reg.Histogram("obstest_histogram_bounds", "explicit bounds", []float64{0.1, 1})
	reg.GaugeFunc("obstest_staleness_seconds", "derived gauge", func() float64 { return 0 })
	// Read-side lookups share method names with registrations but are not
	// the analyzer's business: no findings.
	snap := reg.Snapshot()
	_ = snap.Counter(goodName)
	_ = snap.Histogram("obstest_latency_seconds")
}
