package lint

import (
	"go/ast"
	"go/token"
)

// newFloatCmp builds the floatcmp analyzer. Direct ==/!= between two
// non-constant floating-point operands is almost always a bug outside the
// bitwise-equivalence test helpers (which live in _test.go files and are
// not analyzed): accumulated rounding makes the comparison flaky, and the
// repo's reproducibility story rests on explicit bitwise checks
// (math.Float64bits) where exact equality is actually meant.
//
// Comparing a float against a compile-time constant (x == 0, lr != 1)
// stays legal — sentinel and guard checks are deliberate exact comparisons
// against values that were assigned, not computed. A deliberate
// variable-to-variable exact comparison in non-test code can be annotated
// with //minicost:allow-floatcmp.
func newFloatCmp() *Analyzer {
	a := &Analyzer{
		Name: "floatcmp",
		Doc:  "forbid ==/!= between non-constant floating-point operands",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.Info.TypeOf(be.X)) || !isFloat(pass.Info.TypeOf(be.Y)) {
					return true
				}
				if isConstExpr(pass, be.X) || isConstExpr(pass, be.Y) {
					return true
				}
				if pass.Suppressed(DirectiveAllowFloatCmp, be.Pos()) {
					return true
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison between non-constant operands; use an epsilon or math.Float64bits (or annotate with //minicost:%s)",
					be.Op, DirectiveAllowFloatCmp)
				return true
			})
		}
	}
	return a
}

func isConstExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	return ok && tv.Value != nil
}
