package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// newDeterminism builds the determinism analyzer. Inside the packages listed
// in DeterministicPackages it forbids the three classic reproducibility
// leaks:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — suppressible
//     per line with //minicost:allow-wallclock for instrumentation code
//     whose output is a measurement, not a decision;
//   - math/rand and math/rand/v2 imports (internal/rng exists precisely so
//     decision paths never touch the global, seed-racy generators);
//   - `for range` over a map, whose iteration order differs run to run —
//     suppressible per line with //minicost:allow-maprange when the loop's
//     consumer provably sorts (the collect-keys-then-sort idiom).
func newDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, math/rand, and map iteration in deterministic packages",
	}
	a.Run = func(pass *Pass) {
		if !DeterministicPackages[pass.PkgPath] {
			return
		}
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(),
						"deterministic package imports %s; use minicost/internal/rng", path)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					obj := calleeObject(pass.Info, n)
					for _, fn := range [...]string{"Now", "Since", "Until"} {
						if isPkgFunc(obj, "time", fn) {
							if !pass.Suppressed(DirectiveAllowWallclock, n.Pos()) {
								pass.Reportf(n.Pos(),
									"wall-clock read time.%s in deterministic package (annotate instrumentation with //minicost:%s)",
									fn, DirectiveAllowWallclock)
							}
						}
					}
				case *ast.RangeStmt:
					if t := pass.Info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							if !pass.Suppressed(DirectiveAllowMapRange, n.Pos()) {
								pass.Reportf(n.Pos(),
									"map iteration order is nondeterministic; sort keys first or annotate with //minicost:%s",
									DirectiveAllowMapRange)
							}
						}
					}
				}
				return true
			})
		}
	}
	return a
}
