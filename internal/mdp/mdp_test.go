package mdp

import (
	"math"
	"testing"
	"testing/quick"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
)

func env(t *testing.T, reads, writes []float64) *Env {
	t.Helper()
	e, err := NewEnv(costmodel.New(pricing.Azure()), 0.1, reads, writes, pricing.Hot, 4, DefaultReward())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRewardMonotoneDecreasingInCost(t *testing.T) {
	rc := DefaultReward()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw)/100 + rc.CostFloor
		b := float64(bRaw)/100 + rc.CostFloor
		ra, rb := rc.Reward(a), rc.Reward(b)
		if a < b {
			return ra >= rb
		}
		return rb >= ra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRewardFiniteAtZeroCost(t *testing.T) {
	rc := DefaultReward()
	r := rc.Reward(0)
	if math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatalf("reward at zero cost = %v", r)
	}
	if r != rc.Alpha/rc.CostFloor+rc.Delta {
		t.Fatalf("floor not applied: %v", r)
	}
}

func TestRewardMatchesEq4(t *testing.T) {
	rc := RewardConfig{Alpha: 2, Delta: 0.5, CostFloor: 1e-9}
	if got := rc.Reward(4); math.Abs(got-(2.0/4+0.5)) > 1e-12 {
		t.Fatalf("Reward(4) = %v", got)
	}
}

func TestEnvEpisode(t *testing.T) {
	reads := []float64{100, 200, 300}
	writes := []float64{1, 2, 3}
	e := env(t, reads, writes)
	s := e.Reset()
	if s.Tier != pricing.Hot || len(s.ReadHistory) != 4 {
		t.Fatalf("initial state %+v", s)
	}
	// Cold-start padding repeats the first observation.
	for _, v := range s.ReadHistory {
		if v != 100 {
			t.Fatalf("padding %v", s.ReadHistory)
		}
	}
	m := costmodel.New(pricing.Azure())
	next, reward, cost, done, err := e.Step(pricing.Cool)
	if err != nil {
		t.Fatal(err)
	}
	wantCost := m.Day(pricing.Hot, pricing.Cool, 0.1, 100, 1).Total()
	if math.Abs(cost-wantCost) > 1e-12 {
		t.Fatalf("cost %v want %v", cost, wantCost)
	}
	// AutoAlpha scales α by the day-0 cost in the initial (hot) tier.
	base := m.Day(pricing.Hot, pricing.Hot, 0.1, 100, 1).Total()
	rc := DefaultReward()
	rc.Alpha *= base
	if math.Abs(reward-rc.Reward(wantCost)) > 1e-12 {
		t.Fatalf("reward %v, want %v", reward, rc.Reward(wantCost))
	}
	if done {
		t.Fatal("done too early")
	}
	if next.Tier != pricing.Cool {
		t.Fatal("tier not updated")
	}
	// History window now ends with day 0's observation.
	if next.ReadHistory[3] != 100 {
		t.Fatalf("history %v", next.ReadHistory)
	}
	_, _, _, done, _ = e.Step(pricing.Cool)
	if done {
		t.Fatal("done after 2 of 3 days")
	}
	_, _, _, done, err = e.Step(pricing.Hot)
	if err != nil || !done {
		t.Fatalf("episode should end: done=%v err=%v", done, err)
	}
	if _, _, _, _, err := e.Step(pricing.Hot); err == nil {
		t.Fatal("step after end accepted")
	}
	// Reset rewinds fully.
	s = e.Reset()
	if e.Day() != 0 || s.Tier != pricing.Hot {
		t.Fatal("reset incomplete")
	}
}

func TestEnvRejectsInvalidAction(t *testing.T) {
	e := env(t, []float64{1, 2}, []float64{0, 0})
	if _, _, _, _, err := e.Step(pricing.Tier(5)); err == nil {
		t.Fatal("invalid action accepted")
	}
}

func TestEnvCostsSumToPlanCost(t *testing.T) {
	// Stepping an env through a plan must reproduce costmodel.PlanCost.
	reads := []float64{50, 500, 5, 800, 2}
	writes := []float64{1, 0, 2, 1, 0}
	e := env(t, reads, writes)
	plan := costmodel.Plan{pricing.Hot, pricing.Cool, pricing.Cool, pricing.Hot, pricing.Archive}
	total := 0.0
	e.Reset()
	for _, a := range plan {
		_, _, cost, _, err := e.Step(a)
		if err != nil {
			t.Fatal(err)
		}
		total += cost
	}
	m := costmodel.New(pricing.Azure())
	want, err := m.PlanCost(pricing.Hot, plan, 0.1, reads, writes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-want.Total()) > 1e-12 {
		t.Fatalf("env total %v != plan cost %v", total, want.Total())
	}
}

func TestNewEnvValidation(t *testing.T) {
	m := costmodel.New(pricing.Azure())
	rc := DefaultReward()
	if _, err := NewEnv(m, 0.1, nil, nil, pricing.Hot, 4, rc); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := NewEnv(m, 0.1, []float64{1}, []float64{1, 2}, pricing.Hot, 4, rc); err == nil {
		t.Error("mismatched series accepted")
	}
	if _, err := NewEnv(m, 0, []float64{1}, []float64{1}, pricing.Hot, 4, rc); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewEnv(m, 0.1, []float64{1}, []float64{1}, pricing.Hot, 0, rc); err == nil {
		t.Error("zero histLen accepted")
	}
	if _, err := NewEnv(m, 0.1, []float64{1}, []float64{1}, pricing.Tier(9), 4, rc); err == nil {
		t.Error("invalid tier accepted")
	}
}

func TestFeatures(t *testing.T) {
	s := State{
		ReadHistory:  []float64{10, 20, 30, 40},
		WriteHistory: []float64{1, 1, 1, 1},
		SizeGB:       0.5,
		Tier:         pricing.Cool,
	}
	f := s.Features()
	if len(f) != FeatureDim(4) || FeatureDim(4) != 2*4+3+pricing.NumTiers {
		t.Fatalf("feature dim %d", len(f))
	}
	// Interleaved channels: shape (normalised by the mean, 25) and log scale.
	if math.Abs(f[0]-10.0/25) > 1e-12 || math.Abs(f[6]-40.0/25) > 1e-12 {
		t.Fatalf("shape features %v", f[:8])
	}
	if math.Abs(f[1]-math.Log1p(10)/10) > 1e-12 || math.Abs(f[7]-math.Log1p(40)/10) > 1e-12 {
		t.Fatalf("scale features %v", f[:8])
	}
	if math.Abs(f[8]-math.Log1p(25)/10) > 1e-12 {
		t.Fatalf("log-mean feature %v", f[8])
	}
	if math.Abs(f[9]-1.0/25) > 1e-12 {
		t.Fatalf("write ratio %v", f[9])
	}
	if f[10] != 0.5 {
		t.Fatalf("size feature %v", f[10])
	}
	// Tier one-hot: position 2h+3+tier.
	if f[11] != 0 || f[12] != 1 || f[13] != 0 {
		t.Fatalf("tier one-hot %v", f[11:])
	}
}

func TestFeaturesScaleInvarianceOfShape(t *testing.T) {
	// Two files with the same demand *shape* but 100x different volume must
	// share the history-shape features and differ in the log-mean feature.
	a := State{ReadHistory: []float64{1, 2, 3, 4}, WriteHistory: []float64{0, 0, 0, 0}, SizeGB: 0.1, Tier: pricing.Hot}
	b := State{ReadHistory: []float64{100, 200, 300, 400}, WriteHistory: []float64{0, 0, 0, 0}, SizeGB: 0.1, Tier: pricing.Hot}
	fa, fb := a.Features(), b.Features()
	for i := 0; i < 4; i++ {
		if math.Abs(fa[2*i]-fb[2*i]) > 1e-12 {
			t.Fatal("shape features not scale invariant")
		}
		if fa[2*i+1] >= fb[2*i+1] {
			t.Fatal("per-day scale channel should grow with volume")
		}
	}
	if fa[8] >= fb[8] {
		t.Fatal("log-mean should grow with volume")
	}
}

func TestFeaturesZeroHistory(t *testing.T) {
	s := State{ReadHistory: []float64{0, 0}, WriteHistory: []float64{0, 0}, SizeGB: 0.1, Tier: pricing.Hot}
	for _, v := range s.Features() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("zero history produced NaN/Inf features")
		}
	}
}

func TestFiniteValueIteration(t *testing.T) {
	// Two-state chain: from s0, action 0 loops (reward 0), action 1 moves to
	// terminal s1 with reward 1. Optimal: take action 1, V(s0)=1.
	f := &Finite{
		NumStates:  2,
		NumActions: 2,
		Next:       [][]int{{0, 1}, {1, 1}},
		Reward:     [][]float64{{0, 1}, {0, 0}},
		Terminal:   []bool{false, true},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	v, pol := f.ValueIteration(0.9, 1e-9)
	if math.Abs(v[0]-1) > 1e-6 || pol[0] != 1 {
		t.Fatalf("v=%v pol=%v", v, pol)
	}
	q := f.QValues(v, 0.9)
	if q[0][1] <= q[0][0] {
		t.Fatal("Q table inconsistent with policy")
	}
}

func TestFiniteValueIterationDiscounting(t *testing.T) {
	// Loop with reward 1 per step: V = 1/(1-gamma).
	f := &Finite{
		NumStates:  1,
		NumActions: 1,
		Next:       [][]int{{0}},
		Reward:     [][]float64{{1}},
		Terminal:   []bool{false},
	}
	v, _ := f.ValueIteration(0.5, 1e-10)
	if math.Abs(v[0]-2) > 1e-6 {
		t.Fatalf("V = %v, want 2", v[0])
	}
}

func TestFiniteValidate(t *testing.T) {
	bad := &Finite{NumStates: 1, NumActions: 1, Next: [][]int{{3}}, Reward: [][]float64{{0}}, Terminal: []bool{false}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range successor accepted")
	}
	if (&Finite{}).Validate() == nil {
		t.Fatal("empty MDP accepted")
	}
}

func BenchmarkEnvStep(b *testing.B) {
	reads := make([]float64, 1<<20)
	writes := make([]float64, 1<<20)
	for i := range reads {
		reads[i] = 100
	}
	e, err := NewEnv(costmodel.New(pricing.Azure()), 0.1, reads, writes, pricing.Hot, 14, DefaultReward())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Day() >= e.Days() {
			e.Reset()
		}
		if _, _, _, _, err := e.Step(pricing.Tier(i % 3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatures(b *testing.B) {
	s := State{
		ReadHistory:  make([]float64, 14),
		WriteHistory: make([]float64, 14),
		SizeGB:       0.1,
		Tier:         pricing.Cool,
	}
	for i := range s.ReadHistory {
		s.ReadHistory[i] = float64(i * 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Features()
	}
}

// seriesEnv builds a deterministic multi-day request series for the
// state-reuse tests.
func seriesEnv(t *testing.T, days int) *Env {
	t.Helper()
	reads := make([]float64, days)
	writes := make([]float64, days)
	for d := range reads {
		reads[d] = float64(100 + 37*d)
		writes[d] = float64(3 + d%5)
	}
	return env(t, reads, writes)
}

// TestEnvStateReuseMatchesFresh walks two identical episodes — one with
// recycled observations, one allocating — through an identical policy and
// requires bitwise-identical states, rewards, and costs every step.
func TestEnvStateReuseMatchesFresh(t *testing.T) {
	const days = 12
	fresh := seriesEnv(t, days)
	reused := seriesEnv(t, days)
	reused.EnableStateReuse()

	sf, sr := fresh.Reset(), reused.Reset()
	for d := 0; d < days; d++ {
		for i := range sf.ReadHistory {
			if sr.ReadHistory[i] != sf.ReadHistory[i] || sr.WriteHistory[i] != sf.WriteHistory[i] {
				t.Fatalf("day %d: reused history diverges at %d", d, i)
			}
		}
		if sr.Tier != sf.Tier || sr.SizeGB != sf.SizeGB {
			t.Fatalf("day %d: reused static state diverges", d)
		}
		action := pricing.Tier(d % NumActions)
		var rf, rr, cf, cr float64
		var err error
		sf, rf, cf, _, err = fresh.Step(action)
		if err != nil {
			t.Fatal(err)
		}
		sr, rr, cr, _, err = reused.Step(action)
		if err != nil {
			t.Fatal(err)
		}
		if rr != rf || cr != cf {
			t.Fatalf("day %d: reward/cost diverge: %v/%v vs %v/%v", d, rr, cr, rf, cf)
		}
	}
}

// TestEnvStateReuseDoubleBuffer pins the documented lifetime: the State
// returned before a Step stays intact through that Step (the env alternates
// two buffers), so decide-then-step loops can read the old state after
// receiving the new one.
func TestEnvStateReuseDoubleBuffer(t *testing.T) {
	e := seriesEnv(t, 8)
	e.EnableStateReuse()
	prev := e.Reset()
	before := append([]float64(nil), prev.ReadHistory...)
	next, _, _, _, err := e.Step(pricing.Cool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if prev.ReadHistory[i] != before[i] {
			t.Fatalf("previous state clobbered at %d after one Step", i)
		}
	}
	if &next.ReadHistory[0] == &prev.ReadHistory[0] {
		t.Fatal("consecutive states share a buffer")
	}
}

// TestEnvStateReuseStepAllocFree gates the per-step allocation budget: with
// recycled observations, Reinit + a full episode of Steps allocates nothing
// once the buffers are warm.
func TestEnvStateReuseStepAllocFree(t *testing.T) {
	e := seriesEnv(t, 10)
	e.EnableStateReuse()
	model, reads, writes := e.Model, e.Reads, e.Writes
	run := func() {
		if err := e.Reinit(model, 0.1, reads, writes, pricing.Hot, 4, DefaultReward()); err != nil {
			t.Fatal(err)
		}
		s := e.Reset()
		for {
			next, _, _, done, err := e.Step(s.Tier)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			s = next
		}
	}
	run()
	allocs := testing.AllocsPerRun(10, run)
	if allocs != 0 {
		t.Fatalf("reused-state episode allocates %.0f/op, want 0", allocs)
	}
}
