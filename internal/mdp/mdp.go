// Package mdp formulates the cost-minimization problem as the paper's
// streamlined Markov Decision Process (§4.2): states carry each file's read
// and write frequencies, size and tier (Eq. 2); actions assign a tier
// (Eq. 3); transitions are deterministic (P = 1); and the reward is
// R(s,a) = α / C(s,a) + Δ (Eq. 4).
//
// Env steps one file through its trace day by day, billing with the cost
// model. Finite is a generic small tabular MDP with exact value iteration,
// used to validate the RL learners against ground truth.
package mdp

import (
	"fmt"
	"math"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
)

// State is the per-file observation (Eq. 2): recent read/write frequency
// history, file size, and the current storage tier.
type State struct {
	ReadHistory  []float64 // most recent last; length = Env.HistLen
	WriteHistory []float64
	SizeGB       float64
	Tier         pricing.Tier
}

// NumActions is the per-file action count |Γ| (Eq. 3): keep the tier or
// move to either of the other two.
const NumActions = pricing.NumTiers

// FeatureDim returns the encoded feature length for a history window: two
// interleaved channels per history day plus the static features.
func FeatureDim(histLen int) int { return 2*histLen + 3 + pricing.NumTiers }

// HistoryFeatureDim returns the length of the history block at the front of
// the feature vector (the part the conv front-end should process).
func HistoryFeatureDim(histLen int) int { return 2 * histLen }

// Features encodes the state for the neural network. The history block
// interleaves two channels per day d:
//
//	[ reads_d / windowMean ,  log1p(reads_d)/10 ] × histLen
//
// followed by [log-scale of the window mean, write/read ratio, file size,
// tier one-hot]. The shape channel makes demand *patterns* comparable across
// popularity scales; the log channel carries the absolute traffic level the
// tier economics depend on — without it, a mega-hot page and a dormant one
// present identical histories (all ≈ 1 after mean-normalisation) and the
// policy cannot separate them.
func (s *State) Features() []float64 {
	out := make([]float64, FeatureDim(len(s.ReadHistory)))
	s.FeaturesInto(out)
	return out
}

// FeaturesInto encodes the state into dst, which must have length
// FeatureDim(len(s.ReadHistory)). It performs no allocation — the batched
// inference path uses it to pack feature rows directly into a batch matrix.
//
//minicost:hotpath
func (s *State) FeaturesInto(dst []float64) {
	h := len(s.ReadHistory)
	if len(dst) != FeatureDim(h) {
		panic(fmt.Sprintf("mdp: FeaturesInto dst len %d, want %d", len(dst), FeatureDim(h)))
	}
	out := dst
	for i := range out {
		out[i] = 0
	}
	mean := 0.0
	for _, v := range s.ReadHistory {
		mean += v
	}
	mean /= float64(h)
	denom := mean
	if denom <= 0 {
		denom = 1
	}
	for i, v := range s.ReadHistory {
		out[2*i] = v / denom
		out[2*i+1] = math.Log1p(v) / 10
	}
	out[2*h] = math.Log1p(mean) / 10
	wmean := 0.0
	for _, v := range s.WriteHistory {
		wmean += v
	}
	wmean /= float64(len(s.WriteHistory))
	ratio := wmean / denom
	if ratio > 1 {
		ratio = 1
	}
	out[2*h+1] = ratio
	out[2*h+2] = math.Min(s.SizeGB, 4)
	out[2*h+3+int(s.Tier)] = 1
}

// RewardConfig holds Eq. 4's manually-set parameters α and Δ, plus a cost
// floor that keeps the reward finite on zero-cost days.
//
// NegCost switches to the linear shaping R = Δ − α·C, an ablation of the
// paper's reciprocal reward: the reciprocal is hypersensitive near zero
// cost, and the linear form makes "maximize reward" exactly "minimize
// expected cost". Both are exposed so the ablation bench can compare them.
type RewardConfig struct {
	Alpha     float64
	Delta     float64
	CostFloor float64
	NegCost   bool
	// AutoAlpha rescales α every step to the cost today's requests would
	// incur in the file's initial (default) tier, so the reward reads "how
	// much cheaper than the do-nothing default is this action, today".
	// Eq. 4 leaves α as a manually-set constant; a single global α makes
	// idle files earn thousands of times the reward of busy files (the
	// reciprocal spans the cost range), destabilising policy-gradient
	// training, and an α frozen at episode start starves exactly the states
	// where traffic later surges — the days that dominate the bill — of any
	// gradient signal. Per-step α keeps Eq. 4's reciprocal form while
	// making rewards O(1) for every file on every day.
	AutoAlpha bool
	// MaxRatio caps the reciprocal reward at α·MaxRatio + Δ (0 disables).
	// Without a cap, files whose baseline tier is far from optimal (an idle
	// file parked in hot can be ~18× cheaper in archive) dominate the
	// training signal and their preference bleeds into unrelated states.
	MaxRatio float64
}

// DefaultReward returns parameters that put typical per-file-day rewards in
// O(1) for the default pricing and workload scales. The floor sits below
// the cheapest storage-only day (a 100 MB archive day is ~3e-6 $) so tier
// differences on idle files still produce a reward gradient.
func DefaultReward() RewardConfig {
	return RewardConfig{Alpha: 1, Delta: 0, CostFloor: 1e-6, AutoAlpha: true, MaxRatio: 4}
}

// NegCostReward returns the linear-shaping configuration (see RewardConfig).
func NegCostReward() RewardConfig {
	return RewardConfig{Alpha: 10, Delta: 0, NegCost: true}
}

// Reward implements Eq. 4: α / C + Δ, with C floored at CostFloor; in
// NegCost mode it returns Δ − α·C instead.
func (rc RewardConfig) Reward(cost float64) float64 {
	if rc.NegCost {
		return rc.Delta - rc.Alpha*cost
	}
	if cost < rc.CostFloor {
		cost = rc.CostFloor
	}
	return rc.Alpha/cost + rc.Delta
}

// Env is one file's decision process over its daily request series. At each
// step the agent observes the trailing HistLen days of frequencies, picks a
// tier for the next day, and pays that day's bill.
type Env struct {
	Model   *costmodel.Model
	Reads   []float64
	Writes  []float64
	SizeGB  float64
	HistLen int

	Reward RewardConfig

	day  int
	tier pricing.Tier
	init pricing.Tier

	// State-reuse mode (see EnableStateReuse): when on, returned States draw
	// their history slices from these two recycled buffers instead of fresh
	// allocations, alternating so the previously returned State survives one
	// more Step.
	reuse    bool
	histBuf  [2][]float64 // read histories, one per buffer
	writeBuf [2][]float64
	flip     int
}

// NewEnv constructs an environment. The first decision is made for day 0
// with history synthesized by repeating the first observation (the agent in
// production has two months of history; an episode's cold start should not
// look like a traffic cliff).
func NewEnv(model *costmodel.Model, sizeGB float64, reads, writes []float64, initial pricing.Tier, histLen int, reward RewardConfig) (*Env, error) {
	e := &Env{}
	if err := e.Reinit(model, sizeGB, reads, writes, initial, histLen, reward); err != nil {
		return nil, err
	}
	return e, nil
}

// Reinit points the environment at a new file series in place, with exactly
// NewEnv's validation, and resets the episode. Reuse buffers (state-reuse
// mode, see EnableStateReuse) survive, so a serving loop that walks many
// files through one pooled Env allocates nothing per file.
func (e *Env) Reinit(model *costmodel.Model, sizeGB float64, reads, writes []float64, initial pricing.Tier, histLen int, reward RewardConfig) error {
	if len(reads) == 0 || len(reads) != len(writes) {
		return fmt.Errorf("mdp: reads/writes lengths %d/%d", len(reads), len(writes))
	}
	if sizeGB <= 0 {
		return fmt.Errorf("mdp: size %v", sizeGB)
	}
	if histLen <= 0 {
		return fmt.Errorf("mdp: histLen %d", histLen)
	}
	if !initial.Valid() {
		return fmt.Errorf("mdp: invalid initial tier")
	}
	e.Model, e.Reads, e.Writes, e.SizeGB = model, reads, writes, sizeGB
	e.HistLen, e.Reward, e.init = histLen, reward, initial
	e.Reset()
	return nil
}

// EnableStateReuse switches the environment to recycled observations: States
// returned by Reset and Step borrow their history slices from two env-owned
// buffers, alternating between them, instead of allocating per step. A
// returned State therefore stays valid only until the second following
// Step/Reset — long enough for the decide-then-step loops in rl, which
// encode features before stepping. Callers that retain States (replay
// buffers, diagnostics) must not enable this.
func (e *Env) EnableStateReuse() { e.reuse = true }

// Reset rewinds the episode and returns the initial state.
func (e *Env) Reset() State {
	e.day = 0
	e.tier = e.init
	return e.state()
}

// reward applies Eq. 4 with the per-step α scale (see AutoAlpha) and the
// MaxRatio cap. day is the day the cost was incurred on.
func (e *Env) reward(day int, cost float64) float64 {
	rc := e.Reward
	if rc.AutoAlpha {
		base := e.Model.Day(e.init, e.init, e.SizeGB, e.Reads[day], e.Writes[day]).Total()
		if base < rc.CostFloor {
			base = rc.CostFloor
		}
		rc.Alpha *= base
	}
	r := rc.Reward(cost)
	if e.Reward.MaxRatio > 0 && !rc.NegCost {
		if cap := e.Reward.Alpha*e.Reward.MaxRatio + rc.Delta; r > cap {
			r = cap
		}
	}
	return r
}

// Days returns the episode length.
func (e *Env) Days() int { return len(e.Reads) }

// Day returns the index of the next day to be decided.
func (e *Env) Day() int { return e.day }

// Tier returns the file's current tier.
func (e *Env) Tier() pricing.Tier { return e.tier }

// state builds the observation before deciding day e.day: the trailing
// HistLen observed frequencies, padded at the episode start.
func (e *Env) state() State {
	s := State{SizeGB: e.SizeGB, Tier: e.tier}
	if e.reuse {
		if cap(e.histBuf[e.flip]) < e.HistLen {
			e.histBuf[e.flip] = make([]float64, e.HistLen)
			e.writeBuf[e.flip] = make([]float64, e.HistLen)
		}
		s.ReadHistory = e.histBuf[e.flip][:e.HistLen]
		s.WriteHistory = e.writeBuf[e.flip][:e.HistLen]
		e.flip = 1 - e.flip
	} else {
		s.ReadHistory = make([]float64, e.HistLen)
		s.WriteHistory = make([]float64, e.HistLen)
	}
	for i := 0; i < e.HistLen; i++ {
		d := e.day - e.HistLen + i
		if d < 0 {
			d = 0
		}
		s.ReadHistory[i] = e.Reads[d]
		s.WriteHistory[i] = e.Writes[d]
	}
	return s
}

// Step assigns the file to tier `action` for the current day, pays the
// day's bill, and advances. It returns the next state, the Eq. 4 reward,
// the day's cost, and whether the episode ended.
func (e *Env) Step(action pricing.Tier) (next State, reward, cost float64, done bool, err error) {
	if !action.Valid() {
		return State{}, 0, 0, false, fmt.Errorf("mdp: invalid action %d", int(action))
	}
	if e.day >= len(e.Reads) {
		return State{}, 0, 0, true, fmt.Errorf("mdp: episode already finished")
	}
	bd := e.Model.Day(e.tier, action, e.SizeGB, e.Reads[e.day], e.Writes[e.day])
	costDay := e.day
	e.tier = action
	e.day++
	cost = bd.Total()
	return e.state(), e.reward(costDay, cost), cost, e.day >= len(e.Reads), nil
}
