package mdp

import (
	"errors"
	"math"
)

// Finite is a small tabular MDP with known dynamics, used as ground truth
// when validating the RL learners: value iteration here gives the exact
// optimum the learners must approach.
type Finite struct {
	NumStates  int
	NumActions int
	// Next[s][a] is the deterministic successor state (the paper's MDP has
	// P(s'|s,a) = 1).
	Next [][]int
	// Reward[s][a] is the immediate reward.
	Reward [][]float64
	// Terminal marks absorbing states; stepping from them is an error.
	Terminal []bool
}

// Validate checks the table shapes and ranges.
func (f *Finite) Validate() error {
	if f.NumStates <= 0 || f.NumActions <= 0 {
		return errors.New("mdp: empty finite MDP")
	}
	if len(f.Next) != f.NumStates || len(f.Reward) != f.NumStates || len(f.Terminal) != f.NumStates {
		return errors.New("mdp: table sizes disagree with NumStates")
	}
	for s := 0; s < f.NumStates; s++ {
		if len(f.Next[s]) != f.NumActions || len(f.Reward[s]) != f.NumActions {
			return errors.New("mdp: row sizes disagree with NumActions")
		}
		for a := 0; a < f.NumActions; a++ {
			if n := f.Next[s][a]; n < 0 || n >= f.NumStates {
				return errors.New("mdp: successor out of range")
			}
		}
	}
	return nil
}

// ValueIteration computes the optimal state values and a greedy optimal
// policy under discount gamma in [0,1). Terminal states have value 0.
func (f *Finite) ValueIteration(gamma, tol float64) (values []float64, policy []int) {
	values = make([]float64, f.NumStates)
	policy = make([]int, f.NumStates)
	for {
		delta := 0.0
		for s := 0; s < f.NumStates; s++ {
			if f.Terminal[s] {
				continue
			}
			best := math.Inf(-1)
			bestA := 0
			for a := 0; a < f.NumActions; a++ {
				q := f.Reward[s][a] + gamma*values[f.Next[s][a]]
				if q > best {
					best = q
					bestA = a
				}
			}
			if d := math.Abs(best - values[s]); d > delta {
				delta = d
			}
			values[s] = best
			policy[s] = bestA
		}
		if delta < tol {
			return values, policy
		}
	}
}

// QValues returns the full optimal action-value table under gamma given the
// optimal state values.
func (f *Finite) QValues(values []float64, gamma float64) [][]float64 {
	q := make([][]float64, f.NumStates)
	for s := range q {
		q[s] = make([]float64, f.NumActions)
		for a := 0; a < f.NumActions; a++ {
			if f.Terminal[s] {
				continue
			}
			q[s][a] = f.Reward[s][a] + gamma*values[f.Next[s][a]]
		}
	}
	return q
}
