package mdp

import (
	"fmt"

	"minicost/internal/pricing"
)

// EnvBank drives a fixed set of environments in lockstep for the vectorized
// rollout engine (DESIGN.md §16): one bank per A3C worker, E member
// environments stepped together so action selection and value bootstrapping
// amortize one batched network pass over all E members instead of E
// batch-of-1 passes. Per-step results live in struct-of-arrays form
// (Rewards, Costs, Done), so the consumer reads them with flat indexed
// loops instead of chasing per-env result structs.
//
// The bank owns its members' observations: Install enables state reuse on
// every member, so steady-state stepping (FillFeatures + StepAll) allocates
// nothing. A member whose episode ends keeps its terminal flag in Done
// until the caller re-targets it — Env.Reinit on the pooled member, or a
// fresh environment via Install — and rewinds it with ResetEnv; stepping a
// finished member without resetting it is a caller bug and panics.
type EnvBank struct {
	envs   []*Env
	states []State

	// Struct-of-arrays outputs of the latest StepAll, indexed by member.
	Rewards []float64
	Costs   []float64
	Done    []bool
}

// NewEnvBank returns an empty bank with n member slots; fill every slot
// with Install before stepping.
func NewEnvBank(n int) *EnvBank {
	if n <= 0 {
		panic(fmt.Sprintf("mdp: EnvBank size %d", n))
	}
	return &EnvBank{
		envs:    make([]*Env, n),
		states:  make([]State, n),
		Rewards: make([]float64, n),
		Costs:   make([]float64, n),
		Done:    make([]bool, n),
	}
}

// Len returns the number of member slots.
func (b *EnvBank) Len() int { return len(b.envs) }

// Env returns member i's environment (for in-place Reinit at episode
// turnover; follow with ResetEnv).
func (b *EnvBank) Env(i int) *Env { return b.envs[i] }

// State returns member i's current observation. The pointed-to value is
// overwritten by the member's next StepAll/ResetEnv.
func (b *EnvBank) State(i int) *State { return &b.states[i] }

// Install places e in slot i, switches it to recycled observations, and
// starts its episode.
func (b *EnvBank) Install(i int, e *Env) {
	e.EnableStateReuse()
	b.envs[i] = e
	b.states[i] = e.Reset()
	b.Done[i] = false
}

// ResetEnv rewinds member i to the start of its (possibly re-targeted)
// episode, clearing its terminal flag.
func (b *EnvBank) ResetEnv(i int) {
	b.states[i] = b.envs[i].Reset()
	b.Done[i] = false
}

// FillFeatures encodes every member's current observation into dst, a flat
// row-major Len()×dim block (member i at dst[i*dim:(i+1)*dim]). dim must be
// FeatureDim of the members' history length. It allocates nothing — the
// vectorized engine points dst straight into its rollout feature arena.
//
//minicost:hotpath
func (b *EnvBank) FillFeatures(dst []float64, dim int) {
	if len(dst) != len(b.envs)*dim {
		panic(fmt.Sprintf("mdp: FillFeatures dst len %d, want %d×%d", len(dst), len(b.envs), dim))
	}
	for i := range b.envs {
		b.states[i].FeaturesInto(dst[i*dim : (i+1)*dim : (i+1)*dim])
	}
}

// StepAll advances every member one day with its action, recording the
// per-member reward, cost, and terminal flag in the bank's flat result
// arrays and replacing the current states. Members run independently, so
// lockstep order is fixed (0…Len-1) and results are identical to stepping
// each member alone. With state reuse on (Install enables it) the call
// allocates nothing.
//
//minicost:hotpath
func (b *EnvBank) StepAll(actions []pricing.Tier) {
	if len(actions) != len(b.envs) {
		panic(fmt.Sprintf("mdp: StepAll %d actions for %d envs", len(actions), len(b.envs)))
	}
	for i, e := range b.envs {
		next, reward, cost, done, err := e.Step(actions[i])
		if err != nil {
			// The bank's contract is reset-before-step; a finished member
			// reaching Step means the driver skipped ResetEnv.
			panic("mdp: EnvBank stepped an unresettled member: " + err.Error())
		}
		b.states[i] = next
		b.Rewards[i] = reward
		b.Costs[i] = cost
		b.Done[i] = done
	}
}
