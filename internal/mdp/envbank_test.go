package mdp

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/pricing"
)

// bankFixture builds a bank of n members over distinct synthetic series plus
// a parallel set of standalone reference environments with identical data.
func bankFixture(t *testing.T, n, days, histLen int) (*EnvBank, []*Env) {
	t.Helper()
	model := costmodel.New(pricing.Azure())
	bank := NewEnvBank(n)
	refs := make([]*Env, n)
	for i := 0; i < n; i++ {
		reads := make([]float64, days)
		writes := make([]float64, days)
		for d := range reads {
			reads[d] = float64((i+1)*(d+3)) * 7.5
			writes[d] = float64(i * d)
		}
		size := 0.05 * float64(i+1)
		env, err := NewEnv(model, size, reads, writes, pricing.Hot, histLen, DefaultReward())
		if err != nil {
			t.Fatal(err)
		}
		bank.Install(i, env)
		ref, err := NewEnv(model, size, reads, writes, pricing.Hot, histLen, DefaultReward())
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	return bank, refs
}

// TestEnvBankMatchesIndividualStepping pins the bank's lockstep contract:
// StepAll over E members must produce exactly the rewards, costs, terminal
// flags, and feature encodings that stepping each environment alone does.
func TestEnvBankMatchesIndividualStepping(t *testing.T) {
	const n, days, histLen = 5, 9, 4
	bank, refs := bankFixture(t, n, days, histLen)
	dim := FeatureDim(histLen)

	refStates := make([]State, n)
	for i, ref := range refs {
		refStates[i] = ref.Reset()
	}
	actions := make([]pricing.Tier, n)
	got := make([]float64, n*dim)
	want := make([]float64, dim)
	for d := 0; d < days; d++ {
		bank.FillFeatures(got, dim)
		for i := range refs {
			refStates[i].FeaturesInto(want)
			for k, v := range want {
				if got[i*dim+k] != v {
					t.Fatalf("day %d env %d feature %d = %v, want %v", d, i, k, got[i*dim+k], v)
				}
			}
			actions[i] = pricing.Tier((d + i) % NumActions)
		}
		bank.StepAll(actions)
		for i, ref := range refs {
			next, reward, cost, done, err := ref.Step(actions[i])
			if err != nil {
				t.Fatal(err)
			}
			refStates[i] = next
			if bank.Rewards[i] != reward || bank.Costs[i] != cost || bank.Done[i] != done {
				t.Fatalf("day %d env %d: bank (r=%v c=%v done=%v), ref (r=%v c=%v done=%v)",
					d, i, bank.Rewards[i], bank.Costs[i], bank.Done[i], reward, cost, done)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !bank.Done[i] {
			t.Fatalf("env %d not done after %d days", i, days)
		}
	}
}

// TestEnvBankResetEnvStartsFreshEpisode checks the turnover path the
// vectorized engine uses mid-rollout: Reinit the pooled member in place,
// ResetEnv, and keep stepping.
func TestEnvBankResetEnvStartsFreshEpisode(t *testing.T) {
	const days, histLen = 3, 2
	bank, _ := bankFixture(t, 2, days, histLen)
	actions := []pricing.Tier{pricing.Hot, pricing.Cool}
	for d := 0; d < days; d++ {
		bank.StepAll(actions)
	}
	if !bank.Done[0] || !bank.Done[1] {
		t.Fatal("episodes should be finished")
	}
	model := costmodel.New(pricing.Azure())
	reads := []float64{9, 9, 9, 9}
	writes := []float64{1, 1, 1, 1}
	if err := bank.Env(0).Reinit(model, 0.2, reads, writes, pricing.Cool, histLen, DefaultReward()); err != nil {
		t.Fatal(err)
	}
	bank.ResetEnv(0)
	if bank.Done[0] {
		t.Fatal("ResetEnv left the terminal flag set")
	}
	if got := bank.State(0).Tier; got != pricing.Cool {
		t.Fatalf("reinitialized member starts in tier %v, want Cool", got)
	}
	if bank.Env(0).Days() != len(reads) {
		t.Fatalf("reinitialized member has %d days, want %d", bank.Env(0).Days(), len(reads))
	}
}

// TestEnvBankSteadyStateAllocFree gates the lockstep kernels: with state
// reuse on (Install enables it), a FillFeatures + StepAll + turnover cycle
// allocates nothing once the members' observation buffers are warm.
func TestEnvBankSteadyStateAllocFree(t *testing.T) {
	const n, days, histLen = 4, 64, 7
	bank, _ := bankFixture(t, n, days, histLen)
	dim := FeatureDim(histLen)
	feats := make([]float64, n*dim)
	actions := make([]pricing.Tier, n)
	day := 0
	cycle := func() {
		bank.FillFeatures(feats, dim)
		for i := range actions {
			actions[i] = pricing.Tier((day + i) % NumActions)
		}
		bank.StepAll(actions)
		for i := range actions {
			if bank.Done[i] {
				bank.ResetEnv(i)
			}
		}
		day++
	}
	cycle() // warm the reuse buffers
	cycle()
	allocs := testing.AllocsPerRun(20, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state bank cycle allocates %.0f/op, want 0", allocs)
	}
}

// TestEnvBankStepAfterDonePanics pins the reset-before-step contract.
func TestEnvBankStepAfterDonePanics(t *testing.T) {
	bank, _ := bankFixture(t, 1, 2, 2)
	actions := []pricing.Tier{pricing.Hot}
	bank.StepAll(actions)
	bank.StepAll(actions)
	if !bank.Done[0] {
		t.Fatal("episode should be finished")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StepAll on a finished member did not panic")
		}
	}()
	bank.StepAll(actions)
}
