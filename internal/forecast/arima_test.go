package forecast

import (
	"math"
	"testing"

	"minicost/internal/rng"
)

// genAR simulates x_t = c + Σ phi_i x_{t-i} + e_t with Gaussian noise.
func genAR(r *rng.RNG, c float64, phi []float64, sigma float64, n int) []float64 {
	burn := 200
	x := make([]float64, n+burn)
	for t := len(phi); t < len(x); t++ {
		v := c + r.NormalMS(0, sigma)
		for i, p := range phi {
			v += p * x[t-1-i]
		}
		x[t] = v
	}
	return x[burn:]
}

func TestFitRecoversAR2(t *testing.T) {
	r := rng.New(1)
	phi := []float64{0.6, -0.3}
	series := genAR(r, 2.0, phi, 0.5, 3000)
	m, err := Fit(series, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phi {
		if math.Abs(m.Phi[i]-phi[i]) > 0.05 {
			t.Fatalf("phi[%d] = %v, want %v", i, m.Phi[i], phi[i])
		}
	}
	// Implied mean c/(1-Σphi) should match the sample mean.
	wantMean := 2.0 / (1 - 0.6 + 0.3)
	impliedMean := m.Intercept / (1 - m.Phi[0] - m.Phi[1])
	if math.Abs(impliedMean-wantMean) > 0.2 {
		t.Fatalf("implied mean %v, want %v", impliedMean, wantMean)
	}
}

func TestFitRecoversMA1Sign(t *testing.T) {
	// Simulate an MA(1): x_t = e_t + 0.7 e_{t-1}. Hannan–Rissanen should
	// recover theta with the right sign and rough magnitude.
	r := rng.New(2)
	n := 5000
	e := make([]float64, n+1)
	for i := range e {
		e[i] = r.NormalMS(0, 1)
	}
	x := make([]float64, n)
	for t := 0; t < n; t++ {
		x[t] = e[t+1] + 0.7*e[t]
	}
	m, err := Fit(x, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta[0]-0.7) > 0.15 {
		t.Fatalf("theta = %v, want ~0.7", m.Theta[0])
	}
}

func TestForecastConstantSeries(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = 42
	}
	m, err := Fit(series, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Forecast(7) {
		if math.Abs(v-42) > 1 {
			t.Fatalf("forecast[%d] = %v, want ~42", i, v)
		}
	}
}

func TestForecastLinearTrendWithDifferencing(t *testing.T) {
	// x_t = 3t + 10: first differences are constant 3, so ARIMA(p,1,0)
	// should extrapolate the trend almost exactly.
	series := make([]float64, 80)
	for i := range series {
		series[i] = 3*float64(i) + 10
	}
	m, err := Fit(series, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(5)
	for i, v := range fc {
		want := 3*float64(80+i) + 10
		if math.Abs(v-want) > 0.5 {
			t.Fatalf("forecast[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestForecastWeeklyCycleWithAR7(t *testing.T) {
	// A seasonal series with period 7 should be predicted well by AR(7).
	n := 200
	series := make([]float64, n)
	r := rng.New(3)
	for i := range series {
		series[i] = 100 + 20*math.Sin(2*math.Pi*float64(i)/7) + r.NormalMS(0, 1)
	}
	m, err := Fit(series, 7, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(7)
	for i, v := range fc {
		want := 100 + 20*math.Sin(2*math.Pi*float64(n+i)/7)
		if math.Abs(v-want) > 8 {
			t.Fatalf("forecast[%d] = %v, want ~%v", i, v, want)
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	ok := make([]float64, 100)
	for i := range ok {
		ok[i] = float64(i % 5)
	}
	if _, err := Fit(ok, -1, 0, 0); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := Fit(ok, 0, 0, 0); err == nil {
		t.Error("p=q=0 accepted")
	}
	if _, err := Fit(ok[:5], 2, 0, 1); err == nil {
		t.Error("too-short series accepted")
	}
	bad := append([]float64(nil), ok...)
	bad[3] = math.NaN()
	if _, err := Fit(bad, 2, 0, 0); err == nil {
		t.Error("NaN series accepted")
	}
}

func TestDifference(t *testing.T) {
	x := []float64{1, 4, 9, 16, 25}
	d1 := Difference(x, 1)
	want1 := []float64{3, 5, 7, 9}
	for i := range want1 {
		if d1[i] != want1[i] {
			t.Fatalf("d1 = %v", d1)
		}
	}
	d2 := Difference(x, 2)
	for i, want := range []float64{2, 2, 2} {
		if d2[i] != want {
			t.Fatalf("d2 = %v", d2)
		}
	}
	if Difference(x, 0)[0] != 1 {
		t.Fatal("d0 should copy")
	}
	if Difference([]float64{1}, 1) != nil {
		t.Fatal("over-differencing should return nil")
	}
}

func TestFitAutoPrefersCorrectOrder(t *testing.T) {
	r := rng.New(4)
	series := genAR(r, 1, []float64{0.8}, 0.3, 1500)
	m, err := FitAuto(series, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen model must forecast the AR(1) mean region reasonably.
	fc := m.Forecast(7)
	wantMean := 1.0 / (1 - 0.8)
	for _, v := range fc {
		if math.Abs(v-wantMean) > 2.5 {
			t.Fatalf("auto forecast %v far from mean %v (order %d,%d,%d)", v, wantMean, m.P, m.D, m.Q)
		}
	}
}

func TestFitAutoNoCandidates(t *testing.T) {
	if _, err := FitAuto([]float64{1, 2, 3}, 1, 0, 0); err == nil {
		t.Fatal("short series accepted by FitAuto")
	}
}

func TestRelativeError(t *testing.T) {
	for _, tc := range []struct {
		truth, pred, want float64
	}{
		{100, 90, 0.1},
		{100, 110, -0.1},
		{0, 0, 0},
		{0, 5, -1},
		{0, -5, 1},
	} {
		if got := RelativeError(tc.truth, tc.pred); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("RelativeError(%v,%v) = %v, want %v", tc.truth, tc.pred, got, tc.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPredictionHarderForVolatileSeries(t *testing.T) {
	// The qualitative Fig. 4 claim: ARIMA's relative error is larger for
	// high-variability series than for stationary ones.
	r := rng.New(5)
	stableErr, volErr := 0.0, 0.0
	n := 40
	for trial := 0; trial < n; trial++ {
		stable := make([]float64, 70)
		volatile := make([]float64, 70)
		base := 100.0
		burst := 1.0
		for i := range stable {
			stable[i] = base * r.LogNormal(-0.0008, 0.04)
			if r.Float64() < 0.07 {
				burst = 4
			} else if r.Float64() < 0.4 {
				burst = 1
			}
			volatile[i] = base * burst * r.LogNormal(-0.18, 0.6)
		}
		for _, pair := range []struct {
			series []float64
			sink   *float64
		}{{stable, &stableErr}, {volatile, &volErr}} {
			m, err := Fit(pair.series[:63], 7, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			fc := m.Forecast(7)
			for i := 0; i < 7; i++ {
				*pair.sink += math.Abs(RelativeError(pair.series[63+i], fc[i]))
			}
		}
	}
	if volErr <= stableErr*1.5 {
		t.Fatalf("volatile error %v not clearly larger than stable %v", volErr, stableErr)
	}
}

func BenchmarkFitARIMA711(b *testing.B) {
	r := rng.New(1)
	series := genAR(r, 1, []float64{0.5, 0.2}, 1, 63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(series, 7, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecast7(b *testing.B) {
	r := rng.New(1)
	series := genAR(r, 1, []float64{0.5, 0.2}, 1, 63)
	m, err := Fit(series, 7, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forecast(7)
	}
}
