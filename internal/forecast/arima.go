// Package forecast implements the ARIMA time-series model the paper uses
// for request-frequency prediction (§3.1, Fig. 4): fit on the first two
// months of daily frequencies, predict the next 7 days.
//
// Estimation is the Hannan–Rissanen two-stage procedure: a long
// autoregression estimates the innovation sequence, then ordinary least
// squares regresses the (differenced) series on its own lags and the lagged
// innovations. OLS lives in internal/mat; no iterative likelihood machinery
// is needed at the accuracy level the paper's experiment requires.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"minicost/internal/mat"
)

// Model is a fitted ARIMA(p,d,q) model with intercept.
type Model struct {
	P, D, Q   int
	Phi       []float64 // AR coefficients, Phi[i] multiplies w_{t-1-i}
	Theta     []float64 // MA coefficients, Theta[j] multiplies e_{t-1-j}
	Intercept float64

	series []float64 // original series (training data)
	w      []float64 // differenced series
	resid  []float64 // innovations aligned with w (resid[t] for w[t])
	sse    float64
	nEff   int // effective sample size used in the final regression
}

// longARWindow bounds the order of the stage-1 long autoregression.
const longARWindow = 20

// Fit estimates an ARIMA(p,d,q) on series. It requires enough observations
// for the two regression stages; as a rule of thumb
// len(series) >= d + p + q + longAR + 10.
func Fit(series []float64, p, d, q int) (*Model, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("forecast: negative order (%d,%d,%d)", p, d, q)
	}
	if p == 0 && q == 0 {
		return nil, errors.New("forecast: p and q cannot both be zero")
	}
	for _, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("forecast: series contains NaN/Inf")
		}
	}
	w := Difference(series, d)
	m := &Model{P: p, D: d, Q: q, series: append([]float64(nil), series...), w: w}

	longAR := p + q + 3
	if longAR > longARWindow {
		longAR = longARWindow
	}
	minLen := max(p, longAR+q) + max(p+q+2, 8)
	if len(w) < minLen {
		return nil, fmt.Errorf("forecast: need >= %d differenced observations for ARIMA(%d,%d,%d), have %d",
			minLen, p, d, q, len(w))
	}

	// Stage 1: innovations. For q == 0 they are unused; otherwise estimate a
	// long AR and keep its residuals as proxies for the true innovations.
	resid := make([]float64, len(w))
	if q > 0 {
		arPhi, arC, err := fitAR(w, longAR)
		if err != nil {
			return nil, err
		}
		for t := longAR; t < len(w); t++ {
			pred := arC
			for i := 0; i < longAR; i++ {
				pred += arPhi[i] * w[t-1-i]
			}
			resid[t] = w[t] - pred
		}
	}

	// Stage 2: regress w_t on [1, w_{t-1..t-p}, e_{t-1..t-q}].
	start := max(p, q)
	if q > 0 {
		start = max(start, longAR+q)
	}
	rows := len(w) - start
	x := mat.New(rows, 1+p+q)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		y[r] = w[t]
		x.Set(r, 0, 1)
		for i := 0; i < p; i++ {
			x.Set(r, 1+i, w[t-1-i])
		}
		for j := 0; j < q; j++ {
			x.Set(r, 1+p+j, resid[t-1-j])
		}
	}
	beta, err := mat.LeastSquares(x, y)
	if err != nil {
		return nil, fmt.Errorf("forecast: stage-2 regression: %w", err)
	}
	m.Intercept = beta[0]
	m.Phi = append([]float64(nil), beta[1:1+p]...)
	m.Theta = append([]float64(nil), beta[1+p:]...)

	// Final residuals under the fitted model (used for forecasting MA terms
	// and for AIC).
	m.resid = make([]float64, len(w))
	for t := start; t < len(w); t++ {
		pred := m.Intercept
		for i := 0; i < p && t-1-i >= 0; i++ {
			pred += m.Phi[i] * w[t-1-i]
		}
		for j := 0; j < q && t-1-j >= 0; j++ {
			pred += m.Theta[j] * m.resid[t-1-j]
		}
		m.resid[t] = w[t] - pred
		m.sse += m.resid[t] * m.resid[t]
	}
	m.nEff = rows
	return m, nil
}

// fitAR estimates an AR(k) with intercept by OLS, returning (phi, intercept).
func fitAR(w []float64, k int) ([]float64, float64, error) {
	rows := len(w) - k
	if rows < k+2 {
		return nil, 0, fmt.Errorf("forecast: series too short for AR(%d)", k)
	}
	x := mat.New(rows, k+1)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := k + r
		y[r] = w[t]
		x.Set(r, 0, 1)
		for i := 0; i < k; i++ {
			x.Set(r, 1+i, w[t-1-i])
		}
	}
	beta, err := mat.LeastSquares(x, y)
	if err != nil {
		return nil, 0, fmt.Errorf("forecast: long-AR regression: %w", err)
	}
	return beta[1:], beta[0], nil
}

// Difference applies d-th order differencing.
func Difference(series []float64, d int) []float64 {
	w := append([]float64(nil), series...)
	for k := 0; k < d; k++ {
		if len(w) < 2 {
			return nil
		}
		next := make([]float64, len(w)-1)
		for i := range next {
			next[i] = w[i+1] - w[i]
		}
		w = next
	}
	return w
}

// Forecast predicts the next h values of the original series. MA terms use
// the fitted innovations for known lags and zero for future ones; the
// differenced forecasts are re-integrated against the training series tail.
func (m *Model) Forecast(h int) []float64 {
	if h <= 0 {
		return nil
	}
	// Extended differenced series and residuals.
	w := append(append([]float64(nil), m.w...), make([]float64, h)...)
	e := append(append([]float64(nil), m.resid...), make([]float64, h)...)
	n := len(m.w)
	for s := 0; s < h; s++ {
		t := n + s
		pred := m.Intercept
		for i := 0; i < m.P; i++ {
			if t-1-i >= 0 {
				pred += m.Phi[i] * w[t-1-i]
			}
		}
		for j := 0; j < m.Q; j++ {
			if t-1-j >= 0 {
				pred += m.Theta[j] * e[t-1-j]
			}
		}
		w[t] = pred
		e[t] = 0
	}

	// Re-integrate d times. tails[k] is the last value of the k-times
	// differenced training series.
	tails := make([]float64, m.D)
	cur := m.series
	for k := 0; k < m.D; k++ {
		tails[k] = cur[len(cur)-1]
		cur = Difference(cur, 1)
	}
	out := append([]float64(nil), w[n:]...)
	for k := m.D - 1; k >= 0; k-- {
		acc := tails[k]
		for i := range out {
			acc += out[i]
			out[i] = acc
		}
	}
	return out
}

// AIC returns the Akaike information criterion of the fit (lower is better).
func (m *Model) AIC() float64 {
	k := float64(1 + m.P + m.Q)
	n := float64(m.nEff)
	if n <= 0 || m.sse <= 0 {
		return math.Inf(-1) // a perfect fit dominates any alternative
	}
	return n*math.Log(m.sse/n) + 2*k
}

// FitAuto grid-searches (p,d,q) up to the given bounds and returns the model
// minimizing AIC. At least one of maxP, maxQ must be positive.
func FitAuto(series []float64, maxP, maxD, maxQ int) (*Model, error) {
	var best *Model
	var firstErr error
	for d := 0; d <= maxD; d++ {
		for p := 0; p <= maxP; p++ {
			for q := 0; q <= maxQ; q++ {
				if p == 0 && q == 0 {
					continue
				}
				mod, err := Fit(series, p, d, q)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				if best == nil || mod.AIC() < best.AIC() {
					best = mod
				}
			}
		}
	}
	if best == nil {
		if firstErr == nil {
			firstErr = errors.New("forecast: no candidate orders")
		}
		return nil, firstErr
	}
	return best, nil
}

// RelativeError is the paper's prediction-error metric:
// (true − predicted) / true. A zero true value yields 0 when the prediction
// is also ~0 and ±1 otherwise (capped), keeping idle files from producing
// infinities.
func RelativeError(truth, pred float64) float64 {
	if truth == 0 {
		if math.Abs(pred) < 1e-9 {
			return 0
		}
		if pred > 0 {
			return -1
		}
		return 1
	}
	return (truth - pred) / truth
}

// Percentile returns the q-th percentile (q in [0,100]) of xs by linear
// interpolation; it sorts a copy.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
