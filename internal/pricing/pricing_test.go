package pricing

import (
	"math"
	"testing"
)

func TestAzureValidates(t *testing.T) {
	if err := Azure().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
}

func TestTierString(t *testing.T) {
	cases := map[Tier]string{Hot: "hot", Cool: "cool", Archive: "archive", Tier(9): "tier(9)"}
	for tier, want := range cases {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, want)
		}
	}
}

func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
		ok   bool
	}{
		{"hot", Hot, true},
		{"cool", Cool, true},
		{"cold", Cool, true}, // the paper's name for the cool tier
		{"archive", Archive, true},
		{"glacier", 0, false},
	} {
		got, err := ParseTier(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseTier(%q) accepted", tc.in)
		}
	}
}

func TestTierValid(t *testing.T) {
	for _, tier := range AllTiers() {
		if !tier.Valid() {
			t.Errorf("%v should be valid", tier)
		}
	}
	if Tier(-1).Valid() || Tier(NumTiers).Valid() {
		t.Error("out-of-range tiers reported valid")
	}
}

func TestPriceStructure(t *testing.T) {
	p := Azure()
	// Storage strictly cheaper moving toward archive, access more expensive.
	if !(p.Tiers[Hot].StoragePerGBMonth > p.Tiers[Cool].StoragePerGBMonth &&
		p.Tiers[Cool].StoragePerGBMonth > p.Tiers[Archive].StoragePerGBMonth) {
		t.Error("storage prices should decrease toward archive")
	}
	if !(p.ReadOpPrice(Hot) < p.ReadOpPrice(Cool) && p.ReadOpPrice(Cool) < p.ReadOpPrice(Archive)) {
		t.Error("read prices should increase toward archive")
	}
}

func TestOpPriceConversion(t *testing.T) {
	p := Azure()
	if got, want := p.ReadOpPrice(Hot), 0.0044/10000; math.Abs(got-want) > 1e-15 {
		t.Errorf("ReadOpPrice(Hot) = %v, want %v", got, want)
	}
	if got, want := p.WriteOpPrice(Archive), 0.11/10000; math.Abs(got-want) > 1e-15 {
		t.Errorf("WriteOpPrice(Archive) = %v, want %v", got, want)
	}
}

func TestStoragePerGBDay(t *testing.T) {
	p := Azure()
	if got, want := p.StoragePerGBDay(Hot), 0.0184/DaysPerMonth; math.Abs(got-want) > 1e-15 {
		t.Errorf("StoragePerGBDay(Hot) = %v, want %v", got, want)
	}
}

func TestValidateRejectsBadPolicies(t *testing.T) {
	neg := Azure()
	neg.Tiers[Hot].ReadPer10K = -1
	if neg.Validate() == nil {
		t.Error("negative price accepted")
	}

	inverted := Azure()
	inverted.Tiers[Archive].StoragePerGBMonth = 1.0 // dearer than hot
	if inverted.Validate() == nil {
		t.Error("inverted storage prices accepted")
	}

	cheapArchiveReads := Azure()
	cheapArchiveReads.Tiers[Archive].ReadPer10K = 0.0001
	if cheapArchiveReads.Validate() == nil {
		t.Error("decreasing read prices accepted")
	}

	negTran := Azure()
	negTran.TransitionPerGB = -0.5
	if negTran.Validate() == nil {
		t.Error("negative transition price accepted")
	}

	var nilPolicy *Policy
	if nilPolicy.Validate() == nil {
		t.Error("nil policy accepted")
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := Azure()
	data, err := p.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *p {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, p)
	}
}

func TestParsePolicyRejectsInvalid(t *testing.T) {
	if _, err := ParsePolicy([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	bad := Azure()
	bad.TransitionPerGB = -1
	data, _ := bad.MarshalJSONIndent()
	if _, err := ParsePolicy(data); err == nil {
		t.Error("invalid policy accepted by ParsePolicy")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if err := c.Add("us-west", Azure()); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("us-west", Azure()); err == nil {
		t.Error("duplicate datacenter accepted")
	}
	east := Azure()
	east.Name = "azure-us-east"
	east.Tiers[Hot].StoragePerGBMonth = 0.0208
	if err := c.Add("us-east", east); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("catalog len %d, want 2", c.Len())
	}
	got, ok := c.Get("us-east")
	if !ok || got.Name != "azure-us-east" {
		t.Fatal("Get returned wrong policy")
	}
	if _, ok := c.Get("eu"); ok {
		t.Error("Get found unregistered datacenter")
	}
	if len(c.Datacenters()) != 2 {
		t.Error("Datacenters length wrong")
	}
	invalid := Azure()
	invalid.TransitionPerGB = -1
	if err := c.Add("bad", invalid); err == nil {
		t.Error("catalog accepted invalid policy")
	}
}
