// Package pricing models cloud-storage-tier price schedules: per-tier
// storage, operation, and retrieval prices plus the tier-transition fee that
// Eq. 9 of the MiniCost paper calls u_tran.
//
// A Policy is one datacenter's schedule; a Catalog maps datacenter IDs to
// policies so the system extends to multiple datacenters / CSPs (the paper's
// §4.2.1 remark that Γ "can be easily adjusted for multiple CSPs").
//
// The default schedule, Azure(), follows the structure and magnitudes of
// Microsoft Azure Block Blob pricing as quoted in the paper's introduction
// and the 2020 US-West list prices: hot storage is expensive to hold but
// cheap to access, archive the reverse.
package pricing

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Tier identifies a storage tier (the paper's storage "type").
type Tier int

// The three Azure tiers used throughout the paper. NumTiers is the paper's Γ.
const (
	Hot Tier = iota
	Cool
	Archive

	NumTiers = 3
)

var tierNames = [NumTiers]string{"hot", "cool", "archive"}

// String returns the lowercase tier name.
func (t Tier) String() string {
	if t < 0 || int(t) >= NumTiers {
		return fmt.Sprintf("tier(%d)", int(t))
	}
	return tierNames[t]
}

// Valid reports whether t is one of the defined tiers.
func (t Tier) Valid() bool { return t >= 0 && int(t) < NumTiers }

// ParseTier converts a tier name ("hot", "cool"/"cold", "archive") to a Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "hot":
		return Hot, nil
	case "cool", "cold": // the paper says "cold"; Azure calls it "cool"
		return Cool, nil
	case "archive":
		return Archive, nil
	}
	return 0, fmt.Errorf("pricing: unknown tier %q", s)
}

// AllTiers lists every tier, in price-schedule order.
func AllTiers() []Tier { return []Tier{Hot, Cool, Archive} }

// TierPrice is the unit-price schedule of one tier.
//
// Storage is billed per GB-month ($/GB/month, the paper's up_j); operations
// per 10,000 calls (the paper's u_rf, u_wf are per-op unit prices — we keep
// the natural per-10k quote and convert); retrieval/ingress per GB (the
// paper's u_rs, u_ws).
type TierPrice struct {
	StoragePerGBMonth float64 `json:"storage_per_gb_month"`
	ReadPer10K        float64 `json:"read_per_10k"`
	WritePer10K       float64 `json:"write_per_10k"`
	RetrievalPerGB    float64 `json:"retrieval_per_gb"` // charged on reads
	IngressPerGB      float64 `json:"ingress_per_gb"`   // charged on writes
	// MinRetentionDays is the tier's minimum storage duration; leaving the
	// tier earlier can incur an early-deletion charge (an extension beyond
	// the paper's Eq. 9 model, off by default in the cost model).
	MinRetentionDays int `json:"min_retention_days"`
}

// Policy is one datacenter's full price schedule.
type Policy struct {
	Name  string              `json:"name"`
	Tiers [NumTiers]TierPrice `json:"tiers"`
	// TransitionPerGB is u_tran in Eq. 9: the one-time $/GB fee for changing
	// a file's tier.
	TransitionPerGB float64 `json:"transition_per_gb"`
}

// Azure returns the default Azure-Block-Blob-like schedule used by all
// experiments (see package comment for provenance).
func Azure() *Policy {
	return &Policy{
		Name: "azure-us-west-2020",
		Tiers: [NumTiers]TierPrice{
			Hot: {
				StoragePerGBMonth: 0.0184,
				ReadPer10K:        0.0044,
				WritePer10K:       0.055,
				RetrievalPerGB:    0,
				IngressPerGB:      0,
				MinRetentionDays:  0,
			},
			Cool: {
				StoragePerGBMonth: 0.01,
				ReadPer10K:        0.01,
				WritePer10K:       0.10,
				RetrievalPerGB:    0.01,
				IngressPerGB:      0,
				MinRetentionDays:  30,
			},
			Archive: {
				StoragePerGBMonth: 0.00099,
				ReadPer10K:        5.50,
				WritePer10K:       0.11,
				RetrievalPerGB:    0.022,
				IngressPerGB:      0,
				MinRetentionDays:  180,
			},
		},
		// A tier change in Azure is billed as write operations against the
		// destination plus (when leaving cool/archive) per-GB retrieval;
		// Eq. 9 models it as one symmetric per-GB fee. 0.0002 $/GB sits
		// between the near-free hot→cool direction and the retrieval-priced
		// cool→hot direction, and — deliberately — below the per-day
		// hot↔archive storage differential (~0.00057 $/GB-day), so that
		// tier changes can pay back within days and per-day policies face a
		// real churn-versus-hold tradeoff (see DESIGN.md §5).
		TransitionPerGB: 0.0002,
	}
}

// Validate checks the schedule for internal consistency: non-negative
// prices and the hot→archive structure (storage price non-increasing,
// access price non-decreasing) every real CSP schedule satisfies and the
// MDP's economics rely on.
func (p *Policy) Validate() error {
	if p == nil {
		return errors.New("pricing: nil policy")
	}
	for t, tp := range p.Tiers {
		if tp.StoragePerGBMonth < 0 || tp.ReadPer10K < 0 || tp.WritePer10K < 0 ||
			tp.RetrievalPerGB < 0 || tp.IngressPerGB < 0 || tp.MinRetentionDays < 0 {
			return fmt.Errorf("pricing: %s: negative price in tier %s", p.Name, Tier(t))
		}
	}
	for t := 1; t < NumTiers; t++ {
		prev, cur := p.Tiers[t-1], p.Tiers[t]
		if cur.StoragePerGBMonth > prev.StoragePerGBMonth {
			return fmt.Errorf("pricing: %s: storage price increases from %s to %s", p.Name, Tier(t-1), Tier(t))
		}
		if cur.ReadPer10K < prev.ReadPer10K {
			return fmt.Errorf("pricing: %s: read price decreases from %s to %s", p.Name, Tier(t-1), Tier(t))
		}
	}
	if p.TransitionPerGB < 0 {
		return fmt.Errorf("pricing: %s: negative transition price", p.Name)
	}
	return nil
}

// ReadOpPrice returns the per-operation read price of tier t (u_rf).
func (p *Policy) ReadOpPrice(t Tier) float64 { return p.Tiers[t].ReadPer10K / 10000 }

// WriteOpPrice returns the per-operation write price of tier t (u_wf).
func (p *Policy) WriteOpPrice(t Tier) float64 { return p.Tiers[t].WritePer10K / 10000 }

// DaysPerMonth converts monthly storage prices to daily ones; the Gregorian
// average keeps a 30/31-day month argument out of every experiment.
const DaysPerMonth = 30.44

// StoragePerGBDay returns the per-GB per-day storage price of tier t.
func (p *Policy) StoragePerGBDay(t Tier) float64 {
	return p.Tiers[t].StoragePerGBMonth / DaysPerMonth
}

// MarshalJSONIndent renders the policy as pretty JSON (for cmd tools).
func (p *Policy) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParsePolicy decodes a JSON policy and validates it.
func ParsePolicy(data []byte) (*Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("pricing: decode policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Catalog maps datacenter IDs to their price schedules (the paper's set Ds).
type Catalog struct {
	policies map[string]*Policy
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{policies: make(map[string]*Policy)} }

// Add registers a datacenter's policy; it validates and rejects duplicates.
func (c *Catalog) Add(datacenter string, p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, dup := c.policies[datacenter]; dup {
		return fmt.Errorf("pricing: duplicate datacenter %q", datacenter)
	}
	c.policies[datacenter] = p
	return nil
}

// Get returns the policy for a datacenter.
func (c *Catalog) Get(datacenter string) (*Policy, bool) {
	p, ok := c.policies[datacenter]
	return p, ok
}

// Len returns the number of registered datacenters.
func (c *Catalog) Len() int { return len(c.policies) }

// Datacenters returns the registered IDs, sorted.
func (c *Catalog) Datacenters() []string {
	out := make([]string, 0, len(c.policies))
	//minicost:allow-maprange keys are sorted before returning
	for id := range c.policies {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
