// Package online closes the paper's serve→train loop (DESIGN.md §17): a
// continuous-learning subsystem that taps the live /v1/observe stream into a
// bounded, sharded replay buffer, detects distribution drift against the
// training baseline, periodically fine-tunes the A3C policy on environments
// reconstructed from the buffered windows, and hot-swaps the result into
// serving through the ReplicaPool snapshot machinery — behind a validation
// gate that rejects candidates regressing simulated cost on a held-out
// buffer slice.
//
// The package is on minicost-vet's deterministic list: given a seed and an
// observation sequence, every decision the learner makes (buffer admission,
// train/holdout split, drift score, gate verdict) is a pure function of its
// inputs. Wall-clock reads exist only on annotated instrumentation lines.
package online

import (
	"sync"
	"sync/atomic"

	"minicost/internal/agentserver"
	"minicost/internal/trace"
)

// buffer is the bounded replay/trace store behind the observe tap: tracked
// files sharded across power-of-two partitions, each shard holding the same
// struct-of-arrays ring layout the serving store uses — flat size array plus
// histLen-cell read/write rings per slot — so ingest is flat array writes
// with no per-file allocation and snapshotting linearizes windows straight
// out of the rings.
type buffer struct {
	shards []*bufShard
	mask   uint32
	window int
}

// bufShard is one partition of the replay buffer. All slot-indexed fields
// are struct-of-arrays; the shard stops admitting new files at cap (existing
// files keep updating), which is what bounds the buffer's memory.
type bufShard struct {
	mu     sync.Mutex
	window int
	cap    int

	index map[string]int32 // file ID → slot
	ids   []string         // slot → file ID

	size   []float64 // last observed size, GB
	reads  []float64 // ring buffers, window cells per slot
	writes []float64
	head   []int32  // next ring write position per slot
	fill   []int32  // observed days per slot, capped at window
	seq    []uint64 // tap-batch sequence of the slot's last entry (duplicate detection)

	// seen counts the slot's ingested observations — the file's observed
	// days, one per tap batch it appeared in, uncapped by the ring window.
	seen []int64
	// lastActive is the seen ordinal of the slot's last observation with
	// any read or write traffic; 0 until the first. The drift detector's
	// inter-access-gap dimension is seen − lastActive at the next active
	// observation: a per-file day count, so gaps stay in the trace-day
	// units the baseline is seeded in no matter how many observe batches a
	// workload day is split into, and stay non-negative regardless of the
	// order concurrent requests reach the tap.
	lastActive []int64

	files atomic.Int64
}

// newBuffer builds a buffer of `shards` partitions (rounded up to a power of
// two) holding at most maxFiles files in windows of `window` days.
func newBuffer(window, maxFiles, shards int) *buffer {
	if shards < 1 {
		shards = 1
	}
	p := 1
	for p < shards {
		p <<= 1
	}
	perShard := maxFiles / p
	if perShard < 1 {
		perShard = 1
	}
	b := &buffer{shards: make([]*bufShard, p), mask: uint32(p - 1), window: window}
	for i := range b.shards {
		b.shards[i] = &bufShard{
			window: window,
			cap:    perShard,
			index:  make(map[string]int32),
		}
	}
	return b
}

// files sums the shard populations without taking any lock.
func (b *buffer) files() int {
	n := int64(0)
	for _, sh := range b.shards {
		n += sh.files.Load()
	}
	return int(n)
}

// hashID is the FNV-1a 64 hash of a file ID — the shard router and the
// holdout split both key on it, so each is a stable function of file
// identity alone.
//
//minicost:hotpath
func hashID(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// shardOf folds hashID onto a shard index — the same hash the serving store
// uses, so co-located deployments shard compatibly.
//
//minicost:hotpath
func shardOf(id string, mask uint32) uint32 {
	h := hashID(id)
	return uint32(h^(h>>32)) & mask
}

// addSlot grows every slot-indexed array by one. Caller holds sh.mu and has
// checked the admission cap.
func (sh *bufShard) addSlot(id string) int32 {
	slot := int32(len(sh.ids))
	sh.ids = append(sh.ids, id)
	sh.size = append(sh.size, 0)
	for i := 0; i < sh.window; i++ {
		sh.reads = append(sh.reads, 0)
		sh.writes = append(sh.writes, 0)
	}
	sh.head = append(sh.head, 0)
	sh.fill = append(sh.fill, 0)
	sh.seq = append(sh.seq, 0)
	sh.seen = append(sh.seen, 0)
	sh.lastActive = append(sh.lastActive, 0)
	sh.index[id] = slot
	sh.files.Store(int64(len(sh.ids)))
	return slot
}

// ingestBatch applies this shard's entries of one tap batch in batch order.
// idxs selects the batch positions owned by this shard; nil means the whole
// batch (the single-shard fast path). seq detects duplicate IDs within the
// batch (last entry wins, the ring advances once). Drift samples — including
// inter-access gaps, measured in each file's own observed-day ordinals —
// flow through ds. Returns (ingested, rejected) counts; rejections are
// observations for files the bounded shard had no room to admit.
//
//minicost:hotpath
func (sh *bufShard) ingestBatch(files []agentserver.FileObservation, idxs []int32, seq uint64, ds *driftStats) (ingested, rejected int) {
	sh.mu.Lock()
	if idxs == nil {
		for i := range files {
			ok := sh.ingestEntry(&files[i], seq, ds)
			if ok {
				ingested++
			} else {
				rejected++
			}
		}
	} else {
		for _, bi := range idxs {
			ok := sh.ingestEntry(&files[bi], seq, ds)
			if ok {
				ingested++
			} else {
				rejected++
			}
		}
	}
	sh.mu.Unlock()
	return ingested, rejected
}

// ingestEntry routes one observation to its slot, admitting the file on
// first sight if the shard has room. Returns false when the observation was
// dropped (shard full). Caller holds sh.mu.
//
//minicost:hotpath
func (sh *bufShard) ingestEntry(f *agentserver.FileObservation, seq uint64, ds *driftStats) bool {
	slot, ok := sh.index[f.ID]
	if !ok {
		if len(sh.ids) >= sh.cap {
			return false
		}
		slot = sh.addSlot(f.ID)
	}
	if sh.seq[slot] == seq {
		// Duplicate ID within the batch: last wins, the ring advanced on the
		// first entry. Drift stats keep the first entry's sample — one
		// sample per file per batch either way.
		sh.overwriteToday(slot, f.SizeGB, f.Reads, f.Writes)
		return true
	}
	sh.seq[slot] = seq
	sh.seen[slot]++
	ds.observeReads(f.Reads)
	ds.observeWrites(f.Writes)
	ds.observeSize(f.SizeGB)
	if f.Reads > 0 || f.Writes > 0 {
		if last := sh.lastActive[slot]; last > 0 {
			ds.observeGap(float64(sh.seen[slot] - last))
		}
		sh.lastActive[slot] = sh.seen[slot]
	}
	sh.ingestOne(slot, f.SizeGB, f.Reads, f.Writes)
	return true
}

// ingestOne appends one day's measurement to a slot's ring buffers — the
// replay-buffer ingest kernel on the observe-tap hot path.
//
//minicost:hotpath
func (sh *bufShard) ingestOne(slot int32, sizeGB, reads, writes float64) {
	base := int(slot) * sh.window
	h := int(sh.head[slot])
	sh.reads[base+h] = reads
	sh.writes[base+h] = writes
	h++
	if h == sh.window {
		h = 0
	}
	sh.head[slot] = int32(h)
	if int(sh.fill[slot]) < sh.window {
		sh.fill[slot]++
	}
	sh.size[slot] = sizeGB
}

// overwriteToday replaces the slot's most recent ring entry — the last-wins
// path for duplicate IDs within one tap batch. Caller holds sh.mu.
//
//minicost:hotpath
func (sh *bufShard) overwriteToday(slot int32, sizeGB, reads, writes float64) {
	base := int(slot) * sh.window
	h := int(sh.head[slot]) - 1
	if h < 0 {
		h = sh.window - 1
	}
	sh.reads[base+h] = reads
	sh.writes[base+h] = writes
	sh.size[slot] = sizeGB
}

// windowLatestInto copies the slot's most recent `days` ring entries,
// oldest-first, into rs/ws (each of length days). Caller holds sh.mu and
// guarantees fill[slot] >= days.
func (sh *bufShard) windowLatestInto(slot int32, days int, rs, ws []float64) {
	base := int(slot) * sh.window
	// head points at the next write position; the newest entry is head-1,
	// the oldest of the latest `days` entries is head-days (mod window).
	start := int(sh.head[slot]) - days
	if start < 0 {
		start += sh.window
	}
	for i := 0; i < days; i++ {
		j := start + i
		if j >= sh.window {
			j -= sh.window
		}
		rs[i] = sh.reads[base+j]
		ws[i] = sh.writes[base+j]
	}
}

// eligibleFile is one buffered file selected for a training snapshot.
type eligibleFile struct {
	shard int
	slot  int32
	size  float64
	fill  int
	hold  bool
}

// snapshotTrace reconstructs training material from the buffered windows:
// every file with at least minDays observed days contributes its most recent
// `days` entries, where days is the minimum fill among eligible files (so
// all series align, as trace.Trace requires). Eligible files whose ID hash
// falls in the holdout residue class (hashID mod holdoutEvery == 0, a ~1/k
// slice) land in the held-out trace the validation gate scores candidates
// on; the rest form the training trace. Keying the split on file identity —
// not on position in the eligible ordering — keeps membership stable as new
// files are admitted, so the gate never scores a candidate on files a prior
// epoch trained on. Either return may be nil when no file qualifies for it.
func (b *buffer) snapshotTrace(minDays, holdoutEvery int) (train, holdout *trace.Trace) {
	if minDays < 1 {
		minDays = 1
	}
	var eligible []eligibleFile
	days := b.window
	for si, sh := range b.shards {
		sh.mu.Lock()
		for slot := range sh.ids {
			f := int(sh.fill[slot])
			if f < minDays {
				continue
			}
			if f < days {
				days = f
			}
			hold := holdoutEvery > 0 && hashID(sh.ids[slot])%uint64(holdoutEvery) == 0
			eligible = append(eligible, eligibleFile{shard: si, slot: int32(slot), size: sh.size[slot], fill: f, hold: hold})
		}
		sh.mu.Unlock()
	}
	if len(eligible) == 0 {
		return nil, nil
	}
	train = &trace.Trace{Days: days}
	holdout = &trace.Trace{Days: days}
	for g, ef := range eligible {
		dst := train
		if ef.hold {
			dst = holdout
		}
		rs := make([]float64, days)
		ws := make([]float64, days)
		sh := b.shards[ef.shard]
		sh.mu.Lock()
		// Fill can only have grown since the scan; the latest `days`
		// entries are still present in the ring.
		sh.windowLatestInto(ef.slot, days, rs, ws)
		size := sh.size[ef.slot]
		sh.mu.Unlock()
		dst.Files = append(dst.Files, trace.FileMeta{ID: g, SizeGB: size})
		dst.Reads = append(dst.Reads, rs)
		dst.Writes = append(dst.Writes, ws)
	}
	if len(train.Files) == 0 {
		train = nil
	}
	if len(holdout.Files) == 0 {
		holdout = nil
	}
	return train, holdout
}
