package online

import (
	"testing"

	"minicost/internal/agentserver"
)

// obsEntry builds one observation.
func obsEntry(id string, size, reads, writes float64) agentserver.FileObservation {
	return agentserver.FileObservation{ID: id, SizeGB: size, Reads: reads, Writes: writes}
}

// quietDrift returns a drift sink that never calibrates (scores stay 0).
func quietDrift() *driftStats { return newDriftStats(0) }

func TestBufferRingKeepsLatestWindow(t *testing.T) {
	b := newBuffer(3, 16, 1)
	sh := b.shards[0]
	ds := quietDrift()
	for day := 1; day <= 5; day++ {
		batch := []agentserver.FileObservation{obsEntry("f0", 1, float64(day), float64(day*10))}
		ing, rej := sh.ingestBatch(batch, nil, uint64(day), ds)
		if ing != 1 || rej != 0 {
			t.Fatalf("day %d: ingested %d rejected %d", day, ing, rej)
		}
	}
	if got := int(sh.fill[0]); got != 3 {
		t.Fatalf("fill = %d, want 3 (window cap)", got)
	}
	rs := make([]float64, 3)
	ws := make([]float64, 3)
	sh.mu.Lock()
	sh.windowLatestInto(0, 3, rs, ws)
	sh.mu.Unlock()
	for i, want := range []float64{3, 4, 5} {
		if rs[i] != want || ws[i] != want*10 {
			t.Fatalf("window[%d] = (%v, %v), want (%v, %v)", i, rs[i], ws[i], want, want*10)
		}
	}
}

func TestBufferAdmissionBounded(t *testing.T) {
	b := newBuffer(4, 3, 1)
	sh := b.shards[0]
	ds := quietDrift()
	batch := []agentserver.FileObservation{
		obsEntry("a", 1, 1, 1), obsEntry("b", 1, 1, 1), obsEntry("c", 1, 1, 1),
		obsEntry("d", 1, 1, 1), obsEntry("e", 1, 1, 1),
	}
	ing, rej := sh.ingestBatch(batch, nil, 1, ds)
	if ing != 3 || rej != 2 {
		t.Fatalf("ingested %d rejected %d, want 3/2", ing, rej)
	}
	if b.files() != 3 {
		t.Fatalf("files = %d, want 3", b.files())
	}
	// Already-admitted files keep updating; the stranger stays rejected.
	batch2 := []agentserver.FileObservation{obsEntry("a", 2, 5, 5), obsEntry("d", 1, 1, 1)}
	ing, rej = sh.ingestBatch(batch2, nil, 2, ds)
	if ing != 1 || rej != 1 {
		t.Fatalf("second batch ingested %d rejected %d, want 1/1", ing, rej)
	}
	if sh.size[sh.index["a"]] != 2 {
		t.Fatalf("admitted file did not update")
	}
}

func TestBufferDuplicateLastWins(t *testing.T) {
	b := newBuffer(4, 8, 1)
	sh := b.shards[0]
	ds := quietDrift()
	batch := []agentserver.FileObservation{
		obsEntry("x", 1, 10, 1),
		obsEntry("x", 2, 99, 7),
	}
	ing, rej := sh.ingestBatch(batch, nil, 1, ds)
	if ing != 2 || rej != 0 {
		t.Fatalf("ingested %d rejected %d", ing, rej)
	}
	slot := sh.index["x"]
	if got := int(sh.fill[slot]); got != 1 {
		t.Fatalf("duplicate advanced the ring: fill = %d, want 1", got)
	}
	rs := make([]float64, 1)
	ws := make([]float64, 1)
	sh.mu.Lock()
	sh.windowLatestInto(slot, 1, rs, ws)
	sh.mu.Unlock()
	if rs[0] != 99 || ws[0] != 7 || sh.size[slot] != 2 {
		t.Fatalf("last entry did not win: reads=%v writes=%v size=%v", rs[0], ws[0], sh.size[slot])
	}
}

func TestSnapshotTraceSplitAndAlignment(t *testing.T) {
	b := newBuffer(6, 64, 1)
	sh := b.shards[0]
	ds := quietDrift()
	// Ten files observed for 5 days, one latecomer observed for 2.
	for day := 1; day <= 5; day++ {
		var batch []agentserver.FileObservation
		for i := 0; i < 10; i++ {
			batch = append(batch, obsEntry(fid(i), float64(i+1), float64(day*10+i), 1))
		}
		if day >= 4 {
			batch = append(batch, obsEntry("late", 0.5, 1, 1))
		}
		sh.ingestBatch(batch, nil, uint64(day), ds)
	}

	// minDays 3 excludes the latecomer (fill 2) and aligns on 5 days.
	train, holdout := b.snapshotTrace(3, 4)
	if train == nil || holdout == nil {
		t.Fatal("expected both splits")
	}
	if train.Days != 5 || holdout.Days != 5 {
		t.Fatalf("days = %d/%d, want 5", train.Days, holdout.Days)
	}
	// The holdout is keyed on file identity: exactly the eligible files
	// whose ID hash lands in residue class 0 mod 4. Sizes are unique per
	// file (i+1), so membership is checkable through the trace metadata.
	wantHold := map[float64]bool{}
	nHold := 0
	for i := 0; i < 10; i++ {
		if hashID(fid(i))%4 == 0 {
			wantHold[float64(i+1)] = true
			nHold++
		}
	}
	if nHold == 0 || nHold == 10 {
		t.Fatalf("degenerate test split: %d/10 held out", nHold)
	}
	if holdout.NumFiles() != nHold || train.NumFiles() != 10-nHold {
		t.Fatalf("split = %d train / %d holdout, want %d/%d",
			train.NumFiles(), holdout.NumFiles(), 10-nHold, nHold)
	}
	for _, f := range holdout.Files {
		if !wantHold[f.SizeGB] {
			t.Fatalf("file of size %v held out, not in the identity-keyed class", f.SizeGB)
		}
	}
	for i := range train.Reads {
		if len(train.Reads[i]) != 5 || len(train.Writes[i]) != 5 {
			t.Fatalf("train series %d misaligned", i)
		}
	}

	// minDays 2 admits the latecomer and truncates everyone to 2 days.
	train2, _ := b.snapshotTrace(2, -1)
	if train2 == nil || train2.Days != 2 || train2.NumFiles() != 11 {
		t.Fatalf("minDays 2: got %v days, %d files; want 2 days, 11 files",
			train2.Days, train2.NumFiles())
	}
	// The truncated series carry the most recent days (4 and 5).
	for i := range train2.Reads {
		if train2.Files[i].SizeGB == 0.5 {
			continue // the latecomer's own pattern
		}
		if train2.Reads[i][0] < 40 {
			t.Fatalf("series %d does not start at the latest window: %v", i, train2.Reads[i])
		}
	}

	// No holdout requested.
	_, none := b.snapshotTrace(3, -1)
	if none != nil {
		t.Fatal("holdoutEvery < 0 must disable the holdout")
	}

	// Empty buffer → nil.
	empty := newBuffer(4, 4, 2)
	if tr, ho := empty.snapshotTrace(1, 5); tr != nil || ho != nil {
		t.Fatal("empty buffer must snapshot to nil")
	}

	// Admitting more files must not migrate existing files between splits:
	// the class is a function of identity, not of position in the eligible
	// ordering (a positional split would leak previously-trained files into
	// the gate's holdout).
	for day := 6; day <= 8; day++ {
		var batch []agentserver.FileObservation
		for i := 0; i < 14; i++ {
			batch = append(batch, obsEntry(fid(i), float64(i+1), 1, 1))
		}
		sh.ingestBatch(batch, nil, uint64(day), ds)
	}
	_, holdout2 := b.snapshotTrace(3, 4)
	if holdout2 == nil {
		t.Fatal("expected a holdout after growth")
	}
	for _, f := range holdout2.Files {
		if f.SizeGB <= 10 && !wantHold[f.SizeGB] {
			t.Fatalf("holdout membership shifted after growth: size %v", f.SizeGB)
		}
	}
}

func fid(i int) string {
	return string([]byte{'f', byte('0' + i/10), byte('0' + i%10)})
}

// TestGapDimensionCountsPerFileObservedDays pins the drift gap unit: gaps
// are measured in a file's own observed-day ordinals, not in global tap
// batches, so splitting one workload day across many observe batches (the
// loadgen deployment shape) does not inflate them away from the trace-day
// baseline, and out-of-order batch arrival cannot produce negative gaps.
func TestGapDimensionCountsPerFileObservedDays(t *testing.T) {
	b := newBuffer(8, 16, 1)
	sh := b.shards[0]
	ds := newDriftStats(0) // not calibrating: samples land in the current window
	// "f" is observed once per workload day, but each day arrives as three
	// observe batches ("f" rides in the first; the siblings advance the
	// global batch counter without touching it). Active on days 1 and 3,
	// idle on day 2.
	seq := uint64(0)
	observeDay := func(reads float64) {
		seq++
		sh.ingestBatch([]agentserver.FileObservation{obsEntry("f", 1, reads, 0)}, nil, seq, ds)
		seq += 2 // two sibling batches of the same workload day
	}
	observeDay(5) // day 1: active
	observeDay(0) // day 2: idle
	observeDay(7) // day 3: active → gap = 2 observed days, not 6 tap batches
	g := ds.cur[dimGap]
	if g.total != 1 {
		t.Fatalf("gap samples = %v, want 1", g.total)
	}
	// A gap of 2 lands in bucket 1 (edges 1.5 ≤ v < 2.5); a batch-counted
	// gap of 6 would land in bucket 3.
	if g.counts[1] != 1 {
		t.Fatalf("gap histogram %v, want the single sample in bucket 1 (gap=2 days)", g.counts)
	}
}
