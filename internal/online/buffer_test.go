package online

import (
	"testing"

	"minicost/internal/agentserver"
)

// obsEntry builds one observation.
func obsEntry(id string, size, reads, writes float64) agentserver.FileObservation {
	return agentserver.FileObservation{ID: id, SizeGB: size, Reads: reads, Writes: writes}
}

// quietDrift returns a drift sink that never calibrates (scores stay 0).
func quietDrift() *driftStats { return newDriftStats(0) }

func TestBufferRingKeepsLatestWindow(t *testing.T) {
	b := newBuffer(3, 16, 1)
	sh := b.shards[0]
	ds := quietDrift()
	for day := 1; day <= 5; day++ {
		batch := []agentserver.FileObservation{obsEntry("f0", 1, float64(day), float64(day*10))}
		ing, rej := sh.ingestBatch(batch, nil, uint64(day), int64(day), ds)
		if ing != 1 || rej != 0 {
			t.Fatalf("day %d: ingested %d rejected %d", day, ing, rej)
		}
	}
	if got := int(sh.fill[0]); got != 3 {
		t.Fatalf("fill = %d, want 3 (window cap)", got)
	}
	rs := make([]float64, 3)
	ws := make([]float64, 3)
	sh.mu.Lock()
	sh.windowLatestInto(0, 3, rs, ws)
	sh.mu.Unlock()
	for i, want := range []float64{3, 4, 5} {
		if rs[i] != want || ws[i] != want*10 {
			t.Fatalf("window[%d] = (%v, %v), want (%v, %v)", i, rs[i], ws[i], want, want*10)
		}
	}
}

func TestBufferAdmissionBounded(t *testing.T) {
	b := newBuffer(4, 3, 1)
	sh := b.shards[0]
	ds := quietDrift()
	batch := []agentserver.FileObservation{
		obsEntry("a", 1, 1, 1), obsEntry("b", 1, 1, 1), obsEntry("c", 1, 1, 1),
		obsEntry("d", 1, 1, 1), obsEntry("e", 1, 1, 1),
	}
	ing, rej := sh.ingestBatch(batch, nil, 1, 1, ds)
	if ing != 3 || rej != 2 {
		t.Fatalf("ingested %d rejected %d, want 3/2", ing, rej)
	}
	if b.files() != 3 {
		t.Fatalf("files = %d, want 3", b.files())
	}
	// Already-admitted files keep updating; the stranger stays rejected.
	batch2 := []agentserver.FileObservation{obsEntry("a", 2, 5, 5), obsEntry("d", 1, 1, 1)}
	ing, rej = sh.ingestBatch(batch2, nil, 2, 2, ds)
	if ing != 1 || rej != 1 {
		t.Fatalf("second batch ingested %d rejected %d, want 1/1", ing, rej)
	}
	if sh.size[sh.index["a"]] != 2 {
		t.Fatalf("admitted file did not update")
	}
}

func TestBufferDuplicateLastWins(t *testing.T) {
	b := newBuffer(4, 8, 1)
	sh := b.shards[0]
	ds := quietDrift()
	batch := []agentserver.FileObservation{
		obsEntry("x", 1, 10, 1),
		obsEntry("x", 2, 99, 7),
	}
	ing, rej := sh.ingestBatch(batch, nil, 1, 1, ds)
	if ing != 2 || rej != 0 {
		t.Fatalf("ingested %d rejected %d", ing, rej)
	}
	slot := sh.index["x"]
	if got := int(sh.fill[slot]); got != 1 {
		t.Fatalf("duplicate advanced the ring: fill = %d, want 1", got)
	}
	rs := make([]float64, 1)
	ws := make([]float64, 1)
	sh.mu.Lock()
	sh.windowLatestInto(slot, 1, rs, ws)
	sh.mu.Unlock()
	if rs[0] != 99 || ws[0] != 7 || sh.size[slot] != 2 {
		t.Fatalf("last entry did not win: reads=%v writes=%v size=%v", rs[0], ws[0], sh.size[slot])
	}
}

func TestSnapshotTraceSplitAndAlignment(t *testing.T) {
	b := newBuffer(6, 64, 1)
	sh := b.shards[0]
	ds := quietDrift()
	// Ten files observed for 5 days, one latecomer observed for 2.
	for day := 1; day <= 5; day++ {
		var batch []agentserver.FileObservation
		for i := 0; i < 10; i++ {
			batch = append(batch, obsEntry(fid(i), float64(i+1), float64(day*10+i), 1))
		}
		if day >= 4 {
			batch = append(batch, obsEntry("late", 0.5, 1, 1))
		}
		sh.ingestBatch(batch, nil, uint64(day), int64(day), ds)
	}

	// minDays 3 excludes the latecomer (fill 2) and aligns on 5 days.
	train, holdout := b.snapshotTrace(3, 4)
	if train == nil || holdout == nil {
		t.Fatal("expected both splits")
	}
	if train.Days != 5 || holdout.Days != 5 {
		t.Fatalf("days = %d/%d, want 5", train.Days, holdout.Days)
	}
	// Every 4th of 10 eligible files is held out: indices 0, 4, 8.
	if holdout.NumFiles() != 3 || train.NumFiles() != 7 {
		t.Fatalf("split = %d train / %d holdout, want 7/3", train.NumFiles(), holdout.NumFiles())
	}
	for i := range train.Reads {
		if len(train.Reads[i]) != 5 || len(train.Writes[i]) != 5 {
			t.Fatalf("train series %d misaligned", i)
		}
	}

	// minDays 2 admits the latecomer and truncates everyone to 2 days.
	train2, _ := b.snapshotTrace(2, -1)
	if train2 == nil || train2.Days != 2 || train2.NumFiles() != 11 {
		t.Fatalf("minDays 2: got %v days, %d files; want 2 days, 11 files",
			train2.Days, train2.NumFiles())
	}
	// The truncated series carry the most recent days (4 and 5).
	for i := range train2.Reads {
		if train2.Files[i].SizeGB == 0.5 {
			continue // the latecomer's own pattern
		}
		if train2.Reads[i][0] < 40 {
			t.Fatalf("series %d does not start at the latest window: %v", i, train2.Reads[i])
		}
	}

	// No holdout requested.
	_, none := b.snapshotTrace(3, -1)
	if none != nil {
		t.Fatal("holdoutEvery < 0 must disable the holdout")
	}

	// Empty buffer → nil.
	empty := newBuffer(4, 4, 2)
	if tr, ho := empty.snapshotTrace(1, 5); tr != nil || ho != nil {
		t.Fatal("empty buffer must snapshot to nil")
	}
}

func fid(i int) string {
	return string([]byte{'f', byte('0' + i/10), byte('0' + i%10)})
}
