package online

import "math"

// Drift detection compares the live observation stream against the
// distribution the serving policy was trained on, per ISSUE 10: a policy
// trained offline keeps minimizing cost only while the workload still looks
// like its training trace. Four streaming dimensions are tracked — daily
// read rate, daily write rate, file size, and inter-access gap (a file's
// observed days between its active days, the same unit the trace baseline
// samples) — each as a fixed-edge histogram, and each
// scored with the population stability index
//
//	PSI = Σ_buckets (curP − baseP) · ln(curP / baseP)
//
// which is the symmetrized KL divergence between the baseline and current
// bucket distributions. The conventional reading: < 0.1 stable, 0.1–0.25
// moderate shift, > 0.25 drifted. The exported drift score is the maximum
// over the four dimensions, so a shift in any one statistic can trip the
// retraining trigger.
//
// Bucket edges are fixed (log-scale, spanning the workload ranges the paper
// and loadgen produce) rather than adaptive, so scoring is O(buckets) with
// no allocation and the score is a deterministic function of the observed
// values alone.

// psiEps floors bucket proportions so empty buckets contribute a large but
// finite penalty instead of ±Inf.
const psiEps = 1e-4

// minDriftSamples is the per-dimension sample count below which the PSI is
// reported as zero — a handful of observations says nothing about drift.
const minDriftSamples = 64

var (
	// readEdges/writeEdges bucket daily operation counts per file.
	readEdges  = [...]float64{0.5, 5, 50, 500, 5e3, 5e4, 5e5}
	writeEdges = [...]float64{0.5, 5, 50, 500, 5e3, 5e4, 5e5}
	// sizeEdges bucket file sizes in GB (loadgen emits 0.01–50 GB).
	sizeEdges = [...]float64{0.02, 0.1, 0.5, 2, 10, 50, 250}
	// gapEdges bucket inter-access gaps in per-file observed days (live
	// traffic) / trace days (baseline) — the units match by construction.
	gapEdges = [...]float64{1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5}
)

// driftHist is one dimension's streaming histogram: len(edges)+1 buckets,
// bucket i holding values v with edges[i-1] <= v < edges[i].
type driftHist struct {
	edges  []float64
	counts []float64
	total  float64
}

func newDriftHist(edges []float64) driftHist {
	return driftHist{edges: edges, counts: make([]float64, len(edges)+1)}
}

// observe adds one sample. Linear scan: the edge arrays are seven entries,
// shorter than a branchy binary search for values that concentrate in the
// low buckets.
//
//minicost:hotpath
func (h *driftHist) observe(v float64) {
	i := 0
	for i < len(h.edges) && v >= h.edges[i] {
		i++
	}
	h.counts[i]++
	h.total++
}

func (h *driftHist) reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// addInto folds this histogram's counts into dst (same edge set).
func (h *driftHist) addInto(dst *driftHist) {
	for i, c := range h.counts {
		dst.counts[i] += c
	}
	dst.total += h.total
}

// psiVs scores this histogram (current window) against base. Returns 0
// until both sides carry minDriftSamples.
//
//minicost:hotpath
func (h *driftHist) psiVs(base *driftHist) float64 {
	if h.total < minDriftSamples || base.total < minDriftSamples {
		return 0
	}
	score := 0.0
	for i := range h.counts {
		cur := h.counts[i] / h.total
		ref := base.counts[i] / base.total
		if cur < psiEps {
			cur = psiEps
		}
		if ref < psiEps {
			ref = psiEps
		}
		score += (cur - ref) * math.Log(cur/ref)
	}
	return score
}

// driftDims indexes the tracked dimensions.
const (
	dimReads = iota
	dimWrites
	dimSize
	dimGap
	numDriftDims
)

var driftDimNames = [numDriftDims]string{"reads", "writes", "size_gb", "gap_days"}

// driftStats holds the four-dimensional baseline and current-window
// histograms. Not internally locked: the learner mutates it only under its
// tap mutex.
type driftStats struct {
	base [numDriftDims]driftHist
	cur  [numDriftDims]driftHist

	// calibrating self-builds the baseline from the first calibBatches tap
	// batches when no training trace was supplied.
	calibrating  bool
	calibBatches int
	seenBatches  int
}

// newDriftStats builds an empty detector. calibBatches > 0 self-calibrates
// the baseline from that many initial tap batches; with a training trace
// available, call setBaselineFromSeries instead and pass 0.
func newDriftStats(calibBatches int) *driftStats {
	ds := &driftStats{calibrating: calibBatches > 0, calibBatches: calibBatches}
	edges := [numDriftDims][]float64{readEdges[:], writeEdges[:], sizeEdges[:], gapEdges[:]}
	for d := 0; d < numDriftDims; d++ {
		ds.base[d] = newDriftHist(edges[d])
		ds.cur[d] = newDriftHist(edges[d])
	}
	return ds
}

// target returns the histogram set samples are flowing into: the baseline
// while self-calibrating, the current window afterwards.
//
//minicost:hotpath
func (ds *driftStats) target() *[numDriftDims]driftHist {
	if ds.calibrating {
		return &ds.base
	}
	return &ds.cur
}

//minicost:hotpath
func (ds *driftStats) observeReads(v float64) { ds.target()[dimReads].observe(v) }

//minicost:hotpath
func (ds *driftStats) observeWrites(v float64) { ds.target()[dimWrites].observe(v) }

//minicost:hotpath
func (ds *driftStats) observeSize(v float64) { ds.target()[dimSize].observe(v) }

//minicost:hotpath
func (ds *driftStats) observeGap(v float64) { ds.target()[dimGap].observe(v) }

// endBatch advances the self-calibration window; the learner calls it once
// per tap batch.
func (ds *driftStats) endBatch() {
	if !ds.calibrating {
		return
	}
	ds.seenBatches++
	if ds.seenBatches >= ds.calibBatches {
		ds.calibrating = false
	}
}

// score returns the current drift score: max PSI over the dimensions.
//
//minicost:hotpath
func (ds *driftStats) score() float64 {
	if ds.calibrating {
		return 0
	}
	max := 0.0
	for d := 0; d < numDriftDims; d++ {
		if s := ds.cur[d].psiVs(&ds.base[d]); s > max {
			max = s
		}
	}
	return max
}

// dimScores reports the per-dimension PSIs (for /v1/learner).
func (ds *driftStats) dimScores() [numDriftDims]float64 {
	var out [numDriftDims]float64
	if ds.calibrating {
		return out
	}
	for d := 0; d < numDriftDims; d++ {
		out[d] = ds.cur[d].psiVs(&ds.base[d])
	}
	return out
}

// rebaseline folds the current window into the baseline and clears it —
// called after an accepted fine-tune epoch, when the just-trained data
// becomes the new reference distribution.
func (ds *driftStats) rebaseline() {
	for d := 0; d < numDriftDims; d++ {
		ds.cur[d].addInto(&ds.base[d])
		ds.cur[d].reset()
	}
}

// setBaselineFromSeries seeds the baseline from training-trace series: one
// reads/writes/size sample per file-day (matching the tap's weighting) and
// a gap sample per pair of consecutive active days. Disables
// self-calibration.
func (ds *driftStats) setBaselineFromSeries(sizeGB []float64, reads, writes [][]float64) {
	for i := range reads {
		lastActive := -1
		for d := range reads[i] {
			ds.base[dimReads].observe(reads[i][d])
			ds.base[dimWrites].observe(writes[i][d])
			ds.base[dimSize].observe(sizeGB[i])
			if reads[i][d] > 0 || writes[i][d] > 0 {
				if lastActive >= 0 {
					ds.base[dimGap].observe(float64(d - lastActive))
				}
				lastActive = d
			}
		}
	}
	ds.calibrating = false
	ds.calibBatches = 0
}
