package online

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/obs"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
)

// withMetrics enables the default registry for one test and restores the
// default-off state afterwards (assertions use snapshot deltas: the registry
// is process-global).
func withMetrics(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.Default()
	was := reg.Enabled()
	reg.SetEnabled(true)
	t.Cleanup(func() { reg.SetEnabled(was) })
	return reg
}

// newTestStack builds a serving server + learner pair over a tiny trainer,
// wired the way minicostd wires them (tap installed, weights aligned).
func newTestStack(t *testing.T, seed uint64, mut func(*Config)) (*agentserver.Server, *Learner, *rl.A3C) {
	t.Helper()
	tr := testTrainer(t, seed)
	srv, err := agentserver.NewWithConfig(tr.Snapshot(), pricing.Hot, agentserver.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trainer:       tr,
		Serving:       srv,
		Model:         costmodel.New(pricing.Azure()),
		Reward:        mdp.DefaultReward(),
		Initial:       pricing.Hot,
		BufferWindow:  12,
		BufferFiles:   512,
		BufferShards:  2,
		FinetuneSteps: 96,
		MinTrainDays:  2,
		HoldoutEvery:  4,
	}
	if mut != nil {
		mut(&cfg)
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTap(l)
	return srv, l, tr
}

// TestLearnerCadenceEpochSwapsPolicy drives the tap directly: the Nth batch
// schedules a cadence epoch, RunEpoch fine-tunes on the buffered window, and
// (gate off) the candidate swaps into serving with the weights moved.
func TestLearnerCadenceEpochSwapsPolicy(t *testing.T) {
	_, l, tr := newTestStack(t, 11, func(c *Config) {
		c.FinetuneEvery = 3
		c.SwapGate = false
	})
	before, _ := tr.ParamVectors()
	for day := 1; day <= 3; day++ {
		l.TapObserve(int64(day), synthBatch(24, day, 7, false))
	}
	l.tapMu.Lock()
	pending := l.pendingReason
	l.tapMu.Unlock()
	if pending != reasonCadence {
		t.Fatalf("pending reason %q after 3 batches, want %q", pending, reasonCadence)
	}
	if err := l.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	st := l.Status()
	if st.Epochs != 1 || st.LastEpochReason != reasonCadence || st.Swaps != 1 {
		t.Fatalf("status after cadence epoch: %+v", st)
	}
	if st.LastEpochSteps < 96 {
		t.Fatalf("epoch trained %d steps, want >= 96", st.LastEpochSteps)
	}
	if st.BufferFiles != 24 || st.Batches != 3 {
		t.Fatalf("buffer accounting: %+v", st)
	}
	after, _ := tr.ParamVectors()
	moved := false
	for i := range after {
		if math.Float64bits(after[i]) != math.Float64bits(before[i]) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fine-tune epoch left the actor unchanged")
	}
}

// TestLearnerEpochWithoutDataReports: an epoch forced before the buffer has
// MinTrainDays of history fails with ErrNotEnoughData and surfaces it in
// Status without killing anything.
func TestLearnerEpochWithoutDataReports(t *testing.T) {
	_, l, _ := newTestStack(t, 13, nil)
	if err := l.RunEpoch(); err != ErrNotEnoughData {
		t.Fatalf("epoch on empty buffer: %v, want ErrNotEnoughData", err)
	}
	if st := l.Status(); st.LastError == "" || st.Epochs != 0 {
		t.Fatalf("status %+v", st)
	}
}

// TestLearnerEndToEndDriftSwap is the issue's acceptance loop over real HTTP:
// synthetic traffic flows through /v1/observe into the tap, the workload
// shifts to the drifted regime, the PSI score crosses the threshold, the
// background loop fine-tunes, the gate passes, and the candidate hot-swaps
// into serving — all while concurrent /v1/plan traffic completes with zero
// errors — then the swap persists a checkpoint and /v1/learner reports it.
func TestLearnerEndToEndDriftSwap(t *testing.T) {
	ckptDir := t.TempDir()
	srv, l, _ := newTestStack(t, 19, func(c *Config) {
		c.DriftThreshold = 0.25
		c.SwapGate = true
		c.SwapMargin = 5 // generous: the e2e pins the loop, not the gate's strictness
		c.CheckpointDir = ckptDir
		c.CheckpointKeep = 3
	})
	l.SetBaselineFromTrace(testTrace(t, 16, 8, 3, false))
	l.Start()
	defer l.Stop()

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.Handle("/v1/learner", l.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client := agentserver.NewClient(ts.URL)

	const files = 32
	observe := func(day int, drifted bool) {
		t.Helper()
		if _, err := client.Observe(&agentserver.ObserveRequest{Files: synthBatch(files, day, 7, drifted)}); err != nil {
			t.Fatal(err)
		}
	}
	observe(1, false) // plans 409 until the first observation lands

	// Plan hammer: serving must answer throughout observes, fine-tunes, and
	// hot swaps without a single failed request.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var planErrs atomic.Int64
	var plans atomic.Int64
	var firstErr atomic.Value
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := client.Plan(); err != nil {
					firstErr.CompareAndSwap(nil, err.Error())
					planErrs.Add(1)
					return
				}
				plans.Add(1)
			}
		}()
	}

	for day := 2; day <= 6; day++ {
		observe(day, false)
	}
	// Shift the workload and keep observing until the loop has swapped.
	swapped := false
	for day := 7; day <= 60 && !swapped; day++ {
		observe(day, true)
		swapped = l.Status().Swaps >= 1
		time.Sleep(10 * time.Millisecond)
	}
	deadline := time.Now().Add(15 * time.Second)
	var st Status
	for {
		st = l.Status()
		if st.Swaps >= 1 && st.Checkpoints >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no swap after drift: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if planErrs.Load() != 0 {
		t.Fatalf("%d plan requests failed during the loop (first: %v)", planErrs.Load(), firstErr.Load())
	}
	if plans.Load() == 0 {
		t.Fatal("plan hammer never completed a request")
	}
	if st.LastEpochReason != reasonDrift {
		t.Fatalf("epoch reason %q, want %q", st.LastEpochReason, reasonDrift)
	}
	if st.Epochs < 1 || st.LastError != "" {
		t.Fatalf("status %+v", st)
	}
	latest, err := LatestCheckpoint(ckptDir)
	if err != nil || latest == "" {
		t.Fatalf("checkpoint after swap: (%q, %v)", latest, err)
	}

	// The learner endpoint serves the same status as JSON.
	resp, err := http.Get(ts.URL + "/v1/learner")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/learner: %s", resp.Status)
	}
	var remote Status
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		t.Fatal(err)
	}
	if remote.Epochs < 1 || remote.Swaps < 1 || len(remote.DriftDims) != numDriftDims {
		t.Fatalf("remote status %+v", remote)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrackedFiles != files {
		t.Fatalf("serving tracks %d files, want %d", stats.TrackedFiles, files)
	}
}

// craftAgent builds an agent with a hand-set parameter vector: all zeros
// decides tier 0 (Hot — argmax tie breaks low), and pushing the output bias
// of another tier (the vector's last NumTiers entries) makes that tier the
// unconditional decision.
func craftAgent(t *testing.T, tier pricing.Tier, bias float64) *rl.Agent {
	t.Helper()
	net := testNet()
	actor := net.BuildActor(rng.New(1))
	p := make([]float64, actor.NumParams())
	if bias != 0 {
		p[len(p)-pricing.NumTiers+int(tier)] = bias
	}
	actor.SetParamVector(p)
	return rl.NewAgent(net, actor)
}

// TestSwapGateRejectsPoisonedCandidate pins the validation gate: a candidate
// that regresses held-out cost is refused (counted in
// minicost_online_swaps_rejected_total), the incumbent keeps serving, and the
// trainer rolls back — all while concurrent plan traffic sees zero errors.
func TestSwapGateRejectsPoisonedCandidate(t *testing.T) {
	reg := withMetrics(t)
	model := costmodel.New(pricing.Azure())
	holdout := testTrace(t, 8, 10, 13, false) // hot workload: archiving it is ruinous

	hot := craftAgent(t, pricing.Hot, 0)
	poisoned := craftAgent(t, pricing.Archive, 5)
	hotBd, _, err := rl.EvaluateAgent(hot, model, holdout, testNet().HistLen, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	poisonBd, _, err := rl.EvaluateAgent(poisoned, model, holdout, testNet().HistLen, pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if poisonBd.Total() <= hotBd.Total()*1.01 {
		t.Fatalf("precondition: poisoned cost %v not above incumbent %v", poisonBd.Total(), hotBd.Total())
	}

	// Align the trainer's actor with the incumbent so New snapshots it.
	tr := testTrainer(t, 17)
	_, critic := tr.ParamVectors()
	if err := tr.SetParamVectors(hot.ParamVector(), critic); err != nil {
		t.Fatal(err)
	}
	srv, err := agentserver.NewWithConfig(tr.Snapshot(), pricing.Hot, agentserver.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Config{
		Trainer: tr, Serving: srv, Model: model,
		Reward: mdp.DefaultReward(), Initial: pricing.Hot,
		SwapGate: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := agentserver.NewClient(ts.URL)
	if _, err := client.Observe(&agentserver.ObserveRequest{Files: synthBatch(16, 0, 3, false)}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var planErrs atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := client.Plan(); err != nil {
					planErrs.Add(1)
					return
				}
			}
		}()
	}

	rbActor, rbCritic := tr.ParamVectors()
	before := reg.Snapshot()
	const offers = 5
	for i := 0; i < offers; i++ {
		swappedIn, err := l.offer(poisoned, holdout, rbActor, rbCritic)
		if err != nil {
			t.Fatal(err)
		}
		if swappedIn {
			t.Fatal("gate admitted a cost-regressing candidate")
		}
	}
	close(stop)
	wg.Wait()
	after := reg.Snapshot()

	if planErrs.Load() != 0 {
		t.Fatalf("%d plan requests failed while the gate was rejecting", planErrs.Load())
	}
	if d := after.Counter(MetricSwapsRejected) - before.Counter(MetricSwapsRejected); d != offers {
		t.Fatalf("%s delta = %v, want %d", MetricSwapsRejected, d, offers)
	}
	if d := after.Counter(MetricSwaps) - before.Counter(MetricSwaps); d != 0 {
		t.Fatalf("%s delta = %v, want 0", MetricSwaps, d)
	}
	st := l.Status()
	if st.SwapsRejected != offers || st.Swaps != 0 {
		t.Fatalf("status %+v", st)
	}
	if st.LastCandidateCost <= st.LastIncumbentCost {
		t.Fatalf("gate evidence not recorded: %+v", st)
	}
	if st.LastDisagreement == 0 {
		t.Fatal("always-Hot vs always-Archive must disagree")
	}
	gotA, gotC := tr.ParamVectors()
	bitwiseEq(t, "rolled-back actor", gotA, rbActor)
	bitwiseEq(t, "rolled-back critic", gotC, rbCritic)
}

// TestTapObserveNoAllocs is the issue's hot-path gate: once the population is
// admitted and the scratch warmed, tapping a batch performs zero allocations.
func TestTapObserveNoAllocs(t *testing.T) {
	_, l, _ := newTestStack(t, 23, func(c *Config) {
		c.BufferShards = 4 // exercise the multi-shard bucketing path
	})
	files := synthBatch(64, 0, 9, false)
	l.TapObserve(1, files)
	day := int64(1)
	avg := testing.AllocsPerRun(100, func() {
		day++
		l.TapObserve(day, files)
	})
	if avg != 0 {
		t.Fatalf("TapObserve allocates %v per batch in steady state, want 0", avg)
	}
}

// TestLearnerDeterministicGivenSeed runs two identical stacks through the
// same tap sequence and a fine-tune epoch each: trainer parameters and the
// drift score must come out bitwise identical (the determinism invariant the
// vet suite's analyzer enforces statically, checked dynamically here).
func TestLearnerDeterministicGivenSeed(t *testing.T) {
	run := func() ([]float64, []float64, float64) {
		_, l, tr := newTestStack(t, 42, func(c *Config) {
			c.FinetuneEvery = 4
			c.SwapGate = true
			c.SwapMargin = 5
		})
		l.SetBaselineFromTrace(testTrace(t, 16, 8, 3, false))
		for day := 1; day <= 4; day++ {
			l.TapObserve(int64(day), synthBatch(24, day, 7, false))
		}
		if err := l.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		for day := 5; day <= 8; day++ {
			l.TapObserve(int64(day), synthBatch(24, day, 7, true))
		}
		a, c := tr.ParamVectors()
		return a, c, l.Status().DriftScore
	}
	a1, c1, s1 := run()
	a2, c2, s2 := run()
	bitwiseEq(t, "actor", a2, a1)
	bitwiseEq(t, "critic", c2, c1)
	if math.Float64bits(s1) != math.Float64bits(s2) {
		t.Fatalf("drift score diverged: %v vs %v", s1, s2)
	}
}

// TestLearnerSeedsCheckpointSeqFromDir: New on a reused checkpoint directory
// resumes the sequence counter from the newest retained file, so the first
// post-restart checkpoint sorts after — not below — the prior run's.
func TestLearnerSeedsCheckpointSeqFromDir(t *testing.T) {
	dir := t.TempDir()
	tr := testTrainer(t, 31)
	for seq := int64(6); seq <= 7; seq++ {
		if _, err := writeCheckpoint(dir, seq, 5, tr); err != nil {
			t.Fatal(err)
		}
	}
	_, l, _ := newTestStack(t, 31, func(c *Config) {
		c.CheckpointDir = dir
	})
	l.stMu.Lock()
	seq := l.ckptSeq
	l.stMu.Unlock()
	if seq != 7 {
		t.Fatalf("ckptSeq seeded to %d, want 7 (max in dir)", seq)
	}
}

// TestStopWithoutStart: Stop on a learner whose loop never ran must return
// immediately (not deadlock on the loop's done channel), and both Start and
// Stop are idempotent.
func TestStopWithoutStart(t *testing.T) {
	_, l, _ := newTestStack(t, 29, nil)
	done := make(chan struct{})
	go func() {
		l.Stop()
		l.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start deadlocked")
	}
	l.Start()
	l.Start() // second call must not launch a second loop
	l.Stop()
	l.Stop() // and repeated Stop after shutdown stays safe
}
