package online

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"minicost/internal/agentserver"
	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// Epoch trigger reasons, reported in Status.LastEpochReason.
const (
	reasonDrift   = "drift"
	reasonCadence = "cadence"
	reasonManual  = "manual"
)

// ErrNotEnoughData reports that a fine-tune epoch was requested before the
// replay buffer held any file with MinTrainDays of history.
var ErrNotEnoughData = errors.New("online: not enough buffered data to fine-tune")

// Config wires a Learner into a running daemon. Trainer, Serving, and Model
// are required; zero values elsewhere select the documented defaults.
type Config struct {
	// Trainer is the A3C instance fine-tune epochs resume. Its published
	// weights must match the serving policy at construction (minicostd
	// installs the serving actor via SetParamVectors when they could
	// differ); the Learner snapshots them as the initial incumbent.
	Trainer *rl.A3C
	// Serving is the hot-swap target: accepted candidates go through its
	// UpdateAgent/ReplicaPool double-buffered snapshot machinery.
	Serving *agentserver.Server
	// Model prices the reconstructed training environments and the
	// validation-gate evaluations.
	Model *costmodel.Model
	// Reward parameterizes Eq. 4 for reconstructed episodes. The zero value
	// is NOT defaulted — pass mdp.DefaultReward() unless deliberately
	// reshaping the online reward.
	Reward mdp.RewardConfig
	// Initial is the tier reconstructed episodes start in (hot, per §4.2).
	Initial pricing.Tier

	// BufferWindow is the replay ring length in observe batches per file.
	// 0 selects max(2×histLen, 16).
	BufferWindow int
	// BufferFiles bounds the replay buffer population. 0 selects 65536.
	BufferFiles int
	// BufferShards is the buffer partition count (rounded up to a power of
	// two). 0 selects 8.
	BufferShards int

	// FinetuneEvery schedules a cadence epoch every N tap batches. The
	// cadence is count-based, not wall-clock, so a replayed observation
	// sequence schedules identically. 0 disables cadence epochs (drift can
	// still trigger).
	FinetuneEvery int
	// FinetuneSteps is the environment-step budget per epoch. 0 selects
	// 2048.
	FinetuneSteps int64
	// MinTrainDays is the observed-day minimum for a buffered file to enter
	// a training snapshot. 0 selects histLen (clamped to the window).
	MinTrainDays int
	// HoldoutEvery holds out the ~1/k of eligible files whose ID hash
	// falls in the holdout residue class — an identity-keyed split, stable
	// as the buffer population grows — for the validation gate. 0 selects
	// 5 (a ~20% slice); negative disables the holdout.
	HoldoutEvery int

	// DriftThreshold triggers an epoch when the PSI drift score reaches it.
	// 0 disables drift triggering (the score is still computed/exported).
	DriftThreshold float64
	// BaselineBatches self-calibrates the drift baseline from that many
	// initial tap batches when SetBaselineFromTrace was not called. 0
	// selects 4.
	BaselineBatches int

	// SwapGate requires a candidate to not regress simulated cost on the
	// held-out slice vs. the incumbent before swapping; rejected candidates
	// roll the trainer back. Without a holdout (HoldoutEvery < 0, or no
	// eligible holdout files yet) the gate has no evidence and admits.
	SwapGate bool
	// SwapMargin is the gate's relative slack: a candidate passes while
	// candidateCost <= incumbentCost × (1+SwapMargin). 0 means equal cost
	// still passes.
	SwapMargin float64

	// CheckpointDir, when set, persists the trainer after every accepted
	// swap (atomic rename; see checkpoint.go).
	CheckpointDir string
	// CheckpointKeep bounds retained checkpoints. 0 selects 5; negative
	// keeps everything.
	CheckpointKeep int
}

// Status is the learner's externally visible state (/v1/learner, /healthz).
type Status struct {
	Batches      int64 `json:"batches"`
	BufferFiles  int   `json:"buffer_files"`
	BufferWindow int   `json:"buffer_window"`

	DriftScore  float64            `json:"drift_score"`
	DriftDims   map[string]float64 `json:"drift_dims"`
	Calibrating bool               `json:"calibrating"`

	Epochs            int64   `json:"epochs"`
	LastEpochReason   string  `json:"last_epoch_reason,omitempty"`
	LastEpochSteps    int64   `json:"last_epoch_steps"`
	LastEpochSeconds  float64 `json:"last_epoch_seconds"`
	LastTrainFiles    int     `json:"last_train_files"`
	LastHoldoutFiles  int     `json:"last_holdout_files"`
	LastCandidateCost float64 `json:"last_candidate_cost"`
	LastIncumbentCost float64 `json:"last_incumbent_cost"`
	LastDisagreement  float64 `json:"last_disagreement"`

	Swaps          int64  `json:"swaps"`
	SwapsRejected  int64  `json:"swaps_rejected"`
	Checkpoints    int64  `json:"checkpoints"`
	LastCheckpoint string `json:"last_checkpoint,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// Learner is the continuous-learning control loop. The serve path feeds it
// through TapObserve (agentserver.ObserveTap); a background goroutine
// (Start) runs fine-tune epochs when the tap schedules them; epochs
// snapshot the buffer, resume the trainer, validate the candidate against
// the incumbent on the held-out slice, and either hot-swap serving or roll
// the trainer back.
type Learner struct {
	cfg     Config
	histLen int
	buf     *buffer

	kick     chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
	started  atomic.Bool
	stopOnce sync.Once

	// tapMu guards everything the observe tap touches: the bucketing
	// scratch, the drift detector, batch counters, and epoch-trigger
	// bookkeeping. Buffer shard locks nest inside it.
	tapMu          sync.Mutex
	drift          *driftStats
	seq            uint64
	batches        int64
	lastEpochBatch int64
	pendingReason  string
	lastScore      float64
	home, order    []int32 // per-entry bucketing scratch, grown on demand
	offsets, pos   []int32 // per-shard counting-sort scratch, fixed size

	// epochMu serializes fine-tune epochs (the loop goroutine and any
	// direct RunEpoch callers).
	epochMu sync.Mutex

	// stMu guards the status block and the incumbent policy.
	stMu      sync.Mutex
	incumbent *rl.Agent
	ckptSeq   int64
	st        Status
}

// New validates cfg, applies defaults, and builds a Learner whose incumbent
// is the trainer's current snapshot. Call Start to run the background loop,
// and pass the Learner as agentserver.Config.Tap (or call TapObserve
// directly) to feed it.
func New(cfg Config) (*Learner, error) {
	if cfg.Trainer == nil {
		return nil, errors.New("online: nil trainer")
	}
	if cfg.Serving == nil {
		return nil, errors.New("online: nil serving server")
	}
	if cfg.Model == nil {
		return nil, errors.New("online: nil cost model")
	}
	if !cfg.Initial.Valid() {
		return nil, errors.New("online: invalid initial tier")
	}
	histLen := cfg.Trainer.Config().Net.HistLen
	if got := cfg.Serving.Stats().HistLen; got != histLen {
		return nil, fmt.Errorf("online: trainer hist window %d, serving tracks %d", histLen, got)
	}
	if cfg.BufferWindow == 0 {
		cfg.BufferWindow = 2 * histLen
		if cfg.BufferWindow < 16 {
			cfg.BufferWindow = 16
		}
	}
	if cfg.BufferWindow < 1 {
		return nil, fmt.Errorf("online: buffer window %d", cfg.BufferWindow)
	}
	if cfg.BufferFiles == 0 {
		cfg.BufferFiles = 65536
	}
	if cfg.BufferFiles < 1 {
		return nil, fmt.Errorf("online: buffer capacity %d", cfg.BufferFiles)
	}
	if cfg.BufferShards == 0 {
		cfg.BufferShards = 8
	}
	if cfg.FinetuneEvery < 0 || cfg.DriftThreshold < 0 {
		return nil, errors.New("online: negative cadence or drift threshold")
	}
	if cfg.FinetuneSteps == 0 {
		cfg.FinetuneSteps = 2048
	}
	if cfg.FinetuneSteps < 0 {
		return nil, fmt.Errorf("online: fine-tune steps %d", cfg.FinetuneSteps)
	}
	if cfg.MinTrainDays == 0 {
		cfg.MinTrainDays = histLen
	}
	if cfg.MinTrainDays > cfg.BufferWindow {
		cfg.MinTrainDays = cfg.BufferWindow
	}
	if cfg.HoldoutEvery == 0 {
		cfg.HoldoutEvery = 5
	}
	if cfg.BaselineBatches == 0 {
		cfg.BaselineBatches = 4
	}
	if cfg.CheckpointKeep == 0 {
		cfg.CheckpointKeep = 5
	}
	// Resume checkpoint numbering after any prior run sharing the directory:
	// starting from 0 would name new checkpoints below the retained ones, so
	// name-ordered pruning would delete them immediately and LatestCheckpoint
	// would keep returning a stale prior-run file.
	ckptSeq := int64(0)
	if cfg.CheckpointDir != "" {
		var err error
		if ckptSeq, err = maxCheckpointSeq(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	buf := newBuffer(cfg.BufferWindow, cfg.BufferFiles, cfg.BufferShards)
	p := len(buf.shards)
	l := &Learner{
		cfg:       cfg,
		histLen:   histLen,
		buf:       buf,
		kick:      make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		drift:     newDriftStats(cfg.BaselineBatches),
		offsets:   make([]int32, p+1),
		pos:       make([]int32, p),
		incumbent: cfg.Trainer.Snapshot(),
		ckptSeq:   ckptSeq,
	}
	return l, nil
}

// SetBaselineFromTrace seeds the drift baseline from the training trace the
// serving policy was trained on, replacing self-calibration — the intended
// wiring when the historical trace is at hand (minicostd's bootstrap path).
func (l *Learner) SetBaselineFromTrace(tr *trace.Trace) {
	sizes := make([]float64, len(tr.Files))
	for i := range tr.Files {
		sizes[i] = tr.Files[i].SizeGB
	}
	l.tapMu.Lock()
	l.drift.setBaselineFromSeries(sizes, tr.Reads, tr.Writes)
	l.tapMu.Unlock()
}

// Start launches the background epoch loop. Pair with Stop. Idempotent:
// repeated calls launch one loop.
func (l *Learner) Start() {
	if l.started.CompareAndSwap(false, true) {
		go l.runLoop()
	}
}

// Stop terminates the background loop, waiting for an in-flight epoch to
// finish. A no-op when Start never ran, and safe to call repeatedly. The
// tap keeps buffering after Stop; only epoch execution halts.
func (l *Learner) Stop() {
	if !l.started.Load() {
		return
	}
	l.stopOnce.Do(func() { close(l.stopCh) })
	<-l.doneCh
}

func (l *Learner) runLoop() {
	defer close(l.doneCh)
	for {
		select {
		case <-l.stopCh:
			return
		case <-l.kick:
			// Epoch errors land in Status.LastError; the loop keeps serving
			// future triggers regardless.
			_ = l.RunEpoch()
		}
	}
}

// TapObserve ingests one validated observe batch into the replay buffer and
// updates the drift detector — the agentserver.ObserveTap hook, called
// inline on the serve path. Steady state performs no allocation: bucketing
// scratch is persistent (grown on population increases only), shard ingest
// writes flat arrays, and drift scoring is O(buckets). Epochs are only
// scheduled here (non-blocking channel kick); training never runs on the
// serve path.
//
// The server's day counter is ignored: inter-access gaps are measured in
// each file's own observed-day ordinal, which keeps the gap dimension in
// the trace-day units the baseline is seeded in (however many observe
// batches a workload day is split into) and immune to out-of-order day
// delivery under concurrent requests. Note that tapMu serializes concurrent
// observe requests through this method — see the ObserveTap contract.
//
//minicost:hotpath
func (l *Learner) TapObserve(day int64, files []agentserver.FileObservation) {
	n := len(files)
	if n == 0 {
		return
	}
	l.tapMu.Lock()
	l.seq++
	seq := l.seq
	ingested, rejected := 0, 0
	p := len(l.buf.shards)
	if p == 1 {
		ingested, rejected = l.buf.shards[0].ingestBatch(files, nil, seq, l.drift)
	} else {
		if cap(l.home) < n {
			l.home = make([]int32, n)
			l.order = make([]int32, n)
		}
		home := l.home[:n]
		order := l.order[:n]
		counts := l.offsets
		for i := 0; i <= p; i++ {
			counts[i] = 0
		}
		for i := range files {
			si := int32(shardOf(files[i].ID, l.buf.mask))
			home[i] = si
			counts[si+1]++
		}
		for i := 1; i <= p; i++ {
			counts[i] += counts[i-1]
		}
		for i := 0; i < p; i++ {
			l.pos[i] = counts[i]
		}
		for i := range home {
			order[l.pos[home[i]]] = int32(i)
			l.pos[home[i]]++
		}
		// Shards are applied serially in index order: ingest is flat array
		// writes, and a fixed order keeps the drift accumulation — and so
		// the drift score — a pure function of the batch sequence.
		for si := 0; si < p; si++ {
			ing, rej := l.buf.shards[si].ingestBatch(files, order[counts[si]:counts[si+1]], seq, l.drift)
			ingested += ing
			rejected += rej
		}
	}
	l.drift.endBatch()
	l.batches++
	batches := l.batches
	score := l.drift.score()
	l.lastScore = score
	fire := ""
	if l.pendingReason == "" {
		if l.cfg.DriftThreshold > 0 && score >= l.cfg.DriftThreshold && batches > l.lastEpochBatch {
			fire = reasonDrift
		} else if l.cfg.FinetuneEvery > 0 && batches-l.lastEpochBatch >= int64(l.cfg.FinetuneEvery) {
			fire = reasonCadence
		}
		l.pendingReason = fire
	}
	bufFiles := l.buf.files()
	l.tapMu.Unlock()
	if fire != "" {
		if fire == reasonDrift {
			learnMet.driftTriggers.Inc()
		}
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	learnMet.observations.Add(float64(ingested))
	if rejected > 0 {
		learnMet.bufferRejected.Add(float64(rejected))
	}
	learnMet.bufferFiles.Set(float64(bufFiles))
	learnMet.driftScore.Set(score)
}

// RunEpoch runs one fine-tune epoch synchronously: snapshot the buffer into
// train/holdout traces, resume the trainer for FinetuneSteps on the train
// slice, then offer the resulting candidate to the swap gate. Returns
// ErrNotEnoughData when the buffer cannot yet produce a training trace.
// Safe to call concurrently with taps and with the background loop (epochs
// serialize on an internal mutex).
func (l *Learner) RunEpoch() error {
	l.epochMu.Lock()
	defer l.epochMu.Unlock()
	sw := learnMet.epochLat.Start()
	start := time.Now() //minicost:allow-wallclock epoch-latency instrumentation, never feeds decisions

	l.tapMu.Lock()
	reason := l.pendingReason
	l.pendingReason = ""
	l.lastEpochBatch = l.batches
	l.tapMu.Unlock()
	if reason == "" {
		reason = reasonManual
	}

	train, holdout := l.buf.snapshotTrace(l.cfg.MinTrainDays, l.cfg.HoldoutEvery)
	if train == nil {
		sw.Stop()
		l.setError(ErrNotEnoughData.Error())
		return ErrNotEnoughData
	}
	src, err := rl.NewTraceSource(l.cfg.Model, train, l.histLen, l.cfg.Reward, l.cfg.Initial)
	if err != nil {
		sw.Stop()
		l.setError(err.Error())
		return err
	}
	rbActor, rbCritic := l.cfg.Trainer.ParamVectors()
	stats, err := l.cfg.Trainer.FineTune(src, l.cfg.FinetuneSteps)
	if err != nil {
		sw.Stop()
		l.setError(err.Error())
		return err
	}
	cand := l.cfg.Trainer.Snapshot()
	_, offerErr := l.offer(cand, holdout, rbActor, rbCritic)

	// The epoch consumed the drift signal: fold the current window into the
	// baseline so the score restarts from the just-(re)trained distribution
	// instead of re-triggering on the same shift.
	l.tapMu.Lock()
	l.drift.rebaseline()
	l.tapMu.Unlock()

	elapsed := time.Since(start).Seconds() //minicost:allow-wallclock epoch-latency instrumentation, never feeds decisions
	sw.Stop()
	learnMet.epochs.Inc()

	l.stMu.Lock()
	l.st.Epochs++
	l.st.LastEpochReason = reason
	l.st.LastEpochSteps = stats.Steps
	l.st.LastEpochSeconds = elapsed
	l.st.LastTrainFiles = train.NumFiles()
	if holdout != nil {
		l.st.LastHoldoutFiles = holdout.NumFiles()
	} else {
		l.st.LastHoldoutFiles = 0
	}
	l.stMu.Unlock()
	return offerErr
}

// offer runs the validation gate on a candidate and either hot-swaps it
// into serving (checkpointing the trainer afterwards) or rolls the trainer
// back to the pre-epoch weights. Returns whether the candidate was swapped
// in.
func (l *Learner) offer(cand *rl.Agent, holdout *trace.Trace, rbActor, rbCritic []float64) (bool, error) {
	if l.cfg.SwapGate && holdout != nil && holdout.NumFiles() > 0 {
		l.stMu.Lock()
		inc := l.incumbent
		l.stMu.Unlock()
		candBd, candAsg, err := rl.EvaluateAgent(cand, l.cfg.Model, holdout, l.histLen, l.cfg.Initial)
		if err != nil {
			l.rollback(rbActor, rbCritic)
			l.setError("gate eval (candidate): " + err.Error())
			return false, err
		}
		incBd, incAsg, err := rl.EvaluateAgent(inc, l.cfg.Model, holdout, l.histLen, l.cfg.Initial)
		if err != nil {
			l.rollback(rbActor, rbCritic)
			l.setError("gate eval (incumbent): " + err.Error())
			return false, err
		}
		dis := disagreement(candAsg, incAsg)
		learnMet.disagreement.Set(dis)
		l.stMu.Lock()
		l.st.LastCandidateCost = candBd.Total()
		l.st.LastIncumbentCost = incBd.Total()
		l.st.LastDisagreement = dis
		l.stMu.Unlock()
		if candBd.Total() > incBd.Total()*(1+l.cfg.SwapMargin) {
			// Candidate regresses the held-out cost: reject, keep the
			// incumbent serving, and roll the trainer back so the failed
			// update does not compound into the next epoch.
			l.rollback(rbActor, rbCritic)
			learnMet.swapsRejected.Inc()
			l.stMu.Lock()
			l.st.SwapsRejected++
			l.st.LastError = ""
			l.stMu.Unlock()
			return false, nil
		}
	}
	if err := l.cfg.Serving.UpdateAgent(cand); err != nil {
		l.rollback(rbActor, rbCritic)
		l.setError("swap: " + err.Error())
		return false, err
	}
	learnMet.swaps.Inc()
	l.stMu.Lock()
	l.incumbent = cand
	l.st.Swaps++
	l.st.LastError = ""
	l.ckptSeq++
	seq := l.ckptSeq
	l.stMu.Unlock()
	if l.cfg.CheckpointDir != "" {
		path, err := writeCheckpoint(l.cfg.CheckpointDir, seq, l.cfg.CheckpointKeep, l.cfg.Trainer)
		if err != nil {
			l.setError(err.Error())
			return true, err
		}
		learnMet.checkpoints.Inc()
		l.stMu.Lock()
		l.st.Checkpoints++
		l.st.LastCheckpoint = path
		l.stMu.Unlock()
	}
	return true, nil
}

// rollback restores the trainer's pre-epoch weights.
func (l *Learner) rollback(actor, critic []float64) {
	// The vectors came from ParamVectors on the same trainer, so the only
	// failure mode is a concurrent architecture change, which cannot happen.
	_ = l.cfg.Trainer.SetParamVectors(actor, critic)
}

// disagreement is the fraction of files whose candidate and incumbent plans
// pick a different tier on any day — the train-vs-serve divergence gauge.
func disagreement(a, b costmodel.Assignment) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	diff := 0
	for i := range a {
		pa, pb := a[i], b[i]
		if len(pa) != len(pb) {
			diff++
			continue
		}
		for d := range pa {
			if pa[d] != pb[d] {
				diff++
				break
			}
		}
	}
	return float64(diff) / float64(len(a))
}

// Status snapshots the learner's externally visible state.
func (l *Learner) Status() Status {
	l.tapMu.Lock()
	batches := l.batches
	score := l.lastScore
	dims := l.drift.dimScores()
	calibrating := l.drift.calibrating
	l.tapMu.Unlock()
	l.stMu.Lock()
	st := l.st
	l.stMu.Unlock()
	st.Batches = batches
	st.DriftScore = score
	st.Calibrating = calibrating
	st.BufferFiles = l.buf.files()
	st.BufferWindow = l.buf.window
	st.DriftDims = make(map[string]float64, numDriftDims)
	for d := 0; d < numDriftDims; d++ {
		st.DriftDims[driftDimNames[d]] = dims[d]
	}
	return st
}

// Handler serves GET /v1/learner: the Status block as JSON.
func (l *Learner) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(l.Status())
	})
}

// setError records an epoch failure for Status.
func (l *Learner) setError(msg string) {
	l.stMu.Lock()
	l.st.LastError = msg
	l.stMu.Unlock()
}
