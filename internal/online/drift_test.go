package online

import (
	"testing"

	"minicost/internal/rng"
)

// fill streams n samples from a synthetic hot-ish distribution into the
// detector's active target (baseline while calibrating, current after).
func fillDist(ds *driftStats, n int, seed uint64, cold bool) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		base := r.Float64()
		if cold {
			ds.observeReads(base * 20)
			ds.observeWrites(base * 2)
			ds.observeSize(0.1 + base*base*400)
		} else {
			ds.observeReads(base * 2000)
			ds.observeWrites(base * 20)
			ds.observeSize(0.01 + base*base*50)
		}
		ds.observeGap(1 + float64(i%4))
	}
}

func TestDriftStableDistributionScoresLow(t *testing.T) {
	ds := newDriftStats(1)
	fillDist(ds, 2000, 1, false)
	ds.endBatch()
	if ds.calibrating {
		t.Fatal("one batch should finish calibration")
	}
	fillDist(ds, 2000, 2, false) // same distribution, different draw
	if s := ds.score(); s > 0.05 {
		t.Fatalf("same-distribution PSI = %v, want < 0.05", s)
	}
}

func TestDriftShiftScoresHigh(t *testing.T) {
	ds := newDriftStats(1)
	fillDist(ds, 2000, 1, false)
	ds.endBatch()
	fillDist(ds, 2000, 2, true) // cold+bulky regime
	if s := ds.score(); s < 0.25 {
		t.Fatalf("shifted-distribution PSI = %v, want >= 0.25", s)
	}
	dims := ds.dimScores()
	if dims[dimReads] < 0.25 && dims[dimSize] < 0.25 {
		t.Fatalf("expected reads or size dimension to carry the shift, got %v", dims)
	}
}

func TestDriftMinSamplesGate(t *testing.T) {
	ds := newDriftStats(1)
	fillDist(ds, 1000, 1, false)
	ds.endBatch()
	fillDist(ds, minDriftSamples-1, 2, true)
	if s := ds.score(); s != 0 {
		t.Fatalf("score with %d samples = %v, want 0", minDriftSamples-1, s)
	}
}

func TestDriftScoreZeroWhileCalibrating(t *testing.T) {
	ds := newDriftStats(3)
	fillDist(ds, 1000, 1, false)
	ds.endBatch()
	if !ds.calibrating {
		t.Fatal("should still be calibrating after 1 of 3 batches")
	}
	if s := ds.score(); s != 0 {
		t.Fatalf("score during calibration = %v, want 0", s)
	}
}

func TestDriftRebaselineConsumesShift(t *testing.T) {
	ds := newDriftStats(1)
	fillDist(ds, 2000, 1, false)
	ds.endBatch()
	fillDist(ds, 2000, 2, true)
	before := ds.score()
	if before < 0.25 {
		t.Fatalf("precondition: shift not detected (%v)", before)
	}
	ds.rebaseline()
	if s := ds.score(); s != 0 {
		t.Fatalf("score after rebaseline = %v, want 0 (empty current window)", s)
	}
	// The shifted window is now baseline mass: continued cold traffic scores
	// strictly lower than the original shift did.
	fillDist(ds, 2000, 3, true)
	if s := ds.score(); s >= before {
		t.Fatalf("post-rebaseline cold traffic PSI = %v, want < %v", s, before)
	}
}

func TestDriftBaselineFromSeries(t *testing.T) {
	ds := newDriftStats(5)
	// Two files × 6 days, with gaps in activity.
	sizes := []float64{1, 10}
	reads := [][]float64{{100, 0, 0, 100, 0, 100}, {5, 5, 0, 0, 5, 5}}
	writes := [][]float64{{1, 0, 0, 1, 0, 1}, {0, 0, 0, 0, 0, 0}}
	ds.setBaselineFromSeries(sizes, reads, writes)
	if ds.calibrating {
		t.Fatal("trace baseline must disable self-calibration")
	}
	if got := ds.base[dimReads].total; got != 12 {
		t.Fatalf("baseline read samples = %v, want 12 (one per file-day)", got)
	}
	// File 0 active days: 0,3,5 → gaps 3,2. File 1: 0,1,4,5 → gaps 1,3,1.
	if got := ds.base[dimGap].total; got != 5 {
		t.Fatalf("baseline gap samples = %v, want 5", got)
	}
}
