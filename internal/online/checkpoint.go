package online

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"minicost/internal/rl"
)

// Checkpoint files are the learner's crash-recovery and redeploy story:
// after every accepted fine-tune epoch the full trainer state (actor +
// critic) is written as learner-<seq>.ckpt via a temp-file + atomic-rename
// protocol, so a reader (or a crashed writer) never sees a torn file, and
// old checkpoints beyond the retention count are pruned. The sequence
// number is zero-padded so lexicographic directory order is chronological
// order; minicostd's -load-checkpoint boots serving straight from the
// newest one (rl.LoadAgent reads the trainer format, ignoring the critic).

const (
	checkpointPrefix = "learner-"
	checkpointSuffix = ".ckpt"
)

// checkpointName formats the on-disk name for epoch sequence seq.
func checkpointName(seq int64) string {
	return fmt.Sprintf("%s%010d%s", checkpointPrefix, seq, checkpointSuffix)
}

// writeCheckpoint atomically persists the trainer's state to dir and prunes
// all but the newest `keep` checkpoints (keep <= 0 keeps everything).
// Returns the final path.
func writeCheckpoint(dir string, seq int64, keep int, tr *rl.A3C) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("online: checkpoint dir: %w", err)
	}
	final := filepath.Join(dir, checkpointName(seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("online: checkpoint: %w", err)
	}
	if err := tr.SaveCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("online: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("online: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("online: checkpoint rename: %w", err)
	}
	if keep > 0 {
		if err := pruneCheckpoints(dir, keep); err != nil {
			return final, err
		}
	}
	return final, nil
}

// checkpointSeqOf parses the sequence number out of a checkpoint file name;
// ok is false for names that merely wear the prefix/suffix.
func checkpointSeqOf(name string) (int64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return 0, false
	}
	s := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
	seq, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listCheckpoints returns the checkpoint file names in dir, oldest first.
// os.ReadDir sorts by name, and the zero-padded sequence makes name order
// chronological. Files that wear the prefix/suffix but carry no parseable
// sequence are not checkpoints and are excluded, so a foreign file can
// neither shadow LatestCheckpoint nor be deleted by pruning.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("online: list checkpoints: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if _, ok := checkpointSeqOf(name); !ok {
			continue
		}
		names = append(names, name)
	}
	return names, nil
}

// maxCheckpointSeq returns the highest sequence number among the checkpoint
// files in dir (0 when the directory is empty or absent). A learner reusing
// a checkpoint directory across restarts seeds its sequence counter from
// this, so new checkpoints always sort after the prior run's — numbering
// below the retained files would make pruneCheckpoints (name-ordered)
// delete the freshly written checkpoint while keeping stale ones, and later
// sequences would silently overwrite prior-run history.
func maxCheckpointSeq(dir string) (int64, error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	max := int64(0)
	for _, name := range names {
		if seq, ok := checkpointSeqOf(name); ok && seq > max {
			max = seq
		}
	}
	return max, nil
}

// pruneCheckpoints removes all but the newest `keep` checkpoints in dir.
func pruneCheckpoints(dir string, keep int) error {
	names, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for i := 0; i+keep < len(names); i++ {
		if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
			return fmt.Errorf("online: prune checkpoint: %w", err)
		}
	}
	return nil
}

// LatestCheckpoint returns the path of the newest learner checkpoint in
// dir, or "" when none exists.
func LatestCheckpoint(dir string) (string, error) {
	names, err := listCheckpoints(dir)
	if err != nil || len(names) == 0 {
		return "", err
	}
	return filepath.Join(dir, names[len(names)-1]), nil
}

// LoadTrainer builds an A3C from cfg and restores the trainer state saved
// at path — minicostd's boot path for resuming the online learner from a
// prior run's checkpoint.
func LoadTrainer(cfg rl.A3CConfig, path string) (*rl.A3C, error) {
	tr, err := rl.NewA3C(cfg)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("online: open checkpoint: %w", err)
	}
	defer f.Close()
	if err := tr.LoadCheckpoint(f); err != nil {
		return nil, err
	}
	return tr, nil
}
