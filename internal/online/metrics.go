package online

import "minicost/internal/obs"

// Metric family names, exported as constants so the obsnames analyzer can
// verify the grammar and single ownership at compile time and so dashboards
// and tests reference the names without string drift (DESIGN.md §17).
const (
	// MetricObservations counts per-file observations the tap copied into
	// the replay buffer.
	MetricObservations = "minicost_online_observations_total"
	// MetricBufferFiles gauges the files currently held in the replay
	// buffer across all shards.
	MetricBufferFiles = "minicost_online_buffer_files"
	// MetricBufferRejected counts observations dropped because the bounded
	// buffer had no room for another file.
	MetricBufferRejected = "minicost_online_buffer_rejected_total"
	// MetricDriftScore gauges the most recent PSI drift score (max over the
	// tracked dimensions) of live traffic vs. the training baseline.
	MetricDriftScore = "minicost_online_drift_score"
	// MetricDriftTriggers counts fine-tune epochs triggered by the drift
	// score crossing the configured threshold (cadence epochs excluded).
	MetricDriftTriggers = "minicost_online_drift_triggers_total"
	// MetricEpochs counts completed fine-tune epochs (accepted or not).
	MetricEpochs = "minicost_online_finetune_epochs_total"
	// MetricEpochLatency times one fine-tune epoch: buffer snapshot,
	// incremental training, validation, and the swap or rollback.
	MetricEpochLatency = "minicost_online_epoch_seconds"
	// MetricSwaps counts candidate policies hot-swapped into serving.
	MetricSwaps = "minicost_online_swaps_total"
	// MetricSwapsRejected counts candidates the validation gate refused
	// (regressed simulated cost on the held-out buffer slice).
	MetricSwapsRejected = "minicost_online_swaps_rejected_total"
	// MetricDisagreement gauges the fraction of held-out buffered files
	// where the last candidate and the incumbent decided different tiers.
	MetricDisagreement = "minicost_online_policy_disagreement"
	// MetricCheckpoints counts learner checkpoints written to disk.
	MetricCheckpoints = "minicost_online_checkpoints_total"
)

// learnerMetrics are the online subsystem's obs instruments. Like every
// other subsystem they live in the default registry, which is off outside
// daemons, so recording costs one atomic load until a binary opts in.
type learnerMetrics struct {
	observations   *obs.Counter
	bufferFiles    *obs.Gauge
	bufferRejected *obs.Counter
	driftScore     *obs.Gauge
	driftTriggers  *obs.Counter
	epochs         *obs.Counter
	epochLat       *obs.Timer
	swaps          *obs.Counter
	swapsRejected  *obs.Counter
	disagreement   *obs.Gauge
	checkpoints    *obs.Counter
}

var learnMet = func() learnerMetrics {
	reg := obs.Default()
	return learnerMetrics{
		observations: reg.Counter(MetricObservations,
			"Per-file observations ingested into the online replay buffer."),
		bufferFiles: reg.Gauge(MetricBufferFiles,
			"Files currently held in the online replay buffer."),
		bufferRejected: reg.Counter(MetricBufferRejected,
			"Observations dropped because the bounded replay buffer was full."),
		driftScore: reg.Gauge(MetricDriftScore,
			"PSI drift score of live traffic vs. the training baseline (max over dimensions)."),
		driftTriggers: reg.Counter(MetricDriftTriggers,
			"Fine-tune epochs triggered by the drift score crossing the threshold."),
		epochs: reg.Counter(MetricEpochs,
			"Fine-tune epochs completed by the online learner."),
		epochLat: reg.Timer(MetricEpochLatency,
			"Fine-tune epoch latency: snapshot, training, validation, swap/rollback."),
		swaps: reg.Counter(MetricSwaps,
			"Candidate policies hot-swapped into serving."),
		swapsRejected: reg.Counter(MetricSwapsRejected,
			"Candidate policies rejected by the validation gate (cost regression on held-out slice)."),
		disagreement: reg.Gauge(MetricDisagreement,
			"Fraction of held-out buffered files where candidate and incumbent decide different tiers."),
		checkpoints: reg.Counter(MetricCheckpoints,
			"Learner checkpoints written to disk."),
	}
}()
