package online

import (
	"fmt"
	"math"
	"testing"

	"minicost/internal/agentserver"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// testNet is a deliberately tiny architecture (HistLen 4) so fine-tune
// epochs and gate evaluations finish in milliseconds.
func testNet() rl.NetConfig {
	return rl.NetConfig{HistLen: 4, Filters: 8, Kernel: 2, Stride: 1, Hidden: 16}
}

// testA3CConfig is the paper configuration shrunk onto testNet, pinned to
// Workers=1 so runs are seed-deterministic, with the vectorized engine
// engaged (EnvsPerWorker=2) the way minicostd drives fine-tuning.
func testA3CConfig(seed uint64) rl.A3CConfig {
	cfg := rl.DefaultA3CConfig()
	cfg.Net = testNet()
	cfg.Workers = 1
	cfg.EnvsPerWorker = 2
	cfg.Seed = seed
	return cfg
}

func testTrainer(t testing.TB, seed uint64) *rl.A3C {
	t.Helper()
	tr, err := rl.NewA3C(testA3CConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// testTrace builds a seeded synthetic trace in loadgen's hot regime (or the
// cold+bulky drifted regime) — the same distributions the drift tests use.
func testTrace(t testing.TB, files, days int, seed uint64, cold bool) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{Days: days}
	r := rng.New(seed)
	for i := 0; i < files; i++ {
		base := r.Float64()
		size := 0.01 + base*base*50
		readRate := base * 2000
		writeRate := base * 20
		if cold {
			size = 0.1 + base*base*400
			readRate = base * 20
			writeRate = base * 2
		}
		reads := make([]float64, days)
		writes := make([]float64, days)
		for d := 0; d < days; d++ {
			reads[d] = readRate * float64(1+(i+d)%7) / 7
			writes[d] = writeRate * float64(1+(i+d)%3) / 3
		}
		tr.Files = append(tr.Files, trace.FileMeta{ID: i, SizeGB: size})
		tr.Reads = append(tr.Reads, reads)
		tr.Writes = append(tr.Writes, writes)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// synthBatch builds day d's observations for n files, matching loadgen's
// generator (including the drifted regime).
func synthBatch(n, d int, seed uint64, drifted bool) []agentserver.FileObservation {
	files := make([]agentserver.FileObservation, n)
	for i := 0; i < n; i++ {
		r := rng.New(seed + uint64(i)*2654435761)
		base := r.Float64()
		if drifted {
			files[i] = agentserver.FileObservation{
				ID:     fmt.Sprintf("f%06d", i),
				SizeGB: 0.1 + base*base*400,
				Reads:  base * 20 * float64(1+(i+d)%7) / 7,
				Writes: base * 2 * float64(1+(i+d)%3) / 3,
			}
		} else {
			files[i] = agentserver.FileObservation{
				ID:     fmt.Sprintf("f%06d", i),
				SizeGB: 0.01 + base*base*50,
				Reads:  base * 2000 * float64(1+(i+d)%7) / 7,
				Writes: base * 20 * float64(1+(i+d)%3) / 3,
			}
		}
	}
	return files
}

// bitwiseEq fails unless got and want are element-for-element bit-identical.
func bitwiseEq(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: elem %d = %v, want %v (not bitwise equal)", name, i, got[i], want[i])
		}
	}
}
