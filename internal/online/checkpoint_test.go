package online

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/pricing"
	"minicost/internal/rl"
)

// TestCheckpointRoundTripMidFineTune is satellite 2's restore guarantee: a
// checkpoint written mid-fine-tune must restore both the trainer (actor +
// critic) and a serving agent (rl.LoadAgent reads the same format) to
// bitwise-identical weights, and the atomic-rename protocol must leave no
// temp file behind.
func TestCheckpointRoundTripMidFineTune(t *testing.T) {
	cfg := testA3CConfig(21)
	tr, err := rl.NewA3C(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(pricing.Azure())
	src, err := rl.NewTraceSource(model, testTrace(t, 6, 10, 3, false), cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.FineTune(src, 128); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path, err := writeCheckpoint(dir, 3, 5, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(path); got != checkpointName(3) {
		t.Fatalf("checkpoint name %q, want %q", got, checkpointName(3))
	}

	re, err := LoadTrainer(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantC := tr.ParamVectors()
	gotA, gotC := re.ParamVectors()
	bitwiseEq(t, "restored actor", gotA, wantA)
	bitwiseEq(t, "restored critic", gotC, wantC)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := rl.LoadAgent(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEq(t, "serving actor", agent.ParamVector(), tr.Snapshot().ParamVector())

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

// TestCheckpointRetention writes a sequence of checkpoints with keep=3 and
// asserts only the newest three survive, in chronological name order, with
// LatestCheckpoint pointing at the last one.
func TestCheckpointRetention(t *testing.T) {
	tr := testTrainer(t, 5)
	dir := t.TempDir()
	for seq := int64(1); seq <= 7; seq++ {
		if _, err := writeCheckpoint(dir, seq, 3, tr); err != nil {
			t.Fatal(err)
		}
	}
	names, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{checkpointName(5), checkpointName(6), checkpointName(7)}
	if len(names) != len(want) {
		t.Fatalf("retained %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("retained %v, want %v", names, want)
		}
	}
	latest, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != filepath.Join(dir, checkpointName(7)) {
		t.Fatalf("latest = %q", latest)
	}
}

// TestLatestCheckpointMissingDir: a never-created directory is "no
// checkpoint yet", not an error (minicostd probes before the first run).
func TestLatestCheckpointMissingDir(t *testing.T) {
	latest, err := LatestCheckpoint(filepath.Join(t.TempDir(), "nope"))
	if err != nil || latest != "" {
		t.Fatalf("got (%q, %v), want empty, nil", latest, err)
	}
}

// TestCheckpointSeqResumesAcrossRestart pins the restart contract for a
// reused checkpoint directory: a new learner must continue numbering after
// the prior run's retained files, so its first checkpoint sorts newest —
// numbering from zero would make name-ordered pruning delete the fresh
// checkpoint while keeping stale ones.
func TestCheckpointSeqResumesAcrossRestart(t *testing.T) {
	tr := testTrainer(t, 7)
	dir := t.TempDir()
	for seq := int64(5); seq <= 7; seq++ {
		if _, err := writeCheckpoint(dir, seq, 3, tr); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-checkpoint file wearing the prefix must not poison the scan.
	if err := os.WriteFile(filepath.Join(dir, checkpointPrefix+"notes"+checkpointSuffix), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := maxCheckpointSeq(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("maxCheckpointSeq = %d, want 7", got)
	}
	if got, err := maxCheckpointSeq(filepath.Join(dir, "nope")); err != nil || got != 0 {
		t.Fatalf("missing dir: (%d, %v), want (0, nil)", got, err)
	}

	// Writing the next checkpoint at seq+1 keeps chronology: it survives
	// pruning and LatestCheckpoint points at it.
	if _, err := writeCheckpoint(dir, got+1, 3, tr); err != nil {
		t.Fatal(err)
	}
	latest, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != filepath.Join(dir, checkpointName(8)) {
		t.Fatalf("latest after restart-write = %q, want seq 8", latest)
	}
}
