package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The CSV layout is record-typed so one file can carry metadata, series and
// groups:
//
//	days,<D>
//	file,<id>,<sizeGB>,<bucket>,<datacenter>,r0,...,rD-1,w0,...,wD-1
//	group,<m0;m1;...>,c0,...,cD-1
//
// Readers accept records in any order after the leading "days" record.

// WriteCSV serializes the trace.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"days", strconv.Itoa(tr.Days)}); err != nil {
		return err
	}
	rec := make([]string, 0, 5+2*tr.Days)
	for i, f := range tr.Files {
		rec = rec[:0]
		rec = append(rec, "file",
			strconv.Itoa(f.ID),
			formatF(f.SizeGB),
			strconv.Itoa(f.Bucket),
			f.Datacenter)
		for _, v := range tr.Reads[i] {
			rec = append(rec, formatF(v))
		}
		for _, v := range tr.Writes[i] {
			rec = append(rec, formatF(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for _, g := range tr.Groups {
		rec = rec[:0]
		members := make([]string, len(g.Members))
		for j, m := range g.Members {
			members[j] = strconv.Itoa(m)
		}
		rec = append(rec, "group", strings.Join(members, ";"))
		for _, v := range g.Concurrent {
			rec = append(rec, formatF(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReadCSV parses a trace written by WriteCSV and validates it.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(first) != 2 || first[0] != "days" {
		return nil, fmt.Errorf("trace: expected days record, got %v", first)
	}
	days, err := strconv.Atoi(first[1])
	if err != nil || days <= 0 {
		return nil, fmt.Errorf("trace: bad day count %q", first[1])
	}
	tr := &Trace{Days: days}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "file":
			if len(rec) != 5+2*days {
				return nil, fmt.Errorf("trace: line %d: file record has %d fields, want %d", line, len(rec), 5+2*days)
			}
			id, err := strconv.Atoi(rec[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: id: %w", line, err)
			}
			size, err := strconv.ParseFloat(rec[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: size: %w", line, err)
			}
			bucket, err := strconv.Atoi(rec[3])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bucket: %w", line, err)
			}
			reads, err := parseFloats(rec[5 : 5+days])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: reads: %w", line, err)
			}
			writes, err := parseFloats(rec[5+days:])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: writes: %w", line, err)
			}
			tr.Files = append(tr.Files, FileMeta{ID: id, SizeGB: size, Bucket: bucket, Datacenter: rec[4]})
			tr.Reads = append(tr.Reads, reads)
			tr.Writes = append(tr.Writes, writes)
		case "group":
			if len(rec) != 2+days {
				return nil, fmt.Errorf("trace: line %d: group record has %d fields, want %d", line, len(rec), 2+days)
			}
			var members []int
			for _, s := range strings.Split(rec[1], ";") {
				m, err := strconv.Atoi(s)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: member %q: %w", line, s, err)
				}
				members = append(members, m)
			}
			conc, err := parseFloats(rec[2:])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: concurrency: %w", line, err)
			}
			tr.Groups = append(tr.Groups, Group{Members: members, Concurrent: conc})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", line, rec[0])
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
