package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the trace loader — the repo's main untrusted parser —
// with arbitrary bytes. Invariants: ReadCSV never panics, and every trace
// it accepts (a) passes Validate and (b) survives a WriteCSV/ReadCSV
// round trip (formatF uses strconv 'g'/-1, which round-trips float64
// exactly).
func FuzzReadCSV(f *testing.F) {
	// A small valid trace as the structured seed.
	cfg := DefaultGenConfig()
	cfg.NumFiles, cfg.Days, cfg.Workers = 3, 4, 1
	tr, err := Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("days,2\nfile,0,1.5,0,dc1,1,2,3,4\n")
	f.Add("days,2\nfile,0,1.5,0,dc1,1,2,3,4\ngroup,0,0.5,0.25\n")
	f.Add("days,0\n")
	f.Add("days,notanumber\n")
	f.Add("file,0\n")
	f.Add("days,1\nfile,0,nan,0,dc1,inf,-inf\n")
	f.Add("days,1\nunknown,record\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := tr.WriteCSV(&out); err != nil {
			t.Fatalf("WriteCSV of accepted trace: %v", err)
		}
		tr2, err := ReadCSV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if tr2.Days != tr.Days || len(tr2.Files) != len(tr.Files) || len(tr2.Groups) != len(tr.Groups) {
			t.Fatalf("round trip changed shape: days %d->%d files %d->%d groups %d->%d",
				tr.Days, tr2.Days, len(tr.Files), len(tr2.Files), len(tr.Groups), len(tr2.Groups))
		}
	})
}
