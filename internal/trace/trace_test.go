package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"minicost/internal/rng"
)

func smallCfg() GenConfig {
	cfg := DefaultGenConfig()
	cfg.NumFiles = 300
	cfg.Days = 35
	return cfg
}

func TestGenerateValidates(t *testing.T) {
	tr, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.NumFiles() != 300 || tr.Days != 35 {
		t.Fatalf("shape %d files %d days", tr.NumFiles(), tr.Days)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg := smallCfg()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Reads[0], c.Reads[0]) {
		t.Fatal("different seeds produced identical series")
	}
}

func TestGenerateDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := smallCfg()
	cfg.Workers = 1
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Reads, b.Reads) {
		t.Fatal("worker count changed the generated trace")
	}
}

func TestBucketSharesMatchFig2(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.NumFiles = 4000
	cfg.Days = 63
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shares := BucketShares(tr.SigmaHistogram())
	// Realized CV is stochastic: allow generous slack but demand the
	// qualitative Fig. 2 shape (dominant first bucket, thin tail).
	if shares[0] < 0.70 {
		t.Fatalf("stationary share %v, want >= 0.70 (target 0.8175)", shares[0])
	}
	if shares[4] > 0.05 {
		t.Fatalf(">0.8 share %v, want small (target 0.0063)", shares[4])
	}
	for b := 0; b < NumBuckets; b++ {
		if math.Abs(shares[b]-PaperBucketShares[b]) > 0.10 {
			t.Fatalf("bucket %d share %v vs paper %v beyond ±0.10", b, shares[b], PaperBucketShares[b])
		}
	}
}

func TestTargetCVRealized(t *testing.T) {
	// Per-class mean realized CV should land inside (or very near) the
	// class's σ range.
	cfg := DefaultGenConfig()
	cfg.NumFiles = 3000
	cfg.Days = 63
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, NumBuckets)
	counts := make([]int, NumBuckets)
	for i := range tr.Files {
		c := tr.Files[i].Bucket
		sums[c] += SigmaCV(tr.Reads[i])
		counts[c]++
	}
	for c := 0; c < NumBuckets; c++ {
		if counts[c] == 0 {
			t.Fatalf("class %d empty", c)
		}
		mean := sums[c] / float64(counts[c])
		lo := Buckets[c].Lo * 0.5
		hi := Buckets[c].Hi * 1.5
		if math.IsInf(hi, 1) {
			hi = 3
		}
		if c == 0 {
			lo, hi = 0, 0.15
		}
		if mean < lo || mean > hi {
			t.Errorf("class %d mean realized CV %v outside [%v,%v]", c, mean, lo, hi)
		}
	}
}

func TestSizesPoissonAroundMean(t *testing.T) {
	cfg := smallCfg()
	cfg.NumFiles = 2000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range tr.Files {
		if f.SizeGB <= 0 {
			t.Fatal("non-positive size")
		}
		sum += f.SizeGB
	}
	mean := sum / float64(len(tr.Files))
	if math.Abs(mean-cfg.MeanSizeGB) > 0.01 {
		t.Fatalf("mean size %v GB, want ~%v", mean, cfg.MeanSizeGB)
	}
}

func TestWeeklyCycleDetectable(t *testing.T) {
	// With amplitude raised and noise suppressed, autocorrelation at lag 7
	// must dominate lags 2..6 for stationary files.
	cfg := smallCfg()
	cfg.WeeklyAmplitude = 0.3
	cfg.BucketShares = [NumBuckets]float64{1, 0, 0, 0, 0}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i := 0; i < 50; i++ {
		ac7 := autocorr(tr.Reads[i], 7)
		best := true
		for lag := 2; lag <= 5; lag++ {
			if autocorr(tr.Reads[i], lag) > ac7 {
				best = false
				break
			}
		}
		if best {
			wins++
		}
	}
	if wins < 35 {
		t.Fatalf("weekly cycle dominant in only %d/50 files", wins)
	}
}

func autocorr(xs []float64, lag int) float64 {
	m := Mean(xs)
	num, den := 0.0, 0.0
	for i := 0; i < len(xs); i++ {
		den += (xs[i] - m) * (xs[i] - m)
	}
	for i := 0; i+lag < len(xs); i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestGroupsRespectConcurrencyBound(t *testing.T) {
	tr, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Groups) == 0 {
		t.Fatal("expected concurrency groups")
	}
	// Validate() already enforces the bound; double-check a sample directly.
	g := tr.Groups[0]
	for d := 0; d < tr.Days; d++ {
		for _, m := range g.Members {
			if g.Concurrent[d] > tr.Reads[m][d] {
				t.Fatalf("day %d: concurrency %v > member reads %v", d, g.Concurrent[d], tr.Reads[m][d])
			}
		}
	}
}

func TestGenerateIntegerCounts(t *testing.T) {
	cfg := smallCfg()
	cfg.IntegerCounts = true
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Reads {
		for d := range tr.Reads[i] {
			if tr.Reads[i][d] != math.Trunc(tr.Reads[i][d]) {
				t.Fatal("IntegerCounts produced fractional reads")
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := func(mut func(*GenConfig)) GenConfig {
		cfg := DefaultGenConfig()
		mut(&cfg)
		return cfg
	}
	cases := []GenConfig{
		bad(func(c *GenConfig) { c.NumFiles = 0 }),
		bad(func(c *GenConfig) { c.Days = 1 }),
		bad(func(c *GenConfig) { c.MeanSizeGB = 0 }),
		bad(func(c *GenConfig) { c.ZipfExponent = -1 }),
		bad(func(c *GenConfig) { c.BaseDailyReads = 0 }),
		bad(func(c *GenConfig) { c.WriteFraction = -0.1 }),
		bad(func(c *GenConfig) { c.WeeklyAmplitude = 1.2 }),
		bad(func(c *GenConfig) { c.GroupSizeMin = 1 }),
		bad(func(c *GenConfig) { c.ConcurrencyHi = 1.5 }),
		bad(func(c *GenConfig) { c.BucketShares = [NumBuckets]float64{1, 1, 0, 0, 0} }),
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSigmaMatchesEquation1(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample std dev with T-1 denominator: mean 5, SS=32, 32/7
	want := math.Sqrt(32.0 / 7.0)
	if got := Sigma(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sigma = %v, want %v", got, want)
	}
	if Sigma([]float64{5}) != 0 || Sigma(nil) != 0 {
		t.Fatal("degenerate Sigma should be 0")
	}
}

func TestSigmaCV(t *testing.T) {
	if got := SigmaCV([]float64{10, 10, 10}); got != 0 {
		t.Fatalf("constant series CV = %v", got)
	}
	if got := SigmaCV([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero series CV = %v", got)
	}
	// Scaling invariance: CV(k·x) == CV(x).
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		k := 1 + float64(kRaw)
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for i := range xs {
			xs[i] = 1 + r.Float64()*10
			ys[i] = k * xs[i]
		}
		return math.Abs(SigmaCV(xs)-SigmaCV(ys)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOf(t *testing.T) {
	for _, tc := range []struct {
		cv   float64
		want int
	}{{0, 0}, {0.05, 0}, {0.0999, 0}, {0.1, 1}, {0.29, 1}, {0.3, 2}, {0.49, 2}, {0.5, 3}, {0.79, 3}, {0.8, 4}, {5, 4}} {
		if got := BucketOf(tc.cv); got != tc.want {
			t.Errorf("BucketOf(%v) = %d, want %d", tc.cv, got, tc.want)
		}
	}
}

func TestWindow(t *testing.T) {
	tr, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.Window(7, 21)
	if err != nil {
		t.Fatal(err)
	}
	if w.Days != 14 {
		t.Fatalf("window days %d", w.Days)
	}
	if w.Reads[3][0] != tr.Reads[3][7] {
		t.Fatal("window misaligned")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 5}, {5, 5}, {0, 99}} {
		if _, err := tr.Window(bad[0], bad[1]); err == nil {
			t.Errorf("window %v accepted", bad)
		}
	}
}

func TestSubsetAndSplit(t *testing.T) {
	tr, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.New(9).Perm(tr.NumFiles())
	train, test, err := tr.SplitTrainTest(0.8, perm)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumFiles()+test.NumFiles() != tr.NumFiles() {
		t.Fatal("split loses files")
	}
	if got := train.NumFiles(); got != 240 {
		t.Fatalf("train files %d, want 240", got)
	}
	if err := train.Validate(); err != nil {
		t.Fatalf("train invalid: %v", err)
	}
	if err := test.Validate(); err != nil {
		t.Fatalf("test invalid: %v", err)
	}
	// Groups must only survive when fully contained in one side.
	for _, g := range train.Groups {
		for _, m := range g.Members {
			if m < 0 || m >= train.NumFiles() {
				t.Fatal("train group member out of range after re-index")
			}
		}
	}
	if _, _, err := tr.SplitTrainTest(1.5, perm); err == nil {
		t.Error("bad fraction accepted")
	}
	if _, _, err := tr.SplitTrainTest(0.5, perm[:3]); err == nil {
		t.Error("bad perm accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := smallCfg()
	cfg.NumFiles = 40
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("CSV round trip changed the trace")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"bananas,3",
		"days,0",
		"days,notanumber",
		"days,2\nfile,0,0.1,0,dc,1", // wrong field count
		"days,2\nwat,1,2",
		"days,2\nfile,0,0.1,0,dc,1,2,x,4", // bad float
		"days,2\ngroup,0;zzz,1,1",         // bad member
		"days,2\nfile,0,-1,0,dc,1,2,3,4",  // invalid (negative size) -> Validate
		"days,2\ngroup,0;1,1,1",           // members out of range (no files)
	} {
		if _, err := ReadCSV(bytes.NewBufferString(s)); err == nil {
			t.Errorf("ReadCSV accepted %q", s)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Trace {
		tr, err := Generate(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr := mk()
	tr.Reads[0][0] = -1
	if tr.Validate() == nil {
		t.Error("negative read accepted")
	}
	tr = mk()
	tr.Reads[0][0] = math.NaN()
	if tr.Validate() == nil {
		t.Error("NaN read accepted")
	}
	tr = mk()
	tr.Files[0].SizeGB = 0
	if tr.Validate() == nil {
		t.Error("zero size accepted")
	}
	tr = mk()
	if len(tr.Groups) > 0 {
		tr.Groups[0].Concurrent[0] = math.Inf(1)
		if tr.Validate() == nil {
			t.Error("unbounded concurrency accepted")
		}
	}
	tr = mk()
	if len(tr.Groups) > 0 {
		tr.Groups[0].Members = []int{1, 1}
		if tr.Validate() == nil {
			t.Error("duplicate group member accepted")
		}
	}
}

func TestTotalRequestsPositive(t *testing.T) {
	tr, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalRequests() <= 0 {
		t.Fatal("no requests generated")
	}
}

func BenchmarkGenerate1kFiles63Days(b *testing.B) {
	cfg := DefaultGenConfig()
	cfg.NumFiles = 1000
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSigmaHistogram(b *testing.B) {
	tr, err := Generate(smallCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SigmaHistogram()
	}
}
