package trace

import (
	"fmt"
	"math"

	"minicost/internal/rng"
)

// The paper's raw Wikipedia trace is hourly ("this trace includes hourly
// Wikipedia page views per article") and is re-formatted to daily
// frequencies because the CSP bills by day (§6.1). These helpers model that
// pipeline: ExpandHourly turns a daily trace into per-hour request counts
// with a diurnal profile, and DailyFromHourly folds hourly data back to the
// daily form every other component consumes.

// HoursPerDay is the hourly resolution of the raw trace.
const HoursPerDay = 24

// Hourly holds per-file hourly read counts: Reads[file][day*24+hour].
type Hourly struct {
	Days  int
	Reads [][]float64
}

// diurnalWeight is a 24-hour activity profile (fraction of a day's traffic
// per hour, summing to 1): low at night, peaking in the evening — the usual
// web-traffic shape.
var diurnalWeight = func() [HoursPerDay]float64 {
	var w [HoursPerDay]float64
	total := 0.0
	for h := 0; h < HoursPerDay; h++ {
		// Two-lobe profile: midday and evening bumps over a night-time floor.
		v := 0.3 +
			0.8*math.Exp(-sq(float64(h)-13)/18) +
			1.0*math.Exp(-sq(float64(h)-20)/8)
		w[h] = v
		total += v
	}
	for h := range w {
		w[h] /= total
	}
	return w
}()

func sq(x float64) float64 { return x * x }

// ExpandHourly distributes each file's daily read frequency over 24 hours
// using the diurnal profile with multiplicative log-normal noise, seeded
// deterministically. The hourly totals preserve each day's frequency
// exactly (the noise is renormalised within the day).
func ExpandHourly(tr *Trace, seed uint64) *Hourly {
	root := rng.New(seed)
	out := &Hourly{Days: tr.Days, Reads: make([][]float64, tr.NumFiles())}
	for i := range tr.Reads {
		r := root.Split(uint64(i) + 0x40421)
		hours := make([]float64, tr.Days*HoursPerDay)
		for d := 0; d < tr.Days; d++ {
			var noisy [HoursPerDay]float64
			total := 0.0
			for h := 0; h < HoursPerDay; h++ {
				noisy[h] = diurnalWeight[h] * r.LogNormal(0, 0.3)
				total += noisy[h]
			}
			daily := tr.Reads[i][d]
			for h := 0; h < HoursPerDay; h++ {
				hours[d*HoursPerDay+h] = daily * noisy[h] / total
			}
		}
		out.Reads[i] = hours
	}
	return out
}

// DailyFromHourly folds hourly read counts back into daily frequencies —
// the paper's "re-formatted the trace data into daily request frequencies".
// Metadata, writes and groups are copied from the template trace, which
// must have matching shape.
func DailyFromHourly(h *Hourly, template *Trace) (*Trace, error) {
	if len(h.Reads) != template.NumFiles() {
		return nil, fmt.Errorf("trace: hourly has %d files, template %d", len(h.Reads), template.NumFiles())
	}
	out := &Trace{Days: h.Days, Files: template.Files, Writes: template.Writes, Groups: template.Groups}
	out.Reads = make([][]float64, len(h.Reads))
	for i, hours := range h.Reads {
		if len(hours) != h.Days*HoursPerDay {
			return nil, fmt.Errorf("trace: file %d has %d hours, want %d", i, len(hours), h.Days*HoursPerDay)
		}
		daily := make([]float64, h.Days)
		for d := 0; d < h.Days; d++ {
			s := 0.0
			for hh := 0; hh < HoursPerDay; hh++ {
				s += hours[d*HoursPerDay+hh]
			}
			daily[d] = s
		}
		out.Reads[i] = daily
	}
	return out, nil
}

// PeakHourShare returns, for one file-day, the largest fraction of the
// day's traffic landing in a single hour — a burstiness diagnostic used by
// the trace analysis.
func (h *Hourly) PeakHourShare(file, day int) (float64, error) {
	if file < 0 || file >= len(h.Reads) || day < 0 || day >= h.Days {
		return 0, fmt.Errorf("trace: peak share out of range (file %d, day %d)", file, day)
	}
	total, peak := 0.0, 0.0
	for hh := 0; hh < HoursPerDay; hh++ {
		v := h.Reads[file][day*HoursPerDay+hh]
		total += v
		if v > peak {
			peak = v
		}
	}
	if total == 0 {
		return 0, nil
	}
	return peak / total, nil
}
