package trace

import (
	"math"
	"testing"
)

func hourlyFixture(t *testing.T) (*Trace, *Hourly) {
	t.Helper()
	cfg := DefaultGenConfig()
	cfg.NumFiles = 30
	cfg.Days = 10
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, ExpandHourly(tr, 7)
}

func TestExpandHourlyPreservesDailyTotals(t *testing.T) {
	tr, h := hourlyFixture(t)
	back, err := DailyFromHourly(h, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Reads {
		for d := range tr.Reads[i] {
			if math.Abs(back.Reads[i][d]-tr.Reads[i][d]) > 1e-9*(1+tr.Reads[i][d]) {
				t.Fatalf("file %d day %d: %v != %v", i, d, back.Reads[i][d], tr.Reads[i][d])
			}
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandHourlyDeterministic(t *testing.T) {
	tr, h1 := hourlyFixture(t)
	h2 := ExpandHourly(tr, 7)
	for i := range h1.Reads {
		for k := range h1.Reads[i] {
			if h1.Reads[i][k] != h2.Reads[i][k] {
				t.Fatal("hourly expansion not deterministic")
			}
		}
	}
	h3 := ExpandHourly(tr, 8)
	same := true
	for k := range h1.Reads[0] {
		if h1.Reads[0][k] != h3.Reads[0][k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical hourly series")
	}
}

func TestHourlyNonNegative(t *testing.T) {
	_, h := hourlyFixture(t)
	for i := range h.Reads {
		for k, v := range h.Reads[i] {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("file %d hour %d: %v", i, k, v)
			}
		}
	}
}

func TestDiurnalProfileShapesTraffic(t *testing.T) {
	// Averaged over many file-days, evening hours must carry more traffic
	// than night hours.
	tr, h := hourlyFixture(t)
	var night, evening float64
	for i := range tr.Reads {
		mean := Mean(tr.Reads[i])
		if mean == 0 {
			continue
		}
		for d := 0; d < h.Days; d++ {
			night += h.Reads[i][d*HoursPerDay+4] / mean
			evening += h.Reads[i][d*HoursPerDay+20] / mean
		}
	}
	if evening <= night*1.5 {
		t.Fatalf("evening traffic %v not clearly above night %v", evening, night)
	}
}

func TestPeakHourShare(t *testing.T) {
	_, h := hourlyFixture(t)
	share, err := h.PeakHourShare(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if share < 1.0/HoursPerDay || share > 1 {
		t.Fatalf("peak share %v out of range", share)
	}
	if _, err := h.PeakHourShare(-1, 0); err == nil {
		t.Fatal("bad file accepted")
	}
	if _, err := h.PeakHourShare(0, 99); err == nil {
		t.Fatal("bad day accepted")
	}
}

func TestDailyFromHourlyValidation(t *testing.T) {
	tr, h := hourlyFixture(t)
	short := &Hourly{Days: h.Days, Reads: h.Reads[:5]}
	if _, err := DailyFromHourly(short, tr); err == nil {
		t.Fatal("file-count mismatch accepted")
	}
	ragged := &Hourly{Days: h.Days, Reads: append([][]float64{}, h.Reads...)}
	ragged.Reads[0] = ragged.Reads[0][:10]
	if _, err := DailyFromHourly(ragged, tr); err == nil {
		t.Fatal("ragged hours accepted")
	}
}
