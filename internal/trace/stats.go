package trace

import "math"

// Buckets are the paper's five daily-request-frequency variability classes
// (Fig. 2): σ ∈ [0,0.1), [0.1,0.3), [0.3,0.5), [0.5,0.8), [0.8,∞).
// σ here is the coefficient of variation SigmaCV — see DESIGN.md §5 for why
// the paper's unit-less buckets imply a mean-normalised deviation.
var Buckets = [5]struct {
	Lo, Hi float64
	Label  string
}{
	{0, 0.1, "0-0.1"},
	{0.1, 0.3, "0.1-0.3"},
	{0.3, 0.5, "0.3-0.5"},
	{0.5, 0.8, "0.5-0.8"},
	{0.8, math.Inf(1), ">0.8"},
}

// NumBuckets is the number of volatility classes.
const NumBuckets = 5

// PaperBucketShares are the population shares the paper measured on the
// Wikipedia trace (Fig. 2): 81.75 %, 9.93 %, 5.39 %, 2.3 %, 0.63 %.
var PaperBucketShares = [NumBuckets]float64{0.8175, 0.0993, 0.0539, 0.023, 0.0063}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Sigma implements Eq. 1 literally: the sample standard deviation (T−1
// denominator) of a file's daily request frequencies.
func Sigma(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// SigmaCV returns the coefficient of variation Sigma/Mean — the statistic
// the paper's unit-less 0–0.1 … >0.8 buckets are defined over. A series
// with zero mean has CV 0 by convention (a never-requested file is
// perfectly stationary).
func SigmaCV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Sigma(xs) / m
}

// BucketOf maps a coefficient of variation to its bucket index 0–4.
func BucketOf(cv float64) int {
	for i := 0; i < NumBuckets-1; i++ {
		if cv < Buckets[i].Hi {
			return i
		}
	}
	return NumBuckets - 1
}

// BucketLabel returns the human-readable range of bucket i.
func BucketLabel(i int) string { return Buckets[i].Label }

// SigmaHistogram computes, for each volatility bucket, how many files fall
// in it by realized read-frequency CV — the statistic plotted in Fig. 2.
func (tr *Trace) SigmaHistogram() [NumBuckets]int {
	var hist [NumBuckets]int
	for i := range tr.Reads {
		hist[BucketOf(SigmaCV(tr.Reads[i]))]++
	}
	return hist
}

// FileCV returns file i's realized read-frequency coefficient of variation.
func (tr *Trace) FileCV(i int) float64 { return SigmaCV(tr.Reads[i]) }

// BucketShares converts a histogram to population shares.
func BucketShares(hist [NumBuckets]int) [NumBuckets]float64 {
	total := 0
	for _, c := range hist {
		total += c
	}
	var out [NumBuckets]float64
	if total == 0 {
		return out
	}
	for i, c := range hist {
		out[i] = float64(c) / float64(total)
	}
	return out
}
