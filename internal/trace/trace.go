// Package trace models the workload MiniCost is evaluated on: per-file daily
// read/write request-frequency series over a multi-week horizon, file sizes,
// and concurrent-request groups.
//
// The paper drives its experiments with the Wikimedia pagecounts dump
// (~4 M articles, Jul 15 – Sep 15). That dump is substituted here by a
// seeded synthetic generator (see Generate) calibrated to the paper's own
// measurements of the trace; Trace also round-trips through CSV so a real
// pagecounts extract can be loaded instead.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Trace holds per-file daily request-frequency series plus the concurrency
// structure used by the aggregation enhancement.
//
// Frequencies are float64 expected daily counts: the paper re-formats the
// hourly trace into daily request frequencies, and the cost model (Eqs. 7–8)
// consumes frequencies, not individual events.
type Trace struct {
	Days  int
	Files []FileMeta
	// Reads[i][d] / Writes[i][d] are file i's read/write frequency on day d.
	Reads  [][]float64
	Writes [][]float64
	// Groups are sets of files that receive concurrent requests (files
	// linked to one webpage, §5.2). May be empty.
	Groups []Group
}

// FileMeta is the per-file static metadata.
type FileMeta struct {
	ID     int
	SizeGB float64
	// Bucket is the volatility class the generator *targeted* for this file
	// (0–4, see Buckets). Analysis code should use the realized SigmaCV
	// instead; Bucket exists for generator diagnostics.
	Bucket int
	// Datacenter the file lives in; empty means the single default
	// datacenter.
	Datacenter string
}

// Group is a set of files requested concurrently. Concurrent[d] is r_dc, the
// number of concurrent request events on day d that touch every member.
type Group struct {
	Members    []int
	Concurrent []float64
}

// NumFiles returns the number of files in the trace.
func (tr *Trace) NumFiles() int { return len(tr.Files) }

// Validate checks structural invariants: matching lengths, non-negative
// frequencies, group members in range, and concurrency bounded by every
// member's read frequency (a concurrent request to all members is in
// particular a request to each).
func (tr *Trace) Validate() error {
	if tr.Days <= 0 {
		return errors.New("trace: non-positive Days")
	}
	n := len(tr.Files)
	if len(tr.Reads) != n || len(tr.Writes) != n {
		return fmt.Errorf("trace: %d files but %d read and %d write series", n, len(tr.Reads), len(tr.Writes))
	}
	for i := 0; i < n; i++ {
		if tr.Files[i].SizeGB <= 0 {
			return fmt.Errorf("trace: file %d has non-positive size", i)
		}
		if len(tr.Reads[i]) != tr.Days || len(tr.Writes[i]) != tr.Days {
			return fmt.Errorf("trace: file %d series length != Days", i)
		}
		for d := 0; d < tr.Days; d++ {
			if tr.Reads[i][d] < 0 || tr.Writes[i][d] < 0 || math.IsNaN(tr.Reads[i][d]) || math.IsNaN(tr.Writes[i][d]) {
				return fmt.Errorf("trace: file %d day %d has invalid frequency", i, d)
			}
		}
	}
	for gi, g := range tr.Groups {
		if len(g.Members) < 2 {
			return fmt.Errorf("trace: group %d has fewer than 2 members", gi)
		}
		if len(g.Concurrent) != tr.Days {
			return fmt.Errorf("trace: group %d concurrency length != Days", gi)
		}
		seen := make(map[int]bool, len(g.Members))
		for _, m := range g.Members {
			if m < 0 || m >= n {
				return fmt.Errorf("trace: group %d member %d out of range", gi, m)
			}
			if seen[m] {
				return fmt.Errorf("trace: group %d repeats member %d", gi, m)
			}
			seen[m] = true
		}
		for d := 0; d < tr.Days; d++ {
			if g.Concurrent[d] < 0 {
				return fmt.Errorf("trace: group %d day %d negative concurrency", gi, d)
			}
			for _, m := range g.Members {
				if g.Concurrent[d] > tr.Reads[m][d]+1e-9 {
					return fmt.Errorf("trace: group %d day %d concurrency %v exceeds member %d reads %v",
						gi, d, g.Concurrent[d], m, tr.Reads[m][d])
				}
			}
		}
	}
	return nil
}

// Window returns a view of days [from, to) sharing the underlying series
// storage. Group concurrency is sliced alongside.
func (tr *Trace) Window(from, to int) (*Trace, error) {
	if from < 0 || to > tr.Days || from >= to {
		return nil, fmt.Errorf("trace: invalid window [%d,%d) of %d days", from, to, tr.Days)
	}
	out := &Trace{Days: to - from, Files: tr.Files}
	out.Reads = make([][]float64, len(tr.Reads))
	out.Writes = make([][]float64, len(tr.Writes))
	for i := range tr.Reads {
		out.Reads[i] = tr.Reads[i][from:to]
		out.Writes[i] = tr.Writes[i][from:to]
	}
	out.Groups = make([]Group, len(tr.Groups))
	for i, g := range tr.Groups {
		out.Groups[i] = Group{Members: g.Members, Concurrent: g.Concurrent[from:to]}
	}
	return out, nil
}

// Subset returns a new trace containing only the selected files (deep
// metadata copy, shared series slices). Groups whose members are not all
// selected are dropped; surviving groups are re-indexed.
func (tr *Trace) Subset(fileIdx []int) *Trace {
	remap := make(map[int]int, len(fileIdx))
	out := &Trace{Days: tr.Days}
	for newID, old := range fileIdx {
		remap[old] = newID
		meta := tr.Files[old]
		meta.ID = newID
		out.Files = append(out.Files, meta)
		out.Reads = append(out.Reads, tr.Reads[old])
		out.Writes = append(out.Writes, tr.Writes[old])
	}
	for _, g := range tr.Groups {
		members := make([]int, 0, len(g.Members))
		ok := true
		for _, m := range g.Members {
			nm, in := remap[m]
			if !in {
				ok = false
				break
			}
			members = append(members, nm)
		}
		if ok {
			out.Groups = append(out.Groups, Group{Members: members, Concurrent: g.Concurrent})
		}
	}
	return out
}

// SplitTrainTest partitions files into a training subset holding trainFrac
// of the files and a test subset with the rest, using the deterministic
// permutation perm (len == NumFiles). The paper trains on a random 80 % of
// files and tests on the remaining 20 % (§6.1).
func (tr *Trace) SplitTrainTest(trainFrac float64, perm []int) (train, test *Trace, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("trace: trainFrac %v outside (0,1)", trainFrac)
	}
	if len(perm) != tr.NumFiles() {
		return nil, nil, fmt.Errorf("trace: perm length %d != files %d", len(perm), tr.NumFiles())
	}
	cut := int(math.Round(trainFrac * float64(tr.NumFiles())))
	if cut == 0 || cut == tr.NumFiles() {
		return nil, nil, errors.New("trace: split leaves an empty side")
	}
	return tr.Subset(perm[:cut]), tr.Subset(perm[cut:]), nil
}

// TotalRequests returns the sum of read frequencies over all files and days.
func (tr *Trace) TotalRequests() float64 {
	total := 0.0
	for _, s := range tr.Reads {
		for _, v := range s {
			total += v
		}
	}
	return total
}
