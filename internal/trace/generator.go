package trace

import (
	"fmt"
	"math"

	"sort"

	"minicost/internal/par"
	"minicost/internal/rng"
)

// GenConfig parameterizes the synthetic Wikipedia-like workload generator.
// The zero value is not useful; start from DefaultGenConfig.
type GenConfig struct {
	NumFiles int
	Days     int
	Seed     uint64

	// MeanSizeGB is the mean of the Poisson-distributed file sizes. The
	// paper uses 100 MB [33]; sizes are drawn as Poisson(MeanSizeGB*1024) MB
	// with a 1 MB floor, constant over the horizon [43].
	MeanSizeGB float64

	// BucketShares is the target population share of each volatility class
	// (Fig. 2). Must sum to ~1.
	BucketShares [NumBuckets]float64

	// ZipfExponent shapes the popularity distribution across files;
	// BaseDailyReads is the population-mean daily read frequency per file.
	ZipfExponent   float64
	BaseDailyReads float64
	// MinDailyReads floors a file's base rate so that Poissonised counts do
	// not manufacture variability the volatility class didn't ask for.
	MinDailyReads float64

	// HeadFraction of files form a separate high-traffic "head" whose base
	// rates are log-uniform in [HeadRateLo, HeadRateHi] reads/day. A trace
	// of a few thousand files cannot span Wikipedia's full popularity range
	// with one Zipf: the real trace has both mega-hot pages (the regime
	// where request aggregation pays, Eq. 15) and millions of sub-crossover
	// tail pages (the regime where tiering pays). The mixture is a
	// downsampled stand-in preserving both regimes.
	HeadFraction float64
	HeadRateLo   float64
	HeadRateHi   float64

	// WriteFraction scales write frequencies relative to reads (web
	// workloads are read-dominated).
	WriteFraction float64

	// WeeklyAmplitude is the relative amplitude of the 7-day request cycle
	// the paper observes ([32]: "the cycle time of the request frequencies
	// for each data file is around one week").
	WeeklyAmplitude float64

	// GroupFraction of files participate in concurrent-request groups of
	// size between GroupSizeMin and GroupSizeMax; ConcurrencyLo/Hi bound the
	// per-group share of member requests that arrive concurrently.
	GroupFraction                float64
	GroupSizeMin, GroupSizeMax   int
	ConcurrencyLo, ConcurrencyHi float64

	// IntegerCounts Poisson-samples the daily frequencies instead of
	// emitting expected values. Off by default: expected values keep the
	// volatility classes exact (see DESIGN.md).
	IntegerCounts bool

	// Workers bounds generation parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// DefaultGenConfig returns the configuration used by the experiments:
// population shares from Fig. 2, 100 MB mean sizes, a ~2-month horizon.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		NumFiles:     2000,
		Days:         63, // 9 weeks ≈ the paper's two-month collection
		Seed:         1,
		MeanSizeGB:   0.1,
		BucketShares: PaperBucketShares,
		// Popularity: Zipf with mean 0.2 reads/day and a floor of 0.001.
		// Under Azure prices the hot-vs-cool crossover sits near 0.027
		// reads/day and hot-vs-archive near 0.021 (independent of file
		// size: storage and retrieval both scale per GB), so this spread
		// puts a substantial share of files on each side of the crossover
		// (and volatile files astride it) — the regime where tier
		// assignment actually matters, and the regime Wikipedia's long
		// tail of rarely-viewed articles lives in. A higher mean
		// degenerates the problem: every file trivially belongs in hot.
		ZipfExponent:    1.4,
		BaseDailyReads:  0.2,
		MinDailyReads:   0.001,
		HeadFraction:    0.02,
		HeadRateLo:      50,
		HeadRateHi:      5000,
		WriteFraction:   0.02,
		WeeklyAmplitude: 0.04,
		GroupFraction:   0.3,
		GroupSizeMin:    2,
		GroupSizeMax:    4,
		ConcurrencyLo:   0.3,
		ConcurrencyHi:   0.9,
	}
}

// Validate checks the configuration.
func (c *GenConfig) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("trace: NumFiles %d", c.NumFiles)
	case c.Days < 2:
		return fmt.Errorf("trace: Days %d (need >= 2 for Eq. 1)", c.Days)
	case c.MeanSizeGB <= 0:
		return fmt.Errorf("trace: MeanSizeGB %v", c.MeanSizeGB)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("trace: ZipfExponent %v", c.ZipfExponent)
	case c.BaseDailyReads <= 0:
		return fmt.Errorf("trace: BaseDailyReads %v", c.BaseDailyReads)
	case c.WriteFraction < 0:
		return fmt.Errorf("trace: WriteFraction %v", c.WriteFraction)
	case c.WeeklyAmplitude < 0 || c.WeeklyAmplitude >= 1:
		return fmt.Errorf("trace: WeeklyAmplitude %v outside [0,1)", c.WeeklyAmplitude)
	case c.GroupFraction < 0 || c.GroupFraction > 1:
		return fmt.Errorf("trace: GroupFraction %v", c.GroupFraction)
	case c.HeadFraction < 0 || c.HeadFraction > 1:
		return fmt.Errorf("trace: HeadFraction %v", c.HeadFraction)
	}
	if c.HeadFraction > 0 && (c.HeadRateLo <= 0 || c.HeadRateHi < c.HeadRateLo) {
		return fmt.Errorf("trace: head rate bounds [%v,%v]", c.HeadRateLo, c.HeadRateHi)
	}
	if c.GroupFraction > 0 {
		if c.GroupSizeMin < 2 || c.GroupSizeMax < c.GroupSizeMin {
			return fmt.Errorf("trace: group size bounds [%d,%d]", c.GroupSizeMin, c.GroupSizeMax)
		}
		if c.ConcurrencyLo < 0 || c.ConcurrencyHi > 1 || c.ConcurrencyLo > c.ConcurrencyHi {
			return fmt.Errorf("trace: concurrency bounds [%v,%v]", c.ConcurrencyLo, c.ConcurrencyHi)
		}
	}
	sum := 0.0
	for _, s := range c.BucketShares {
		if s < 0 {
			return fmt.Errorf("trace: negative bucket share")
		}
		sum += s
	}
	if math.Abs(sum-1) > 0.01 {
		return fmt.Errorf("trace: bucket shares sum to %v, want 1", sum)
	}
	return nil
}

// burst process constants: high-volatility files get a persistent two-state
// regime component so they are genuinely non-stationary (hard for ARIMA,
// matching Fig. 4), not merely noisy.
const (
	burstStationaryProb = 0.10 // long-run fraction of days in the burst state
	burstExitProb       = 0.40 // P(burst -> normal) per day
)

// Generate produces a deterministic synthetic trace. The per-file process is
//
//	reads[d] = base · weekly(d) · noise(d) · regime(d)
//
// with base rates Zipf-distributed, weekly a sinusoid with period 7,
// noise i.i.d. log-normal, and regime a persistent two-state Markov burst
// process used only for the two most volatile classes. Each file's target
// coefficient of variation is drawn uniformly inside its class's σ range and
// the noise/regime parameters are solved to hit it in expectation.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	zipf := rng.NewZipf(root.Split(0xA11CE), cfg.ZipfExponent, cfg.NumFiles)

	// Zipf weights normalised so the population mean equals BaseDailyReads.
	n := cfg.NumFiles
	tr := &Trace{
		Days:   cfg.Days,
		Files:  make([]FileMeta, n),
		Reads:  make([][]float64, n),
		Writes: make([][]float64, n),
	}

	// Class assignment: deterministic proportional allocation (largest
	// remainder) so realized shares match targets even for small N.
	classOf := allocateClasses(cfg.BucketShares, n, root.Split(0xC1A55))

	// Popularity ranks: a random permutation decouples rank from file id and
	// from volatility class.
	rankPerm := root.Split(0x7E4).Perm(n)

	// Head files (see HeadFraction): chosen independently of class and rank.
	isHead := make([]bool, n)
	headCount := int(math.Round(cfg.HeadFraction * float64(n)))
	for _, idx := range root.Split(0x4EAD).Perm(n)[:headCount] {
		isHead[idx] = true
	}

	par.For(n, cfg.Workers, func(i int) {
		r := root.Split(uint64(i) + 0x5EED0001)
		meta := &tr.Files[i]
		meta.ID = i
		meta.Bucket = classOf[i]

		// Poisson file size in MB, floored at 1 MB (§3.1).
		sizeMB := r.Poisson(cfg.MeanSizeGB * 1024)
		if sizeMB < 1 {
			sizeMB = 1
		}
		meta.SizeGB = float64(sizeMB) / 1024

		var base float64
		if isHead[i] {
			// Log-uniform over the head range.
			base = cfg.HeadRateLo * math.Exp(r.Float64()*math.Log(cfg.HeadRateHi/cfg.HeadRateLo))
		} else {
			base = cfg.BaseDailyReads * zipfRate(zipf, rankPerm[i]+1, n)
			if base < cfg.MinDailyReads {
				base = cfg.MinDailyReads
			}
		}

		bucket := Buckets[classOf[i]]
		hi := bucket.Hi
		if math.IsInf(hi, 1) {
			hi = 2.0 // cap the open-ended >0.8 class at CV 2
		}
		targetCV := bucket.Lo + r.Float64()*(hi-bucket.Lo)

		tr.Reads[i] = synthSeries(r, cfg, base, targetCV, classOf[i])
		tr.Writes[i] = make([]float64, cfg.Days)
		wr := r.Split(0x22)
		for d := 0; d < cfg.Days; d++ {
			w := cfg.WriteFraction * tr.Reads[i][d] * wr.LogNormal(0, 0.2)
			if cfg.IntegerCounts {
				w = float64(wr.Poisson(w))
			}
			tr.Writes[i][d] = w
		}
	})

	if cfg.GroupFraction > 0 {
		tr.Groups = buildGroups(tr, cfg, root.Split(0x96011))
	}
	return tr, nil
}

// zipfRate converts a popularity rank to a rate multiplier with population
// mean 1 (so BaseDailyReads is the mean per-file rate).
func zipfRate(z *rng.Zipf, rank, n int) float64 {
	return z.Weight(rank) * float64(n)
}

// synthSeries generates one file's daily read-frequency series.
func synthSeries(r *rng.RNG, cfg GenConfig, base, targetCV float64, class int) []float64 {
	// Variance budget: the weekly sinusoid contributes CV ≈ A/√2; the
	// remainder is split between log-normal noise and (for classes 3–4, i.e.
	// σ ≥ 0.5) a persistent burst regime, 50/50 in variance terms.
	seasonalCV := cfg.WeeklyAmplitude / math.Sqrt2
	residVar := targetCV*targetCV - seasonalCV*seasonalCV
	if residVar < 0 {
		residVar = 0
	}
	burstVar := 0.0
	if class >= 3 {
		burstVar = residVar / 2
	}
	noiseVar := residVar - burstVar
	// Log-normal with CV² = v has sigma = sqrt(ln(1+v)).
	noiseSigma := math.Sqrt(math.Log(1 + noiseVar))

	// Two-point burst process with mean 1, variance burstVar and persistence.
	p := burstStationaryProb
	spread := math.Sqrt(burstVar / (p * (1 - p)))
	burstHigh := 1 + (1-p)*spread
	burstLow := 1 - p*spread
	if burstLow < 0.05 {
		burstLow = 0.05
	}
	enterProb := burstExitProb * p / (1 - p)

	phase := r.Float64() * 2 * math.Pi
	inBurst := r.Float64() < p
	out := make([]float64, cfg.Days)
	for d := 0; d < cfg.Days; d++ {
		weekly := 1 + cfg.WeeklyAmplitude*math.Sin(2*math.Pi*float64(d)/7+phase)
		noise := 1.0
		if noiseSigma > 0 {
			noise = r.LogNormal(-noiseSigma*noiseSigma/2, noiseSigma)
		}
		regime := 1.0
		if burstVar > 0 {
			if inBurst {
				regime = burstHigh
				if r.Float64() < burstExitProb {
					inBurst = false
				}
			} else {
				regime = burstLow
				if r.Float64() < enterProb {
					inBurst = true
				}
			}
		}
		v := base * weekly * noise * regime
		if cfg.IntegerCounts {
			v = float64(r.Poisson(v))
		}
		out[d] = v
	}
	return out
}

// allocateClasses deterministically assigns n files to volatility classes
// with counts proportional to shares (largest-remainder rounding), then
// shuffles the assignment.
func allocateClasses(shares [NumBuckets]float64, n int, r *rng.RNG) []int {
	counts := make([]int, NumBuckets)
	frac := make([]float64, NumBuckets)
	total := 0
	for i, s := range shares {
		exact := s * float64(n)
		counts[i] = int(exact)
		frac[i] = exact - float64(counts[i])
		total += counts[i]
	}
	for total < n {
		best := 0
		for i := 1; i < NumBuckets; i++ {
			if frac[i] > frac[best] {
				best = i
			}
		}
		counts[best]++
		frac[best] = -1
		total++
	}
	out := make([]int, 0, n)
	for class, c := range counts {
		for k := 0; k < c; k++ {
			out = append(out, class)
		}
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// buildGroups partitions a GroupFraction subset of files into concurrency
// groups. Members are grouped adjacent in popularity (the assets of one
// webpage see similar traffic), so head groups carry enough concurrency to
// clear Eq. 15 while tail groups do not — giving the aggregator a real
// selection problem. Daily concurrency is a share of the minimum member
// read frequency so the Validate invariant (concurrent ≤ each member's
// reads) holds by construction.
func buildGroups(tr *Trace, cfg GenConfig, r *rng.RNG) []Group {
	n := tr.NumFiles()
	pool := r.Perm(n)[:int(cfg.GroupFraction*float64(n))]
	sort.Slice(pool, func(a, b int) bool {
		return Mean(tr.Reads[pool[a]]) > Mean(tr.Reads[pool[b]])
	})
	var groups []Group
	for len(pool) >= cfg.GroupSizeMin {
		size := cfg.GroupSizeMin
		if cfg.GroupSizeMax > cfg.GroupSizeMin {
			size += r.Intn(cfg.GroupSizeMax - cfg.GroupSizeMin + 1)
		}
		if size > len(pool) {
			size = len(pool)
		}
		members := append([]int(nil), pool[:size]...)
		pool = pool[size:]
		share := cfg.ConcurrencyLo + r.Float64()*(cfg.ConcurrencyHi-cfg.ConcurrencyLo)
		conc := make([]float64, tr.Days)
		for d := 0; d < tr.Days; d++ {
			minReads := math.Inf(1)
			for _, m := range members {
				if tr.Reads[m][d] < minReads {
					minReads = tr.Reads[m][d]
				}
			}
			conc[d] = share * minReads
		}
		groups = append(groups, Group{Members: members, Concurrent: conc})
	}
	return groups
}
