// Package costmodel implements the MiniCost payment model, Eqs. 5–9 of the
// paper: the total cost C = Cs + Cc + Cr + Cw, where
//
//	Cs = Σ X_{d,p} · u_p · D_d              storage        (Eq. 6)
//	Cr = Σ F_r · (u_rf + u_rs · D_d)        read requests  (Eq. 7)
//	Cw = Σ F_w · (u_wf + u_ws · D_d)        write requests (Eq. 8)
//	Cc = Σ Θ_d · u_tran · D_d               tier changes   (Eq. 9)
//
// Prices come from a pricing.Policy; storage is prorated per day (u_p is a
// $/GB-month list price). All frequencies are daily counts; the per-day
// granularity matches the paper's daily billing ("the payment made to CSP is
// calculated by days", §6.1).
package costmodel

import (
	"errors"
	"fmt"

	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Breakdown is one cost observation split into the paper's four components.
type Breakdown struct {
	Storage    float64 // Cs
	Read       float64 // Cr
	Write      float64 // Cw
	Transition float64 // Cc
}

// Total returns Cs + Cc + Cr + Cw (Eq. 5).
func (b Breakdown) Total() float64 { return b.Storage + b.Read + b.Write + b.Transition }

// Add returns the componentwise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Storage:    b.Storage + o.Storage,
		Read:       b.Read + o.Read,
		Write:      b.Write + o.Write,
		Transition: b.Transition + o.Transition,
	}
}

// String renders the breakdown for reports.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=$%.4f (storage=$%.4f read=$%.4f write=$%.4f transition=$%.4f)",
		b.Total(), b.Storage, b.Read, b.Write, b.Transition)
}

// Model evaluates costs under one price policy.
type Model struct {
	Policy *pricing.Policy
	// ChargeRetention additionally bills Azure-style early-deletion when a
	// file leaves a tier before the tier's MinRetentionDays (an extension
	// beyond Eq. 9; off in all paper reproductions).
	ChargeRetention bool

	// flat caches the policy's per-tier price coefficients (populated by
	// New; Coeffs computes them on demand for literal Models).
	flat *TierCoeffs
}

// New returns a model over the given policy.
func New(p *pricing.Policy) *Model {
	c := NewTierCoeffs(p)
	return &Model{Policy: p, flat: &c}
}

// TierCoeffs holds one policy's per-tier price coefficients in flat arrays:
// storage $/GB-day, read $/op, retrieval $/GB, write $/op, ingress $/GB, and
// the transition $/GB fee. The hot loops (greedy, the Optimal DP, PlanCost)
// index these arrays instead of re-deriving unit prices from the Policy per
// file-day.
type TierCoeffs struct {
	StorPerGBDay [pricing.NumTiers]float64
	ReadOp       [pricing.NumTiers]float64
	RetrPerGB    [pricing.NumTiers]float64
	WriteOp      [pricing.NumTiers]float64
	IngrPerGB    [pricing.NumTiers]float64
	TransPerGB   float64
}

// NewTierCoeffs flattens a policy's price schedule.
func NewTierCoeffs(p *pricing.Policy) TierCoeffs {
	var c TierCoeffs
	for t := 0; t < pricing.NumTiers; t++ {
		tier := pricing.Tier(t)
		c.StorPerGBDay[t] = p.StoragePerGBDay(tier)
		c.ReadOp[t] = p.ReadOpPrice(tier)
		c.RetrPerGB[t] = p.Tiers[t].RetrievalPerGB
		c.WriteOp[t] = p.WriteOpPrice(tier)
		c.IngrPerGB[t] = p.Tiers[t].IngressPerGB
	}
	c.TransPerGB = p.TransitionPerGB
	return c
}

// Coeffs returns the model's flat price coefficients.
func (m *Model) Coeffs() TierCoeffs {
	if m.flat != nil {
		return *m.flat
	}
	return NewTierCoeffs(m.Policy)
}

// FileCoeffs are one file's affine per-day cost coefficients: with the file
// size fixed, the cost of serving one day in tier t is
//
//	Stor[t] + reads·Read[t] + writes·Write[t]
//
// plus Trans when the day starts with a tier change. Deriving them once per
// file turns every per-day pricing into three multiply-adds, and each term
// is computed with exactly the arithmetic of StorageDay/ReadCost/WriteCost/
// TransitionCost, so kernels built on FileCoeffs are bitwise identical to
// the per-component Day path.
type FileCoeffs struct {
	Stor  [pricing.NumTiers]float64 // storage $/day (Eq. 6 prorated)
	Read  [pricing.NumTiers]float64 // $/read op incl. retrieval (Eq. 7)
	Write [pricing.NumTiers]float64 // $/write op incl. ingress (Eq. 8)
	Trans float64                   // tier-change fee (Eq. 9)
}

// FileCoeffs derives the affine day-cost coefficients of a file of sizeGB.
func (m *Model) FileCoeffs(sizeGB float64) FileCoeffs {
	tc := m.Coeffs()
	var c FileCoeffs
	for t := 0; t < pricing.NumTiers; t++ {
		c.Stor[t] = tc.StorPerGBDay[t] * sizeGB
		c.Read[t] = tc.ReadOp[t] + tc.RetrPerGB[t]*sizeGB
		c.Write[t] = tc.WriteOp[t] + tc.IngrPerGB[t]*sizeGB
	}
	c.Trans = tc.TransPerGB * sizeGB
	return c
}

// ServeCost is one day's serving cost (storage + operations, no transition)
// in tier t — Day(t, t, …).Total() without the trailing zero transition.
func (c *FileCoeffs) ServeCost(t pricing.Tier, reads, writes float64) float64 {
	return c.Stor[t] + reads*c.Read[t] + writes*c.Write[t]
}

// Transition is the tier-change fee; zero when from == to.
func (c *FileCoeffs) Transition(from, to pricing.Tier) float64 {
	if from == to {
		return 0
	}
	return c.Trans
}

// DayTotal is one full day's cost including a possible tier change, grouped
// exactly like Breakdown.Total(): ((storage+read)+write)+transition.
func (c *FileCoeffs) DayTotal(prev, t pricing.Tier, reads, writes float64) float64 {
	return c.ServeCost(t, reads, writes) + c.Transition(prev, t)
}

// StorageDay returns one day of storage cost for sizeGB bytes in tier (Eq. 6
// prorated daily).
func (m *Model) StorageDay(tier pricing.Tier, sizeGB float64) float64 {
	return m.Policy.StoragePerGBDay(tier) * sizeGB
}

// ReadCost returns the cost of `reads` read operations against a file of
// sizeGB in tier (Eq. 7).
func (m *Model) ReadCost(tier pricing.Tier, sizeGB, reads float64) float64 {
	tp := m.Policy.Tiers[tier]
	return reads * (m.Policy.ReadOpPrice(tier) + tp.RetrievalPerGB*sizeGB)
}

// WriteCost returns the cost of `writes` write operations (Eq. 8).
func (m *Model) WriteCost(tier pricing.Tier, sizeGB, writes float64) float64 {
	tp := m.Policy.Tiers[tier]
	return writes * (m.Policy.WriteOpPrice(tier) + tp.IngressPerGB*sizeGB)
}

// TransitionCost returns the one-time cost of moving a file of sizeGB
// between tiers (Eq. 9); zero when from == to.
func (m *Model) TransitionCost(from, to pricing.Tier, sizeGB float64) float64 {
	if from == to {
		return 0
	}
	return m.Policy.TransitionPerGB * sizeGB
}

// Day computes one file-day of cost: the file spent the day in `tier`,
// having been in `prev` the day before (a tier change is billed when they
// differ), receiving the given read and write frequencies.
func (m *Model) Day(prev, tier pricing.Tier, sizeGB, reads, writes float64) Breakdown {
	return Breakdown{
		Storage:    m.StorageDay(tier, sizeGB),
		Read:       m.ReadCost(tier, sizeGB, reads),
		Write:      m.WriteCost(tier, sizeGB, writes),
		Transition: m.TransitionCost(prev, tier, sizeGB),
	}
}

// Plan is a per-day tier assignment for one file.
type Plan []pricing.Tier

// Uniform returns a plan keeping one tier for the given number of days.
func Uniform(tier pricing.Tier, days int) Plan {
	p := make(Plan, days)
	for i := range p {
		p[i] = tier
	}
	return p
}

// Changes counts the tier transitions inside the plan starting from initial.
func (p Plan) Changes(initial pricing.Tier) int {
	n := 0
	prev := initial
	for _, t := range p {
		if t != prev {
			n++
		}
		prev = t
	}
	return n
}

// ErrPlanLength reports a plan whose length disagrees with the series.
var ErrPlanLength = errors.New("costmodel: plan length != number of days")

// PlanCost evaluates a per-file plan against its daily read/write series.
// initial is the tier the file occupied before day 0; a change on day 0 is
// billed like any other. Retention billing (if enabled) charges the
// remaining-days balance of the source tier's minimum retention whenever a
// file leaves a tier early, matching Azure's early-deletion rule.
func (m *Model) PlanCost(initial pricing.Tier, plan Plan, sizeGB float64, reads, writes []float64) (Breakdown, error) {
	if len(plan) != len(reads) || len(plan) != len(writes) {
		return Breakdown{}, ErrPlanLength
	}
	c := m.FileCoeffs(sizeGB)
	return m.planCost(&c, initial, plan, reads, writes, nil), nil
}

// PlanCumCosts prices a plan like PlanCost and additionally records, in
// cum[d], the cumulative Breakdown of days 0..d. Because the kernel
// accumulates components in day order, cum[d-1] is bitwise identical to
// PlanCost over the plan's first d days — the prefix sums the horizon-sweep
// evaluation engine reads instead of re-pricing every window.
func (m *Model) PlanCumCosts(initial pricing.Tier, plan Plan, sizeGB float64, reads, writes []float64, cum []Breakdown) (Breakdown, error) {
	if len(plan) != len(reads) || len(plan) != len(writes) || len(cum) != len(plan) {
		return Breakdown{}, ErrPlanLength
	}
	c := m.FileCoeffs(sizeGB)
	return m.planCost(&c, initial, plan, reads, writes, cum), nil
}

// planCost is the fused pricing kernel behind PlanCost and PlanCumCosts: one
// flat loop over the plan accumulating the four components as scalars, with
// per-day costs read off the file's affine coefficients. Lengths are the
// caller's responsibility. When cum is non-nil it receives the running sums
// after every day.
func (m *Model) planCost(c *FileCoeffs, initial pricing.Tier, plan Plan, reads, writes []float64, cum []Breakdown) Breakdown {
	var storage, read, write, transition float64
	prev := initial
	daysInTier := 0
	for d, tier := range plan {
		storage += c.Stor[tier]
		read += reads[d] * c.Read[tier]
		write += writes[d] * c.Write[tier]
		if tier != prev {
			tc := c.Trans
			if m.ChargeRetention {
				if min := m.Policy.Tiers[prev].MinRetentionDays; daysInTier < min {
					// Bill the unserved remainder as storage-days of the source tier.
					tc += float64(min-daysInTier) * c.Stor[prev]
				}
			}
			transition += tc
			daysInTier = 1
		} else {
			daysInTier++
		}
		prev = tier
		if cum != nil {
			cum[d] = Breakdown{Storage: storage, Read: read, Write: write, Transition: transition}
		}
	}
	return Breakdown{Storage: storage, Read: read, Write: write, Transition: transition}
}

// Assignment is a full data-storage-type assignment plan: one Plan per file
// (the paper's action a = (a_0 … a_N)).
type Assignment []Plan

// NewAssignment allocates a files×days assignment whose plans share one
// contiguous tier arena: one allocation instead of one per file, and the
// per-file plans stay cache-adjacent. Plans are full slices (capacity capped
// at days) so appending to one cannot bleed into its neighbour.
func NewAssignment(files, days int) Assignment {
	backing := make([]pricing.Tier, files*days)
	out := make(Assignment, files)
	for i := range out {
		out[i] = Plan(backing[i*days : (i+1)*days : (i+1)*days])
	}
	return out
}

// UniformAssignment assigns every file the same constant tier.
func UniformAssignment(tier pricing.Tier, files, days int) Assignment {
	out := NewAssignment(files, days)
	if len(out) == 0 {
		return out
	}
	first := out[0]
	for d := range first {
		first[d] = tier
	}
	for _, p := range out[1:] {
		copy(p, first)
	}
	return out
}

// TraceCost evaluates an assignment against a trace, in parallel across
// files. initial gives each file's day-(-1) tier; a nil initial means every
// file starts in Hot. The returned slice holds each file's breakdown; sum
// them with SumBreakdowns for the total bill.
func (m *Model) TraceCost(tr *trace.Trace, asg Assignment, initial []pricing.Tier, workers int) ([]Breakdown, error) {
	n := tr.NumFiles()
	if len(asg) != n {
		return nil, fmt.Errorf("costmodel: assignment covers %d files, trace has %d", len(asg), n)
	}
	if initial != nil && len(initial) != n {
		return nil, fmt.Errorf("costmodel: initial tiers cover %d files, trace has %d", len(initial), n)
	}
	for i := range asg {
		if len(asg[i]) != tr.Days {
			return nil, fmt.Errorf("costmodel: file %d: %w", i, ErrPlanLength)
		}
	}
	out := make([]Breakdown, n)
	par.For(n, workers, func(i int) {
		init := pricing.Hot
		if initial != nil {
			init = initial[i]
		}
		// Lengths were validated above, so PlanCost cannot fail here.
		bd, _ := m.PlanCost(init, asg[i], tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i])
		out[i] = bd
	})
	return out, nil
}

// SumBreakdowns folds per-file breakdowns into a single bill.
func SumBreakdowns(bds []Breakdown) Breakdown {
	var total Breakdown
	for _, b := range bds {
		total = total.Add(b)
	}
	return total
}
