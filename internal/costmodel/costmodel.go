// Package costmodel implements the MiniCost payment model, Eqs. 5–9 of the
// paper: the total cost C = Cs + Cc + Cr + Cw, where
//
//	Cs = Σ X_{d,p} · u_p · D_d              storage        (Eq. 6)
//	Cr = Σ F_r · (u_rf + u_rs · D_d)        read requests  (Eq. 7)
//	Cw = Σ F_w · (u_wf + u_ws · D_d)        write requests (Eq. 8)
//	Cc = Σ Θ_d · u_tran · D_d               tier changes   (Eq. 9)
//
// Prices come from a pricing.Policy; storage is prorated per day (u_p is a
// $/GB-month list price). All frequencies are daily counts; the per-day
// granularity matches the paper's daily billing ("the payment made to CSP is
// calculated by days", §6.1).
package costmodel

import (
	"errors"
	"fmt"

	"minicost/internal/par"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Breakdown is one cost observation split into the paper's four components.
type Breakdown struct {
	Storage    float64 // Cs
	Read       float64 // Cr
	Write      float64 // Cw
	Transition float64 // Cc
}

// Total returns Cs + Cc + Cr + Cw (Eq. 5).
func (b Breakdown) Total() float64 { return b.Storage + b.Read + b.Write + b.Transition }

// Add returns the componentwise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Storage:    b.Storage + o.Storage,
		Read:       b.Read + o.Read,
		Write:      b.Write + o.Write,
		Transition: b.Transition + o.Transition,
	}
}

// String renders the breakdown for reports.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=$%.4f (storage=$%.4f read=$%.4f write=$%.4f transition=$%.4f)",
		b.Total(), b.Storage, b.Read, b.Write, b.Transition)
}

// Model evaluates costs under one price policy.
type Model struct {
	Policy *pricing.Policy
	// ChargeRetention additionally bills Azure-style early-deletion when a
	// file leaves a tier before the tier's MinRetentionDays (an extension
	// beyond Eq. 9; off in all paper reproductions).
	ChargeRetention bool
}

// New returns a model over the given policy.
func New(p *pricing.Policy) *Model { return &Model{Policy: p} }

// StorageDay returns one day of storage cost for sizeGB bytes in tier (Eq. 6
// prorated daily).
func (m *Model) StorageDay(tier pricing.Tier, sizeGB float64) float64 {
	return m.Policy.StoragePerGBDay(tier) * sizeGB
}

// ReadCost returns the cost of `reads` read operations against a file of
// sizeGB in tier (Eq. 7).
func (m *Model) ReadCost(tier pricing.Tier, sizeGB, reads float64) float64 {
	tp := m.Policy.Tiers[tier]
	return reads * (m.Policy.ReadOpPrice(tier) + tp.RetrievalPerGB*sizeGB)
}

// WriteCost returns the cost of `writes` write operations (Eq. 8).
func (m *Model) WriteCost(tier pricing.Tier, sizeGB, writes float64) float64 {
	tp := m.Policy.Tiers[tier]
	return writes * (m.Policy.WriteOpPrice(tier) + tp.IngressPerGB*sizeGB)
}

// TransitionCost returns the one-time cost of moving a file of sizeGB
// between tiers (Eq. 9); zero when from == to.
func (m *Model) TransitionCost(from, to pricing.Tier, sizeGB float64) float64 {
	if from == to {
		return 0
	}
	return m.Policy.TransitionPerGB * sizeGB
}

// Day computes one file-day of cost: the file spent the day in `tier`,
// having been in `prev` the day before (a tier change is billed when they
// differ), receiving the given read and write frequencies.
func (m *Model) Day(prev, tier pricing.Tier, sizeGB, reads, writes float64) Breakdown {
	return Breakdown{
		Storage:    m.StorageDay(tier, sizeGB),
		Read:       m.ReadCost(tier, sizeGB, reads),
		Write:      m.WriteCost(tier, sizeGB, writes),
		Transition: m.TransitionCost(prev, tier, sizeGB),
	}
}

// Plan is a per-day tier assignment for one file.
type Plan []pricing.Tier

// Uniform returns a plan keeping one tier for the given number of days.
func Uniform(tier pricing.Tier, days int) Plan {
	p := make(Plan, days)
	for i := range p {
		p[i] = tier
	}
	return p
}

// Changes counts the tier transitions inside the plan starting from initial.
func (p Plan) Changes(initial pricing.Tier) int {
	n := 0
	prev := initial
	for _, t := range p {
		if t != prev {
			n++
		}
		prev = t
	}
	return n
}

// ErrPlanLength reports a plan whose length disagrees with the series.
var ErrPlanLength = errors.New("costmodel: plan length != number of days")

// PlanCost evaluates a per-file plan against its daily read/write series.
// initial is the tier the file occupied before day 0; a change on day 0 is
// billed like any other. Retention billing (if enabled) charges the
// remaining-days balance of the source tier's minimum retention whenever a
// file leaves a tier early, matching Azure's early-deletion rule.
func (m *Model) PlanCost(initial pricing.Tier, plan Plan, sizeGB float64, reads, writes []float64) (Breakdown, error) {
	if len(plan) != len(reads) || len(plan) != len(writes) {
		return Breakdown{}, ErrPlanLength
	}
	var total Breakdown
	prev := initial
	daysInTier := 0
	for d, tier := range plan {
		bd := m.Day(prev, tier, sizeGB, reads[d], writes[d])
		if m.ChargeRetention && tier != prev {
			if min := m.Policy.Tiers[prev].MinRetentionDays; daysInTier < min {
				// Bill the unserved remainder as storage-days of the source tier.
				bd.Transition += float64(min-daysInTier) * m.StorageDay(prev, sizeGB)
			}
			daysInTier = 0
		}
		if tier == prev {
			daysInTier++
		} else {
			daysInTier = 1
		}
		total = total.Add(bd)
		prev = tier
	}
	return total, nil
}

// Assignment is a full data-storage-type assignment plan: one Plan per file
// (the paper's action a = (a_0 … a_N)).
type Assignment []Plan

// UniformAssignment assigns every file the same constant tier.
func UniformAssignment(tier pricing.Tier, files, days int) Assignment {
	out := make(Assignment, files)
	for i := range out {
		out[i] = Uniform(tier, days)
	}
	return out
}

// TraceCost evaluates an assignment against a trace, in parallel across
// files. initial gives each file's day-(-1) tier; a nil initial means every
// file starts in Hot. The returned slice holds each file's breakdown; sum
// them with SumBreakdowns for the total bill.
func (m *Model) TraceCost(tr *trace.Trace, asg Assignment, initial []pricing.Tier, workers int) ([]Breakdown, error) {
	n := tr.NumFiles()
	if len(asg) != n {
		return nil, fmt.Errorf("costmodel: assignment covers %d files, trace has %d", len(asg), n)
	}
	if initial != nil && len(initial) != n {
		return nil, fmt.Errorf("costmodel: initial tiers cover %d files, trace has %d", len(initial), n)
	}
	for i := range asg {
		if len(asg[i]) != tr.Days {
			return nil, fmt.Errorf("costmodel: file %d: %w", i, ErrPlanLength)
		}
	}
	out := make([]Breakdown, n)
	par.For(n, workers, func(i int) {
		init := pricing.Hot
		if initial != nil {
			init = initial[i]
		}
		// Lengths were validated above, so PlanCost cannot fail here.
		bd, _ := m.PlanCost(init, asg[i], tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i])
		out[i] = bd
	})
	return out, nil
}

// SumBreakdowns folds per-file breakdowns into a single bill.
func SumBreakdowns(bds []Breakdown) Breakdown {
	var total Breakdown
	for _, b := range bds {
		total = total.Add(b)
	}
	return total
}
