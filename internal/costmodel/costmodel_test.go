package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"minicost/internal/pricing"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

func model() *Model { return New(pricing.Azure()) }

func TestStorageDayMatchesEq6(t *testing.T) {
	m := model()
	// 100 MB in hot for one day: 0.0184/30.44 * 0.1
	want := 0.0184 / pricing.DaysPerMonth * 0.1
	if got := m.StorageDay(pricing.Hot, 0.1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("StorageDay = %v, want %v", got, want)
	}
}

func TestReadCostMatchesEq7(t *testing.T) {
	m := model()
	// 5000 reads of a 0.2 GB cool file: 5000*(0.01/10000 + 0.01*0.2)
	want := 5000 * (0.01/10000 + 0.01*0.2)
	if got := m.ReadCost(pricing.Cool, 0.2, 5000); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ReadCost = %v, want %v", got, want)
	}
	// Hot retrieval is free: only the op charge remains.
	want = 5000 * (0.0044 / 10000)
	if got := m.ReadCost(pricing.Hot, 0.2, 5000); math.Abs(got-want) > 1e-12 {
		t.Fatalf("hot ReadCost = %v, want %v", got, want)
	}
}

func TestWriteCostMatchesEq8(t *testing.T) {
	m := model()
	want := 100 * (0.10 / 10000) // cool writes, no ingress fee in default policy
	if got := m.WriteCost(pricing.Cool, 0.2, 100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WriteCost = %v, want %v", got, want)
	}
}

func TestTransitionCostMatchesEq9(t *testing.T) {
	m := model()
	if got := m.TransitionCost(pricing.Hot, pricing.Hot, 1); got != 0 {
		t.Fatalf("same-tier transition cost %v", got)
	}
	want := 0.0002 * 0.5
	if got := m.TransitionCost(pricing.Hot, pricing.Archive, 0.5); math.Abs(got-want) > 1e-15 {
		t.Fatalf("transition cost %v, want %v", got, want)
	}
}

func TestDayIsSumOfComponents(t *testing.T) {
	m := model()
	bd := m.Day(pricing.Hot, pricing.Cool, 0.1, 100, 5)
	if bd.Storage != m.StorageDay(pricing.Cool, 0.1) ||
		bd.Read != m.ReadCost(pricing.Cool, 0.1, 100) ||
		bd.Write != m.WriteCost(pricing.Cool, 0.1, 5) ||
		bd.Transition != m.TransitionCost(pricing.Hot, pricing.Cool, 0.1) {
		t.Fatalf("Day breakdown inconsistent: %v", bd)
	}
	sum := bd.Storage + bd.Read + bd.Write + bd.Transition
	if math.Abs(bd.Total()-sum) > 1e-15 {
		t.Fatal("Total != component sum")
	}
}

func TestBreakdownNonNegativeProperty(t *testing.T) {
	m := model()
	f := func(pt, ct uint8, size, reads, writes uint16) bool {
		prev := pricing.Tier(pt % pricing.NumTiers)
		cur := pricing.Tier(ct % pricing.NumTiers)
		bd := m.Day(prev, cur, float64(size)/100+0.001, float64(reads), float64(writes))
		return bd.Storage >= 0 && bd.Read >= 0 && bd.Write >= 0 && bd.Transition >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCostAdditiveOverDays(t *testing.T) {
	m := model()
	reads := []float64{100, 2000, 30, 500}
	writes := []float64{1, 2, 3, 4}
	plan := Plan{pricing.Hot, pricing.Cool, pricing.Cool, pricing.Hot}
	got, err := m.PlanCost(pricing.Hot, plan, 0.1, reads, writes)
	if err != nil {
		t.Fatal(err)
	}
	var want Breakdown
	prev := pricing.Hot
	for d := range plan {
		want = want.Add(m.Day(prev, plan[d], 0.1, reads[d], writes[d]))
		prev = plan[d]
	}
	if math.Abs(got.Total()-want.Total()) > 1e-12 {
		t.Fatalf("PlanCost %v != day sum %v", got, want)
	}
	// Two transitions in this plan (hot->cool, cool->hot).
	if n := plan.Changes(pricing.Hot); n != 2 {
		t.Fatalf("Changes = %d, want 2", n)
	}
	if math.Abs(got.Transition-2*0.0002*0.1) > 1e-12 {
		t.Fatalf("transition total %v", got.Transition)
	}
}

func TestPlanCostDay0Change(t *testing.T) {
	m := model()
	plan := Uniform(pricing.Cool, 3)
	bd, err := m.PlanCost(pricing.Hot, plan, 0.1, []float64{0, 0, 0}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Transition-0.0002*0.1) > 1e-12 {
		t.Fatalf("day-0 transition missing: %v", bd.Transition)
	}
}

func TestPlanCostLengthMismatch(t *testing.T) {
	m := model()
	if _, err := m.PlanCost(pricing.Hot, Uniform(pricing.Hot, 3), 0.1, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRetentionBilling(t *testing.T) {
	m := model()
	m.ChargeRetention = true
	// Stay in cool 2 days then leave; cool minimum is 30 days -> bill 28
	// remaining days of cool storage on exit.
	plan := Plan{pricing.Cool, pricing.Cool, pricing.Hot}
	zero := []float64{0, 0, 0}
	bd, err := m.PlanCost(pricing.Cool, plan, 1.0, zero, zero)
	if err != nil {
		t.Fatal(err)
	}
	// Transitions: cool->hot on day 2 (initial was cool so day 0 free).
	wantPenalty := float64(30-2) * m.StorageDay(pricing.Cool, 1.0)
	wantTransition := 0.0002*1.0 + wantPenalty
	if math.Abs(bd.Transition-wantTransition) > 1e-9 {
		t.Fatalf("retention transition %v, want %v", bd.Transition, wantTransition)
	}
	// Without the flag there is no penalty.
	m.ChargeRetention = false
	bd2, _ := m.PlanCost(pricing.Cool, plan, 1.0, zero, zero)
	if math.Abs(bd2.Transition-0.0002) > 1e-12 {
		t.Fatalf("plain transition %v", bd2.Transition)
	}
}

func TestHotBeatsCoolForHotFiles(t *testing.T) {
	// Economic sanity: a frequently-read file is cheaper in hot, a
	// never-read file cheaper in archive.
	m := model()
	days := 30
	busyReads := make([]float64, days)
	quiet := make([]float64, days)
	for i := range busyReads {
		busyReads[i] = 10000
	}
	hotBusy, _ := m.PlanCost(pricing.Hot, Uniform(pricing.Hot, days), 0.1, busyReads, quiet)
	coolBusy, _ := m.PlanCost(pricing.Cool, Uniform(pricing.Cool, days), 0.1, busyReads, quiet)
	if hotBusy.Total() >= coolBusy.Total() {
		t.Fatalf("busy file: hot %v should beat cool %v", hotBusy.Total(), coolBusy.Total())
	}
	hotQuiet, _ := m.PlanCost(pricing.Hot, Uniform(pricing.Hot, days), 0.1, quiet, quiet)
	archQuiet, _ := m.PlanCost(pricing.Archive, Uniform(pricing.Archive, days), 0.1, quiet, quiet)
	if archQuiet.Total() >= hotQuiet.Total() {
		t.Fatalf("idle file: archive %v should beat hot %v", archQuiet.Total(), hotQuiet.Total())
	}
}

func TestTraceCost(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 50
	cfg.Days = 14
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := model()
	asg := UniformAssignment(pricing.Hot, tr.NumFiles(), tr.Days)
	bds, err := m.TraceCost(tr, asg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bds) != tr.NumFiles() {
		t.Fatal("wrong breakdown count")
	}
	total := SumBreakdowns(bds)
	if total.Total() <= 0 {
		t.Fatal("zero total cost")
	}
	if total.Transition != 0 {
		t.Fatal("uniform hot assignment should have no transitions")
	}
	// Serial and parallel evaluation agree exactly.
	serial, err := m.TraceCost(tr, asg, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bds {
		if bds[i] != serial[i] {
			t.Fatal("parallel/serial mismatch")
		}
	}
	// Mismatched shapes rejected.
	if _, err := m.TraceCost(tr, asg[:10], nil, 0); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := m.TraceCost(tr, asg, make([]pricing.Tier, 3), 0); err == nil {
		t.Fatal("short initial accepted")
	}
	badAsg := UniformAssignment(pricing.Hot, tr.NumFiles(), tr.Days-1)
	if _, err := m.TraceCost(tr, badAsg, nil, 0); err == nil {
		t.Fatal("short plans accepted")
	}
}

func TestTraceCostRespectsInitialTiers(t *testing.T) {
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 10
	cfg.Days = 7
	tr, _ := trace.Generate(cfg)
	m := model()
	asg := UniformAssignment(pricing.Cool, tr.NumFiles(), tr.Days)
	initCool := make([]pricing.Tier, tr.NumFiles())
	for i := range initCool {
		initCool[i] = pricing.Cool
	}
	fromHot, _ := m.TraceCost(tr, asg, nil, 0) // default initial = hot
	fromCool, _ := m.TraceCost(tr, asg, initCool, 0)
	dh, dc := SumBreakdowns(fromHot), SumBreakdowns(fromCool)
	if dc.Transition != 0 {
		t.Fatal("cool->cool should be free")
	}
	if dh.Transition <= 0 {
		t.Fatal("hot->cool day-0 transitions missing")
	}
}

func TestBreakdownString(t *testing.T) {
	s := Breakdown{Storage: 1, Read: 2, Write: 3, Transition: 4}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkPlanCost35Days(b *testing.B) {
	m := model()
	r := rng.New(1)
	days := 35
	reads := make([]float64, days)
	writes := make([]float64, days)
	plan := make(Plan, days)
	for i := range reads {
		reads[i] = r.Float64() * 1000
		writes[i] = r.Float64() * 20
		plan[i] = pricing.Tier(r.Intn(3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PlanCost(pricing.Hot, plan, 0.1, reads, writes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCost1k(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.NumFiles = 1000
	cfg.Days = 35
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := model()
	asg := UniformAssignment(pricing.Hot, tr.NumFiles(), tr.Days)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TraceCost(tr, asg, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}
