package costmodel

import (
	"testing"

	"minicost/internal/pricing"
	"minicost/internal/rng"
)

// randomPlanSeries builds a random plan with matching frequency series,
// covering idle days, heavy traffic and frequent tier changes.
func randomPlanSeries(seed uint64, days int) (Plan, []float64, []float64) {
	r := rng.New(seed)
	plan := make(Plan, days)
	reads := make([]float64, days)
	writes := make([]float64, days)
	for d := 0; d < days; d++ {
		plan[d] = pricing.Tier(r.Intn(pricing.NumTiers))
		switch r.Intn(3) {
		case 0: // idle
		case 1:
			reads[d] = r.Float64() * 100
		default:
			reads[d] = r.Float64() * 100000
		}
		writes[d] = reads[d] * r.Float64() * 0.1
	}
	return plan, reads, writes
}

// TestFileCoeffsMatchComponentPrices: the flat affine coefficients reproduce
// the per-component price methods bitwise — the foundation of the fused
// kernels' exact equivalence.
func TestFileCoeffsMatchComponentPrices(t *testing.T) {
	m := model()
	for _, size := range []float64{0.001, 0.1, 1, 37.5} {
		c := m.FileCoeffs(size)
		for tier := pricing.Tier(0); tier < pricing.NumTiers; tier++ {
			for _, freq := range []struct{ r, w float64 }{{0, 0}, {1, 1}, {5000, 100}, {123456, 7.5}} {
				want := m.StorageDay(tier, size) + m.ReadCost(tier, size, freq.r) + m.WriteCost(tier, size, freq.w)
				if got := c.ServeCost(tier, freq.r, freq.w); got != want {
					t.Fatalf("size %v tier %v: ServeCost %v != component sum %v", size, tier, got, want)
				}
			}
			for from := pricing.Tier(0); from < pricing.NumTiers; from++ {
				if got, want := c.Transition(from, tier), m.TransitionCost(from, tier, size); got != want {
					t.Fatalf("Transition(%v,%v) %v != %v", from, tier, got, want)
				}
			}
		}
	}
}

// TestPlanCostMatchesComponentLoop: the fused flat-coefficient kernel is
// bitwise identical to accumulating the per-component price methods day by
// day.
func TestPlanCostMatchesComponentLoop(t *testing.T) {
	m := model()
	for seed := uint64(1); seed <= 25; seed++ {
		days := 1 + int(seed)%40
		plan, reads, writes := randomPlanSeries(seed, days)
		size := 0.001 + rng.New(seed^0xabc).Float64()*50
		initial := pricing.Tier(seed % pricing.NumTiers)
		got, err := m.PlanCost(initial, plan, size, reads, writes)
		if err != nil {
			t.Fatal(err)
		}
		var want Breakdown
		prev := initial
		for d := range plan {
			want.Storage += m.StorageDay(plan[d], size)
			want.Read += m.ReadCost(plan[d], size, reads[d])
			want.Write += m.WriteCost(plan[d], size, writes[d])
			want.Transition += m.TransitionCost(prev, plan[d], size)
			prev = plan[d]
		}
		if got != want {
			t.Fatalf("seed %d: fused %+v != component loop %+v", seed, got, want)
		}
	}
}

// TestPlanCumCostsPrefixExact: cum[d-1] is bitwise the PlanCost of the
// plan's first d days — the invariant the horizon-sweep engine rests on —
// with and without retention billing.
func TestPlanCumCostsPrefixExact(t *testing.T) {
	for _, retention := range []bool{false, true} {
		m := model()
		m.ChargeRetention = retention
		for seed := uint64(1); seed <= 15; seed++ {
			days := 1 + int(seed)%30
			plan, reads, writes := randomPlanSeries(seed, days)
			size := 0.001 + rng.New(seed^0x77).Float64()*10
			initial := pricing.Tier(seed % pricing.NumTiers)
			cum := make([]Breakdown, days)
			total, err := m.PlanCumCosts(initial, plan, size, reads, writes, cum)
			if err != nil {
				t.Fatal(err)
			}
			if cum[days-1] != total {
				t.Fatalf("retention=%v seed %d: last cum %+v != total %+v", retention, seed, cum[days-1], total)
			}
			for d := 1; d <= days; d++ {
				want, err := m.PlanCost(initial, plan[:d], size, reads[:d], writes[:d])
				if err != nil {
					t.Fatal(err)
				}
				if cum[d-1] != want {
					t.Fatalf("retention=%v seed %d day %d: cum %+v != window PlanCost %+v",
						retention, seed, d, cum[d-1], want)
				}
			}
		}
	}
}

func TestPlanCumCostsLengthMismatch(t *testing.T) {
	m := model()
	plan := Uniform(pricing.Hot, 3)
	series := []float64{1, 2, 3}
	if _, err := m.PlanCumCosts(pricing.Hot, plan, 0.1, series, series, make([]Breakdown, 2)); err == nil {
		t.Fatal("short cum buffer accepted")
	}
	if _, err := m.PlanCumCosts(pricing.Hot, plan, 0.1, series[:2], series, make([]Breakdown, 3)); err == nil {
		t.Fatal("short reads accepted")
	}
}

// TestNewAssignmentArena: plans share one backing array but stay isolated —
// full-capacity slicing keeps an append from bleeding into a neighbour.
func TestNewAssignmentArena(t *testing.T) {
	asg := NewAssignment(3, 4)
	if len(asg) != 3 {
		t.Fatalf("files %d", len(asg))
	}
	for i := range asg {
		if len(asg[i]) != 4 || cap(asg[i]) != 4 {
			t.Fatalf("plan %d: len %d cap %d", i, len(asg[i]), cap(asg[i]))
		}
	}
	asg[1][0] = pricing.Cool
	grown := append(asg[0], pricing.Archive)
	if asg[1][0] != pricing.Cool {
		t.Fatal("append to plan 0 bled into plan 1")
	}
	if grown[4] != pricing.Archive {
		t.Fatal("append lost")
	}
	if empty := NewAssignment(0, 5); len(empty) != 0 {
		t.Fatal("empty assignment")
	}
	uni := UniformAssignment(pricing.Cool, 2, 3)
	for i := range uni {
		for d := range uni[i] {
			if uni[i][d] != pricing.Cool {
				t.Fatalf("uniform assignment file %d day %d = %v", i, d, uni[i][d])
			}
		}
	}
}
