// Package prof wires the standard -cpuprofile/-memprofile hooks into the
// training entry points (cmd/experiments, cmd/bench) so perf work starts
// from a profile instead of a guess.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling if cpuPath is non-empty and returns a stop
// function that ends the CPU profile and, if memPath is non-empty, writes a
// GC-settled heap profile. Call stop once on the normal exit path (profiles
// are deliberately not written when the process aborts early); with both
// paths empty Start is a no-op and stop does nothing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			// Settle the heap so the profile reflects retained memory, not
			// whatever garbage the last benchmark round left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
