package experiments

import (
	"testing"

	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// requireSameSeries asserts two figure series maps are bitwise identical.
func requireSameSeries(t *testing.T, label string, days []int, got, want map[string][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d methods, reference has %d", label, len(got), len(want))
	}
	for name, ref := range want {
		series, ok := got[name]
		if !ok {
			t.Fatalf("%s: method %s missing", label, name)
		}
		if len(series) != len(ref) {
			t.Fatalf("%s %s: %d points, reference has %d", label, name, len(series), len(ref))
		}
		for i := range ref {
			if series[i] != ref[i] {
				t.Fatalf("%s %s at %d days: swept %v != per-window %v (diff %g)",
					label, name, days[i], series[i], ref[i], series[i]-ref[i])
			}
		}
	}
}

// TestFig7MatchesPerWindowReference: the swept Fig. 7 is bitwise identical
// to re-assigning and re-pricing every method at every horizon.
func TestFig7MatchesPerWindowReference(t *testing.T) {
	l := lab(t)
	l.ResetEvalCache()
	swept, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := l.Fig7Reference()
	if err != nil {
		t.Fatal(err)
	}
	if len(swept.Days) != len(ref.Days) {
		t.Fatalf("horizons %v != %v", swept.Days, ref.Days)
	}
	requireSameSeries(t, "fig7", swept.Days, swept.Costs, ref.Costs)
}

// TestFig8MatchesPerWindowReference: per-file bills read off the memoized
// cumulative matrices equal a fresh Assign + TraceCost pass bitwise.
func TestFig8MatchesPerWindowReference(t *testing.T) {
	l := lab(t)
	swept, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	tr := l.Test
	assigners, err := l.assigners(true)
	if err != nil {
		t.Fatal(err)
	}
	buckets := make([]int, tr.NumFiles())
	for i := range buckets {
		buckets[i] = trace.BucketOf(trace.SigmaCV(tr.Reads[i]))
	}
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = pricing.Hot
	}
	for _, a := range assigners {
		asg, err := a.Assign(tr, l.Model, pricing.Hot)
		if err != nil {
			t.Fatal(err)
		}
		bds, err := l.Model.TraceCost(tr, asg, init, l.Cfg.Workers)
		if err != nil {
			t.Fatal(err)
		}
		var want [trace.NumBuckets]float64
		for i := range buckets {
			want[buckets[i]] += bds[i].Total() / float64(tr.Days)
		}
		name := canonicalName(a)
		if swept.Costs[name] != want {
			t.Fatalf("fig8 %s: swept %v != reference %v", name, swept.Costs[name], want)
		}
	}
}

// TestFig13MatchesPerWindowReference: the swept enhancement figure equals
// the per-window oracle bitwise.
func TestFig13MatchesPerWindowReference(t *testing.T) {
	l := lab(t)
	swept, err := l.Fig13(0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := l.Fig13Reference(0)
	if err != nil {
		t.Fatal(err)
	}
	if swept.AggregatedGroups != ref.AggregatedGroups {
		t.Fatalf("aggregated groups %d != %d", swept.AggregatedGroups, ref.AggregatedGroups)
	}
	if len(swept.Days) != len(ref.Days) {
		t.Fatalf("horizons %v != %v", swept.Days, ref.Days)
	}
	requireSameSeries(t, "fig13", swept.Days, swept.Costs, ref.Costs)
}

// TestBreakdownMatchesPerWindowReference: the memoized componentwise totals
// behind CostBreakdownTable equal the per-window evalCost path bitwise.
func TestBreakdownMatchesPerWindowReference(t *testing.T) {
	l := lab(t)
	names, evals, err := l.methodEvals(l.Test.Days)
	if err != nil {
		t.Fatal(err)
	}
	assigners, err := l.assigners(true)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range assigners {
		want, err := l.evalCost(a, l.Test)
		if err != nil {
			t.Fatal(err)
		}
		if got := evals[names[i]].totalBreakdown(); got != want {
			t.Fatalf("%s: swept breakdown %+v != reference %+v", names[i], got, want)
		}
	}
}

// TestCanonicalNameCollisionRejected: two assigners sharing a paper label
// cannot silently merge into one series.
func TestCanonicalNameCollisionRejected(t *testing.T) {
	if _, err := canonicalNames([]policy.Assigner{policy.Greedy{}, policy.Greedy{Oracle: true}}); err == nil {
		t.Fatal("duplicate canonical name accepted")
	}
	if _, err := canonicalNames([]policy.Assigner{policy.Greedy{}, policy.Optimal{}}); err != nil {
		t.Fatalf("distinct names rejected: %v", err)
	}
}

// TestFig7FullConfigMatchesReference repeats the Fig. 7 equivalence at the
// paper-shaped Full configuration. The agent's weights don't affect the
// engines' equivalence, so a randomly initialised agent stands in for the
// 400k-step trained one.
func TestFig7FullConfigMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-config evaluation")
	}
	cfg := Full()
	l, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.SetAgent(rl.NewAgent(cfg.Net, cfg.Net.BuildActor(rng.New(7))))
	swept, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := l.Fig7Reference()
	if err != nil {
		t.Fatal(err)
	}
	requireSameSeries(t, "fig7-full", swept.Days, swept.Costs, ref.Costs)
}
