// Package experiments reproduces every figure of the paper's evaluation
// (Figs. 2–4 trace analysis, Figs. 7–13 system evaluation) on the synthetic
// Wikipedia-like workload. Each FigN function returns a structured result
// with a text rendering, so cmd/experiments, cmd/traceanalysis and the
// repository's bench harness share one implementation.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// Config scales the experiments. Full() approximates the paper's setup
// (scaled from 4 M files to a workstation-sized population, see DESIGN.md);
// Quick() is the fast profile used by tests and benches.
type Config struct {
	Files int
	Days  int
	Seed  uint64
	// TrainSteps for the MiniCost agent used in Figs. 7/8/12/13.
	TrainSteps int64
	// Net is the agent architecture (the paper's 128/128 by default).
	Net rl.NetConfig
	// TrainWorkers is the number of A3C workers.
	TrainWorkers int
	// TrainParallelism bounds the intra-update GEMM fan-out of each worker
	// (rl.A3CConfig.Parallelism). The knob is bitwise-neutral, so a
	// one-worker profile can train deterministically while still using
	// several cores per update.
	TrainParallelism int
	// Workers bounds evaluation parallelism.
	Workers int
}

// Full returns the paper-shaped profile.
func Full() Config {
	return Config{
		Files:        2000,
		Days:         63,
		Seed:         1,
		TrainSteps:   400000,
		Net:          rl.DefaultNetConfig(),
		TrainWorkers: 4,
	}
}

// Quick returns a profile that keeps every experiment under a few seconds.
// It trains with one worker — a single seeded A3C actor is fully
// deterministic, so every test and bench built on Quick is reproducible —
// and leans on TrainParallelism for multi-core speed instead, which is
// bitwise-neutral. Full keeps the paper's asynchronous 4-worker setup.
func Quick() Config {
	return Config{
		Files:            300,
		Days:             42,
		Seed:             1,
		TrainSteps:       120000,
		Net:              rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32},
		TrainWorkers:     1,
		TrainParallelism: 4,
	}
}

// Lab owns the shared state of the evaluation: the generated trace, its
// train/test split (80/20 as in §6.1), the cost model, and — once Train has
// run — the MiniCost agent.
type Lab struct {
	Cfg   Config
	Model *costmodel.Model
	// Trace is the full workload; Train/Test the 80/20 file split.
	Trace *trace.Trace
	Train *trace.Trace
	Test  *trace.Trace

	agent *rl.Agent

	// Memoized single-pass horizon-sweep evaluations of the paper methods on
	// the test split (see sweep.go): built once, reused by Fig7, Fig8 and
	// CostBreakdownTable. evalsDays is the horizon the cache covers.
	evalNames []string
	evals     map[string]*horizonEval
	evalsDays int
}

// NewLab generates the workload and splits it.
func NewLab(cfg Config) (*Lab, error) {
	gen := trace.DefaultGenConfig()
	gen.NumFiles = cfg.Files
	gen.Days = cfg.Days
	gen.Seed = cfg.Seed
	tr, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	perm := rng.New(cfg.Seed ^ 0x5111).Perm(tr.NumFiles())
	train, test, err := tr.SplitTrainTest(0.8, perm)
	if err != nil {
		return nil, err
	}
	return &Lab{
		Cfg:   cfg,
		Model: costmodel.New(pricing.Azure()),
		Trace: tr,
		Train: train,
		Test:  test,
	}, nil
}

// TrainAgent trains (once) and returns the MiniCost agent. Subsequent calls
// return the cached agent.
func (l *Lab) TrainAgent() (*rl.Agent, error) {
	if l.agent != nil {
		return l.agent, nil
	}
	cfg := rl.DefaultA3CConfig()
	cfg.Net = l.Cfg.Net
	cfg.Workers = l.Cfg.TrainWorkers
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	cfg.Parallelism = l.Cfg.TrainParallelism
	cfg.Seed = l.Cfg.Seed
	a3c, err := rl.NewA3C(cfg)
	if err != nil {
		return nil, err
	}
	// Validation-selected snapshot (validation slice drawn from the train
	// split only).
	agent, _, err := rl.TrainWithSelection(a3c, l.Model, l.Train, mdp.DefaultReward(), l.Cfg.TrainSteps, 5, pricing.Hot)
	if err != nil {
		return nil, err
	}
	l.agent = agent
	return l.agent, nil
}

// SetAgent injects a pre-trained agent (tests).
func (l *Lab) SetAgent(a *rl.Agent) { l.agent = a }

// assigners returns the paper's five methods, MiniCost included when the
// agent is available.
func (l *Lab) assigners(withRL bool) ([]policy.Assigner, error) {
	out := []policy.Assigner{
		Hot(),
		Cold(),
		policy.Greedy{Workers: l.Cfg.Workers},
	}
	if withRL {
		agent, err := l.TrainAgent()
		if err != nil {
			return nil, err
		}
		out = append(out, policy.RL{Agent: agent, HistLen: l.Cfg.Net.HistLen, Workers: l.Cfg.Workers})
	}
	out = append(out, policy.Optimal{Workers: l.Cfg.Workers})
	return out, nil
}

// Hot returns the paper's Hot baseline.
func Hot() policy.Assigner { return policy.Static{Tier: pricing.Hot} }

// Cold returns the paper's Cold baseline (Azure's cool tier).
func Cold() policy.Assigner { return policy.Static{Tier: pricing.Cool} }

// evalCost prices an assigner on a trace window from scratch — the
// per-window reference path the sweep engine is verified against.
func (l *Lab) evalCost(a policy.Assigner, tr *trace.Trace) (costmodel.Breakdown, error) {
	asg, err := a.Assign(tr, l.Model, pricing.Hot)
	if err != nil {
		return costmodel.Breakdown{}, fmt.Errorf("policy %s: %w", a.Name(), err)
	}
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = pricing.Hot
	}
	bds, err := l.Model.TraceCost(tr, asg, init, l.Cfg.Workers)
	if err != nil {
		return costmodel.Breakdown{}, fmt.Errorf("policy %s: %w", a.Name(), err)
	}
	return costmodel.SumBreakdowns(bds), nil
}

// renderTable writes an aligned table: header row then data rows.
func renderTable(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for c, cell := range row {
			cells[c] = fmt.Sprintf("%-*s", widths[c], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(cells, "  "), " "))
	}
}

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
