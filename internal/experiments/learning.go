package experiments

import (
	"fmt"
	"io"
	"math"

	"minicost/internal/costmodel"
	"minicost/internal/mdp"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// LearningConfig scales the convergence experiments (Figs. 9–11). They run
// on a dedicated small workload: the statistic of interest is the *optimal
// action rate* — the share of (file, day) decisions matching the DP-optimal
// assignment over a 14-day window (§6.3) — which needs many training runs,
// so the workload must stay small.
type LearningConfig struct {
	Files int
	Days  int
	Seed  uint64
	Net   rl.NetConfig
	// ChunkSteps is the training-step granularity between evaluations.
	ChunkSteps int64
	// MaxSteps caps a run that never reaches TargetRate.
	MaxSteps int64
	// TargetRate is the optimal-action rate that counts as "converged"
	// (the paper's agent "makes the same decision as Optimal does in 14
	// days"). Calibration note: cost-optimal behaviour does not require
	// matching Optimal's exact daily decisions (several tiers are often
	// cost-equivalent, and Optimal times transitions with hindsight), so
	// the achievable plateau here is ~0.66 — even the near-optimal Greedy
	// only matches 0.74. The default target sits below the plateau so the
	// sweeps measure speed-to-competence rather than an unreachable bar;
	// the paper's 95 % rates imply a coarser decision space.
	TargetRate float64
	Workers    int
}

// DefaultLearningConfig returns the profile used by cmd/experiments.
func DefaultLearningConfig() LearningConfig {
	return LearningConfig{
		Files:      120,
		Days:       21,
		Seed:       1,
		Net:        rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32},
		ChunkSteps: 25000,
		MaxSteps:   250000,
		TargetRate: 0.55,
	}
}

// QuickLearningConfig returns a profile for tests and benches.
func QuickLearningConfig() LearningConfig {
	cfg := DefaultLearningConfig()
	cfg.Files = 60
	cfg.ChunkSteps = 10000
	cfg.MaxSteps = 80000
	cfg.TargetRate = 0.55
	return cfg
}

// learnLab is the shared state of a convergence experiment.
type learnLab struct {
	cfg     LearningConfig
	model   *costmodel.Model
	tr      *trace.Trace
	optimal costmodel.Assignment
}

func newLearnLab(cfg LearningConfig) (*learnLab, error) {
	gen := trace.DefaultGenConfig()
	gen.NumFiles = cfg.Files
	gen.Days = cfg.Days
	gen.Seed = cfg.Seed
	tr, err := trace.Generate(gen)
	if err != nil {
		return nil, err
	}
	model := costmodel.New(pricing.Azure())
	opt, err := policy.Optimal{Workers: cfg.Workers}.Assign(tr, model, pricing.Hot)
	if err != nil {
		return nil, err
	}
	return &learnLab{cfg: cfg, model: model, tr: tr, optimal: opt}, nil
}

// rate computes the agent's optimal-action rate on the lab workload.
func (ll *learnLab) rate(agent *rl.Agent) (float64, error) {
	asg, err := policy.RL{Agent: agent, HistLen: ll.cfg.Net.HistLen, Workers: ll.cfg.Workers}.
		Assign(ll.tr, ll.model, pricing.Hot)
	if err != nil {
		return 0, err
	}
	return policy.MatchRate(asg, ll.optimal), nil
}

// trainUntil trains an A3C under trainCfg, evaluating every ChunkSteps, and
// returns the step counts and rates at each checkpoint plus the step at
// which TargetRate was first reached (MaxSteps if never).
func (ll *learnLab) trainUntil(trainCfg rl.A3CConfig) (steps []int64, rates []float64, converged int64, err error) {
	a3c, err := rl.NewA3C(trainCfg)
	if err != nil {
		return nil, nil, 0, err
	}
	src, err := rl.NewTraceSource(ll.model, ll.tr, trainCfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
	if err != nil {
		return nil, nil, 0, err
	}
	converged = ll.cfg.MaxSteps
	for target := ll.cfg.ChunkSteps; target <= ll.cfg.MaxSteps; target += ll.cfg.ChunkSteps {
		if _, err := a3c.TrainFrom(src, target); err != nil {
			return nil, nil, 0, err
		}
		r, err := ll.rate(a3c.Snapshot())
		if err != nil {
			return nil, nil, 0, err
		}
		steps = append(steps, a3c.Steps())
		rates = append(rates, r)
		if r >= ll.cfg.TargetRate && converged == ll.cfg.MaxSteps {
			converged = a3c.Steps()
			break
		}
	}
	return steps, rates, converged, nil
}

// baseTrainConfig returns the A3C configuration the sweeps start from.
func (ll *learnLab) baseTrainConfig() rl.A3CConfig {
	cfg := rl.DefaultA3CConfig()
	cfg.Net = ll.cfg.Net
	cfg.Workers = 2
	cfg.Seed = ll.cfg.Seed
	// Constant learning rate inside the sweeps: annealing would confound
	// the comparison across rates and epsilons.
	cfg.FinalLRFraction = 1
	return cfg
}

// Fig9Result reproduces Fig. 9: steps to convergence versus learning rate.
type Fig9Result struct {
	LearningRates []float64
	Steps         []int64
	MaxSteps      int64
}

// PaperLearningRates is Fig. 9's sweep (a subset of the 19 points keeps the
// run tractable; pass your own list for the full sweep).
var PaperLearningRates = []float64{0.0001, 0.0004, 0.001, 0.0019, 0.0028, 0.0037, 0.0046, 0.0055}

// Fig9 sweeps the learning rate and reports steps until the agent's
// decisions match Optimal at the target rate.
func Fig9(cfg LearningConfig, lrs []float64) (*Fig9Result, error) {
	if len(lrs) == 0 {
		lrs = PaperLearningRates
	}
	ll, err := newLearnLab(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{LearningRates: lrs, MaxSteps: cfg.MaxSteps}
	for _, lr := range lrs {
		tc := ll.baseTrainConfig()
		tc.LearningRate = lr
		_, _, converged, err := ll.trainUntil(tc)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, converged)
	}
	return res, nil
}

// Render writes the Fig. 9 table.
func (r *Fig9Result) Render(w io.Writer) {
	rows := [][]string{{"learning-rate", "steps-to-converge"}}
	for i, lr := range r.LearningRates {
		s := fmt.Sprintf("%d", r.Steps[i])
		if r.Steps[i] >= r.MaxSteps {
			s += " (cap)"
		}
		rows = append(rows, []string{fmt.Sprintf("%.4f", lr), s})
	}
	renderTable(w, rows)
}

// BestLR returns the learning rate with the fewest steps.
func (r *Fig9Result) BestLR() float64 {
	best := 0
	for i := range r.Steps {
		if r.Steps[i] < r.Steps[best] {
			best = i
		}
	}
	return r.LearningRates[best]
}

// Fig10Result reproduces Fig. 10: optimal-action rate versus steps for the
// paper's greedy rates ε ∈ {0.001, 0.01, 0.1}.
type Fig10Result struct {
	Epsilons []float64
	Steps    []int64
	Rates    map[float64][]float64
}

// PaperEpsilons is Fig. 10's sweep.
var PaperEpsilons = []float64{0.001, 0.01, 0.1}

// Fig10 trains one agent per ε and records the optimal-action-rate curve.
func Fig10(cfg LearningConfig, epsilons []float64) (*Fig10Result, error) {
	if len(epsilons) == 0 {
		epsilons = PaperEpsilons
	}
	ll, err := newLearnLab(cfg)
	if err != nil {
		return nil, err
	}
	// Disable early stopping: the figure wants full curves.
	ll.cfg.TargetRate = 2
	res := &Fig10Result{Epsilons: epsilons, Rates: make(map[float64][]float64)}
	for _, eps := range epsilons {
		tc := ll.baseTrainConfig()
		tc.Epsilon = eps
		steps, rates, _, err := ll.trainUntil(tc)
		if err != nil {
			return nil, err
		}
		if res.Steps == nil {
			res.Steps = steps
		}
		res.Rates[eps] = rates
	}
	return res, nil
}

// Render writes the Fig. 10 curves.
func (r *Fig10Result) Render(w io.Writer) {
	header := []string{"steps"}
	for _, eps := range r.Epsilons {
		header = append(header, fmt.Sprintf("eps=%g", eps))
	}
	rows := [][]string{header}
	for i, s := range r.Steps {
		row := []string{fmt.Sprintf("%d", s)}
		for _, eps := range r.Epsilons {
			if curve := r.Rates[eps]; i < len(curve) {
				row = append(row, f4(curve[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
}

// FinalRate returns the last-checkpoint rate for an ε.
func (r *Fig10Result) FinalRate(eps float64) float64 {
	curve := r.Rates[eps]
	if len(curve) == 0 {
		return math.NaN()
	}
	return curve[len(curve)-1]
}

// Fig11Result reproduces Fig. 11: final optimal-action rate versus network
// width (filters = hidden neurons), with error bars over repeated runs.
type Fig11Result struct {
	Widths []int
	Mean   []float64
	Std    []float64
	Runs   int
}

// PaperWidths is Fig. 11's sweep.
var PaperWidths = []int{4, 16, 32, 64, 128}

// Fig11 trains `runs` agents per width with different seeds and reports the
// mean and standard deviation of the final optimal-action rate.
func Fig11(cfg LearningConfig, widths []int, runs int) (*Fig11Result, error) {
	if len(widths) == 0 {
		widths = PaperWidths
	}
	if runs <= 0 {
		runs = 3
	}
	ll, err := newLearnLab(cfg)
	if err != nil {
		return nil, err
	}
	ll.cfg.TargetRate = 2 // full training for every run
	res := &Fig11Result{Widths: widths, Runs: runs}
	for _, width := range widths {
		rates := make([]float64, 0, runs)
		for run := 0; run < runs; run++ {
			tc := ll.baseTrainConfig()
			tc.Net.Filters = width
			tc.Net.Hidden = width
			tc.Seed = cfg.Seed + uint64(run)*1000 + 7
			_, curve, _, err := ll.trainUntil(tc)
			if err != nil {
				return nil, err
			}
			rates = append(rates, curve[len(curve)-1])
		}
		mean := 0.0
		for _, r := range rates {
			mean += r
		}
		mean /= float64(len(rates))
		variance := 0.0
		for _, r := range rates {
			variance += (r - mean) * (r - mean)
		}
		if len(rates) > 1 {
			variance /= float64(len(rates) - 1)
		}
		res.Mean = append(res.Mean, mean)
		res.Std = append(res.Std, math.Sqrt(variance))
	}
	return res, nil
}

// Render writes the Fig. 11 table.
func (r *Fig11Result) Render(w io.Writer) {
	rows := [][]string{{"width", fmt.Sprintf("mean-rate(%d runs)", r.Runs), "stddev"}}
	for i, width := range r.Widths {
		rows = append(rows, []string{fmt.Sprintf("%d", width), f4(r.Mean[i]), f4(r.Std[i])})
	}
	renderTable(w, rows)
}
