package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"minicost/internal/trace"
)

// testLab builds a lab sized for tests and trains the agent once.
var sharedLab *Lab

func lab(t testing.TB) *Lab {
	t.Helper()
	if sharedLab != nil {
		return sharedLab
	}
	cfg := Quick()
	cfg.Files = 250
	cfg.TrainSteps = 350000
	l, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.TrainAgent(); err != nil {
		t.Fatal(err)
	}
	sharedLab = l
	return l
}

func TestFig2Shape(t *testing.T) {
	l := lab(t)
	r := l.Fig2()
	total := 0
	for _, c := range r.Hist {
		total += c
	}
	if total != l.Trace.NumFiles() {
		t.Fatalf("histogram covers %d of %d files", total, l.Trace.NumFiles())
	}
	// Paper shape: the stationary bucket dominates, the >0.8 bucket is thin.
	if r.Shares[0] < 0.6 {
		t.Fatalf("stationary share %v", r.Shares[0])
	}
	if r.Shares[4] > 0.1 {
		t.Fatalf("volatile share %v", r.Shares[4])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "0-0.1") {
		t.Fatal("render missing bucket label")
	}
}

func TestFig3Shape(t *testing.T) {
	l := lab(t)
	r, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Savings must be non-negative everywhere and the per-file saving must
	// grow with volatility (the paper's headline observation).
	for b := 0; b < trace.NumBuckets; b++ {
		if r.SavedPerDay[b] < 0 {
			t.Fatalf("negative saving in bucket %d", b)
		}
	}
	if r.Files[4] > 0 && r.Files[0] > 0 && r.PerFilePerDay[4] <= r.PerFilePerDay[0] {
		t.Fatalf("per-file saving should grow with volatility: bucket0=%v bucket4=%v",
			r.PerFilePerDay[0], r.PerFilePerDay[4])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFig4Shape(t *testing.T) {
	l := lab(t)
	r, err := l.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Error spread must widen with volatility (Fig. 4's point): the most
	// volatile bucket's p99-p1 spread exceeds the stationary bucket's.
	if r.Samples[0] == 0 || r.Samples[4] == 0 {
		t.Skip("empty bucket in quick trace")
	}
	if r.Spread(4) <= r.Spread(0) {
		t.Fatalf("prediction spread should grow with volatility: %v vs %v", r.Spread(0), r.Spread(4))
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFig7Ordering(t *testing.T) {
	l := lab(t)
	r, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Days) - 1
	cold := r.Costs["cold"][last]
	hot := r.Costs["hot"][last]
	greedy := r.Costs["greedy"][last]
	mini := r.Costs["minicost"][last]
	opt := r.Costs["optimal"][last]
	// The paper's ordering: Cold > Hot > Greedy > MiniCost > Optimal. The
	// RL agent's position depends on training; we demand the hard relations
	// and that MiniCost lands strictly below Hot and at/above Optimal.
	if !(cold > hot) {
		t.Fatalf("cold %v should exceed hot %v", cold, hot)
	}
	if !(hot > greedy) {
		t.Fatalf("hot %v should exceed greedy %v", hot, greedy)
	}
	if !(opt <= greedy && opt <= mini && opt <= hot) {
		t.Fatalf("optimal %v is not the lower bound", opt)
	}
	if !(mini < hot) {
		t.Fatalf("minicost %v should beat hot %v", mini, hot)
	}
	// Costs must grow with the horizon.
	for _, m := range MethodNames {
		series := r.Costs[m]
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Fatalf("%s cost decreased with horizon: %v", m, series)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestFig8Shape(t *testing.T) {
	l := lab(t)
	r, err := l.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range MethodNames {
		if _, ok := r.Costs[m]; !ok {
			t.Fatalf("method %s missing", m)
		}
	}
	// Optimal is the per-bucket lower bound too (per-file separability).
	opt := r.Costs["optimal"]
	for b := 0; b < trace.NumBuckets; b++ {
		if r.Files[b] == 0 {
			continue
		}
		for _, m := range MethodNames {
			if r.Costs[m][b] < opt[b]-1e-9 {
				t.Fatalf("bucket %d: %s %v beats optimal %v", b, m, r.Costs[m][b], opt[b])
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestFig12Overhead(t *testing.T) {
	l := lab(t)
	r, err := l.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	// Static policies must be far cheaper than the deciding ones, and all
	// measurements positive.
	for _, name := range []string{"hot", "cold", "greedy", "minicost"} {
		if r.MeasuredPerDay[name] < 0 {
			t.Fatalf("%s negative time", name)
		}
	}
	if r.MeasuredPerDay["minicost"] <= r.MeasuredPerDay["hot"] {
		t.Fatalf("minicost %v should cost more compute than hot %v",
			r.MeasuredPerDay["minicost"], r.MeasuredPerDay["hot"])
	}
	// The paper's serving-time claim: < 1 ms per file per day.
	perFileMS := r.MeasuredPerDay["minicost"] / float64(r.Files) * 1000
	if perFileMS > 1.0 {
		t.Fatalf("minicost decision %.4f ms/file/day exceeds the paper's <1ms", perFileMS)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestFig13Enhancement(t *testing.T) {
	l := lab(t)
	r, err := l.Fig13(0)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Days) - 1
	mini := r.Costs["minicost"][last]
	withE := r.Costs["minicost-w/E"][last]
	if r.AggregatedGroups > 0 && withE > mini*1.001 {
		t.Fatalf("enhancement raised cost: %v -> %v (%d groups)", mini, withE, r.AggregatedGroups)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestCostBreakdownTable(t *testing.T) {
	l := lab(t)
	var buf bytes.Buffer
	if err := l.CostBreakdownTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minicost") {
		t.Fatal("breakdown table missing minicost row")
	}
	t.Logf("\n%s", buf.String())
}

func TestFig9LearningRateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	cfg := QuickLearningConfig()
	cfg.MaxSteps = 30000
	cfg.ChunkSteps = 5000
	r, err := Fig9(cfg, []float64{0.0001, 0.0028})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 2 {
		t.Fatal("wrong sweep size")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestFig10EpsilonSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	cfg := QuickLearningConfig()
	cfg.MaxSteps = 20000
	cfg.ChunkSteps = 5000
	r, err := Fig10(cfg, []float64{0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range r.Epsilons {
		if math.IsNaN(r.FinalRate(eps)) {
			t.Fatalf("no curve for eps %v", eps)
		}
		for _, rate := range r.Rates[eps] {
			if rate < 0 || rate > 1 {
				t.Fatalf("rate %v out of range", rate)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}

func TestFig11WidthSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	cfg := QuickLearningConfig()
	cfg.MaxSteps = 15000
	cfg.ChunkSteps = 15000
	r, err := Fig11(cfg, []int{8, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mean) != 2 || len(r.Std) != 2 {
		t.Fatal("wrong result size")
	}
	for i := range r.Mean {
		if r.Mean[i] < 0 || r.Mean[i] > 1 || r.Std[i] < 0 {
			t.Fatalf("width %d: mean %v std %v", r.Widths[i], r.Mean[i], r.Std[i])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())
}
