package experiments

import (
	"fmt"
	"io"
	"math"

	"minicost/internal/costmodel"
	"minicost/internal/forecast"
	"minicost/internal/par"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// Fig2Result reproduces Fig. 2: the histogram of files per daily
// request-frequency σ bucket.
type Fig2Result struct {
	Hist   [trace.NumBuckets]int
	Shares [trace.NumBuckets]float64
	// PaperShares are the population shares the paper reports, for
	// side-by-side comparison.
	PaperShares [trace.NumBuckets]float64
}

// Fig2 computes the volatility histogram of the lab's trace.
func (l *Lab) Fig2() *Fig2Result {
	hist := l.Trace.SigmaHistogram()
	return &Fig2Result{
		Hist:        hist,
		Shares:      trace.BucketShares(hist),
		PaperShares: trace.PaperBucketShares,
	}
}

// Render writes the Fig. 2 table.
func (r *Fig2Result) Render(w io.Writer) {
	rows := [][]string{{"sigma-bucket", "files", "share", "paper-share"}}
	for b := 0; b < trace.NumBuckets; b++ {
		rows = append(rows, []string{
			trace.BucketLabel(b),
			fmt.Sprintf("%d", r.Hist[b]),
			fmt.Sprintf("%.2f%%", 100*r.Shares[b]),
			fmt.Sprintf("%.2f%%", 100*r.PaperShares[b]),
		})
	}
	renderTable(w, rows)
}

// Fig3Result reproduces Fig. 3: potential saved money per σ bucket — the
// gap between the best single-tier assignment and the offline optimum,
// normalised per day.
type Fig3Result struct {
	// SavedPerDay is the bucket's total $/day saving; Files its population;
	// PerFilePerDay the mean saving per file.
	SavedPerDay   [trace.NumBuckets]float64
	Files         [trace.NumBuckets]int
	PerFilePerDay [trace.NumBuckets]float64
	// ScaledTo is the file population the Scaled column extrapolates to
	// (the paper's 4 M files); ScaledPerDay the extrapolated $/day saving.
	ScaledTo     int
	ScaledPerDay [trace.NumBuckets]float64
}

// PaperScaleFiles is the size of the paper's trace.
const PaperScaleFiles = 4000000

// Fig3 computes per-bucket potential savings on the lab's trace.
func (l *Lab) Fig3() (*Fig3Result, error) {
	tr := l.Trace
	res := &Fig3Result{ScaledTo: PaperScaleFiles}
	days := float64(tr.Days)

	// The paper's baseline: "assigns all data files as either hot or cold,
	// depending on which one yields a lower cost" — one global tier choice
	// for the whole fleet, not per file. Compute the fleet-wide cheapest
	// single tier first.
	baseTier := pricing.Hot
	baseCost := math.Inf(1)
	for _, tier := range pricing.AllTiers() {
		if tier == pricing.Archive {
			continue // the paper's baseline considers hot or cold only
		}
		asg := costmodel.UniformAssignment(tier, tr.NumFiles(), tr.Days)
		bds, err := l.Model.TraceCost(tr, asg, nil, l.Cfg.Workers)
		if err != nil {
			return nil, err
		}
		if c := costmodel.SumBreakdowns(bds).Total(); c < baseCost {
			baseTier, baseCost = tier, c
		}
	}

	type fileSaving struct {
		bucket int
		saved  float64
	}
	savings := make([]fileSaving, tr.NumFiles())
	par.For(tr.NumFiles(), l.Cfg.Workers, func(i int) {
		size := tr.Files[i].SizeGB
		reads, writes := tr.Reads[i], tr.Writes[i]
		base, err := l.Model.PlanCost(baseTier, costmodel.Uniform(baseTier, tr.Days), size, reads, writes)
		if err != nil {
			return
		}
		_, opt := policy.OptimalPlan(l.Model, size, reads, writes, pricing.Hot)
		saved := base.Total() - opt
		if saved < 0 {
			saved = 0
		}
		savings[i] = fileSaving{bucket: trace.BucketOf(trace.SigmaCV(reads)), saved: saved}
	})
	for _, s := range savings {
		res.SavedPerDay[s.bucket] += s.saved / days
		res.Files[s.bucket]++
	}
	for b := range res.SavedPerDay {
		if res.Files[b] > 0 {
			res.PerFilePerDay[b] = res.SavedPerDay[b] / float64(res.Files[b])
		}
		share := float64(res.Files[b]) / float64(tr.NumFiles())
		res.ScaledPerDay[b] = res.PerFilePerDay[b] * share * float64(PaperScaleFiles)
	}
	return res, nil
}

// Render writes the Fig. 3 table.
func (r *Fig3Result) Render(w io.Writer) {
	rows := [][]string{{"sigma-bucket", "files", "saved-$/day", "saved-$/day/file", fmt.Sprintf("scaled-to-%dM-files", r.ScaledTo/1000000)}}
	for b := 0; b < trace.NumBuckets; b++ {
		rows = append(rows, []string{
			trace.BucketLabel(b),
			fmt.Sprintf("%d", r.Files[b]),
			fmt.Sprintf("%.5f", r.SavedPerDay[b]),
			fmt.Sprintf("%.3g", r.PerFilePerDay[b]),
			f2(r.ScaledPerDay[b]),
		})
	}
	renderTable(w, rows)
}

// Fig4Result reproduces Fig. 4: the 1 %, median and 99 % ARIMA 7-day
// prediction errors per σ bucket (error = (true − predicted)/true).
type Fig4Result struct {
	P1, Median, P99 [trace.NumBuckets]float64
	Samples         [trace.NumBuckets]int
}

// Fig4 trains ARIMA on all but the last week of each file's series and
// scores the 7-day forecast, as in §3.1.
func (l *Lab) Fig4() (*Fig4Result, error) {
	tr := l.Trace
	const horizon = 7
	if tr.Days <= horizon+21 {
		return nil, fmt.Errorf("experiments: need more than %d days for Fig 4", horizon+21)
	}
	trainDays := tr.Days - horizon
	errsByBucket := make([][]float64, trace.NumBuckets)
	type fileErrs struct {
		bucket int
		errs   []float64
	}
	all := make([]fileErrs, tr.NumFiles())
	par.For(tr.NumFiles(), l.Cfg.Workers, func(i int) {
		series := tr.Reads[i]
		bucket := trace.BucketOf(trace.SigmaCV(series))
		hist := series[:trainDays]
		var fc []float64
		if m, err := forecast.Fit(hist, 7, 0, 1); err == nil {
			fc = m.Forecast(horizon)
		} else {
			mean := trace.Mean(hist)
			fc = make([]float64, horizon)
			for k := range fc {
				fc[k] = mean
			}
		}
		// Clamp the forecast to [0, 10×observed max]: an ARIMA fit with
		// near-unit AR roots can diverge by orders of magnitude on bursty
		// series, and no practitioner would act on a forecast outside the
		// file's historical range. Without the clamp a handful of divergent
		// fits dominate the percentile statistics.
		maxHist := 0.0
		for _, v := range hist {
			if v > maxHist {
				maxHist = v
			}
		}
		for k := range fc {
			if fc[k] < 0 {
				fc[k] = 0
			}
			if fc[k] > 10*maxHist {
				fc[k] = 10 * maxHist
			}
		}
		// Relative error with a mean-scaled denominator floor: the paper's
		// (true − predicted)/true explodes when a day's true frequency is
		// near zero, which says nothing about the forecaster. Flooring the
		// denominator at 10 % of the file's own mean keeps the statistic
		// bounded while preserving the per-bucket ordering.
		floor := 0.1 * trace.Mean(hist)
		errs := make([]float64, horizon)
		for k := 0; k < horizon; k++ {
			truth := series[trainDays+k]
			denom := truth
			if denom < floor {
				denom = floor
			}
			if denom <= 0 {
				errs[k] = 0
				continue
			}
			errs[k] = (truth - fc[k]) / denom
		}
		all[i] = fileErrs{bucket: bucket, errs: errs}
	})
	for _, fe := range all {
		errsByBucket[fe.bucket] = append(errsByBucket[fe.bucket], fe.errs...)
	}
	res := &Fig4Result{}
	for b, errs := range errsByBucket {
		res.Samples[b] = len(errs)
		if len(errs) == 0 {
			continue
		}
		res.P1[b] = forecast.Percentile(errs, 1)
		res.Median[b] = forecast.Percentile(errs, 50)
		res.P99[b] = forecast.Percentile(errs, 99)
	}
	return res, nil
}

// Render writes the Fig. 4 table.
func (r *Fig4Result) Render(w io.Writer) {
	rows := [][]string{{"sigma-bucket", "samples", "p1-error", "median-error", "p99-error"}}
	for b := 0; b < trace.NumBuckets; b++ {
		rows = append(rows, []string{
			trace.BucketLabel(b),
			fmt.Sprintf("%d", r.Samples[b]),
			f4(r.P1[b]),
			f4(r.Median[b]),
			f4(r.P99[b]),
		})
	}
	renderTable(w, rows)
}

// Spread returns P99-P1 for a bucket, the headline "prediction gets harder
// with volatility" statistic.
func (r *Fig4Result) Spread(bucket int) float64 { return r.P99[bucket] - r.P1[bucket] }
