package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"minicost/internal/aggregate"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// MethodNames lists the paper's five methods in Fig. 7/8 plot order.
var MethodNames = []string{"hot", "cold", "greedy", "minicost", "optimal"}

// Fig7Result reproduces Fig. 7: total monetary cost for all files versus
// the number of days, for the five methods.
type Fig7Result struct {
	Days  []int
	Costs map[string][]float64 // method -> cost at each horizon
}

// Fig7 evaluates the five methods on the test split over growing horizons
// (7, 14, …, up to the trace length).
func (l *Lab) Fig7() (*Fig7Result, error) {
	assigners, err := l.assigners(true)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Costs: make(map[string][]float64)}
	for days := 7; days <= l.Test.Days && days <= 35; days += 7 {
		res.Days = append(res.Days, days)
	}
	if len(res.Days) == 0 {
		return nil, fmt.Errorf("experiments: test trace too short (%d days)", l.Test.Days)
	}
	for _, days := range res.Days {
		window, err := l.Test.Window(0, days)
		if err != nil {
			return nil, err
		}
		for _, a := range assigners {
			bd, err := l.evalCost(a, window)
			if err != nil {
				return nil, err
			}
			res.Costs[canonicalName(a)] = append(res.Costs[canonicalName(a)], bd.Total())
		}
	}
	return res, nil
}

// canonicalName maps assigner names onto the paper's method labels.
func canonicalName(a policy.Assigner) string {
	switch a.Name() {
	case "hot":
		return "hot"
	case "cool", "cold":
		return "cold"
	case "greedy", "greedy-oracle":
		return "greedy"
	case "minicost":
		return "minicost"
	case "optimal":
		return "optimal"
	}
	return a.Name()
}

// Render writes the Fig. 7 series.
func (r *Fig7Result) Render(w io.Writer) {
	rows := [][]string{{"days"}}
	rows[0] = append(rows[0], MethodNames...)
	for i, d := range r.Days {
		row := []string{fmt.Sprintf("%d", d)}
		for _, m := range MethodNames {
			if series, ok := r.Costs[m]; ok && i < len(series) {
				row = append(row, f4(series[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
}

// Fig8Result reproduces Fig. 8: daily monetary cost per σ bucket for the
// five methods.
type Fig8Result struct {
	Costs map[string][trace.NumBuckets]float64
	Files [trace.NumBuckets]int
}

// Fig8 evaluates each method and buckets per-file costs by realized CV,
// normalised per day.
func (l *Lab) Fig8() (*Fig8Result, error) {
	assigners, err := l.assigners(true)
	if err != nil {
		return nil, err
	}
	tr := l.Test
	res := &Fig8Result{Costs: make(map[string][trace.NumBuckets]float64)}
	buckets := make([]int, tr.NumFiles())
	for i := range buckets {
		buckets[i] = trace.BucketOf(trace.SigmaCV(tr.Reads[i]))
		res.Files[buckets[i]]++
	}
	init := make([]pricing.Tier, tr.NumFiles())
	for i := range init {
		init[i] = pricing.Hot
	}
	for _, a := range assigners {
		asg, err := a.Assign(tr, l.Model, pricing.Hot)
		if err != nil {
			return nil, err
		}
		bds, err := l.Model.TraceCost(tr, asg, init, l.Cfg.Workers)
		if err != nil {
			return nil, err
		}
		var byBucket [trace.NumBuckets]float64
		for i, bd := range bds {
			byBucket[buckets[i]] += bd.Total() / float64(tr.Days)
		}
		res.Costs[canonicalName(a)] = byBucket
	}
	return res, nil
}

// Render writes the Fig. 8 table.
func (r *Fig8Result) Render(w io.Writer) {
	rows := [][]string{{"sigma-bucket", "files"}}
	rows[0] = append(rows[0], MethodNames...)
	for b := 0; b < trace.NumBuckets; b++ {
		row := []string{trace.BucketLabel(b), fmt.Sprintf("%d", r.Files[b])}
		for _, m := range MethodNames {
			if series, ok := r.Costs[m]; ok {
				row = append(row, fmt.Sprintf("%.5f", series[b]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
}

// Fig12Result reproduces Fig. 12: per-day computing overhead of the online
// methods, measured on this machine and linearly extrapolated to the
// paper's 4 M files.
type Fig12Result struct {
	Days int
	// MeasuredPerDay is the mean wall-clock seconds one decision day takes
	// at the lab's file count; ScaledMinutes extrapolates to 4 M files.
	MeasuredPerDay map[string]float64
	ScaledMinutes  map[string]float64
	Files          int
}

// Fig12 times each online method's daily decision loop.
func (l *Lab) Fig12() (*Fig12Result, error) {
	agent, err := l.TrainAgent()
	if err != nil {
		return nil, err
	}
	tr := l.Test
	res := &Fig12Result{
		Days:           tr.Days,
		Files:          tr.NumFiles(),
		MeasuredPerDay: make(map[string]float64),
		ScaledMinutes:  make(map[string]float64),
	}
	methods := []policy.Assigner{
		Hot(),
		Cold(),
		policy.Greedy{Workers: 1},
		policy.RL{Agent: agent, HistLen: l.Cfg.Net.HistLen, Workers: 1},
	}
	for _, a := range methods {
		start := time.Now()
		if _, err := a.Assign(tr, l.Model, pricing.Hot); err != nil {
			return nil, err
		}
		perDay := time.Since(start).Seconds() / float64(tr.Days)
		name := canonicalName(a)
		res.MeasuredPerDay[name] = perDay
		res.ScaledMinutes[name] = perDay * float64(PaperScaleFiles) / float64(tr.NumFiles()) / 60
	}
	return res, nil
}

// Render writes the Fig. 12 table.
func (r *Fig12Result) Render(w io.Writer) {
	rows := [][]string{{"method", "s/day@" + fmt.Sprint(r.Files) + "files", "min/day@4Mfiles"}}
	names := make([]string, 0, len(r.MeasuredPerDay))
	for n := range r.MeasuredPerDay {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rows = append(rows, []string{n, fmt.Sprintf("%.6f", r.MeasuredPerDay[n]), fmt.Sprintf("%.3f", r.ScaledMinutes[n])})
	}
	renderTable(w, rows)
}

// Fig13Result reproduces Fig. 13: total cost versus days for Greedy,
// MiniCost, MiniCost with the aggregation enhancement, and Optimal.
type Fig13Result struct {
	Days             []int
	Costs            map[string][]float64
	AggregatedGroups int
}

// Fig13 evaluates the enhancement: groups with positive Ω (top-Ψ, measured
// over the first week) are aggregated and all methods re-priced on the
// rewritten request stream.
func (l *Lab) Fig13(psi int) (*Fig13Result, error) {
	agent, err := l.TrainAgent()
	if err != nil {
		return nil, err
	}
	// Aggregation is evaluated on the full workload: the 80/20 file split
	// tears concurrency groups apart (a group survives a Subset only when
	// every member lands on the same side), and the enhancement is an
	// operational mechanism, not a generalisation test.
	tr := l.Trace
	if len(tr.Groups) == 0 {
		return nil, aggregate.ErrNoGroups
	}
	cfg := aggregate.DefaultConfig()
	if psi > 0 {
		cfg.Psi = psi
	}
	scores, err := aggregate.ScoreGroups(tr, l.Model, cfg, minInt(cfg.WindowDays, tr.Days))
	if err != nil {
		return nil, err
	}
	top := aggregate.SelectTop(scores, cfg.Psi)
	groups := make([]int, len(top))
	for i, s := range top {
		groups[i] = s.Group
	}
	aggTr := tr
	if len(groups) > 0 {
		aggTr, err = aggregate.ApplyToTrace(tr, groups)
		if err != nil {
			return nil, err
		}
	}

	mini := policy.RL{Agent: agent, HistLen: l.Cfg.Net.HistLen, Workers: l.Cfg.Workers}
	res := &Fig13Result{Costs: make(map[string][]float64), AggregatedGroups: len(groups)}
	for days := 7; days <= tr.Days && days <= 35; days += 7 {
		res.Days = append(res.Days, days)
	}
	for _, days := range res.Days {
		window, err := tr.Window(0, days)
		if err != nil {
			return nil, err
		}
		aggWindow, err := aggTr.Window(0, days)
		if err != nil {
			return nil, err
		}
		for name, eval := range map[string]struct {
			a  policy.Assigner
			tr *trace.Trace
		}{
			"greedy":       {policy.Greedy{Workers: l.Cfg.Workers}, window},
			"minicost":     {mini, window},
			"minicost-w/E": {mini, aggWindow},
			"optimal":      {policy.Optimal{Workers: l.Cfg.Workers}, window},
		} {
			bd, err := l.evalCost(eval.a, eval.tr)
			if err != nil {
				return nil, err
			}
			res.Costs[name] = append(res.Costs[name], bd.Total())
		}
	}
	return res, nil
}

// Render writes the Fig. 13 series.
func (r *Fig13Result) Render(w io.Writer) {
	methods := []string{"greedy", "minicost", "minicost-w/E", "optimal"}
	rows := [][]string{append([]string{"days"}, methods...)}
	for i, d := range r.Days {
		row := []string{fmt.Sprintf("%d", d)}
		for _, m := range methods {
			row = append(row, f4(r.Costs[m][i]))
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
	fmt.Fprintf(w, "aggregated groups: %d\n", r.AggregatedGroups)
}

// CostBreakdownTable renders a per-method component breakdown on the test
// split — an extension table useful for understanding where each method
// spends.
func (l *Lab) CostBreakdownTable(w io.Writer) error {
	assigners, err := l.assigners(true)
	if err != nil {
		return err
	}
	rows := [][]string{{"method", "total", "storage", "read", "write", "transition"}}
	for _, a := range assigners {
		bd, err := l.evalCost(a, l.Test)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			canonicalName(a), f4(bd.Total()), f4(bd.Storage), f4(bd.Read), f4(bd.Write), f4(bd.Transition),
		})
	}
	renderTable(w, rows)
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
