package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"minicost/internal/aggregate"
	"minicost/internal/par"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/trace"
)

// MethodNames lists the paper's five methods in Fig. 7/8 plot order.
var MethodNames = []string{"hot", "cold", "greedy", "minicost", "optimal"}

// Fig7Result reproduces Fig. 7: total monetary cost for all files versus
// the number of days, for the five methods.
type Fig7Result struct {
	Days  []int
	Costs map[string][]float64 // method -> cost at each horizon
}

// fig7Horizons returns the paper's growing horizons (7, 14, … ≤ 35 days)
// that fit in a trace.
func fig7Horizons(traceDays int) []int {
	var out []int
	for days := 7; days <= traceDays && days <= 35; days += 7 {
		out = append(out, days)
	}
	return out
}

// Fig7 evaluates the five methods on the test split over growing horizons
// (7, 14, …, up to the trace length). It runs on the single-pass sweep
// engine: each method is assigned and priced once over the longest horizon
// and every prefix total is read off the memoized cumulative cost matrix
// (Optimal backtracks each window's plan from its retained DP tables) —
// bitwise identical to the per-window Fig7Reference.
func (l *Lab) Fig7() (*Fig7Result, error) {
	res := &Fig7Result{Costs: make(map[string][]float64)}
	res.Days = fig7Horizons(l.Test.Days)
	if len(res.Days) == 0 {
		return nil, fmt.Errorf("experiments: test trace too short (%d days)", l.Test.Days)
	}
	names, evals, err := l.methodEvals(res.Days[len(res.Days)-1])
	if err != nil {
		return nil, err
	}
	for _, days := range res.Days {
		for _, name := range names {
			bd, err := evals[name].prefixBreakdown(days)
			if err != nil {
				return nil, err
			}
			res.Costs[name] = append(res.Costs[name], bd.Total())
		}
	}
	return res, nil
}

// Fig7Reference recomputes Fig. 7 with the per-window engine: every method
// re-assigned and re-priced from scratch at each horizon. Kept as the
// equivalence oracle the sweep engine is tested against and as the baseline
// of cmd/bench -mode evaluation.
func (l *Lab) Fig7Reference() (*Fig7Result, error) {
	assigners, err := l.assigners(true)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Costs: make(map[string][]float64)}
	res.Days = fig7Horizons(l.Test.Days)
	if len(res.Days) == 0 {
		return nil, fmt.Errorf("experiments: test trace too short (%d days)", l.Test.Days)
	}
	for _, days := range res.Days {
		window, err := l.Test.Window(0, days)
		if err != nil {
			return nil, err
		}
		for _, a := range assigners {
			bd, err := l.evalCost(a, window)
			if err != nil {
				return nil, err
			}
			res.Costs[canonicalName(a)] = append(res.Costs[canonicalName(a)], bd.Total())
		}
	}
	return res, nil
}

// canonicalName maps assigner names onto the paper's method labels.
func canonicalName(a policy.Assigner) string {
	switch a.Name() {
	case "hot":
		return "hot"
	case "cool", "cold":
		return "cold"
	case "greedy", "greedy-oracle":
		return "greedy"
	case "minicost":
		return "minicost"
	case "optimal":
		return "optimal"
	}
	return a.Name()
}

// Render writes the Fig. 7 series.
func (r *Fig7Result) Render(w io.Writer) {
	rows := [][]string{{"days"}}
	rows[0] = append(rows[0], MethodNames...)
	for i, d := range r.Days {
		row := []string{fmt.Sprintf("%d", d)}
		for _, m := range MethodNames {
			if series, ok := r.Costs[m]; ok && i < len(series) {
				row = append(row, f4(series[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
}

// Fig8Result reproduces Fig. 8: daily monetary cost per σ bucket for the
// five methods.
type Fig8Result struct {
	Costs map[string][trace.NumBuckets]float64
	Files [trace.NumBuckets]int
}

// Fig8 evaluates each method and buckets per-file costs by realized CV,
// normalised per day. It reuses the lab's memoized full-horizon sweep
// evaluations: per-file bills are the last column of each method's
// cumulative cost matrix, so no assigner or pricing pass re-runs here.
func (l *Lab) Fig8() (*Fig8Result, error) {
	tr := l.Test
	names, evals, err := l.methodEvals(tr.Days)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Costs: make(map[string][trace.NumBuckets]float64)}
	buckets := make([]int, tr.NumFiles())
	for i := range buckets {
		buckets[i] = trace.BucketOf(trace.SigmaCV(tr.Reads[i]))
		res.Files[buckets[i]]++
	}
	for _, name := range names {
		e := evals[name]
		var byBucket [trace.NumBuckets]float64
		for i := range buckets {
			byBucket[buckets[i]] += e.fileBreakdown(i).Total() / float64(tr.Days)
		}
		res.Costs[name] = byBucket
	}
	return res, nil
}

// Render writes the Fig. 8 table.
func (r *Fig8Result) Render(w io.Writer) {
	rows := [][]string{{"sigma-bucket", "files"}}
	rows[0] = append(rows[0], MethodNames...)
	for b := 0; b < trace.NumBuckets; b++ {
		row := []string{trace.BucketLabel(b), fmt.Sprintf("%d", r.Files[b])}
		for _, m := range MethodNames {
			if series, ok := r.Costs[m]; ok {
				row = append(row, fmt.Sprintf("%.5f", series[b]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
}

// Fig12Result reproduces Fig. 12: per-day computing overhead of the online
// methods, measured on this machine and linearly extrapolated to the
// paper's 4 M files. Both a single-core row (the paper's setting) and a row
// at the lab's configured worker count are reported, so the 4 M-file
// extrapolation is honest about parallel serving.
type Fig12Result struct {
	Days int
	// MeasuredPerDay is the mean wall-clock seconds one decision day takes
	// at the lab's file count on one core; ScaledMinutes extrapolates to
	// 4 M files.
	MeasuredPerDay map[string]float64
	ScaledMinutes  map[string]float64
	// MeasuredPerDayPar / ScaledMinutesPar repeat the measurement with
	// ParWorkers cores serving decisions in parallel.
	MeasuredPerDayPar map[string]float64
	ScaledMinutesPar  map[string]float64
	ParWorkers        int
	Files             int
}

// Fig12 times each online method's daily decision loop, once single-core
// and once at Config.Workers workers (0 = every core).
func (l *Lab) Fig12() (*Fig12Result, error) {
	agent, err := l.TrainAgent()
	if err != nil {
		return nil, err
	}
	tr := l.Test
	parWorkers := l.Cfg.Workers
	if parWorkers <= 0 {
		parWorkers = par.DefaultWorkers()
	}
	res := &Fig12Result{
		Days:              tr.Days,
		Files:             tr.NumFiles(),
		MeasuredPerDay:    make(map[string]float64),
		ScaledMinutes:     make(map[string]float64),
		MeasuredPerDayPar: make(map[string]float64),
		ScaledMinutesPar:  make(map[string]float64),
		ParWorkers:        parWorkers,
	}
	methods := func(workers int) []policy.Assigner {
		return []policy.Assigner{
			Hot(),
			Cold(),
			policy.Greedy{Workers: workers},
			policy.RL{Agent: agent, HistLen: l.Cfg.Net.HistLen, Workers: workers},
		}
	}
	scale := float64(PaperScaleFiles) / float64(tr.NumFiles()) / 60
	for _, row := range []struct {
		workers int
		perDay  map[string]float64
		scaled  map[string]float64
	}{
		{1, res.MeasuredPerDay, res.ScaledMinutes},
		{parWorkers, res.MeasuredPerDayPar, res.ScaledMinutesPar},
	} {
		for _, a := range methods(row.workers) {
			start := time.Now() //minicost:allow-wallclock Fig. 12 measures decision overhead; the timing is the result
			if _, err := a.Assign(tr, l.Model, pricing.Hot); err != nil {
				return nil, err
			}
			perDay := time.Since(start).Seconds() / float64(tr.Days) //minicost:allow-wallclock Fig. 12 overhead measurement
			name := canonicalName(a)
			row.perDay[name] = perDay
			row.scaled[name] = perDay * scale
		}
	}
	return res, nil
}

// Render writes the Fig. 12 table.
func (r *Fig12Result) Render(w io.Writer) {
	filesCol := "s/day@" + fmt.Sprint(r.Files) + "files"
	cores := fmt.Sprintf("@%dcores", r.ParWorkers)
	rows := [][]string{{"method", filesCol, "min/day@4Mfiles", filesCol + cores, "min/day@4Mfiles" + cores}}
	names := make([]string, 0, len(r.MeasuredPerDay))
	//minicost:allow-maprange keys are sorted before use
	for n := range r.MeasuredPerDay {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%.6f", r.MeasuredPerDay[n]), fmt.Sprintf("%.3f", r.ScaledMinutes[n]),
			fmt.Sprintf("%.6f", r.MeasuredPerDayPar[n]), fmt.Sprintf("%.3f", r.ScaledMinutesPar[n]),
		})
	}
	renderTable(w, rows)
}

// Fig13Result reproduces Fig. 13: total cost versus days for Greedy,
// MiniCost, MiniCost with the aggregation enhancement, and Optimal.
type Fig13Result struct {
	Days             []int
	Costs            map[string][]float64
	AggregatedGroups int
}

// fig13Setup aggregates the top-Ψ groups and returns the workload, the
// rewritten workload, and the aggregated-group count shared by Fig13 and
// Fig13Reference.
func (l *Lab) fig13Setup(psi int) (tr, aggTr *trace.Trace, groups int, err error) {
	// Aggregation is evaluated on the full workload: the 80/20 file split
	// tears concurrency groups apart (a group survives a Subset only when
	// every member lands on the same side), and the enhancement is an
	// operational mechanism, not a generalisation test.
	tr = l.Trace
	if len(tr.Groups) == 0 {
		return nil, nil, 0, aggregate.ErrNoGroups
	}
	cfg := aggregate.DefaultConfig()
	if psi > 0 {
		cfg.Psi = psi
	}
	scores, err := aggregate.ScoreGroups(tr, l.Model, cfg, min(cfg.WindowDays, tr.Days))
	if err != nil {
		return nil, nil, 0, err
	}
	top := aggregate.SelectTop(scores, cfg.Psi)
	ids := make([]int, len(top))
	for i, s := range top {
		ids[i] = s.Group
	}
	aggTr = tr
	if len(ids) > 0 {
		aggTr, err = aggregate.ApplyToTrace(tr, ids)
		if err != nil {
			return nil, nil, 0, err
		}
	}
	return tr, aggTr, len(ids), nil
}

// fig13Methods returns Fig. 13's four series in plot order, each bound to
// the workload it is priced on.
func (l *Lab) fig13Methods(agent *rl.Agent, tr, aggTr *trace.Trace) []struct {
	name string
	a    policy.Assigner
	tr   *trace.Trace
} {
	mini := policy.RL{Agent: agent, HistLen: l.Cfg.Net.HistLen, Workers: l.Cfg.Workers}
	return []struct {
		name string
		a    policy.Assigner
		tr   *trace.Trace
	}{
		{"greedy", policy.Greedy{Workers: l.Cfg.Workers}, tr},
		{"minicost", mini, tr},
		{"minicost-w/E", mini, aggTr},
		{"optimal", policy.Optimal{Workers: l.Cfg.Workers}, tr},
	}
}

// Fig13 evaluates the enhancement: groups with positive Ω (top-Ψ, measured
// over the first week) are aggregated and all methods re-priced on the
// rewritten request stream. Like Fig7 it runs on the single-pass sweep
// engine — each (method, workload) pair is assigned and priced once over
// the longest horizon, concurrently across pairs, and prefix totals are
// read off the cumulative cost matrices — bitwise identical to the
// per-window Fig13Reference.
func (l *Lab) Fig13(psi int) (*Fig13Result, error) {
	agent, err := l.TrainAgent()
	if err != nil {
		return nil, err
	}
	tr, aggTr, groups, err := l.fig13Setup(psi)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Costs: make(map[string][]float64), AggregatedGroups: groups}
	res.Days = fig7Horizons(tr.Days)
	if len(res.Days) == 0 {
		return res, nil
	}
	maxDays := res.Days[len(res.Days)-1]
	methods := l.fig13Methods(agent, tr, aggTr)
	entries := make([]evalEntry, len(methods))
	for i, m := range methods {
		w := m.tr
		if maxDays < w.Days {
			if w, err = m.tr.Window(0, maxDays); err != nil {
				return nil, err
			}
		}
		entries[i] = evalEntry{a: m.a, tr: w}
	}
	evals, err := buildEvals(entries, l.Model, pricing.Hot, l.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	for _, days := range res.Days {
		for i, m := range methods {
			bd, err := evals[i].prefixBreakdown(days)
			if err != nil {
				return nil, err
			}
			res.Costs[m.name] = append(res.Costs[m.name], bd.Total())
		}
	}
	return res, nil
}

// Fig13Reference recomputes Fig. 13 with the per-window engine: every
// (method, workload) pair re-assigned and re-priced from scratch at each
// horizon. Kept as the equivalence oracle the sweep engine is tested
// against.
func (l *Lab) Fig13Reference(psi int) (*Fig13Result, error) {
	agent, err := l.TrainAgent()
	if err != nil {
		return nil, err
	}
	tr, aggTr, groups, err := l.fig13Setup(psi)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Costs: make(map[string][]float64), AggregatedGroups: groups}
	res.Days = fig7Horizons(tr.Days)
	for _, days := range res.Days {
		for _, m := range l.fig13Methods(agent, tr, aggTr) {
			window, err := m.tr.Window(0, days)
			if err != nil {
				return nil, err
			}
			bd, err := l.evalCost(m.a, window)
			if err != nil {
				return nil, err
			}
			res.Costs[m.name] = append(res.Costs[m.name], bd.Total())
		}
	}
	return res, nil
}

// Render writes the Fig. 13 series.
func (r *Fig13Result) Render(w io.Writer) {
	methods := []string{"greedy", "minicost", "minicost-w/E", "optimal"}
	rows := [][]string{append([]string{"days"}, methods...)}
	for i, d := range r.Days {
		row := []string{fmt.Sprintf("%d", d)}
		for _, m := range methods {
			row = append(row, f4(r.Costs[m][i]))
		}
		rows = append(rows, row)
	}
	renderTable(w, rows)
	fmt.Fprintf(w, "aggregated groups: %d\n", r.AggregatedGroups)
}

// CostBreakdownTable renders a per-method component breakdown on the test
// split — an extension table useful for understanding where each method
// spends. It reads the totals off the lab's memoized full-horizon sweep
// evaluations, so after Fig8 it costs no pricing pass at all.
func (l *Lab) CostBreakdownTable(w io.Writer) error {
	names, evals, err := l.methodEvals(l.Test.Days)
	if err != nil {
		return err
	}
	rows := [][]string{{"method", "total", "storage", "read", "write", "transition"}}
	for _, name := range names {
		bd := evals[name].totalBreakdown()
		rows = append(rows, []string{
			name, f4(bd.Total()), f4(bd.Storage), f4(bd.Read), f4(bd.Write), f4(bd.Transition),
		})
	}
	renderTable(w, rows)
	return nil
}
