package experiments

import (
	"testing"

	"minicost/internal/costmodel"
	"minicost/internal/mat"
	"minicost/internal/mdp"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// TestBatchedInferenceEquivalentAcrossPaperWidths pins the batched engine to
// the single-sample reference at every network width the paper sweeps
// (Fig. 11): ForwardBatch must reproduce Forward bitwise and DecideBatch
// must reproduce Decide exactly, on randomly initialised networks at the
// paper's 14-day history window.
func TestBatchedInferenceEquivalentAcrossPaperWidths(t *testing.T) {
	const histLen = 14
	const batch = 33
	for wi, width := range PaperWidths {
		cfg := rl.NetConfig{HistLen: histLen, Filters: width, Kernel: 4, Stride: 1, Hidden: width}
		r := rng.New(uint64(1000 + wi))
		net := cfg.BuildActor(r)
		agent := rl.NewAgent(cfg, net)

		states := make([]mdp.State, batch)
		x := mat.New(batch, mdp.FeatureDim(histLen))
		for i := range states {
			states[i] = mdp.State{
				ReadHistory:  make([]float64, histLen),
				WriteHistory: make([]float64, histLen),
				SizeGB:       0.01 + r.Float64()*10,
				Tier:         pricing.Tier(r.Intn(pricing.NumTiers)),
			}
			for d := 0; d < histLen; d++ {
				states[i].ReadHistory[d] = r.Float64() * 5000
				states[i].WriteHistory[d] = r.Float64() * 500
			}
			states[i].FeaturesInto(x.Row(i))
		}

		// Bitwise forward equivalence.
		yb := net.ForwardBatch(x, 0)
		for i := range states {
			single := net.Forward(x.Row(i))
			row := yb.Row(i)
			if len(single) != len(row) {
				t.Fatalf("width %d: batch row width %d, single %d", width, len(row), len(single))
			}
			for j := range single {
				if row[j] != single[j] {
					t.Fatalf("width %d state %d logit %d: batched %v != single %v",
						width, i, j, row[j], single[j])
				}
			}
		}

		// Decision equivalence.
		tiers := make([]pricing.Tier, batch)
		agent.DecideBatch(x, tiers, 0)
		for i := range states {
			if want := agent.Decide(&states[i]); tiers[i] != want {
				t.Fatalf("width %d state %d: DecideBatch %v, Decide %v", width, i, tiers[i], want)
			}
		}
	}
}

// TestBatchedTrainingEquivalentAcrossPaperWidths is the training-engine
// acceptance gate: at Workers=1 with a fixed seed, the batched A3C update
// path (batch forward/backward + snapshot pulls) must leave bitwise-
// identical actor and critic parameters to the per-sample reference after
// more than 50 updates, at every network width the paper sweeps (Fig. 11).
func TestBatchedTrainingEquivalentAcrossPaperWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full width sweep is slow; covered at one width by internal/rl")
	}
	gen := trace.DefaultGenConfig()
	gen.NumFiles = 20
	gen.Days = 12
	gen.Seed = 43
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	const steps = 400 // 57 updates at NSteps 7
	for wi, width := range PaperWidths {
		train := func(singleSample bool) ([]float64, []float64) {
			cfg := rl.DefaultA3CConfig()
			cfg.Net = rl.NetConfig{HistLen: 7, Filters: width, Kernel: 4, Stride: 1, Hidden: width}
			cfg.Workers = 1
			cfg.Seed = uint64(3000 + wi)
			cfg.SingleSample = singleSample
			a3c, err := rl.NewA3C(cfg)
			if err != nil {
				t.Fatal(err)
			}
			factory, err := rl.TraceFactory(m, tr, cfg.Net.HistLen, mdp.DefaultReward(), pricing.Hot)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := a3c.Train(factory, steps)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Updates < 50 {
				t.Fatalf("width %d: only %d updates; the gate needs a sustained run", width, stats.Updates)
			}
			return a3c.Snapshot().ParamVector(), a3c.CriticSnapshot().ParamVector()
		}
		wantA, wantC := train(true)
		gotA, gotC := train(false)
		for i := range wantA {
			if gotA[i] != wantA[i] {
				t.Fatalf("width %d actor param %d: batched %v, single-sample %v (not bitwise equal)",
					width, i, gotA[i], wantA[i])
			}
		}
		for i := range wantC {
			if gotC[i] != wantC[i] {
				t.Fatalf("width %d critic param %d: batched %v, single-sample %v (not bitwise equal)",
					width, i, gotC[i], wantC[i])
			}
		}
	}
}

// TestRLAssignEquivalentAcrossPaperWidths replays a generated trace through
// policy.RL at every paper width and asserts the batched rewrite's
// assignment is identical to the preserved single-sample path for a fixed
// seed — the before/after property of the engine swap.
func TestRLAssignEquivalentAcrossPaperWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("full width sweep is slow; covered at one width by internal/policy")
	}
	gen := trace.DefaultGenConfig()
	gen.NumFiles = 40
	gen.Days = 10
	gen.Seed = 42
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(pricing.Azure())
	for wi, width := range PaperWidths {
		cfg := rl.NetConfig{HistLen: 7, Filters: width, Kernel: 4, Stride: 1, Hidden: width}
		agent := rl.NewAgent(cfg, cfg.BuildActor(rng.New(uint64(2000+wi))))
		want, err := policy.RL{Agent: agent, SingleSample: true}.Assign(tr, m, pricing.Hot)
		if err != nil {
			t.Fatal(err)
		}
		got, err := policy.RL{Agent: agent, Workers: 3, BatchRows: 11}.Assign(tr, m, pricing.Hot)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for d := range want[i] {
				if want[i][d] != got[i][d] {
					t.Fatalf("width %d file %d day %d: batched %v, single-sample %v",
						width, i, d, got[i][d], want[i][d])
				}
			}
		}
	}
}
