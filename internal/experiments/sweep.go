package experiments

import (
	"fmt"

	"minicost/internal/costmodel"
	"minicost/internal/obs"
	"minicost/internal/par"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/trace"
)

// The horizon-sweep evaluation engine. Figs. 7 and 13 report every method's
// total cost at growing horizons (7, 14, … days); the per-window reference
// re-runs each assigner and re-prices its assignment from scratch at every
// horizon, paying the dominant full-trace cost O(H²) times. The engine pays
// it once:
//
//   - Online assigners (hot, cold, greedy, minicost) are causal — the day-d
//     decision only reads days ≤ d — so their plan over Window(0, d) is
//     bitwise the prefix of their full-horizon plan (asserted by
//     TestOnlinePlansArePrefixStable). One full-horizon Assign plus one
//     PlanCumCosts pass per file yields every prefix total exactly: the
//     cumulative breakdown after day d-1 IS PlanCost over the window.
//   - Optimal's plan is not prefix-stable, but its forward DP is: the first
//     d rows of the full-horizon tables are bitwise the tables a per-window
//     run builds. The engine runs policy.NewOptimalDP once per file and
//     backtracks + prices each window's plan lazily from the retained
//     tables — O(d) per horizon instead of O(d·Γ²) plus a fresh Assign.
//
// All arithmetic reuses the reference kernels (the costmodel flat-coefficient
// loops), so swept totals are bitwise identical to the per-window path —
// asserted against Fig7Reference/Fig13Reference at the Quick and Full
// configs in sweep_test.go.

// horizonEval is one assigner's memoized single-pass evaluation over a
// trace: the full-horizon assignment, the per-file per-day cumulative cost
// matrix, and (for Optimal) the retained per-file DP tables.
type horizonEval struct {
	tr      *trace.Trace
	m       *costmodel.Model
	init    pricing.Tier
	workers int

	asg costmodel.Assignment
	// cum[i][d] is file i's cumulative Breakdown over days 0..d, one flat
	// backing array for the whole matrix.
	cum [][]costmodel.Breakdown
	// dps holds Optimal's forward DP tables; nil for every other assigner.
	dps []*policy.OptimalDP
}

// newHorizonEval runs the assigner once over the full trace and builds the
// cumulative cost matrix.
func newHorizonEval(a policy.Assigner, tr *trace.Trace, m *costmodel.Model, initial pricing.Tier, workers int) (*horizonEval, error) {
	e := &horizonEval{tr: tr, m: m, init: initial, workers: workers}
	n := tr.NumFiles()
	if opt, ok := a.(policy.Optimal); ok {
		e.dps = make([]*policy.OptimalDP, n)
		e.asg = costmodel.NewAssignment(n, tr.Days)
		w := opt.Workers
		if w == 0 {
			w = workers
		}
		par.For(n, w, func(i int) {
			e.dps[i] = policy.NewOptimalDP(m, tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], initial)
			e.dps[i].PlanPrefixInto(e.asg[i])
		})
	} else {
		asg, err := a.Assign(tr, m, initial)
		if err != nil {
			return nil, err
		}
		e.asg = asg
	}
	backing := make([]costmodel.Breakdown, n*tr.Days)
	e.cum = make([][]costmodel.Breakdown, n)
	errs := make([]error, n)
	par.For(n, workers, func(i int) {
		e.cum[i] = backing[i*tr.Days : (i+1)*tr.Days]
		_, errs[i] = m.PlanCumCosts(initial, e.asg[i], tr.Files[i].SizeGB, tr.Reads[i], tr.Writes[i], e.cum[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// prefixBreakdown returns the total bill of the first days days — bitwise
// identical to re-running the assigner on Window(0, days) and pricing it
// with TraceCost + SumBreakdowns.
func (e *horizonEval) prefixBreakdown(days int) (costmodel.Breakdown, error) {
	if days <= 0 || days > e.tr.Days {
		return costmodel.Breakdown{}, fmt.Errorf("experiments: horizon %d outside [1,%d]", days, e.tr.Days)
	}
	if e.dps != nil && days != e.tr.Days {
		return e.optimalPrefix(days), nil
	}
	var total costmodel.Breakdown
	for i := range e.cum {
		total = total.Add(e.cum[i][days-1])
	}
	return total, nil
}

// optimalPrefix backtracks each file's optimal plan for the window from the
// retained DP tables and prices it with the reference kernel. (At the full
// horizon the memoized cumulative matrix answers directly.)
func (e *horizonEval) optimalPrefix(days int) costmodel.Breakdown {
	bds := make([]costmodel.Breakdown, len(e.dps))
	par.For(len(e.dps), e.workers, func(i int) {
		plan := make(costmodel.Plan, days)
		e.dps[i].PlanPrefixInto(plan)
		// Lengths match by construction, so PlanCost cannot fail.
		bds[i], _ = e.m.PlanCost(e.init, plan, e.tr.Files[i].SizeGB, e.tr.Reads[i][:days], e.tr.Writes[i][:days])
	})
	return costmodel.SumBreakdowns(bds)
}

// fileBreakdown returns file i's full-horizon bill.
func (e *horizonEval) fileBreakdown(i int) costmodel.Breakdown {
	return e.cum[i][e.tr.Days-1]
}

// totalBreakdown returns the full-horizon bill over all files.
func (e *horizonEval) totalBreakdown() costmodel.Breakdown {
	var total costmodel.Breakdown
	for i := range e.cum {
		total = total.Add(e.fileBreakdown(i))
	}
	return total
}

// buildEvals evaluates several (assigner, trace) pairs concurrently — the
// methods×figures parallelism of the harness. Entries are independent, so
// they run on a par.Pool; each eval's inner file loops parallelize further.
// The workers bound caps both levels (0 = every core), so a Workers: 1
// config measures a genuinely serial evaluation.
func buildEvals(entries []evalEntry, m *costmodel.Model, initial pricing.Tier, workers int) ([]*horizonEval, error) {
	evals := make([]*horizonEval, len(entries))
	errs := make([]error, len(entries))
	poolSize := workers
	if poolSize <= 0 {
		poolSize = par.DefaultWorkers()
	}
	pool := par.NewPool(min(poolSize, len(entries)))
	for i, en := range entries {
		i, en := i, en
		// One duration histogram per method: how long each assigner's
		// single-pass horizon evaluation takes to build.
		lat := obs.Default().Timer("minicost_eval_build_seconds",
			"Single-pass horizon-eval build time, by method.", obs.L("method", en.a.Name()))
		pool.Submit(func() {
			sw := lat.Start()
			evals[i], errs[i] = newHorizonEval(en.a, en.tr, m, initial, workers)
			sw.Stop()
		})
	}
	pool.Close()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: evaluate %s: %w", entries[i].a.Name(), err)
		}
	}
	return evals, nil
}

// evalEntry is one (assigner, trace) pair to evaluate.
type evalEntry struct {
	a  policy.Assigner
	tr *trace.Trace
}

// methodEvals returns, building them once, the paper methods' single-pass
// evaluations on the test split, covering at least `days` days. A cached
// build over a horizon ≥ days is reused: online plans are prefix-stable and
// the Optimal DP forward-only, so a longer eval answers any shorter horizon.
// A request for a longer horizon (e.g. Fig8's full split after Fig7's capped
// sweep) rebuilds. The method order of the returned names matches
// Lab.assigners; two assigners mapping to one canonical name is an error
// (a duplicate would silently double-append into one series).
func (l *Lab) methodEvals(days int) ([]string, map[string]*horizonEval, error) {
	if l.evals != nil && l.evalsDays >= days {
		obs.Default().Counter("minicost_eval_memo_hits_total",
			"methodEvals calls answered from the memoized horizon evaluations.").Inc()
		return l.evalNames, l.evals, nil
	}
	obs.Default().Counter("minicost_eval_memo_misses_total",
		"methodEvals calls that had to (re)build the horizon evaluations.").Inc()
	assigners, err := l.assigners(true)
	if err != nil {
		return nil, nil, err
	}
	names, err := canonicalNames(assigners)
	if err != nil {
		return nil, nil, err
	}
	tr := l.Test
	if days < tr.Days {
		if tr, err = l.Test.Window(0, days); err != nil {
			return nil, nil, err
		}
	}
	entries := make([]evalEntry, len(assigners))
	for i, a := range assigners {
		entries[i] = evalEntry{a: a, tr: tr}
	}
	built, err := buildEvals(entries, l.Model, pricing.Hot, l.Cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	evals := make(map[string]*horizonEval, len(built))
	for i, e := range built {
		evals[names[i]] = e
	}
	l.evalNames, l.evals, l.evalsDays = names, evals, tr.Days
	return names, evals, nil
}

// canonicalNames maps each assigner to its paper method label, rejecting
// collisions: two assigners sharing a canonical name would silently
// double-append into one result series.
func canonicalNames(assigners []policy.Assigner) ([]string, error) {
	names := make([]string, len(assigners))
	byName := make(map[string]string, len(assigners))
	for i, a := range assigners {
		name := canonicalName(a)
		if prev, dup := byName[name]; dup {
			return nil, fmt.Errorf("experiments: assigners %q and %q both map to method %q", prev, a.Name(), name)
		}
		byName[name] = a.Name()
		names[i] = name
	}
	return names, nil
}

// ResetEvalCache drops the memoized single-pass evaluations so the next
// figure rebuilds them (used by cmd/bench to time repeated builds).
func (l *Lab) ResetEvalCache() {
	l.evalNames, l.evals, l.evalsDays = nil, nil, 0
}
