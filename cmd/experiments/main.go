// Command experiments reproduces the paper's evaluation figures
// (§6, Figs. 7–13) end to end: it generates the workload, trains the
// MiniCost A3C agent, and prints the data series behind each figure.
//
// Usage:
//
//	experiments -fig 7                  # one figure (trains the agent)
//	experiments -fig all -profile quick # everything, scaled down
//	experiments -fig 9 -profile full    # learning-rate sweep, full profile
//	experiments -fig 7 -cpuprofile cpu.pprof # profile training + evaluation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"minicost/internal/experiments"
	"minicost/internal/prof"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure: 7, 8, 9, 10, 11, 12, 13, breakdown or all")
		profile    = flag.String("profile", "quick", "workload profile: quick or full")
		files      = flag.Int("files", 0, "override file count")
		days       = flag.Int("days", 0, "override trace days")
		steps      = flag.Int64("train-steps", 0, "override training steps")
		seed       = flag.Uint64("seed", 1, "workload/training seed")
		psi        = flag.Int("psi", 0, "aggregation Psi for fig 13 (0 = default)")
		runs       = flag.Int("runs", 0, "repetitions for fig 11 (0 = default)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	cfg := experiments.Quick()
	lcfg := experiments.QuickLearningConfig()
	if *profile == "full" {
		cfg = experiments.Full()
		lcfg = experiments.DefaultLearningConfig()
	}
	cfg.Seed = *seed
	lcfg.Seed = *seed
	if *files > 0 {
		cfg.Files = *files
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *steps > 0 {
		cfg.TrainSteps = *steps
	}

	var lab *experiments.Lab
	getLab := func() *experiments.Lab {
		if lab == nil {
			var err error
			lab, err = experiments.NewLab(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "[experiments] training agent (%d steps, %d files)...\n", cfg.TrainSteps, cfg.Files)
			start := time.Now()
			if _, err := lab.TrainAgent(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "[experiments] trained in %s\n", time.Since(start).Round(time.Second))
		}
		return lab
	}

	run := func(name string) {
		switch name {
		case "7":
			fmt.Println("== Fig 7: total cost vs days (Hot/Cold/Greedy/MiniCost/Optimal) ==")
			r, err := getLab().Fig7()
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "8":
			fmt.Println("== Fig 8: daily cost per sigma bucket ==")
			r, err := getLab().Fig8()
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "9":
			fmt.Println("== Fig 9: steps to convergence vs learning rate ==")
			r, err := experiments.Fig9(lcfg, nil)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
			fmt.Printf("best learning rate: %.4f\n", r.BestLR())
		case "10":
			fmt.Println("== Fig 10: optimal-action rate vs steps for greedy rates ==")
			r, err := experiments.Fig10(lcfg, nil)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "11":
			fmt.Println("== Fig 11: optimal-action rate vs network width ==")
			r, err := experiments.Fig11(lcfg, nil, *runs)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "12":
			fmt.Println("== Fig 12: per-day computing overhead ==")
			r, err := getLab().Fig12()
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "13":
			fmt.Println("== Fig 13: aggregation enhancement ==")
			r, err := getLab().Fig13(*psi)
			if err != nil {
				fatal(err)
			}
			r.Render(os.Stdout)
		case "breakdown":
			fmt.Println("== Extension: per-method cost breakdown ==")
			if err := getLab().CostBreakdownTable(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown figure %q", name))
		}
		fmt.Println()
	}

	if *fig == "all" {
		for _, f := range []string{"7", "8", "12", "13", "breakdown", "9", "10", "11"} {
			run(f)
		}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			run(strings.TrimSpace(f))
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
