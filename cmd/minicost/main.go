// Command minicost runs the full MiniCost pipeline on a workload: load (or
// generate) a trace, train the RL agent on the first portion, serve the
// remainder day by day against the simulated store, and report the bill
// next to the paper's baselines.
//
// Usage:
//
//	minicost -files 500 -days 42 -train-steps 200000
//	minicost -trace trace.csv -split 0.8 -aggregate
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"minicost"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "trace CSV (default: generate synthetically)")
		files      = flag.Int("files", 500, "files when generating")
		days       = flag.Int("days", 42, "days when generating")
		seed       = flag.Uint64("seed", 1, "seed")
		steps      = flag.Int64("train-steps", 200000, "A3C training steps")
		split      = flag.Float64("split", 0.5, "fraction of days used for training history")
		aggregateE = flag.Bool("aggregate", false, "enable the concurrent-request aggregation enhancement")
		filters    = flag.Int("filters", 32, "conv filters (paper: 128)")
		hidden     = flag.Int("hidden", 64, "hidden neurons (paper: 128)")
	)
	flag.Parse()

	tr, err := loadTrace(*tracePath, *files, *days, *seed)
	if err != nil {
		fatal(err)
	}
	cut := int(float64(tr.Days) * *split)
	if cut < 8 || tr.Days-cut < 7 {
		fatal(fmt.Errorf("split %.2f leaves too little data (train %d days, serve %d)", *split, cut, tr.Days-cut))
	}
	hist, err := tr.Window(0, cut)
	if err != nil {
		fatal(err)
	}
	serve, err := tr.Window(cut, tr.Days)
	if err != nil {
		fatal(err)
	}

	cfg := minicost.DefaultConfig()
	cfg.TrainSteps = *steps
	cfg.A3C.Net.Filters = *filters
	cfg.A3C.Net.Hidden = *hidden
	cfg.A3C.Seed = *seed
	if *aggregateE {
		agg := minicost.DefaultAggregationConfig()
		cfg.Aggregation = &agg
	}
	sys, err := minicost.New(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "training on %d files x %d days (%d steps)...\n", hist.NumFiles(), hist.Days, *steps)
	start := time.Now()
	stats, err := sys.Train(hist)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained: %d steps, %d episodes, mean reward %.3f (%s)\n",
		stats.Steps, stats.Episodes, stats.MeanReward(), time.Since(start).Round(time.Millisecond))

	report, err := sys.Run(serve)
	if err != nil {
		fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "method\ttotal $\tstorage\tread\twrite\ttransition\n")
	row := func(name string, bd minicost.Breakdown) {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n", name, bd.Total(), bd.Storage, bd.Read, bd.Write, bd.Transition)
	}
	for _, b := range []struct {
		name string
		a    minicost.Assigner
	}{
		{"hot", minicost.HotBaseline()},
		{"cold", minicost.ColdBaseline()},
		{"greedy", minicost.GreedyBaseline()},
		{"optimal", minicost.OptimalBaseline()},
	} {
		bd, err := minicost.EvaluateAssigner(b.a, serve, minicost.AzurePricing())
		if err != nil {
			fatal(err)
		}
		row(b.name, bd)
	}
	row("minicost", report.Total)
	w.Flush()
	fmt.Printf("tier changes: %d, decision time: %s total (%.3f ms/file/day)\n",
		report.TierChanges, report.TotalDecisionTime().Round(time.Millisecond),
		report.TotalDecisionTime().Seconds()*1000/float64(serve.NumFiles()*serve.Days))
	if *aggregateE {
		fmt.Printf("aggregated groups active at end: %d\n", report.AggregatedGroups)
	}
}

func loadTrace(path string, files, days int, seed uint64) (*minicost.Trace, error) {
	if path == "" {
		cfg := minicost.DefaultTraceConfig()
		cfg.NumFiles = files
		cfg.Days = days
		cfg.Seed = seed
		return minicost.GenerateTrace(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return minicost.ReadTraceCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicost:", err)
	os.Exit(1)
}
