// Command minicost-vet runs the repo's invariant analyzers (internal/lint)
// over Go packages and exits non-zero on any finding. It is a
// zero-dependency analyzer driver: package discovery shells out to
// `go list -json`, parsing and type-checking are stdlib go/parser +
// go/types with the source-mode importer, so the tool builds and runs with
// an empty go.mod and a cold module cache.
//
// Usage:
//
//	minicost-vet [packages]
//
// With no arguments it analyzes ./... from the current directory. Only
// non-test files are analyzed: the bitwise-equivalence helpers and other
// test-only code are exempt by construction.
//
// Exit status: 0 clean, 1 findings, 2 operational failure (unparseable or
// untypeable source, go list failure).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"minicost/internal/lint"
)

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicost-vet:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	// The source-mode importer type-checks every import (stdlib included)
	// from source, so the driver needs no compiled export data and no
	// modules beyond the one under analysis. One instance caches packages
	// across the whole run.
	imp := importer.ForCompiler(fset, "source", nil)
	suite := lint.NewSuite()

	var diags []lint.Diagnostic
	failed := false
	for _, pkg := range pkgs {
		if len(pkg.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(pkg.GoFiles))
		ok := true
		for _, name := range pkg.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(pkg.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintln(os.Stderr, "minicost-vet:", err)
				ok = false
				continue
			}
			files = append(files, f)
		}
		if !ok {
			failed = true
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg.ImportPath, fset, files, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "minicost-vet: %s: %v\n", pkg.ImportPath, err)
			failed = true
			continue
		}
		diags = append(diags, suite.RunPackage(fset, pkg.ImportPath, tpkg, info, files)...)
	}
	diags = append(diags, suite.Finish(fset)...)
	lint.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Println(d)
	}
	switch {
	case failed:
		os.Exit(2)
	case len(diags) > 0:
		os.Exit(1)
	}
}

// goList resolves package patterns to their directories and files with
// `go list -json`, the same view the build uses (build tags, GOARCH and
// ignored files already applied).
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
