// Command tracegen generates a synthetic Wikipedia-like workload trace and
// writes it as CSV (see internal/trace for the format). The generator is
// calibrated to the paper's trace measurements: Fig. 2 volatility-bucket
// shares, Poisson file sizes with a 100 MB mean, and ~weekly request
// cycles.
//
// Usage:
//
//	tracegen -files 2000 -days 63 -seed 1 -o trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"minicost"
)

func main() {
	var (
		files   = flag.Int("files", 2000, "number of data files")
		days    = flag.Int("days", 63, "trace length in days")
		seed    = flag.Uint64("seed", 1, "generator seed")
		meanMB  = flag.Float64("mean-size-mb", 100, "mean file size (MB, Poisson)")
		out     = flag.String("o", "", "output file (default stdout)")
		summary = flag.Bool("summary", false, "print workload statistics instead of CSV")
	)
	flag.Parse()

	cfg := minicost.DefaultTraceConfig()
	cfg.NumFiles = *files
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.MeanSizeGB = *meanMB / 1024

	tr, err := minicost.GenerateTrace(cfg)
	if err != nil {
		fatal(err)
	}
	if *summary {
		hist := tr.SigmaHistogram()
		fmt.Printf("files: %d, days: %d, groups: %d, total requests: %.0f\n",
			tr.NumFiles(), tr.Days, len(tr.Groups), tr.TotalRequests())
		for b, count := range hist {
			fmt.Printf("  sigma %-8s %7d files\n", bucketLabel(b), count)
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
}

func bucketLabel(b int) string {
	labels := []string{"0-0.1", "0.1-0.3", "0.3-0.5", "0.5-0.8", ">0.8"}
	return labels[b]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
