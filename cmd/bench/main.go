// Command bench measures the inference engine and emits BENCH_inference.json
// so the perf trajectory is tracked from run to run: the single-sample
// reference path versus the batched GEMM engine behind policy.RL, at the
// paper's network configuration and at the Quick test configuration (the
// same workloads as BenchmarkInferenceSingle/BenchmarkInferenceBatched).
//
// Usage:
//
//	bench                      # all configs, writes BENCH_inference.json
//	bench -o results.json      # alternate output path
//	bench -files 1024 -days 28 # heavier workload
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"minicost/internal/costmodel"
	"minicost/internal/policy"
	"minicost/internal/pricing"
	"minicost/internal/rl"
	"minicost/internal/rng"
	"minicost/internal/trace"
)

// result is one (config, engine) measurement.
type result struct {
	Config     string  `json:"config"`
	HistLen    int     `json:"hist_len"`
	Filters    int     `json:"filters"`
	Hidden     int     `json:"hidden"`
	Files      int     `json:"files"`
	Days       int     `json:"days"`
	Engine     string  `json:"engine"` // "single" or "batched"
	Rounds     int     `json:"rounds"`
	NsPerDec   float64 `json:"ns_per_decision"`
	DecPerSec  float64 `json:"decisions_per_second"`
	TotalMS    float64 `json:"total_ms"`
	SpeedupVs1 float64 `json:"speedup_vs_single,omitempty"`
}

type report struct {
	Benchmark string   `json:"benchmark"`
	GoMaxProc int      `json:"gomaxprocs"`
	Results   []result `json:"results"`
}

func main() {
	var (
		out    = flag.String("o", "BENCH_inference.json", "output JSON path")
		files  = flag.Int("files", 512, "files in the bench trace")
		days   = flag.Int("days", 14, "trace days")
		rounds = flag.Int("rounds", 3, "timed rounds per measurement (best is kept)")
	)
	flag.Parse()

	configs := []struct {
		name string
		net  rl.NetConfig
	}{
		{"paper128", rl.NetConfig{HistLen: 14, Filters: 128, Kernel: 4, Stride: 1, Hidden: 128}},
		{"quick16", rl.NetConfig{HistLen: 7, Filters: 16, Kernel: 4, Stride: 1, Hidden: 32}},
	}

	rep := report{Benchmark: "inference", GoMaxProc: runtime.GOMAXPROCS(0)}
	for _, cfg := range configs {
		agent := rl.NewAgent(cfg.net, cfg.net.BuildActor(rng.New(7)))
		gen := trace.DefaultGenConfig()
		gen.NumFiles = *files
		gen.Days = *days
		gen.Seed = 7
		tr, err := trace.Generate(gen)
		if err != nil {
			fatal(err)
		}
		m := costmodel.New(pricing.Azure())
		decisions := float64(tr.NumFiles() * tr.Days)

		single := measure(policy.RL{Agent: agent, SingleSample: true}, tr, m, *rounds)
		batched := measure(policy.RL{Agent: agent}, tr, m, *rounds)

		for _, r := range []struct {
			engine string
			best   time.Duration
		}{{"single", single}, {"batched", batched}} {
			res := result{
				Config: cfg.name, HistLen: cfg.net.HistLen, Filters: cfg.net.Filters,
				Hidden: cfg.net.Hidden, Files: tr.NumFiles(), Days: tr.Days,
				Engine: r.engine, Rounds: *rounds,
				NsPerDec:  float64(r.best.Nanoseconds()) / decisions,
				DecPerSec: decisions / r.best.Seconds(),
				TotalMS:   float64(r.best.Microseconds()) / 1000,
			}
			if r.engine == "batched" {
				res.SpeedupVs1 = single.Seconds() / r.best.Seconds()
			}
			rep.Results = append(rep.Results, res)
			fmt.Printf("%-9s %-8s %10.0f ns/decision  %12.0f decisions/s", cfg.name, r.engine, res.NsPerDec, res.DecPerSec)
			if res.SpeedupVs1 > 0 {
				fmt.Printf("  %.2fx vs single", res.SpeedupVs1)
			}
			fmt.Println()
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure times p.Assign over the trace `rounds` times (after one warm-up)
// and returns the best round, the standard way to suppress scheduler noise.
func measure(p policy.RL, tr *trace.Trace, m *costmodel.Model, rounds int) time.Duration {
	if _, err := p.Assign(tr, m, pricing.Hot); err != nil {
		fatal(err)
	}
	best := time.Duration(0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := p.Assign(tr, m, pricing.Hot); err != nil {
			fatal(err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
